#!/usr/bin/env bash
#===- bench/run_benches.sh - Machine-readable bench trajectory ----------===#
#
# Runs the google-benchmark suites in JSON mode and aggregates the
# results into BENCH_fastpath.json and BENCH_contention.json at the repo
# root.  These files are the committed perf trajectory: regenerate them
# from a `bench` preset build when a PR touches a hot path, and compare
# against the committed copy before overwriting it.
#
# Usage:
#   cmake --preset bench && cmake --build --preset bench -j
#   bench/run_benches.sh [build-dir]     # default: build-bench
#
#===----------------------------------------------------------------------===#
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build-bench}"
case "$BUILD_DIR" in /*) ;; *) BUILD_DIR="$ROOT/$BUILD_DIR" ;; esac

# Suites per trajectory file.  bench_fastpath is the per-operation cost
# ledger (paper §2/§3.3); bench_inflation_storm is the multi-thread
# inflation/allocation sweep behind the hot-path-scalability work;
# bench_wakeup is the waiting-substrate suite (wake-handoff latency and
# notifyAll storms, with std::mutex/condvar reference rows in the same
# JSON).  The contention suites also emit a cpu_ns_per_op counter
# (bench/BenchRusage.h) next to wall time.
FASTPATH_SUITES=(bench_fastpath)
CONTENTION_SUITES=(bench_inflation_storm bench_wakeup)

for Suite in "${FASTPATH_SUITES[@]}" "${CONTENTION_SUITES[@]}"; do
  if [ ! -x "$BUILD_DIR/bench/$Suite" ]; then
    echo "error: $BUILD_DIR/bench/$Suite not found." >&2
    echo "Build it first:  cmake --preset bench && cmake --build --preset bench -j" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

run_suite() {
  local Suite="$1"; shift
  echo "== $Suite" >&2
  "$BUILD_DIR/bench/$Suite" "$@" \
    --benchmark_format=console \
    --benchmark_out="$TMP/$Suite.json" \
    --benchmark_out_format=json >&2
}

# Fast-path benches are single-run by default (interactive use); for the
# committed trajectory force repetitions so the JSON records medians.
# The contention suites set Repetitions(5) per-benchmark already.
for Suite in "${FASTPATH_SUITES[@]}"; do
  run_suite "$Suite" \
    --benchmark_repetitions=5 --benchmark_report_aggregates_only=true
done
for Suite in "${CONTENTION_SUITES[@]}"; do
  run_suite "$Suite"
done

# Merge the per-suite JSON files: one shared context (identical flags for
# every suite in a run) plus the concatenated benchmark records, each
# tagged with its suite of origin.
merge() {
  local Out="$1"; shift
  python3 - "$Out" "$@" <<'PYEOF'
import json, sys

out_path, *inputs = sys.argv[1:]
merged = {"context": None, "benchmarks": []}
for path in inputs:
    with open(path) as f:
        doc = json.load(f)
    suite = path.rsplit("/", 1)[-1].removesuffix(".json")
    if merged["context"] is None:
        ctx = doc.get("context", {})
        ctx.pop("executable", None)  # per-suite; the suite tag replaces it
        merged["context"] = ctx
    for bench in doc.get("benchmarks", []):
        bench["suite"] = suite
        merged["benchmarks"].append(bench)
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(merged['benchmarks'])} benchmarks)")
PYEOF
}

FASTPATH_INPUTS=(); for S in "${FASTPATH_SUITES[@]}"; do FASTPATH_INPUTS+=("$TMP/$S.json"); done
CONTENTION_INPUTS=(); for S in "${CONTENTION_SUITES[@]}"; do CONTENTION_INPUTS+=("$TMP/$S.json"); done

merge "$ROOT/BENCH_fastpath.json" "${FASTPATH_INPUTS[@]}"
merge "$ROOT/BENCH_contention.json" "${CONTENTION_INPUTS[@]}"

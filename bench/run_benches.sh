#!/usr/bin/env bash
#===- bench/run_benches.sh - Machine-readable bench trajectory ----------===#
#
# Runs the google-benchmark suites in JSON mode and aggregates the
# results into BENCH_fastpath.json and BENCH_contention.json at the repo
# root.  These files are the committed perf trajectory: regenerate them
# from a `bench` preset build when a PR touches a hot path, and compare
# against the committed copy before overwriting it.
#
# Failure discipline: every suite run and every merge is checked, and the
# merged files are staged in a temp directory and only moved over the
# committed copies after *all* of them built successfully.  A crashing
# suite or a malformed JSON therefore fails the script fast (non-zero
# exit) and leaves the prior BENCH_*.json bit-for-bit untouched — no more
# half-regenerated trajectories where fastpath was overwritten before the
# contention merge died.
#
# Usage:
#   cmake --preset bench && cmake --build --preset bench -j
#   bench/run_benches.sh [build-dir]     # default: build-bench
#
# Environment:
#   BENCH_OUT_DIR   where the merged BENCH_*.json land (default: repo
#                   root).  Used by tests to exercise the script against
#                   stub binaries without touching the committed files.
#   BENCH_TRACE=1   also run macro_trace (if built) and stage
#                   BENCH_trace.json, a Chrome trace_event artifact of a
#                   traced macro replay (see DESIGN.md §10).
#   BENCH_ADAPTIVE=1  also run bench_adaptive (the profiler->policy A/B,
#                   DESIGN.md §13) and stage BENCH_adaptive.json.
#   BENCH_MATRIX=1  also run bench_matrix (every registered protocol x
#                   the shared workload battery, DESIGN.md §14) and stage
#                   BENCH_matrix.json; BENCH_MATRIX_ARGS overrides the
#                   default (full-size) profile, e.g. --smoke.
#   BENCH_TXN=1     also run bench_txn (every registered protocol x every
#                   conflict policy through the transactional scenario
#                   engine, DESIGN.md §15) and stage BENCH_txn.json;
#                   BENCH_TXN_ARGS overrides the default (full-size)
#                   profile, e.g. --smoke.
#
# Every suite must have been built with NDEBUG (the bench preset): the
# merge refuses to publish a document whose thinlocks_build_type context
# field is not "release" (see bench/BenchContext.h for why the library's
# own library_build_type field cannot be the gate).
#
#===----------------------------------------------------------------------===#
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build-bench}"
case "$BUILD_DIR" in /*) ;; *) BUILD_DIR="$ROOT/$BUILD_DIR" ;; esac
OUT_DIR="${BENCH_OUT_DIR:-$ROOT}"

# Suites per trajectory file.  bench_fastpath is the per-operation cost
# ledger (paper §2/§3.3); bench_inflation_storm is the multi-thread
# inflation/allocation sweep behind the hot-path-scalability work;
# bench_wakeup is the waiting-substrate suite (wake-handoff latency and
# notifyAll storms, with std::mutex/condvar reference rows in the same
# JSON).  The contention suites also emit a cpu_ns_per_op counter
# (bench/BenchRusage.h) next to wall time.
FASTPATH_SUITES=(bench_fastpath)
CONTENTION_SUITES=(bench_inflation_storm bench_wakeup)
# bench_adaptive is the profiler->policy A/B (DESIGN.md §13); opt-in
# because its convoy scenario deliberately oversubscribes the host.
ADAPTIVE_SUITES=()
if [ "${BENCH_ADAPTIVE:-0}" != 0 ]; then
  ADAPTIVE_SUITES=(bench_adaptive)
fi

for Suite in "${FASTPATH_SUITES[@]}" "${CONTENTION_SUITES[@]}" \
             "${ADAPTIVE_SUITES[@]}"; do
  if [ ! -x "$BUILD_DIR/bench/$Suite" ]; then
    echo "error: $BUILD_DIR/bench/$Suite not found." >&2
    echo "Build it first:  cmake --preset bench && cmake --build --preset bench -j" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

run_suite() {
  local Suite="$1"; shift
  echo "== $Suite" >&2
  local Status=0
  "$BUILD_DIR/bench/$Suite" "$@" \
    --benchmark_format=console \
    --benchmark_out="$TMP/$Suite.json" \
    --benchmark_out_format=json >&2 || Status=$?
  if [ "$Status" -ne 0 ]; then
    echo "error: $Suite exited with status $Status; aborting without" \
         "touching the committed BENCH_*.json files." >&2
    exit "$Status"
  fi
}

# Fast-path benches are single-run by default (interactive use); for the
# committed trajectory force repetitions so the JSON records medians.
# The contention suites set Repetitions(5) per-benchmark already.
for Suite in "${FASTPATH_SUITES[@]}"; do
  run_suite "$Suite" \
    --benchmark_repetitions=5 --benchmark_report_aggregates_only=true
done
for Suite in "${CONTENTION_SUITES[@]}"; do
  run_suite "$Suite"
done
for Suite in "${ADAPTIVE_SUITES[@]}"; do
  run_suite "$Suite"
done

# Merge the per-suite JSON files: one shared context (identical flags for
# every suite in a run) plus the concatenated benchmark records, each
# tagged with its suite of origin.  Merges write into $TMP/staged — a
# failed json.load here (truncated or garbage suite output) must not
# clobber anything committed.
mkdir -p "$TMP/staged"

merge() {
  local Name="$1"; shift
  if ! python3 - "$TMP/staged/$Name" "$@" <<'PYEOF'
import json, sys

out_path, *inputs = sys.argv[1:]
merged = {"context": None, "benchmarks": []}
for path in inputs:
    with open(path) as f:
        doc = json.load(f)
    suite = path.rsplit("/", 1)[-1].removesuffix(".json")
    # Refuse to publish a trajectory built without NDEBUG.  The gate is
    # our own context field (bench/BenchContext.h): the library's
    # `library_build_type` is compiled into libbenchmark itself, so a
    # distro-packaged .so reports the *library's* build type no matter
    # how the suites were compiled — it cannot vouch for the measured
    # code.  Asserting here (inside the staged merge) keeps the committed
    # BENCH_*.json bit-for-bit untouched on refusal.
    build_type = doc.get("context", {}).get("thinlocks_build_type")
    assert build_type == "release", (
        f"{suite}: thinlocks_build_type is {build_type!r}, not 'release' "
        "— rebuild with the bench preset (cmake --preset bench) before "
        "publishing a trajectory")
    if merged["context"] is None:
        ctx = doc.get("context", {})
        ctx.pop("executable", None)  # per-suite; the suite tag replaces it
        merged["context"] = ctx
    for bench in doc.get("benchmarks", []):
        bench["suite"] = suite
        merged["benchmarks"].append(bench)
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"merged {out_path.rsplit('/', 1)[-1]} ({len(merged['benchmarks'])} benchmarks)")
PYEOF
  then
    echo "error: merging $Name failed; aborting without touching the" \
         "committed BENCH_*.json files." >&2
    exit 1
  fi
  STAGED+=("$Name")
}

STAGED=()
FASTPATH_INPUTS=(); for S in "${FASTPATH_SUITES[@]}"; do FASTPATH_INPUTS+=("$TMP/$S.json"); done
CONTENTION_INPUTS=(); for S in "${CONTENTION_SUITES[@]}"; do CONTENTION_INPUTS+=("$TMP/$S.json"); done

merge BENCH_fastpath.json "${FASTPATH_INPUTS[@]}"
merge BENCH_contention.json "${CONTENTION_INPUTS[@]}"
if [ "${#ADAPTIVE_SUITES[@]}" -gt 0 ]; then
  ADAPTIVE_INPUTS=(); for S in "${ADAPTIVE_SUITES[@]}"; do ADAPTIVE_INPUTS+=("$TMP/$S.json"); done
  merge BENCH_adaptive.json "${ADAPTIVE_INPUTS[@]}"
fi

# Optional tracing artifact: a Chrome trace of one traced macro replay
# plus the hot-lock table on stderr.  Staged with the same all-or-nothing
# discipline.
if [ "${BENCH_TRACE:-0}" != 0 ]; then
  if [ ! -x "$BUILD_DIR/bench/macro_trace" ]; then
    echo "error: BENCH_TRACE=1 but $BUILD_DIR/bench/macro_trace is not built." >&2
    exit 1
  fi
  echo "== macro_trace" >&2
  if ! "$BUILD_DIR/bench/macro_trace" --out "$TMP/staged/BENCH_trace.json" >&2; then
    echo "error: macro_trace failed; aborting without touching the" \
         "committed BENCH_*.json files." >&2
    exit 1
  fi
  STAGED+=(BENCH_trace.json)
fi

# Optional sustained-load soak artifact: SLO quantiles, admission-ladder
# residency, and typed-error accounting from one self-checking bench_soak
# run (BENCH_SOAK_ARGS overrides the default profile, e.g. a longer
# --duration-s or --chaos against a failpoints build).  Staged with the
# same all-or-nothing discipline — a failed self-check publishes nothing.
if [ "${BENCH_SOAK:-0}" != 0 ]; then
  if [ ! -x "$BUILD_DIR/bench/bench_soak" ]; then
    echo "error: BENCH_SOAK=1 but $BUILD_DIR/bench/bench_soak is not built." >&2
    exit 1
  fi
  echo "== bench_soak" >&2
  # shellcheck disable=SC2086  # word-splitting of the args is the point
  if ! "$BUILD_DIR/bench/bench_soak" ${BENCH_SOAK_ARGS:---duration-s 10} \
       --out "$TMP/staged/BENCH_soak.json" >&2; then
    echo "error: bench_soak failed; aborting without touching the" \
         "committed BENCH_*.json files." >&2
    exit 1
  fi
  STAGED+=(BENCH_soak.json)
fi

# Optional cross-protocol matrix artifact: every registered protocol
# through the same workload battery (bench_matrix is self-checking; a
# failed grid publishes nothing).  The schema gate below mirrors the
# merge()'s build-type refusal: a debug matrix never lands.
if [ "${BENCH_MATRIX:-0}" != 0 ]; then
  if [ ! -x "$BUILD_DIR/bench/bench_matrix" ]; then
    echo "error: BENCH_MATRIX=1 but $BUILD_DIR/bench/bench_matrix is not built." >&2
    exit 1
  fi
  echo "== bench_matrix" >&2
  # shellcheck disable=SC2086  # word-splitting of the args is the point
  if ! "$BUILD_DIR/bench/bench_matrix" ${BENCH_MATRIX_ARGS:-} \
       --out "$TMP/staged/BENCH_matrix.json" >&2; then
    echo "error: bench_matrix failed; aborting without touching the" \
         "committed BENCH_*.json files." >&2
    exit 1
  fi
  if ! python3 - "$TMP/staged/BENCH_matrix.json" <<'PYEOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("schema") == "thinlocks-bench-matrix-v1", doc.get("schema")
assert doc.get("build_type") == "release", (
    f"build_type is {doc.get('build_type')!r}, not 'release' — rebuild "
    "with the bench preset (cmake --preset bench) before publishing")
protocols, workloads = doc["protocols"], doc["workloads"]
assert len(protocols) >= 4, protocols
assert len(workloads) >= 3, workloads
rows = doc["rows"]
assert len(rows) == len(protocols) * len(workloads), len(rows)
for row in rows:
    assert row["protocol"] in protocols and row["workload"] in workloads
    assert row["protocol_impl"] and row["ops"] > 0
print(f"BENCH_matrix.json ok ({len(protocols)} protocols x "
      f"{len(workloads)} workloads)")
PYEOF
  then
    echo "error: BENCH_matrix.json failed schema validation; aborting" \
         "without touching the committed BENCH_*.json files." >&2
    exit 1
  fi
  STAGED+=(BENCH_matrix.json)
fi

# Optional transactional-scenario artifact: every registered protocol x
# every conflict policy (NoWait / WaitDie / Validated) through the txn
# engine (bench_txn self-checks the grid, the per-cell accounting
# identity, and the serializability spot-checks; a failed cell publishes
# nothing).  Same staged all-or-nothing discipline and schema gate.
if [ "${BENCH_TXN:-0}" != 0 ]; then
  if [ ! -x "$BUILD_DIR/bench/bench_txn" ]; then
    echo "error: BENCH_TXN=1 but $BUILD_DIR/bench/bench_txn is not built." >&2
    exit 1
  fi
  echo "== bench_txn" >&2
  # shellcheck disable=SC2086  # word-splitting of the args is the point
  if ! "$BUILD_DIR/bench/bench_txn" ${BENCH_TXN_ARGS:-} \
       --out "$TMP/staged/BENCH_txn.json" >&2; then
    echo "error: bench_txn failed; aborting without touching the" \
         "committed BENCH_*.json files." >&2
    exit 1
  fi
  if ! python3 - "$TMP/staged/BENCH_txn.json" <<'PYEOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("schema") == "thinlocks-bench-txn-v1", doc.get("schema")
assert doc.get("build_type") == "release", (
    f"build_type is {doc.get('build_type')!r}, not 'release' — rebuild "
    "with the bench preset (cmake --preset bench) before publishing")
protocols, policies = doc["protocols"], doc["policies"]
assert len(protocols) >= 5, protocols
assert len(policies) == 3, policies
rows = doc["rows"]
assert len(rows) == len(protocols) * len(policies), len(rows)
for row in rows:
    assert row["protocol"] in protocols and row["policy"] in policies
    assert row["protocol_impl"] and row["started"] > 0
    assert row["started"] == row["committed"] + row["aborted"], row
    assert row["committed"] > 0 and row["commits_per_sec"] > 0, row
    assert row["consistency_violations"] == 0, row
    assert row.get("attach_failures", 0) == 0, row
    assert "abort_p99_ns" in row and "commit_p99_ns" in row, row
print(f"BENCH_txn.json ok ({len(protocols)} protocols x "
      f"{len(policies)} policies)")
PYEOF
  then
    echo "error: BENCH_txn.json failed schema validation; aborting" \
         "without touching the committed BENCH_*.json files." >&2
    exit 1
  fi
  STAGED+=(BENCH_txn.json)
fi

# Everything succeeded: publish the staged files together.
for Name in "${STAGED[@]}"; do
  mv -f "$TMP/staged/$Name" "$OUT_DIR/$Name"
  echo "wrote $OUT_DIR/$Name"
done

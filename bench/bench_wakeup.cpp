//===- bench/bench_wakeup.cpp - Wake-handoff latency and CPU cost ---------===//
//
// Measures the waiting substrate's wake paths head-to-head against a
// std::mutex + std::condition_variable reference implementing the exact
// same protocol, in the same binary and JSON:
//
//   Wakeup_PingPong           — two threads bouncing a turn token through
//                               monitor wait/notify: each iteration is one
//                               directed handoff (notify → wake → reacquire).
//   Wakeup_EntryHandoff       — two threads in lock/unlock lockstep on one
//                               inflated monitor: the entry-queue handoff
//                               (release → FIFO head granted) without the
//                               wait-set round trip.
//   Wakeup_NotifyAllStorm/N   — N waiters on one monitor; an iteration is
//                               one notifyAll broadcast timed (manual time)
//                               from the notifier's lock to the last waiter
//                               reporting awake.
//
// The *_CondvarRef rows are the pre-substrate shape: one condition
// variable, every release/notify a broadcast-and-recheck.  The substrate
// rows should match or beat them on wall time and clearly beat them on
// cpu_ns_per_op (see BenchRusage.h), because a directed unpark wakes one
// thread where a broadcast wakes the herd.  Results feed
// BENCH_contention.json via bench/run_benches.sh.
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"

#include "BenchRusage.h"

#include "BenchContext.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

using namespace thinlocks;

namespace {

constexpr int StormRepetitions = 5;

/// Shared state for the two-thread benchmarks.  Thread 0 resets it before
/// each run; the google-benchmark start barrier orders the reset before
/// any worker's first iteration, so workers read Obj only inside the loop.
struct WakeupEnv {
  ThreadRegistry Registry;
  std::unique_ptr<Heap> Objects;
  std::unique_ptr<MonitorTable> Monitors;
  std::unique_ptr<ThinLockManager> Locks;
  Object *Obj = nullptr;
  int Turn = 0; // Guarded by the monitor on Obj.

  // Condvar-reference twin of the same protocol.
  std::mutex CvMutex;
  std::condition_variable Cv;
  int CvTurn = 0; // Guarded by CvMutex.

  WakeupEnv() { reset(); }

  void reset() {
    Locks.reset();
    Monitors = std::make_unique<MonitorTable>();
    Locks = std::make_unique<ThinLockManager>(*Monitors);
    Objects = std::make_unique<Heap>();
    const ClassInfo &Class = Objects->classes().registerClass("W", 0);
    Obj = Objects->allocate(Class);
    Turn = 0;
    CvTurn = 0;
  }
};

WakeupEnv &env() {
  static WakeupEnv E;
  return E;
}

/// Two threads pass a turn token through Object.wait/notify; every
/// iteration hands the token (and the monitor) to the other thread.
void Wakeup_PingPong(benchmark::State &State) {
  WakeupEnv &E = env();
  if (State.thread_index() == 0)
    E.reset();
  ScopedThreadAttachment Attach(E.Registry, "pingpong");
  const int Me = State.thread_index();
  const int Other = 1 - Me;
  ScopedCpuSample Cpu;
  for (auto _ : State) {
    Object *Obj = E.Obj;
    E.Locks->lock(Obj, Attach.context());
    while (E.Turn != Me)
      E.Locks->wait(Obj, Attach.context());
    E.Turn = Other;
    E.Locks->notify(Obj, Attach.context());
    E.Locks->unlock(Obj, Attach.context());
  }
  Cpu.report(State);
  State.SetItemsProcessed(State.iterations());
}

/// The identical turn protocol on std::mutex + std::condition_variable.
void Wakeup_PingPong_CondvarRef(benchmark::State &State) {
  WakeupEnv &E = env();
  if (State.thread_index() == 0)
    E.reset();
  const int Me = State.thread_index();
  const int Other = 1 - Me;
  ScopedCpuSample Cpu;
  for (auto _ : State) {
    std::unique_lock<std::mutex> Guard(E.CvMutex);
    while (E.CvTurn != Me)
      E.Cv.wait(Guard);
    E.CvTurn = Other;
    E.Cv.notify_one();
  }
  Cpu.report(State);
  State.SetItemsProcessed(State.iterations());
}

/// Two threads doing lock/unlock on one pre-inflated monitor.  While a
/// contender is queued, the no-barging entry queue forces release →
/// head-granted handoffs; on a uniprocessor the threads also spend whole
/// scheduling quanta running back-to-back uncontended, so this row mixes
/// handoff cost with inflated-monitor enter/exit throughput (compare the
/// MutexRef row, which mixes the same way).
void Wakeup_EntryHandoff(benchmark::State &State) {
  WakeupEnv &E = env();
  ScopedThreadAttachment Attach(E.Registry, "handoff");
  if (State.thread_index() == 0) {
    E.reset();
    // Pre-inflate so the measured path is the monitor handoff, not thin
    // contention spinning.
    E.Locks->lock(E.Obj, Attach.context());
    E.Locks->inflate(E.Obj, Attach.context());
    E.Locks->unlock(E.Obj, Attach.context());
  }
  ScopedCpuSample Cpu;
  for (auto _ : State) {
    Object *Obj = E.Obj;
    E.Locks->lock(Obj, Attach.context());
    E.Locks->unlock(Obj, Attach.context());
  }
  Cpu.report(State);
  State.SetItemsProcessed(State.iterations());
}

/// std::mutex twin of Wakeup_EntryHandoff (no FIFO guarantee — this is
/// the raw kernel-arbitrated baseline).
void Wakeup_EntryHandoff_MutexRef(benchmark::State &State) {
  WakeupEnv &E = env();
  if (State.thread_index() == 0)
    E.reset();
  ScopedCpuSample Cpu;
  for (auto _ : State) {
    E.CvMutex.lock();
    E.CvMutex.unlock();
  }
  Cpu.report(State);
  State.SetItemsProcessed(State.iterations());
}

/// N waiters blocked in Object.wait; one iteration is a notifyAll
/// broadcast, manually timed from the notifier taking the monitor until
/// the last waiter has woken, reacquired, and released.
void Wakeup_NotifyAllStorm(benchmark::State &State) {
  const int NumWaiters = static_cast<int>(State.range(0));
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockManager Locks(Monitors);
  Heap Objects;
  const ClassInfo &Class = Objects.classes().registerClass("W", 0);
  Object *Obj = Objects.allocate(Class);
  ScopedThreadAttachment Main(Registry, "notifier");

  std::atomic<bool> Done{false};
  uint64_t Generation = 0; // Guarded by the monitor.
  std::atomic<int> Woken{0};
  std::vector<std::thread> Waiters;
  Waiters.reserve(NumWaiters);
  for (int I = 0; I < NumWaiters; ++I)
    Waiters.emplace_back([&] {
      ScopedThreadAttachment Attach(Registry, "waiter");
      uint64_t Seen = 0;
      for (;;) {
        Locks.lock(Obj, Attach.context());
        while (!Done.load(std::memory_order_relaxed) && Generation == Seen)
          Locks.wait(Obj, Attach.context());
        Seen = Generation;
        Locks.unlock(Obj, Attach.context());
        if (Done.load(std::memory_order_relaxed))
          return;
        Woken.fetch_add(1, std::memory_order_release);
      }
    });

  ScopedCpuSample Cpu;
  for (auto _ : State) {
    // Off the clock: wait for the full wait set to re-form.
    FatLock *Fat;
    while (!(Fat = Locks.monitorOf(Obj)) ||
           Fat->waitSetSize() != static_cast<uint32_t>(NumWaiters))
      std::this_thread::yield();
    Woken.store(0, std::memory_order_relaxed);
    auto Start = std::chrono::steady_clock::now();
    Locks.lock(Obj, Main.context());
    ++Generation;
    Locks.notifyAll(Obj, Main.context());
    Locks.unlock(Obj, Main.context());
    while (Woken.load(std::memory_order_acquire) != NumWaiters)
      std::this_thread::yield();
    auto End = std::chrono::steady_clock::now();
    State.SetIterationTime(std::chrono::duration<double>(End - Start).count());
  }
  Cpu.report(State);

  Locks.lock(Obj, Main.context());
  Done.store(true, std::memory_order_relaxed);
  Locks.notifyAll(Obj, Main.context());
  Locks.unlock(Obj, Main.context());
  for (auto &T : Waiters)
    T.join();
  State.SetItemsProcessed(State.iterations() * NumWaiters);
}

/// Condvar twin of the storm: same generation protocol on one
/// std::condition_variable, where notify_all is a true herd broadcast.
void Wakeup_NotifyAllStorm_CondvarRef(benchmark::State &State) {
  const int NumWaiters = static_cast<int>(State.range(0));
  std::mutex Mutex;
  std::condition_variable Cv;
  bool Stop = false;      // Guarded by Mutex.
  uint64_t Generation = 0; // Guarded by Mutex.
  std::atomic<int> Waiting{0};
  std::atomic<int> Woken{0};
  std::vector<std::thread> Waiters;
  Waiters.reserve(NumWaiters);
  for (int I = 0; I < NumWaiters; ++I)
    Waiters.emplace_back([&] {
      uint64_t Seen = 0;
      for (;;) {
        std::unique_lock<std::mutex> Guard(Mutex);
        while (!Stop && Generation == Seen) {
          Waiting.fetch_add(1, std::memory_order_release);
          Cv.wait(Guard);
          Waiting.fetch_sub(1, std::memory_order_relaxed);
        }
        Seen = Generation;
        bool Exit = Stop;
        Guard.unlock();
        if (Exit)
          return;
        Woken.fetch_add(1, std::memory_order_release);
      }
    });

  ScopedCpuSample Cpu;
  for (auto _ : State) {
    while (Waiting.load(std::memory_order_acquire) != NumWaiters)
      std::this_thread::yield();
    Woken.store(0, std::memory_order_relaxed);
    auto Start = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> Guard(Mutex);
      ++Generation;
    }
    Cv.notify_all();
    while (Woken.load(std::memory_order_acquire) != NumWaiters)
      std::this_thread::yield();
    auto End = std::chrono::steady_clock::now();
    State.SetIterationTime(std::chrono::duration<double>(End - Start).count());
  }
  Cpu.report(State);

  {
    std::lock_guard<std::mutex> Guard(Mutex);
    Stop = true;
  }
  Cv.notify_all();
  for (auto &T : Waiters)
    T.join();
  State.SetItemsProcessed(State.iterations() * NumWaiters);
}

BENCHMARK(Wakeup_PingPong)
    ->Threads(2)
    ->Repetitions(StormRepetitions)
    ->ReportAggregatesOnly(true)
    ->UseRealTime();
BENCHMARK(Wakeup_PingPong_CondvarRef)
    ->Threads(2)
    ->Repetitions(StormRepetitions)
    ->ReportAggregatesOnly(true)
    ->UseRealTime();
BENCHMARK(Wakeup_EntryHandoff)
    ->Threads(2)
    ->Repetitions(StormRepetitions)
    ->ReportAggregatesOnly(true)
    ->UseRealTime();
BENCHMARK(Wakeup_EntryHandoff_MutexRef)
    ->Threads(2)
    ->Repetitions(StormRepetitions)
    ->ReportAggregatesOnly(true)
    ->UseRealTime();
BENCHMARK(Wakeup_NotifyAllStorm)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(64)
    ->Repetitions(StormRepetitions)
    ->ReportAggregatesOnly(true)
    ->UseManualTime();
BENCHMARK(Wakeup_NotifyAllStorm_CondvarRef)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(64)
    ->Repetitions(StormRepetitions)
    ->ReportAggregatesOnly(true)
    ->UseManualTime();

} // namespace

BENCHMARK_MAIN();

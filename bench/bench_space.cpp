//===- bench/bench_space.cpp - The §1 space-time tradeoff -----------------===//
//
// Ablation behind the paper's introduction: "adding one or more
// synchronization words to each object is an unacceptable space-time
// tradeoff" and the conclusion "because fat locks are only created under
// contention, thin locks also result in a significant savings in space
// when there are large numbers of synchronized objects."
//
// The harness synchronizes N distinct objects (single-threaded, a few
// holds each — the common case per Table 1) under four designs and
// reports both axes:
//
//   time   — ns per lock/unlock pair
//   space  — monitor structures allocated, and their approximate bytes
//
// Expected shape: ThinLock allocates ZERO monitors (24 header bits it
// already had); EagerMonitor allocates N monitors; MonitorCache stays
// within its pool but pays sweeps; HotLocks allocates 32 + pool.
//
//===----------------------------------------------------------------------===//

#include "baselines/EagerMonitor.h"
#include "baselines/HotLocks.h"
#include "baselines/MonitorCache.h"
#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "support/TableFormatter.h"
#include "support/Timer.h"
#include "threads/ThreadRegistry.h"

#include <cstdio>
#include <vector>

using namespace thinlocks;

namespace {

constexpr int HoldsPerObject = 4;
constexpr int Rounds = 4;

/// Locks every object \c HoldsPerObject times over \c Rounds passes;
/// \returns elapsed nanos.
template <typename Protocol>
uint64_t churn(Protocol &P, const std::vector<Object *> &Objects,
               const ThreadContext &Me) {
  StopWatch Watch;
  for (int Round = 0; Round < Rounds; ++Round)
    for (Object *Obj : Objects)
      for (int H = 0; H < HoldsPerObject; ++H) {
        P.lock(Obj, Me);
        P.unlock(Obj, Me);
      }
  return Watch.elapsedNanos();
}

std::vector<Object *> makeObjects(Heap &TheHeap, size_t Count) {
  const ClassInfo &Class = TheHeap.classes().registerClass("S", 0);
  std::vector<Object *> Objects;
  Objects.reserve(Count);
  for (size_t I = 0; I < Count; ++I)
    Objects.push_back(TheHeap.allocate(Class));
  return Objects;
}

std::string perPair(uint64_t Nanos, size_t Count) {
  double Ops = static_cast<double>(Count) * HoldsPerObject * Rounds;
  return TableFormatter::formatDouble(Nanos / Ops, 1) + " ns";
}

} // namespace

int main() {
  std::printf("=== Space-time tradeoff (paper §1 / Conclusions) ===\n");
  std::printf("N synchronized objects, %d lock/unlock pairs each, "
              "single-threaded\n\n",
              HoldsPerObject * Rounds);

  for (size_t N : {size_t(1000), size_t(10000), size_t(100000)}) {
    TableFormatter Table({"protocol (N=" + std::to_string(N) + ")",
                          "time/pair", "monitors", "monitor bytes",
                          "bytes/object"});

    {
      Heap TheHeap;
      ThreadRegistry Registry;
      ScopedThreadAttachment Me(Registry);
      auto Objects = makeObjects(TheHeap, N);
      MonitorTable Monitors;
      ThinLockManager Thin(Monitors);
      uint64_t Nanos = churn(Thin, Objects, Me.context());
      uint64_t Count = Monitors.liveMonitorCount();
      Table.addRow({"ThinLock", perPair(Nanos, N),
                    std::to_string(Count),
                    TableFormatter::formatWithCommas(Count *
                                                     sizeof(FatLock)),
                    TableFormatter::formatDouble(
                        double(Count) * sizeof(FatLock) / N, 2)});
    }
    {
      Heap TheHeap;
      ThreadRegistry Registry;
      ScopedThreadAttachment Me(Registry);
      auto Objects = makeObjects(TheHeap, N);
      EagerMonitor Eager;
      uint64_t Nanos = churn(Eager, Objects, Me.context());
      Table.addRow({"EagerMonitor", perPair(Nanos, N),
                    std::to_string(Eager.monitorCount()),
                    TableFormatter::formatWithCommas(
                        Eager.approximateMonitorBytes()),
                    TableFormatter::formatDouble(
                        double(Eager.approximateMonitorBytes()) / N, 2)});
    }
    {
      Heap TheHeap;
      ThreadRegistry Registry;
      ScopedThreadAttachment Me(Registry);
      auto Objects = makeObjects(TheHeap, N);
      MonitorCache Cache(128);
      uint64_t Nanos = churn(Cache, Objects, Me.context());
      MonitorCacheStats Stats = Cache.stats();
      uint64_t Monitors = 128 + Stats.PoolGrowths;
      Table.addRow(
          {"JDK111 (pool 128)", perPair(Nanos, N),
           std::to_string(Monitors),
           TableFormatter::formatWithCommas(Monitors * sizeof(FatLock)),
           TableFormatter::formatDouble(
               double(Monitors) * sizeof(FatLock) / N, 2)});
    }
    {
      Heap TheHeap;
      ThreadRegistry Registry;
      ScopedThreadAttachment Me(Registry);
      auto Objects = makeObjects(TheHeap, N);
      HotLocks Hot(32, 4, 128);
      uint64_t Nanos = churn(Hot, Objects, Me.context());
      uint64_t Monitors = 32 + 128;
      Table.addRow(
          {"IBM112 (32 hot)", perPair(Nanos, N), std::to_string(Monitors),
           TableFormatter::formatWithCommas(Monitors * sizeof(FatLock)),
           TableFormatter::formatDouble(
               double(Monitors) * sizeof(FatLock) / N, 2)});
    }
    std::printf("%s\n", Table.render().c_str());
  }

  std::printf("fat lock structure size: %zu bytes; thin locks use 24 bits "
              "of an existing header word (object size unchanged)\n",
              sizeof(FatLock));
  return 0;
}

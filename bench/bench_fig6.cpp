//===- bench/bench_fig6.cpp - Reproduce paper Figure 6 --------------------===//
//
// Figure 6: "Effect of various performance tradeoffs on selected
// micro-benchmarks" — implementation variants of the thin lock itself:
//
//   NOP       no synchronization at all (speed of light)
//   Inline    fast paths fully inlined (TL_ALWAYS_INLINE lock/unlock)
//   FnCall    fast paths behind an out-of-line call
//   ThinLock  the shipping config: dynamic CPU-type test per operation
//             (measured with the flag set to uniprocessor and to MP)
//   MP Sync   unconditional fences (isync/sync analogue: acquire fence on
//             lock, seq_cst fence on unlock)
//   UnlkC&S   unlock via compare-and-swap instead of a plain store
//   IBM112    the hot-lock baseline, as Figure 6's reference
//
// Benchmarks: Sync, NestedSync, MixedSync (three nested locks per
// iteration), CallSync.  Expected shape: NOP < Inline <= FnCall ~
// ThinLock(UP) < ThinLock(MP) ~ MP Sync < UnlkC&S, all well under IBM112.
//
//===----------------------------------------------------------------------===//

#include "baselines/HotLocks.h"
#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"
#include "workload/MicroBench.h"

#include "BenchContext.h"

#include <benchmark/benchmark.h>

using namespace thinlocks;
using namespace thinlocks::workload;

namespace {

constexpr uint64_t Inner = 4096;

enum class Kernel { Sync, NestedSync, MixedSync, CallSync };

template <typename Protocol>
uint64_t runKernel(Kernel K, Protocol &P, Object *Obj,
                   const ThreadContext &T) {
  switch (K) {
  case Kernel::Sync:
    return runNativeSync(P, Obj, T, Inner);
  case Kernel::NestedSync:
    return runNativeNestedSync(P, Obj, T, Inner);
  case Kernel::MixedSync:
    return runNativeMixedSync(P, Obj, T, Inner);
  case Kernel::CallSync:
    return runNativeCallSync(P, Obj, T, Inner);
  }
  return 0;
}

const char *kernelName(Kernel K) {
  switch (K) {
  case Kernel::Sync:
    return "Sync";
  case Kernel::NestedSync:
    return "NestedSync";
  case Kernel::MixedSync:
    return "MixedSync";
  case Kernel::CallSync:
    return "CallSync";
  }
  return "?";
}

/// NOP: the loop bodies with all synchronization removed.
void Fig6_NOP(benchmark::State &State) {
  Kernel K = static_cast<Kernel>(State.range(0));
  for (auto _ : State) {
    if (K == Kernel::CallSync)
      benchmark::DoNotOptimize(runNativeCall(Inner));
    else
      benchmark::DoNotOptimize(runNativeNoSync(Inner));
  }
  State.SetItemsProcessed(State.iterations() * Inner);
  State.SetLabel(std::string("NOP/") + kernelName(K));
}

template <typename Policy, bool DynamicFlagMp = true>
void Fig6_Variant(benchmark::State &State, const char *VariantName) {
  bool SavedFlag = MachineIsMultiprocessor.load(std::memory_order_relaxed);
  MachineIsMultiprocessor.store(DynamicFlagMp, std::memory_order_relaxed);

  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockImpl<Policy> Protocol(Monitors);
  ScopedThreadAttachment Main(Registry);
  Object *Obj = TheHeap.allocate(TheHeap.classes().registerClass("B", 0));

  Kernel K = static_cast<Kernel>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(runKernel(K, Protocol, Obj, Main.context()));
  State.SetItemsProcessed(State.iterations() * Inner);
  State.SetLabel(std::string(VariantName) + "/" + kernelName(K));

  MachineIsMultiprocessor.store(SavedFlag, std::memory_order_relaxed);
}

void Fig6_Inline(benchmark::State &State) {
  // "Inline" = best case: uniprocessor orders, fully inlined fast path.
  Fig6_Variant<UniprocessorPolicy>(State, "Inline");
}

/// FnCall: same algorithm but fast paths behind TL_NOINLINE calls.
void Fig6_FnCall(benchmark::State &State) {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockUP Protocol(Monitors);
  ScopedThreadAttachment Main(Registry);
  Object *Obj = TheHeap.allocate(TheHeap.classes().registerClass("B", 0));
  Kernel K = static_cast<Kernel>(State.range(0));

  auto syncLoop = [&](uint64_t Iters) {
    uint64_t Counter = 0;
    for (uint64_t I = 0; I < Iters; ++I) {
      Protocol.lockOutOfLine(Obj, Main.context());
      ++Counter;
      Protocol.unlockOutOfLine(Obj, Main.context());
    }
    return consumeValue(Counter);
  };
  auto nestedLoop = [&](uint64_t Iters) {
    Protocol.lockOutOfLine(Obj, Main.context());
    uint64_t Counter = syncLoop(Iters);
    Protocol.unlockOutOfLine(Obj, Main.context());
    return Counter;
  };
  auto mixedLoop = [&](uint64_t Iters) {
    uint64_t Counter = 0;
    for (uint64_t I = 0; I < Iters; ++I) {
      Protocol.lockOutOfLine(Obj, Main.context());
      Protocol.lockOutOfLine(Obj, Main.context());
      Protocol.lockOutOfLine(Obj, Main.context());
      ++Counter;
      Protocol.unlockOutOfLine(Obj, Main.context());
      Protocol.unlockOutOfLine(Obj, Main.context());
      Protocol.unlockOutOfLine(Obj, Main.context());
    }
    return consumeValue(Counter);
  };

  for (auto _ : State) {
    switch (K) {
    case Kernel::Sync:
    case Kernel::CallSync: // FnCall *is* the call variant.
      benchmark::DoNotOptimize(syncLoop(Inner));
      break;
    case Kernel::NestedSync:
      benchmark::DoNotOptimize(nestedLoop(Inner));
      break;
    case Kernel::MixedSync:
      benchmark::DoNotOptimize(mixedLoop(Inner));
      break;
    }
  }
  State.SetItemsProcessed(State.iterations() * Inner);
  State.SetLabel(std::string("FnCall/") + kernelName(K));
}

void Fig6_ThinLockDynamicUP(benchmark::State &State) {
  // Shipping configuration on a uniprocessor: flag checked per op, no
  // fences executed.
  Fig6_Variant<DynamicPolicy, /*DynamicFlagMp=*/false>(State,
                                                       "ThinLock(UP)");
}

void Fig6_ThinLockDynamicMP(benchmark::State &State) {
  Fig6_Variant<DynamicPolicy, /*DynamicFlagMp=*/true>(State,
                                                      "ThinLock(MP)");
}

void Fig6_MPSync(benchmark::State &State) {
  Fig6_Variant<MultiprocessorPolicy>(State, "MPSync");
}

void Fig6_UnlkCAS(benchmark::State &State) {
  Fig6_Variant<CasUnlockPolicy>(State, "UnlkC&S");
}

void Fig6_IBM112(benchmark::State &State) {
  Heap TheHeap;
  ThreadRegistry Registry;
  HotLocks Protocol(32, 4, 128);
  ScopedThreadAttachment Main(Registry);
  Object *Obj = TheHeap.allocate(TheHeap.classes().registerClass("B", 0));
  Kernel K = static_cast<Kernel>(State.range(0));
  // Warm up so the object is promoted to a hot lock (steady state).
  runNativeSync(Protocol, Obj, Main.context(), 16);
  for (auto _ : State)
    benchmark::DoNotOptimize(runKernel(K, Protocol, Obj, Main.context()));
  State.SetItemsProcessed(State.iterations() * Inner);
  State.SetLabel(std::string("IBM112/") + kernelName(K));
}

#define FIG6_ARGS ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
BENCHMARK(Fig6_NOP) FIG6_ARGS;
BENCHMARK(Fig6_Inline) FIG6_ARGS;
BENCHMARK(Fig6_FnCall) FIG6_ARGS;
BENCHMARK(Fig6_ThinLockDynamicUP) FIG6_ARGS;
BENCHMARK(Fig6_ThinLockDynamicMP) FIG6_ARGS;
BENCHMARK(Fig6_MPSync) FIG6_ARGS;
BENCHMARK(Fig6_UnlkCAS) FIG6_ARGS;
BENCHMARK(Fig6_IBM112) FIG6_ARGS;

} // namespace

BENCHMARK_MAIN();

//===- bench/bench_fastpath.cpp - Bare per-operation lock costs -----------===//
//
// Supports the paper's §2/§3.3 instruction-count claims at today's
// granularity: nanoseconds per lock/unlock pair on each path of each
// protocol.  The paper reports a 17-instruction common-case path for thin
// locks versus "several levels of indirection ... and a system call" for
// the JDK; here the same ordering must appear as:
//
//   thin first-lock pair < thin nested pair (no atomics at all)
//   << hot-lock pair << monitor-cache pair
//
// plus the ablations: CAS-unlock penalty, fat-lock (post-inflation) cost,
// and a plain std::mutex pair for calibration.
//
//===----------------------------------------------------------------------===//

#include "baselines/HotLocks.h"
#include "baselines/MonitorCache.h"
#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"

#include "BenchContext.h"

#include <benchmark/benchmark.h>

#include <mutex>

using namespace thinlocks;

namespace {

struct Env {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ScopedThreadAttachment Main{Registry, "bench"};
  const ClassInfo &Class = TheHeap.classes().registerClass("B", 0);

  Object *newObject() { return TheHeap.allocate(Class); }
  const ThreadContext &thread() { return Main.context(); }
};

void FastPath_ThinLockPair(benchmark::State &State) {
  Env E;
  ThinLockManager Locks(E.Monitors);
  Object *Obj = E.newObject();
  for (auto _ : State) {
    Locks.lock(Obj, E.thread());
    Locks.unlock(Obj, E.thread());
  }
  State.SetItemsProcessed(State.iterations());
}

void FastPath_ThinNestedPair(benchmark::State &State) {
  // The paper's "no atomic operations" path: object already owned.
  Env E;
  ThinLockManager Locks(E.Monitors);
  Object *Obj = E.newObject();
  Locks.lock(Obj, E.thread());
  for (auto _ : State) {
    Locks.lock(Obj, E.thread());
    Locks.unlock(Obj, E.thread());
  }
  Locks.unlock(Obj, E.thread());
  State.SetItemsProcessed(State.iterations());
}

void FastPath_ThinLockPairStats(benchmark::State &State) {
  // Instrumented variant: the striped-counter design requires the
  // stats-enabled pair to stay within 10% of the bare pair, so that
  // Table-1/Fig-3 collection runs measure the protocol, not the
  // bookkeeping.
  Env E;
  LockStats Stats;
  ThinLockManager Locks(E.Monitors, &Stats);
  Object *Obj = E.newObject();
  for (auto _ : State) {
    Locks.lock(Obj, E.thread());
    Locks.unlock(Obj, E.thread());
  }
  State.SetItemsProcessed(State.iterations());
}

void FastPath_ThinNestedPairStats(benchmark::State &State) {
  Env E;
  LockStats Stats;
  ThinLockManager Locks(E.Monitors, &Stats);
  Object *Obj = E.newObject();
  Locks.lock(Obj, E.thread());
  for (auto _ : State) {
    Locks.lock(Obj, E.thread());
    Locks.unlock(Obj, E.thread());
  }
  Locks.unlock(Obj, E.thread());
  State.SetItemsProcessed(State.iterations());
}

void FastPath_ThinLockPairUP(benchmark::State &State) {
  Env E;
  ThinLockUP Locks(E.Monitors);
  Object *Obj = E.newObject();
  for (auto _ : State) {
    Locks.lock(Obj, E.thread());
    Locks.unlock(Obj, E.thread());
  }
  State.SetItemsProcessed(State.iterations());
}

void FastPath_ThinLockPairMP(benchmark::State &State) {
  Env E;
  ThinLockMP Locks(E.Monitors);
  Object *Obj = E.newObject();
  for (auto _ : State) {
    Locks.lock(Obj, E.thread());
    Locks.unlock(Obj, E.thread());
  }
  State.SetItemsProcessed(State.iterations());
}

void FastPath_ThinLockPairCasUnlock(benchmark::State &State) {
  Env E;
  ThinLockCasUnlock Locks(E.Monitors);
  Object *Obj = E.newObject();
  for (auto _ : State) {
    Locks.lock(Obj, E.thread());
    Locks.unlock(Obj, E.thread());
  }
  State.SetItemsProcessed(State.iterations());
}

void FastPath_InflatedPair(benchmark::State &State) {
  // Post-inflation steady state: every op goes through the fat lock.
  Env E;
  ThinLockManager Locks(E.Monitors);
  Object *Obj = E.newObject();
  for (int I = 0; I < 257; ++I) // Inflate via count overflow.
    Locks.lock(Obj, E.thread());
  for (int I = 0; I < 257; ++I)
    Locks.unlock(Obj, E.thread());
  for (auto _ : State) {
    Locks.lock(Obj, E.thread());
    Locks.unlock(Obj, E.thread());
  }
  State.SetItemsProcessed(State.iterations());
}

void FastPath_MonitorCachePair(benchmark::State &State) {
  Env E;
  MonitorCache Cache(128);
  Object *Obj = E.newObject();
  for (auto _ : State) {
    Cache.lock(Obj, E.thread());
    Cache.unlock(Obj, E.thread());
  }
  State.SetItemsProcessed(State.iterations());
}

void FastPath_HotLockPair(benchmark::State &State) {
  Env E;
  HotLocks Hot(32, 4, 128);
  Object *Obj = E.newObject();
  for (int I = 0; I < 8; ++I) { // Promote to a hot lock first.
    Hot.lock(Obj, E.thread());
    Hot.unlock(Obj, E.thread());
  }
  for (auto _ : State) {
    Hot.lock(Obj, E.thread());
    Hot.unlock(Obj, E.thread());
  }
  State.SetItemsProcessed(State.iterations());
}

void FastPath_StdMutexPair(benchmark::State &State) {
  std::mutex Mutex;
  for (auto _ : State) {
    Mutex.lock();
    Mutex.unlock();
  }
  State.SetItemsProcessed(State.iterations());
}

void FastPath_TryLockPair(benchmark::State &State) {
  Env E;
  ThinLockManager Locks(E.Monitors);
  Object *Obj = E.newObject();
  for (auto _ : State) {
    benchmark::DoNotOptimize(Locks.tryLock(Obj, E.thread()));
    Locks.unlock(Obj, E.thread());
  }
  State.SetItemsProcessed(State.iterations());
}

void FastPath_TryLockForUncontended(benchmark::State &State) {
  // The bounded/deadlock-aware entry point must cost the same as
  // tryLock when uncontended: the deadline and detector machinery only
  // engage after a failed immediate attempt.
  Env E;
  ThinLockManager Locks(E.Monitors);
  Object *Obj = E.newObject();
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        Locks.tryLockFor(Obj, E.thread(), 1'000'000'000));
    Locks.unlock(Obj, E.thread());
  }
  State.SetItemsProcessed(State.iterations());
}

void FastPath_HoldsLockQuery(benchmark::State &State) {
  Env E;
  ThinLockManager Locks(E.Monitors);
  Object *Obj = E.newObject();
  Locks.lock(Obj, E.thread());
  for (auto _ : State)
    benchmark::DoNotOptimize(Locks.holdsLock(Obj, E.thread()));
  Locks.unlock(Obj, E.thread());
  State.SetItemsProcessed(State.iterations());
}

BENCHMARK(FastPath_ThinLockPair);
BENCHMARK(FastPath_ThinNestedPair);
BENCHMARK(FastPath_ThinLockPairStats);
BENCHMARK(FastPath_ThinNestedPairStats);
BENCHMARK(FastPath_ThinLockPairUP);
BENCHMARK(FastPath_ThinLockPairMP);
BENCHMARK(FastPath_ThinLockPairCasUnlock);
BENCHMARK(FastPath_InflatedPair);
BENCHMARK(FastPath_MonitorCachePair);
BENCHMARK(FastPath_HotLockPair);
BENCHMARK(FastPath_StdMutexPair);
BENCHMARK(FastPath_TryLockPair);
BENCHMARK(FastPath_TryLockForUncontended);
BENCHMARK(FastPath_HoldsLockQuery);

} // namespace

BENCHMARK_MAIN();

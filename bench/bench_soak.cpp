//===- bench/bench_soak.cpp - Sustained-load soak driver ------------------===//
//
// The long-running robustness harness (DESIGN.md §12): open-loop session
// load over the thin-lock substrate with SLO tracking, admission
// control, and graceful overload degradation.  Sized by *arrival rate*
// (not thread count) so the 1-CPU CI host and a real soak box run the
// same program at different --rate/--duration-s.
//
// Modes:
//   default        sustained load, no fault injection.
//   --chaos        additionally runs the seeded failpoint schedule
//                  (registry/monitor exhaustion, spurious wakes, widened
//                  race windows) under load.  Requires a
//                  -DTHINLOCKS_FAILPOINTS=ON build; exits 77 (ctest
//                  SKIP_RETURN_CODE) otherwise.
//   --smoke        CI profile: short duration, modest rate.
//   --adaptive     closes the profiler->policy loop: an
//                  AdaptivePolicyEngine ticks with the admission
//                  controller and steers the lock slow paths (spin
//                  class, eager inflation, KeepFat, speculative
//                  deflation).
//
// The binary is its own referee: quantile monotonicity, the accounting
// identity offered == completed + shed, typed-error bookkeeping, trace
// validity, and — under chaos — that the ladder escalated, every phase
// ran, and admission *recovered* (final level Normal, post-chaos
// admits).  Any violated check exits non-zero, which is what makes it
// usable from ctest and bench/run_benches.sh (BENCH_SOAK=1).
//
// The harness is protocol-generic: --protocol NAME (or the
// THINLOCKS_PROTOCOL env var) soaks any registered protocol; the name
// lands in the SLO snapshot, the config block, and every trace span.
// --adaptive stays thin-lock-only (the engine steers header policies).
//
// Usage:
//   bench_soak [--duration-s N] [--rate R] [--workers N] [--seed S]
//              [--protocol NAME] [--chaos] [--smoke] [--adaptive]
//              [--out BENCH_soak.json] [--trace-out PATH]
//
//===----------------------------------------------------------------------===//

#include "core/ProtocolRegistry.h"
#include "load/SoakHarness.h"
#include "obs/ChromeTrace.h"
#include "support/FailPoint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace thinlocks;
using namespace thinlocks::load;

namespace {

struct Options {
  double DurationSeconds = 10;
  double Rate = 300;
  unsigned Workers = 3;
  uint64_t Seed = 1;
  bool Chaos = false;
  bool Smoke = false;
  bool Adaptive = false;
  /// Empty = resolve via $THINLOCKS_PROTOCOL, then the default.
  const char *Protocol = "";
  const char *Out = "BENCH_soak.json";
  const char *TraceOut = nullptr;
};

[[noreturn]] void usage(const char *Argv0, int Exit) {
  std::fprintf(stderr,
               "usage: %s [--duration-s N] [--rate R] [--workers N]\n"
               "          [--seed S] [--protocol NAME] [--chaos] [--smoke]\n"
               "          [--adaptive] [--out PATH] [--trace-out PATH]\n",
               Argv0);
  std::exit(Exit);
}

bool parseOptions(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    auto next = [&]() -> const char * {
      if (I + 1 >= Argc)
        usage(Argv[0], 2);
      return Argv[++I];
    };
    if (std::strcmp(Argv[I], "--duration-s") == 0)
      Opts.DurationSeconds = std::strtod(next(), nullptr);
    else if (std::strcmp(Argv[I], "--rate") == 0)
      Opts.Rate = std::strtod(next(), nullptr);
    else if (std::strcmp(Argv[I], "--workers") == 0)
      Opts.Workers =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    else if (std::strcmp(Argv[I], "--seed") == 0)
      Opts.Seed = std::strtoull(next(), nullptr, 10);
    else if (std::strcmp(Argv[I], "--chaos") == 0)
      Opts.Chaos = true;
    else if (std::strcmp(Argv[I], "--smoke") == 0)
      Opts.Smoke = true;
    else if (std::strcmp(Argv[I], "--adaptive") == 0)
      Opts.Adaptive = true;
    else if (std::strcmp(Argv[I], "--protocol") == 0)
      Opts.Protocol = next();
    else if (std::strncmp(Argv[I], "--protocol=", 11) == 0)
      Opts.Protocol = Argv[I] + 11;
    else if (std::strcmp(Argv[I], "--out") == 0)
      Opts.Out = next();
    else if (std::strcmp(Argv[I], "--trace-out") == 0)
      Opts.TraceOut = next();
    else if (std::strcmp(Argv[I], "--help") == 0)
      usage(Argv[0], 0);
    else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Argv[I]);
      return false;
    }
  }
  return true;
}

int Failures = 0;

void check(bool Ok, const char *What) {
  if (Ok)
    return;
  std::fprintf(stderr, "FAIL: %s\n", What);
  ++Failures;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseOptions(Argc, Argv, Opts))
    return 2;

  if (Opts.Chaos && !failpoint::compiledIn()) {
    std::fprintf(stderr,
                 "skip: --chaos needs a -DTHINLOCKS_FAILPOINTS=ON build\n");
    return 77; // ctest SKIP_RETURN_CODE.
  }

  std::string Protocol = resolveProtocolName(Opts.Protocol);
  if (!isRegisteredProtocol(Protocol)) {
    std::fprintf(stderr, "error: unknown protocol '%s'; registered:",
                 Protocol.c_str());
    for (const std::string &Name : registeredProtocolNames())
      std::fprintf(stderr, " %s", Name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  if (Opts.Adaptive && Protocol != "ThinLock") {
    std::fprintf(stderr,
                 "error: --adaptive steers thin-lock header policies; "
                 "protocol '%s' has none\n",
                 Protocol.c_str());
    return 2;
  }

  SoakConfig Config;
  Config.Protocol = Protocol;
  Config.ArrivalsPerSecond = Opts.Rate;
  Config.DurationSeconds = Opts.Smoke ? 3.0 : Opts.DurationSeconds;
  Config.Workers = Opts.Workers;
  Config.Seed = Opts.Seed;
  Config.Chaos = Opts.Chaos;
  if (Opts.Adaptive) {
    Config.AdaptivePolicy = true;
    // The harness owns its heap; session objects outlive the run, so
    // the engine may dereference cold tracked addresses to deflate.
    Config.Policy.SpeculativeDeflation = true;
  }
  if (Opts.Chaos) {
    // Shrunk resource spaces: occupancy signals move visibly, while the
    // injected exhaustion (transient by design) supplies the typed
    // errors.  Genuine permanent exhaustion would — correctly — pin the
    // ladder high, and this run must end recovered.
    Config.MonitorCapacity = 1u << 16;
    Config.RegistryCapacity = 256;
  }

  std::printf("bench_soak: protocol=%s rate=%.0f/s duration=%.1fs "
              "workers=%u seed=%llu chaos=%d adaptive=%d\n",
              Protocol.c_str(), Config.ArrivalsPerSecond,
              Config.DurationSeconds, Config.Workers,
              static_cast<unsigned long long>(Config.Seed),
              Opts.Chaos ? 1 : 0, Opts.Adaptive ? 1 : 0);

  SoakResult Result = runSoak(Config);
  const obs::SloSnapshot &Slo = Result.Slo;

  std::printf(
      "completed=%llu offered=%llu shed=%llu (%.1f%%) deferred=%llu "
      "degraded=%llu\n",
      static_cast<unsigned long long>(Slo.SessionsCompleted),
      static_cast<unsigned long long>(Slo.SessionsOffered),
      static_cast<unsigned long long>(Slo.SessionsShed),
      Slo.ShedRate * 100.0,
      static_cast<unsigned long long>(Slo.SessionsDeferred),
      static_cast<unsigned long long>(Slo.SessionsDegraded));
  std::printf("acquire p50=%lluns p99=%lluns p999=%lluns max=%lluns\n",
              static_cast<unsigned long long>(Slo.Acquire.P50),
              static_cast<unsigned long long>(Slo.Acquire.P99),
              static_cast<unsigned long long>(Slo.Acquire.P999),
              static_cast<unsigned long long>(Slo.Acquire.Max));
  std::printf("session p50=%lluns p99=%lluns p999=%lluns max=%lluns\n",
              static_cast<unsigned long long>(Slo.Session.P50),
              static_cast<unsigned long long>(Slo.Session.P99),
              static_cast<unsigned long long>(Slo.Session.P999),
              static_cast<unsigned long long>(Slo.Session.Max));
  std::printf("wake p50=%lluns p99=%lluns count=%llu\n",
              static_cast<unsigned long long>(Slo.Wake.P50),
              static_cast<unsigned long long>(Slo.Wake.P99),
              static_cast<unsigned long long>(Slo.Wake.Count));
  std::printf("errors: monitor_exhaustion=%llu registry_exhaustion=%llu "
              "emergency_inflations=%llu attach_fallbacks=%llu\n",
              static_cast<unsigned long long>(Slo.MonitorExhaustionEvents),
              static_cast<unsigned long long>(Slo.RegistryExhaustionEvents),
              static_cast<unsigned long long>(Slo.EmergencyInflations),
              static_cast<unsigned long long>(Result.AttachFallbacks));
  std::printf("ladder: transitions=%llu final=%s ticks=[%llu %llu %llu "
              "%llu]\n",
              static_cast<unsigned long long>(Slo.LevelTransitions),
              degradationLevelName(
                  static_cast<DegradationLevel>(Slo.FinalLevel)),
              static_cast<unsigned long long>(Slo.TicksAtLevel[0]),
              static_cast<unsigned long long>(Slo.TicksAtLevel[1]),
              static_cast<unsigned long long>(Slo.TicksAtLevel[2]),
              static_cast<unsigned long long>(Slo.TicksAtLevel[3]));
  for (const auto &Transition : Result.LevelTimeline)
    std::printf("  ladder -> %s\n",
                degradationLevelName(Transition.second));
  if (Opts.Adaptive) {
    const policy::PolicyCounters &P = Result.Policy;
    std::printf("policy: ticks=%llu promotions=%llu demotions=%llu "
                "expiries=%llu deep=%llu park_early=%llu keep_fat=%llu "
                "spec_deflations=%llu publish_failures=%llu tracked=%llu\n",
                static_cast<unsigned long long>(P.Ticks),
                static_cast<unsigned long long>(P.Promotions),
                static_cast<unsigned long long>(P.Demotions),
                static_cast<unsigned long long>(P.Expiries),
                static_cast<unsigned long long>(P.DeepSpinDecisions),
                static_cast<unsigned long long>(P.ParkEarlyDecisions),
                static_cast<unsigned long long>(P.KeepFatDecisions),
                static_cast<unsigned long long>(P.SpeculativeDeflations),
                static_cast<unsigned long long>(P.PublishFailures),
                static_cast<unsigned long long>(P.ObjectsTracked));
  }

  // --- Self-checks -------------------------------------------------------
  check(Slo.Protocol == Protocol,
        "SLO snapshot not labeled with the protocol under load");
  check(Slo.SessionsCompleted > 0, "no sessions completed");
  check(Slo.RequestsCompleted > 0, "no requests completed");
  check(Slo.Acquire.monotone(), "acquire quantiles not monotone");
  check(Slo.Session.monotone(), "session quantiles not monotone");
  check(Slo.Wake.monotone(), "wake quantiles not monotone");
  check(Slo.SessionsOffered ==
            Slo.SessionsCompleted + Slo.SessionsShed,
        "accounting identity offered == completed + shed violated");
  if (!Result.WorstTraceJson.empty()) {
    std::string Error;
    check(obs::validateChromeTraceJson(Result.WorstTraceJson, &Error),
          "worst-sessions trace failed validation");
    if (!Error.empty())
      std::fprintf(stderr, "  trace error: %s\n", Error.c_str());
  }
  check(!Result.WorstSessions.empty(), "no worst-session spans retained");

  if (Opts.Adaptive)
    check(Result.Policy.Ticks > 0,
          "adaptive engine wired but never ticked");

  if (Opts.Chaos) {
    check(Result.ChaosPhasesRun == buildChaosSchedule(Config.ChaosSeed).size(),
          "not every chaos phase ran (raise --duration-s)");
    check(Result.Admission.Escalations > 0,
          "chaos ran but the ladder never escalated");
    check(Slo.MonitorExhaustionEvents + Slo.RegistryExhaustionEvents +
                  Slo.EmergencyInflations >
              0,
          "chaos ran but no typed exhaustion errors were recorded");
    check(Slo.SessionsShed > 0, "chaos ran but nothing was shed");
    check(Slo.FinalLevel ==
              static_cast<unsigned>(DegradationLevel::Normal),
          "admission did not recover to Normal after pressure lifted");
    check(Result.AdmitsAfterChaos > 0,
          "no sessions admitted after the chaos phases ended");
  }

  // --- Artifacts ---------------------------------------------------------
  std::string Json = "{\n  \"config\": {\"protocol\": \"" + Protocol +
                     "\", \"rate_per_s\": " +
                     std::to_string(Config.ArrivalsPerSecond) +
                     ", \"duration_s\": " +
                     std::to_string(Config.DurationSeconds) +
                     ", \"workers\": " + std::to_string(Config.Workers) +
                     ", \"seed\": " + std::to_string(Config.Seed) +
                     ", \"chaos\": " +
                     (Opts.Chaos ? std::string("true") : std::string("false")) +
                     ", \"heavy_fraction\": " +
                     std::to_string(Config.HeavyFraction) +
                     ", \"hot_objects\": " +
                     std::to_string(Config.HotObjects) +
                     ", \"zipf_theta\": " +
                     std::to_string(Config.ZipfTheta) +
                     ", \"adaptive\": " +
                     (Opts.Adaptive ? std::string("true")
                                    : std::string("false")) +
                     "},\n  \"slo\": ";
  Json += Slo.toJson();
  if (Opts.Adaptive) {
    const policy::PolicyCounters &P = Result.Policy;
    Json += ",\n  \"policy\": {\"ticks\": " + std::to_string(P.Ticks) +
            ", \"promotions\": " + std::to_string(P.Promotions) +
            ", \"demotions\": " + std::to_string(P.Demotions) +
            ", \"expiries\": " + std::to_string(P.Expiries) +
            ", \"deep_spin\": " + std::to_string(P.DeepSpinDecisions) +
            ", \"park_early\": " + std::to_string(P.ParkEarlyDecisions) +
            ", \"keep_fat\": " + std::to_string(P.KeepFatDecisions) +
            ", \"class_promotions\": " + std::to_string(P.ClassPromotions) +
            ", \"speculative_deflations\": " +
            std::to_string(P.SpeculativeDeflations) +
            ", \"publish_failures\": " + std::to_string(P.PublishFailures) +
            ", \"monitor_retirements\": " +
            std::to_string(Result.MonitorRetirements) + "}";
  }
  if (!Result.ProtocolStatsJson.empty())
    Json += ",\n  \"protocol_stats\": " + Result.ProtocolStatsJson;
  Json += "}\n";
  std::ofstream OutFile(Opts.Out, std::ios::binary | std::ios::trunc);
  if (!OutFile || !(OutFile << Json) || !OutFile.flush()) {
    std::fprintf(stderr, "error: cannot write %s\n", Opts.Out);
    return 1;
  }
  std::printf("wrote %s (%zu bytes)\n", Opts.Out, Json.size());
  if (Opts.TraceOut != nullptr && !Result.WorstTraceJson.empty()) {
    std::ofstream TraceFile(Opts.TraceOut,
                            std::ios::binary | std::ios::trunc);
    if (!TraceFile || !(TraceFile << Result.WorstTraceJson) ||
        !TraceFile.flush()) {
      std::fprintf(stderr, "error: cannot write %s\n", Opts.TraceOut);
      return 1;
    }
    std::printf("wrote %s (%zu bytes, %zu spans)\n", Opts.TraceOut,
                Result.WorstTraceJson.size(), Result.WorstSessions.size());
  }

  if (Failures != 0) {
    std::fprintf(stderr, "bench_soak: %d self-check(s) failed\n", Failures);
    return 1;
  }
  std::printf("bench_soak: all self-checks passed\n");
  return 0;
}

//===- bench/BenchRusage.h - CPU-time counters for benchmarks --*- C++ -*-===//
///
/// \file
/// Per-benchmark CPU time (rusage user+system) reported next to wall
/// time.  Wall time alone cannot distinguish a blocking protocol that
/// sleeps from one that burns the quantum spinning: a condvar broadcast
/// that wakes ten threads to grant one costs little wall time on a busy
/// machine but shows up directly as CPU time.  The committed BENCH JSONs
/// therefore carry a `cpu_ns_per_op` counter wherever the waiting
/// substrate is on the measured path.
///
/// Usage: construct a ScopedCpuSample immediately before the timed loop
/// and call report() after it:
///
///   ScopedCpuSample Cpu;
///   for (auto _ : State) { ... }
///   Cpu.report(State);
///
/// Each benchmark thread samples its *own* CPU clock (RUSAGE_THREAD);
/// google-benchmark sums the counter across threads and kAvgIterations
/// divides by total iterations, so the reported value is aggregate CPU
/// nanoseconds per operation across the whole thread group.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_BENCH_BENCHRUSAGE_H
#define THINLOCKS_BENCH_BENCHRUSAGE_H

#include <benchmark/benchmark.h>

#include <cstdint>
#include <sys/resource.h>

namespace thinlocks {

/// \returns the calling thread's consumed CPU time (user + system) in
/// nanoseconds.  Falls back to whole-process time where RUSAGE_THREAD is
/// unavailable — then only single-threaded benches report meaningfully.
inline uint64_t threadCpuNanos() {
  rusage Usage;
#if defined(RUSAGE_THREAD)
  getrusage(RUSAGE_THREAD, &Usage);
#else
  getrusage(RUSAGE_SELF, &Usage);
#endif
  auto ToNanos = [](const timeval &Tv) {
    return static_cast<uint64_t>(Tv.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(Tv.tv_usec) * 1000ull;
  };
  return ToNanos(Usage.ru_utime) + ToNanos(Usage.ru_stime);
}

/// Samples the thread CPU clock at construction; report() emits the
/// delta as the `cpu_ns_per_op` benchmark counter.
class ScopedCpuSample {
  uint64_t StartNanos = threadCpuNanos();

public:
  void report(benchmark::State &State) {
    uint64_t Delta = threadCpuNanos() - StartNanos;
    State.counters["cpu_ns_per_op"] = benchmark::Counter(
        static_cast<double>(Delta), benchmark::Counter::kAvgIterations);
  }
};

} // namespace thinlocks

#endif // THINLOCKS_BENCH_BENCHRUSAGE_H

//===- bench/bench_fig4.cpp - Reproduce paper Figure 4 --------------------===//
//
// Figure 4: "Performance of locking mechanisms on various micro-benchmark
// tests" — the Table 2 micro-benchmarks (NoSync, Sync, NestedSync,
// MultiSync n, Call, CallSync, NestedCallSync, Threads n) across the
// three implementations: ThinLock, JDK111 (monitor cache), IBM112 (hot
// locks).
//
// Two families:
//  - VM_*: interpreted bytecode on the microjvm (the paper's setting).
//    Label = protocol; arg 0 selects it.
//  - Native_*: direct fast-path kernels (no interpreter), used for the
//    MultiSync working-set sweep and the Threads contention sweep where
//    the protocol cost must dominate.
//
// Expected shape (paper): ThinLock fastest on Sync (3.7x JDK111, 1.8x
// IBM112); NestedSync advantage shrinks vs IBM112; IBM112 cliff at
// MultiSync n > 32; JDK111 degrades when n exceeds the monitor cache;
// ThinLock flat in n; Threads: IBM112 best at small n, ThinLock >=
// JDK111.
//
//===----------------------------------------------------------------------===//

#include "baselines/HotLocks.h"
#include "baselines/MonitorCache.h"
#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"
#include "vm/NativeLibrary.h"
#include "workload/MicroBench.h"

#include "BenchContext.h"

#include <benchmark/benchmark.h>

using namespace thinlocks;
using namespace thinlocks::vm;
using namespace thinlocks::workload;

namespace {

//===----------------------------------------------------------------------===//
// VM (interpreted) family — arg 0: 0 = ThinLock, 1 = JDK111, 2 = IBM112.
//===----------------------------------------------------------------------===//

struct VmFixture {
  VM Vm;
  MicroPrograms Programs;
  ScopedThreadAttachment Main;
  Object *Target;

  explicit VmFixture(ProtocolKind Kind)
      : Vm(makeConfig(Kind)), Programs(buildMicroPrograms(Vm)),
        Main(Vm.threads(), "bench"),
        Target(Vm.newInstance(*Programs.BenchKlass)) {}

  static VM::Config makeConfig(ProtocolKind Kind) {
    VM::Config Cfg;
    Cfg.Protocol = Kind;
    return Cfg;
  }
};

void runVmBenchmark(benchmark::State &State,
                    const Method *MicroPrograms::*Program) {
  ProtocolKind Kind = static_cast<ProtocolKind>(State.range(0));
  VmFixture Fixture(Kind);
  constexpr int32_t Inner = 2000;
  for (auto _ : State)
    runMicroProgram(Fixture.Vm, *(Fixture.Programs.*Program), Inner,
                    Fixture.Target, Fixture.Main.context());
  State.SetItemsProcessed(State.iterations() * Inner);
  State.SetLabel(protocolKindName(Kind));
}

void VM_NoSync(benchmark::State &State) {
  runVmBenchmark(State, &MicroPrograms::NoSync);
}
void VM_Sync(benchmark::State &State) {
  runVmBenchmark(State, &MicroPrograms::Sync);
}
void VM_NestedSync(benchmark::State &State) {
  runVmBenchmark(State, &MicroPrograms::NestedSync);
}
void VM_Call(benchmark::State &State) {
  runVmBenchmark(State, &MicroPrograms::Call);
}
void VM_CallSync(benchmark::State &State) {
  runVmBenchmark(State, &MicroPrograms::CallSync);
}
void VM_NestedCallSync(benchmark::State &State) {
  runVmBenchmark(State, &MicroPrograms::NestedCallSync);
}

BENCHMARK(VM_NoSync)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(VM_Sync)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(VM_NestedSync)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(VM_Call)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(VM_CallSync)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(VM_NestedCallSync)->Arg(0)->Arg(1)->Arg(2);

//===----------------------------------------------------------------------===//
// Native family
//===----------------------------------------------------------------------===//

struct ThinMaker {
  MonitorTable Monitors;
  ThinLockManager Protocol{Monitors};
  static constexpr const char *Name = "ThinLock";
};
struct CacheMaker {
  MonitorCache Protocol{/*PoolSize=*/128};
  static constexpr const char *Name = "JDK111";
};
struct HotMaker {
  HotLocks Protocol{/*NumHotLocks=*/32, /*PromotionThreshold=*/4,
                    /*PoolSize=*/128};
  static constexpr const char *Name = "IBM112";
};

template <typename Maker> void Native_Sync(benchmark::State &State) {
  Heap TheHeap;
  ThreadRegistry Registry;
  Maker M;
  ScopedThreadAttachment Main(Registry);
  Object *Obj =
      TheHeap.allocate(TheHeap.classes().registerClass("B", 0));
  constexpr uint64_t Inner = 4096;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        runNativeSync(M.Protocol, Obj, Main.context(), Inner));
  State.SetItemsProcessed(State.iterations() * Inner);
  State.SetLabel(Maker::Name);
}

template <typename Maker> void Native_NestedSync(benchmark::State &State) {
  Heap TheHeap;
  ThreadRegistry Registry;
  Maker M;
  ScopedThreadAttachment Main(Registry);
  Object *Obj =
      TheHeap.allocate(TheHeap.classes().registerClass("B", 0));
  constexpr uint64_t Inner = 4096;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        runNativeNestedSync(M.Protocol, Obj, Main.context(), Inner));
  State.SetItemsProcessed(State.iterations() * Inner);
  State.SetLabel(Maker::Name);
}

template <typename Maker> void Native_CallSync(benchmark::State &State) {
  Heap TheHeap;
  ThreadRegistry Registry;
  Maker M;
  ScopedThreadAttachment Main(Registry);
  Object *Obj =
      TheHeap.allocate(TheHeap.classes().registerClass("B", 0));
  constexpr uint64_t Inner = 4096;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        runNativeCallSync(M.Protocol, Obj, Main.context(), Inner));
  State.SetItemsProcessed(State.iterations() * Inner);
  State.SetLabel(Maker::Name);
}

/// MultiSync n: arg 0 = working-set size.  Reports time; items = lock
/// operations, so per-item time exposes the n > pool cliffs.
template <typename Maker> void Native_MultiSync(benchmark::State &State) {
  Heap TheHeap;
  ThreadRegistry Registry;
  Maker M;
  ScopedThreadAttachment Main(Registry);
  const ClassInfo &Class = TheHeap.classes().registerClass("B", 0);
  size_t N = static_cast<size_t>(State.range(0));
  std::vector<Object *> Objects;
  for (size_t I = 0; I < N; ++I)
    Objects.push_back(TheHeap.allocate(Class));
  // Warm up: stabilizes hot-lock promotion and cache state.
  runNativeMultiSync(M.Protocol, Objects, Main.context(), 8);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        runNativeMultiSync(M.Protocol, Objects, Main.context(), 1));
  State.SetItemsProcessed(State.iterations() * N);
  State.SetLabel(Maker::Name);
}

/// Threads n: arg 0 = number of contending threads on one object.
template <typename Maker> void Native_Threads(benchmark::State &State) {
  Heap TheHeap;
  ThreadRegistry Registry;
  Maker M;
  const ClassInfo &Class = TheHeap.classes().registerClass("B", 0);
  Object *Obj = TheHeap.allocate(Class);
  uint32_t NumThreads = static_cast<uint32_t>(State.range(0));
  constexpr uint64_t PerThread = 2000;
  for (auto _ : State)
    benchmark::DoNotOptimize(runNativeThreads(M.Protocol, Obj, Registry,
                                              NumThreads, PerThread));
  State.SetItemsProcessed(State.iterations() * NumThreads * PerThread);
  State.SetLabel(Maker::Name);
}

void Native_NoSync(benchmark::State &State) {
  constexpr uint64_t Inner = 4096;
  for (auto _ : State)
    benchmark::DoNotOptimize(runNativeNoSync(Inner));
  State.SetItemsProcessed(State.iterations() * Inner);
}

BENCHMARK(Native_NoSync);
BENCHMARK_TEMPLATE(Native_Sync, ThinMaker);
BENCHMARK_TEMPLATE(Native_Sync, CacheMaker);
BENCHMARK_TEMPLATE(Native_Sync, HotMaker);
BENCHMARK_TEMPLATE(Native_NestedSync, ThinMaker);
BENCHMARK_TEMPLATE(Native_NestedSync, CacheMaker);
BENCHMARK_TEMPLATE(Native_NestedSync, HotMaker);
BENCHMARK_TEMPLATE(Native_CallSync, ThinMaker);
BENCHMARK_TEMPLATE(Native_CallSync, CacheMaker);
BENCHMARK_TEMPLATE(Native_CallSync, HotMaker);

#define MULTISYNC_ARGS                                                      \
  ->Arg(1)->Arg(4)->Arg(16)->Arg(24)->Arg(32)->Arg(48)->Arg(64)->Arg(128)  \
      ->Arg(256)->Arg(1024)
BENCHMARK_TEMPLATE(Native_MultiSync, ThinMaker) MULTISYNC_ARGS;
BENCHMARK_TEMPLATE(Native_MultiSync, CacheMaker) MULTISYNC_ARGS;
BENCHMARK_TEMPLATE(Native_MultiSync, HotMaker) MULTISYNC_ARGS;

#define THREADS_ARGS ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
BENCHMARK_TEMPLATE(Native_Threads, ThinMaker) THREADS_ARGS;
BENCHMARK_TEMPLATE(Native_Threads, CacheMaker) THREADS_ARGS;
BENCHMARK_TEMPLATE(Native_Threads, HotMaker) THREADS_ARGS;

} // namespace

BENCHMARK_MAIN();

//===- bench/macro_trace.cpp - Traced macro replay trace artifact ---------===//
//
// The observability demo (DESIGN.md §10): runs one contended macro
// replay with lock-event tracing enabled, then emits the two exporter
// views — a Chrome trace_event JSON file (load it at chrome://tracing or
// https://ui.perfetto.dev) and the top-N hot-lock table on stdout.
//
// The run has a known answer: replayProfileContended() hammers one
// shared "HotShared" object from several threads, so that object must
// rank first in the hot-lock table.  The binary validates both the
// ranking and the JSON (through obs::validateChromeTraceJson) and exits
// non-zero when either fails, which is what makes it usable as a CI
// smoke check and from bench/run_benches.sh (BENCH_TRACE=1).
//
// Usage:
//   macro_trace [--profile javac] [--out BENCH_trace.json] [--top 10]
//               [--contenders 3] [--hammer-ops 40000]
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "obs/ChromeTrace.h"
#include "obs/LockEventCollector.h"
#include "threads/ThreadRegistry.h"
#include "workload/MacroReplay.h"
#include "workload/Profiles.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

using namespace thinlocks;

namespace {

struct Options {
  const char *Profile = "javac";
  const char *Out = "BENCH_trace.json";
  unsigned Top = 10;
  unsigned Contenders = 3;
  uint64_t HammerOps = 40000;
};

[[noreturn]] void usage(const char *Argv0, int Exit) {
  std::fprintf(stderr,
               "usage: %s [--profile NAME] [--out PATH] [--top N]\n"
               "          [--contenders N] [--hammer-ops N]\n",
               Argv0);
  std::exit(Exit);
}

bool parseOptions(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    auto next = [&]() -> const char * {
      if (I + 1 >= Argc)
        usage(Argv[0], 2);
      return Argv[++I];
    };
    if (std::strcmp(Argv[I], "--profile") == 0)
      Opts.Profile = next();
    else if (std::strcmp(Argv[I], "--out") == 0)
      Opts.Out = next();
    else if (std::strcmp(Argv[I], "--top") == 0)
      Opts.Top = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    else if (std::strcmp(Argv[I], "--contenders") == 0)
      Opts.Contenders =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    else if (std::strcmp(Argv[I], "--hammer-ops") == 0)
      Opts.HammerOps = std::strtoull(next(), nullptr, 10);
    else if (std::strcmp(Argv[I], "--help") == 0)
      usage(Argv[0], 0);
    else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Argv[I]);
      return false;
    }
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseOptions(Argc, Argv, Opts))
    return 2;

  const workload::BenchmarkProfile *Profile =
      workload::findProfile(Opts.Profile);
  if (!Profile) {
    std::fprintf(stderr, "error: unknown profile '%s'\n", Opts.Profile);
    return 2;
  }

  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockManager Locks(Monitors);
  Heap TheHeap;
  obs::LockEventCollector Collector(Registry);

  workload::ContendedReplayConfig Cfg;
  Cfg.Contenders = Opts.Contenders;
  Cfg.HammerOpsPerThread = Opts.HammerOps;

  obs::setTracing(true);
  // Sampling aggregator: drain the per-thread rings periodically while
  // the workload runs, so the profile covers the whole run instead of
  // just the last ring-capacity events per thread (the rings keep only
  // the newest events once they wrap).
  std::atomic<bool> StopSampler{false};
  std::thread Sampler([&Collector, &StopSampler] {
    while (!StopSampler.load(std::memory_order_acquire)) {
      Collector.drain();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  workload::ContendedReplayResult Run;
  {
    ScopedThreadAttachment Attach(Registry, "replay-main");
    Run = workload::replayProfileContended(*Profile, Locks, TheHeap,
                                           Registry, Attach.context(), Cfg);
  }
  obs::setTracing(false);
  StopSampler.store(true, std::memory_order_release);
  Sampler.join();
  Collector.drain();

  std::printf("profile=%s sync_ops=%llu hammer_ops=%llu events=%llu "
              "dropped=%llu\n",
              Profile->Name,
              static_cast<unsigned long long>(Run.Replay.SyncOperations),
              static_cast<unsigned long long>(Run.HammerOps),
              static_cast<unsigned long long>(Collector.totalEvents()),
              static_cast<unsigned long long>(Collector.droppedEvents()));

  const ClassRegistry &Classes = TheHeap.classes();
  std::string Table = Collector.formatTopLocks(Opts.Top, &Classes);
  std::fputs(Table.c_str(), stdout);

  // Ground truth: the deliberately hammered object must top the table.
  std::vector<obs::HotLockEntry> Top = Collector.topLocks(1);
  uint64_t HotAddr = reinterpret_cast<uint64_t>(Run.HotObject);
  if (Top.empty() || Top[0].ObjectAddr != HotAddr) {
    std::fprintf(stderr,
                 "error: hot object 0x%llx is not the top-ranked lock\n",
                 static_cast<unsigned long long>(HotAddr));
    return 1;
  }

  std::string Json = obs::toChromeTraceJson(Collector.events(), &Classes);
  std::string Error;
  if (!obs::validateChromeTraceJson(Json, &Error)) {
    std::fprintf(stderr, "error: generated trace failed validation: %s\n",
                 Error.c_str());
    return 1;
  }
  std::ofstream OutFile(Opts.Out, std::ios::binary | std::ios::trunc);
  if (!OutFile || !(OutFile << Json) || !OutFile.flush()) {
    std::fprintf(stderr, "error: cannot write %s\n", Opts.Out);
    return 1;
  }
  std::printf("wrote %s (%zu bytes, %zu events)\n", Opts.Out, Json.size(),
              Collector.events().size());
  return 0;
}

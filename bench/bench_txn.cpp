//===- bench/bench_txn.cpp - Transactional scenario grid ------------------===//
//
// Runs the transactional scenario engine (src/txn/, DESIGN.md §15) over
// every registered protocol x every conflict policy and publishes the
// grid as one JSON artifact (BENCH_txn.json via run_benches.sh
// BENCH_TXN=1):
//
//   NoWait      tryLock 2PL, abort on any conflict
//   WaitDie     timestamp-ordered 2PL over tryLockFor; on thin locks
//               the cycle detector's Deadlock verdict is a precise
//               abort signal
//   Validated   OCC reads + short lock-only commit window
//
// Each cell draws Zipf(0.8) read/write sets from a large per-run object
// universe, so the hot head concentrates conflicts onto a few monitors
// (inflation/morphing territory) while the tail stays thin.  Rows carry
// commit/abort counts split by cause, commit throughput, and the
// abort-latency p99.
//
// Self-checking like bench_matrix: the grid must cover all 5 protocols
// x 3 policies, every cell must satisfy `started == committed +
// aborted`, commit at least once, and report zero serializability
// violations, or the binary exits non-zero.
//
// Usage:
//   bench_txn [--smoke] [--out BENCH_txn.json]
//
//===----------------------------------------------------------------------===//

#include "core/ProtocolRegistry.h"
#include "txn/TxnEngine.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace thinlocks;
using namespace thinlocks::txn;

namespace {

struct Options {
  bool Smoke = false;
  const char *Out = "BENCH_txn.json";
};

/// Grid sizing; --smoke shrinks everything for CI.
struct Sizes {
  size_t HeapObjects = 1'000'000;
  unsigned Threads = 4;
  uint64_t TxnsPerThread = 50'000;
  uint32_t ReadSetSize = 4;
  uint32_t WriteSetSize = 2;
  double ZipfTheta = 0.8;
};

struct Cell {
  std::string Protocol;
  std::string ProtocolImpl;
  std::string Policy;
  TxnStats Stats;
  uint64_t ElapsedNanos = 0;
  double CommitsPerSec = 0;
  bool IntegrityOk = false;
};

int Failures = 0;

void check(bool Ok, const char *What) {
  if (Ok)
    return;
  std::fprintf(stderr, "FAIL: %s\n", What);
  ++Failures;
}

std::string renderJson(const std::vector<Cell> &Cells,
                       const std::vector<std::string> &Protocols,
                       const std::vector<std::string> &Policies) {
  std::string Json = "{\n  \"schema\": \"thinlocks-bench-txn-v1\",\n";
#ifdef NDEBUG
  Json += "  \"build_type\": \"release\",\n";
#else
  Json += "  \"build_type\": \"debug\",\n";
#endif
  auto appendList = [&Json](const char *Key,
                            const std::vector<std::string> &Values) {
    Json += "  \"";
    Json += Key;
    Json += "\": [";
    for (size_t I = 0; I < Values.size(); ++I) {
      if (I != 0)
        Json += ", ";
      Json += "\"" + Values[I] + "\"";
    }
    Json += "],\n";
  };
  appendList("protocols", Protocols);
  appendList("policies", Policies);
  Json += "  \"rows\": [\n";
  for (size_t I = 0; I < Cells.size(); ++I) {
    const Cell &C = Cells[I];
    char Buf[1024];
    int Len = std::snprintf(
        Buf, sizeof(Buf),
        "    {\"protocol\": \"%s\", \"protocol_impl\": \"%s\", "
        "\"policy\": \"%s\", \"started\": %llu, \"committed\": %llu, "
        "\"aborted\": %llu, "
        "\"aborts\": {\"busy\": %llu, \"die\": %llu, \"deadlock\": %llu, "
        "\"validation\": %llu}, "
        "\"commits_per_sec\": %.1f, \"abort_p99_ns\": %llu, "
        "\"commit_p99_ns\": %llu, \"consistency_violations\": %llu, "
        "\"attach_failures\": %llu, \"elapsed_ns\": %llu}%s\n",
        C.Protocol.c_str(), C.ProtocolImpl.c_str(), C.Policy.c_str(),
        static_cast<unsigned long long>(C.Stats.Started),
        static_cast<unsigned long long>(C.Stats.Committed),
        static_cast<unsigned long long>(C.Stats.aborted()),
        static_cast<unsigned long long>(C.Stats.AbortedBusy),
        static_cast<unsigned long long>(C.Stats.AbortedDie),
        static_cast<unsigned long long>(C.Stats.AbortedDeadlock),
        static_cast<unsigned long long>(C.Stats.AbortedValidation),
        C.CommitsPerSec,
        static_cast<unsigned long long>(C.Stats.AbortLatency.quantile(0.99)),
        static_cast<unsigned long long>(C.Stats.CommitLatency.quantile(0.99)),
        static_cast<unsigned long long>(C.Stats.ConsistencyViolations),
        static_cast<unsigned long long>(C.Stats.AttachFailures),
        static_cast<unsigned long long>(C.ElapsedNanos),
        I + 1 == Cells.size() ? "" : ",");
    // A truncated row is malformed JSON that would otherwise only fail
    // later at the schema gate; fail here, loudly.
    check(Len > 0 && static_cast<size_t>(Len) < sizeof(Buf),
          "json row truncated (raise the row buffer size)");
    Json += Buf;
  }
  Json += "  ]\n}\n";
  return Json;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Opts.Smoke = true;
    else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc)
      Opts.Out = Argv[++I];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n", Argv[0]);
      return 2;
    }
  }

  Sizes S;
  if (Opts.Smoke) {
    S.HeapObjects = 4096;
    S.Threads = 3;
    S.TxnsPerThread = 1500;
  }

  const std::vector<std::string> &Protocols = registeredProtocolNames();
  std::vector<std::string> Policies;
  for (ConflictPolicyKind Kind : allConflictPolicies())
    Policies.push_back(conflictPolicyName(Kind));

  std::vector<Cell> Cells;
  for (const std::string &Name : Protocols) {
    for (ConflictPolicyKind Kind : allConflictPolicies()) {
      TxnScenarioConfig Config;
      Config.Protocol = Name;
      Config.Policy = Kind;
      Config.Params.HeapObjects = S.HeapObjects;
      Config.Params.ZipfTheta = S.ZipfTheta;
      Config.Params.Threads = S.Threads;
      Config.Params.TxnsPerThread = S.TxnsPerThread;
      Config.Params.ReadSetSize = S.ReadSetSize;
      Config.Params.WriteSetSize = S.WriteSetSize;
      Config.Params.Seed = 0x7a11 + Cells.size();
      TxnScenarioResult Result = runTxnScenario(Config);

      Cell C;
      C.Protocol = Name;
      C.ProtocolImpl = Result.ProtocolImpl;
      C.Policy = conflictPolicyName(Kind);
      C.Stats = Result.Stats;
      C.ElapsedNanos = Result.ElapsedNanos;
      C.CommitsPerSec = Result.commitsPerSecond();
      C.IntegrityOk = Result.IntegrityOk;
      std::printf("  %-12s %-10s committed=%-8llu aborted=%-7llu "
                  "%10.0f commits/s  abort_p99=%lluns\n",
                  C.Protocol.c_str(), C.Policy.c_str(),
                  static_cast<unsigned long long>(C.Stats.Committed),
                  static_cast<unsigned long long>(C.Stats.aborted()),
                  C.CommitsPerSec,
                  static_cast<unsigned long long>(
                      C.Stats.AbortLatency.quantile(0.99)));
      Cells.push_back(std::move(C));
    }
  }

  // --- Self-checks -------------------------------------------------------
  check(Protocols.size() >= 5, "grid needs all 5 registered protocols");
  check(Policies.size() == 3, "grid needs all 3 conflict policies");
  check(Cells.size() == Protocols.size() * Policies.size(),
        "grid is not complete (some protocol skipped a policy)");
  for (const Cell &C : Cells) {
    check(!C.Protocol.empty() && !C.ProtocolImpl.empty() && !C.Policy.empty(),
          "cell missing its labels");
    check(C.Stats.identityHolds(),
          "accounting identity started == committed + aborted violated");
    check(C.Stats.Committed > 0, "cell committed zero transactions");
    check(C.Stats.ConsistencyViolations == 0,
          "serializability spot-check failed (value != version)");
    check(C.IntegrityOk,
          "version-sum integrity violated (lost or phantom writes)");
    check(C.Stats.LeakedLocks == 0, "aborted transaction leaked a lock");
    check(C.Stats.AttachFailures == 0,
          "a worker failed to attach (throughput under-reported)");
  }

  std::string Json = renderJson(Cells, Protocols, Policies);
  std::ofstream OutFile(Opts.Out, std::ios::binary | std::ios::trunc);
  if (!OutFile || !(OutFile << Json) || !OutFile.flush()) {
    std::fprintf(stderr, "error: cannot write %s\n", Opts.Out);
    return 1;
  }
  std::printf("wrote %s (%zu bytes, %zu cells)\n", Opts.Out, Json.size(),
              Cells.size());

  if (Failures != 0) {
    std::fprintf(stderr, "bench_txn: %d self-check(s) failed\n", Failures);
    return 1;
  }
  std::printf("bench_txn: all self-checks passed\n");
  return 0;
}

//===- bench/bench_inflation_storm.cpp - Inflation-path scalability -------===//
//
// The paper's protocol makes the *lock* path scale (one CAS on a private
// header word), but every inflation funnels through MonitorTable
// allocation.  This suite measures that funnel directly: N threads
// inflating a stream of fresh objects (Storm_Inflate) and N threads
// hammering the raw allocator (Storm_AllocateOnly).  Before the sharded
// allocator, both serialized on MonitorTable::Mutex; after, index blocks
// are reserved in bulk and handed out from per-thread shards lock-free.
//
// Numbers feed BENCH_contention.json (bench/run_benches.sh) and the
// DESIGN.md "Hot-path scalability" trajectory.  Inflation is permanent
// (every monitor allocated in a run stays live), so thread 0 rebuilds
// the heap and table before each run — the google-benchmark start
// barrier makes the thread-0 setup/teardown idiom safe — keeping both
// the 23-bit index space and memory bounded across repetitions.
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"

#include "BenchRusage.h"

#include "BenchContext.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

using namespace thinlocks;

namespace {

constexpr int64_t StormIterations = 32768;
constexpr int StormRepetitions = 5;

// Shared across all threads of a benchmark run (magic-static init is
// thread-safe; google-benchmark starts worker threads concurrently).
struct StormEnv {
  ThreadRegistry Registry;
  std::unique_ptr<MonitorTable> Monitors;
  std::unique_ptr<ThinLockManager> Locks;

  StormEnv() { reset(); }

  /// Rebuilds the measured state.  Called by thread 0 before each run,
  /// which the start barrier orders before any worker's first iteration.
  void reset() {
    Locks.reset();
    Monitors = std::make_unique<MonitorTable>();
    Locks = std::make_unique<ThinLockManager>(*Monitors);
  }
};

StormEnv &env() {
  static StormEnv E;
  return E;
}

/// N threads, each locking and force-inflating its own stream of fresh
/// objects: the full inflation path (thin CAS + monitor allocation +
/// hold transfer + fat publish + fat unlock).
void Storm_Inflate(benchmark::State &State) {
  StormEnv &E = env();
  if (State.thread_index() == 0)
    E.reset();
  ScopedThreadAttachment Attach(E.Registry, "storm");
  // Pre-allocate the object stream outside the timed region (the arena
  // heap takes its own mutex; that is not the funnel under test).  The
  // stream comes from a per-thread private heap: pre-loop code runs
  // concurrently with thread 0's reset(), so workers must not touch the
  // shared env until the start barrier.
  Heap PrivateHeap;
  const ClassInfo &Class = PrivateHeap.classes().registerClass("S", 0);
  std::vector<Object *> Objects(static_cast<size_t>(State.max_iterations));
  for (auto &Obj : Objects)
    Obj = PrivateHeap.allocate(Class);
  size_t Next = 0;
  ScopedCpuSample Cpu;
  for (auto _ : State) {
    Object *Obj = Objects[Next++];
    E.Locks->lock(Obj, Attach.context());
    benchmark::DoNotOptimize(E.Locks->inflate(Obj, Attach.context()));
    E.Locks->unlock(Obj, Attach.context());
  }
  Cpu.report(State);
  State.SetItemsProcessed(State.iterations());
}

/// N threads on the raw allocator: isolates MonitorTable::allocate()
/// from the protocol around it.
void Storm_AllocateOnly(benchmark::State &State) {
  StormEnv &E = env();
  if (State.thread_index() == 0)
    E.reset();
  ScopedThreadAttachment Attach(E.Registry, "storm-alloc");
  ScopedCpuSample Cpu;
  for (auto _ : State)
    benchmark::DoNotOptimize(E.Monitors->allocate());
  Cpu.report(State);
  State.SetItemsProcessed(State.iterations());
}

BENCHMARK(Storm_Inflate)
    ->ThreadRange(1, 8)
    ->Iterations(StormIterations)
    ->Repetitions(StormRepetitions)
    ->ReportAggregatesOnly(true)
    ->UseRealTime();
BENCHMARK(Storm_AllocateOnly)
    ->ThreadRange(1, 8)
    ->Iterations(StormIterations)
    ->Repetitions(StormRepetitions)
    ->ReportAggregatesOnly(true)
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();

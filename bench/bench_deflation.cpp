//===- bench/bench_deflation.cpp - Deflation ablation ---------------------===//
//
// Ablation for the paper's permanence-of-inflation design decision
// (§2.3: "Once an object's lock is inflated, it remains inflated for the
// lifetime of the object.  This discipline prevents thrashing between
// the thin and fat states.") versus the follow-up alternative
// (DeflationPolicy::WhenQuiescent, cf. Tasuki locks).
//
// Two scenarios expose the two sides of the tradeoff:
//
//  Recovery — an object suffers ONE contention burst, then is used by a
//    single thread forever after.  Permanent inflation pays the fat-lock
//    cost on every subsequent operation; deflation returns to thin-lock
//    speed.  (Deflating should win clearly.)
//
//  Thrash — the object is *repeatedly* contended: bursts of two threads
//    separated by solo phases.  Deflation converts every burst into an
//    inflate/deflate cycle plus bounced lookups.  (The gap narrows or
//    reverses; counters show the cycle count.)
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"
#include "workload/MicroBench.h"

#include "BenchContext.h"

#include <benchmark/benchmark.h>

using namespace thinlocks;
using namespace thinlocks::workload;

namespace {

struct Fixture {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockManager Locks;
  Object *Obj;

  explicit Fixture(DeflationPolicy Policy)
      : Locks(Monitors, &Stats, Policy),
        Obj(TheHeap.allocate(TheHeap.classes().registerClass("B", 0))) {}

  /// One contention burst: a second thread fights for the object,
  /// guaranteeing inflation.
  void contentionBurst() {
    ScopedThreadAttachment Me(Registry);
    Locks.lock(Obj, Me.context());
    std::atomic<bool> Started{false};
    std::thread Contender([&] {
      ScopedThreadAttachment Other(Registry);
      Started.store(true, std::memory_order_release);
      Locks.lock(Obj, Other.context());
      Locks.unlock(Obj, Other.context());
    });
    while (!Started.load(std::memory_order_acquire))
      std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    Locks.unlock(Obj, Me.context());
    Contender.join();
  }
};

void Deflation_Recovery(benchmark::State &State, DeflationPolicy Policy) {
  Fixture F(Policy);
  F.contentionBurst(); // Inflate once.
  ScopedThreadAttachment Me(F.Registry);
  // With deflation, the first unlock below retires the monitor and all
  // further pairs run thin; without it, every pair goes through the fat
  // lock forever.
  constexpr uint64_t Inner = 4096;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        runNativeSync(F.Locks, F.Obj, Me.context(), Inner));
  State.SetItemsProcessed(State.iterations() * Inner);
  State.counters["deflations"] =
      static_cast<double>(F.Stats.deflations());
  State.counters["monitors"] =
      static_cast<double>(F.Monitors.liveMonitorCount());
}

void Deflation_Recovery_Never(benchmark::State &State) {
  Deflation_Recovery(State, DeflationPolicy::Never);
  State.SetLabel("permanent (paper)");
}
void Deflation_Recovery_WhenQuiescent(benchmark::State &State) {
  Deflation_Recovery(State, DeflationPolicy::WhenQuiescent);
  State.SetLabel("deflating");
}

void Deflation_Thrash(benchmark::State &State, DeflationPolicy Policy) {
  Fixture F(Policy);
  ScopedThreadAttachment Me(F.Registry);
  constexpr uint64_t SoloPairs = 256;
  for (auto _ : State) {
    // Burst of contention (re-inflates under the deflating policy)...
    F.contentionBurst();
    // ...followed by a solo phase.
    benchmark::DoNotOptimize(
        runNativeSync(F.Locks, F.Obj, Me.context(), SoloPairs));
  }
  State.SetItemsProcessed(State.iterations() * SoloPairs);
  State.counters["inflations"] =
      static_cast<double>(F.Stats.inflations());
  State.counters["deflations"] =
      static_cast<double>(F.Stats.deflations());
  State.counters["monitors"] =
      static_cast<double>(F.Monitors.liveMonitorCount());
}

void Deflation_Thrash_Never(benchmark::State &State) {
  Deflation_Thrash(State, DeflationPolicy::Never);
  State.SetLabel("permanent (paper)");
}
void Deflation_Thrash_WhenQuiescent(benchmark::State &State) {
  Deflation_Thrash(State, DeflationPolicy::WhenQuiescent);
  State.SetLabel("deflating");
}

BENCHMARK(Deflation_Recovery_Never);
BENCHMARK(Deflation_Recovery_WhenQuiescent);
BENCHMARK(Deflation_Thrash_Never)->Unit(benchmark::kMicrosecond);
BENCHMARK(Deflation_Thrash_WhenQuiescent)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();

//===- bench/bench_adaptive.cpp - Adaptive policy engine A/B --------------===//
//
// A/B harness for the profiler->policy loop (DESIGN.md §13): the same
// workload run with a static SpinPolicy versus with an
// AdaptivePolicyEngine ticking between rounds and publishing per-object
// decisions into the lock slow paths.
//
// Three scenarios:
//
//  Fastpath — single-thread uncontended lock/unlock pairs.  The policy
//    store is consulted only on slow paths, so wiring the engine must
//    cost nothing here: adaptive and static rows must be within noise.
//
//  ZipfHot — four threads (one more than the evaluation host has CPUs)
//    hammer a Zipf(0.9)-skewed object set, so a few hot objects take
//    almost all the contention while the tail stays thin.  Under
//    DeflationPolicy::WhenQuiescent the hot objects thrash (every burst
//    re-inflates, every quiescent unlock retires) and the contenders'
//    spin ladders convoy on the oversubscribed CPU.  The engine detects
//    the thrash and publishes KeepFat + EagerInflate, converting the
//    churn into a stable fat monitor whose FIFO queue parks waiters off
//    the runqueue.  The per-acquire latency histogram (p50/p99) and the
//    inflation/retirement counters are the comparison: expect the
//    adaptive arm to trade a slightly higher median (hot acquires pay
//    the fat-monitor path) for a much better tail and an
//    orders-of-magnitude drop in inflation/retirement churn.
//
//  PhaseShift — one object runs hot long enough for the engine to
//    promote KeepFat, then the load goes single-threaded.  The engine
//    must expire the decision once the object is cold and speculatively
//    retire the now-quiescent monitor, so the timed solo phase runs at
//    thin-lock speed again.  Counters prove the round trip (expiries,
//    spec_deflations) and the timed ns/op shows the recovery.
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "load/Zipf.h"
#include "obs/LockEventCollector.h"
#include "obs/LockEvents.h"
#include "policy/AdaptivePolicyEngine.h"
#include "support/Histogram.h"
#include "support/SplitMix64.h"
#include "threads/ThreadRegistry.h"
#include "workload/MicroBench.h"

#include "BenchContext.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>

using namespace thinlocks;
using namespace thinlocks::workload;

namespace {

struct Fixture {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  obs::LockEventCollector Collector;
  ThinLockManager Locks;
  std::vector<Object *> Objects;
  std::unique_ptr<policy::AdaptivePolicyEngine> Engine;

  Fixture(bool Adaptive, size_t NumObjects)
      : Collector(Registry),
        Locks(Monitors, &Stats, DeflationPolicy::WhenQuiescent) {
    const ClassInfo &Cls = TheHeap.classes().registerClass("Hot", 0);
    Objects.reserve(NumObjects);
    for (size_t I = 0; I < NumObjects; ++I)
      Objects.push_back(TheHeap.allocate(Cls));
    if (Adaptive) {
      policy::PolicyConfig Cfg;
      // The fixture owns the heap and every object outlives the engine,
      // which is exactly the lifetime contract speculative deflation
      // asserts.
      Cfg.SpeculativeDeflation = true;
      Engine = std::make_unique<policy::AdaptivePolicyEngine>(Collector,
                                                              Monitors, Cfg);
      Locks.setPolicyStore(&Engine->policyStore());
    }
  }

  /// One sampling step.  The static arm still drains the collector so
  /// both arms pay the same tracing/drain overhead; only the policy
  /// loop itself differs.
  void tick() {
    if (Engine)
      Engine->tick();
    else
      Collector.drain();
  }
};

/// Ranks below this hold the lock across a yield (a "long" service).
constexpr size_t HotRanks = 4;
/// Contender threads running alongside the timed thread.  More runnable
/// threads than the 1-CPU host has cores is the point: a convoy forms on
/// the hot ranks, and yield-spinning waiters keep stealing the quantum
/// from whichever thread holds the lock.
constexpr unsigned Contenders = 3;

/// One thread's share of a contention round: \p Ops Zipf-sampled
/// lock/increment/unlock operations, optionally timing each acquire.
/// Every 8th hold of a hot rank yields the CPU *while the lock is held*:
/// on the 1-CPU evaluation host free-running loops would otherwise each
/// finish inside their own scheduling quantum and never collide — the
/// mid-hold yield donates the quantum to a peer, which then piles onto
/// the held hot object.
uint64_t zipfOps(Fixture &F, const load::ZipfSampler &Zipf, SplitMix64 &Rng,
                 const ThreadContext &Me, uint64_t Ops,
                 LatencyHistogram *Acquire) {
  uint64_t Counter = 0;
  for (uint64_t I = 0; I < Ops; ++I) {
    size_t Rank = Zipf.sample(Rng);
    Object *Obj = F.Objects[Rank];
    if (Acquire) {
      uint64_t Start = obs::monotonicNanos();
      F.Locks.lock(Obj, Me);
      Acquire->record(obs::monotonicNanos() - Start);
    } else {
      F.Locks.lock(Obj, Me);
    }
    ++Counter;
    if (Rank < HotRanks && I % 8 == 0)
      std::this_thread::yield();
    F.Locks.unlock(Obj, Me);
  }
  return consumeValue(Counter);
}

/// One multi-thread round followed by one engine tick.  \p Seed varies
/// the contenders' sample streams between rounds.
void zipfRound(Fixture &F, const load::ZipfSampler &Zipf, SplitMix64 &MainRng,
               const ThreadContext &Me, uint64_t Ops, uint64_t Seed,
               LatencyHistogram *Acquire) {
  std::atomic<unsigned> Ready{0};
  std::vector<std::thread> Threads;
  Threads.reserve(Contenders);
  for (unsigned T = 0; T < Contenders; ++T) {
    Threads.emplace_back([&F, &Zipf, Seed, T, Ops, &Ready] {
      ScopedThreadAttachment Other(F.Registry);
      SplitMix64 Rng(0x9E3779B97F4A7C15ull ^ (Seed * Contenders + T));
      Ready.fetch_add(1, std::memory_order_release);
      zipfOps(F, Zipf, Rng, Other.context(), Ops, nullptr);
    });
  }
  while (Ready.load(std::memory_order_acquire) < Contenders)
    std::this_thread::yield();
  zipfOps(F, Zipf, MainRng, Me, Ops, Acquire);
  for (std::thread &T : Threads)
    T.join();
  F.tick();
}

/// One guaranteed-inflation contention burst (cf. bench_deflation).
void contentionBurst(Fixture &F, Object *Obj) {
  ScopedThreadAttachment Me(F.Registry);
  F.Locks.lock(Obj, Me.context());
  std::atomic<bool> Started{false};
  std::thread Contender([&F, Obj, &Started] {
    ScopedThreadAttachment Other(F.Registry);
    Started.store(true, std::memory_order_release);
    F.Locks.lock(Obj, Other.context());
    F.Locks.unlock(Obj, Other.context());
  });
  while (!Started.load(std::memory_order_acquire))
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::microseconds(200));
  F.Locks.unlock(Obj, Me.context());
  Contender.join();
}

//===----------------------------------------------------------------------===//
// Fastpath: adaptive wiring must be free off the slow paths.
//===----------------------------------------------------------------------===//

void Adaptive_Fastpath(benchmark::State &State, bool Adaptive) {
  Fixture F(Adaptive, 1);
  obs::setTracing(false);
  ScopedThreadAttachment Me(F.Registry);
  constexpr uint64_t Inner = 4096;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        runNativeSync(F.Locks, F.Objects[0], Me.context(), Inner));
  State.SetItemsProcessed(State.iterations() * Inner);
}

void Adaptive_Fastpath_Static(benchmark::State &State) {
  Adaptive_Fastpath(State, false);
  State.SetLabel("static");
}
void Adaptive_Fastpath_Adaptive(benchmark::State &State) {
  Adaptive_Fastpath(State, true);
  State.SetLabel("adaptive");
}

//===----------------------------------------------------------------------===//
// ZipfHot: thrashing hot objects, static vs adaptive.
//===----------------------------------------------------------------------===//

void Adaptive_ZipfHot(benchmark::State &State, bool Adaptive) {
  constexpr size_t NumObjects = 32;
  constexpr double Theta = 0.9;
  constexpr uint64_t OpsPerRound = 512;
  constexpr uint64_t WarmupRounds = 8;

  Fixture F(Adaptive, NumObjects);
  obs::setTracing(true);
  load::ZipfSampler Zipf(NumObjects, Theta);
  ScopedThreadAttachment Me(F.Registry);
  SplitMix64 MainRng(1);
  LatencyHistogram Acquire;

  // Warm-up: both arms run the same rounds; in the adaptive arm this is
  // where the engine earns its promote dwell, so the timed rounds below
  // measure the published steady state, not the learning transient.
  uint64_t Seed = 0;
  for (uint64_t Round = 0; Round < WarmupRounds; ++Round)
    zipfRound(F, Zipf, MainRng, Me.context(), OpsPerRound, ++Seed, nullptr);
  const uint64_t WarmupInflations = F.Stats.inflations();

  for (auto _ : State)
    zipfRound(F, Zipf, MainRng, Me.context(), OpsPerRound, ++Seed, &Acquire);
  State.SetItemsProcessed(State.iterations() * OpsPerRound);

  State.counters["p50_acquire_ns"] =
      static_cast<double>(Acquire.quantile(0.50));
  State.counters["p99_acquire_ns"] =
      static_cast<double>(Acquire.quantile(0.99));
  State.counters["mean_acquire_ns"] = static_cast<double>(Acquire.mean());
  State.counters["timed_inflations"] =
      static_cast<double>(F.Stats.inflations() - WarmupInflations);
  State.counters["monitor_retirements"] =
      static_cast<double>(F.Monitors.retirementEvents());
  if (F.Engine) {
    policy::PolicyCounters C = F.Engine->counters();
    State.counters["keep_fat"] = static_cast<double>(C.KeepFatDecisions);
    State.counters["promotions"] = static_cast<double>(C.Promotions);
    State.counters["demotions"] = static_cast<double>(C.Demotions);
  }
  obs::setTracing(false);
}

void Adaptive_ZipfHot_Static(benchmark::State &State) {
  Adaptive_ZipfHot(State, false);
  State.SetLabel("static");
}
void Adaptive_ZipfHot_Adaptive(benchmark::State &State) {
  Adaptive_ZipfHot(State, true);
  State.SetLabel("adaptive");
}

//===----------------------------------------------------------------------===//
// PhaseShift: promote under thrash, then recover to thin when cold.
//===----------------------------------------------------------------------===//

void Adaptive_PhaseShift(benchmark::State &State) {
  Fixture F(/*Adaptive=*/true, 1);
  obs::setTracing(true);
  Object *Obj = F.Objects[0];

  // Hot phase: repeated inflate/deflate bursts until KeepFat publishes.
  for (int Round = 0; Round < 12; ++Round) {
    contentionBurst(F, Obj);
    F.tick();
  }
  // Cold phase: no activity.  The engine walks the object to cold
  // expiry, drops the KeepFat decision, and its deflation scan retires
  // the quiescent monitor (tracking state itself is dropped at 2x).
  const unsigned ColdTicks = F.Engine->config().ColdTicks;
  for (unsigned Round = 0; Round < 2 * ColdTicks + 2; ++Round)
    F.tick();

  // Timed: solo pairs after recovery must run on the thin fast path.
  ScopedThreadAttachment Me(F.Registry);
  constexpr uint64_t Inner = 4096;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        runNativeSync(F.Locks, Obj, Me.context(), Inner));
  State.SetItemsProcessed(State.iterations() * Inner);

  policy::PolicyCounters C = F.Engine->counters();
  State.counters["keep_fat"] = static_cast<double>(C.KeepFatDecisions);
  State.counters["expiries"] = static_cast<double>(C.Expiries);
  State.counters["spec_deflations"] =
      static_cast<double>(C.SpeculativeDeflations);
  State.counters["live_monitors"] =
      static_cast<double>(F.Monitors.liveMonitorCount());
  State.SetLabel("adaptive");
  obs::setTracing(false);
}

BENCHMARK(Adaptive_Fastpath_Static);
BENCHMARK(Adaptive_Fastpath_Adaptive);
BENCHMARK(Adaptive_ZipfHot_Static)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(48);
BENCHMARK(Adaptive_ZipfHot_Adaptive)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(48);
BENCHMARK(Adaptive_PhaseShift);

} // namespace

BENCHMARK_MAIN();

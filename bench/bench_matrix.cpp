//===- bench/bench_matrix.cpp - Cross-protocol benchmark matrix -----------===//
//
// Runs every registered synchronization protocol (core/ProtocolRegistry.h)
// through the same workload battery and publishes the grid as one JSON
// artifact (BENCH_matrix.json via run_benches.sh BENCH_MATRIX=1):
//
//   uncontended_pair   lock/unlock pairs on one unshared object — the
//                      fast-path cost Table 2 quotes.
//   multisync_64/512   the Figure 4 working-set sweep: every iteration
//                      synchronizes each of n distinct objects once, so
//                      per-object state (header bits vs. side tables)
//                      dominates.
//   zipf_convoy        threads hammering a Zipf(0.8)-skewed hot set —
//                      contention concentrated on a few objects, the
//                      soak harness's popularity shape.
//   macro_javac        the replayed javac locking profile (Table 1
//                      characterization) at a fixed op target.
//
// The grid is built with withProtocol(): each cell runs against the
// *concrete* protocol type, so the measured loops compile exactly like
// the per-protocol benchmarks (no virtual dispatch in the timed region).
// Every row carries both the registry name and the protocol's own
// protocolName() so artifacts stay attributable when the thin-lock
// manager reports its active policy ("Dynamic") rather than "ThinLock".
//
// Self-checking like bench_soak: at least 4 protocols x 3 workloads,
// every row labeled and non-empty, or the binary exits non-zero.
//
// Usage:
//   bench_matrix [--smoke] [--out BENCH_matrix.json]
//
//===----------------------------------------------------------------------===//

#include "core/ProtocolRegistry.h"
#include "heap/Heap.h"
#include "load/Zipf.h"
#include "support/SplitMix64.h"
#include "support/Timer.h"
#include "threads/ThreadRegistry.h"
#include "workload/MacroReplay.h"
#include "workload/MicroBench.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace thinlocks;
using namespace thinlocks::workload;

namespace {

struct Options {
  bool Smoke = false;
  const char *Out = "BENCH_matrix.json";
};

/// Iteration budget per workload; --smoke shrinks everything for CI.
struct Sizes {
  uint64_t PairIters = 2'000'000;
  uint64_t MultiIters = 2'000; ///< Times the whole working set.
  unsigned ConvoyThreads = 4;
  uint64_t ConvoyOpsPerThread = 20'000;
  size_t ConvoyHotObjects = 64;
  uint64_t MacroTargetOps = 200'000;
};

struct Row {
  std::string Protocol;     ///< Registry name ("ThinLock", ...).
  std::string ProtocolImpl; ///< The protocol's own protocolName().
  std::string Workload;
  uint64_t Ops = 0;
  uint64_t ElapsedNanos = 0;

  double nsPerOp() const {
    return Ops == 0 ? 0.0
                    : static_cast<double>(ElapsedNanos) /
                          static_cast<double>(Ops);
  }
};

int Failures = 0;

void check(bool Ok, const char *What) {
  if (Ok)
    return;
  std::fprintf(stderr, "FAIL: %s\n", What);
  ++Failures;
}

/// Zipf convoy: \p Threads registry-attached threads each performing
/// \p OpsPerThread lock/work/unlock operations on a Zipf(0.8)-skewed set
/// of \p HotCount shared objects.  \returns total elapsed nanos.
template <SyncProtocol P>
uint64_t runZipfConvoy(P &Protocol, ThreadRegistry &Registry, Heap &TheHeap,
                       unsigned Threads, uint64_t OpsPerThread,
                       size_t HotCount) {
  const ClassInfo &Class =
      TheHeap.classes().registerClass("MatrixHot", /*SlotCount=*/1);
  std::vector<Object *> Hot;
  Hot.reserve(HotCount);
  for (size_t I = 0; I < HotCount; ++I)
    Hot.push_back(TheHeap.allocate(Class));
  load::ZipfSampler Popularity(HotCount, 0.8);

  // Start gate so the convoy actually overlaps (see MacroReplay.h's
  // contended variant) instead of running serialized short loops.
  std::atomic<bool> Go{false};
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back(
        [&Protocol, &Registry, &Popularity, &Hot, &Go, OpsPerThread, T] {
          ScopedThreadAttachment Attach(Registry, "convoy");
          const ThreadContext &Me = Attach.context();
          if (!Me.isValid())
            return;
          SplitMix64 Rng(0x5eed + T);
          uint32_t Acc = T + 1;
          while (!Go.load(std::memory_order_acquire))
            std::this_thread::yield();
          for (uint64_t I = 0; I < OpsPerThread; ++I) {
            Object *Obj = Hot[Popularity.sample(Rng)];
            Protocol.lock(Obj, Me);
            Acc = replayWork(Acc, 16);
            Protocol.unlock(Obj, Me);
          }
          consumeValue(Acc);
        });
  }
  StopWatch Watch;
  Go.store(true, std::memory_order_release);
  for (std::thread &Worker : Workers)
    Worker.join();
  return Watch.elapsedNanos();
}

/// Runs the full workload battery against one concrete protocol.
template <SyncProtocol P>
void runBattery(P &Protocol, const std::string &Name, const Sizes &S,
                std::vector<Row> &Rows) {
  ThreadRegistry Registry(1024);
  Heap TheHeap;
  ScopedThreadAttachment Main(Registry, "matrix-main");
  const ThreadContext &Me = Main.context();

  auto addRow = [&](const char *Workload, uint64_t Ops, uint64_t Nanos) {
    Row R;
    R.Protocol = Name;
    R.ProtocolImpl = Protocol.protocolName();
    R.Workload = Workload;
    R.Ops = Ops;
    R.ElapsedNanos = Nanos;
    Rows.push_back(R);
    std::printf("  %-12s %-16s ops=%-9llu %8.1f ns/op\n", Name.c_str(),
                Workload, static_cast<unsigned long long>(Ops), R.nsPerOp());
  };

  const ClassInfo &Class =
      TheHeap.classes().registerClass("MatrixBench", /*SlotCount=*/1);

  {
    Object *Obj = TheHeap.allocate(Class);
    StopWatch Watch;
    runNativeSync(Protocol, Obj, Me, S.PairIters);
    addRow("uncontended_pair", S.PairIters, Watch.elapsedNanos());
  }

  for (size_t SetSize : {size_t(64), size_t(512)}) {
    std::vector<Object *> Objects;
    Objects.reserve(SetSize);
    for (size_t I = 0; I < SetSize; ++I)
      Objects.push_back(TheHeap.allocate(Class));
    std::string Workload = "multisync_" + std::to_string(SetSize);
    StopWatch Watch;
    runNativeMultiSync(Protocol, Objects, Me, S.MultiIters);
    addRow(Workload.c_str(), S.MultiIters * SetSize, Watch.elapsedNanos());
  }

  {
    uint64_t Nanos =
        runZipfConvoy(Protocol, Registry, TheHeap, S.ConvoyThreads,
                      S.ConvoyOpsPerThread, S.ConvoyHotObjects);
    addRow("zipf_convoy",
           static_cast<uint64_t>(S.ConvoyThreads) * S.ConvoyOpsPerThread,
           Nanos);
  }

  {
    const BenchmarkProfile *Profile = findProfile("javac");
    check(Profile != nullptr, "javac profile missing");
    if (Profile) {
      ReplayConfig Cfg =
          scaledConfigFor(*Profile, S.MacroTargetOps, /*WorkPerSync=*/24);
      ReplayResult Result = replayProfile(*Profile, Protocol, TheHeap, Me, Cfg);
      addRow("macro_javac", Result.SyncOperations, Result.ElapsedNanos);
    }
  }
}

std::string renderJson(const std::vector<Row> &Rows,
                       const std::vector<std::string> &Protocols,
                       const std::vector<std::string> &Workloads) {
  std::string Json = "{\n  \"schema\": \"thinlocks-bench-matrix-v1\",\n";
#ifdef NDEBUG
  Json += "  \"build_type\": \"release\",\n";
#else
  Json += "  \"build_type\": \"debug\",\n";
#endif
  auto appendList = [&Json](const char *Key,
                            const std::vector<std::string> &Values) {
    Json += "  \"";
    Json += Key;
    Json += "\": [";
    for (size_t I = 0; I < Values.size(); ++I) {
      if (I != 0)
        Json += ", ";
      Json += "\"" + Values[I] + "\"";
    }
    Json += "],\n";
  };
  appendList("protocols", Protocols);
  appendList("workloads", Workloads);
  Json += "  \"rows\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"protocol\": \"%s\", \"protocol_impl\": \"%s\", "
                  "\"workload\": \"%s\", \"ops\": %llu, \"elapsed_ns\": "
                  "%llu, \"ns_per_op\": %.2f}%s\n",
                  R.Protocol.c_str(), R.ProtocolImpl.c_str(),
                  R.Workload.c_str(),
                  static_cast<unsigned long long>(R.Ops),
                  static_cast<unsigned long long>(R.ElapsedNanos),
                  R.nsPerOp(), I + 1 == Rows.size() ? "" : ",");
    Json += Buf;
  }
  Json += "  ]\n}\n";
  return Json;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Opts.Smoke = true;
    else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc)
      Opts.Out = Argv[++I];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n", Argv[0]);
      return 2;
    }
  }

  Sizes S;
  if (Opts.Smoke) {
    S.PairIters = 200'000;
    S.MultiIters = 200;
    S.ConvoyOpsPerThread = 4'000;
    S.MacroTargetOps = 20'000;
  }

  const std::vector<std::string> &Protocols = registeredProtocolNames();
  std::vector<Row> Rows;
  for (const std::string &Name : Protocols) {
    std::printf("bench_matrix: protocol %s\n", Name.c_str());
    bool Ran = withProtocol(
        Name, ProtocolConfig(),
        [&](auto &Protocol, ProtocolHandle &) {
          runBattery(Protocol, Name, S, Rows);
        });
    check(Ran, "registered protocol failed to instantiate");
  }

  // Workload list, in first-seen order.
  std::vector<std::string> Workloads;
  for (const Row &R : Rows)
    if (std::find(Workloads.begin(), Workloads.end(), R.Workload) ==
        Workloads.end())
      Workloads.push_back(R.Workload);

  // --- Self-checks -------------------------------------------------------
  check(Protocols.size() >= 4, "matrix needs at least 4 protocols");
  check(Workloads.size() >= 3, "matrix needs at least 3 workloads");
  check(Rows.size() == Protocols.size() * Workloads.size(),
        "grid is not complete (some protocol skipped a workload)");
  for (const Row &R : Rows) {
    check(!R.Protocol.empty() && !R.ProtocolImpl.empty(),
          "row missing its protocol label");
    check(R.Ops > 0, "row measured zero operations");
  }

  std::string Json = renderJson(Rows, Protocols, Workloads);
  std::ofstream OutFile(Opts.Out, std::ios::binary | std::ios::trunc);
  if (!OutFile || !(OutFile << Json) || !OutFile.flush()) {
    std::fprintf(stderr, "error: cannot write %s\n", Opts.Out);
    return 1;
  }
  std::printf("wrote %s (%zu bytes, %zu rows)\n", Opts.Out, Json.size(),
              Rows.size());

  if (Failures != 0) {
    std::fprintf(stderr, "bench_matrix: %d self-check(s) failed\n", Failures);
    return 1;
  }
  std::printf("bench_matrix: all self-checks passed\n");
  return 0;
}

//===- bench/bench_table1.cpp - Reproduce paper Table 1 -------------------===//
//
// Table 1: macro-benchmark characterization — application/library sizes,
// objects created, synchronized objects, synchronization operations, and
// syncs per synchronized object, for 18 programs.
//
// The profile data (from the paper, see workload/Profiles.cpp) drives a
// scaled instrumented replay; the "replayed" columns are *measured* by
// LockStats during the replay, demonstrating that the harness regenerates
// the characterization rather than echoing constants: measured sync ops
// and the syncs/object ratio come from the instrumentation.
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "support/TableFormatter.h"
#include "threads/ThreadRegistry.h"
#include "workload/MacroReplay.h"
#include "workload/Profiles.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace thinlocks;
using namespace thinlocks::workload;

int main() {
  std::printf("=== Table 1: Macro-Benchmarks (characterization) ===\n");
  std::printf("paper columns from Table 1; 'measured' columns from an "
              "instrumented scaled replay (~200k ops per profile)\n\n");

  TableFormatter Table({"Program", "App Size", "Lib Size", "Objects",
                        "Sync'd Obj", "Syncs", "Syncs/S.Obj",
                        "measured Syncs", "measured S/SO"});

  std::vector<double> Ratios;
  std::vector<double> MeasuredFirstFractions;

  for (const BenchmarkProfile &Profile : macroBenchmarkProfiles()) {
    Heap TheHeap;
    ThreadRegistry Registry;
    MonitorTable Monitors;
    LockStats Stats;
    ThinLockManager Locks(Monitors, &Stats);
    ScopedThreadAttachment Main(Registry, "table1");

    // Adaptive scale: ~200k ops per profile, full scale for profiles
    // smaller than that, so measured ratios match the paper's column.
    ReplayConfig Cfg = scaledConfigFor(Profile, 200'000, /*WorkPerSync=*/0);
    ReplayResult Result =
        replayProfile(Profile, Locks, TheHeap, Main.context(), Cfg);

    double MeasuredRatio =
        static_cast<double>(Stats.totalAcquisitions()) /
        static_cast<double>(Result.SynchronizedObjects);
    Ratios.push_back(syncsPerSyncObject(Profile));
    MeasuredFirstFractions.push_back(Stats.depthFraction(0));

    Table.addRow(
        {Profile.Name,
         TableFormatter::formatWithCommas(Profile.AppBytecodeBytes),
         TableFormatter::formatWithCommas(Profile.LibBytecodeBytes),
         TableFormatter::formatWithCommas(Profile.ObjectsCreated),
         TableFormatter::formatWithCommas(Profile.SynchronizedObjects),
         TableFormatter::formatWithCommas(Profile.SyncOperations),
         TableFormatter::formatDouble(syncsPerSyncObject(Profile), 1),
         TableFormatter::formatWithCommas(Stats.totalAcquisitions()),
         TableFormatter::formatDouble(MeasuredRatio, 1)});
  }
  std::printf("%s\n", Table.render().c_str());

  std::sort(Ratios.begin(), Ratios.end());
  double Median =
      (Ratios[Ratios.size() / 2 - 1] + Ratios[Ratios.size() / 2]) / 2.0;
  std::printf("median syncs per synchronized object: %.1f   "
              "(paper reports 22.7)\n",
              Median);
  return 0;
}

//===- bench/bench_fig3.cpp - Reproduce paper Figure 3 --------------------===//
//
// Figure 3: "Depth of lock nesting by benchmark.  Most lock operations
// are performed on objects that are not locked (they are the First lock
// on the object).  Of the remaining lock operations, the vast majority
// are Second locks."
//
// Each row replays a profile through the instrumented thin-lock protocol
// and prints the *measured* First/Second/Third/Fourth+ percentages next
// to the paper's mix, plus the two aggregate claims of §3.2 (median 80%
// first locks, minimum 45%).
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "support/TableFormatter.h"
#include "threads/ThreadRegistry.h"
#include "workload/MacroReplay.h"
#include "workload/Profiles.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace thinlocks;
using namespace thinlocks::workload;

int main() {
  std::printf("=== Figure 3: Lock operations by nesting depth ===\n\n");

  ReplayConfig Cfg;
  Cfg.ScaleDivisor = 256;
  Cfg.MinSyncOps = 40'000;
  Cfg.MaxSyncOps = 150'000;
  Cfg.WorkPerSync = 0; // Characterization only; no need to burn time.

  TableFormatter Table({"Program", "First", "Second", "Third", "Fourth+",
                        "(paper First)"});

  std::vector<double> FirstFractions;
  for (const BenchmarkProfile &Profile : macroBenchmarkProfiles()) {
    Heap TheHeap;
    ThreadRegistry Registry;
    MonitorTable Monitors;
    LockStats Stats;
    ThinLockManager Locks(Monitors, &Stats);
    ScopedThreadAttachment Main(Registry, "fig3");

    replayProfile(Profile, Locks, TheHeap, Main.context(), Cfg);

    FirstFractions.push_back(Stats.depthFraction(0));
    Table.addRow(
        {Profile.Name,
         TableFormatter::formatDouble(Stats.depthFraction(0) * 100, 1) + "%",
         TableFormatter::formatDouble(Stats.depthFraction(1) * 100, 1) + "%",
         TableFormatter::formatDouble(Stats.depthFraction(2) * 100, 1) + "%",
         TableFormatter::formatDouble(Stats.depthFraction(3) * 100, 1) + "%",
         TableFormatter::formatDouble(Profile.DepthMix[0] * 100, 1) + "%"});
  }
  std::printf("%s\n", Table.render().c_str());

  std::sort(FirstFractions.begin(), FirstFractions.end());
  double Median = (FirstFractions[FirstFractions.size() / 2 - 1] +
                   FirstFractions[FirstFractions.size() / 2]) /
                  2.0;
  std::printf("measured first-lock fraction: median %.1f%% (paper: 80%%), "
              "min %.1f%% (paper: 45%%)\n",
              Median * 100, FirstFractions.front() * 100);
  std::printf("no benchmark locks deeper than four (paper: \"none of the "
              "benchmarks obtained any locks nested more than four "
              "deep\")\n");
  return 0;
}

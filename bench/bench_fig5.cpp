//===- bench/bench_fig5.cpp - Reproduce paper Figure 5 --------------------===//
//
// Figure 5: "Relative performance of locking mechanisms on various
// macro-benchmarks" — speedup of ThinLock and IBM112 over JDK111 on the
// 18 macro-benchmarks.
//
// Paper results: "Thin locks sped up the benchmark programs by a median
// of 1.22 and a maximum of 1.7 over the JDK111 implementation.  The
// IBM112 implementation only achieved a median speedup of 1.04, due to
// the fact that a significant number of applications were actually
// slowed down" (large locking working sets overwhelm the 32 hot locks).
//
// Methodology: each profile is replayed (median of 3 runs, mirroring the
// paper's median-of-10) through all three protocols with identical
// object-popularity, nesting, allocation and inter-sync computation; only
// the locking implementation differs.
//
//===----------------------------------------------------------------------===//

#include "baselines/HotLocks.h"
#include "baselines/MonitorCache.h"
#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "support/TableFormatter.h"
#include "threads/ThreadRegistry.h"
#include "workload/MacroReplay.h"
#include "workload/Profiles.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace thinlocks;
using namespace thinlocks::workload;

namespace {

constexpr unsigned Samples = 3;

// Per-profile adaptive scale (~100k sync ops each, tiny profiles run at
// full scale) preserves each program's natural allocation-to-sync ratio,
// which is what makes the low-sync programs (jobe, javap, jaNet) come
// out near 1.0x, as in the paper.  WorkPerSync calibrates how much of
// the run is non-locking computation.
ReplayConfig replayConfig(const BenchmarkProfile &Profile) {
  return scaledConfigFor(Profile, 100'000, /*WorkPerSync=*/96);
}

template <typename ProtocolFactory>
uint64_t medianReplayNanos(const BenchmarkProfile &Profile,
                           ProtocolFactory MakeAndRun) {
  std::vector<uint64_t> Times;
  for (unsigned I = 0; I < Samples; ++I)
    Times.push_back(MakeAndRun(Profile));
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

uint64_t runThin(const BenchmarkProfile &Profile) {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockManager Locks(Monitors);
  ScopedThreadAttachment Main(Registry);
  return replayProfile(Profile, Locks, TheHeap, Main.context(),
                       replayConfig(Profile))
      .ElapsedNanos;
}

uint64_t runJdk111(const BenchmarkProfile &Profile) {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorCache Cache(/*PoolSize=*/128);
  ScopedThreadAttachment Main(Registry);
  return replayProfile(Profile, Cache, TheHeap, Main.context(),
                       replayConfig(Profile))
      .ElapsedNanos;
}

uint64_t runIbm112(const BenchmarkProfile &Profile) {
  Heap TheHeap;
  ThreadRegistry Registry;
  HotLocks Hot(/*NumHotLocks=*/32, /*PromotionThreshold=*/4,
               /*PoolSize=*/128);
  ScopedThreadAttachment Main(Registry);
  return replayProfile(Profile, Hot, TheHeap, Main.context(),
                       replayConfig(Profile))
      .ElapsedNanos;
}

double median(std::vector<double> Values) {
  std::sort(Values.begin(), Values.end());
  size_t N = Values.size();
  return N % 2 ? Values[N / 2]
               : (Values[N / 2 - 1] + Values[N / 2]) / 2.0;
}

} // namespace

int main() {
  std::printf("=== Figure 5: Macro-benchmark speedup over JDK111 ===\n");
  std::printf("(median of %u replays per cell; speedup = "
              "time(JDK111) / time(protocol))\n\n",
              Samples);

  TableFormatter Table(
      {"Program", "JDK111 ms", "ThinLock ms", "IBM112 ms",
       "ThinLock speedup", "IBM112 speedup"});

  std::vector<double> ThinSpeedups, IbmSpeedups;
  for (const BenchmarkProfile &Profile : macroBenchmarkProfiles()) {
    uint64_t Jdk = medianReplayNanos(Profile, runJdk111);
    uint64_t Thin = medianReplayNanos(Profile, runThin);
    uint64_t Ibm = medianReplayNanos(Profile, runIbm112);

    double ThinSpeedup = static_cast<double>(Jdk) / Thin;
    double IbmSpeedup = static_cast<double>(Jdk) / Ibm;
    ThinSpeedups.push_back(ThinSpeedup);
    IbmSpeedups.push_back(IbmSpeedup);

    Table.addRow({Profile.Name, TableFormatter::formatDouble(Jdk / 1e6, 2),
                  TableFormatter::formatDouble(Thin / 1e6, 2),
                  TableFormatter::formatDouble(Ibm / 1e6, 2),
                  TableFormatter::formatDouble(ThinSpeedup, 2) + "x",
                  TableFormatter::formatDouble(IbmSpeedup, 2) + "x"});
  }
  std::printf("%s\n", Table.render().c_str());

  std::printf("ThinLock speedup: median %.2fx, max %.2fx   "
              "(paper: median 1.22x, max 1.7x)\n",
              median(ThinSpeedups),
              *std::max_element(ThinSpeedups.begin(), ThinSpeedups.end()));
  std::printf("IBM112 speedup:  median %.2fx, min %.2fx   "
              "(paper: median 1.04x, with several slowdowns < 1.0x)\n",
              median(IbmSpeedups),
              *std::min_element(IbmSpeedups.begin(), IbmSpeedups.end()));
  return 0;
}

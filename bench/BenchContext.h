//===- bench/BenchContext.h - Build-type context for bench JSON -*- C++ -*-===//
///
/// \file
/// Stamps every google-benchmark JSON document with a
/// `thinlocks_build_type` context field ("release" iff this translation
/// unit was compiled with NDEBUG, i.e. the `bench` preset).
///
/// Why not the library's own `library_build_type` field: that string is
/// compiled into libbenchmark itself, so a distro-packaged shared
/// library reports the *library's* build type (typically "debug") no
/// matter how the benchmark binaries were compiled.  The committed
/// trajectory gate (bench/run_benches.sh) therefore keys on this custom
/// field instead — it reflects the flags of the code actually being
/// measured.
///
/// Include this header in every BENCHMARK_MAIN() translation unit.  The
/// registrar runs from a static initializer, which is safe:
/// AddCustomContext lazily allocates the global context map, and
/// duplicate registration cannot happen because each binary has exactly
/// one BENCHMARK_MAIN TU.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_BENCH_BENCHCONTEXT_H
#define THINLOCKS_BENCH_BENCHCONTEXT_H

#include <benchmark/benchmark.h>

namespace {

struct ThinlocksBenchContextRegistrar {
  ThinlocksBenchContextRegistrar() {
#ifdef NDEBUG
    benchmark::AddCustomContext("thinlocks_build_type", "release");
#else
    benchmark::AddCustomContext("thinlocks_build_type", "debug");
#endif
  }
};

const ThinlocksBenchContextRegistrar RegisterThinlocksBuildType;

} // namespace

#endif // THINLOCKS_BENCH_BENCHCONTEXT_H

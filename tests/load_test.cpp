//===- tests/load_test.cpp - Soak-harness subsystem tests -----------------===//
//
// Unit coverage for src/load/: the Zipfian popularity sampler, the
// admission-control degradation ladder (driven with synthetic
// PressureSignals — no real tables needed), the chaos schedule's
// determinism, and short end-to-end runSoak() sanity runs, including
// one against a deliberately tiny MonitorTable so genuine (not
// injected) exhaustion feeds the ladder.
//
//===----------------------------------------------------------------------===//

#include "load/AdmissionController.h"
#include "load/SoakHarness.h"
#include "load/Zipf.h"
#include "obs/ChromeTrace.h"
#include "obs/SloSnapshot.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace thinlocks;
using namespace thinlocks::load;

//===----------------------------------------------------------------------===//
// ZipfSampler
//===----------------------------------------------------------------------===//

TEST(Zipf, DeterministicFromSeed) {
  ZipfSampler Sampler(64, 0.8);
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(Sampler.sample(A), Sampler.sample(B));
}

TEST(Zipf, InRangeAndSkewed) {
  const size_t N = 64;
  ZipfSampler Sampler(N, 0.8);
  EXPECT_EQ(Sampler.universe(), N);
  SplitMix64 Rng(1);
  std::map<size_t, uint64_t> Counts;
  const int Draws = 20000;
  for (int I = 0; I < Draws; ++I) {
    size_t Index = Sampler.sample(Rng);
    ASSERT_LT(Index, N);
    ++Counts[Index];
  }
  // Rank 0 must be drawn far more often than the uniform share, and more
  // often than a mid-pack rank — the whole point of the skew.
  EXPECT_GT(Counts[0], static_cast<uint64_t>(Draws) / N * 3);
  EXPECT_GT(Counts[0], Counts[N / 2] * 2);
}

TEST(Zipf, ThetaZeroIsUniformish) {
  const size_t N = 8;
  ZipfSampler Sampler(N, 0.0);
  SplitMix64 Rng(3);
  std::map<size_t, uint64_t> Counts;
  const int Draws = 16000;
  for (int I = 0; I < Draws; ++I)
    ++Counts[Sampler.sample(Rng)];
  for (size_t I = 0; I < N; ++I) {
    EXPECT_GT(Counts[I], static_cast<uint64_t>(Draws) / N / 2)
        << "rank " << I << " starved under theta=0";
  }
}

TEST(Zipf, SingleObjectUniverse) {
  ZipfSampler Sampler(1, 0.99);
  SplitMix64 Rng(9);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Sampler.sample(Rng), 0u);
}

// Degenerate-parameter regressions (PR-10 satellite).  theta == 0 must
// be a *two-sided* uniform fallback: no rank starved AND no rank
// favored.  ThetaZeroIsUniformish above only pins the starvation side,
// which would still pass if a CDF bug concentrated mass on rank 0.
TEST(Zipf, ThetaZeroIsUniformBothSides) {
  const size_t N = 8;
  ZipfSampler Sampler(N, 0.0);
  SplitMix64 Rng(11);
  std::map<size_t, uint64_t> Counts;
  const int Draws = 80000;
  for (int I = 0; I < Draws; ++I)
    ++Counts[Sampler.sample(Rng)];
  const uint64_t Expected = static_cast<uint64_t>(Draws) / N;
  for (size_t I = 0; I < N; ++I) {
    // +-10% of the uniform expectation: loose enough for PRNG noise at
    // 10k draws/rank, tight enough to reject any Zipfian concentration
    // (rank 0 under theta=0.8 would collect ~2.9x the uniform share).
    EXPECT_GT(Counts[I], Expected * 9 / 10) << "rank " << I << " starved";
    EXPECT_LT(Counts[I], Expected * 11 / 10) << "rank " << I << " favored";
  }
}

// Reseeding with the same seed must reproduce the exact draw sequence
// in the degenerate corners too — the soak harness's reproducible
// schedule contract does not exempt theta == 0 or N == 1.
TEST(Zipf, DegenerateParamsDeterministicUnderReseeding) {
  ZipfSampler Uniform(16, 0.0);
  std::vector<size_t> First;
  {
    SplitMix64 Rng(77);
    for (int I = 0; I < 500; ++I)
      First.push_back(Uniform.sample(Rng));
  }
  {
    SplitMix64 Rng(77); // Reseeded: identical stream expected.
    for (int I = 0; I < 500; ++I)
      EXPECT_EQ(Uniform.sample(Rng), First[static_cast<size_t>(I)]) << I;
  }

  // N == 1 composed with theta == 0: the CDF is the single entry 1.0;
  // every draw must land on rank 0 regardless of seed.
  ZipfSampler Point(1, 0.0);
  for (uint64_t Seed : {1ull, 42ull, 0xdeadbeefull}) {
    SplitMix64 Rng(Seed);
    for (int I = 0; I < 100; ++I)
      EXPECT_EQ(Point.sample(Rng), 0u);
  }
}

//===----------------------------------------------------------------------===//
// AdmissionController — ladder driven with synthetic pressure
//===----------------------------------------------------------------------===//

namespace {

PressureSignals quiet() { return PressureSignals(); }

} // namespace

TEST(Admission, FirstTickIsBaselineQuiet) {
  AdmissionController Controller;
  // Even a nonzero cumulative counter on the very first tick is the
  // baseline, not a fresh error.
  PressureSignals Signals;
  Signals.MonitorExhaustionEvents = 100;
  Signals.EmergencyInflations = 5;
  EXPECT_EQ(Controller.tick(Signals), DegradationLevel::Normal);
}

TEST(Admission, EscalationPerSignalType) {
  {
    AdmissionController Controller;
    Controller.tick(quiet());
    PressureSignals Signals;
    Signals.EmergencyInflations = 1;
    EXPECT_EQ(Controller.tick(Signals), DegradationLevel::EmergencyOnly);
  }
  {
    AdmissionController Controller;
    Controller.tick(quiet());
    PressureSignals Signals;
    Signals.MonitorExhaustionEvents = 1;
    EXPECT_EQ(Controller.tick(Signals), DegradationLevel::DeferInflation);
  }
  {
    AdmissionController Controller;
    Controller.tick(quiet());
    PressureSignals Signals;
    Signals.RegistryExhaustionEvents = 1;
    EXPECT_EQ(Controller.tick(Signals), DegradationLevel::Shed);
  }
  {
    AdmissionController Controller;
    Controller.tick(quiet());
    PressureSignals Signals;
    Signals.RegistryOccupancy = 0.9; // >= default HighWater 0.85.
    EXPECT_EQ(Controller.tick(Signals), DegradationLevel::Shed);
  }
}

TEST(Admission, EscalationIsImmediateAndNeverSkippedDown) {
  AdmissionController Controller;
  Controller.tick(quiet());
  PressureSignals Signals;
  Signals.EmergencyInflations = 1;
  EXPECT_EQ(Controller.tick(Signals), DegradationLevel::EmergencyOnly);
  // A weaker signal on the next tick must not *lower* the level (only
  // dwell-based recovery may).
  Signals.RegistryExhaustionEvents = 1;
  EXPECT_EQ(Controller.tick(Signals), DegradationLevel::EmergencyOnly);
}

TEST(Admission, RecoveryTakesDwellPerStep) {
  AdmissionLimits Limits;
  Limits.RecoveryDwellTicks = 3;
  AdmissionController Controller(Limits);
  Controller.tick(quiet());
  PressureSignals Pressure;
  Pressure.EmergencyInflations = 1;
  ASSERT_EQ(Controller.tick(Pressure), DegradationLevel::EmergencyOnly);

  // From EmergencyOnly back to Normal: 3 quiet ticks per rung, 3 rungs.
  PressureSignals Calm;
  Calm.EmergencyInflations = 1; // Cumulative counter stays; delta is 0.
  int TicksToNormal = 0;
  while (Controller.level() != DegradationLevel::Normal) {
    Controller.tick(Calm);
    ASSERT_LT(++TicksToNormal, 100) << "ladder never recovered";
  }
  EXPECT_EQ(TicksToNormal, 9);
  EXPECT_EQ(Controller.counters().DeEscalations, 3u);
}

TEST(Admission, NoRecoveryWhileRegistryOccupancyHigh) {
  AdmissionLimits Limits;
  Limits.RecoveryDwellTicks = 2;
  AdmissionController Controller(Limits);
  Controller.tick(quiet());
  PressureSignals Signals;
  Signals.RegistryExhaustionEvents = 1;
  ASSERT_EQ(Controller.tick(Signals), DegradationLevel::Shed);

  // No fresh errors, but occupancy still above LowWater: not quiet.
  Signals.RegistryOccupancy = 0.75; // >= default LowWater 0.70.
  for (int I = 0; I < 20; ++I)
    EXPECT_EQ(Controller.tick(Signals), DegradationLevel::Shed);

  // Occupancy drops; recovery proceeds.
  Signals.RegistryOccupancy = 0.1;
  Controller.tick(Signals);
  EXPECT_EQ(Controller.tick(Signals), DegradationLevel::Normal);
}

TEST(Admission, MonitorOccupancyDoesNotBlockRecovery) {
  // Monitor occupancy is monotone (indices never reused): a permanently
  // high reading must not latch the ladder once the error rate quiets.
  AdmissionLimits Limits;
  Limits.RecoveryDwellTicks = 1;
  AdmissionController Controller(Limits);
  Controller.tick(quiet());
  PressureSignals Signals;
  Signals.MonitorExhaustionEvents = 1;
  Signals.MonitorOccupancy = 0.99;
  ASSERT_EQ(Controller.tick(Signals), DegradationLevel::DeferInflation);
  Controller.tick(Signals); // Quiet delta, occupancy still 0.99.
  EXPECT_EQ(Controller.tick(Signals), DegradationLevel::Normal);
}

TEST(Admission, DecisionsPerLevel) {
  AdmissionLimits Limits;
  Limits.ShedOneIn = 3;
  {
    AdmissionController Controller(Limits);
    // Normal admits everything, heavy or not.
    for (int I = 0; I < 9; ++I)
      EXPECT_EQ(Controller.admit(I % 2 == 0), AdmissionDecision::Admit);
  }
  {
    AdmissionController Controller(Limits);
    Controller.tick(quiet());
    PressureSignals Signals;
    Signals.RegistryExhaustionEvents = 1;
    Controller.tick(Signals);
    // Shed rejects every 3rd arrival (serial 3, 6, ...), admits the rest.
    EXPECT_EQ(Controller.admit(false), AdmissionDecision::Admit);
    EXPECT_EQ(Controller.admit(true), AdmissionDecision::Admit);
    EXPECT_EQ(Controller.admit(false), AdmissionDecision::Shed);
    EXPECT_EQ(Controller.admit(true), AdmissionDecision::Admit);
  }
  {
    AdmissionController Controller(Limits);
    Controller.tick(quiet());
    PressureSignals Signals;
    Signals.MonitorExhaustionEvents = 1;
    Controller.tick(Signals);
    // DeferInflation: heavy defers, light sheds fractionally.
    EXPECT_EQ(Controller.admit(true), AdmissionDecision::Defer);
    EXPECT_EQ(Controller.admit(false), AdmissionDecision::Admit);
    EXPECT_EQ(Controller.admit(false), AdmissionDecision::Shed);
  }
  {
    AdmissionController Controller(Limits);
    Controller.tick(quiet());
    PressureSignals Signals;
    Signals.EmergencyInflations = 1;
    Controller.tick(Signals);
    // EmergencyOnly: heavy refused outright, light runs degraded.
    EXPECT_EQ(Controller.admit(true), AdmissionDecision::Shed);
    EXPECT_EQ(Controller.admit(false), AdmissionDecision::AdmitDegraded);
    EXPECT_EQ(Controller.admit(false), AdmissionDecision::Shed);
    EXPECT_EQ(Controller.admit(false), AdmissionDecision::AdmitDegraded);
  }
}

TEST(Admission, LedgerAccountsEveryDecisionAndTick) {
  AdmissionController Controller;
  Controller.tick(quiet());
  PressureSignals Signals;
  Signals.EmergencyInflations = 1;
  Controller.tick(Signals);
  Controller.admit(true);  // Shed.
  Controller.admit(false); // AdmitDegraded.
  auto Counters = Controller.counters();
  EXPECT_EQ(Counters.Ticks, 2u);
  EXPECT_EQ(Counters.TicksAtLevel[0], 2u); // Both ticks *started* Normal.
  EXPECT_EQ(Counters.Escalations, 1u);
  EXPECT_EQ(Counters.Shed, 1u);
  EXPECT_EQ(Counters.AdmittedDegraded, 1u);
  EXPECT_EQ(Counters.Admitted + Counters.AdmittedDegraded +
                Counters.Deferred + Counters.Shed,
            2u);
}

//===----------------------------------------------------------------------===//
// Chaos schedule
//===----------------------------------------------------------------------===//

TEST(ChaosSchedule, DeterministicAndWellFormed) {
  auto A = buildChaosSchedule(7);
  auto B = buildChaosSchedule(7);
  ASSERT_EQ(A.size(), B.size());
  ASSERT_FALSE(A.empty());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].StartFraction, B[I].StartFraction);
    EXPECT_EQ(A[I].EndFraction, B[I].EndFraction);
    EXPECT_EQ(A[I].PointId, B[I].PointId);
    EXPECT_GE(A[I].StartFraction, 0.0);
    EXPECT_LE(A[I].EndFraction, 1.0);
    EXPECT_LT(A[I].StartFraction, A[I].EndFraction);
  }
  // A different seed jitters the windows.
  auto C = buildChaosSchedule(8);
  bool AnyDiffers = false;
  for (size_t I = 0; I < A.size() && I < C.size(); ++I)
    AnyDiffers |= A[I].StartFraction != C[I].StartFraction;
  EXPECT_TRUE(AnyDiffers);
}

//===----------------------------------------------------------------------===//
// SloSnapshot rendering
//===----------------------------------------------------------------------===//

TEST(SloSnapshot, QuantilesOfHistogram) {
  LatencyHistogram Hist;
  for (uint64_t I = 1; I <= 1000; ++I)
    Hist.record(I);
  auto Quantiles = obs::SloQuantiles::of(Hist);
  EXPECT_EQ(Quantiles.Count, 1000u);
  EXPECT_TRUE(Quantiles.monotone());
  EXPECT_EQ(Quantiles.Max, 1000u);
  EXPECT_GE(Quantiles.P50, 450u);
  EXPECT_LE(Quantiles.P50, 550u);
  EXPECT_GE(Quantiles.P99, 950u);
}

TEST(SloSnapshot, ToJsonContainsContract) {
  obs::SloSnapshot Snapshot;
  Snapshot.DurationSeconds = 1.5;
  Snapshot.SessionsOffered = 10;
  Snapshot.SessionsCompleted = 8;
  Snapshot.SessionsShed = 2;
  Snapshot.FinalLevel = 0;
  std::string Json = Snapshot.toJson();
  EXPECT_NE(Json.find("\"sessions_offered\": 10"), std::string::npos);
  EXPECT_NE(Json.find("\"sessions_shed\": 2"), std::string::npos);
  EXPECT_NE(Json.find("\"acquire\""), std::string::npos);
  EXPECT_NE(Json.find("\"wake\""), std::string::npos);
  EXPECT_NE(Json.find("\"ticks_at_level\""), std::string::npos);
  // Balanced braces (the artifact nests into BENCH_soak.json).
  int Depth = 0;
  for (char C : Json) {
    if (C == '{')
      ++Depth;
    if (C == '}')
      --Depth;
    EXPECT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
}

TEST(SloSnapshot, WorstSessionsTraceValidates) {
  std::vector<obs::SessionSpanInfo> Worst;
  obs::SessionSpanInfo Span;
  Span.SessionId = 3;
  Span.WorkerTid = 1;
  Span.ArrivalNanos = 1000;
  Span.StartNanos = 2500;
  Span.EndNanos = 9000;
  Span.MaxAcquireNanos = 800;
  Span.Heavy = true;
  Worst.push_back(Span);
  std::string Json =
      obs::worstSessionsTraceJson({}, Worst, /*Classes=*/nullptr);
  std::string Error;
  EXPECT_TRUE(obs::validateChromeTraceJson(Json, &Error)) << Error;
  EXPECT_NE(Json.find("\"cat\":\"session\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// runSoak end-to-end (short)
//===----------------------------------------------------------------------===//

TEST(Soak, ShortRunAccountsEverySession) {
  SoakConfig Config;
  Config.ArrivalsPerSecond = 400;
  Config.DurationSeconds = 0.5;
  Config.Workers = 2;
  Config.Seed = 11;
  SoakResult Result = runSoak(Config);
  const obs::SloSnapshot &Slo = Result.Slo;

  EXPECT_GT(Slo.SessionsOffered, 0u);
  EXPECT_GT(Slo.SessionsCompleted, 0u);
  EXPECT_GT(Slo.RequestsCompleted, 0u);
  EXPECT_EQ(Slo.SessionsOffered, Slo.SessionsCompleted + Slo.SessionsShed);
  EXPECT_TRUE(Slo.Acquire.monotone());
  EXPECT_TRUE(Slo.Session.monotone());
  EXPECT_TRUE(Slo.Wake.monotone());
  // Unpressured run: nothing to escalate over, ladder ends Normal.
  EXPECT_EQ(Slo.FinalLevel, 0u);
  EXPECT_FALSE(Result.WorstSessions.empty());
  if (!Result.WorstTraceJson.empty()) {
    std::string Error;
    EXPECT_TRUE(obs::validateChromeTraceJson(Result.WorstTraceJson, &Error))
        << Error;
  }
}

TEST(Soak, DeterministicOfferCountPerSeed) {
  SoakConfig Config;
  Config.ArrivalsPerSecond = 300;
  Config.DurationSeconds = 0.3;
  Config.Workers = 1;
  Config.Seed = 5;
  SoakResult A = runSoak(Config);
  SoakResult B = runSoak(Config);
  // The arrival schedule is a pure function of the seed; what each
  // arrival *experiences* is timing-dependent, but the offered count is
  // not.
  EXPECT_EQ(A.Slo.SessionsOffered, B.Slo.SessionsOffered);
}

TEST(Soak, TinyMonitorTableEscalatesOnGenuineExhaustion) {
  SoakConfig Config;
  Config.ArrivalsPerSecond = 500;
  Config.DurationSeconds = 0.6;
  Config.Workers = 2;
  Config.Seed = 23;
  Config.HeavyFraction = 0.8; // Inflation-heavy mix...
  Config.MonitorCapacity = 8; // ...against almost no monitor space.
  SoakResult Result = runSoak(Config);
  const obs::SloSnapshot &Slo = Result.Slo;

  // Genuine exhaustion: typed errors recorded, ladder escalated, and the
  // run still terminates with the accounting identity intact — the
  // graceful-degradation contract, minus any failpoints.
  EXPECT_GT(Slo.MonitorExhaustionEvents + Slo.EmergencyInflations, 0u);
  EXPECT_GT(Result.Admission.Escalations, 0u);
  EXPECT_EQ(Slo.SessionsOffered, Slo.SessionsCompleted + Slo.SessionsShed);
  EXPECT_GT(Slo.SessionsCompleted, 0u);
}

//===- tests/exprcompiler_test.cpp - Expression compiler tests ------------===//

#include "vm/ExprCompiler.h"

#include "vm/Disassembler.h"
#include "vm/Verifier.h"
#include "vm/VM.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

using namespace thinlocks;
using namespace thinlocks::vm;

namespace {

class ExprCompilerTest : public ::testing::Test {
protected:
  VM Vm;
  Klass *K = nullptr;
  std::unique_ptr<ExprCompiler> Compiler;
  std::unique_ptr<ScopedThreadAttachment> Attachment;

  void SetUp() override {
    K = &Vm.defineClass("Expr", {});
    Compiler = std::make_unique<ExprCompiler>(Vm, *K);
    Attachment =
        std::make_unique<ScopedThreadAttachment>(Vm.threads(), "main");
  }

  /// Compiles and runs; expects success.
  int32_t eval(std::string_view Source,
               const std::vector<std::string> &Params = {},
               const std::vector<int32_t> &Args = {}) {
    ExprCompiler::Result R = Compiler->compile(Source, Params);
    EXPECT_TRUE(R.ok()) << R.Error << " at " << R.ErrorPos;
    if (!R.ok())
      return INT32_MIN;
    EXPECT_FALSE(Verifier(Vm).verify(*R.M)) << "verifier rejected output";
    std::vector<Value> CallArgs;
    for (int32_t A : Args)
      CallArgs.push_back(Value::makeInt(A));
    RunResult Run = Vm.call(*R.M, CallArgs, Attachment->context());
    EXPECT_EQ(Run.TrapKind, Trap::None) << trapName(Run.TrapKind);
    return Run.ok() ? Run.Result.asInt() : INT32_MIN;
  }
};

} // namespace

TEST_F(ExprCompilerTest, Literals) {
  EXPECT_EQ(eval("42"), 42);
  EXPECT_EQ(eval("0"), 0);
  EXPECT_EQ(eval("2147483647"), INT32_MAX);
}

TEST_F(ExprCompilerTest, BasicArithmetic) {
  EXPECT_EQ(eval("1 + 2"), 3);
  EXPECT_EQ(eval("10 - 4"), 6);
  EXPECT_EQ(eval("6 * 7"), 42);
  EXPECT_EQ(eval("42 / 5"), 8);
  EXPECT_EQ(eval("42 % 5"), 2);
}

TEST_F(ExprCompilerTest, PrecedenceAndAssociativity) {
  EXPECT_EQ(eval("2 + 3 * 4"), 14);
  EXPECT_EQ(eval("2 * 3 + 4"), 10);
  EXPECT_EQ(eval("10 - 2 - 3"), 5);      // Left associative.
  EXPECT_EQ(eval("100 / 10 / 2"), 5);    // (100/10)/2
  EXPECT_EQ(eval("2 + 3 * 4 - 5"), 9);
}

TEST_F(ExprCompilerTest, Parentheses) {
  EXPECT_EQ(eval("(2 + 3) * 4"), 20);
  EXPECT_EQ(eval("((((7))))"), 7);
  EXPECT_EQ(eval("(10 - (2 - 3))"), 11);
}

TEST_F(ExprCompilerTest, UnaryMinus) {
  EXPECT_EQ(eval("-5"), -5);
  EXPECT_EQ(eval("--5"), 5);
  EXPECT_EQ(eval("-(2 + 3)"), -5);
  EXPECT_EQ(eval("4 - -3"), 7);
}

TEST_F(ExprCompilerTest, Parameters) {
  EXPECT_EQ(eval("x", {"x"}, {17}), 17);
  EXPECT_EQ(eval("x + y", {"x", "y"}, {2, 40}), 42);
  EXPECT_EQ(eval("x * x - y", {"x", "y"}, {7, 7}), 42);
  EXPECT_EQ(eval("2 - 3 * x", {"x"}, {4}), -10); // Non-commutative order.
  EXPECT_EQ(eval("100 / x", {"x"}, {7}), 14);
  EXPECT_EQ(eval("2 % x", {"x"}, {3}), 2);
}

TEST_F(ExprCompilerTest, WrapAroundSemantics) {
  EXPECT_EQ(eval("2147483647 + 1"), INT32_MIN);
  EXPECT_EQ(eval("x + 1", {"x"}, {INT32_MAX}), INT32_MIN);
  EXPECT_EQ(eval("-2147483647 - 1"), INT32_MIN);
}

TEST_F(ExprCompilerTest, ConstantFoldingShrinksCode) {
  ExprCompiler::Result Folded =
      Compiler->compile("2 + 3 * 4 - (5 - 1)", {});
  ASSERT_TRUE(Folded.ok());
  // Entire expression folds to one iconst + iret.
  EXPECT_EQ(Folded.M->Code.size(), 2u);
  EXPECT_EQ(Folded.M->Code[0].Op, Opcode::Iconst);
  EXPECT_EQ(Folded.M->Code[0].A, 10);

  ExprCompiler::Result Mixed = Compiler->compile("x + 2 * 3", {"x"});
  ASSERT_TRUE(Mixed.ok());
  // 2*3 folds: iload, iconst 6, iadd, iret.
  EXPECT_EQ(Mixed.M->Code.size(), 4u);
  EXPECT_EQ(Mixed.M->Code[1].A, 6);
}

TEST_F(ExprCompilerTest, FoldingPreservesDivisionByZeroTrap) {
  ExprCompiler::Result R = Compiler->compile("1 / 0", {});
  ASSERT_TRUE(R.ok()); // Compiles; traps at run time, like Java.
  RunResult Run = Vm.call(*R.M, {}, Attachment->context());
  EXPECT_EQ(Run.TrapKind, Trap::DivideByZero);

  ExprCompiler::Result R2 = Compiler->compile("5 % 0", {});
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(Vm.call(*R2.M, {}, Attachment->context()).TrapKind,
            Trap::DivideByZero);
}

TEST_F(ExprCompilerTest, RuntimeDivisionByZeroTraps) {
  ExprCompiler::Result R = Compiler->compile("10 / x", {"x"});
  ASSERT_TRUE(R.ok());
  RunResult Run = Vm.call(
      *R.M, std::vector<Value>{Value::makeInt(0)}, Attachment->context());
  EXPECT_EQ(Run.TrapKind, Trap::DivideByZero);
}

TEST_F(ExprCompilerTest, SyntaxErrorsAreReported) {
  struct Case {
    const char *Source;
    const char *ErrorFragment;
  };
  const Case Cases[] = {
      {"", "unexpected end"},
      {"1 +", "unexpected end"},
      {"(1 + 2", "expected ')'"},
      {"1 2", "unexpected input"},
      {"$", "unrecognized"},
      {"1 + $", "unrecognized"},
      {"9999999999", "out of range"},
      {"x + 1", "unknown parameter"},
      {")", "expected a number"},
  };
  for (const Case &C : Cases) {
    ExprCompiler::Result R = Compiler->compile(C.Source, {});
    EXPECT_FALSE(R.ok()) << C.Source;
    EXPECT_NE(R.Error.find(C.ErrorFragment), std::string::npos)
        << C.Source << " -> " << R.Error;
  }
}

TEST_F(ExprCompilerTest, ErrorPositionPointsAtOffendingToken) {
  ExprCompiler::Result R = Compiler->compile("1 + bad", {"x"});
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.ErrorPos, 4u);
}

TEST_F(ExprCompilerTest, DisassemblesReadably) {
  ExprCompiler::Result R = Compiler->compile("x * 2 + 1", {"x"});
  ASSERT_TRUE(R.ok());
  std::string Listing = disassemble(*R.M, &Vm);
  EXPECT_NE(Listing.find("iload 0"), std::string::npos);
  EXPECT_NE(Listing.find("imul"), std::string::npos);
  EXPECT_NE(Listing.find("ireturn"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Property test: random expressions agree with a host-side evaluator.
//===----------------------------------------------------------------------===//

namespace {

/// Host-side evaluator with Java int semantics, generating the source
/// string and expected value together.
struct RandomExpr {
  std::string Source;
  int32_t Value = 0;
};

int32_t wrap(int64_t V) { return static_cast<int32_t>(static_cast<uint32_t>(
    static_cast<uint64_t>(V))); }

RandomExpr genExpr(SplitMix64 &Rng, const std::vector<int32_t> &ParamValues,
                   int Depth);

RandomExpr genPrimary(SplitMix64 &Rng,
                      const std::vector<int32_t> &ParamValues, int Depth) {
  uint64_t Choice = Rng.nextBounded(Depth <= 0 ? 2 : 3);
  if (Choice == 0) {
    int32_t V = static_cast<int32_t>(Rng.nextBounded(200)) - 100;
    RandomExpr E;
    if (V < 0) {
      // Render negatives through unary minus to stay in the grammar.
      E.Source = "(0 - " + std::to_string(-static_cast<int64_t>(V)) + ")";
    } else {
      E.Source = std::to_string(V);
    }
    E.Value = V;
    return E;
  }
  if (Choice == 1 && !ParamValues.empty()) {
    size_t Index = Rng.nextBounded(ParamValues.size());
    RandomExpr E;
    E.Source = "p" + std::to_string(Index);
    E.Value = ParamValues[Index];
    return E;
  }
  RandomExpr Inner = genExpr(Rng, ParamValues, Depth - 1);
  Inner.Source = "(" + Inner.Source + ")";
  return Inner;
}

RandomExpr genExpr(SplitMix64 &Rng, const std::vector<int32_t> &ParamValues,
                   int Depth) {
  RandomExpr Lhs = genPrimary(Rng, ParamValues, Depth);
  int Ops = Depth <= 0 ? 0 : static_cast<int>(Rng.nextBounded(3));
  for (int I = 0; I < Ops; ++I) {
    RandomExpr Rhs = genPrimary(Rng, ParamValues, Depth - 1);
    // The host evaluates strictly left-to-right, so parenthesize both
    // sides to make the rendered source mean the same thing regardless
    // of operator precedence.
    switch (Rng.nextBounded(5)) {
    case 0:
      Lhs.Source = "(" + Lhs.Source + ") + (" + Rhs.Source + ")";
      Lhs.Value = wrap(static_cast<int64_t>(Lhs.Value) + Rhs.Value);
      break;
    case 1:
      Lhs.Source = "(" + Lhs.Source + ") - (" + Rhs.Source + ")";
      Lhs.Value = wrap(static_cast<int64_t>(Lhs.Value) - Rhs.Value);
      break;
    case 2:
      Lhs.Source = "(" + Lhs.Source + ") * (" + Rhs.Source + ")";
      Lhs.Value = wrap(static_cast<int64_t>(Lhs.Value) * Rhs.Value);
      break;
    case 3:
      if (Rhs.Value != 0) {
        Lhs.Source = "(" + Lhs.Source + ") / (" + Rhs.Source + ")";
        Lhs.Value = (Lhs.Value == INT32_MIN && Rhs.Value == -1)
                        ? INT32_MIN
                        : Lhs.Value / Rhs.Value;
      }
      break;
    case 4:
      if (Rhs.Value != 0) {
        Lhs.Source = "(" + Lhs.Source + ") % (" + Rhs.Source + ")";
        Lhs.Value = (Lhs.Value == INT32_MIN && Rhs.Value == -1)
                        ? 0
                        : Lhs.Value % Rhs.Value;
      }
      break;
    }
  }
  return Lhs;
}

class ExprFuzz : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(ExprFuzz, RandomExpressionsMatchHostEvaluator) {
  VM Vm;
  Klass &K = Vm.defineClass("Fuzz", {});
  ExprCompiler Compiler(Vm, K);
  ScopedThreadAttachment Main(Vm.threads(), "fuzz");
  Verifier V(Vm);

  SplitMix64 Rng(GetParam());
  const std::vector<std::string> Params = {"p0", "p1", "p2"};

  for (int Round = 0; Round < 60; ++Round) {
    std::vector<int32_t> ParamValues = {
        static_cast<int32_t>(Rng.nextBounded(2001)) - 1000,
        static_cast<int32_t>(Rng.nextBounded(2001)) - 1000,
        static_cast<int32_t>(Rng.nextBounded(7)) + 1,
    };
    RandomExpr E = genExpr(Rng, ParamValues, 3);

    ExprCompiler::Result R = Compiler.compile(E.Source, Params);
    ASSERT_TRUE(R.ok()) << E.Source << ": " << R.Error;
    ASSERT_FALSE(V.verify(*R.M)) << E.Source;

    std::vector<Value> Args;
    for (int32_t P : ParamValues)
      Args.push_back(Value::makeInt(P));
    RunResult Run = Vm.call(*R.M, Args, Main.context());
    // Division by a runtime-zero subexpression can trap; the generator
    // guards the divisor's *value*, so traps must not occur.
    ASSERT_TRUE(Run.ok()) << E.Source << ": " << trapName(Run.TrapKind);
    EXPECT_EQ(Run.Result.asInt(), E.Value) << E.Source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u,
                                           77u, 88u));

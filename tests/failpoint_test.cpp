//===- tests/failpoint_test.cpp - Fault-injection facility tests ----------===//
//
// Two layers, mirroring support/FailPoint.h:
//
//  - Control-plane tests (arming, mode arithmetic, spec parsing, counters)
//    run in every build: the registry is always compiled.
//  - Injection tests need the sites compiled in (-DTHINLOCKS_FAILPOINTS=ON)
//    and GTEST_SKIP themselves otherwise.  Each one demonstrates that the
//    injected fault *recovers* — a lost CAS still acquires via the slow
//    path, injected exhaustion degrades to the emergency monitor or a
//    typed error — never a hang or a crash.
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "support/FailPoint.h"
#include "support/SpinWait.h"
#include "threads/ThreadRegistry.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

using namespace thinlocks;
namespace fp = thinlocks::failpoint;

namespace {

/// All failpoint tests disarm everything on both sides so no armed state
/// leaks between tests (or out of an env-armed run into assertions about
/// disarmed behavior).
class FailPointTest : public ::testing::Test {
protected:
  void SetUp() override { fp::disarmAll(); }
  void TearDown() override { fp::disarmAll(); }
};

/// Adds a live locking stack for the injection tests.
class FailPointLockTest : public FailPointTest {
protected:
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockManager Locks{Monitors, &Stats};
  ThreadContext Main;
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    FailPointTest::SetUp();
    Main = Registry.attach("main");
    Class = &TheHeap.classes().registerClass("T", 1);
  }
  void TearDown() override {
    Registry.detach(Main);
    FailPointTest::TearDown();
  }

  Object *newObject() { return TheHeap.allocate(*Class); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Control plane: compiled in every build mode.
//===----------------------------------------------------------------------===//

TEST_F(FailPointTest, NamesAreStableAndRoundTripThroughSpecs) {
  // These strings are external API (env specs, docs); changing one is a
  // breaking change and must show up here.
  EXPECT_STREQ(fp::name(fp::Id::ThinLockInitialCas), "thinlock.initial-cas");
  EXPECT_STREQ(fp::name(fp::Id::SpinWaitPreempt), "spinwait.preempt");
  EXPECT_STREQ(fp::name(fp::Id::ThinLockInflateRace),
               "thinlock.inflate-race");
  EXPECT_STREQ(fp::name(fp::Id::MonitorTableExhausted),
               "monitortable.exhausted");
  EXPECT_STREQ(fp::name(fp::Id::ThreadRegistryExhausted),
               "threadregistry.exhausted");

  for (unsigned I = 0; I < fp::NumIds; ++I) {
    fp::Id Id = static_cast<fp::Id>(I);
    std::string Error;
    EXPECT_TRUE(fp::armFromSpec(std::string(fp::name(Id)) + "=always",
                                &Error))
        << Error;
    EXPECT_TRUE(fp::evaluate(Id)) << fp::name(Id);
  }
}

TEST_F(FailPointTest, AlwaysFiresEveryEvaluation) {
  fp::arm(fp::Id::ThinLockInitialCas, fp::Mode::Always);
  for (int I = 0; I < 5; ++I)
    EXPECT_TRUE(fp::evaluate(fp::Id::ThinLockInitialCas));
  EXPECT_EQ(fp::hitCount(fp::Id::ThinLockInitialCas), 5u);
  EXPECT_EQ(fp::evalCount(fp::Id::ThinLockInitialCas), 5u);
}

TEST_F(FailPointTest, TimesFiresExactlyFirstN) {
  fp::arm(fp::Id::SpinWaitPreempt, fp::Mode::Times, 3);
  int Fired = 0;
  for (int I = 0; I < 10; ++I)
    if (fp::evaluate(fp::Id::SpinWaitPreempt))
      ++Fired;
  EXPECT_EQ(Fired, 3);
  EXPECT_EQ(fp::hitCount(fp::Id::SpinWaitPreempt), 3u);
  EXPECT_EQ(fp::evalCount(fp::Id::SpinWaitPreempt), 10u);
}

TEST_F(FailPointTest, OneInFiresEveryNth) {
  fp::arm(fp::Id::MonitorTableExhausted, fp::Mode::OneIn, 4);
  std::vector<bool> Fired;
  for (int I = 0; I < 8; ++I)
    Fired.push_back(fp::evaluate(fp::Id::MonitorTableExhausted));
  // Fires on the 4th and 8th evaluation.
  std::vector<bool> Expected{false, false, false, true,
                             false, false, false, true};
  EXPECT_EQ(Fired, Expected);
  EXPECT_EQ(fp::hitCount(fp::Id::MonitorTableExhausted), 2u);
}

TEST_F(FailPointTest, DisarmStopsFiringAndClearsArmedMask) {
  fp::arm(fp::Id::ThinLockInitialCas, fp::Mode::Always);
  EXPECT_NE(fp::ArmedMask.load(), 0u);
  EXPECT_TRUE(fp::evaluate(fp::Id::ThinLockInitialCas));

  fp::disarm(fp::Id::ThinLockInitialCas);
  EXPECT_EQ(fp::ArmedMask.load(), 0u);
  EXPECT_FALSE(fp::evaluate(fp::Id::ThinLockInitialCas));
}

TEST_F(FailPointTest, SpecParsesMultipleEntriesAndModes) {
  std::string Error;
  ASSERT_TRUE(fp::armFromSpec("thinlock.initial-cas=always,"
                              "spinwait.preempt=times:2,"
                              "monitortable.exhausted=oneIn:3",
                              &Error))
      << Error;
  EXPECT_TRUE(fp::evaluate(fp::Id::ThinLockInitialCas));
  EXPECT_TRUE(fp::evaluate(fp::Id::SpinWaitPreempt));
  EXPECT_TRUE(fp::evaluate(fp::Id::SpinWaitPreempt));
  EXPECT_FALSE(fp::evaluate(fp::Id::SpinWaitPreempt));
  EXPECT_FALSE(fp::evaluate(fp::Id::MonitorTableExhausted));
  EXPECT_FALSE(fp::evaluate(fp::Id::MonitorTableExhausted));
  EXPECT_TRUE(fp::evaluate(fp::Id::MonitorTableExhausted));
}

TEST_F(FailPointTest, SpecOffEntryDisarms) {
  fp::arm(fp::Id::SpinWaitPreempt, fp::Mode::Always);
  std::string Error;
  ASSERT_TRUE(fp::armFromSpec("spinwait.preempt=off", &Error)) << Error;
  EXPECT_FALSE(fp::evaluate(fp::Id::SpinWaitPreempt));
}

TEST_F(FailPointTest, MalformedSpecsReportErrors) {
  std::string Error;
  EXPECT_FALSE(fp::armFromSpec("thinlock.initial-cas", &Error));
  EXPECT_FALSE(Error.empty());

  EXPECT_FALSE(fp::armFromSpec("no.such.failpoint=always", &Error));
  EXPECT_FALSE(Error.empty());

  EXPECT_FALSE(fp::armFromSpec("thinlock.initial-cas=sometimes", &Error));
  EXPECT_FALSE(Error.empty());

  EXPECT_FALSE(fp::armFromSpec("spinwait.preempt=times:banana", &Error));
  EXPECT_FALSE(Error.empty());

  // Null Error pointer must be tolerated.
  EXPECT_FALSE(fp::armFromSpec("garbage"));
}

TEST_F(FailPointTest, ValidPrefixOfPartlyMalformedSpecStillApplies) {
  std::string Error;
  EXPECT_FALSE(
      fp::armFromSpec("thinlock.initial-cas=always,bogus=always", &Error));
  EXPECT_TRUE(fp::evaluate(fp::Id::ThinLockInitialCas));
}

TEST_F(FailPointTest, CollectAppliesValidClausesAroundBadOnes) {
  // armFromSpecCollect is the startup-hardening variant behind
  // THINLOCKS_FAILPOINTS env parsing: it applies every valid clause and
  // reports *all* bad ones (armFromSpec stops at the first), so the
  // fatal startup diagnostic can list everything wrong with the spec.
  std::vector<std::string> Errors;
  size_t Applied = fp::armFromSpecCollect(
      "thinlock.initial-cas=always,bogus=always,"
      "spinwait.preempt=sometimes,monitortable.exhausted=times:2",
      &Errors);
  EXPECT_EQ(Applied, 2u);
  ASSERT_EQ(Errors.size(), 2u);
  EXPECT_NE(Errors[0].find("bogus"), std::string::npos);
  EXPECT_NE(Errors[1].find("sometimes"), std::string::npos);
  // The valid clauses on either side of the bad ones took effect.
  EXPECT_TRUE(fp::evaluate(fp::Id::ThinLockInitialCas));
  EXPECT_TRUE(fp::evaluate(fp::Id::MonitorTableExhausted));
  EXPECT_TRUE(fp::evaluate(fp::Id::MonitorTableExhausted));
  EXPECT_FALSE(fp::evaluate(fp::Id::MonitorTableExhausted));
  // The misspelled-mode clause must not have armed its (valid) point.
  EXPECT_FALSE(fp::evaluate(fp::Id::SpinWaitPreempt));
}

TEST_F(FailPointTest, CollectCleanSpecReportsNoErrors) {
  std::vector<std::string> Errors;
  size_t Applied =
      fp::armFromSpecCollect("park.spurious=oneIn:2,spinwait.preempt=off",
                             &Errors);
  EXPECT_EQ(Applied, 2u);
  EXPECT_TRUE(Errors.empty());
}

TEST_F(FailPointTest, CollectToleratesNullErrorsAndEmptySpec) {
  EXPECT_EQ(fp::armFromSpecCollect("", nullptr), 0u);
  EXPECT_EQ(fp::armFromSpecCollect("garbage", nullptr), 0u);
  EXPECT_EQ(fp::armFromSpecCollect("thinlock.initial-cas=always", nullptr),
            1u);
  EXPECT_TRUE(fp::evaluate(fp::Id::ThinLockInitialCas));
}

//===----------------------------------------------------------------------===//
// Injection: sites must be compiled in.
//===----------------------------------------------------------------------===//

TEST_F(FailPointLockTest, SitesAreDeadWhenCompiledOut) {
  if (fp::compiledIn())
    GTEST_SKIP() << "sites are compiled in; this test covers OFF builds";
  // Arming is legal but nothing may fire: the sites constant-fold away.
  fp::arm(fp::Id::ThinLockInitialCas, fp::Mode::Always);
  Object *Obj = newObject();
  Locks.lock(Obj, Main);
  EXPECT_TRUE(lockword::isThin(Obj->lockWord().load()));
  EXPECT_TRUE(Locks.holdsLock(Obj, Main));
  Locks.unlock(Obj, Main);
  EXPECT_EQ(fp::evalCount(fp::Id::ThinLockInitialCas), 0u);
  EXPECT_EQ(fp::hitCount(fp::Id::ThinLockInitialCas), 0u);
}

TEST_F(FailPointLockTest, InitialCasFailureRecoversViaSlowPath) {
  if (!fp::compiledIn())
    GTEST_SKIP() << "requires -DTHINLOCKS_FAILPOINTS=ON";
  fp::arm(fp::Id::ThinLockInitialCas, fp::Mode::Always);

  Object *Obj = newObject();
  // The injected CAS failure behaves exactly like losing the initial
  // race: lock() falls into lockSlow, wins the unlocked word there, and
  // — indistinguishable from real contention — inflates per §2.3.4.
  // The essential property is recovery: the acquisition still succeeds.
  Locks.lock(Obj, Main);
  EXPECT_TRUE(Locks.holdsLock(Obj, Main));
  EXPECT_GE(fp::hitCount(fp::Id::ThinLockInitialCas), 1u);
  EXPECT_TRUE(Locks.isInflated(Obj));
  EXPECT_EQ(Stats.contentionInflations(), 1u);
  Locks.unlock(Obj, Main);
  EXPECT_FALSE(Locks.holdsLock(Obj, Main));

  // Disarmed, the fast path is back and fresh objects stay thin.
  fp::disarm(fp::Id::ThinLockInitialCas);
  uint64_t FastBefore = Stats.fastPathAcquisitions();
  Object *Obj2 = newObject();
  Locks.lock(Obj2, Main);
  EXPECT_EQ(Stats.fastPathAcquisitions(), FastBefore + 1);
  EXPECT_FALSE(Locks.isInflated(Obj2));
  Locks.unlock(Obj2, Main);
}

TEST_F(FailPointLockTest, SpinWaitPreemptInjectsDelayedYields) {
  if (!fp::compiledIn())
    GTEST_SKIP() << "requires -DTHINLOCKS_FAILPOINTS=ON";
  fp::arm(fp::Id::SpinWaitPreempt, fp::Mode::Times, 3);

  SpinWait Spinner{SpinPolicy()};
  for (int I = 0; I < 8; ++I)
    Spinner.spinOnce();
  EXPECT_EQ(fp::hitCount(fp::Id::SpinWaitPreempt), 3u);
  // Each injected preemption is accounted as a yield.
  EXPECT_GE(Spinner.totalYields(), 3u);
}

TEST_F(FailPointLockTest, InflateRaceWindowStillHandsOffToContender) {
  if (!fp::compiledIn())
    GTEST_SKIP() << "requires -DTHINLOCKS_FAILPOINTS=ON";
  fp::arm(fp::Id::ThinLockInflateRace, fp::Mode::Always);

  Object *Obj = newObject();
  Locks.lock(Obj, Main);

  // The contender can only acquire through lockSlow, which inflates on
  // success; the armed failpoint widens the held-but-still-thin publish
  // window inside that inflation.
  std::thread Contender([&] {
    ScopedThreadAttachment Attachment(Registry, "contender");
    Locks.lock(Obj, Attachment.context());
    Locks.unlock(Obj, Attachment.context());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Locks.unlock(Obj, Main);
  Contender.join();

  EXPECT_TRUE(Locks.isInflated(Obj));
  EXPECT_GE(fp::hitCount(fp::Id::ThinLockInflateRace), 1u);
  // The monitor handed back cleanly: we can take it again.
  Locks.lock(Obj, Main);
  EXPECT_TRUE(Locks.holdsLock(Obj, Main));
  Locks.unlock(Obj, Main);
}

TEST_F(FailPointLockTest, InjectedMonitorTableExhaustionFailsAllocate) {
  if (!fp::compiledIn())
    GTEST_SKIP() << "requires -DTHINLOCKS_FAILPOINTS=ON";
  MonitorTable Table(64);
  fp::arm(fp::Id::MonitorTableExhausted, fp::Mode::Always);
  EXPECT_EQ(Table.allocate(), 0u);
  EXPECT_EQ(Table.exhaustionEvents(), 1u);

  fp::disarm(fp::Id::MonitorTableExhausted);
  EXPECT_NE(Table.allocate(), 0u);
}

TEST_F(FailPointLockTest, InjectedExhaustionDegradesToEmergencyMonitor) {
  if (!fp::compiledIn())
    GTEST_SKIP() << "requires -DTHINLOCKS_FAILPOINTS=ON";
  fp::arm(fp::Id::MonitorTableExhausted, fp::Mode::Always);

  // wait() forces inflation; with allocate() failing, the lock lands on
  // the shared emergency monitor and keeps full monitor semantics.
  Object *Obj = newObject();
  Locks.lock(Obj, Main);
  EXPECT_EQ(Locks.wait(Obj, Main, 1'000'000), WaitStatus::TimedOut);
  EXPECT_TRUE(Locks.isInflated(Obj));
  EXPECT_EQ(lockword::monitorIndexOf(Obj->lockWord().load()),
            Monitors.emergencyIndex());
  EXPECT_EQ(Stats.emergencyInflations(), 1u);
  EXPECT_TRUE(Locks.holdsLock(Obj, Main));
  EXPECT_EQ(Locks.lockDepth(Obj, Main), 1u);
  Locks.unlock(Obj, Main);
  EXPECT_FALSE(Locks.holdsLock(Obj, Main));
}

TEST_F(FailPointLockTest, InjectedRegistryExhaustionReturnsTypedError) {
  if (!fp::compiledIn())
    GTEST_SKIP() << "requires -DTHINLOCKS_FAILPOINTS=ON";
  ThreadRegistry Fresh;
  fp::arm(fp::Id::ThreadRegistryExhausted, fp::Mode::Always);

  AttachError Error = AttachError::None;
  ThreadContext Ctx = Fresh.attach("doomed", &Error);
  EXPECT_FALSE(Ctx.isValid());
  EXPECT_EQ(Error, AttachError::Exhausted);
  EXPECT_EQ(Fresh.exhaustionEvents(), 1u);

  fp::disarm(fp::Id::ThreadRegistryExhausted);
  ThreadContext Ok = Fresh.attach("fine", &Error);
  EXPECT_TRUE(Ok.isValid());
  EXPECT_EQ(Error, AttachError::None);
  Fresh.detach(Ok);
}

TEST_F(FailPointTest, VMSpawnSurfacesThreadExhaustedTrap) {
  if (!fp::compiledIn())
    GTEST_SKIP() << "requires -DTHINLOCKS_FAILPOINTS=ON";
  vm::VM Vm;
  vm::Klass &K = Vm.defineClass("Main", {});
  vm::Method &Nop = Vm.defineNativeMethod(
      K, "nop", vm::MethodTraits{}, 0, false,
      [](vm::VM &, const ThreadContext &, std::span<vm::Value>,
         vm::Value &) -> vm::Trap { return vm::Trap::None; });

  fp::arm(fp::Id::ThreadRegistryExhausted, fp::Mode::Always);
  vm::RunResult Failed = Vm.spawn(Nop, {}, "doomed").join();
  EXPECT_EQ(Failed.TrapKind, vm::Trap::ThreadExhausted);
  EXPECT_FALSE(Failed.ok());

  fp::disarm(fp::Id::ThreadRegistryExhausted);
  vm::RunResult Ok = Vm.spawn(Nop, {}, "fine").join();
  EXPECT_TRUE(Ok.ok());
}

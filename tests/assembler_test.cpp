//===- tests/assembler_test.cpp - Bytecode assembler tests ----------------===//

#include "vm/Assembler.h"

#include <gtest/gtest.h>

using namespace thinlocks;
using namespace thinlocks::vm;

TEST(Assembler, EmitsStraightLineCode) {
  Assembler Asm;
  auto Code = Asm.iconst(7).istore(0).iload(0).iret().finish();
  ASSERT_EQ(Code.size(), 4u);
  EXPECT_EQ(Code[0].Op, Opcode::Iconst);
  EXPECT_EQ(Code[0].A, 7);
  EXPECT_EQ(Code[1].Op, Opcode::Istore);
  EXPECT_EQ(Code[2].Op, Opcode::Iload);
  EXPECT_EQ(Code[3].Op, Opcode::Ireturn);
}

TEST(Assembler, ResolvesBackwardBranch) {
  Assembler Asm;
  auto Loop = Asm.newLabel();
  Asm.bind(Loop);
  Asm.nop();
  Asm.jmp(Loop);
  auto Code = Asm.finish();
  ASSERT_EQ(Code.size(), 2u);
  EXPECT_EQ(Code[1].Op, Opcode::Goto);
  EXPECT_EQ(Code[1].A, 0);
}

TEST(Assembler, ResolvesForwardBranch) {
  Assembler Asm;
  auto Done = Asm.newLabel();
  Asm.iconst(1);
  Asm.ifne(Done);
  Asm.nop();
  Asm.bind(Done);
  Asm.ret();
  auto Code = Asm.finish();
  ASSERT_EQ(Code.size(), 4u);
  EXPECT_EQ(Code[1].Op, Opcode::Ifne);
  EXPECT_EQ(Code[1].A, 3);
}

TEST(Assembler, MultipleFixupsForOneLabel) {
  Assembler Asm;
  auto Target = Asm.newLabel();
  Asm.iconst(0).ifne(Target);
  Asm.iconst(0).ifeq(Target);
  Asm.bind(Target);
  Asm.ret();
  auto Code = Asm.finish();
  EXPECT_EQ(Code[1].A, 4);
  EXPECT_EQ(Code[3].A, 4);
}

TEST(Assembler, SynchronizedOnWrapsBody) {
  Assembler Asm;
  Asm.synchronizedOn(1, [](Assembler &A) { A.iinc(2, 1); });
  auto Code = Asm.finish();
  ASSERT_EQ(Code.size(), 5u);
  EXPECT_EQ(Code[0].Op, Opcode::Aload);
  EXPECT_EQ(Code[1].Op, Opcode::MonitorEnter);
  EXPECT_EQ(Code[2].Op, Opcode::Iinc);
  EXPECT_EQ(Code[3].Op, Opcode::Aload);
  EXPECT_EQ(Code[4].Op, Opcode::MonitorExit);
}

TEST(Assembler, CountedLoopShape) {
  Assembler Asm;
  Asm.countedLoop(2, 0, [](Assembler &A) { A.iinc(3, 1); });
  Asm.ret();
  auto Code = Asm.finish();
  // iconst, istore, [head] iload, iload, if_icmpge -> done, body,
  // iinc counter, goto head, [done] ret
  ASSERT_EQ(Code.size(), 9u);
  EXPECT_EQ(Code[4].Op, Opcode::IfIcmpGe);
  EXPECT_EQ(Code[4].A, 8); // Branch to ret.
  EXPECT_EQ(Code[7].Op, Opcode::Goto);
  EXPECT_EQ(Code[7].A, 2); // Back to loop head.
}

TEST(Assembler, NextIndexTracksEmission) {
  Assembler Asm;
  EXPECT_EQ(Asm.nextIndex(), 0u);
  Asm.nop().nop();
  EXPECT_EQ(Asm.nextIndex(), 2u);
}

TEST(Assembler, OpcodeNamesAreStable) {
  EXPECT_STREQ(opcodeName(Opcode::MonitorEnter), "monitorenter");
  EXPECT_STREQ(opcodeName(Opcode::MonitorExit), "monitorexit");
  EXPECT_STREQ(opcodeName(Opcode::Iinc), "iinc");
  EXPECT_STREQ(opcodeName(Opcode::Invoke), "invoke");
}

//===- tests/lockstats_test.cpp - LockStats epoch-reset tests -------------===//
//
// Covers the epoch semantics of LockStats::reset() and the regression
// that motivated them: reset() used to zero the striped counters one
// stripe at a time, so a snapshot overlapping the wipe mixed pre- and
// post-reset values.  The signature tear: Releases was wiped first and
// FastPathAcquires read first, so a racing snapshot could report
// millions more acquisitions than releases — a "negative delta" in any
// monitoring pairing.  reset() now captures a baseline under a mutex
// and snapshot() subtracts it, so the hammer test below must never see
// a pairing violation beyond small in-flight slack.  The suite is also
// pointed at by the tsan preset: the baseline handoff itself must be
// race-free.
//
//===----------------------------------------------------------------------===//

#include "core/LockStats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace thinlocks;
using namespace std::chrono_literals;

namespace {

/// ~32 dependent multiplies: slows a writer iteration enough that a
/// scheduler quantum spans bounded work, keeping the hammer test's
/// in-flight slack far below its tolerance on a single-CPU machine.
uint32_t slowWork(uint32_t X) {
  for (int I = 0; I < 32; ++I)
    X = X * 1664525u + 1013904223u;
  return X;
}

} // namespace

TEST(LockStatsTest, ResetStartsANewEpoch) {
  LockStats Stats;
  Stats.recordFastPathAcquire();
  Stats.recordRelease();
  Stats.recordAcquire(2);
  Stats.recordRelease();
  Stats.recordWakeLatency(5000);
  EXPECT_EQ(Stats.totalAcquisitions(), 2u);
  EXPECT_EQ(Stats.totalReleases(), 2u);

  Stats.reset();
  LockStats::Snapshot S = Stats.snapshot();
  EXPECT_EQ(S.Acquisitions, 0u);
  EXPECT_EQ(S.Releases, 0u);
  EXPECT_EQ(S.FastPath, 0u);
  EXPECT_EQ(S.DepthBuckets[1], 0u);
  EXPECT_EQ(S.Wakes, 0u);
  EXPECT_EQ(S.WakeNanosTotal, 0u);
  EXPECT_EQ(S.WakeNanosMax, 0u);

  // The new epoch counts from zero; the high-water mark restarts too.
  Stats.recordFastPathAcquire();
  Stats.recordWakeLatency(3000);
  EXPECT_EQ(Stats.totalAcquisitions(), 1u);
  EXPECT_EQ(Stats.totalReleases(), 0u);
  EXPECT_EQ(Stats.snapshot().WakeNanosMax, 3000u);
}

TEST(LockStatsTest, RepeatedResetsStack) {
  LockStats Stats;
  for (int Epoch = 0; Epoch < 4; ++Epoch) {
    for (int I = 0; I <= Epoch; ++I) {
      Stats.recordFastPathAcquire();
      Stats.recordRelease();
    }
    EXPECT_EQ(Stats.totalAcquisitions(), static_cast<uint64_t>(Epoch + 1));
    Stats.reset();
    EXPECT_EQ(Stats.totalAcquisitions(), 0u);
  }
}

// The regression hammer: writers bump paired counters (release first,
// then one acquire), a resetter hammers reset(), and the main thread
// snapshots throughout.  Because every writer records its release
// before its acquire, and snapshot() reads the acquire counters before
// Releases, any coherent view satisfies
//   Acquisitions <= Releases (+ small in-flight / epoch slack).
// The old stripe-wiping reset() broke this by the full pre-reset count
// (>= Floor, driven past a million below); the epoch-based reset() can
// only be off by the handful of operations in flight while a baseline
// is captured, which Tolerance generously covers.
TEST(LockStatsTest, ConcurrentResetAndSnapshotNeverTearPairing) {
  LockStats Stats;
  constexpr int NumWriters = 3;
  constexpr uint64_t Floor = 1000000;
  constexpr uint64_t Tolerance = 500000;

  std::atomic<bool> Stop{false};
  std::atomic<uint32_t> Sink{0};
  std::vector<std::thread> Writers;
  for (int W = 0; W < NumWriters; ++W) {
    Writers.emplace_back([&Stats, &Stop, &Sink, W] {
      uint32_t X = static_cast<uint32_t>(W + 1);
      while (!Stop.load(std::memory_order_relaxed)) {
        Stats.recordRelease();
        if (X & 1)
          Stats.recordFastPathAcquire();
        else
          Stats.recordAcquire(1 + (X % 4));
        X = slowWork(X);
      }
      Sink.fetch_add(X, std::memory_order_relaxed);
    });
  }

  // Grow the counters well past Floor first, so the old bug's tear
  // (proportional to everything recorded so far) dwarfs Tolerance.
  auto Deadline = std::chrono::steady_clock::now() + 100s;
  while (Stats.snapshot().Releases < Floor) {
    ASSERT_LT(std::chrono::steady_clock::now(), Deadline)
        << "writers too slow to reach the floor";
    std::this_thread::yield();
  }

  std::atomic<bool> StopReset{false};
  std::thread Resetter([&Stats, &StopReset] {
    while (!StopReset.load(std::memory_order_relaxed))
      Stats.reset();
  });

  uint64_t MaxViolation = 0;
  uint64_t SnapshotsTaken = 0;
  auto End = std::chrono::steady_clock::now() + 250ms;
  while (std::chrono::steady_clock::now() < End) {
    LockStats::Snapshot S = Stats.snapshot();
    ++SnapshotsTaken;
    if (S.Acquisitions > S.Releases + NumWriters) {
      uint64_t Violation = S.Acquisitions - S.Releases;
      if (Violation > MaxViolation)
        MaxViolation = Violation;
    }
  }
  StopReset.store(true, std::memory_order_relaxed);
  Resetter.join();
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &T : Writers)
    T.join();

  EXPECT_GT(SnapshotsTaken, 0u);
  EXPECT_LE(MaxViolation, Tolerance)
      << "snapshot raced reset into a torn pairing";
}

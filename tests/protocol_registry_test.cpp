//===- tests/protocol_registry_test.cpp - Protocol registry tests ---------===//
//
// The name -> factory seam (core/ProtocolRegistry.h): canonical names,
// both dispatch faces (type-erased createProtocol and compile-time
// withProtocol), capability accessors, env/CLI resolution order, and the
// type-erased SyncBackend surface (tryLock / tryLockFor / statsJson /
// inflateHint) for a thin-lock and a side-table protocol.
//
//===----------------------------------------------------------------------===//

#include "core/ProtocolRegistry.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace thinlocks;

namespace {

class ProtocolRegistryTest : public ::testing::Test {
protected:
  Heap TheHeap;
  ThreadRegistry Registry;
  ThreadContext Main;
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    Main = Registry.attach("main");
    Class = &TheHeap.classes().registerClass("R", 0);
  }
  void TearDown() override {
    Registry.detach(Main);
    ::unsetenv(ProtocolEnvVar);
  }

  Object *newObject() { return TheHeap.allocate(*Class); }
};

} // namespace

TEST_F(ProtocolRegistryTest, RegistryListsCanonicalNames) {
  const std::vector<std::string> &Names = registeredProtocolNames();
  ASSERT_GE(Names.size(), 4u);
  EXPECT_EQ(Names.front(), "ThinLock"); // The paper's contribution leads.
  for (const char *Required : {"ThinLock", "JDK111", "IBM112", "Fissile"}) {
    EXPECT_TRUE(isRegisteredProtocol(Required)) << Required;
  }
  EXPECT_FALSE(isRegisteredProtocol("NoSuchProtocol"));
  EXPECT_FALSE(isRegisteredProtocol(""));
  // The thin-lock manager's concept-level name reports its *policy*, not
  // the registry label — the registry is the canonical spelling.
  EXPECT_STREQ(ThinLockManager::protocolName(), "Dynamic");
}

TEST_F(ProtocolRegistryTest, CreateProtocolEveryRegisteredName) {
  for (const std::string &Name : registeredProtocolNames()) {
    std::unique_ptr<ProtocolHandle> Handle = createProtocol(Name);
    ASSERT_NE(Handle, nullptr) << Name;
    EXPECT_EQ(Handle->name(), Name);
    // The handle's backend must serve monitor semantics end to end.
    Object *Obj = newObject();
    SyncBackend &Sync = Handle->sync();
    Sync.lock(Obj, Main);
    EXPECT_TRUE(Sync.holdsLock(Obj, Main));
    EXPECT_TRUE(Sync.tryLock(Obj, Main)); // Recursive tryLock.
    EXPECT_EQ(Sync.lockDepth(Obj, Main), 2u);
    Sync.unlock(Obj, Main);
    EXPECT_EQ(Sync.tryLockFor(Obj, Main, 1'000'000),
              TimedLockStatus::Acquired);
    Sync.unlock(Obj, Main);
    Sync.unlock(Obj, Main);
    EXPECT_FALSE(Sync.holdsLock(Obj, Main));
  }
  EXPECT_EQ(createProtocol("NoSuchProtocol"), nullptr);
}

TEST_F(ProtocolRegistryTest, CapabilityAccessorsGateOnSubstrate) {
  std::unique_ptr<ProtocolHandle> Thin = createProtocol("ThinLock");
  ASSERT_NE(Thin, nullptr);
  EXPECT_NE(Thin->monitorTable(), nullptr);
  EXPECT_NE(Thin->thinLocks(), nullptr);
  for (const char *SideTable : {"JDK111", "IBM112", "Fissile"}) {
    std::unique_ptr<ProtocolHandle> Handle = createProtocol(SideTable);
    ASSERT_NE(Handle, nullptr) << SideTable;
    EXPECT_EQ(Handle->monitorTable(), nullptr) << SideTable;
    EXPECT_EQ(Handle->thinLocks(), nullptr) << SideTable;
  }
}

TEST_F(ProtocolRegistryTest, ProtocolConfigReachesThinLockSubstrate) {
  ProtocolConfig Config;
  Config.MonitorCapacity = 64;
  LockStats Stats;
  Config.Stats = &Stats;
  std::unique_ptr<ProtocolHandle> Handle =
      createProtocol("ThinLock", Config);
  ASSERT_NE(Handle, nullptr);
  ASSERT_NE(Handle->monitorTable(), nullptr);
  EXPECT_EQ(Handle->monitorTable()->capacity(), 64u);
  // An inflate hint (owner-only, like Object.wait) allocates a monitor.
  Object *Obj = newObject();
  Handle->sync().lock(Obj, Main);
  EXPECT_TRUE(Handle->sync().inflateHint(Obj, Main));
  Handle->sync().unlock(Obj, Main);
  EXPECT_GT(Handle->monitorTable()->occupancy(), 0.0);
}

TEST_F(ProtocolRegistryTest, InflateHintDegradesGracefully) {
  // Side-table protocols have no inflation notion: the hint must report
  // false (so callers can fall back) and change nothing.
  std::unique_ptr<ProtocolHandle> Handle = createProtocol("Fissile");
  ASSERT_NE(Handle, nullptr);
  Object *Obj = newObject();
  EXPECT_FALSE(Handle->sync().inflateHint(Obj, Main));
}

TEST_F(ProtocolRegistryTest, StatsJsonCapability) {
  // Side-table protocols expose their counters; exercise one op first
  // so the snapshot is visibly non-trivial.
  for (const char *Name : {"JDK111", "IBM112", "Fissile"}) {
    std::unique_ptr<ProtocolHandle> Handle = createProtocol(Name);
    ASSERT_NE(Handle, nullptr) << Name;
    Object *Obj = newObject();
    Handle->sync().lock(Obj, Main);
    Handle->sync().unlock(Obj, Main);
    std::string Json = Handle->statsJson();
    ASSERT_FALSE(Json.empty()) << Name;
    EXPECT_EQ(Json.front(), '{') << Name;
    EXPECT_EQ(Json.back(), '}') << Name;
  }
}

TEST_F(ProtocolRegistryTest, WithProtocolDispatchesConcreteType) {
  // The compile-time face hands the callback the *concrete* protocol:
  // concept-level protocolName() must match the type, and the handle
  // must agree on the registry name.
  bool SawFissile = false;
  bool Ran = withProtocol(
      "Fissile", ProtocolConfig(),
      [&](auto &Protocol, ProtocolHandle &Handle) {
        using P = std::decay_t<decltype(Protocol)>;
        static_assert(SyncProtocol<P>);
        if constexpr (std::is_same_v<P, FissileLock>)
          SawFissile = true;
        EXPECT_STREQ(Handle.name(), "Fissile");
        Object *Obj = newObject();
        Protocol.lock(Obj, Main);
        EXPECT_TRUE(Protocol.holdsLock(Obj, Main));
        Protocol.unlock(Obj, Main);
      });
  EXPECT_TRUE(Ran);
  EXPECT_TRUE(SawFissile);
  EXPECT_FALSE(withProtocol("NoSuchProtocol", ProtocolConfig(),
                            [](auto &, ProtocolHandle &) {}));
}

TEST_F(ProtocolRegistryTest, ResolutionOrderCliEnvDefault) {
  ::unsetenv(ProtocolEnvVar);
  EXPECT_EQ(resolveProtocolName(), DefaultProtocolName);
  ::setenv(ProtocolEnvVar, "Fissile", /*overwrite=*/1);
  EXPECT_EQ(resolveProtocolName(), "Fissile");
  EXPECT_EQ(resolveProtocolName("JDK111"), "JDK111"); // CLI wins.
  ::setenv(ProtocolEnvVar, "", /*overwrite=*/1);
  EXPECT_EQ(resolveProtocolName(), DefaultProtocolName);
}

//===- tests/stress_test.cpp - Multi-threaded stress invariants -----------===//
//
// Heavier concurrency runs asserting the invariants the thin-lock design
// leans on: mutual exclusion under racing first-acquisitions, header-bit
// preservation across arbitrary interleavings, permanence of inflation,
// and correct lock-word states at quiescence.
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "support/SplitMix64.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace thinlocks;

namespace {
class StressTest : public ::testing::Test {
protected:
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockManager Locks{Monitors, &Stats};
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    Class = &TheHeap.classes().registerClass("X", 0);
  }
};
} // namespace

TEST_F(StressTest, RacingFirstAcquisitionsAdmitOneOwner) {
  // All threads start together and race the very first CAS on a fresh
  // object, repeatedly.
  constexpr int NumThreads = 4;
  constexpr int Rounds = 300;
  for (int Round = 0; Round < Rounds; ++Round) {
    Object *Obj = TheHeap.allocate(*Class);
    std::atomic<int> Inside{0};
    std::atomic<bool> Start{false};
    std::atomic<bool> Violation{false};
    std::vector<std::thread> Workers;
    for (int T = 0; T < NumThreads; ++T) {
      Workers.emplace_back([&] {
        ScopedThreadAttachment Attachment(Registry);
        while (!Start.load(std::memory_order_acquire))
          std::this_thread::yield();
        Locks.lock(Obj, Attachment.context());
        if (Inside.fetch_add(1) != 0)
          Violation.store(true);
        Inside.fetch_sub(1);
        Locks.unlock(Obj, Attachment.context());
      });
    }
    Start.store(true, std::memory_order_release);
    for (auto &W : Workers)
      W.join();
    EXPECT_FALSE(Violation.load()) << "round " << Round;
  }
}

TEST_F(StressTest, MixedDepthChaosPreservesCountersAndHeaders) {
  constexpr int NumThreads = 4;
  constexpr int NumObjects = 32;
  constexpr int OpsPerThread = 20000;

  std::vector<Object *> Objects;
  std::vector<uint32_t> Headers;
  std::vector<uint64_t> Counters(NumObjects, 0);
  for (int I = 0; I < NumObjects; ++I) {
    Objects.push_back(TheHeap.allocate(*Class));
    Headers.push_back(Objects.back()->headerBits());
  }

  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&, T] {
      ScopedThreadAttachment Attachment(Registry);
      const ThreadContext &Ctx = Attachment.context();
      SplitMix64 Rng(1000 + T);
      for (int I = 0; I < OpsPerThread; ++I) {
        size_t Index = Rng.nextBounded(NumObjects);
        Object *Obj = Objects[Index];
        uint32_t Depth = 1 + static_cast<uint32_t>(Rng.nextBounded(4));
        for (uint32_t D = 0; D < Depth; ++D)
          Locks.lock(Obj, Ctx);
        ++Counters[Index]; // Protected by Obj's monitor.
        for (uint32_t D = 0; D < Depth; ++D)
          Locks.unlock(Obj, Ctx);
      }
    });
  }
  for (auto &W : Workers)
    W.join();

  uint64_t Total = 0;
  for (uint64_t C : Counters)
    Total += C;
  EXPECT_EQ(Total, static_cast<uint64_t>(NumThreads) * OpsPerThread);

  // Quiescent state: every lock is released; header bits intact; any
  // inflated lock has a fresh, unowned fat lock.
  ScopedThreadAttachment Main(Registry);
  for (int I = 0; I < NumObjects; ++I) {
    Object *Obj = Objects[I];
    EXPECT_EQ(lockword::headerBitsOf(Obj->lockWord().load()), Headers[I]);
    EXPECT_FALSE(Locks.holdsLock(Obj, Main.context()));
    if (Locks.isInflated(Obj)) {
      FatLock *Fat = Locks.monitorOf(Obj);
      ASSERT_NE(Fat, nullptr);
      EXPECT_EQ(Fat->ownerIndex(), 0);
      EXPECT_EQ(Fat->holdCount(), 0u);
      EXPECT_EQ(Fat->entryQueueLength(), 0u);
    } else {
      EXPECT_TRUE(lockword::isUnlocked(Obj->lockWord().load()));
    }
  }
  EXPECT_EQ(Stats.totalAcquisitions(), Stats.totalReleases());
}

TEST_F(StressTest, InflationIsMonotonic) {
  // Sample lock words concurrently with heavy contention: once the shape
  // bit is observed set, it must never be observed clear again, and the
  // monitor index must never change.
  Object *Obj = TheHeap.allocate(*Class);
  std::atomic<bool> Stop{false};
  std::atomic<bool> Violation{false};

  std::thread Observer([&] {
    bool SeenFat = false;
    uint32_t FatWord = 0;
    while (!Stop.load()) {
      uint32_t Word = Obj->lockWord().load();
      std::this_thread::yield(); // Single-CPU host: let workers run.
      if (lockword::isFat(Word)) {
        if (!SeenFat) {
          SeenFat = true;
          FatWord = Word;
        } else if (Word != FatWord) {
          Violation.store(true);
        }
      } else if (SeenFat) {
        Violation.store(true); // Deflated: forbidden.
      }
    }
  });

  // One deterministic contention episode guarantees inflation: the
  // holder keeps the lock until the contender is provably spinning.
  {
    ScopedThreadAttachment Holder(Registry, "holder");
    Locks.lock(Obj, Holder.context());
    std::atomic<bool> ContenderStarted{false};
    std::thread Contender([&] {
      ScopedThreadAttachment Attachment(Registry, "contender");
      ContenderStarted.store(true);
      Locks.lock(Obj, Attachment.context());
      Locks.unlock(Obj, Attachment.context());
    });
    while (!ContenderStarted.load())
      std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Locks.unlock(Obj, Holder.context());
    Contender.join();
  }
  EXPECT_TRUE(Locks.isInflated(Obj));

  constexpr int NumThreads = 3;
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&] {
      ScopedThreadAttachment Attachment(Registry);
      for (int I = 0; I < 4000; ++I) {
        Locks.lock(Obj, Attachment.context());
        Locks.unlock(Obj, Attachment.context());
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  Stop.store(true);
  Observer.join();
  EXPECT_FALSE(Violation.load());
  EXPECT_TRUE(Locks.isInflated(Obj));
}

TEST_F(StressTest, DeepRecursionAcrossInflationBoundaryUnderObservation) {
  Object *Obj = TheHeap.allocate(*Class);
  std::atomic<bool> Stop{false};
  std::thread Observer([&] {
    // Reading lock words concurrently must always see a sane encoding.
    while (!Stop.load()) {
      uint32_t Word = Obj->lockWord().load();
      if (lockword::isThin(Word) && lockword::threadIndexOf(Word) == 0) {
        EXPECT_EQ(lockword::countOf(Word), 0u);
      }
      std::this_thread::yield(); // Single-CPU host: let the worker run.
    }
  });
  {
    ScopedThreadAttachment Attachment(Registry);
    for (int Round = 0; Round < 50; ++Round) {
      for (int I = 0; I < 300; ++I)
        Locks.lock(Obj, Attachment.context());
      for (int I = 0; I < 300; ++I)
        Locks.unlock(Obj, Attachment.context());
    }
  }
  Stop.store(true);
  Observer.join();
  EXPECT_TRUE(Locks.isInflated(Obj));
}

TEST_F(StressTest, ThinLocksNeverTouchTheMonitorTableUntilInflation) {
  // Uncontended single-owner usage must allocate zero monitors.
  ScopedThreadAttachment Attachment(Registry);
  for (int I = 0; I < 1000; ++I) {
    Object *Obj = TheHeap.allocate(*Class);
    for (int D = 0; D < 4; ++D)
      Locks.lock(Obj, Attachment.context());
    for (int D = 0; D < 4; ++D)
      Locks.unlock(Obj, Attachment.context());
  }
  EXPECT_EQ(Monitors.liveMonitorCount(), 0u);
}

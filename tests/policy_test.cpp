//===- tests/policy_test.cpp - Adaptive policy engine tests ---------------===//
//
// Covers the policy layer bottom-up: LockPolicy packing, the
// DecisionTable's probe/tombstone/capacity behavior, PolicyStore
// object-over-class precedence, the AdaptivePolicyEngine's dwell
// hysteresis (no oscillation across churn at the classification
// boundary), cold expiry and re-tracking, class-level rollup decisions,
// and the end-to-end levers through a real ThinLockManager: KeepFat
// suppressing quiescent retirement, EagerInflate on the timed-acquire
// path, the slow-path-only invariant, and speculative deflation of a
// cold inflated object.  The concurrent stress tests are the TSan
// targets for the wait-free-reader claims.
//
//===----------------------------------------------------------------------===//

#include "policy/AdaptivePolicyEngine.h"
#include "policy/DecisionTable.h"
#include "policy/LockPolicy.h"
#include "policy/PolicyStore.h"

#include "core/LockStats.h"
#include "core/ThinLock.h"
#include "fatlock/MonitorTable.h"
#include "heap/Heap.h"
#include "obs/EventRing.h"
#include "obs/LockEventCollector.h"
#include "support/SpinWait.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace thinlocks;
using namespace thinlocks::policy;

namespace {

LockPolicy keepFatPolicy() {
  LockPolicy P;
  P.KeepFat = true;
  P.EagerInflate = true;
  return P;
}

/// Records one inflate/deflate round trip for \p Addr — the per-tick
/// thrash signature (delta >= ReinflateThreshold).
void recordThrash(obs::EventRing &Ring, uint64_t Addr, uint16_t Tid,
                  uint32_t ClassIndex) {
  obs::LockEvent E;
  E.Kind = obs::EventKind::Inflate;
  E.ObjectAddr = Addr;
  E.ThreadIndex = Tid;
  E.ClassIndex = ClassIndex;
  Ring.record(E);
  E.Kind = obs::EventKind::Deflate;
  Ring.record(E);
}

/// Records a contended acquire whose mean blocked time lands in the
/// classifier's dead zone (no spin-class vote either way).
void recordContended(obs::EventRing &Ring, uint64_t Addr, uint16_t Tid,
                     uint32_t ClassIndex) {
  obs::LockEvent E;
  E.Kind = obs::EventKind::ContendedAcquire;
  E.ObjectAddr = Addr;
  E.ThreadIndex = Tid;
  E.ClassIndex = ClassIndex;
  E.Arg = 50'000; // 50us: between FastRelease (5us) and Convoy (100us).
  Ring.record(E);
}

} // namespace

//===----------------------------------------------------------------------===//
// LockPolicy packing
//===----------------------------------------------------------------------===//

TEST(LockPolicyTest, DefaultPacksToZero) {
  LockPolicy P;
  EXPECT_TRUE(P.isDefault());
  EXPECT_EQ(P.pack(), 0u);
  EXPECT_EQ(LockPolicy::unpack(0), LockPolicy());
}

TEST(LockPolicyTest, PackUnpackRoundTripsEveryCombination) {
  for (unsigned Spin = 0; Spin <= 2; ++Spin)
    for (unsigned Eager = 0; Eager <= 1; ++Eager)
      for (unsigned Fat = 0; Fat <= 1; ++Fat) {
        LockPolicy P;
        P.Spin = static_cast<SpinClass>(Spin);
        P.EagerInflate = Eager != 0;
        P.KeepFat = Fat != 0;
        LockPolicy Q = LockPolicy::unpack(P.pack());
        EXPECT_EQ(P, Q);
        EXPECT_EQ(P.isDefault(), P.pack() == 0u);
      }
}

TEST(LockPolicyTest, SpinPolicyForSelectsLadder) {
  SpinPolicy Fallback = DefaultSpinPolicy;
  EXPECT_EQ(spinPolicyFor(SpinClass::Deep, Fallback).MaxPausesPerRound,
            DeepSpinPolicy.MaxPausesPerRound);
  EXPECT_EQ(spinPolicyFor(SpinClass::Deep, Fallback).ParkThresholdRound,
            DeepSpinPolicy.ParkThresholdRound);
  EXPECT_EQ(spinPolicyFor(SpinClass::ParkEarly, Fallback).ParkThresholdRound,
            ParkEarlySpinPolicy.ParkThresholdRound);
  EXPECT_EQ(spinPolicyFor(SpinClass::ParkEarly, Fallback).YieldThresholdRound,
            ParkEarlySpinPolicy.YieldThresholdRound);
  EXPECT_EQ(spinPolicyFor(SpinClass::Default, Fallback).MaxPausesPerRound,
            Fallback.MaxPausesPerRound);
  // ParkEarly gives up on spinning earlier than the default ladder does.
  EXPECT_LT(ParkEarlySpinPolicy.ParkThresholdRound,
            DefaultSpinPolicy.ParkThresholdRound);
  EXPECT_GT(DeepSpinPolicy.ParkThresholdRound,
            DefaultSpinPolicy.ParkThresholdRound);
}

//===----------------------------------------------------------------------===//
// DecisionTable
//===----------------------------------------------------------------------===//

TEST(DecisionTableTest, LookupMissesReturnZero) {
  DecisionTable Table;
  EXPECT_EQ(Table.lookup(0x1234), 0u);
  EXPECT_EQ(Table.size(), 0u);
}

TEST(DecisionTableTest, PublishInsertsAndUpdatesInPlace) {
  DecisionTable Table;
  EXPECT_TRUE(Table.publish(0x1000, 0x3));
  EXPECT_EQ(Table.lookup(0x1000), 0x3u);
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_TRUE(Table.publish(0x1000, 0xC));
  EXPECT_EQ(Table.lookup(0x1000), 0xCu);
  EXPECT_EQ(Table.size(), 1u); // Update, not insert.
}

TEST(DecisionTableTest, EraseRemovesAndTombstonesAreReusable) {
  DecisionTable Table;
  EXPECT_TRUE(Table.publish(0x2000, 0x8));
  EXPECT_TRUE(Table.erase(0x2000));
  EXPECT_EQ(Table.lookup(0x2000), 0u);
  EXPECT_EQ(Table.size(), 0u);
  EXPECT_FALSE(Table.erase(0x2000)); // Already gone.
  // A republish lands again (the tombstoned slot is writable).
  EXPECT_TRUE(Table.publish(0x2000, 0x9));
  EXPECT_EQ(Table.lookup(0x2000), 0x9u);
}

TEST(DecisionTableTest, FullProbeWindowRefusesAndRecoversAfterErase) {
  // Smallest table: ProbeLimit slots per shard, so sustained pressure
  // genuinely fills probe windows.
  DecisionTable Table(DecisionTable::ProbeLimit);
  std::vector<uint64_t> Landed;
  size_t Refused = 0;
  for (uint64_t Key = 1; Key <= 600; ++Key) {
    if (Table.publish(Key, 0x1))
      Landed.push_back(Key);
    else
      ++Refused;
  }
  EXPECT_GT(Refused, 0u) << "600 keys into 256 slots must refuse some";
  EXPECT_EQ(Table.size(), Landed.size());
  for (uint64_t Key : Landed)
    EXPECT_EQ(Table.lookup(Key), 0x1u) << "key " << Key;

  // Erase everything: the table is all tombstones.  If tombstones were
  // not reusable, no further publish could ever succeed.
  for (uint64_t Key : Landed)
    EXPECT_TRUE(Table.erase(Key));
  EXPECT_EQ(Table.size(), 0u);
  EXPECT_TRUE(Table.publish(0xDEAD, 0x2));
  EXPECT_EQ(Table.lookup(0xDEAD), 0x2u);
}

TEST(DecisionTableTest, ConcurrentDecideConsumeStress) {
  // TSan target: one writer publishing/erasing, wait-free readers
  // consuming concurrently.  Readers may see presence or absence for
  // any key at any moment (decisions are hints) but never a value that
  // is not a validly packed LockPolicy.
  DecisionTable Table;
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Readers;
  std::atomic<uint64_t> Consumed{0};
  for (int R = 0; R < 3; ++R) {
    Readers.emplace_back([&Table, &Stop, &Consumed] {
      uint64_t Local = 0;
      // Sweep at least once *after* observing Stop: on a single-CPU
      // host the writer can finish before this thread is first
      // scheduled, and the final table state is non-empty.
      bool Done = false;
      while (!Done) {
        Done = Stop.load(std::memory_order_acquire);
        for (uint64_t Key = 1; Key <= 64; ++Key) {
          uint32_t Packed = Table.lookup(Key * 0x9E37);
          ASSERT_EQ(Packed & ~0xFu, 0u) << "torn or invalid packed policy";
          if (Packed != 0)
            ++Local;
        }
      }
      Consumed.fetch_add(Local, std::memory_order_relaxed);
    });
  }
  for (int I = 0; I < 20000; ++I) {
    uint64_t Key = (1 + (I % 64)) * 0x9E37;
    if (I % 3 == 2) {
      Table.erase(Key);
    } else {
      LockPolicy P;
      P.Spin = static_cast<SpinClass>(1 + (I % 2));
      P.KeepFat = I % 2 == 0;
      Table.publish(Key, P.pack());
    }
  }
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();
  EXPECT_GT(Consumed.load(std::memory_order_relaxed), 0u);
}

//===----------------------------------------------------------------------===//
// PolicyStore precedence
//===----------------------------------------------------------------------===//

TEST(PolicyStoreTest, ObjectDecisionOverridesClassDecision) {
  PolicyStore Store;
  LockPolicy ClassWide;
  ClassWide.Spin = SpinClass::ParkEarly;
  ASSERT_TRUE(Store.publishClass(7, ClassWide));
  LockPolicy PerObject;
  PerObject.Spin = SpinClass::Deep;
  ASSERT_TRUE(Store.publishObject(0x4000, PerObject));

  EXPECT_EQ(Store.forObject(0x4000, 7).Spin, SpinClass::Deep);
  // Another instance of the class inherits the class decision.
  EXPECT_EQ(Store.forObject(0x5000, 7).Spin, SpinClass::ParkEarly);
  // Unrelated class: default.
  EXPECT_TRUE(Store.forObject(0x5000, 8).isDefault());

  // Erasing the object decision re-exposes the class fallback.
  EXPECT_TRUE(Store.eraseObject(0x4000));
  EXPECT_EQ(Store.forObject(0x4000, 7).Spin, SpinClass::ParkEarly);
  EXPECT_TRUE(Store.eraseClass(7));
  EXPECT_TRUE(Store.forObject(0x4000, 7).isDefault());
}

TEST(PolicyStoreTest, ClassIndexZeroIsAValidKey) {
  // Class 0 is a legitimate registry index; the store must not confuse
  // it with DecisionTable's empty-key sentinel.
  PolicyStore Store;
  ASSERT_TRUE(Store.publishClass(0, keepFatPolicy()));
  EXPECT_TRUE(Store.forObject(0x6000, 0).KeepFat);
  EXPECT_TRUE(Store.forObject(0x6000, 1).isDefault());
  EXPECT_TRUE(Store.eraseClass(0));
  EXPECT_TRUE(Store.forObject(0x6000, 0).isDefault());
}

//===----------------------------------------------------------------------===//
// Engine hysteresis (synthetic profiler feed)
//===----------------------------------------------------------------------===//

namespace {

/// Harness for synthetic-event engine tests: a registry, one attached
/// recorder thread, a collector, and an engine with default config
/// (speculative deflation OFF — addresses here are synthetic).
struct EngineHarness {
  ThreadRegistry Registry;
  MonitorTable Monitors;
  obs::LockEventCollector Collector;
  AdaptivePolicyEngine Engine;
  ThreadContext Me;

  explicit EngineHarness(PolicyConfig Config = PolicyConfig())
      : Collector(Registry), Engine(Collector, Monitors, Config),
        Me(Registry.attach("engine-test")) {}
  ~EngineHarness() { Registry.detach(Me); }

  obs::EventRing &ring() { return *Me.eventRing(); }
};

} // namespace

TEST(AdaptiveEngineTest, ThrashPromotesAfterDwellNotBefore) {
  EngineHarness H;
  const uint64_t Addr = 0x7000;
  const PolicyConfig &Cfg = H.Engine.config();

  // Tick 1 seeds the baseline (cumulative profiler rows): no deltas yet.
  recordThrash(H.ring(), Addr, H.Me.index(), 5);
  H.Engine.tick();
  EXPECT_EQ(H.Engine.policyStore().objectDecisions(), 0u);

  // PromoteDwellTicks of consecutive thrash deltas are required; the
  // decision must not land early.
  for (unsigned T = 1; T < Cfg.PromoteDwellTicks; ++T) {
    recordThrash(H.ring(), Addr, H.Me.index(), 5);
    H.Engine.tick();
    EXPECT_EQ(H.Engine.policyStore().objectDecisions(), 0u)
        << "published before dwell at streak " << T;
  }
  recordThrash(H.ring(), Addr, H.Me.index(), 5);
  H.Engine.tick();
  EXPECT_EQ(H.Engine.policyStore().objectDecisions(), 1u);
  LockPolicy P = H.Engine.policyStore().forObject(Addr, 5);
  EXPECT_TRUE(P.KeepFat);
  EXPECT_TRUE(P.EagerInflate);
  PolicyCounters C = H.Engine.counters();
  EXPECT_EQ(C.Promotions, 1u);
  EXPECT_EQ(C.KeepFatDecisions, 1u);
  EXPECT_EQ(C.Demotions, 0u);
}

TEST(AdaptiveEngineTest, ChurnAcrossDwellBoundariesDoesNotOscillate) {
  EngineHarness H;
  const uint64_t Addr = 0x8000;
  const PolicyConfig &Cfg = H.Engine.config();

  // Promote (seed + dwell).
  for (unsigned T = 0; T <= Cfg.PromoteDwellTicks; ++T) {
    recordThrash(H.ring(), Addr, H.Me.index(), 5);
    H.Engine.tick();
  }
  ASSERT_EQ(H.Engine.policyStore().objectDecisions(), 1u);

  // Churn phase 1: alternate one thrash tick with one silent tick.
  // Every silent tick is inside the ColdTicks grace window, so the
  // published decision must hold steady — no expiry, no re-promotion.
  for (unsigned Round = 0; Round < 6 * Cfg.PromoteDwellTicks; ++Round) {
    if (Round % 2 == 0)
      recordThrash(H.ring(), Addr, H.Me.index(), 5);
    H.Engine.tick();
    EXPECT_EQ(H.Engine.policyStore().objectDecisions(), 1u)
        << "decision flapped at churn round " << Round;
    EXPECT_TRUE(H.Engine.policyStore().forObject(Addr, 5).KeepFat);
  }

  // Churn phase 2: the thrash evidence disappears (KeepFat suppressed
  // it) but the object stays contended.  The sticky lever must hold —
  // revoking here would restart the decide/thrash/decide oscillation.
  for (unsigned Round = 0; Round < 2 * Cfg.DemoteDwellTicks; ++Round) {
    recordContended(H.ring(), Addr, H.Me.index(), 5);
    H.Engine.tick();
    EXPECT_TRUE(H.Engine.policyStore().forObject(Addr, 5).KeepFat)
        << "sticky KeepFat dropped while still contended, round " << Round;
  }

  PolicyCounters C = H.Engine.counters();
  EXPECT_EQ(C.Promotions, 1u) << "oscillation: re-promoted after a revoke";
  EXPECT_EQ(C.Demotions, 0u);
  EXPECT_EQ(C.Expiries, 0u);
}

TEST(AdaptiveEngineTest, ColdExpiryThenRetrackRepublishes) {
  EngineHarness H;
  const uint64_t Addr = 0x9000;
  const PolicyConfig &Cfg = H.Engine.config();

  for (unsigned T = 0; T <= Cfg.PromoteDwellTicks; ++T) {
    recordThrash(H.ring(), Addr, H.Me.index(), 5);
    H.Engine.tick();
  }
  ASSERT_EQ(H.Engine.policyStore().objectDecisions(), 1u);

  // Silence: the decision survives the grace window, then expires at
  // exactly ColdTicks idle ticks.
  for (unsigned T = 1; T < Cfg.ColdTicks; ++T) {
    H.Engine.tick();
    EXPECT_EQ(H.Engine.policyStore().objectDecisions(), 1u)
        << "expired early at idle tick " << T;
  }
  H.Engine.tick();
  EXPECT_EQ(H.Engine.policyStore().objectDecisions(), 0u);
  EXPECT_EQ(H.Engine.counters().Expiries, 1u);

  // Long-cold: tracking state itself is dropped (ObjectsTracked decays
  // once nothing is published and the idle count passes 2x ColdTicks).
  for (unsigned T = 0; T < 2 * Cfg.ColdTicks; ++T)
    H.Engine.tick();

  // The object heats up again: the engine re-seeds and re-publishes
  // after the same dwell.
  for (unsigned T = 0; T <= Cfg.PromoteDwellTicks; ++T) {
    recordThrash(H.ring(), Addr, H.Me.index(), 5);
    H.Engine.tick();
  }
  EXPECT_EQ(H.Engine.policyStore().objectDecisions(), 1u);
  EXPECT_EQ(H.Engine.counters().Promotions, 2u);
}

TEST(AdaptiveEngineTest, ClassRollupCoversThePopulationTail) {
  EngineHarness H;
  const PolicyConfig &Cfg = H.Engine.config();
  const uint32_t Cls = 9;

  // MinClassObjects distinct thrashing instances of one class: the
  // class itself earns a decision, covering instances the engine never
  // profiled.
  for (unsigned T = 0; T <= Cfg.PromoteDwellTicks; ++T) {
    for (uint64_t I = 0; I < Cfg.MinClassObjects; ++I)
      recordThrash(H.ring(), 0xA000 + I * 0x100, H.Me.index(), Cls);
    H.Engine.tick();
  }
  EXPECT_EQ(H.Engine.policyStore().classDecisions(), 1u);
  EXPECT_GT(H.Engine.counters().ClassPromotions, 0u);
  // A fresh, never-profiled instance of the class inherits the lever.
  EXPECT_TRUE(H.Engine.policyStore().forObject(0xF0000, Cls).KeepFat);
  // Instances of other classes do not.
  EXPECT_FALSE(H.Engine.policyStore().forObject(0xF0000, Cls + 1).KeepFat);
}

TEST(AdaptiveEngineTest, ConcurrentTickAndConsumeStress) {
  // TSan target for the engine<->slow-path boundary: one thread feeding
  // events and ticking (the single logical writer), readers consuming
  // decisions wait-free the whole time.
  EngineHarness H;
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Readers;
  for (int R = 0; R < 2; ++R) {
    Readers.emplace_back([&H, &Stop] {
      while (!Stop.load(std::memory_order_acquire)) {
        for (uint64_t I = 0; I < 8; ++I) {
          LockPolicy P = H.Engine.policyStore().forObject(0xB000 + I * 0x40, 3);
          SpinPolicy Ladder = spinPolicyFor(P.Spin, DefaultSpinPolicy);
          ASSERT_GT(Ladder.ParkThresholdRound, 0u);
        }
      }
    });
  }
  for (int T = 0; T < 200; ++T) {
    for (uint64_t I = 0; I < 8; ++I) {
      if ((T / 8) % 2 == 0)
        recordThrash(H.ring(), 0xB000 + I * 0x40, H.Me.index(), 3);
      else if (I % 2 == 0)
        recordContended(H.ring(), 0xB000 + I * 0x40, H.Me.index(), 3);
    }
    H.Engine.tick();
  }
  Stop.store(true, std::memory_order_release);
  for (std::thread &Th : Readers)
    Th.join();
  EXPECT_EQ(H.Engine.counters().Ticks, 200u);
}

//===----------------------------------------------------------------------===//
// End-to-end levers through ThinLockManager
//===----------------------------------------------------------------------===//

namespace {

/// Inflates \p Obj via nested-count overflow on the calling thread: the
/// deterministic single-threaded inflation path.
void inflateByOverflow(ThinLockManager &Locks, Object *Obj,
                       const ThreadContext &Me) {
  for (int I = 0; I < 257; ++I)
    Locks.lock(Obj, Me);
  for (int I = 0; I < 257; ++I)
    Locks.unlock(Obj, Me);
}

} // namespace

TEST(PolicyE2ETest, KeepFatSuppressesQuiescentRetirement) {
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockManager Locks(Monitors, &Stats, DeflationPolicy::WhenQuiescent);
  Heap TheHeap;
  const ClassInfo &Cls = TheHeap.classes().registerClass("KF", 0);
  Object *Pinned = TheHeap.allocate(Cls);
  Object *Control = TheHeap.allocate(Cls);

  PolicyStore Store;
  ASSERT_TRUE(
      Store.publishObject(reinterpret_cast<uint64_t>(Pinned), keepFatPolicy()));
  Locks.setPolicyStore(&Store);

  ThreadContext Me = Registry.attach("main");
  inflateByOverflow(Locks, Pinned, Me);
  inflateByOverflow(Locks, Control, Me);
  // The control object deflated at quiescence; the KeepFat object kept
  // its monitor.
  EXPECT_TRUE(Locks.isInflated(Pinned));
  EXPECT_FALSE(Locks.isInflated(Control));

  // Dropping the decision restores WhenQuiescent behavior on the next
  // inflate/release cycle.
  ASSERT_TRUE(Store.eraseObject(reinterpret_cast<uint64_t>(Pinned)));
  Locks.lock(Pinned, Me);
  Locks.unlock(Pinned, Me);
  EXPECT_FALSE(Locks.isInflated(Pinned));
  Registry.detach(Me);
}

TEST(PolicyE2ETest, EagerInflateTriggersOnTimedAcquireOnly) {
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockManager Locks(Monitors, &Stats, DeflationPolicy::Never);
  Heap TheHeap;
  const ClassInfo &Cls = TheHeap.classes().registerClass("EI", 0);
  Object *Obj = TheHeap.allocate(Cls);

  PolicyStore Store;
  LockPolicy Eager;
  Eager.EagerInflate = true;
  ASSERT_TRUE(Store.publishObject(reinterpret_cast<uint64_t>(Obj), Eager));
  Locks.setPolicyStore(&Store);

  ThreadContext Me = Registry.attach("main");
  // Plain lock() is pure fast path: it must NOT consult the store (the
  // slow-path-only invariant), so the object stays thin.
  Locks.lock(Obj, Me);
  EXPECT_FALSE(Locks.isInflated(Obj));
  Locks.unlock(Obj, Me);

  // The timed path runs slow-path machinery and honors the hint.
  ASSERT_EQ(Locks.tryLockFor(Obj, Me, /*TimeoutNanos=*/1'000'000),
            TimedLockStatus::Acquired);
  EXPECT_TRUE(Locks.isInflated(Obj));
  Locks.unlock(Obj, Me);
  Registry.detach(Me);
}

TEST(PolicyE2ETest, SpeculativeDeflationRetiresColdMonitor) {
  obs::setTracing(true);
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  // DeflationPolicy::Never: the engine's speculative scan is the only
  // deflator in this test, so a thin word afterwards proves it ran.
  ThinLockManager Locks(Monitors, &Stats, DeflationPolicy::Never);
  Heap TheHeap;
  obs::LockEventCollector Collector(Registry);
  PolicyConfig Cfg;
  Cfg.SpeculativeDeflation = true; // Heap outlives the engine here.
  AdaptivePolicyEngine Engine(Collector, Monitors, Cfg);
  Locks.setPolicyStore(&Engine.policyStore());
  const ClassInfo &Cls = TheHeap.classes().registerClass("ColdFat", 0);
  Object *Obj = TheHeap.allocate(Cls);

  ThreadContext Me = Registry.attach("main");
  inflateByOverflow(Locks, Obj, Me);
  ASSERT_TRUE(Locks.isInflated(Obj));

  // The Inflate event lands in the profiler on the first tick; from
  // then on the object is idle.  After ColdTicks idle ticks the scan
  // must retire the quiescent monitor and restore a thin word.
  for (unsigned T = 0; T <= Cfg.ColdTicks + 1; ++T)
    Engine.tick();
  EXPECT_FALSE(Locks.isInflated(Obj));
  PolicyCounters C = Engine.counters();
  EXPECT_EQ(C.SpeculativeDeflations, 1u);
  EXPECT_GT(C.DeflationScans, 0u);
  EXPECT_EQ(Monitors.retirementEvents(), 1u);

  // The deflated object locks thin again.
  Locks.lock(Obj, Me);
  EXPECT_FALSE(Locks.isInflated(Obj));
  Locks.unlock(Obj, Me);
  Registry.detach(Me);
  obs::setTracing(false);
}

//===- tests/verifier_test.cpp - Bytecode verifier tests ------------------===//

#include "vm/Assembler.h"
#include "vm/Disassembler.h"
#include "vm/NativeLibrary.h"
#include "vm/Verifier.h"
#include "vm/VM.h"
#include "workload/MicroBench.h"

#include <gtest/gtest.h>

using namespace thinlocks;
using namespace thinlocks::vm;

namespace {

class VerifierTest : public ::testing::Test {
protected:
  VM Vm;
  Klass *K = nullptr;

  void SetUp() override {
    K = &Vm.defineClass("V", {FieldInfo{"x", ValueKind::Int, 0}});
  }

  /// Defines and verifies a method; returns the error (if any).
  std::optional<VerifyError> check(std::vector<Instruction> Code,
                                   uint16_t NumArgs = 0,
                                   uint16_t NumLocals = 0) {
    Method &M = Vm.defineMethod(*K, "m", MethodTraits{}, NumArgs,
                                NumLocals, std::move(Code));
    return Verifier(Vm).verify(M);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Accepting valid code
//===----------------------------------------------------------------------===//

TEST_F(VerifierTest, AcceptsStraightLineArithmetic) {
  Assembler Asm;
  EXPECT_FALSE(check(Asm.iconst(1).iconst(2).iadd().iret().finish()));
}

TEST_F(VerifierTest, AcceptsLoops) {
  Assembler Asm;
  Asm.iconst(0).istore(1);
  Asm.countedLoop(2, 0, [](Assembler &A) { A.iinc(1, 1); });
  Asm.iload(1).iret();
  EXPECT_FALSE(check(Asm.finish(), 1, 3));
}

TEST_F(VerifierTest, AcceptsBalancedSynchronizedBlocks) {
  Assembler Asm;
  Asm.synchronizedOn(0, [](Assembler &A) {
    A.synchronizedOn(0, [](Assembler &B) { B.iinc(1, 1); });
  });
  Asm.ret();
  EXPECT_FALSE(check(Asm.finish(), 1, 2));
}

TEST_F(VerifierTest, AcceptsRefManipulation) {
  Assembler Asm;
  int32_t ClassIndex = static_cast<int32_t>(K->heapClass().Index);
  Asm.newObject(ClassIndex).astore(0);
  Asm.aload(0).iconst(5).putField(0);
  Asm.aload(0).getField(0).iret();
  EXPECT_FALSE(check(Asm.finish(), 0, 1));
}

TEST_F(VerifierTest, AcceptsAllMicroBenchPrograms) {
  VM Fresh;
  [[maybe_unused]] workload::MicroPrograms Programs =
      workload::buildMicroPrograms(Fresh);
  Verifier V(Fresh);
  auto Err = V.verifyAll();
  EXPECT_FALSE(Err) << (Err ? Err->Message : "");
}

TEST_F(VerifierTest, AcceptsLibraryAndNativeMethods) {
  VM Fresh;
  NativeLibrary Lib(Fresh);
  auto Err = Verifier(Fresh).verifyAll();
  EXPECT_FALSE(Err) << (Err ? Err->Message : "");
}

TEST_F(VerifierTest, AcceptsUnknownArgUsedAsInt) {
  // Arguments are statically untyped; int use is allowed and checked at
  // run time.
  Assembler Asm;
  EXPECT_FALSE(check(Asm.iload(0).iconst(1).iadd().iret().finish(), 1, 1));
}

//===----------------------------------------------------------------------===//
// Rejecting broken code
//===----------------------------------------------------------------------===//

TEST_F(VerifierTest, RejectsEmptyCode) {
  auto Err = check({});
  ASSERT_TRUE(Err);
  EXPECT_NE(Err->Message.find("no code"), std::string::npos);
}

TEST_F(VerifierTest, RejectsStackUnderflow) {
  Assembler Asm;
  auto Err = check(Asm.iadd().iret().finish());
  ASSERT_TRUE(Err);
  EXPECT_EQ(Err->Pc, 0u);
  EXPECT_NE(Err->Message.find("underflow"), std::string::npos);
}

TEST_F(VerifierTest, RejectsTypeConfusionIntAsRef) {
  Assembler Asm;
  auto Err = check(Asm.iconst(1).monitorEnter().ret().finish());
  ASSERT_TRUE(Err);
  EXPECT_NE(Err->Message.find("reference"), std::string::npos);
}

TEST_F(VerifierTest, RejectsTypeConfusionRefAsInt) {
  Assembler Asm;
  auto Err = check(Asm.aconstNull().iconst(1).iadd().iret().finish());
  ASSERT_TRUE(Err);
}

TEST_F(VerifierTest, RejectsLocalTypeConfusion) {
  Assembler Asm;
  Asm.iconst(1).istore(0); // local 0 = int
  Asm.aload(0).monitorEnter().ret();
  auto Err = check(Asm.finish(), 0, 1);
  ASSERT_TRUE(Err);
  EXPECT_NE(Err->Message.find("aload of an int-typed local"),
            std::string::npos);
}

TEST_F(VerifierTest, RejectsFallingOffTheEnd) {
  Assembler Asm;
  auto Err = check(Asm.nop().finish());
  ASSERT_TRUE(Err);
  EXPECT_NE(Err->Message.find("falls off"), std::string::npos);
}

TEST_F(VerifierTest, RejectsOutOfRangeLocal) {
  Assembler Asm;
  auto Err = check(Asm.iload(5).iret().finish(), 0, 2);
  ASSERT_TRUE(Err);
  EXPECT_NE(Err->Message.find("local"), std::string::npos);
}

TEST_F(VerifierTest, RejectsOutOfRangeBranch) {
  std::vector<Instruction> Code = {
      Instruction{Opcode::Goto, 99, 0},
  };
  auto Err = check(std::move(Code));
  ASSERT_TRUE(Err);
  EXPECT_NE(Err->Message.find("branch target"), std::string::npos);
}

TEST_F(VerifierTest, RejectsUnknownClass) {
  Assembler Asm;
  auto Err = check(Asm.newObject(999999).aret().finish());
  ASSERT_TRUE(Err);
  EXPECT_NE(Err->Message.find("class"), std::string::npos);
}

TEST_F(VerifierTest, RejectsUnknownMethod) {
  Assembler Asm;
  auto Err = check(Asm.invoke(424242).ret().finish());
  ASSERT_TRUE(Err);
  EXPECT_NE(Err->Message.find("method id"), std::string::npos);
}

TEST_F(VerifierTest, RejectsInconsistentStackAtMerge) {
  // One branch pushes an extra value before joining.
  Assembler Asm;
  auto Else = Asm.newLabel();
  auto Join = Asm.newLabel();
  Asm.iconst(1).ifeq(Else);
  Asm.iconst(10).jmp(Join); // depth 1 at join
  Asm.bind(Else);
  Asm.iconst(10).iconst(20).jmp(Join); // depth 2 at join
  Asm.bind(Join);
  Asm.iret();
  auto Err = check(Asm.finish());
  ASSERT_TRUE(Err);
  EXPECT_NE(Err->Message.find("stack depth"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Structured locking
//===----------------------------------------------------------------------===//

TEST_F(VerifierTest, RejectsMonitorexitWithoutEnter) {
  Assembler Asm;
  Asm.aload(0).monitorExit().ret();
  auto Err = check(Asm.finish(), 1, 1);
  ASSERT_TRUE(Err);
  EXPECT_NE(Err->Message.find("monitorexit"), std::string::npos);
}

TEST_F(VerifierTest, RejectsReturnWhileHoldingMonitor) {
  Assembler Asm;
  Asm.aload(0).monitorEnter().ret();
  auto Err = check(Asm.finish(), 1, 1);
  ASSERT_TRUE(Err);
  EXPECT_NE(Err->Message.find("still holding"), std::string::npos);
}

TEST_F(VerifierTest, RejectsUnstructuredLockingAcrossMerge) {
  // One path locks, the other does not, then they join.
  Assembler Asm;
  auto Skip = Asm.newLabel();
  auto Join = Asm.newLabel();
  Asm.iload(1).ifeq(Skip);
  Asm.aload(0).monitorEnter().jmp(Join);
  Asm.bind(Skip);
  Asm.nop().jmp(Join);
  Asm.bind(Join);
  Asm.ret();
  auto Err = check(Asm.finish(), 2, 2);
  ASSERT_TRUE(Err);
  EXPECT_NE(Err->Message.find("monitor nesting"), std::string::npos);
}

TEST_F(VerifierTest, RejectsMixedVoidAndValueReturnCallee) {
  // A callee that sometimes returns a value and sometimes does not makes
  // the caller's stack depth path-dependent.
  Assembler Bad;
  auto ValueCase = Bad.newLabel();
  Bad.iload(0).ifne(ValueCase);
  Bad.ret();
  Bad.bind(ValueCase);
  Bad.iconst(1).iret();
  Method &Callee = Vm.defineMethod(*K, "mixed", MethodTraits{}, 1, 1,
                                   Bad.finish());

  Assembler Caller;
  Caller.iconst(0).invoke(Callee.Id).ret();
  auto Err = check(Caller.finish());
  ASSERT_TRUE(Err);
  EXPECT_NE(Err->Message.find("mixes void and value"), std::string::npos);
}

TEST_F(VerifierTest, RejectsIntReceiverForSynchronizedCall) {
  MethodTraits Sync;
  Sync.IsSynchronized = true;
  Assembler Body;
  Body.iconst(0).iret();
  Method &Callee = Vm.defineMethod(*K, "syncM", Sync, 1, 1, Body.finish());

  Assembler Caller;
  Caller.iconst(7).invoke(Callee.Id).iret();
  auto Err = check(Caller.finish());
  ASSERT_TRUE(Err);
  EXPECT_NE(Err->Message.find("receiver"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Interpreter agreement: everything the verifier accepts must not trap
// with BadBytecode (on type-clean inputs), and what it rejects would.
//===----------------------------------------------------------------------===//

TEST_F(VerifierTest, AcceptedProgramRunsWithoutBadBytecode) {
  Assembler Asm;
  Asm.iconst(0).istore(1);
  Asm.countedLoop(2, 0, [](Assembler &A) { A.iinc(1, 2); });
  Asm.iload(1).iret();
  Method &M = Vm.defineMethod(*K, "run", MethodTraits{}, 1, 3,
                              Asm.finish());
  ASSERT_FALSE(Verifier(Vm).verify(M));
  ScopedThreadAttachment Main(Vm.threads());
  RunResult R =
      Vm.call(M, std::vector<Value>{Value::makeInt(6)}, Main.context());
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Result.asInt(), 12);
}

//===----------------------------------------------------------------------===//
// Disassembler
//===----------------------------------------------------------------------===//

TEST_F(VerifierTest, DisassemblerListsInstructions) {
  Assembler Asm;
  Asm.synchronizedOn(0, [](Assembler &A) { A.iinc(1, 1); });
  Asm.ret();
  Method &M = Vm.defineMethod(*K, "listing", MethodTraits{}, 1, 2,
                              Asm.finish());
  std::string Listing = disassemble(M, &Vm);
  EXPECT_NE(Listing.find("V.listing"), std::string::npos);
  EXPECT_NE(Listing.find("monitorenter"), std::string::npos);
  EXPECT_NE(Listing.find("monitorexit"), std::string::npos);
  EXPECT_NE(Listing.find("iinc 1, 1"), std::string::npos);
}

TEST_F(VerifierTest, DisassemblerAnnotatesInvokeTargets) {
  Assembler Body;
  Body.iconst(0).iret();
  Method &Callee = Vm.defineMethod(*K, "target", MethodTraits{}, 0, 0,
                                   Body.finish());
  Assembler Caller;
  Caller.invoke(Callee.Id).iret();
  Method &M = Vm.defineMethod(*K, "caller", MethodTraits{}, 0, 0,
                              Caller.finish());
  std::string Listing = disassemble(M, &Vm);
  EXPECT_NE(Listing.find("// V.target"), std::string::npos);
}

TEST_F(VerifierTest, DisassemblerHandlesNatives) {
  VM Fresh;
  NativeLibrary Lib(Fresh);
  std::string Listing = disassemble(Lib.vectorAddElement(), &Fresh);
  EXPECT_NE(Listing.find("native"), std::string::npos);
  EXPECT_NE(Listing.find("synchronized"), std::string::npos);
  EXPECT_NE(Listing.find("<native code>"), std::string::npos);
}

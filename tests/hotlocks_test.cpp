//===- tests/hotlocks_test.cpp - IBM112 baseline behaviour ----------------===//
//
// Pins down the modelled IBM 1.1.2 hot-lock behaviours: frequency-driven
// promotion, the displaced header word, the hard cap of 32 hot locks, and
// the fallback to the thrash-prone cache beyond the cap (the paper's
// "Achilles heel", §3.3).
//
//===----------------------------------------------------------------------===//

#include "baselines/HotLocks.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <vector>

using namespace thinlocks;

namespace {
class HotLocksTest : public ::testing::Test {
protected:
  Heap TheHeap;
  ThreadRegistry Registry;
  ThreadContext Main;
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    Main = Registry.attach("main");
    Class = &TheHeap.classes().registerClass("C", 0);
  }
  void TearDown() override { Registry.detach(Main); }

  void cycle(HotLocks &Locks, Object *Obj, int Times) {
    for (int I = 0; I < Times; ++I) {
      Locks.lock(Obj, Main);
      Locks.unlock(Obj, Main);
    }
  }
};
} // namespace

TEST_F(HotLocksTest, ColdObjectStaysInCache) {
  HotLocks Locks(32, /*PromotionThreshold=*/10, 64);
  Object *Obj = TheHeap.allocate(*Class);
  cycle(Locks, Obj, 2);
  EXPECT_FALSE(Locks.isHot(Obj));
  EXPECT_EQ(Locks.stats().Promotions, 0u);
  EXPECT_EQ(Locks.freeHotSlots(), 32u);
}

TEST_F(HotLocksTest, FrequentObjectGetsPromoted) {
  HotLocks Locks(32, /*PromotionThreshold=*/4, 64);
  Object *Obj = TheHeap.allocate(*Class);
  cycle(Locks, Obj, 5);
  EXPECT_TRUE(Locks.isHot(Obj));
  EXPECT_EQ(Locks.stats().Promotions, 1u);
  EXPECT_EQ(Locks.freeHotSlots(), 31u);
  // Still works as a lock after promotion.
  Locks.lock(Obj, Main);
  EXPECT_TRUE(Locks.holdsLock(Obj, Main));
  EXPECT_EQ(Locks.lockDepth(Obj, Main), 1u);
  Locks.unlock(Obj, Main);
}

TEST_F(HotLocksTest, PromotionDisplacesHeaderWord) {
  HotLocks Locks(32, 4, 64);
  Object *Obj = TheHeap.allocate(*Class);
  uint32_t Original = Obj->lockWord().load();
  cycle(Locks, Obj, 5);
  ASSERT_TRUE(Locks.isHot(Obj));
  // Bit 31 tags the word as a hot-lock id; the original word moved into
  // the hot-lock structure.
  EXPECT_NE(Obj->lockWord().load(), Original);
  EXPECT_NE(Obj->lockWord().load() & 0x80000000u, 0u);
  EXPECT_EQ(Locks.displacedHeader(Obj), Original);
}

TEST_F(HotLocksTest, HotPathSkipsTheCache) {
  HotLocks Locks(32, 4, 64);
  Object *Obj = TheHeap.allocate(*Class);
  cycle(Locks, Obj, 5);
  ASSERT_TRUE(Locks.isHot(Obj));
  uint64_t CacheOpsBefore = Locks.stats().CachePathOps;
  cycle(Locks, Obj, 100);
  EXPECT_EQ(Locks.stats().CachePathOps, CacheOpsBefore);
  EXPECT_GE(Locks.stats().HotPathOps, 200u);
}

TEST_F(HotLocksTest, OnlyNHotSlotsExist) {
  HotLocks Locks(/*NumHotLocks=*/4, /*PromotionThreshold=*/2, 64);
  auto Objects = std::vector<Object *>();
  for (int I = 0; I < 8; ++I)
    Objects.push_back(TheHeap.allocate(*Class));
  for (Object *Obj : Objects)
    cycle(Locks, Obj, 4);
  int Hot = 0;
  for (Object *Obj : Objects)
    Hot += Locks.isHot(Obj) ? 1 : 0;
  EXPECT_EQ(Hot, 4);
  EXPECT_EQ(Locks.freeHotSlots(), 0u);
  EXPECT_EQ(Locks.stats().Promotions, 4u);
  // The rest still lock correctly through the cache.
  for (Object *Obj : Objects) {
    Locks.lock(Obj, Main);
    EXPECT_TRUE(Locks.holdsLock(Obj, Main));
    Locks.unlock(Obj, Main);
  }
}

TEST_F(HotLocksTest, OverflowWorkingSetFallsBackToSweepingCache) {
  HotLocks Locks(/*NumHotLocks=*/4, /*PromotionThreshold=*/2,
                 /*PoolSize=*/8);
  std::vector<Object *> Objects;
  for (int I = 0; I < 64; ++I)
    Objects.push_back(TheHeap.allocate(*Class));
  // Make the first 4 objects hot, filling every slot.
  for (int I = 0; I < 4; ++I)
    cycle(Locks, Objects[I], 3);
  ASSERT_EQ(Locks.freeHotSlots(), 0u);
  // Now churn the full 64-object working set: 60 of them are stuck on
  // the 8-monitor cache, whose free list thrashes.
  for (int Round = 0; Round < 4; ++Round)
    for (Object *Obj : Objects)
      cycle(Locks, Obj, 1);
  HotLocksStats Stats = Locks.stats();
  EXPECT_EQ(Stats.Promotions, 4u);
  EXPECT_GT(Stats.Sweeps, 0u); // The >32 working set thrashes the cache.
  EXPECT_GT(Stats.CachePathOps, Stats.HotPathOps);
}

TEST_F(HotLocksTest, PromotionRequiresIdleMonitor) {
  HotLocks Locks(32, /*PromotionThreshold=*/2, 64);
  Object *Obj = TheHeap.allocate(*Class);
  // Drive the use count past the threshold while the monitor is HELD:
  // recursion keeps it owned, so promotion must not fire mid-recursion.
  Locks.lock(Obj, Main);
  for (int I = 0; I < 6; ++I) {
    Locks.lock(Obj, Main);
    Locks.unlock(Obj, Main);
  }
  EXPECT_FALSE(Locks.isHot(Obj));
  Locks.unlock(Obj, Main);
  // Once idle, the next acquisition promotes.
  cycle(Locks, Obj, 1);
  EXPECT_TRUE(Locks.isHot(Obj));
}

TEST_F(HotLocksTest, RecursionWorksOnHotLock) {
  HotLocks Locks(32, 2, 64);
  Object *Obj = TheHeap.allocate(*Class);
  cycle(Locks, Obj, 3);
  ASSERT_TRUE(Locks.isHot(Obj));
  for (uint32_t I = 1; I <= 10; ++I) {
    Locks.lock(Obj, Main);
    EXPECT_EQ(Locks.lockDepth(Obj, Main), I);
  }
  for (int I = 0; I < 10; ++I)
    Locks.unlock(Obj, Main);
  EXPECT_FALSE(Locks.holdsLock(Obj, Main));
}

TEST_F(HotLocksTest, WaitNotifyOnHotLock) {
  HotLocks Locks(32, 2, 64);
  Object *Obj = TheHeap.allocate(*Class);
  cycle(Locks, Obj, 3);
  ASSERT_TRUE(Locks.isHot(Obj));

  std::atomic<bool> Waiting{false};
  std::thread Waiter([&] {
    ScopedThreadAttachment Attachment(Registry);
    Locks.lock(Obj, Attachment.context());
    Waiting.store(true);
    EXPECT_EQ(Locks.wait(Obj, Attachment.context(), -1),
              WaitStatus::Notified);
    Locks.unlock(Obj, Attachment.context());
  });
  while (!Waiting.load())
    std::this_thread::yield();
  Locks.lock(Obj, Main);
  EXPECT_EQ(Locks.notify(Obj, Main), NotifyStatus::Ok);
  Locks.unlock(Obj, Main);
  Waiter.join();
}

TEST_F(HotLocksTest, HotnessIsPermanent) {
  HotLocks Locks(32, 2, 64);
  Object *Obj = TheHeap.allocate(*Class);
  cycle(Locks, Obj, 3);
  ASSERT_TRUE(Locks.isHot(Obj));
  // Long idle churn on other objects never demotes.
  for (int I = 0; I < 50; ++I) {
    Object *Other = TheHeap.allocate(*Class);
    Locks.lock(Other, Main);
    Locks.unlock(Other, Main);
  }
  EXPECT_TRUE(Locks.isHot(Obj));
}

//===- tests/thinlock_test.cpp - Thin lock protocol tests -----------------===//
//
// Exercises every transition of paper §2.3: fast-path locking, store-only
// unlocking, nested locking through count overflow, contention inflation,
// wait/notify inflation, and the permanence of inflation.  The core suite
// is typed over all four §3.5 policy variants (UP / MP / Dynamic /
// UnlkC&S) — the variants differ only in fences and unlock style, so the
// protocol semantics must be identical.
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace thinlocks;

namespace {

template <typename Policy> class ThinLockTypedTest : public ::testing::Test {
protected:
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockImpl<Policy> Locks{Monitors, &Stats};
  ThreadContext Main;
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    Main = Registry.attach("main");
    Class = &TheHeap.classes().registerClass("T", 1);
  }
  void TearDown() override { Registry.detach(Main); }

  Object *newObject() { return TheHeap.allocate(*Class); }
};

using Policies = ::testing::Types<UniprocessorPolicy, MultiprocessorPolicy,
                                  DynamicPolicy, CasUnlockPolicy>;
TYPED_TEST_SUITE(ThinLockTypedTest, Policies);

} // namespace

TYPED_TEST(ThinLockTypedTest, LockSetsThinWordUnlockClearsIt) {
  Object *Obj = this->newObject();
  uint32_t Before = Obj->lockWord().load();
  this->Locks.lock(Obj, this->Main);
  uint32_t Held = Obj->lockWord().load();
  EXPECT_TRUE(lockword::isThin(Held));
  EXPECT_EQ(lockword::threadIndexOf(Held), this->Main.index());
  EXPECT_EQ(lockword::countOf(Held), 0u); // count = holds - 1
  EXPECT_TRUE(this->Locks.holdsLock(Obj, this->Main));
  this->Locks.unlock(Obj, this->Main);
  EXPECT_EQ(Obj->lockWord().load(), Before);
  EXPECT_FALSE(this->Locks.holdsLock(Obj, this->Main));
}

TYPED_TEST(ThinLockTypedTest, HeaderBitsPreservedAcrossLocking) {
  Object *Obj = this->newObject();
  uint32_t Header = Obj->headerBits();
  this->Locks.lock(Obj, this->Main);
  EXPECT_EQ(lockword::headerBitsOf(Obj->lockWord().load()), Header);
  this->Locks.lock(Obj, this->Main);
  EXPECT_EQ(lockword::headerBitsOf(Obj->lockWord().load()), Header);
  this->Locks.unlock(Obj, this->Main);
  this->Locks.unlock(Obj, this->Main);
  EXPECT_EQ(lockword::headerBitsOf(Obj->lockWord().load()), Header);
}

TYPED_TEST(ThinLockTypedTest, NestedLockingBumpsCount) {
  Object *Obj = this->newObject();
  for (uint32_t Depth = 1; Depth <= 16; ++Depth) {
    this->Locks.lock(Obj, this->Main);
    EXPECT_EQ(this->Locks.lockDepth(Obj, this->Main), Depth);
    EXPECT_EQ(lockword::countOf(Obj->lockWord().load()), Depth - 1);
  }
  for (uint32_t Depth = 16; Depth >= 1; --Depth) {
    EXPECT_EQ(this->Locks.lockDepth(Obj, this->Main), Depth);
    this->Locks.unlock(Obj, this->Main);
  }
  EXPECT_EQ(this->Locks.lockDepth(Obj, this->Main), 0u);
  EXPECT_FALSE(this->Locks.isInflated(Obj));
}

TYPED_TEST(ThinLockTypedTest, StaysThinThrough256Holds) {
  Object *Obj = this->newObject();
  for (int I = 0; I < 256; ++I)
    this->Locks.lock(Obj, this->Main);
  EXPECT_FALSE(this->Locks.isInflated(Obj));
  EXPECT_EQ(lockword::countOf(Obj->lockWord().load()), 255u);
  EXPECT_EQ(this->Locks.lockDepth(Obj, this->Main), 256u);
  for (int I = 0; I < 256; ++I)
    this->Locks.unlock(Obj, this->Main);
  EXPECT_FALSE(this->Locks.holdsLock(Obj, this->Main));
}

TYPED_TEST(ThinLockTypedTest, The257thHoldInflates) {
  // Paper §2.3: "excessive as 257".
  Object *Obj = this->newObject();
  for (int I = 0; I < 257; ++I)
    this->Locks.lock(Obj, this->Main);
  EXPECT_TRUE(this->Locks.isInflated(Obj));
  EXPECT_EQ(this->Locks.lockDepth(Obj, this->Main), 257u);
  FatLock *Fat = this->Locks.monitorOf(Obj);
  ASSERT_NE(Fat, nullptr);
  EXPECT_EQ(Fat->holdCount(), 257u);
  for (int I = 0; I < 257; ++I)
    this->Locks.unlock(Obj, this->Main);
  EXPECT_FALSE(this->Locks.holdsLock(Obj, this->Main));
  // Once inflated, stays inflated.
  EXPECT_TRUE(this->Locks.isInflated(Obj));
}

TYPED_TEST(ThinLockTypedTest, TryLockNests256ThenInflatesOn257th) {
  // Regression: tryLock used to refuse the owner's 257th recursive
  // acquisition (the count field saturated at 255 = 256 holds) instead
  // of inflating the way lock() does at the same boundary — recursion
  // depth 257 made tryLock spuriously fail for its own owner.
  Object *Obj = this->newObject();
  for (int I = 0; I < 256; ++I)
    ASSERT_TRUE(this->Locks.tryLock(Obj, this->Main));
  EXPECT_FALSE(this->Locks.isInflated(Obj));
  EXPECT_EQ(lockword::countOf(Obj->lockWord().load()), 255u);
  uint64_t OverflowBefore = this->Stats.overflowInflations();
  EXPECT_TRUE(this->Locks.tryLock(Obj, this->Main));
  EXPECT_TRUE(this->Locks.isInflated(Obj));
  EXPECT_EQ(this->Locks.lockDepth(Obj, this->Main), 257u);
  FatLock *Fat = this->Locks.monitorOf(Obj);
  ASSERT_NE(Fat, nullptr);
  EXPECT_EQ(Fat->holdCount(), 257u);
  EXPECT_EQ(this->Stats.overflowInflations(), OverflowBefore + 1);
  for (int I = 0; I < 257; ++I)
    this->Locks.unlock(Obj, this->Main);
  EXPECT_FALSE(this->Locks.holdsLock(Obj, this->Main));
}

TYPED_TEST(ThinLockTypedTest, InflationPreservesHeaderBits) {
  Object *Obj = this->newObject();
  uint32_t Header = Obj->headerBits();
  for (int I = 0; I < 257; ++I)
    this->Locks.lock(Obj, this->Main);
  EXPECT_TRUE(this->Locks.isInflated(Obj));
  EXPECT_EQ(lockword::headerBitsOf(Obj->lockWord().load()), Header);
  for (int I = 0; I < 257; ++I)
    this->Locks.unlock(Obj, this->Main);
}

TYPED_TEST(ThinLockTypedTest, ContentionInflatesAndExcludes) {
  Object *Obj = this->newObject();
  this->Locks.lock(Obj, this->Main);

  std::atomic<bool> OtherAcquired{false};
  std::atomic<bool> OtherAttempting{false};
  std::thread Other([&] {
    ScopedThreadAttachment Attachment(this->Registry, "other");
    OtherAttempting.store(true);
    this->Locks.lock(Obj, Attachment.context());
    OtherAcquired.store(true);
    EXPECT_TRUE(this->Locks.holdsLock(Obj, Attachment.context()));
    this->Locks.unlock(Obj, Attachment.context());
  });

  // The contender spins; it cannot acquire while we hold the lock.
  while (!OtherAttempting.load())
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(OtherAcquired.load());
  EXPECT_TRUE(this->Locks.holdsLock(Obj, this->Main));

  this->Locks.unlock(Obj, this->Main);
  Other.join();
  EXPECT_TRUE(OtherAcquired.load());
  // §2.3.4: the contender inflated the lock after acquiring it.
  EXPECT_TRUE(this->Locks.isInflated(Obj));
  EXPECT_FALSE(this->Locks.holdsLock(Obj, this->Main));
}

TYPED_TEST(ThinLockTypedTest, FatPathLockingStillRecursive) {
  Object *Obj = this->newObject();
  for (int I = 0; I < 257; ++I) // Force inflation.
    this->Locks.lock(Obj, this->Main);
  for (int I = 0; I < 257; ++I)
    this->Locks.unlock(Obj, this->Main);

  // Locking through the fat word.
  this->Locks.lock(Obj, this->Main);
  this->Locks.lock(Obj, this->Main);
  EXPECT_EQ(this->Locks.lockDepth(Obj, this->Main), 2u);
  this->Locks.unlock(Obj, this->Main);
  this->Locks.unlock(Obj, this->Main);
  EXPECT_FALSE(this->Locks.holdsLock(Obj, this->Main));
}

TYPED_TEST(ThinLockTypedTest, UnlockCheckedRejectsNonOwnerAndUnlocked) {
  Object *Obj = this->newObject();
  EXPECT_FALSE(this->Locks.unlockChecked(Obj, this->Main));
  this->Locks.lock(Obj, this->Main);
  std::thread Other([&] {
    ScopedThreadAttachment Attachment(this->Registry);
    EXPECT_FALSE(this->Locks.unlockChecked(Obj, Attachment.context()));
  });
  Other.join();
  EXPECT_TRUE(this->Locks.unlockChecked(Obj, this->Main));
}

TYPED_TEST(ThinLockTypedTest, TryLockBehaviour) {
  Object *Obj = this->newObject();
  EXPECT_TRUE(this->Locks.tryLock(Obj, this->Main));
  EXPECT_TRUE(this->Locks.tryLock(Obj, this->Main)); // Nested.
  EXPECT_EQ(this->Locks.lockDepth(Obj, this->Main), 2u);

  std::thread Other([&] {
    ScopedThreadAttachment Attachment(this->Registry);
    EXPECT_FALSE(this->Locks.tryLock(Obj, Attachment.context()));
  });
  Other.join();
  // A failed tryLock must NOT inflate (no spinning happened).
  EXPECT_FALSE(this->Locks.isInflated(Obj));
  this->Locks.unlock(Obj, this->Main);
  this->Locks.unlock(Obj, this->Main);
}

TYPED_TEST(ThinLockTypedTest, WaitInflatesAndNotifyWakes) {
  Object *Obj = this->newObject();
  std::atomic<bool> Waiting{false};

  std::thread Waiter([&] {
    ScopedThreadAttachment Attachment(this->Registry, "waiter");
    this->Locks.lock(Obj, Attachment.context());
    Waiting.store(true);
    WaitStatus Status = this->Locks.wait(Obj, Attachment.context(), -1);
    EXPECT_EQ(Status, WaitStatus::Notified);
    EXPECT_TRUE(this->Locks.holdsLock(Obj, Attachment.context()));
    this->Locks.unlock(Obj, Attachment.context());
  });

  while (!Waiting.load())
    std::this_thread::yield();
  // Wait forces inflation (only fat locks have wait queues).
  while (!this->Locks.isInflated(Obj))
    std::this_thread::yield();
  FatLock *Fat = this->Locks.monitorOf(Obj);
  ASSERT_NE(Fat, nullptr);
  while (Fat->waitSetSize() == 0)
    std::this_thread::yield();

  this->Locks.lock(Obj, this->Main);
  EXPECT_EQ(this->Locks.notify(Obj, this->Main), NotifyStatus::Ok);
  this->Locks.unlock(Obj, this->Main);
  Waiter.join();
}

TYPED_TEST(ThinLockTypedTest, WaitRestoresNestingDepth) {
  Object *Obj = this->newObject();
  std::atomic<bool> Waiting{false};
  std::thread Waiter([&] {
    ScopedThreadAttachment Attachment(this->Registry);
    this->Locks.lock(Obj, Attachment.context());
    this->Locks.lock(Obj, Attachment.context());
    this->Locks.lock(Obj, Attachment.context());
    Waiting.store(true);
    EXPECT_EQ(this->Locks.wait(Obj, Attachment.context(), -1),
              WaitStatus::Notified);
    EXPECT_EQ(this->Locks.lockDepth(Obj, Attachment.context()), 3u);
    for (int I = 0; I < 3; ++I)
      this->Locks.unlock(Obj, Attachment.context());
  });
  while (!Waiting.load() || !this->Locks.isInflated(Obj))
    std::this_thread::yield();
  while (this->Locks.monitorOf(Obj)->waitSetSize() == 0)
    std::this_thread::yield();
  this->Locks.lock(Obj, this->Main);
  this->Locks.notifyAll(Obj, this->Main);
  this->Locks.unlock(Obj, this->Main);
  Waiter.join();
}

TYPED_TEST(ThinLockTypedTest, TimedWaitTimesOut) {
  Object *Obj = this->newObject();
  this->Locks.lock(Obj, this->Main);
  WaitStatus Status =
      this->Locks.wait(Obj, this->Main, /*TimeoutNanos=*/5'000'000);
  EXPECT_EQ(Status, WaitStatus::TimedOut);
  EXPECT_TRUE(this->Locks.holdsLock(Obj, this->Main));
  EXPECT_TRUE(this->Locks.isInflated(Obj));
  this->Locks.unlock(Obj, this->Main);
}

TYPED_TEST(ThinLockTypedTest, WaitNotifyRequireOwnership) {
  Object *Obj = this->newObject();
  EXPECT_EQ(this->Locks.wait(Obj, this->Main, 0), WaitStatus::NotOwner);
  EXPECT_EQ(this->Locks.notify(Obj, this->Main), NotifyStatus::NotOwner);
  EXPECT_EQ(this->Locks.notifyAll(Obj, this->Main),
            NotifyStatus::NotOwner);
  // Not even inflated by the failed attempts.
  EXPECT_FALSE(this->Locks.isInflated(Obj));
}

TYPED_TEST(ThinLockTypedTest, NotifyOnOwnedThinLockIsLegalNoOp) {
  Object *Obj = this->newObject();
  this->Locks.lock(Obj, this->Main);
  EXPECT_EQ(this->Locks.notify(Obj, this->Main), NotifyStatus::Ok);
  EXPECT_EQ(this->Locks.notifyAll(Obj, this->Main), NotifyStatus::Ok);
  EXPECT_FALSE(this->Locks.isInflated(Obj)); // Still thin: no waiters possible.
  this->Locks.unlock(Obj, this->Main);
}

TYPED_TEST(ThinLockTypedTest, ManyObjectsIndependentLocks) {
  std::vector<Object *> Objects;
  for (int I = 0; I < 200; ++I)
    Objects.push_back(this->newObject());
  for (Object *Obj : Objects)
    this->Locks.lock(Obj, this->Main);
  for (Object *Obj : Objects) {
    EXPECT_TRUE(this->Locks.holdsLock(Obj, this->Main));
    EXPECT_FALSE(this->Locks.isInflated(Obj));
  }
  for (Object *Obj : Objects)
    this->Locks.unlock(Obj, this->Main);
  for (Object *Obj : Objects)
    EXPECT_FALSE(this->Locks.holdsLock(Obj, this->Main));
}

//===----------------------------------------------------------------------===//
// Stats (Dynamic policy only; stats behaviour is policy-independent).
//===----------------------------------------------------------------------===//

namespace {
class ThinLockStatsTest : public ::testing::Test {
protected:
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockManager Locks{Monitors, &Stats};
  ThreadContext Main;
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    Main = Registry.attach("main");
    Class = &TheHeap.classes().registerClass("S", 0);
  }
  void TearDown() override { Registry.detach(Main); }
};
} // namespace

TEST_F(ThinLockStatsTest, CountsFastPathAndDepthBuckets) {
  Object *A = TheHeap.allocate(*Class);
  Object *B = TheHeap.allocate(*Class);
  Locks.lock(A, Main);   // depth 1 (fast path)
  Locks.lock(A, Main);   // depth 2
  Locks.lock(A, Main);   // depth 3
  Locks.lock(A, Main);   // depth 4
  Locks.lock(A, Main);   // depth 5 -> bucket "fourth+"
  Locks.lock(B, Main);   // depth 1 (fast path)
  for (int I = 0; I < 5; ++I)
    Locks.unlock(A, Main);
  Locks.unlock(B, Main);

  EXPECT_EQ(Stats.totalAcquisitions(), 6u);
  EXPECT_EQ(Stats.totalReleases(), 6u);
  EXPECT_EQ(Stats.fastPathAcquisitions(), 2u);
  EXPECT_EQ(Stats.depthBucket(0), 2u);
  EXPECT_EQ(Stats.depthBucket(1), 1u);
  EXPECT_EQ(Stats.depthBucket(2), 1u);
  EXPECT_EQ(Stats.depthBucket(3), 2u);
  EXPECT_DOUBLE_EQ(Stats.depthFraction(0), 2.0 / 6.0);
}

TEST_F(ThinLockStatsTest, CountsOverflowInflation) {
  Object *Obj = TheHeap.allocate(*Class);
  for (int I = 0; I < 257; ++I)
    Locks.lock(Obj, Main);
  EXPECT_EQ(Stats.overflowInflations(), 1u);
  EXPECT_EQ(Stats.inflations(), 1u);
  for (int I = 0; I < 257; ++I)
    Locks.unlock(Obj, Main);
}

TEST_F(ThinLockStatsTest, CountsWaitInflation) {
  Object *Obj = TheHeap.allocate(*Class);
  Locks.lock(Obj, Main);
  Locks.wait(Obj, Main, /*TimeoutNanos=*/1'000'000);
  Locks.unlock(Obj, Main);
  EXPECT_EQ(Stats.waitInflations(), 1u);
}

TEST_F(ThinLockStatsTest, CountsContentionInflation) {
  Object *Obj = TheHeap.allocate(*Class);
  Locks.lock(Obj, Main);
  std::atomic<bool> Attempting{false};
  std::thread Other([&] {
    ScopedThreadAttachment Attachment(Registry);
    Attempting.store(true);
    Locks.lock(Obj, Attachment.context());
    Locks.unlock(Obj, Attachment.context());
  });
  while (!Attempting.load())
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Locks.unlock(Obj, Main);
  Other.join();
  EXPECT_EQ(Stats.contentionInflations(), 1u);
}

TEST_F(ThinLockStatsTest, SummaryMentionsKeyCounters) {
  Object *Obj = TheHeap.allocate(*Class);
  Locks.lock(Obj, Main);
  Locks.unlock(Obj, Main);
  std::string Summary = Stats.summary();
  EXPECT_NE(Summary.find("locks=1"), std::string::npos);
  EXPECT_NE(Summary.find("unlocks=1"), std::string::npos);
  EXPECT_NE(Summary.find("first=100.0%"), std::string::npos);
}

TEST_F(ThinLockStatsTest, SnapshotIsCoherentWithAccessors) {
  Object *A = TheHeap.allocate(*Class);
  Locks.lock(A, Main);   // depth 1 (fast path)
  Locks.lock(A, Main);   // depth 2
  Locks.unlock(A, Main);
  Locks.unlock(A, Main);

  LockStats::Snapshot S = Stats.snapshot();
  EXPECT_EQ(S.Acquisitions, Stats.totalAcquisitions());
  EXPECT_EQ(S.Releases, Stats.totalReleases());
  EXPECT_EQ(S.FastPath, Stats.fastPathAcquisitions());
  EXPECT_EQ(S.FatPath, Stats.fatPathAcquisitions());
  EXPECT_EQ(S.DepthBuckets[0], Stats.depthBucket(0));
  EXPECT_EQ(S.DepthBuckets[1], Stats.depthBucket(1));
  EXPECT_EQ(S.inflations(), Stats.inflations());
  EXPECT_DOUBLE_EQ(S.depthFraction(0), 0.5);
  EXPECT_DOUBLE_EQ(S.depthFraction(1), 0.5);
  // Acquisitions is derived from the buckets: every acquire lands in
  // exactly one bucket, so the sum is the total.
  uint64_t BucketSum = 0;
  for (unsigned B = 0; B < LockStats::NumDepthBuckets; ++B)
    BucketSum += S.DepthBuckets[B];
  EXPECT_EQ(S.Acquisitions, BucketSum);
}

TEST_F(ThinLockStatsTest, NullStatsDisablesRecording) {
  ThinLockManager Bare(Monitors, nullptr);
  Object *Obj = TheHeap.allocate(*Class);
  Bare.lock(Obj, Main);
  Bare.unlock(Obj, Main);
  EXPECT_EQ(Stats.totalAcquisitions(), 0u);
}

//===- tests/eagermonitor_test.cpp - Monitor-per-object baseline ----------===//
//
// EagerMonitor-specific behaviour (the shared semantics are covered by
// the cross-protocol conformance suite): unbounded space growth, which is
// exactly why the paper rejects the design (§1).
//
//===----------------------------------------------------------------------===//

#include "baselines/EagerMonitor.h"
#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace thinlocks;

namespace {
class EagerMonitorTest : public ::testing::Test {
protected:
  Heap TheHeap;
  ThreadRegistry Registry;
  EagerMonitor Locks;
  ThreadContext Main;
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    Main = Registry.attach("main");
    Class = &TheHeap.classes().registerClass("E", 0);
  }
  void TearDown() override { Registry.detach(Main); }
};
} // namespace

TEST_F(EagerMonitorTest, OneMonitorPerSynchronizedObjectForever) {
  EXPECT_EQ(Locks.monitorCount(), 0u);
  std::vector<Object *> Objects;
  for (int I = 0; I < 100; ++I) {
    Objects.push_back(TheHeap.allocate(*Class));
    Locks.lock(Objects.back(), Main);
    Locks.unlock(Objects.back(), Main);
  }
  // One monitor each, and none are ever reclaimed.
  EXPECT_EQ(Locks.monitorCount(), 100u);
  for (Object *Obj : Objects) {
    Locks.lock(Obj, Main);
    Locks.unlock(Obj, Main);
  }
  EXPECT_EQ(Locks.monitorCount(), 100u);
  EXPECT_GE(Locks.approximateMonitorBytes(), 100 * sizeof(FatLock));
}

TEST_F(EagerMonitorTest, QueriesDoNotCreateMonitors) {
  Object *Obj = TheHeap.allocate(*Class);
  EXPECT_FALSE(Locks.holdsLock(Obj, Main));
  EXPECT_EQ(Locks.lockDepth(Obj, Main), 0u);
  EXPECT_FALSE(Locks.unlockChecked(Obj, Main));
  EXPECT_EQ(Locks.wait(Obj, Main, 0), WaitStatus::NotOwner);
  EXPECT_EQ(Locks.notify(Obj, Main), NotifyStatus::NotOwner);
  EXPECT_EQ(Locks.monitorCount(), 0u);
}

TEST_F(EagerMonitorTest, NeverTouchesObjectHeaders) {
  Object *Obj = TheHeap.allocate(*Class);
  uint32_t Before = Obj->lockWord().load();
  Locks.lock(Obj, Main);
  Locks.lock(Obj, Main);
  EXPECT_EQ(Obj->lockWord().load(), Before);
  Locks.unlock(Obj, Main);
  Locks.unlock(Obj, Main);
  EXPECT_EQ(Obj->lockWord().load(), Before);
}

TEST_F(EagerMonitorTest, ShardsHandleConcurrentFirstUse) {
  constexpr int NumThreads = 4;
  constexpr int ObjectsPerThread = 500;
  std::vector<std::vector<Object *>> PerThread(NumThreads);
  for (int T = 0; T < NumThreads; ++T)
    for (int I = 0; I < ObjectsPerThread; ++I)
      PerThread[T].push_back(TheHeap.allocate(*Class));

  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&, T] {
      ScopedThreadAttachment Attachment(Registry);
      for (Object *Obj : PerThread[T]) {
        Locks.lock(Obj, Attachment.context());
        Locks.unlock(Obj, Attachment.context());
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Locks.monitorCount(),
            static_cast<uint64_t>(NumThreads) * ObjectsPerThread);
}

TEST_F(EagerMonitorTest, ThinLocksUseNoSpaceUntilInflationByContrast) {
  // The §1 comparison this baseline exists for.
  MonitorTable Monitors;
  ThinLockManager Thin(Monitors);
  for (int I = 0; I < 100; ++I) {
    Object *Obj = TheHeap.allocate(*Class);
    Thin.lock(Obj, Main);
    Thin.unlock(Obj, Main);
    Locks.lock(Obj, Main);
    Locks.unlock(Obj, Main);
  }
  EXPECT_EQ(Monitors.liveMonitorCount(), 0u); // Thin: zero monitors.
  EXPECT_EQ(Locks.monitorCount(), 100u);      // Eager: one per object.
}

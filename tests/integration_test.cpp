//===- tests/integration_test.cpp - Whole-stack integration ---------------===//
//
// End-to-end scenarios crossing every layer: expression compiler ->
// verifier -> interpreter -> synchronized library classes -> lock-trace
// recording -> characterization -> cross-protocol replay -> statistics.
//
//===----------------------------------------------------------------------===//

#include "baselines/HotLocks.h"
#include "baselines/MonitorCache.h"
#include "core/ThinLock.h"
#include "vm/Disassembler.h"
#include "vm/ExprCompiler.h"
#include "vm/NativeLibrary.h"
#include "vm/Verifier.h"
#include "vm/VM.h"
#include "workload/MacroReplay.h"
#include "workload/MicroBench.h"
#include "workload/Profiles.h"
#include "workload/Trace.h"

#include <gtest/gtest.h>

using namespace thinlocks;
using namespace thinlocks::vm;
using namespace thinlocks::workload;

TEST(Integration, CompiledExpressionsDriveSynchronizedLibraryWork) {
  // Compile f(i) = i * i - i, fill a synchronized Vector with f(0..N),
  // then verify sums via synchronized elementAt — all interpreted, all
  // through the thin-lock protocol, fully traced.
  VM::Config Cfg;
  Cfg.CollectLockStats = true;
  VM Vm(Cfg);
  NativeLibrary Lib(Vm);
  Klass &K = Vm.defineClass("it/App", {});
  ExprCompiler Compiler(Vm, K);

  LockTrace Trace;
  TracingBackend Tracer(Vm.sync(), Trace);
  Vm.overrideSync(&Tracer);

  ExprCompiler::Result F = Compiler.compile("i * i - i", {"i"});
  ASSERT_TRUE(F.ok());
  ASSERT_FALSE(Verifier(Vm).verifyAll());

  ScopedThreadAttachment Main(Vm.threads(), "main");
  Object *Vec = Vm.newInstance(Lib.vectorClass());

  constexpr int N = 50;
  long long Expected = 0;
  for (int I = 0; I < N; ++I) {
    RunResult FR = Vm.call(
        *F.M, std::vector<Value>{Value::makeInt(I)}, Main.context());
    ASSERT_TRUE(FR.ok());
    Expected += FR.Result.asInt();
    RunResult Add =
        Vm.call(Lib.vectorAddElement(),
                std::vector<Value>{Value::makeRef(Vec), FR.Result},
                Main.context());
    ASSERT_TRUE(Add.ok());
  }

  long long Sum = 0;
  for (int I = 0; I < N; ++I) {
    RunResult At = Vm.call(
        Lib.vectorElementAt(),
        std::vector<Value>{Value::makeRef(Vec), Value::makeInt(I)},
        Main.context());
    ASSERT_TRUE(At.ok());
    Sum += At.Result.asInt();
  }
  EXPECT_EQ(Sum, Expected);
  Vm.overrideSync(nullptr);

  // The trace saw one synchronized call per library op, depth 1, on one
  // object, uncontended.
  EXPECT_EQ(Trace.lockOperationCount(), static_cast<uint64_t>(2 * N));
  EXPECT_EQ(Trace.objectCount(), 1u);
  double Mix[4];
  Trace.depthMix(Mix);
  EXPECT_DOUBLE_EQ(Mix[0], 1.0);

  // Stats agree with the trace, and nothing ever inflated.
  EXPECT_EQ(Vm.lockStats()->totalAcquisitions(),
            Trace.lockOperationCount());
  EXPECT_EQ(Vm.lockStats()->inflations(), 0u);

  // The recorded trace replays cleanly on both baselines.
  {
    Heap FreshHeap;
    ThreadRegistry Registry;
    ScopedThreadAttachment Replayer(Registry);
    MonitorCache Cache(16);
    EXPECT_EQ(replayTrace(Trace, Cache, FreshHeap, Replayer.context())
                  .SkippedEvents,
              0u);
    HotLocks Hot(32, 4, 16);
    EXPECT_EQ(replayTrace(Trace, Hot, FreshHeap, Replayer.context())
                  .SkippedEvents,
              0u);
  }
}

TEST(Integration, ProfileReplayCharacterizationMatchesTraceAnalysis) {
  // Replay a profile through a *traced* thin-lock protocol and check
  // that the trace-side characterization agrees with the replay's own
  // depth accounting.
  const BenchmarkProfile *Profile = findProfile("javac");
  ASSERT_NE(Profile, nullptr);

  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockManager Locks(Monitors);
  std::unique_ptr<SyncBackend> Base = makeSyncBackend(Locks);
  LockTrace Trace;
  TracingBackend Tracer(*Base, Trace);
  ScopedThreadAttachment Main(Registry);

  // The replay engine is templated over the protocol concept; the
  // tracing backend is not a SyncProtocol, so trace via a thin adapter.
  struct TracedProtocol {
    TracingBackend &T;
    static const char *protocolName() { return "traced"; }
    void lock(Object *O, const ThreadContext &C) { T.lock(O, C); }
    void unlock(Object *O, const ThreadContext &C) { T.unlock(O, C); }
    bool unlockChecked(Object *O, const ThreadContext &C) {
      return T.unlockChecked(O, C);
    }
    bool tryLock(Object *O, const ThreadContext &C) {
      return T.tryLock(O, C);
    }
    TimedLockStatus tryLockFor(Object *O, const ThreadContext &C,
                               int64_t N) {
      return T.tryLockFor(O, C, N);
    }
    bool holdsLock(Object *O, const ThreadContext &C) const {
      return T.holdsLock(O, C);
    }
    uint32_t lockDepth(Object *O, const ThreadContext &C) const {
      return T.lockDepth(O, C);
    }
    WaitStatus wait(Object *O, const ThreadContext &C, int64_t N) {
      return T.wait(O, C, N);
    }
    NotifyStatus notify(Object *O, const ThreadContext &C) {
      return T.notify(O, C);
    }
    NotifyStatus notifyAll(Object *O, const ThreadContext &C) {
      return T.notifyAll(O, C);
    }
  };
  static_assert(SyncProtocol<TracedProtocol>);
  TracedProtocol Traced{Tracer};

  ReplayConfig Cfg;
  Cfg.ScaleDivisor = 2048;
  Cfg.MinSyncOps = 4000;
  Cfg.MaxSyncOps = 4000;
  Cfg.WorkPerSync = 0;
  ReplayResult Result =
      replayProfile(*Profile, Traced, TheHeap, Main.context(), Cfg);

  EXPECT_EQ(Trace.lockOperationCount(), Result.SyncOperations);
  double Mix[4];
  Trace.depthMix(Mix);
  for (int B = 0; B < 4; ++B)
    EXPECT_NEAR(Mix[B], Result.depthFraction(B), 1e-9) << "bucket " << B;
  // And the mix tracks the profile's Figure 3 row.
  EXPECT_NEAR(Mix[0], Profile->DepthMix[0], 0.05);
}

TEST(Integration, DeflatingVmRunsTheFullMicroSuite) {
  VM::Config Cfg;
  Cfg.ThinLockDeflation = true;
  Cfg.CollectLockStats = true;
  VM Vm(Cfg);
  MicroPrograms Programs = buildMicroPrograms(Vm);
  Object *Target = Vm.newInstance(*Programs.BenchKlass);

  // Contended phase inflates; the final release deflates.
  runVmThreadsBenchmark(Vm, Programs, 3, 400, Target);
  ScopedThreadAttachment Main(Vm.threads(), "main");
  // Solo phase afterwards: runs (possibly thin again), state consistent.
  runMicroProgram(Vm, *Programs.Sync, 500, Target, Main.context());
  runMicroProgram(Vm, *Programs.NestedSync, 500, Target, Main.context());
  EXPECT_FALSE(Vm.sync().holdsLock(Target, Main.context()));
  EXPECT_EQ(Vm.lockStats()->totalAcquisitions(),
            Vm.lockStats()->totalReleases());
}

TEST(Integration, DisassembledListingsCoverEveryDefinedMethod) {
  VM Vm;
  NativeLibrary Lib(Vm);
  MicroPrograms Programs = buildMicroPrograms(Vm);
  (void)Programs;
  for (uint32_t Id = 0;; ++Id) {
    const Method *M = Vm.methodById(Id);
    if (!M)
      break;
    std::string Listing = disassemble(*M, &Vm);
    EXPECT_NE(Listing.find(M->Name), std::string::npos);
    EXPECT_FALSE(Listing.empty());
  }
}

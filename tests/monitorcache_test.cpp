//===- tests/monitorcache_test.cpp - JDK111 baseline behaviour ------------===//
//
// Beyond the shared conformance suite, these tests pin down the
// *modelled* behaviours of the Sun JDK 1.1.1 monitor cache that the paper
// exploits in its comparison: bounded pool, lazy reclamation sweeps, and
// free-list thrash when the locked working set exceeds the pool.
//
//===----------------------------------------------------------------------===//

#include "baselines/MonitorCache.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <vector>

using namespace thinlocks;

namespace {
class MonitorCacheTest : public ::testing::Test {
protected:
  Heap TheHeap;
  ThreadRegistry Registry;
  ThreadContext Main;
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    Main = Registry.attach("main");
    Class = &TheHeap.classes().registerClass("C", 0);
  }
  void TearDown() override { Registry.detach(Main); }

  std::vector<Object *> newObjects(int Count) {
    std::vector<Object *> Objects;
    for (int I = 0; I < Count; ++I)
      Objects.push_back(TheHeap.allocate(*Class));
    return Objects;
  }
};
} // namespace

TEST_F(MonitorCacheTest, LockNeverTouchesTheObjectHeader) {
  // The whole point of the external-monitor design: no header bits.
  MonitorCache Cache(16);
  Object *Obj = TheHeap.allocate(*Class);
  uint32_t Before = Obj->lockWord().load();
  Cache.lock(Obj, Main);
  EXPECT_EQ(Obj->lockWord().load(), Before);
  Cache.unlock(Obj, Main);
  EXPECT_EQ(Obj->lockWord().load(), Before);
}

TEST_F(MonitorCacheTest, MappingPersistsAfterUnlock) {
  MonitorCache Cache(16);
  Object *Obj = TheHeap.allocate(*Class);
  Cache.lock(Obj, Main);
  Cache.unlock(Obj, Main);
  // Monitors are reclaimed lazily (by sweeps), not eagerly.
  EXPECT_EQ(Cache.mappedMonitorCount(), 1u);
  MonitorCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Hits, 1u); // The unlock lookup hits.
}

TEST_F(MonitorCacheTest, WorkingSetWithinPoolNeverSweeps) {
  MonitorCache Cache(/*PoolSize=*/32);
  auto Objects = newObjects(16);
  for (int Round = 0; Round < 10; ++Round)
    for (Object *Obj : Objects) {
      Cache.lock(Obj, Main);
      Cache.unlock(Obj, Main);
    }
  EXPECT_EQ(Cache.stats().Sweeps, 0u);
  EXPECT_EQ(Cache.stats().PoolGrowths, 0u);
}

TEST_F(MonitorCacheTest, WorkingSetBeyondPoolThrashes) {
  MonitorCache Cache(/*PoolSize=*/8);
  auto Objects = newObjects(64);
  for (int Round = 0; Round < 4; ++Round)
    for (Object *Obj : Objects) {
      Cache.lock(Obj, Main);
      Cache.unlock(Obj, Main);
    }
  MonitorCacheStats Stats = Cache.stats();
  // 64 objects through an 8-monitor pool: sweeps on nearly every miss
  // after warmup — the Figure 4 MultiSync degradation mechanism.
  EXPECT_GE(Stats.Sweeps, 20u);
  EXPECT_GT(Stats.SweepScannedEntries, Stats.Sweeps);
  EXPECT_EQ(Stats.PoolGrowths, 0u); // Unlocked monitors were reclaimable.
}

TEST_F(MonitorCacheTest, PoolGrowsWhenAllMonitorsAreHeld) {
  MonitorCache Cache(/*PoolSize=*/4);
  auto Objects = newObjects(6);
  for (Object *Obj : Objects)
    Cache.lock(Obj, Main); // Hold all 6 simultaneously.
  EXPECT_EQ(Cache.stats().PoolGrowths, 2u);
  for (Object *Obj : Objects)
    Cache.unlock(Obj, Main);
}

TEST_F(MonitorCacheTest, SweepDoesNotReclaimHeldMonitors) {
  MonitorCache Cache(/*PoolSize=*/4);
  auto Objects = newObjects(4);
  // Hold one monitor; cycle many other objects to force sweeps.
  Cache.lock(Objects[0], Main);
  auto Churn = newObjects(32);
  for (Object *Obj : Churn) {
    Cache.lock(Obj, Main);
    Cache.unlock(Obj, Main);
  }
  // The held object's monitor must have survived every sweep.
  EXPECT_TRUE(Cache.holdsLock(Objects[0], Main));
  EXPECT_EQ(Cache.lockDepth(Objects[0], Main), 1u);
  Cache.unlock(Objects[0], Main);
}

TEST_F(MonitorCacheTest, ReclaimedMonitorIsReusedForNewObject) {
  MonitorCache Cache(/*PoolSize=*/1);
  Object *A = TheHeap.allocate(*Class);
  Object *B = TheHeap.allocate(*Class);
  Cache.lock(A, Main);
  Cache.unlock(A, Main);
  Cache.lock(B, Main); // Forces a sweep that reclaims A's monitor.
  Cache.unlock(B, Main);
  EXPECT_GE(Cache.stats().Sweeps, 1u);
  EXPECT_EQ(Cache.stats().PoolGrowths, 0u);
  // A can be locked again (gets a fresh mapping).
  Cache.lock(A, Main);
  EXPECT_TRUE(Cache.holdsLock(A, Main));
  Cache.unlock(A, Main);
}

TEST_F(MonitorCacheTest, EveryOperationCountsALookup) {
  MonitorCache Cache(8);
  Object *Obj = TheHeap.allocate(*Class);
  Cache.lock(Obj, Main);
  Cache.unlock(Obj, Main);
  Cache.lock(Obj, Main);
  Cache.notify(Obj, Main);
  Cache.unlock(Obj, Main);
  EXPECT_EQ(Cache.stats().Lookups, 5u);
}

TEST_F(MonitorCacheTest, WaitKeepsMonitorUnreclaimable) {
  MonitorCache Cache(/*PoolSize=*/1);
  Object *Waited = TheHeap.allocate(*Class);

  std::atomic<bool> Waiting{false};
  std::thread Waiter([&] {
    ScopedThreadAttachment Attachment(Registry);
    Cache.lock(Waited, Attachment.context());
    Waiting.store(true);
    EXPECT_EQ(Cache.wait(Waited, Attachment.context(), -1),
              WaitStatus::Notified);
    Cache.unlock(Waited, Attachment.context());
  });
  while (!Waiting.load())
    std::this_thread::yield();
  // Acquire (proves waiter is in the wait set), then churn other objects
  // through the 1-entry pool: sweeps must not steal the waited monitor.
  Cache.lock(Waited, Main);
  Cache.unlock(Waited, Main);
  auto Churn = newObjects(8);
  for (Object *Obj : Churn) {
    Cache.lock(Obj, Main);
    Cache.unlock(Obj, Main);
  }
  Cache.lock(Waited, Main);
  Cache.notify(Waited, Main);
  Cache.unlock(Waited, Main);
  Waiter.join();
}

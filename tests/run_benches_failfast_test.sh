#!/usr/bin/env bash
#===- tests/run_benches_failfast_test.sh - fail-fast regression ---------===#
#
# Regression test for bench/run_benches.sh's failure discipline, run
# against stub benchmark binaries in a sandbox (no real benches needed).
#
# The bug this pins down: the old script ignored suite exit codes and
# merged each trajectory file directly over the committed copy as it
# went, so a crash or malformed JSON in a *contention* suite left
# BENCH_fastpath.json half-regenerated while BENCH_contention.json kept
# the previous run — a torn, unpublishable trajectory.  The script must
# now (a) propagate non-zero suite exits, (b) fail on malformed suite
# JSON, and in both cases (c) leave every prior BENCH_*.json
# bit-for-bit untouched.
#
#===----------------------------------------------------------------------===#
set -u

SCRIPT_DIR="$(cd "$(dirname "$0")" && pwd)"
RUN_BENCHES="$SCRIPT_DIR/../bench/run_benches.sh"
[ -f "$RUN_BENCHES" ] || { echo "FAIL: $RUN_BENCHES not found" >&2; exit 1; }

SANDBOX="$(mktemp -d)"
trap 'rm -rf "$SANDBOX"' EXIT

Failures=0
fail() { echo "FAIL: $*" >&2; Failures=$((Failures + 1)); }
pass() { echo "ok: $*" >&2; }

# Builds a fresh stub build tree.  Each stub understands just enough of
# the google-benchmark CLI to honor --benchmark_out=PATH; per-suite
# behavior is scripted via marker files in the sandbox:
#   $SANDBOX/exitcode.<suite>   -> stub exits with this status
#   $SANDBOX/garbage.<suite>    -> stub writes non-JSON output
#   $SANDBOX/debugctx.<suite>   -> stub reports a debug-build context
# A real suite always stamps thinlocks_build_type via BenchContext.h, so
# the default stub context says "release" (the publishable case).
make_build_tree() {
  local Build="$1"
  mkdir -p "$Build/bench"
  local Suite
  for Suite in bench_fastpath bench_inflation_storm bench_wakeup; do
    cat >"$Build/bench/$Suite" <<STUB
#!/usr/bin/env bash
Out=""
for Arg in "\$@"; do
  case "\$Arg" in --benchmark_out=*) Out="\${Arg#--benchmark_out=}" ;; esac
done
BuildType=release
if [ -f "$SANDBOX/debugctx.$Suite" ]; then
  BuildType=debug
fi
if [ -f "$SANDBOX/garbage.$Suite" ]; then
  echo "this is not json {" > "\$Out"
else
  printf '{"context":{"executable":"%s","thinlocks_build_type":"%s"},"benchmarks":[{"name":"%s/op","real_time":1.0}]}\n' \
    "$Suite" "\$BuildType" "$Suite" > "\$Out"
fi
if [ -f "$SANDBOX/exitcode.$Suite" ]; then
  exit "\$(cat "$SANDBOX/exitcode.$Suite")"
fi
exit 0
STUB
    chmod +x "$Build/bench/$Suite"
  done
}

# Seeds the output dir with sentinel trajectory files whose bytes must
# survive any failed run.
seed_sentinels() {
  local Out="$1"
  mkdir -p "$Out"
  echo '{"sentinel":"fastpath"}' >"$Out/BENCH_fastpath.json"
  echo '{"sentinel":"contention"}' >"$Out/BENCH_contention.json"
}

sentinels_untouched() {
  local Out="$1"
  [ "$(cat "$Out/BENCH_fastpath.json")" = '{"sentinel":"fastpath"}' ] &&
    [ "$(cat "$Out/BENCH_contention.json")" = '{"sentinel":"contention"}' ]
}

BUILD="$SANDBOX/build"
make_build_tree "$BUILD"

#--- Scenario A: a suite exits non-zero -> script propagates it ----------#
OUT_A="$SANDBOX/out-a"
seed_sentinels "$OUT_A"
echo 3 >"$SANDBOX/exitcode.bench_inflation_storm"
BENCH_OUT_DIR="$OUT_A" bash "$RUN_BENCHES" "$BUILD" >/dev/null 2>&1
Status=$?
rm -f "$SANDBOX/exitcode.bench_inflation_storm"
if [ "$Status" -eq 0 ]; then
  fail "scenario A: crashing suite did not fail the script"
else
  pass "scenario A: crashing suite propagated exit status $Status"
fi
if sentinels_untouched "$OUT_A"; then
  pass "scenario A: committed BENCH_*.json untouched after suite crash"
else
  fail "scenario A: a BENCH_*.json was clobbered by a failed run"
fi

#--- Scenario B: malformed contention JSON -> no partial publish ---------#
# The historical regression: bench_fastpath succeeds and used to be
# written out before the contention merge discovered the garbage.
OUT_B="$SANDBOX/out-b"
seed_sentinels "$OUT_B"
touch "$SANDBOX/garbage.bench_wakeup"
BENCH_OUT_DIR="$OUT_B" bash "$RUN_BENCHES" "$BUILD" >/dev/null 2>&1
Status=$?
rm -f "$SANDBOX/garbage.bench_wakeup"
if [ "$Status" -eq 0 ]; then
  fail "scenario B: malformed suite JSON did not fail the script"
else
  pass "scenario B: malformed suite JSON failed the script (status $Status)"
fi
if sentinels_untouched "$OUT_B"; then
  pass "scenario B: no partial publish (fastpath sentinel survived)"
else
  fail "scenario B: partial publish — fastpath was overwritten before the contention merge failed"
fi

#--- Scenario C: happy path -> both files regenerated together -----------#
OUT_C="$SANDBOX/out-c"
seed_sentinels "$OUT_C"
if BENCH_OUT_DIR="$OUT_C" bash "$RUN_BENCHES" "$BUILD" >/dev/null 2>&1; then
  pass "scenario C: clean run exits zero"
else
  fail "scenario C: clean run failed"
fi
if grep -q '"suite": "bench_fastpath"' "$OUT_C/BENCH_fastpath.json" &&
   grep -q '"suite": "bench_wakeup"' "$OUT_C/BENCH_contention.json" &&
   ! grep -q sentinel "$OUT_C/BENCH_fastpath.json" &&
   ! grep -q sentinel "$OUT_C/BENCH_contention.json"; then
  pass "scenario C: both trajectory files regenerated"
else
  fail "scenario C: trajectory files not regenerated as expected"
fi

#--- Scenario D: BENCH_TRACE=1 without macro_trace built -> hard error ---#
OUT_D="$SANDBOX/out-d"
seed_sentinels "$OUT_D"
if BENCH_OUT_DIR="$OUT_D" BENCH_TRACE=1 bash "$RUN_BENCHES" "$BUILD" \
     >/dev/null 2>&1; then
  fail "scenario D: missing macro_trace did not fail BENCH_TRACE run"
else
  pass "scenario D: missing macro_trace fails BENCH_TRACE run"
fi
if sentinels_untouched "$OUT_D"; then
  pass "scenario D: committed BENCH_*.json untouched"
else
  fail "scenario D: BENCH_*.json clobbered despite trace failure"
fi

#--- Scenario E: a suite built without NDEBUG -> publish refused ---------#
# The stub reports thinlocks_build_type "debug" for one suite; the merge
# must refuse the whole trajectory and leave the sentinels untouched —
# a debug-build timing must never overwrite the committed numbers.
OUT_E="$SANDBOX/out-e"
seed_sentinels "$OUT_E"
touch "$SANDBOX/debugctx.bench_wakeup"
BENCH_OUT_DIR="$OUT_E" bash "$RUN_BENCHES" "$BUILD" >/dev/null 2>&1
Status=$?
rm -f "$SANDBOX/debugctx.bench_wakeup"
if [ "$Status" -eq 0 ]; then
  fail "scenario E: debug-build suite context did not fail the script"
else
  pass "scenario E: debug-build suite context refused (status $Status)"
fi
if sentinels_untouched "$OUT_E"; then
  pass "scenario E: committed BENCH_*.json untouched after refusal"
else
  fail "scenario E: a BENCH_*.json was clobbered by a debug-build run"
fi

#--- Scenario F: BENCH_MATRIX=1 without bench_matrix built -> hard error -#
OUT_F="$SANDBOX/out-f"
seed_sentinels "$OUT_F"
if BENCH_OUT_DIR="$OUT_F" BENCH_MATRIX=1 bash "$RUN_BENCHES" "$BUILD" \
     >/dev/null 2>&1; then
  fail "scenario F: missing bench_matrix did not fail BENCH_MATRIX run"
else
  pass "scenario F: missing bench_matrix fails BENCH_MATRIX run"
fi
if sentinels_untouched "$OUT_F"; then
  pass "scenario F: committed BENCH_*.json untouched"
else
  fail "scenario F: BENCH_*.json clobbered despite matrix failure"
fi

#--- Scenario G: bench_matrix emits an off-schema grid -> refused --------#
# A stub bench_matrix writes a syntactically valid document that fails
# the coverage gate (3 protocols < the 4 the schema requires); the
# publish must be refused with the sentinels intact.
OUT_G="$SANDBOX/out-g"
seed_sentinels "$OUT_G"
cat >"$BUILD/bench/bench_matrix" <<'STUB'
#!/usr/bin/env bash
Out=""
Prev=""
for Arg in "$@"; do
  [ "$Prev" = "--out" ] && Out="$Arg"
  Prev="$Arg"
done
printf '%s\n' '{"schema": "thinlocks-bench-matrix-v1", "build_type": "release", "protocols": ["A", "B", "C"], "workloads": ["w1", "w2", "w3"], "rows": [{"protocol": "A", "protocol_impl": "A", "workload": "w1", "ops": 1, "elapsed_ns": 1, "ns_per_op": 1.0}]}' > "$Out"
STUB
chmod +x "$BUILD/bench/bench_matrix"
BENCH_OUT_DIR="$OUT_G" BENCH_MATRIX=1 bash "$RUN_BENCHES" "$BUILD" \
  >/dev/null 2>&1
Status=$?
rm -f "$BUILD/bench/bench_matrix"
if [ "$Status" -eq 0 ]; then
  fail "scenario G: off-schema matrix did not fail the script"
else
  pass "scenario G: off-schema matrix refused (status $Status)"
fi
if sentinels_untouched "$OUT_G"; then
  pass "scenario G: committed BENCH_*.json untouched after refusal"
else
  fail "scenario G: a BENCH_*.json was clobbered by an off-schema matrix"
fi

#--- Scenario H: BENCH_TXN failure modes -> hard error, no publish -------#
# H1: BENCH_TXN=1 without bench_txn built must be a hard error (the
# opt-in is explicit, so a missing binary is a broken invocation, not a
# skip).  H2: a stub bench_txn emitting a syntactically valid but
# off-schema document (grid incomplete, accounting identity broken) must
# be refused by the schema gate with the sentinels intact.
OUT_H="$SANDBOX/out-h"
seed_sentinels "$OUT_H"
if BENCH_OUT_DIR="$OUT_H" BENCH_TXN=1 bash "$RUN_BENCHES" "$BUILD" \
     >/dev/null 2>&1; then
  fail "scenario H: missing bench_txn did not fail BENCH_TXN run"
else
  pass "scenario H: missing bench_txn fails BENCH_TXN run"
fi
if sentinels_untouched "$OUT_H"; then
  pass "scenario H: committed BENCH_*.json untouched"
else
  fail "scenario H: BENCH_*.json clobbered despite txn failure"
fi

OUT_H2="$SANDBOX/out-h2"
seed_sentinels "$OUT_H2"
cat >"$BUILD/bench/bench_txn" <<'STUB'
#!/usr/bin/env bash
Out=""
Prev=""
for Arg in "$@"; do
  [ "$Prev" = "--out" ] && Out="$Arg"
  Prev="$Arg"
done
printf '%s\n' '{"schema": "thinlocks-bench-txn-v1", "build_type": "release", "protocols": ["A", "B", "C", "D", "E"], "policies": ["NoWait", "WaitDie", "Validated"], "rows": [{"protocol": "A", "protocol_impl": "A", "policy": "NoWait", "started": 10, "committed": 4, "aborted": 5, "commits_per_sec": 1.0, "consistency_violations": 0, "abort_p99_ns": 1, "commit_p99_ns": 1}]}' > "$Out"
STUB
chmod +x "$BUILD/bench/bench_txn"
BENCH_OUT_DIR="$OUT_H2" BENCH_TXN=1 bash "$RUN_BENCHES" "$BUILD" \
  >/dev/null 2>&1
Status=$?
rm -f "$BUILD/bench/bench_txn"
if [ "$Status" -eq 0 ]; then
  fail "scenario H: off-schema txn grid did not fail the script"
else
  pass "scenario H: off-schema txn grid refused (status $Status)"
fi
if sentinels_untouched "$OUT_H2"; then
  pass "scenario H: committed BENCH_*.json untouched after refusal"
else
  fail "scenario H: a BENCH_*.json was clobbered by an off-schema txn grid"
fi

if [ "$Failures" -ne 0 ]; then
  echo "$Failures scenario check(s) failed" >&2
  exit 1
fi
echo "all run_benches fail-fast scenarios passed"

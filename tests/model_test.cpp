//===- tests/model_test.cpp - Model-based random conformance --------------===//
//
// Property testing against a reference model: a trivially correct
// map<object, hold-depth> per thread.  Random operation sequences (lock,
// unlock, tryLock, checked-unlock on random objects, ownership queries,
// notify, zero-timeout wait) must leave every protocol in exactly the
// state the model predicts, seed after seed.  Instantiated over multiple
// seeds (parameterized) and all four protocols.
//
//===----------------------------------------------------------------------===//

#include "baselines/EagerMonitor.h"
#include "baselines/HotLocks.h"
#include "baselines/MonitorCache.h"
#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "support/SplitMix64.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

using namespace thinlocks;

namespace {

/// The obviously correct reference: what one thread should observe.
class ReferenceModel {
  std::map<const Object *, uint32_t> Depths;

public:
  void lock(const Object *Obj) { ++Depths[Obj]; }

  bool unlockChecked(const Object *Obj) {
    auto It = Depths.find(Obj);
    if (It == Depths.end() || It->second == 0)
      return false;
    if (--It->second == 0)
      Depths.erase(It);
    return true;
  }

  uint32_t depth(const Object *Obj) const {
    auto It = Depths.find(Obj);
    return It == Depths.end() ? 0 : It->second;
  }

  bool holds(const Object *Obj) const { return depth(Obj) > 0; }

  std::vector<std::pair<const Object *, uint32_t>> heldObjects() const {
    return {Depths.begin(), Depths.end()};
  }
};

template <typename Protocol>
void runSingleThreadedModelCheck(Protocol &P, Heap &TheHeap,
                                 ThreadRegistry &Registry, uint64_t Seed) {
  ScopedThreadAttachment Me(Registry);
  const ThreadContext &T = Me.context();
  const ClassInfo &Class =
      TheHeap.classes().registerClass("ModelObj", 0);

  constexpr int NumObjects = 12;
  constexpr int NumOps = 4000;
  std::vector<Object *> Objects;
  for (int I = 0; I < NumObjects; ++I)
    Objects.push_back(TheHeap.allocate(Class));

  ReferenceModel Model;
  SplitMix64 Rng(Seed);

  for (int Op = 0; Op < NumOps; ++Op) {
    Object *Obj = Objects[Rng.nextBounded(NumObjects)];
    switch (Rng.nextBounded(8)) {
    case 0:
    case 1: // lock (weighted: most common op in real traces)
      // Cap depth to stay clear of the 257-hold inflation on purpose
      // sometimes, and cross it other times.
      P.lock(Obj, T);
      Model.lock(Obj);
      break;
    case 2:
    case 3: { // unlockChecked
      bool Expected = Model.unlockChecked(Obj);
      ASSERT_EQ(P.unlockChecked(Obj, T), Expected) << "op " << Op;
      break;
    }
    case 4: { // tryLock where supported (thin lock only)
      if constexpr (requires { P.tryLock(Obj, T); }) {
        // Single-threaded: tryLock must always succeed.
        ASSERT_TRUE(P.tryLock(Obj, T));
        Model.lock(Obj);
      } else {
        P.lock(Obj, T);
        Model.lock(Obj);
      }
      break;
    }
    case 5: // ownership queries
      ASSERT_EQ(P.holdsLock(Obj, T), Model.holds(Obj)) << "op " << Op;
      ASSERT_EQ(P.lockDepth(Obj, T), Model.depth(Obj)) << "op " << Op;
      break;
    case 6: { // notify: Ok iff owned
      NotifyStatus Expected =
          Model.holds(Obj) ? NotifyStatus::Ok : NotifyStatus::NotOwner;
      ASSERT_EQ(P.notify(Obj, T), Expected) << "op " << Op;
      break;
    }
    case 7: { // short timed wait: TimedOut iff owned (nobody notifies)
      if (Model.holds(Obj)) {
        ASSERT_EQ(P.wait(Obj, T, /*TimeoutNanos=*/1000),
                  WaitStatus::TimedOut);
        // Depth must be fully restored.
        ASSERT_EQ(P.lockDepth(Obj, T), Model.depth(Obj));
      } else {
        ASSERT_EQ(P.wait(Obj, T, 0), WaitStatus::NotOwner);
      }
      break;
    }
    }
  }

  // Drain: release everything the model says we hold, verifying depths.
  for (auto [Obj, Depth] : Model.heldObjects()) {
    ASSERT_EQ(P.lockDepth(const_cast<Object *>(Obj), T), Depth);
    for (uint32_t D = 0; D < Depth; ++D)
      ASSERT_TRUE(P.unlockChecked(const_cast<Object *>(Obj), T));
    ASSERT_FALSE(P.holdsLock(const_cast<Object *>(Obj), T));
  }
}

class ModelCheck : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(ModelCheck, ThinLockMatchesReferenceModel) {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockManager P(Monitors);
  runSingleThreadedModelCheck(P, TheHeap, Registry, GetParam());
}

TEST_P(ModelCheck, ThinLockUPMatchesReferenceModel) {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockUP P(Monitors);
  runSingleThreadedModelCheck(P, TheHeap, Registry, GetParam());
}

TEST_P(ModelCheck, CasUnlockMatchesReferenceModel) {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockCasUnlock P(Monitors);
  runSingleThreadedModelCheck(P, TheHeap, Registry, GetParam());
}

TEST_P(ModelCheck, MonitorCacheMatchesReferenceModel) {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorCache P(/*PoolSize=*/8); // Small pool: exercise sweeps too.
  runSingleThreadedModelCheck(P, TheHeap, Registry, GetParam());
}

TEST_P(ModelCheck, HotLocksMatchesReferenceModel) {
  Heap TheHeap;
  ThreadRegistry Registry;
  HotLocks P(/*NumHotLocks=*/4, /*PromotionThreshold=*/3,
             /*PoolSize=*/8); // Tiny limits: exercise promotion + overflow.
  runSingleThreadedModelCheck(P, TheHeap, Registry, GetParam());
}

TEST_P(ModelCheck, EagerMonitorMatchesReferenceModel) {
  Heap TheHeap;
  ThreadRegistry Registry;
  EagerMonitor P;
  runSingleThreadedModelCheck(P, TheHeap, Registry, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelCheck,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

//===----------------------------------------------------------------------===//
// Multi-threaded model check: each thread tracks its own holdings; the
// protocol must agree with every thread's local model at every step.
//===----------------------------------------------------------------------===//

namespace {

template <typename Protocol>
void runConcurrentModelCheck(Protocol &P, Heap &TheHeap,
                             ThreadRegistry &Registry, uint64_t Seed) {
  const ClassInfo &Class = TheHeap.classes().registerClass("MT", 0);
  constexpr int NumObjects = 8;
  constexpr int NumThreads = 3;
  constexpr int OpsPerThread = 3000;
  std::vector<Object *> Objects;
  for (int I = 0; I < NumObjects; ++I)
    Objects.push_back(TheHeap.allocate(Class));

  std::atomic<bool> Failed{false};
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&, T] {
      ScopedThreadAttachment Me(Registry);
      const ThreadContext &Ctx = Me.context();
      SplitMix64 Rng(Seed * 1000 + T);
      // Deadlock-free discipline: hold at most ONE object at a time
      // (nested up to 3 deep), so there is never hold-and-wait across
      // objects.  This is also the dominant pattern in real traces.
      Object *Held = nullptr;
      uint32_t Depth = 0;
      for (int Op = 0; Op < OpsPerThread && !Failed.load(); ++Op) {
        switch (Rng.nextBounded(4)) {
        case 0: // acquire or nest
          if (!Held) {
            Held = Objects[Rng.nextBounded(NumObjects)];
            P.lock(Held, Ctx);
            Depth = 1;
          } else if (Depth < 3) {
            P.lock(Held, Ctx);
            ++Depth;
          }
          break;
        case 1: // release one hold
          if (Held) {
            if (!P.unlockChecked(Held, Ctx))
              Failed.store(true);
            if (--Depth == 0)
              Held = nullptr;
          } else {
            // Not holding anything: a random unlock must fail *unless*
            // another thread's ownership makes it NotOwner anyway —
            // either way unlockChecked must return false for us.
            Object *Obj = Objects[Rng.nextBounded(NumObjects)];
            if (P.unlockChecked(Obj, Ctx))
              Failed.store(true);
          }
          break;
        case 2: // ownership query on the held object
          if (Held && (!P.holdsLock(Held, Ctx) ||
                       P.lockDepth(Held, Ctx) != Depth))
            Failed.store(true);
          break;
        case 3: { // negative query: an object we do not hold
          Object *Obj = Objects[Rng.nextBounded(NumObjects)];
          if (Obj != Held && P.holdsLock(Obj, Ctx))
            Failed.store(true);
          break;
        }
        }
      }
      while (Held && Depth-- > 0)
        P.unlockChecked(Held, Ctx);
    });
  }
  for (auto &W : Workers)
    W.join();
  ASSERT_FALSE(Failed.load());
}

} // namespace

TEST_P(ModelCheck, ConcurrentThinLockMatchesPerThreadModels) {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockManager P(Monitors);
  runConcurrentModelCheck(P, TheHeap, Registry, GetParam());
}

TEST_P(ModelCheck, ConcurrentMonitorCacheMatchesPerThreadModels) {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorCache P(16);
  runConcurrentModelCheck(P, TheHeap, Registry, GetParam());
}

TEST_P(ModelCheck, ConcurrentHotLocksMatchesPerThreadModels) {
  Heap TheHeap;
  ThreadRegistry Registry;
  HotLocks P(4, 3, 16);
  runConcurrentModelCheck(P, TheHeap, Registry, GetParam());
}

//===- tests/fissile_test.cpp - FissileLock protocol tests ----------------===//
//
// White-box tests for protocols/FissileLock.h beyond the cross-protocol
// conformance suite: strict-FIFO handoff among queued waiters, no lost
// wakeups across the TS->queue crossover under sustained contention,
// recursion across the fast path, and the wait-morphing discipline
// (notify moves waiters without waking; releases grant one morphed
// waiter each; a notify concurrent with a timeout counts as a notify —
// the same contracts tests/park_test.cpp pins on the substrate).
//
//===----------------------------------------------------------------------===//

#include "heap/Heap.h"
#include "protocols/FissileLock.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace thinlocks;

namespace {

class FissileTest : public ::testing::Test {
protected:
  Heap TheHeap;
  ThreadRegistry Registry;
  FissileLock Locks;
  ThreadContext Main;
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    Main = Registry.attach("main");
    Class = &TheHeap.classes().registerClass("F", 0);
  }
  void TearDown() override { Registry.detach(Main); }

  Object *newObject() { return TheHeap.allocate(*Class); }
};

} // namespace

TEST_F(FissileTest, FifoHandoffAmongQueuedWaiters) {
  // Three waiters queue behind an owner in a known order; barging can
  // only happen at the TS word, and nobody else arrives, so the MCS
  // queue's strict FIFO must decide the acquisition order exactly.
  Object *Obj = newObject();
  Locks.lock(Obj, Main);

  constexpr int NumWaiters = 3;
  std::atomic<int> NextSlot{0};
  int Order[NumWaiters] = {-1, -1, -1};
  std::vector<std::thread> Waiters;
  for (int T = 0; T < NumWaiters; ++T) {
    uint64_t QueuedBefore = Locks.stats().QueuedAcquires;
    Waiters.emplace_back([&, T] {
      ScopedThreadAttachment Attach(Registry, "queued");
      Locks.lock(Obj, Attach.context());
      Order[NextSlot.fetch_add(1, std::memory_order_relaxed)] = T;
      Locks.unlock(Obj, Attach.context());
    });
    // Wait until waiter T has entered the slow path, then give it time
    // to finish the Tail exchange before spawning its successor.
    while (Locks.stats().QueuedAcquires == QueuedBefore)
      std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  Locks.unlock(Obj, Main);
  for (std::thread &W : Waiters)
    W.join();
  for (int T = 0; T < NumWaiters; ++T)
    EXPECT_EQ(Order[T], T) << "queued waiters acquired out of order";
  EXPECT_GE(Locks.stats().Handoffs, 2u);
}

TEST_F(FissileTest, NoLostWakeupsAcrossCrossover) {
  // Sustained contention on one object drives every transition of the
  // TS->queue crossover: fast acquires, queue joins, head parks, MCS
  // handoffs, and lot wakes.  A lost wakeup anywhere hangs the test
  // (ctest timeout); the counter proves mutual exclusion held.
  Object *Obj = newObject();
  constexpr int NumThreads = 4;
  constexpr int PerThread = 8000;
  uint64_t Shared = 0; // Protected by Obj.
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&] {
      ScopedThreadAttachment Attach(Registry, "crossover");
      for (int I = 0; I < PerThread; ++I) {
        Locks.lock(Obj, Attach.context());
        ++Shared;
        Locks.unlock(Obj, Attach.context());
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Shared, static_cast<uint64_t>(NumThreads) * PerThread);
  FissileLockStats S = Locks.stats();
  EXPECT_EQ(S.FastAcquires + S.QueuedAcquires,
            static_cast<uint64_t>(NumThreads) * PerThread);
}

TEST_F(FissileTest, RecursionAcrossFastAndTryPaths) {
  Object *Obj = newObject();
  Locks.lock(Obj, Main);
  EXPECT_TRUE(Locks.tryLock(Obj, Main));
  Locks.lock(Obj, Main);
  EXPECT_EQ(Locks.tryLockFor(Obj, Main, 1'000'000),
            TimedLockStatus::Acquired);
  EXPECT_EQ(Locks.lockDepth(Obj, Main), 4u);
  for (int I = 0; I < 4; ++I)
    Locks.unlock(Obj, Main);
  EXPECT_FALSE(Locks.holdsLock(Obj, Main));
  EXPECT_FALSE(Locks.unlockChecked(Obj, Main));
}

TEST_F(FissileTest, NotifyMorphsWithoutWaking) {
  // The wait-morphing contract: notify moves the waiter to the morphed
  // list but must not wake it while the notifier still owns the
  // monitor; the *release* grants it.
  Object *Obj = newObject();
  std::atomic<bool> Ready{false};
  std::atomic<bool> Returned{false};
  std::thread Waiter([&] {
    ScopedThreadAttachment Attach(Registry, "waiter");
    Locks.lock(Obj, Attach.context());
    Ready.store(true, std::memory_order_release);
    EXPECT_EQ(Locks.wait(Obj, Attach.context(), -1), WaitStatus::Notified);
    Returned.store(true, std::memory_order_release);
    Locks.unlock(Obj, Attach.context());
  });
  while (!Ready.load(std::memory_order_acquire))
    std::this_thread::yield();
  Locks.lock(Obj, Main); // Waiter is inside wait() once this acquires.
  uint64_t MorphsBefore = Locks.stats().Morphs;
  EXPECT_EQ(Locks.notify(Obj, Main), NotifyStatus::Ok);
  EXPECT_EQ(Locks.stats().Morphs, MorphsBefore + 1);
  // Still in the (morphed) wait set, and not runnable: hold the monitor
  // across a dwell and the waiter must not return from wait().
  EXPECT_EQ(Locks.waitSetSize(Obj), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(Returned.load(std::memory_order_acquire));
  Locks.unlock(Obj, Main); // The release grants the morphed waiter.
  Waiter.join();
  EXPECT_TRUE(Returned.load(std::memory_order_acquire));
  EXPECT_EQ(Locks.waitSetSize(Obj), 0u);
}

TEST_F(FissileTest, NotifyDuringTimeoutCountsAsNotify) {
  // A waiter whose deadline expires after it was morphed must treat the
  // notify as delivered: keep waiting for the release-time grant and
  // return Notified, never TimedOut (the notification would otherwise
  // be silently dropped).
  Object *Obj = newObject();
  std::atomic<bool> Ready{false};
  std::thread Waiter([&] {
    ScopedThreadAttachment Attach(Registry, "timed-waiter");
    Locks.lock(Obj, Attach.context());
    Ready.store(true, std::memory_order_release);
    EXPECT_EQ(Locks.wait(Obj, Attach.context(), /*TimeoutNanos=*/50'000'000),
              WaitStatus::Notified);
    EXPECT_TRUE(Locks.holdsLock(Obj, Attach.context()));
    Locks.unlock(Obj, Attach.context());
  });
  while (!Ready.load(std::memory_order_acquire))
    std::this_thread::yield();
  Locks.lock(Obj, Main);
  EXPECT_EQ(Locks.notify(Obj, Main), NotifyStatus::Ok);
  // Hold past the waiter's deadline: its timeout fires while morphed.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  Locks.unlock(Obj, Main);
  Waiter.join();
}

TEST_F(FissileTest, TimedWaitSelfUnlinksAndReacquires) {
  Object *Obj = newObject();
  Locks.lock(Obj, Main);
  EXPECT_EQ(Locks.waitSetSize(Obj), 0u);
  EXPECT_EQ(Locks.wait(Obj, Main, /*TimeoutNanos=*/5'000'000),
            WaitStatus::TimedOut);
  // Back out of the wait set entirely, owning the monitor again.
  EXPECT_TRUE(Locks.holdsLock(Obj, Main));
  EXPECT_EQ(Locks.waitSetSize(Obj), 0u);
  Locks.unlock(Obj, Main);
}

TEST_F(FissileTest, ReleaseGrantsMorphedWaitersOneAtATime) {
  // notifyAll morphs the whole wait set, but each final release grants
  // exactly one waiter; with 3 morphed waiters the monitor changes
  // hands 3 times with no stampede.  Every waiter increments under the
  // monitor, so the counter doubles as an exclusion check.
  Object *Obj = newObject();
  constexpr int NumWaiters = 3;
  std::atomic<int> Ready{0};
  uint64_t Woken = 0; // Protected by Obj.
  std::vector<std::thread> Waiters;
  for (int T = 0; T < NumWaiters; ++T) {
    Waiters.emplace_back([&] {
      ScopedThreadAttachment Attach(Registry, "morphed");
      Locks.lock(Obj, Attach.context());
      Ready.fetch_add(1);
      EXPECT_EQ(Locks.wait(Obj, Attach.context(), -1), WaitStatus::Notified);
      ++Woken;
      Locks.unlock(Obj, Attach.context());
    });
  }
  while (Ready.load() != NumWaiters)
    std::this_thread::yield();
  Locks.lock(Obj, Main);
  EXPECT_EQ(Locks.waitSetSize(Obj), static_cast<size_t>(NumWaiters));
  EXPECT_EQ(Locks.notifyAll(Obj, Main), NotifyStatus::Ok);
  EXPECT_EQ(Locks.waitSetSize(Obj), static_cast<size_t>(NumWaiters));
  Locks.unlock(Obj, Main);
  for (std::thread &W : Waiters)
    W.join();
  Locks.lock(Obj, Main);
  EXPECT_EQ(Woken, static_cast<uint64_t>(NumWaiters));
  Locks.unlock(Obj, Main);
  EXPECT_GE(Locks.stats().Morphs, static_cast<uint64_t>(NumWaiters));
}

TEST_F(FissileTest, TryLockForContendedTimesOutWithoutQueueing) {
  Object *Obj = newObject();
  Locks.lock(Obj, Main);
  std::thread Trier([&] {
    ScopedThreadAttachment Attach(Registry, "trier");
    uint64_t QueuedBefore = Locks.stats().QueuedAcquires;
    auto Start = std::chrono::steady_clock::now();
    EXPECT_EQ(Locks.tryLockFor(Obj, Attach.context(),
                               /*TimeoutNanos=*/20'000'000),
              TimedLockStatus::TimedOut);
    auto Elapsed = std::chrono::steady_clock::now() - Start;
    EXPECT_GE(Elapsed, std::chrono::milliseconds(15));
    // The impatient path never joins the MCS queue.
    EXPECT_EQ(Locks.stats().QueuedAcquires, QueuedBefore);
  });
  Trier.join();
  Locks.unlock(Obj, Main);
}

TEST_F(FissileTest, StatsJsonAndCellAccounting) {
  Object *A = newObject();
  Object *B = newObject();
  Locks.lock(A, Main);
  Locks.unlock(A, Main);
  Locks.lock(B, Main);
  Locks.unlock(B, Main);
  EXPECT_EQ(Locks.cellCount(), 2u);
  FissileLockStats S = Locks.stats();
  EXPECT_GE(S.FastAcquires, 2u);
  std::string Json = Locks.statsJson();
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json.back(), '}');
  EXPECT_NE(Json.find("\"fast_acquires\""), std::string::npos);
  EXPECT_NE(Json.find("\"cells\": 2"), std::string::npos);
}

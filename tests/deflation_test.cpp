//===- tests/deflation_test.cpp - Deflation extension tests ---------------===//
//
// Tests for the DeflationPolicy::WhenQuiescent extension (the paper keeps
// inflation permanent; deflation is its noted follow-up direction).
// Invariants under test:
//
//  - a fat lock retires exactly when its last hold is released with no
//    queued entrants and no waiters, and the word returns to
//    thin-unlocked with header bits intact;
//  - retirement never happens while anyone could still use the monitor;
//  - threads holding a stale fat word bounce and retry correctly;
//  - mutual exclusion survives inflate/deflate thrash.
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace thinlocks;

namespace {
class DeflationTest : public ::testing::Test {
protected:
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockManager Locks{Monitors, &Stats, DeflationPolicy::WhenQuiescent};
  ThreadContext Main;
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    Main = Registry.attach("main");
    Class = &TheHeap.classes().registerClass("D", 0);
  }
  void TearDown() override { Registry.detach(Main); }

  Object *inflateViaWait(Object *Obj) {
    Locks.lock(Obj, Main);
    Locks.wait(Obj, Main, /*TimeoutNanos=*/100'000);
    EXPECT_TRUE(Locks.isInflated(Obj));
    return Obj;
  }
};
} // namespace

TEST_F(DeflationTest, QuiescentReleaseDeflates) {
  Object *Obj = TheHeap.allocate(*Class);
  uint32_t Header = Obj->headerBits();
  inflateViaWait(Obj);
  FatLock *Fat = Locks.monitorOf(Obj);
  ASSERT_NE(Fat, nullptr);

  Locks.unlock(Obj, Main); // Last hold, nobody queued or waiting.
  EXPECT_FALSE(Locks.isInflated(Obj));
  EXPECT_TRUE(lockword::isUnlocked(Obj->lockWord().load()));
  EXPECT_EQ(lockword::headerBitsOf(Obj->lockWord().load()), Header);
  EXPECT_TRUE(Fat->isRetired());
  EXPECT_EQ(Stats.deflations(), 1u);
}

TEST_F(DeflationTest, ThinSpeedPathIsBackAfterDeflation) {
  Object *Obj = TheHeap.allocate(*Class);
  inflateViaWait(Obj);
  Locks.unlock(Obj, Main); // Deflates.

  // Next acquisition is a plain thin fast path again.
  uint64_t FatOpsBefore = Stats.fatPathAcquisitions();
  Locks.lock(Obj, Main);
  EXPECT_FALSE(Locks.isInflated(Obj));
  EXPECT_EQ(Stats.fatPathAcquisitions(), FatOpsBefore);
  Locks.unlock(Obj, Main);
}

TEST_F(DeflationTest, ReinflationAllocatesAFreshMonitor) {
  Object *Obj = TheHeap.allocate(*Class);
  inflateViaWait(Obj);
  FatLock *First = Locks.monitorOf(Obj);
  Locks.unlock(Obj, Main); // Deflate.

  inflateViaWait(Obj); // Inflate again.
  FatLock *Second = Locks.monitorOf(Obj);
  EXPECT_NE(First, Second); // Retired monitors are never reused.
  EXPECT_TRUE(First->isRetired());
  EXPECT_FALSE(Second->isRetired());
  Locks.unlock(Obj, Main);
  EXPECT_EQ(Stats.deflations(), 2u);
}

TEST_F(DeflationTest, NestedHoldsBlockDeflation) {
  Object *Obj = TheHeap.allocate(*Class);
  Locks.lock(Obj, Main);
  inflateViaWait(Obj); // Now held twice, fat.
  EXPECT_EQ(Locks.lockDepth(Obj, Main), 2u);

  Locks.unlock(Obj, Main); // Still held once: must NOT deflate.
  EXPECT_TRUE(Locks.isInflated(Obj));
  EXPECT_EQ(Stats.deflations(), 0u);

  Locks.unlock(Obj, Main); // Quiescent now: deflates.
  EXPECT_FALSE(Locks.isInflated(Obj));
  EXPECT_EQ(Stats.deflations(), 1u);
}

TEST_F(DeflationTest, WaitersBlockDeflation) {
  Object *Obj = TheHeap.allocate(*Class);
  std::atomic<bool> Waiting{false};
  std::thread Waiter([&] {
    ScopedThreadAttachment Attachment(Registry, "waiter");
    Locks.lock(Obj, Attachment.context());
    Waiting.store(true);
    EXPECT_EQ(Locks.wait(Obj, Attachment.context(), -1),
              WaitStatus::Notified);
    Locks.unlock(Obj, Attachment.context());
  });
  while (!Waiting.load())
    std::this_thread::yield();

  // Acquire (proves the waiter is parked), then release: the wait set is
  // non-empty, so deflation must not happen.
  Locks.lock(Obj, Main);
  Locks.unlock(Obj, Main);
  EXPECT_TRUE(Locks.isInflated(Obj));
  EXPECT_EQ(Stats.deflations(), 0u);

  Locks.lock(Obj, Main);
  Locks.notify(Obj, Main);
  Locks.unlock(Obj, Main);
  Waiter.join();
  // The waiter's own final unlock found the monitor quiescent: deflated.
  EXPECT_FALSE(Locks.isInflated(Obj));
  EXPECT_EQ(Stats.deflations(), 1u);
}

TEST_F(DeflationTest, QueuedEntrantBlocksDeflation) {
  Object *Obj = TheHeap.allocate(*Class);
  inflateViaWait(Obj); // Held by main, fat.
  FatLock *Fat = Locks.monitorOf(Obj);

  std::thread Entrant([&] {
    ScopedThreadAttachment Attachment(Registry, "entrant");
    Locks.lock(Obj, Attachment.context());
    Locks.unlock(Obj, Attachment.context());
  });
  while (Fat->entryQueueLength() == 0)
    std::this_thread::yield();

  Locks.unlock(Obj, Main); // Queue non-empty: hands off, no deflation...
  Entrant.join();
  // ...but the entrant's own release was quiescent and deflated.
  EXPECT_FALSE(Locks.isInflated(Obj));
  EXPECT_EQ(Stats.deflations(), 1u);
}

TEST_F(DeflationTest, DefaultPolicyNeverDeflates) {
  ThinLockManager Permanent(Monitors, &Stats);
  Object *Obj = TheHeap.allocate(*Class);
  Permanent.lock(Obj, Main);
  Permanent.wait(Obj, Main, /*TimeoutNanos=*/100'000);
  Permanent.unlock(Obj, Main);
  EXPECT_TRUE(Permanent.isInflated(Obj)); // Paper discipline.
  EXPECT_EQ(Stats.deflations(), 0u);
}

TEST_F(DeflationTest, TryLockSurvivesDeflationCycles) {
  Object *Obj = TheHeap.allocate(*Class);
  for (int Round = 0; Round < 10; ++Round) {
    inflateViaWait(Obj);
    EXPECT_TRUE(Locks.tryLock(Obj, Main)); // Nested on the fat lock.
    Locks.unlock(Obj, Main);
    Locks.unlock(Obj, Main); // Deflates.
    EXPECT_FALSE(Locks.isInflated(Obj));
    EXPECT_TRUE(Locks.tryLock(Obj, Main)); // Thin again.
    Locks.unlock(Obj, Main);
  }
  EXPECT_EQ(Stats.deflations(), 10u);
}

TEST_F(DeflationTest, MutualExclusionSurvivesThrash) {
  // The scenario the paper's permanence discipline avoids: repeated
  // inflate/deflate cycles under contention.  Correctness must hold
  // regardless of the performance cost.
  Object *Obj = TheHeap.allocate(*Class);
  constexpr int NumThreads = 4;
  constexpr int PerThread = 4000;
  uint64_t Shared = 0; // Protected by Obj.
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&] {
      ScopedThreadAttachment Attachment(Registry);
      for (int I = 0; I < PerThread; ++I) {
        Locks.lock(Obj, Attachment.context());
        ++Shared;
        Locks.unlock(Obj, Attachment.context());
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Shared, static_cast<uint64_t>(NumThreads) * PerThread);
  EXPECT_EQ(Stats.totalAcquisitions(), Stats.totalReleases());
  // Quiescent end state: the last release deflated (or the object ended
  // thin) — either way nobody owns it.
  EXPECT_FALSE(Locks.holdsLock(Obj, Main));
  if (!Locks.isInflated(Obj)) {
    EXPECT_TRUE(lockword::isUnlocked(Obj->lockWord().load()));
  }
}

TEST_F(DeflationTest, HeaderBitsSurviveManyCycles) {
  Object *Obj = TheHeap.allocate(*Class);
  uint32_t Header = Obj->headerBits();
  for (int I = 0; I < 25; ++I) {
    inflateViaWait(Obj);
    Locks.unlock(Obj, Main);
    EXPECT_EQ(lockword::headerBitsOf(Obj->lockWord().load()), Header);
  }
  EXPECT_EQ(Stats.deflations(), 25u);
}

//===- tests/nativelibrary_test.cpp - Thread-safe library classes ---------===//

#include "vm/NativeLibrary.h"

#include <gtest/gtest.h>

using namespace thinlocks;
using namespace thinlocks::vm;

namespace {

class NativeLibraryTest : public ::testing::Test {
protected:
  VM Vm;
  NativeLibrary Lib{Vm};
  ScopedThreadAttachment *Attachment = nullptr;

  void SetUp() override {
    Attachment = new ScopedThreadAttachment(Vm.threads(), "main");
  }
  void TearDown() override { delete Attachment; }

  const ThreadContext &thread() { return Attachment->context(); }

  Value call(const Method &M, std::vector<Value> Args) {
    RunResult R = Vm.call(M, Args, thread());
    EXPECT_EQ(R.TrapKind, Trap::None) << trapName(R.TrapKind);
    return R.Result;
  }
};

} // namespace

TEST_F(NativeLibraryTest, VectorAddAndGet) {
  Object *Vec = Vm.newInstance(Lib.vectorClass());
  for (int I = 0; I < 10; ++I)
    call(Lib.vectorAddElement(),
         {Value::makeRef(Vec), Value::makeInt(I * I)});
  EXPECT_EQ(call(Lib.vectorSize(), {Value::makeRef(Vec)}).asInt(), 10);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(call(Lib.vectorElementAt(),
                   {Value::makeRef(Vec), Value::makeInt(I)})
                  .asInt(),
              I * I);
}

TEST_F(NativeLibraryTest, VectorElementAtOutOfBoundsTraps) {
  Object *Vec = Vm.newInstance(Lib.vectorClass());
  RunResult R =
      Vm.call(Lib.vectorElementAt(),
              std::vector<Value>{Value::makeRef(Vec), Value::makeInt(0)},
              thread());
  EXPECT_EQ(R.TrapKind, Trap::IndexOutOfBounds);
  // The synchronized-method monitor was released despite the trap.
  EXPECT_FALSE(Vm.sync().holdsLock(Vec, thread()));
}

TEST_F(NativeLibraryTest, VectorRemoveAllElements) {
  Object *Vec = Vm.newInstance(Lib.vectorClass());
  call(Lib.vectorAddElement(), {Value::makeRef(Vec), Value::makeInt(1)});
  call(Lib.vectorRemoveAll(), {Value::makeRef(Vec)});
  EXPECT_EQ(call(Lib.vectorSize(), {Value::makeRef(Vec)}).asInt(), 0);
}

TEST_F(NativeLibraryTest, VectorsAreIndependent) {
  Object *A = Vm.newInstance(Lib.vectorClass());
  Object *B = Vm.newInstance(Lib.vectorClass());
  call(Lib.vectorAddElement(), {Value::makeRef(A), Value::makeInt(1)});
  EXPECT_EQ(call(Lib.vectorSize(), {Value::makeRef(A)}).asInt(), 1);
  EXPECT_EQ(call(Lib.vectorSize(), {Value::makeRef(B)}).asInt(), 0);
}

TEST_F(NativeLibraryTest, VectorHoldsReferences) {
  Object *Vec = Vm.newInstance(Lib.vectorClass());
  Object *Element = Vm.newInstance(Lib.vectorClass());
  call(Lib.vectorAddElement(),
       {Value::makeRef(Vec), Value::makeRef(Element)});
  Value Out = call(Lib.vectorElementAt(),
                   {Value::makeRef(Vec), Value::makeInt(0)});
  EXPECT_EQ(Out.asRef(), Element);
}

TEST_F(NativeLibraryTest, HashtablePutGetContains) {
  Object *Table = Vm.newInstance(Lib.hashtableClass());
  Value Old = call(Lib.hashtablePut(), {Value::makeRef(Table),
                                        Value::makeInt(7),
                                        Value::makeInt(49)});
  EXPECT_EQ(Old.asRef(), nullptr); // No previous mapping.
  Old = call(Lib.hashtablePut(), {Value::makeRef(Table),
                                  Value::makeInt(7), Value::makeInt(50)});
  EXPECT_EQ(Old.asInt(), 49); // Previous value returned.
  EXPECT_EQ(call(Lib.hashtableGet(),
                 {Value::makeRef(Table), Value::makeInt(7)})
                .asInt(),
            50);
  EXPECT_EQ(call(Lib.hashtableGet(),
                 {Value::makeRef(Table), Value::makeInt(8)})
                .asRef(),
            nullptr);
  EXPECT_EQ(call(Lib.hashtableContainsKey(),
                 {Value::makeRef(Table), Value::makeInt(7)})
                .asInt(),
            1);
  EXPECT_EQ(call(Lib.hashtableSize(), {Value::makeRef(Table)}).asInt(), 1);
}

TEST_F(NativeLibraryTest, BitSetSetGetClear) {
  Object *Bits = Vm.newInstance(Lib.bitSetClass());
  EXPECT_EQ(call(Lib.bitSetGet(), {Value::makeRef(Bits),
                                   Value::makeInt(100)})
                .asInt(),
            0);
  call(Lib.bitSetSet(), {Value::makeRef(Bits), Value::makeInt(100)});
  EXPECT_EQ(call(Lib.bitSetGet(), {Value::makeRef(Bits),
                                   Value::makeInt(100)})
                .asInt(),
            1);
  EXPECT_EQ(call(Lib.bitSetGet(), {Value::makeRef(Bits),
                                   Value::makeInt(101)})
                .asInt(),
            0);
  call(Lib.bitSetClear(), {Value::makeRef(Bits), Value::makeInt(100)});
  EXPECT_EQ(call(Lib.bitSetGet(), {Value::makeRef(Bits),
                                   Value::makeInt(100)})
                .asInt(),
            0);
}

TEST_F(NativeLibraryTest, BitSetGetSynchronizesInternally) {
  // The jax pattern: get() is not a synchronized method, but it enters a
  // synchronized block; afterwards the caller must not hold the monitor.
  Object *Bits = Vm.newInstance(Lib.bitSetClass());
  call(Lib.bitSetGet(), {Value::makeRef(Bits), Value::makeInt(3)});
  EXPECT_FALSE(Vm.sync().holdsLock(Bits, thread()));
  EXPECT_FALSE(Lib.bitSetGet().Traits.IsSynchronized);
  EXPECT_TRUE(Lib.bitSetSet().Traits.IsSynchronized);
}

TEST_F(NativeLibraryTest, BitSetNegativeIndexTraps) {
  Object *Bits = Vm.newInstance(Lib.bitSetClass());
  RunResult R = Vm.call(
      Lib.bitSetSet(),
      std::vector<Value>{Value::makeRef(Bits), Value::makeInt(-1)},
      thread());
  EXPECT_EQ(R.TrapKind, Trap::IndexOutOfBounds);
}

TEST_F(NativeLibraryTest, StringBufferAppendReturnsThis) {
  Object *Sb = Vm.newInstance(Lib.stringBufferClass());
  Value Out = call(Lib.stringBufferAppend(),
                   {Value::makeRef(Sb), Value::makeInt('a')});
  EXPECT_EQ(Out.asRef(), Sb);
  call(Lib.stringBufferAppend(), {Value::makeRef(Sb), Value::makeInt('b')});
  EXPECT_EQ(call(Lib.stringBufferLength(), {Value::makeRef(Sb)}).asInt(),
            2);
}

TEST_F(NativeLibraryTest, ThreadYieldRuns) {
  call(Lib.threadYield(), {});
}

TEST_F(NativeLibraryTest, LibraryMethodsAreSynchronized) {
  EXPECT_TRUE(Lib.vectorAddElement().Traits.IsSynchronized);
  EXPECT_TRUE(Lib.vectorElementAt().Traits.IsSynchronized);
  EXPECT_TRUE(Lib.vectorSize().Traits.IsSynchronized);
  EXPECT_TRUE(Lib.hashtablePut().Traits.IsSynchronized);
  EXPECT_TRUE(Lib.hashtableGet().Traits.IsSynchronized);
  EXPECT_TRUE(Lib.stringBufferAppend().Traits.IsSynchronized);
  EXPECT_FALSE(Lib.threadYield().Traits.IsSynchronized);
}

TEST_F(NativeLibraryTest, ConcurrentVectorAppendsAreAtomic) {
  Object *Vec = Vm.newInstance(Lib.vectorClass());
  constexpr int NumThreads = 4;
  constexpr int PerThread = 500;
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&, T] {
      ScopedThreadAttachment Worker(Vm.threads());
      for (int I = 0; I < PerThread; ++I) {
        RunResult R = Vm.call(
            Lib.vectorAddElement(),
            std::vector<Value>{Value::makeRef(Vec),
                               Value::makeInt(T * PerThread + I)},
            Worker.context());
        ASSERT_EQ(R.TrapKind, Trap::None);
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(call(Lib.vectorSize(), {Value::makeRef(Vec)}).asInt(),
            NumThreads * PerThread);
}

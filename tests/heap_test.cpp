//===- tests/heap_test.cpp - Object model and heap tests ------------------===//

#include "heap/Heap.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

using namespace thinlocks;

TEST(ClassRegistry, AssignsSequentialIndices) {
  ClassRegistry Registry;
  const ClassInfo &A = Registry.registerClass("A", 0);
  const ClassInfo &B = Registry.registerClass("B", 3);
  EXPECT_EQ(A.Index, 0u);
  EXPECT_EQ(B.Index, 1u);
  EXPECT_EQ(Registry.size(), 2u);
  EXPECT_EQ(Registry.classAt(1).Name, "B");
  EXPECT_EQ(Registry.classAt(1).SlotCount, 3u);
}

TEST(Heap, ObjectHeaderIsThreeWordsPlusPadding) {
  EXPECT_EQ(sizeof(Object), 16u);
}

TEST(Heap, AllocateInitializesHeader) {
  Heap TheHeap;
  const ClassInfo &Class = TheHeap.classes().registerClass("Point", 2);
  Object *Obj = TheHeap.allocate(Class);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Obj->classIndex(), Class.Index);
  // The lock field (high 24 bits) starts zeroed = thin + unlocked.
  EXPECT_EQ(Obj->lockWord().load() & 0xFFFFFF00u, 0u);
  // The low byte of the lock word is the low byte of the identity hash.
  EXPECT_EQ(Obj->lockWord().load() & 0xFFu, Obj->identityHash() & 0xFFu);
  EXPECT_EQ(Obj->headerBits(), Obj->identityHash() & 0xFFu);
}

TEST(Heap, SlotsStartZeroedAndReadBack) {
  Heap TheHeap;
  const ClassInfo &Class = TheHeap.classes().registerClass("Trip", 3);
  Object *Obj = TheHeap.allocate(Class);
  for (uint32_t I = 0; I < 3; ++I)
    EXPECT_EQ(Obj->slot(I), 0u);
  Obj->setSlot(0, 42);
  Obj->setSlot(2, UINT64_MAX);
  EXPECT_EQ(Obj->slot(0), 42u);
  EXPECT_EQ(Obj->slot(1), 0u);
  EXPECT_EQ(Obj->slot(2), UINT64_MAX);
}

TEST(Heap, SlotArrayIsAligned) {
  Heap TheHeap;
  const ClassInfo &Class = TheHeap.classes().registerClass("A", 1);
  for (int I = 0; I < 10; ++I) {
    Object *Obj = TheHeap.allocate(Class);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(Obj->slots()) % 8, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(Obj) % alignof(Object), 0u);
  }
}

TEST(Heap, IdentityHashesMostlyDistinct) {
  Heap TheHeap;
  const ClassInfo &Class = TheHeap.classes().registerClass("H", 0);
  std::set<uint32_t> Hashes;
  for (int I = 0; I < 1000; ++I)
    Hashes.insert(TheHeap.allocate(Class)->identityHash());
  EXPECT_GT(Hashes.size(), 990u);
}

TEST(Heap, CountsAllocations) {
  Heap TheHeap;
  const ClassInfo &Class = TheHeap.classes().registerClass("C", 4);
  EXPECT_EQ(TheHeap.objectsAllocated(), 0u);
  for (int I = 0; I < 25; ++I)
    TheHeap.allocate(Class);
  EXPECT_EQ(TheHeap.objectsAllocated(), 25u);
  EXPECT_GE(TheHeap.bytesAllocated(), 25u * (16 + 4 * 8));
}

TEST(Heap, ObjectsSpanMultipleBlocks) {
  Heap TheHeap(/*BlockBytes=*/4096);
  const ClassInfo &Class = TheHeap.classes().registerClass("Big", 64);
  std::vector<Object *> Objects;
  for (int I = 0; I < 100; ++I)
    Objects.push_back(TheHeap.allocate(Class));
  // All objects remain valid (non-moving heap): spot-check writes.
  for (size_t I = 0; I < Objects.size(); ++I)
    Objects[I]->setSlot(0, I);
  for (size_t I = 0; I < Objects.size(); ++I)
    EXPECT_EQ(Objects[I]->slot(0), I);
}

TEST(Heap, OversizedObjectGetsDedicatedBlock) {
  Heap TheHeap(/*BlockBytes=*/4096);
  const ClassInfo &Class = TheHeap.classes().registerClass("Huge", 2048);
  Object *Obj = TheHeap.allocate(Class);
  Obj->setSlot(2047, 7);
  EXPECT_EQ(Obj->slot(2047), 7u);
}

TEST(Heap, ClassOfResolvesThroughRegistry) {
  Heap TheHeap;
  const ClassInfo &A = TheHeap.classes().registerClass("A", 1);
  const ClassInfo &B = TheHeap.classes().registerClass("B", 2);
  Object *ObjA = TheHeap.allocate(A);
  Object *ObjB = TheHeap.allocate(B);
  EXPECT_EQ(TheHeap.classOf(*ObjA).Name, "A");
  EXPECT_EQ(TheHeap.classOf(*ObjB).Name, "B");
}

TEST(Heap, ConcurrentAllocationProducesDistinctObjects) {
  Heap TheHeap;
  const ClassInfo &Class = TheHeap.classes().registerClass("C", 1);
  constexpr int NumThreads = 4;
  constexpr int PerThread = 2000;
  std::vector<std::vector<Object *>> PerThreadObjects(NumThreads);
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T)
    Workers.emplace_back([&, T] {
      for (int I = 0; I < PerThread; ++I)
        PerThreadObjects[T].push_back(TheHeap.allocate(Class));
    });
  for (auto &W : Workers)
    W.join();
  std::set<Object *> All;
  for (auto &List : PerThreadObjects)
    for (Object *Obj : List)
      All.insert(Obj);
  EXPECT_EQ(All.size(), static_cast<size_t>(NumThreads) * PerThread);
  EXPECT_EQ(TheHeap.objectsAllocated(),
            static_cast<uint64_t>(NumThreads) * PerThread);
}

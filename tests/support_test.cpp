//===- tests/support_test.cpp - Support utility tests ---------------------===//

#include "support/Histogram.h"
#include "support/MathExtras.h"
#include "support/SpinWait.h"
#include "support/SplitMix64.h"
#include "support/StatsCounter.h"
#include "support/TableFormatter.h"
#include "support/ThreadStripe.h"
#include "support/Timer.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>

using namespace thinlocks;

//===----------------------------------------------------------------------===//
// MathExtras
//===----------------------------------------------------------------------===//

TEST(MathExtras, PowerOf2Detection) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_FALSE(isPowerOf2(3));
  EXPECT_TRUE(isPowerOf2(1ull << 40));
  EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(MathExtras, NextPowerOf2) {
  EXPECT_EQ(nextPowerOf2(0), 1u);
  EXPECT_EQ(nextPowerOf2(1), 1u);
  EXPECT_EQ(nextPowerOf2(2), 2u);
  EXPECT_EQ(nextPowerOf2(3), 4u);
  EXPECT_EQ(nextPowerOf2(1000), 1024u);
}

TEST(MathExtras, AlignTo) {
  EXPECT_EQ(alignTo(0, 8), 0u);
  EXPECT_EQ(alignTo(1, 8), 8u);
  EXPECT_EQ(alignTo(8, 8), 8u);
  EXPECT_EQ(alignTo(9, 8), 16u);
  EXPECT_EQ(alignTo(17, 16), 32u);
}

TEST(MathExtras, Log2Floor) {
  EXPECT_EQ(log2Floor(1), 0u);
  EXPECT_EQ(log2Floor(2), 1u);
  EXPECT_EQ(log2Floor(3), 1u);
  EXPECT_EQ(log2Floor(1024), 10u);
  EXPECT_EQ(log2Floor(1025), 10u);
}

TEST(MathExtras, ExtractBits) {
  EXPECT_EQ(extractBits(0xABCD1234u, 0, 8), 0x34u);
  EXPECT_EQ(extractBits(0xABCD1234u, 8, 8), 0x12u);
  EXPECT_EQ(extractBits(0xABCD1234u, 16, 16), 0xABCDu);
  EXPECT_EQ(extractBits(0xFFFFFFFFu, 0, 32), 0xFFFFFFFFu);
}

TEST(MathExtras, SaturatingAdd) {
  EXPECT_EQ(saturatingAdd(1, 2), 3u);
  EXPECT_EQ(saturatingAdd(UINT64_MAX, 1), UINT64_MAX);
  EXPECT_EQ(saturatingAdd(UINT64_MAX - 1, 1), UINT64_MAX);
}

//===----------------------------------------------------------------------===//
// SplitMix64
//===----------------------------------------------------------------------===//

TEST(SplitMix64, DeterministicFromSeed) {
  SplitMix64 A(7), B(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(SplitMix64, BoundedStaysInBounds) {
  SplitMix64 Rng(99);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(Rng.nextBounded(17), 17u);
}

TEST(SplitMix64, BoundedCoversRange) {
  SplitMix64 Rng(3);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 400; ++I)
    Seen.insert(Rng.nextBounded(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(SplitMix64, DoubleInUnitInterval) {
  SplitMix64 Rng(5);
  for (int I = 0; I < 1000; ++I) {
    double V = Rng.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(SplitMix64, NextBoolRespectsProbabilityRoughly) {
  SplitMix64 Rng(11);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += Rng.nextBool(0.25) ? 1 : 0;
  EXPECT_GT(Hits, 2000);
  EXPECT_LT(Hits, 3000);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketsAndOverflow) {
  Histogram<3> H;
  H.record(0);
  H.record(1);
  H.record(1);
  H.record(2);
  H.record(3); // overflow
  H.record(99); // overflow
  EXPECT_EQ(H.count(0), 1u);
  EXPECT_EQ(H.count(1), 2u);
  EXPECT_EQ(H.count(2), 1u);
  EXPECT_EQ(H.count(Histogram<3>::OverflowBucket), 2u);
  EXPECT_EQ(H.total(), 6u);
}

TEST(Histogram, Fractions) {
  Histogram<2> H;
  EXPECT_DOUBLE_EQ(H.fraction(0), 0.0);
  H.record(0);
  H.record(0);
  H.record(1);
  H.record(5);
  EXPECT_DOUBLE_EQ(H.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(H.fraction(1), 0.25);
  EXPECT_DOUBLE_EQ(H.fraction(Histogram<2>::OverflowBucket), 0.25);
}

TEST(Histogram, MergeAndReset) {
  Histogram<2> A, B;
  A.record(0);
  B.record(0);
  B.record(1);
  A.merge(B);
  EXPECT_EQ(A.count(0), 2u);
  EXPECT_EQ(A.count(1), 1u);
  A.reset();
  EXPECT_EQ(A.total(), 0u);
}

//===----------------------------------------------------------------------===//
// LatencyHistogram
//===----------------------------------------------------------------------===//

TEST(LatencyHistogram, EmptyIsAllZeros) {
  LatencyHistogram H;
  EXPECT_TRUE(H.empty());
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.mean(), 0u);
  EXPECT_EQ(H.quantile(0.0), 0u);
  EXPECT_EQ(H.quantile(0.5), 0u);
  EXPECT_EQ(H.quantile(1.0), 0u);
}

TEST(LatencyHistogram, SingleSampleIsEveryQuantile) {
  LatencyHistogram H;
  H.record(12345);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.min(), 12345u);
  EXPECT_EQ(H.max(), 12345u);
  EXPECT_EQ(H.mean(), 12345u);
  for (double Q : {0.0, 0.25, 0.5, 0.99, 0.999, 1.0})
    EXPECT_EQ(H.quantile(Q), 12345u) << "Q=" << Q;
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Values below SubBuckets have their own unit-width buckets.
  LatencyHistogram H;
  for (uint64_t V = 0; V < LatencyHistogram::SubBuckets; ++V)
    EXPECT_EQ(LatencyHistogram::bucketOf(V), V);
  H.record(3);
  H.record(7);
  H.record(7);
  H.record(9);
  EXPECT_EQ(H.quantile(0.5), 7u);
  EXPECT_EQ(H.quantile(1.0), 9u);
  EXPECT_EQ(H.quantile(0.0), 3u);
}

TEST(LatencyHistogram, QuantileOrderIsMonotone) {
  LatencyHistogram H;
  SplitMix64 Rng(17);
  for (int I = 0; I < 5000; ++I)
    H.record(Rng.nextBounded(1u << 20));
  uint64_t Prev = 0;
  for (double Q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    uint64_t Value = H.quantile(Q);
    EXPECT_GE(Value, Prev) << "quantile regressed at Q=" << Q;
    EXPECT_GE(Value, H.min());
    EXPECT_LE(Value, H.max());
    Prev = Value;
  }
}

TEST(LatencyHistogram, QuantileRelativeErrorIsBounded) {
  // Log-linear bucketing promises <= 1/16 relative bucket width: a
  // quantile estimate never overshoots the true value by more than that
  // (estimates report the bucket's high bound).
  LatencyHistogram H;
  for (uint64_t I = 1; I <= 10000; ++I)
    H.record(I);
  for (double Q : {0.5, 0.9, 0.99}) {
    double Exact = Q * 10000;
    double Estimate = static_cast<double>(H.quantile(Q));
    EXPECT_GE(Estimate, Exact * 0.99) << "Q=" << Q;
    EXPECT_LE(Estimate, Exact * 1.08) << "Q=" << Q;
  }
}

TEST(LatencyHistogram, SaturationReportsTrueMax) {
  LatencyHistogram H;
  H.record(100);
  uint64_t Huge = LatencyHistogram::MaxTrackable + 12345;
  H.record(Huge);
  EXPECT_EQ(H.saturatedCount(), 1u);
  // A quantile landing in the saturation bucket must report the real
  // recorded max, not a bucket bound.
  EXPECT_EQ(H.quantile(1.0), Huge);
  EXPECT_EQ(H.quantile(0.999), Huge);
  EXPECT_EQ(H.max(), Huge);
}

TEST(LatencyHistogram, BucketBoundsRoundTrip) {
  for (size_t I = 0; I < LatencyHistogram::NumBuckets; ++I) {
    uint64_t Low = LatencyHistogram::bucketLow(I);
    uint64_t High = LatencyHistogram::bucketHigh(I);
    EXPECT_LE(Low, High);
    EXPECT_EQ(LatencyHistogram::bucketOf(Low), I);
    EXPECT_EQ(LatencyHistogram::bucketOf(High), I);
    if (I > 0)
      EXPECT_EQ(LatencyHistogram::bucketHigh(I - 1) + 1, Low)
          << "gap or overlap before bucket " << I;
  }
}

TEST(LatencyHistogram, MergeCombinesEverything) {
  LatencyHistogram A, B, Reference;
  SplitMix64 Rng(29);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = Rng.nextBounded(1u << 24);
    (I % 2 == 0 ? A : B).record(V);
    Reference.record(V);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), Reference.count());
  EXPECT_EQ(A.min(), Reference.min());
  EXPECT_EQ(A.max(), Reference.max());
  EXPECT_EQ(A.mean(), Reference.mean());
  for (double Q : {0.1, 0.5, 0.99})
    EXPECT_EQ(A.quantile(Q), Reference.quantile(Q));
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentityBothWays) {
  LatencyHistogram A, Empty;
  A.record(5);
  A.record(500);
  LatencyHistogram Copy = A;
  A.merge(Empty);
  EXPECT_EQ(A.count(), 2u);
  EXPECT_EQ(A.min(), Copy.min());
  EXPECT_EQ(A.max(), Copy.max());
  Empty.merge(Copy);
  EXPECT_EQ(Empty.count(), 2u);
  EXPECT_EQ(Empty.min(), 5u);
  EXPECT_EQ(Empty.max(), 500u);
}

// Saturated-histogram merge regression (PR-10 satellite).  When the
// merged-in histogram carries saturated samples, the destination must
// preserve the *true* recorded max (not a bucket bound — saturation
// bucket bounds are meaningless), accumulate the saturation count, and
// keep the min from whichever side holds it.
TEST(LatencyHistogram, MergePreservesSaturationTruth) {
  const uint64_t Huge = LatencyHistogram::MaxTrackable + 12345;

  LatencyHistogram A;
  A.record(7);
  A.record(Huge); // A is saturated and owns the true max.
  LatencyHistogram B;
  B.record(100);
  B.record(LatencyHistogram::MaxTrackable + 99); // Saturated, smaller max.

  A.merge(B);
  EXPECT_EQ(A.count(), 4u);
  EXPECT_EQ(A.saturatedCount(), 2u) << "saturation count lost in merge";
  EXPECT_EQ(A.min(), 7u);
  EXPECT_EQ(A.max(), Huge) << "true max clobbered by merged-in bound";
  // The tail quantile lands in the saturation bucket; it must report
  // the surviving true max, exactly as the single-histogram
  // SaturationReportsTrueMax contract requires.
  EXPECT_EQ(A.quantile(1.0), Huge);
  EXPECT_EQ(A.quantile(0.999), Huge);

  // Merging saturated data into an *empty* histogram must adopt the
  // source's max/min wholesale (the Total == 0 branch).
  LatencyHistogram Empty;
  Empty.merge(A);
  EXPECT_EQ(Empty.count(), 4u);
  EXPECT_EQ(Empty.saturatedCount(), 2u);
  EXPECT_EQ(Empty.min(), 7u);
  EXPECT_EQ(Empty.max(), Huge);
  EXPECT_EQ(Empty.quantile(1.0), Huge);

  // And the reverse direction: the side with the *larger* true max
  // merged into the side with the smaller one must win.
  LatencyHistogram C;
  C.record(LatencyHistogram::MaxTrackable + 1);
  C.merge(A);
  EXPECT_EQ(C.saturatedCount(), 3u);
  EXPECT_EQ(C.max(), Huge);
  EXPECT_EQ(C.quantile(1.0), Huge);
}

//===----------------------------------------------------------------------===//
// StatsCounter
//===----------------------------------------------------------------------===//

TEST(StatsCounter, IncrementAndReset) {
  StatsCounter C;
  EXPECT_EQ(C.value(), 0u);
  C.increment();
  C.increment(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(StatsCounter, ConcurrentIncrementsAllLand) {
  StatsCounter C;
  constexpr int Threads = 4;
  constexpr int PerThread = 10000;
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&C] {
      for (int I = 0; I < PerThread; ++I)
        C.increment();
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(C.value(), static_cast<uint64_t>(Threads) * PerThread);
}

TEST(StatsCounter, AttachedThreadsSumExactlyAcrossStripes) {
  // Attached threads write exclusive (plain-store) stripes; the sum must
  // still be exact because registry indices are unique among live
  // threads.  Mix in unattached threads to race the hashed shared
  // stripes against them.
  StatsCounter C;
  ThreadRegistry Registry;
  constexpr int Threads = 8;
  constexpr int PerThread = 10000;
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&C, &Registry, T] {
      std::unique_ptr<ScopedThreadAttachment> Attach;
      if (T % 2)
        Attach = std::make_unique<ScopedThreadAttachment>(Registry, "inc");
      for (int I = 0; I < PerThread; ++I)
        C.increment();
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(C.value(), static_cast<uint64_t>(Threads) * PerThread);
}

TEST(StatsCounter, LargeThreadIndicesShareStripesExactly) {
  // Hold enough attachments live at once to push indices past the
  // exclusive-stripe range; those land in the shared fetch-add region
  // and must still count exactly.
  StatsCounter C;
  ThreadRegistry Registry;
  constexpr uint32_t NumContexts = ThreadStripe::NumExclusive + 8;
  std::vector<ThreadContext> Contexts;
  for (uint32_t I = 0; I < NumContexts; ++I) {
    Contexts.push_back(Registry.attach("wide"));
    ASSERT_TRUE(Contexts.back().isValid());
    C.increment(); // Recorded under the context just attached.
  }
  EXPECT_EQ(C.value(), static_cast<uint64_t>(NumContexts));
  for (auto It = Contexts.rbegin(); It != Contexts.rend(); ++It)
    Registry.detach(*It);
}

TEST(StatsCounter, ResetZeroesEveryStripe) {
  StatsCounter C;
  ThreadRegistry Registry;
  // Populate several distinct stripes: attached workers (exclusive
  // slots) and an unattached worker (hashed shared slot).
  std::vector<std::thread> Workers;
  for (int T = 0; T < 4; ++T)
    Workers.emplace_back([&C, &Registry, T] {
      std::unique_ptr<ScopedThreadAttachment> Attach;
      if (T % 2)
        Attach = std::make_unique<ScopedThreadAttachment>(Registry, "rst");
      C.increment(100);
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(C.value(), 400u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
  C.increment(7);
  EXPECT_EQ(C.value(), 7u);
}

//===----------------------------------------------------------------------===//
// Timer
//===----------------------------------------------------------------------===//

TEST(Timer, MonotonicNanosAdvances) {
  uint64_t A = monotonicNanos();
  uint64_t B = monotonicNanos();
  EXPECT_GE(B, A);
}

TEST(Timer, StopWatchMeasuresSomething) {
  StopWatch Watch;
  volatile uint64_t X = 0;
  for (int I = 0; I < 100000; ++I)
    X = X + 1;
  EXPECT_GT(Watch.elapsedNanos(), 0u);
}

TEST(Timer, MedianElapsedRunsBodyExactly) {
  int Runs = 0;
  medianElapsedNanos(5, [&Runs] { ++Runs; });
  EXPECT_EQ(Runs, 5);
}

//===----------------------------------------------------------------------===//
// SpinWait
//===----------------------------------------------------------------------===//

TEST(SpinWait, BackoffGrowsThenYields) {
  SpinWait Spinner;
  for (int I = 0; I < 10; ++I)
    Spinner.spinOnce();
  EXPECT_GT(Spinner.totalSpins(), 10u);
  EXPECT_GT(Spinner.totalYields(), 0u);
}

TEST(SpinWait, NoYieldInEarlyRounds) {
  SpinWait Spinner;
  for (unsigned I = 0; I < SpinWait::YieldThresholdRound; ++I)
    Spinner.spinOnce();
  EXPECT_EQ(Spinner.totalYields(), 0u);
}

//===----------------------------------------------------------------------===//
// TableFormatter
//===----------------------------------------------------------------------===//

TEST(TableFormatter, AlignsColumns) {
  TableFormatter Table({"name", "value"});
  Table.addRow({"a", "1"});
  Table.addRow({"longer", "12345"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("name   | value"), std::string::npos);
  EXPECT_NE(Out.find("a      |     1"), std::string::npos);
  EXPECT_NE(Out.find("longer | 12345"), std::string::npos);
}

TEST(TableFormatter, FormatWithCommas) {
  EXPECT_EQ(TableFormatter::formatWithCommas(0), "0");
  EXPECT_EQ(TableFormatter::formatWithCommas(999), "999");
  EXPECT_EQ(TableFormatter::formatWithCommas(1000), "1,000");
  EXPECT_EQ(TableFormatter::formatWithCommas(12975639), "12,975,639");
}

TEST(TableFormatter, FormatDouble) {
  EXPECT_EQ(TableFormatter::formatDouble(1.234, 2), "1.23");
  EXPECT_EQ(TableFormatter::formatDouble(22.7, 1), "22.7");
}

TEST(TableFormatter, SeparatorRows) {
  TableFormatter Table({"x"});
  Table.addRow({"1"});
  Table.addSeparator();
  Table.addRow({"2"});
  std::string Out = Table.render();
  // Header separator plus the explicit one.
  size_t First = Out.find("-");
  EXPECT_NE(First, std::string::npos);
}

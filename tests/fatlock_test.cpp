//===- tests/fatlock_test.cpp - Heavy monitor tests -----------------------===//

#include "fatlock/FatLock.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace thinlocks;

namespace {

class FatLockTest : public ::testing::Test {
protected:
  ThreadRegistry Registry;
  FatLock Lock;
  ThreadContext Main;

  void SetUp() override { Main = Registry.attach("main"); }
  void TearDown() override { Registry.detach(Main); }
};

} // namespace

TEST_F(FatLockTest, LockUnlockBasic) {
  EXPECT_EQ(Lock.ownerIndex(), 0);
  Lock.lock(Main);
  EXPECT_TRUE(Lock.heldBy(Main));
  EXPECT_EQ(Lock.ownerIndex(), Main.index());
  EXPECT_EQ(Lock.holdCount(), 1u);
  Lock.unlock(Main);
  EXPECT_FALSE(Lock.heldBy(Main));
  EXPECT_EQ(Lock.ownerIndex(), 0);
}

TEST_F(FatLockTest, RecursiveLockCounts) {
  for (int I = 1; I <= 10; ++I) {
    Lock.lock(Main);
    EXPECT_EQ(Lock.holdCount(), static_cast<uint32_t>(I));
  }
  for (int I = 9; I >= 0; --I) {
    Lock.unlock(Main);
    EXPECT_EQ(Lock.holdCount(), static_cast<uint32_t>(I));
  }
  EXPECT_FALSE(Lock.heldBy(Main));
}

TEST_F(FatLockTest, TryLockSucceedsWhenFree) {
  EXPECT_TRUE(Lock.tryLock(Main));
  EXPECT_TRUE(Lock.tryLock(Main)); // Recursive tryLock also succeeds.
  EXPECT_EQ(Lock.holdCount(), 2u);
  Lock.unlock(Main);
  Lock.unlock(Main);
}

TEST_F(FatLockTest, TryLockFailsWhenHeldByOther) {
  Lock.lock(Main);
  std::thread Other([this] {
    ScopedThreadAttachment Attachment(Registry, "other");
    EXPECT_FALSE(Lock.tryLock(Attachment.context()));
  });
  Other.join();
  Lock.unlock(Main);
}

TEST_F(FatLockTest, UnlockCheckedRejectsNonOwner) {
  Lock.lock(Main);
  std::thread Other([this] {
    ScopedThreadAttachment Attachment(Registry, "other");
    EXPECT_FALSE(Lock.unlockChecked(Attachment.context()));
  });
  Other.join();
  EXPECT_TRUE(Lock.unlockChecked(Main));
  EXPECT_FALSE(Lock.unlockChecked(Main)); // Now unowned.
}

TEST_F(FatLockTest, MutualExclusionUnderContention) {
  constexpr int NumThreads = 4;
  constexpr int PerThread = 5000;
  uint64_t Shared = 0; // Protected by Lock.
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&] {
      ScopedThreadAttachment Attachment(Registry);
      for (int I = 0; I < PerThread; ++I) {
        Lock.lock(Attachment.context());
        ++Shared;
        Lock.unlock(Attachment.context());
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Shared, static_cast<uint64_t>(NumThreads) * PerThread);
  FatLockStats Stats = Lock.stats();
  EXPECT_EQ(Stats.Acquisitions, static_cast<uint64_t>(NumThreads) * PerThread);
}

TEST_F(FatLockTest, EntryIsFifo) {
  Lock.lock(Main);
  std::vector<int> Order;
  std::atomic<int> Started{0};
  std::vector<std::thread> Workers;
  std::mutex OrderMutex;
  for (int T = 0; T < 3; ++T) {
    Workers.emplace_back([&, T] {
      ScopedThreadAttachment Attachment(Registry);
      // Serialize queue entry so arrival order is deterministic.
      while (Started.load() != T)
        std::this_thread::yield();
      Started.store(T); // No-op; keeps intent explicit.
      // Signal arrival by bumping Started after we are provably queued is
      // impossible from outside, so approximate: bump, then lock.
      Started.fetch_add(1);
      Lock.lock(Attachment.context());
      {
        std::lock_guard<std::mutex> Guard(OrderMutex);
        Order.push_back(T);
      }
      Lock.unlock(Attachment.context());
    });
    // Wait until thread T has bumped Started and (very likely) enqueued.
    while (Started.load() != T + 1)
      std::this_thread::yield();
    // Give it time to actually block on the entry queue.
    while (Lock.entryQueueLength() != static_cast<uint32_t>(T + 1))
      std::this_thread::yield();
  }
  Lock.unlock(Main);
  for (auto &W : Workers)
    W.join();
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0], 0);
  EXPECT_EQ(Order[1], 1);
  EXPECT_EQ(Order[2], 2);
}

TEST_F(FatLockTest, WaitReleasesAllHoldsAndRestoresThem) {
  std::atomic<bool> SawUnowned{false};
  std::atomic<bool> WaiterReady{false};

  std::thread Waiter([&] {
    ScopedThreadAttachment Attachment(Registry, "waiter");
    Lock.lock(Attachment.context());
    Lock.lock(Attachment.context());
    Lock.lock(Attachment.context());
    EXPECT_EQ(Lock.holdCount(), 3u);
    WaiterReady.store(true);
    FatLock::WaitResult Result = Lock.wait(Attachment.context());
    EXPECT_EQ(Result, FatLock::WaitResult::Notified);
    // All three holds restored after reacquisition.
    EXPECT_EQ(Lock.holdCount(), 3u);
    EXPECT_TRUE(Lock.heldBy(Attachment.context()));
    Lock.unlock(Attachment.context());
    Lock.unlock(Attachment.context());
    Lock.unlock(Attachment.context());
  });

  while (!WaiterReady.load() || Lock.waitSetSize() == 0)
    std::this_thread::yield();

  // While the waiter sleeps, the monitor must be free to acquire.
  Lock.lock(Main);
  SawUnowned.store(true);
  EXPECT_TRUE(Lock.notify(Main));
  Lock.unlock(Main);

  Waiter.join();
  EXPECT_TRUE(SawUnowned.load());
}

TEST_F(FatLockTest, TimedWaitTimesOut) {
  Lock.lock(Main);
  auto Start = std::chrono::steady_clock::now();
  FatLock::WaitResult Result =
      Lock.wait(Main, /*TimeoutNanos=*/20'000'000); // 20ms
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_EQ(Result, FatLock::WaitResult::TimedOut);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(Elapsed)
                .count(),
            15);
  EXPECT_TRUE(Lock.heldBy(Main)); // Reacquired after timeout.
  EXPECT_EQ(Lock.stats().Timeouts, 1u);
  Lock.unlock(Main);
}

TEST_F(FatLockTest, NotifyWithoutWaitersReturnsFalse) {
  Lock.lock(Main);
  EXPECT_FALSE(Lock.notify(Main));
  EXPECT_EQ(Lock.notifyAll(Main), 0u);
  Lock.unlock(Main);
}

TEST_F(FatLockTest, NotifyWakesExactlyOneInFifoOrder) {
  constexpr int NumWaiters = 3;
  std::vector<int> WakeOrder;
  std::mutex OrderMutex;
  std::vector<std::thread> Waiters;
  std::atomic<int> Queued{0};

  for (int T = 0; T < NumWaiters; ++T) {
    Waiters.emplace_back([&, T] {
      ScopedThreadAttachment Attachment(Registry);
      Lock.lock(Attachment.context());
      Queued.fetch_add(1);
      Lock.wait(Attachment.context());
      {
        std::lock_guard<std::mutex> Guard(OrderMutex);
        WakeOrder.push_back(T);
      }
      Lock.unlock(Attachment.context());
    });
    // Ensure FIFO arrival into the wait set.
    while (Lock.waitSetSize() != static_cast<uint32_t>(T + 1))
      std::this_thread::yield();
  }
  EXPECT_EQ(Queued.load(), NumWaiters);

  for (int T = 0; T < NumWaiters; ++T) {
    Lock.lock(Main);
    EXPECT_TRUE(Lock.notify(Main));
    Lock.unlock(Main);
    // Wait for the woken thread to finish before the next notify.
    while (true) {
      std::lock_guard<std::mutex> Guard(OrderMutex);
      if (WakeOrder.size() == static_cast<size_t>(T + 1))
        break;
    }
  }
  for (auto &W : Waiters)
    W.join();
  ASSERT_EQ(WakeOrder.size(), 3u);
  EXPECT_EQ(WakeOrder[0], 0);
  EXPECT_EQ(WakeOrder[1], 1);
  EXPECT_EQ(WakeOrder[2], 2);
}

TEST_F(FatLockTest, NotifyAllWakesEveryWaiter) {
  constexpr int NumWaiters = 4;
  std::atomic<int> Woken{0};
  std::vector<std::thread> Waiters;
  for (int T = 0; T < NumWaiters; ++T) {
    Waiters.emplace_back([&] {
      ScopedThreadAttachment Attachment(Registry);
      Lock.lock(Attachment.context());
      FatLock::WaitResult Result = Lock.wait(Attachment.context());
      EXPECT_EQ(Result, FatLock::WaitResult::Notified);
      Woken.fetch_add(1);
      Lock.unlock(Attachment.context());
    });
  }
  while (Lock.waitSetSize() != NumWaiters)
    std::this_thread::yield();
  Lock.lock(Main);
  EXPECT_EQ(Lock.notifyAll(Main), static_cast<uint32_t>(NumWaiters));
  Lock.unlock(Main);
  for (auto &W : Waiters)
    W.join();
  EXPECT_EQ(Woken.load(), NumWaiters);
  EXPECT_EQ(Lock.waitSetSize(), 0u);
}

TEST_F(FatLockTest, LockWithCountTransfersNesting) {
  Lock.lockWithCount(Main, 257);
  EXPECT_TRUE(Lock.heldBy(Main));
  EXPECT_EQ(Lock.holdCount(), 257u);
  for (int I = 0; I < 257; ++I)
    Lock.unlock(Main);
  EXPECT_FALSE(Lock.heldBy(Main));
}

TEST_F(FatLockTest, StatsCountContention) {
  Lock.lock(Main);
  std::thread Other([this] {
    ScopedThreadAttachment Attachment(Registry);
    Lock.lock(Attachment.context());
    Lock.unlock(Attachment.context());
  });
  while (Lock.entryQueueLength() == 0)
    std::this_thread::yield();
  Lock.unlock(Main);
  Other.join();
  FatLockStats Stats = Lock.stats();
  EXPECT_EQ(Stats.Acquisitions, 2u);
  EXPECT_EQ(Stats.ContendedAcquisitions, 1u);
}

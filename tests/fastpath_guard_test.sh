#!/usr/bin/env bash
# Regression test for tools/lint/fastpath_guard.py.
#
# Two halves:
#   1. Positive: compile core/ThinLock.cpp and protocols/FissileLock.cpp
#      exactly as the release build does (-O2, no instrumentation) and
#      assert the guard passes against the committed budget.
#      Recompiling here — instead of reusing the current preset's
#      objects — keeps the test meaningful under the tsan/ubsan presets,
#      whose instrumented codegen is not what the guard polices.
#   2. Negative: recompile ThinLock.cpp with
#      -DTHINLOCKS_FASTPATH_GUARD_PROBE, which injects an opaque
#      external call into the lock/unlock fast path, and assert the
#      guard FAILS and names the call (the clean Fissile object rides
#      along, proving one bad object poisons the whole verdict).  This
#      proves the guard actually detects the regression class it exists
#      for.
#
# Usage: fastpath_guard_test.sh <cxx> <src-dir> <guard.py>
set -u

CXX=${1:?usage: fastpath_guard_test.sh <cxx> <src-dir> <guard.py>}
SRC=${2:?missing src dir}
GUARD=${3:?missing guard script}

command -v python3 >/dev/null || { echo "SKIP: python3 not found"; exit 77; }
command -v objdump >/dev/null || { echo "SKIP: objdump not found"; exit 77; }

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

CXXFLAGS="-std=c++20 -O2 -I$SRC"

echo "== positive: clean -O2 objects pass the guard =="
"$CXX" $CXXFLAGS -c "$SRC/core/ThinLock.cpp" -o "$WORK/clean.o" \
  || { echo "FAIL: could not compile ThinLock.cpp"; exit 1; }
"$CXX" $CXXFLAGS -c "$SRC/protocols/FissileLock.cpp" -o "$WORK/fissile.o" \
  || { echo "FAIL: could not compile FissileLock.cpp"; exit 1; }
if ! python3 "$GUARD" --object "$WORK/clean.o" --object "$WORK/fissile.o"; then
  echo "FAIL: guard rejected a clean fast path"
  exit 1
fi

echo "== negative: probe-injected call must be caught =="
"$CXX" $CXXFLAGS -DTHINLOCKS_FASTPATH_GUARD_PROBE \
  -c "$SRC/core/ThinLock.cpp" -o "$WORK/probe.o" \
  || { echo "FAIL: could not compile probe object"; exit 1; }
OUT=$(python3 "$GUARD" --object "$WORK/probe.o" --object "$WORK/fissile.o" 2>&1)
STATUS=$?
echo "$OUT"
if [ "$STATUS" -eq 0 ]; then
  echo "FAIL: guard passed an object with a call injected into the fast path"
  exit 1
fi
if ! echo "$OUT" | grep -q "call instruction"; then
  echo "FAIL: guard failed for the wrong reason (expected a call-instruction finding)"
  exit 1
fi

echo "PASS: guard accepts the clean fast path and rejects the injected call"

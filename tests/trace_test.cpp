//===- tests/trace_test.cpp - Trace record & replay tests -----------------===//

#include "workload/Trace.h"

#include "baselines/MonitorCache.h"
#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"
#include "vm/VM.h"
#include "workload/MicroBench.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace thinlocks;
using namespace thinlocks::workload;

namespace {

class TraceTest : public ::testing::Test {
protected:
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockManager Locks{Monitors};
  std::unique_ptr<SyncBackend> Backend = makeSyncBackend(Locks);
  LockTrace Trace;
  TracingBackend Tracer{*Backend, Trace};
  ThreadContext Main;
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    Main = Registry.attach("main");
    Class = &TheHeap.classes().registerClass("T", 0);
  }
  void TearDown() override { Registry.detach(Main); }
};

} // namespace

TEST_F(TraceTest, RecordsLockUnlockPairs) {
  Object *A = TheHeap.allocate(*Class);
  Object *B = TheHeap.allocate(*Class);
  Tracer.lock(A, Main);
  Tracer.lock(B, Main);
  Tracer.unlock(B, Main);
  Tracer.unlock(A, Main);

  ASSERT_EQ(Trace.size(), 4u);
  EXPECT_EQ(Trace.events()[0].Op, TraceEvent::Kind::Lock);
  EXPECT_EQ(Trace.events()[0].ObjectId, 0u); // A interned first.
  EXPECT_EQ(Trace.events()[1].ObjectId, 1u); // B second.
  EXPECT_EQ(Trace.events()[3].ObjectId, 0u);
  EXPECT_EQ(Trace.objectCount(), 2u);
  EXPECT_EQ(Trace.threadCount(), 1u);
  EXPECT_EQ(Trace.lockOperationCount(), 2u);
}

TEST_F(TraceTest, ForwardsToUnderlyingProtocol) {
  Object *Obj = TheHeap.allocate(*Class);
  Tracer.lock(Obj, Main);
  EXPECT_TRUE(Locks.holdsLock(Obj, Main)); // Real lock state changed.
  EXPECT_TRUE(Tracer.holdsLock(Obj, Main));
  EXPECT_EQ(Tracer.lockDepth(Obj, Main), 1u);
  Tracer.unlock(Obj, Main);
  EXPECT_FALSE(Locks.holdsLock(Obj, Main));
}

TEST_F(TraceTest, FailedUnlockCheckedIsNotRecorded) {
  Object *Obj = TheHeap.allocate(*Class);
  EXPECT_FALSE(Tracer.unlockChecked(Obj, Main));
  EXPECT_TRUE(Trace.empty());
}

TEST_F(TraceTest, DepthMixSimulatesNesting) {
  Object *Obj = TheHeap.allocate(*Class);
  // 2 sequences: depth-1 then depth-3 -> ops at depth 1,1,2,3.
  Tracer.lock(Obj, Main);
  Tracer.unlock(Obj, Main);
  Tracer.lock(Obj, Main);
  Tracer.lock(Obj, Main);
  Tracer.lock(Obj, Main);
  Tracer.unlock(Obj, Main);
  Tracer.unlock(Obj, Main);
  Tracer.unlock(Obj, Main);

  double Mix[4];
  Trace.depthMix(Mix);
  EXPECT_DOUBLE_EQ(Mix[0], 0.5);  // 2 of 4 at depth 1
  EXPECT_DOUBLE_EQ(Mix[1], 0.25); // 1 of 4 at depth 2
  EXPECT_DOUBLE_EQ(Mix[2], 0.25); // 1 of 4 at depth 3
  EXPECT_DOUBLE_EQ(Mix[3], 0.0);
}

TEST_F(TraceTest, SaveLoadRoundTrips) {
  Object *A = TheHeap.allocate(*Class);
  Object *B = TheHeap.allocate(*Class);
  Tracer.lock(A, Main);
  Tracer.lock(B, Main);
  Tracer.wait(B, Main, 1000);
  Tracer.notify(B, Main);
  Tracer.notifyAll(B, Main);
  Tracer.unlock(B, Main);
  Tracer.unlock(A, Main);

  std::stringstream Stream;
  Trace.save(Stream);
  LockTrace Loaded;
  ASSERT_TRUE(Loaded.load(Stream));
  EXPECT_TRUE(Loaded == Trace);
  EXPECT_EQ(Loaded.objectCount(), Trace.objectCount());
}

TEST_F(TraceTest, LoadRejectsMalformedInput) {
  LockTrace Loaded;
  std::stringstream BadCode("X 0 1\n");
  EXPECT_FALSE(Loaded.load(BadCode));
  std::stringstream Truncated("L 0\n");
  EXPECT_FALSE(Loaded.load(Truncated));
  std::stringstream BadThread("L 0 99999\n");
  EXPECT_FALSE(Loaded.load(BadThread));
  std::stringstream Fine("L 0 1\nU 0 1\n\n");
  EXPECT_TRUE(Loaded.load(Fine));
  EXPECT_EQ(Loaded.size(), 2u);
}

TEST_F(TraceTest, ReplayReproducesLockStateEffects) {
  // Record a nesting-rich session...
  Object *A = TheHeap.allocate(*Class);
  Object *B = TheHeap.allocate(*Class);
  for (int I = 0; I < 10; ++I) {
    Tracer.lock(A, Main);
    Tracer.lock(A, Main);
    Tracer.lock(B, Main);
    Tracer.unlock(B, Main);
    Tracer.unlock(A, Main);
    Tracer.unlock(A, Main);
  }

  // ...replay it on a fresh protocol + instrumented stats.
  MonitorTable FreshMonitors;
  LockStats Stats;
  ThinLockManager Fresh(FreshMonitors, &Stats);
  Heap FreshHeap;
  TraceReplayResult Result =
      replayTrace(Trace, Fresh, FreshHeap, Main);
  EXPECT_EQ(Result.EventsReplayed, Trace.size());
  EXPECT_EQ(Result.SkippedEvents, 0u);
  EXPECT_EQ(Stats.totalAcquisitions(), 30u); // 3 locks x 10 rounds
  EXPECT_EQ(Stats.totalReleases(), 30u);
  EXPECT_EQ(Stats.depthBucket(1), 10u); // The nested A locks.
}

TEST_F(TraceTest, ReplayWorksAcrossProtocols) {
  Object *Obj = TheHeap.allocate(*Class);
  for (int I = 0; I < 50; ++I) {
    Tracer.lock(Obj, Main);
    Tracer.unlock(Obj, Main);
  }
  {
    MonitorCache Cache(16);
    Heap FreshHeap;
    TraceReplayResult Result =
        replayTrace(Trace, Cache, FreshHeap, Main);
    EXPECT_EQ(Result.SkippedEvents, 0u);
    EXPECT_EQ(Result.EventsReplayed, 100u);
  }
}

TEST_F(TraceTest, VmExecutionCanBeTraced) {
  // Route a VM's interpreter synchronization through a recorder and
  // characterize the interpreted NestedSync micro-benchmark.
  vm::VM Vm;
  LockTrace VmTrace;
  TracingBackend VmTracer(Vm.sync(), VmTrace);
  Vm.overrideSync(&VmTracer);

  MicroPrograms Programs = buildMicroPrograms(Vm);
  ScopedThreadAttachment VmMain(Vm.threads(), "vm");
  Object *Target = Vm.newInstance(*Programs.BenchKlass);
  runMicroProgram(Vm, *Programs.NestedSync, 20, Target, VmMain.context());
  Vm.overrideSync(nullptr);

  // NestedSync: 1 outer lock + 20 inner (depth 2) locks + unlocks.
  EXPECT_EQ(VmTrace.lockOperationCount(), 21u);
  double Mix[4];
  VmTrace.depthMix(Mix);
  EXPECT_NEAR(Mix[1], 20.0 / 21.0, 1e-9);
  EXPECT_EQ(VmTrace.objectCount(), 1u);

  // The recorded trace replays on a fresh protocol with zero skips.
  MonitorTable FreshMonitors;
  ThinLockManager Fresh(FreshMonitors);
  Heap FreshHeap;
  TraceReplayResult Result = replayTrace(VmTrace, Fresh, FreshHeap, Main);
  EXPECT_EQ(Result.SkippedEvents, 0u);
}

TEST_F(TraceTest, CharacterizationMatchesFigure3Style) {
  // An 80/20-style session: 80% first locks, 20% second locks.
  Object *Obj = TheHeap.allocate(*Class);
  for (int I = 0; I < 100; ++I) {
    if (I % 4 == 0) { // 25 sequences of depth 2 -> 25 second locks
      Tracer.lock(Obj, Main);
      Tracer.lock(Obj, Main);
      Tracer.unlock(Obj, Main);
      Tracer.unlock(Obj, Main);
    } else { // 75 sequences of depth 1
      Tracer.lock(Obj, Main);
      Tracer.unlock(Obj, Main);
    }
  }
  double Mix[4];
  Trace.depthMix(Mix);
  EXPECT_NEAR(Mix[0], 100.0 / 125.0, 1e-9);
  EXPECT_NEAR(Mix[1], 25.0 / 125.0, 1e-9);
  EXPECT_EQ(Trace.lockOperationCount(), 125u);
}

//===- tests/obs_test.cpp - Lock-event observability tests ----------------===//
//
// Covers the obs layer end to end: event word packing, EventRing
// wraparound and torn-slot discipline, ring recycling across thread
// detach/attach, the tracing-off guarantee (no events recorded, ever),
// the hot-lock profiler's ranking, and the Chrome trace exporter round-
// tripping through its own schema validator (plus the validator's
// rejection cases).
//
//===----------------------------------------------------------------------===//

#include "obs/ChromeTrace.h"
#include "obs/EventRing.h"
#include "obs/LockEventCollector.h"

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace thinlocks;

namespace {

/// Builds a ContendedAcquire event (the fully-populated kind).
obs::LockEvent contendedEvent(uint64_t Addr, uint16_t Tid, uint64_t Time,
                              uint64_t BlockedNanos, uint16_t QueueDepth,
                              uint32_t ClassIndex = 0) {
  obs::LockEvent E;
  E.Kind = obs::EventKind::ContendedAcquire;
  E.ObjectAddr = Addr;
  E.ThreadIndex = Tid;
  E.TimeNanos = Time;
  E.Arg = BlockedNanos;
  E.Extra = QueueDepth;
  E.ClassIndex = ClassIndex;
  return E;
}

} // namespace

//===----------------------------------------------------------------------===//
// Event packing
//===----------------------------------------------------------------------===//

TEST(LockEventTest, PackMetaRoundTrips) {
  uint64_t Meta = obs::LockEvent::packMeta(obs::EventKind::Wait,
                                           /*ThreadIndex=*/32767,
                                           /*ClassIndex=*/0xABCDEF,
                                           /*Extra=*/0xBEEF);
  obs::LockEvent E = obs::LockEvent::unpack(123, 456, Meta, 789);
  EXPECT_EQ(E.Kind, obs::EventKind::Wait);
  EXPECT_EQ(E.ThreadIndex, 32767u);
  EXPECT_EQ(E.ClassIndex, 0xABCDEFu);
  EXPECT_EQ(E.Extra, 0xBEEFu);
  EXPECT_EQ(E.TimeNanos, 123u);
  EXPECT_EQ(E.ObjectAddr, 456u);
  EXPECT_EQ(E.Arg, 789u);
}

TEST(LockEventTest, ClassIndexTruncatesTo24Bits) {
  uint64_t Meta = obs::LockEvent::packMeta(obs::EventKind::Inflate, 1,
                                           0xFF123456u, 0);
  EXPECT_EQ(obs::LockEvent::unpack(0, 0, Meta, 0).ClassIndex, 0x123456u);
}

TEST(LockEventTest, KindAndCauseNamesAreStable) {
  EXPECT_STREQ(obs::eventKindName(obs::EventKind::ContendedAcquire),
               "contended-acquire");
  EXPECT_STREQ(obs::inflateCauseName(obs::InflateCause::Overflow),
               "overflow");
}

//===----------------------------------------------------------------------===//
// EventRing
//===----------------------------------------------------------------------===//

TEST(EventRingTest, DeliversRecordedEventsInOrder) {
  obs::EventRing Ring(/*Capacity=*/16);
  for (uint64_t I = 0; I < 5; ++I)
    Ring.record(contendedEvent(0x1000 + I, 1, /*Time=*/I, /*Blocked=*/I, 0));
  std::vector<obs::LockEvent> Seen;
  EXPECT_EQ(Ring.drain([&](const obs::LockEvent &E) { Seen.push_back(E); }),
            5u);
  ASSERT_EQ(Seen.size(), 5u);
  for (uint64_t I = 0; I < 5; ++I)
    EXPECT_EQ(Seen[I].ObjectAddr, 0x1000 + I);
  EXPECT_EQ(Ring.droppedEvents(), 0u);
}

TEST(EventRingTest, WraparoundKeepsNewestAndCountsDropped) {
  obs::EventRing Ring(/*Capacity=*/8);
  for (uint64_t I = 0; I < 20; ++I)
    Ring.record(contendedEvent(/*Addr=*/I, 1, I, 0, 0));
  std::vector<obs::LockEvent> Seen;
  EXPECT_EQ(Ring.drain([&](const obs::LockEvent &E) { Seen.push_back(E); }),
            8u);
  // The writer lapped the reader 12 events ago; the newest 8 survive.
  ASSERT_EQ(Seen.size(), 8u);
  for (uint64_t I = 0; I < 8; ++I)
    EXPECT_EQ(Seen[I].ObjectAddr, 12 + I);
  EXPECT_EQ(Ring.droppedEvents(), 12u);
  EXPECT_EQ(Ring.recordedEvents(), 20u);
}

TEST(EventRingTest, SecondDrainDeliversOnlyNewEvents) {
  obs::EventRing Ring(/*Capacity=*/16);
  Ring.record(contendedEvent(1, 1, 1, 0, 0));
  Ring.record(contendedEvent(2, 1, 2, 0, 0));
  size_t First = Ring.drain([](const obs::LockEvent &) {});
  EXPECT_EQ(First, 2u);
  Ring.record(contendedEvent(3, 1, 3, 0, 0));
  std::vector<obs::LockEvent> Seen;
  EXPECT_EQ(Ring.drain([&](const obs::LockEvent &E) { Seen.push_back(E); }),
            1u);
  ASSERT_EQ(Seen.size(), 1u);
  EXPECT_EQ(Seen[0].ObjectAddr, 3u);
}

TEST(EventRingTest, EmptyRingNeverAllocatesAndDrainsNothing) {
  obs::EventRing Ring;
  EXPECT_EQ(Ring.drain([](const obs::LockEvent &) { FAIL(); }), 0u);
  EXPECT_EQ(Ring.recordedEvents(), 0u);
}

//===----------------------------------------------------------------------===//
// Ring recycling through the registry
//===----------------------------------------------------------------------===//

TEST(ObsRegistryTest, RecycledIndexReusesRingAndKeepsOldEvents) {
  ThreadRegistry Registry;
  obs::LockEventCollector Collector(Registry);

  ThreadContext First = Registry.attach("first");
  uint16_t Index = First.index();
  obs::EventRing *Ring = First.eventRing();
  ASSERT_NE(Ring, nullptr);
  Ring->record(contendedEvent(0xAAAA, First.index(), 1, 10, 0));
  Registry.detach(First);

  // LIFO recycling hands the same index — and therefore the same ring —
  // to the next attacher; the detached thread's events stay drainable
  // and self-identify via their embedded thread index.
  ThreadContext Second = Registry.attach("second");
  EXPECT_EQ(Second.index(), Index);
  EXPECT_EQ(Second.eventRing(), Ring);
  Second.eventRing()->record(
      contendedEvent(0xBBBB, Second.index(), 2, 20, 0));
  Registry.detach(Second);

  EXPECT_EQ(Collector.drain(), 2u);
  std::vector<obs::LockEvent> Events = Collector.events();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].ObjectAddr, 0xAAAAu);
  EXPECT_EQ(Events[1].ObjectAddr, 0xBBBBu);
  EXPECT_EQ(Events[0].ThreadIndex, Index);
  EXPECT_EQ(Events[1].ThreadIndex, Index);
}

//===----------------------------------------------------------------------===//
// Tracing-off guarantee
//===----------------------------------------------------------------------===//

TEST(ObsTracingTest, EventsOffModeRecordsNothing) {
  obs::setTracing(false);
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockManager Locks(Monitors);
  Heap TheHeap;
  obs::LockEventCollector Collector(Registry);
  const ClassInfo &Class = TheHeap.classes().registerClass("Quiet", 0);

  ThreadContext Main = Registry.attach("main");
  // Exercise inflating paths (count overflow, a wait, a contender) with
  // tracing off: nothing may reach any ring.
  Object *Obj = TheHeap.allocate(Class);
  for (int I = 0; I < 257; ++I)
    Locks.lock(Obj, Main);
  for (int I = 0; I < 257; ++I)
    Locks.unlock(Obj, Main);
  EXPECT_TRUE(Locks.isInflated(Obj));
  std::thread Contender([&] {
    ScopedThreadAttachment Attachment(Registry, "contender");
    Locks.lock(Obj, Attachment.context());
    Locks.unlock(Obj, Attachment.context());
  });
  Contender.join();
  Registry.detach(Main);

  EXPECT_EQ(Collector.drain(), 0u);
  EXPECT_EQ(Collector.totalEvents(), 0u);
  EXPECT_EQ(Collector.droppedEvents(), 0u);

  // Flip tracing on: the same overflow path now emits an Inflate.
  obs::setTracing(true);
  ThreadContext Again = Registry.attach("again");
  Object *Loud = TheHeap.allocate(Class);
  for (int I = 0; I < 257; ++I)
    Locks.lock(Loud, Again);
  for (int I = 0; I < 257; ++I)
    Locks.unlock(Loud, Again);
  Registry.detach(Again);
  obs::setTracing(false);

  EXPECT_GE(Collector.drain(), 1u);
  bool SawInflate = false;
  for (const obs::LockEvent &E : Collector.events())
    if (E.Kind == obs::EventKind::Inflate &&
        E.ObjectAddr == reinterpret_cast<uint64_t>(Loud)) {
      SawInflate = true;
      EXPECT_EQ(E.Arg,
                static_cast<uint64_t>(obs::InflateCause::Overflow));
    }
  EXPECT_TRUE(SawInflate);
}

//===----------------------------------------------------------------------===//
// Hot-lock profiler
//===----------------------------------------------------------------------===//

TEST(ObsCollectorTest, TopLocksRanksByBlockedTime) {
  ThreadRegistry Registry;
  obs::LockEventCollector Collector(Registry);
  ThreadContext Main = Registry.attach("main");
  obs::EventRing *Ring = Main.eventRing();

  // 0x2000 blocks longest (one big stall); 0x1000 is acquired more
  // often but cheaply; 0x3000 only parks.
  Ring->record(contendedEvent(0x1000, Main.index(), 1, 100, 1));
  Ring->record(contendedEvent(0x1000, Main.index(), 2, 100, 3));
  Ring->record(contendedEvent(0x1000, Main.index(), 3, 100, 2));
  Ring->record(contendedEvent(0x2000, Main.index(), 4, 90000, 7));
  obs::LockEvent Park;
  Park.Kind = obs::EventKind::Park;
  Park.ObjectAddr = 0x3000;
  Park.ThreadIndex = Main.index();
  Park.Arg = 50;
  Ring->record(Park);
  Registry.detach(Main);

  EXPECT_EQ(Collector.drain(), 5u);
  std::vector<obs::HotLockEntry> Top = Collector.topLocks(3);
  ASSERT_EQ(Top.size(), 3u);
  EXPECT_EQ(Top[0].ObjectAddr, 0x2000u);
  EXPECT_EQ(Top[0].BlockedNanos, 90000u);
  EXPECT_EQ(Top[0].MaxQueueDepth, 7u);
  EXPECT_EQ(Top[1].ObjectAddr, 0x1000u);
  EXPECT_EQ(Top[1].ContendedAcquires, 3u);
  EXPECT_EQ(Top[1].MaxQueueDepth, 3u);
  EXPECT_EQ(Top[2].ObjectAddr, 0x3000u);
  EXPECT_EQ(Top[2].Parks, 1u);

  std::string Table = Collector.formatTopLocks(3);
  EXPECT_NE(Table.find("0x2000"), std::string::npos);
  EXPECT_NE(Table.find("blocked_us"), std::string::npos);
}

TEST(ObsCollectorTest, RetentionCapFeedsAggregateButDropsTimeline) {
  ThreadRegistry Registry;
  obs::LockEventCollector Collector(Registry, /*MaxRetainedEvents=*/4);
  ThreadContext Main = Registry.attach("main");
  for (uint64_t I = 0; I < 10; ++I)
    Main.eventRing()->record(
        contendedEvent(0x4000, Main.index(), I, 10, 0));
  Registry.detach(Main);

  EXPECT_EQ(Collector.drain(), 10u);
  EXPECT_EQ(Collector.events().size(), 4u);
  EXPECT_EQ(Collector.totalEvents(), 10u);
  EXPECT_EQ(Collector.droppedEvents(), 6u);
  std::vector<obs::HotLockEntry> Top = Collector.topLocks(1);
  ASSERT_EQ(Top.size(), 1u);
  // The aggregate saw all ten even though the timeline kept four.
  EXPECT_EQ(Top[0].ContendedAcquires, 10u);
}

TEST(ObsCollectorTest, TopClassesRollsUpAndBreaksTies) {
  ThreadRegistry Registry;
  obs::LockEventCollector Collector(Registry);
  ThreadContext Main = Registry.attach("main");
  obs::EventRing *Ring = Main.eventRing();

  // Class 7: two objects, 300ns blocked total, 2 contended acquires.
  Ring->record(contendedEvent(0x1000, Main.index(), 1, 100, 2, /*Class=*/7));
  Ring->record(contendedEvent(0x1100, Main.index(), 2, 200, 5, /*Class=*/7));
  // Class 3: one object, same 300ns blocked but 3 contended acquires —
  // the tie on blocked time must break toward more contention.
  Ring->record(contendedEvent(0x2000, Main.index(), 3, 100, 1, /*Class=*/3));
  Ring->record(contendedEvent(0x2000, Main.index(), 4, 100, 1, /*Class=*/3));
  Ring->record(contendedEvent(0x2000, Main.index(), 5, 100, 1, /*Class=*/3));
  // Classes 9 and 4: identical in every ranked dimension — the final
  // tie-break is ascending class index, so the order is deterministic.
  Ring->record(contendedEvent(0x3000, Main.index(), 6, 50, 1, /*Class=*/9));
  Ring->record(contendedEvent(0x4000, Main.index(), 7, 50, 1, /*Class=*/4));
  Registry.detach(Main);

  EXPECT_EQ(Collector.drain(), 7u);
  std::vector<obs::HotClassEntry> Top = Collector.topClasses(10);
  ASSERT_EQ(Top.size(), 4u);
  EXPECT_EQ(Top[0].ClassIndex, 3u); // 300ns, 3 contended.
  EXPECT_EQ(Top[0].Objects, 1u);
  EXPECT_EQ(Top[0].ContendedAcquires, 3u);
  EXPECT_EQ(Top[1].ClassIndex, 7u); // 300ns, 2 contended.
  EXPECT_EQ(Top[1].Objects, 2u);
  EXPECT_EQ(Top[1].BlockedNanos, 300u);
  EXPECT_EQ(Top[1].MaxQueueDepth, 5u);
  EXPECT_EQ(Top[2].ClassIndex, 4u); // Tied with 9: lower index first.
  EXPECT_EQ(Top[3].ClassIndex, 9u);

  // The cap truncates after ranking.
  EXPECT_EQ(Collector.topClasses(1).size(), 1u);
  EXPECT_EQ(Collector.topClasses(1)[0].ClassIndex, 3u);
}

TEST(ObsCollectorTest, TopClassesReattributesRecycledAddresses) {
  ThreadRegistry Registry;
  obs::LockEventCollector Collector(Registry);
  ThreadContext Main = Registry.attach("main");
  obs::EventRing *Ring = Main.eventRing();

  // One address lives two lives: first as class 1, then (after the
  // allocator recycles it) as class 2.  Each incarnation must count as
  // an object of its own class, and class 1 must keep the history its
  // incarnation caused rather than having it migrate to class 2.
  Ring->record(contendedEvent(0x5000, Main.index(), 1, 100, 1, /*Class=*/1));
  Registry.detach(Main);
  EXPECT_EQ(Collector.drain(), 1u);

  ThreadContext Again = Registry.attach("again");
  Again.eventRing()->record(
      contendedEvent(0x5000, Again.index(), 2, 40, 1, /*Class=*/2));
  Registry.detach(Again);
  EXPECT_EQ(Collector.drain(), 1u);

  std::vector<obs::HotClassEntry> Top = Collector.topClasses(10);
  ASSERT_EQ(Top.size(), 2u);
  EXPECT_EQ(Top[0].ClassIndex, 1u);
  EXPECT_EQ(Top[0].Objects, 1u);
  EXPECT_EQ(Top[0].BlockedNanos, 100u);
  EXPECT_EQ(Top[1].ClassIndex, 2u);
  EXPECT_EQ(Top[1].Objects, 1u);
  EXPECT_EQ(Top[1].BlockedNanos, 40u);

  // The per-object row follows the newest incarnation.
  std::vector<obs::HotLockEntry> Objects = Collector.topLocks(1);
  ASSERT_EQ(Objects.size(), 1u);
  EXPECT_EQ(Objects[0].ClassIndex, 2u);
}

//===----------------------------------------------------------------------===//
// Chrome trace exporter + validator
//===----------------------------------------------------------------------===//

TEST(ChromeTraceTest, ExportedTraceRoundTripsThroughValidator) {
  std::vector<obs::LockEvent> Events;
  Events.push_back(contendedEvent(0x1000, 2, /*Time=*/5000, /*Blocked=*/3000,
                                  /*Queue=*/2));
  obs::LockEvent Inflate;
  Inflate.Kind = obs::EventKind::Inflate;
  Inflate.ObjectAddr = 0x1000;
  Inflate.ThreadIndex = 2;
  Inflate.TimeNanos = 6000;
  Inflate.Arg = static_cast<uint64_t>(obs::InflateCause::Contention);
  Events.push_back(Inflate);
  obs::LockEvent Park;
  Park.Kind = obs::EventKind::Park;
  Park.ObjectAddr = 0x1000;
  Park.ThreadIndex = 3;
  Park.TimeNanos = 9000;
  Park.Arg = 2500;
  Events.push_back(Park);

  std::string Json = obs::toChromeTraceJson(Events);
  std::string Error;
  EXPECT_TRUE(obs::validateChromeTraceJson(Json, &Error)) << Error;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("contended-acquire"), std::string::npos);
}

TEST(ChromeTraceTest, EmptyTraceIsValid) {
  std::string Json = obs::toChromeTraceJson({});
  std::string Error;
  EXPECT_TRUE(obs::validateChromeTraceJson(Json, &Error)) << Error;
}

TEST(ChromeTraceTest, ValidatorRejectsMalformedInput) {
  std::string Error;
  // Truncated JSON.
  EXPECT_FALSE(obs::validateChromeTraceJson("{\"traceEvents\":[", &Error));
  // Parses, but the top level must be an object.
  EXPECT_FALSE(obs::validateChromeTraceJson("[]", &Error));
  // Missing traceEvents.
  EXPECT_FALSE(obs::validateChromeTraceJson("{}", &Error));
  // Event records need a numeric ts and a one-char ph.
  EXPECT_FALSE(obs::validateChromeTraceJson(
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"XX\",\"ts\":0,"
      "\"pid\":1,\"tid\":1}]}",
      &Error));
  EXPECT_FALSE(obs::validateChromeTraceJson(
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\"ts\":\"no\","
      "\"pid\":1,\"tid\":1}]}",
      &Error));
  // "X" duration events require a non-negative dur.
  EXPECT_FALSE(obs::validateChromeTraceJson(
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0,"
      "\"pid\":1,\"tid\":1,\"dur\":-4}]}",
      &Error));
  // Trailing garbage after a valid document.
  EXPECT_FALSE(
      obs::validateChromeTraceJson("{\"traceEvents\":[]} trailing", &Error));
}

//===- tests/txn_test.cpp - Transactional scenario engine -----------------===//
//
// Covers src/txn/ (DESIGN.md §15): the ConflictPolicy strategies
// (NoWait / WaitDie / Validated), the access-set draw, the engine's
// accounting and serializability spot-checks, wait-die ordering
// invariants, the thin-lock Deadlock verdict as a precise abort signal,
// and the no-lost-locks contract on every abort path (ownership-audited,
// under failpoints when compiled in).  Suite names all carry "Txn" so
// the CI TSan job's regex picks the whole file up.
//
//===----------------------------------------------------------------------===//

#include "core/OwnershipAudit.h"
#include "core/ProtocolRegistry.h"
#include "support/FailPoint.h"
#include "support/Timer.h"
#include "txn/TxnEngine.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

using namespace thinlocks;
using namespace thinlocks::txn;

namespace {

//===----------------------------------------------------------------------===//
// Pure pieces: names, the wait-die rule, the access draw.
//===----------------------------------------------------------------------===//

TEST(TxnPolicyTest, PolicyNamesRoundTrip) {
  ASSERT_EQ(allConflictPolicies().size(), 3u);
  for (ConflictPolicyKind Kind : allConflictPolicies()) {
    ConflictPolicyKind Parsed;
    ASSERT_TRUE(parseConflictPolicy(conflictPolicyName(Kind), Parsed));
    EXPECT_EQ(Parsed, Kind);
  }
  ConflictPolicyKind Ignored;
  EXPECT_FALSE(parseConflictPolicy("TwoPhaseMagic", Ignored));
  EXPECT_STREQ(conflictPolicyName(ConflictPolicyKind::WaitDie), "WaitDie");
  EXPECT_STREQ(txnStatusName(TxnStatus::AbortedDeadlock), "deadlock");
  EXPECT_FALSE(isAbort(TxnStatus::Committed));
  EXPECT_TRUE(isAbort(TxnStatus::AbortedDie));
}

TEST(TxnPolicyTest, WaitDieDecisionOrdering) {
  // Unstamped holder: in flux, retry.
  EXPECT_EQ(waitDieDecide(5, 0), WaitDieDecision::Retry);
  // Older (smaller timestamp) waits for a younger holder.
  EXPECT_EQ(waitDieDecide(3, 9), WaitDieDecision::Wait);
  // Younger dies to an older holder; ties die (conservative).
  EXPECT_EQ(waitDieDecide(9, 3), WaitDieDecision::Die);
  EXPECT_EQ(waitDieDecide(7, 7), WaitDieDecision::Die);
}

TEST(TxnPolicyTest, DrawAccessDistinctWritesFirst) {
  load::ZipfSampler Popularity(64, 0.8);
  SplitMix64 Rng(42);
  TxnAccess Access;
  for (int Draw = 0; Draw < 200; ++Draw) {
    drawTxnAccess(Popularity, Rng, /*ReadTarget=*/4, /*WriteTarget=*/2,
                  Access);
    ASSERT_EQ(Access.Writes.size(), 2u);
    ASSERT_EQ(Access.Reads.size(), 4u);
    std::vector<size_t> All(Access.Writes);
    All.insert(All.end(), Access.Reads.begin(), Access.Reads.end());
    std::sort(All.begin(), All.end());
    EXPECT_EQ(std::unique(All.begin(), All.end()), All.end())
        << "draw produced a duplicate index";
    for (size_t Idx : All)
      EXPECT_LT(Idx, 64u);
  }
}

TEST(TxnPolicyTest, DrawAccessShedsReadsBeforeWritesOnTinyUniverse) {
  // Universe of 3 < R+W: the 2 writes survive, reads shrink to 1.
  load::ZipfSampler Small(3, 0.8);
  SplitMix64 Rng(7);
  TxnAccess Access;
  drawTxnAccess(Small, Rng, /*ReadTarget=*/4, /*WriteTarget=*/2, Access);
  EXPECT_EQ(Access.Writes.size(), 2u);
  EXPECT_EQ(Access.Reads.size(), 1u);

  // The degenerate single-object universe: one blind write, no reads.
  load::ZipfSampler One(1, 0.0);
  drawTxnAccess(One, Rng, /*ReadTarget=*/4, /*WriteTarget=*/2, Access);
  ASSERT_EQ(Access.Writes.size(), 1u);
  EXPECT_EQ(Access.Writes[0], 0u);
  EXPECT_TRUE(Access.Reads.empty());
}

TEST(TxnPolicyTest, DrawAccessDeterministicPerSeed) {
  load::ZipfSampler Popularity(128, 0.9);
  SplitMix64 RngA(11), RngB(11);
  TxnAccess A, B;
  for (int Draw = 0; Draw < 50; ++Draw) {
    drawTxnAccess(Popularity, RngA, 4, 2, A);
    drawTxnAccess(Popularity, RngB, 4, 2, B);
    EXPECT_EQ(A.Writes, B.Writes);
    EXPECT_EQ(A.Reads, B.Reads);
  }
}

TEST(TxnPolicyTest, StatsRecordAndMergeKeepTheIdentity) {
  TxnStats A;
  A.record(TxnStatus::Committed, 1000);
  A.record(TxnStatus::AbortedBusy, 2000);
  A.record(TxnStatus::AbortedValidation, 3000);
  TxnStats B;
  B.record(TxnStatus::AbortedDie, 500);
  B.record(TxnStatus::AbortedDeadlock, 700);
  B.record(TxnStatus::Committed, 900);
  B.AttachFailures = 1;
  A.merge(B);
  EXPECT_EQ(A.AttachFailures, 1u);
  EXPECT_EQ(A.Started, 6u);
  EXPECT_EQ(A.Committed, 2u);
  EXPECT_EQ(A.AbortedBusy, 1u);
  EXPECT_EQ(A.AbortedDie, 1u);
  EXPECT_EQ(A.AbortedDeadlock, 1u);
  EXPECT_EQ(A.AbortedValidation, 1u);
  EXPECT_EQ(A.aborted(), 4u);
  EXPECT_TRUE(A.identityHolds());
  EXPECT_EQ(A.CommitLatency.count(), 2u);
  EXPECT_EQ(A.AbortLatency.count(), 4u);
  EXPECT_EQ(A.AbortLatency.max(), 3000u);
}

//===----------------------------------------------------------------------===//
// Engine fixture over a thin-lock substrate.
//===----------------------------------------------------------------------===//

class TxnEngineTest : public ::testing::Test {
protected:
  TxnEngineTest()
      : Handle(createProtocol("ThinLock")), Registry(256),
        Main(Registry, "txn-main") {}

  SyncBackend &sync() { return Handle->sync(); }
  const ThreadContext &main() { return Main.context(); }

  std::unique_ptr<ProtocolHandle> Handle;
  ThreadRegistry Registry;
  Heap TheHeap;
  ScopedThreadAttachment Main;
};

TEST_F(TxnEngineTest, TxnAllPoliciesContendedRunKeepsEveryInvariant) {
  for (ConflictPolicyKind Kind : allConflictPolicies()) {
    TxnParams Params;
    Params.HeapObjects = 16;
    Params.ZipfTheta = 0.9;
    Params.Threads = 4;
    Params.TxnsPerThread = 3000;
    Params.ReadSetSize = 3;
    Params.WriteSetSize = 2;
    Params.Seed = 99 + static_cast<uint64_t>(Kind);
    Params.Tuning.WaitNanos = 500'000;
    Params.Tuning.HoldNanos = 2'000; // Force interleaving on 1 CPU.
    Params.AuditEveryTxn = true;
    TxnEngine Engine(sync(), TheHeap, Registry, Kind, Params);
    TxnStats Stats = Engine.run();

    SCOPED_TRACE(conflictPolicyName(Kind));
    EXPECT_EQ(Stats.Started, 4u * 3000u);
    EXPECT_TRUE(Stats.identityHolds());
    EXPECT_GT(Stats.Committed, 0u);
    EXPECT_EQ(Stats.ConsistencyViolations, 0u)
        << "serializability spot-check failed";
    EXPECT_EQ(Stats.LeakedLocks, 0u);
    EXPECT_EQ(Engine.versionSum(), Stats.WritesApplied)
        << "lost or phantom writes";
    EXPECT_EQ(Stats.CommitLatency.count(), Stats.Committed);
    EXPECT_EQ(Stats.AbortLatency.count(), Stats.aborted());
  }
}

TEST_F(TxnEngineTest, TxnSingleObjectUniverseDegeneratesSafely) {
  // The Zipf degenerate corner the engine actually hits: N == 1 means
  // every transaction is one blind write to the same object.
  for (ConflictPolicyKind Kind : allConflictPolicies()) {
    TxnParams Params;
    Params.HeapObjects = 1;
    Params.ZipfTheta = 0.0;
    Params.Threads = 3;
    Params.TxnsPerThread = 1000;
    Params.Tuning.WaitNanos = 500'000;
    TxnEngine Engine(sync(), TheHeap, Registry, Kind, Params);
    TxnStats Stats = Engine.run();
    SCOPED_TRACE(conflictPolicyName(Kind));
    EXPECT_TRUE(Stats.identityHolds());
    EXPECT_GT(Stats.Committed, 0u);
    EXPECT_EQ(Stats.ConsistencyViolations, 0u);
    EXPECT_EQ(Engine.versionSum(), Stats.WritesApplied);
  }
}

TEST_F(TxnEngineTest, TxnNoWaitAbortsBusyAndReleasesEverything) {
  TxnParams Params;
  Params.HeapObjects = 8;
  TxnEngine Engine(sync(), TheHeap, Registry, ConflictPolicyKind::NoWait,
                   Params);
  Object *Contested = Engine.table().Objects[0];
  sync().lock(Contested, main());

  std::thread Worker([&] {
    ScopedThreadAttachment Attach(Registry, "nowait-worker");
    const ThreadContext &Me = Attach.context();
    TxnAccess Access;
    Access.Writes = {1, 0}; // Index 1 acquired first, then the conflict.
    Access.Reads = {2};
    TxnScratch Scratch;
    EXPECT_EQ(Engine.policy().execute(Me, 1, Access, Scratch),
              TxnStatus::AbortedBusy);
    // The abort released index 1 (and acquired nothing else).
    for (size_t Idx : {size_t(1), size_t(2)})
      EXPECT_FALSE(sync().holdsLock(Engine.table().Objects[Idx], Me));
    EXPECT_EQ(Scratch.WritesApplied, 0u);
  });
  Worker.join();
  sync().unlock(Contested, main());
  EXPECT_EQ(Engine.versionSum(), 0u);
}

TEST_F(TxnEngineTest, TxnWaitDieYoungerDiesImmediately) {
  TxnParams Params;
  Params.HeapObjects = 8;
  Params.Tuning.WaitNanos = 50'000'000; // A die must not wait this long.
  TxnEngine Engine(sync(), TheHeap, Registry, ConflictPolicyKind::WaitDie,
                   Params);
  const TxnTable &Table = Engine.table();
  sync().lock(Table.Objects[0], main());
  Table.OwnerTs[0].store(5, std::memory_order_release); // Older holder.

  std::thread Worker([&] {
    ScopedThreadAttachment Attach(Registry, "waitdie-younger");
    const ThreadContext &Me = Attach.context();
    TxnAccess Access;
    Access.Writes = {0};
    TxnScratch Scratch;
    StopWatch Watch;
    EXPECT_EQ(Engine.policy().execute(Me, /*Ts=*/10, Access, Scratch),
              TxnStatus::AbortedDie);
    // Dying is immediate: no wait rung was taken.
    EXPECT_LT(Watch.elapsedNanos(), 40'000'000u);
    EXPECT_FALSE(sync().holdsLock(Table.Objects[0], Me));
  });
  Worker.join();
  Table.OwnerTs[0].store(0, std::memory_order_release);
  sync().unlock(Table.Objects[0], main());
}

TEST_F(TxnEngineTest, TxnWaitDieOlderWaitsAndEventuallyCommits) {
  TxnParams Params;
  Params.HeapObjects = 8;
  Params.Tuning.WaitNanos = 2'000'000;
  Params.Tuning.MaxWaitRounds = 1000;
  TxnEngine Engine(sync(), TheHeap, Registry, ConflictPolicyKind::WaitDie,
                   Params);
  const TxnTable &Table = Engine.table();
  sync().lock(Table.Objects[0], main());
  Table.OwnerTs[0].store(100, std::memory_order_release); // Younger holder.

  std::atomic<bool> WorkerDone{false};
  std::thread Worker([&] {
    ScopedThreadAttachment Attach(Registry, "waitdie-older");
    const ThreadContext &Me = Attach.context();
    TxnAccess Access;
    Access.Writes = {0};
    TxnScratch Scratch;
    // Older than the holder: waits until the holder releases, then
    // commits (never dies).
    EXPECT_EQ(Engine.policy().execute(Me, /*Ts=*/1, Access, Scratch),
              TxnStatus::Committed);
    EXPECT_EQ(Scratch.WritesApplied, 1u);
    EXPECT_FALSE(sync().holdsLock(Table.Objects[0], Me));
    WorkerDone.store(true, std::memory_order_release);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(WorkerDone.load(std::memory_order_acquire));
  Table.OwnerTs[0].store(0, std::memory_order_release);
  sync().unlock(Table.Objects[0], main());
  Worker.join();
  EXPECT_EQ(Engine.versionSum(), 1u);
}

TEST_F(TxnEngineTest, TxnWaitDieDeadlockVerdictIsPreciseAbort) {
  // Builds a real ABBA cycle through the wait-die *unstamped* window
  // (the one schedule wait-die ordering cannot exclude): a holder that
  // has not yet published its stamp makes the policy wait regardless of
  // age.  On thin locks the PR-1 cycle detector double-confirms the
  // cycle at the wait rung's deadline and tryLockFor returns Deadlock,
  // which the policy maps to the precise AbortedDeadlock — instead of
  // burning the whole timeout budget and guessing AbortedBusy.
  TxnParams Params;
  Params.HeapObjects = 8;
  Params.Tuning.WaitNanos = 50'000'000; // One rung, plenty to confirm.
  TxnEngine Engine(sync(), TheHeap, Registry, ConflictPolicyKind::WaitDie,
                   Params);
  const TxnTable &Table = Engine.table();
  Object *A = Table.Objects[0];
  Object *B = Table.Objects[1];

  sync().lock(A, main()); // Main's side of the cycle; no txn stamp.

  std::atomic<uint16_t> WorkerIndex{0};
  std::thread Worker([&] {
    ScopedThreadAttachment Attach(Registry, "deadlock-holder");
    const ThreadContext &Me = Attach.context();
    // Holds B with OwnerTs[1] still 0 — the stamp-in-flight window.
    sync().lock(B, Me);
    WorkerIndex.store(Me.index(), std::memory_order_release);
    // Blocks on A until main aborts and unlocks; completes the cycle.
    EXPECT_EQ(sync().tryLockFor(A, Me, 2'000'000'000),
              TimedLockStatus::Acquired);
    sync().unlock(A, Me);
    sync().unlock(B, Me);
  });

  // Wait until the worker's waits-for edge (blocked on A) is published
  // so the cycle exists before the policy starts its wait rung.
  while (WorkerIndex.load(std::memory_order_acquire) == 0 ||
         Registry.blockedOn(WorkerIndex.load(std::memory_order_acquire)) != A)
    std::this_thread::yield();

  TxnAccess Access;
  Access.Writes = {1};
  TxnScratch Scratch;
  EXPECT_EQ(Engine.policy().execute(main(), /*Ts=*/1, Access, Scratch),
            TxnStatus::AbortedDeadlock);
  EXPECT_FALSE(sync().holdsLock(B, main()));
  EXPECT_EQ(Scratch.WritesApplied, 0u);

  sync().unlock(A, main()); // Break the cycle; the worker drains.
  Worker.join();
}

//===----------------------------------------------------------------------===//
// OCC commit-window observability (the Silo lock-bit check).  Without
// the version lock mark, a commit-locked object looks untouched to a
// concurrent validator, and two transactions with crossing read/write
// sets can both validate and both publish — a write-skew cycle
// committed as "serializable".
//===----------------------------------------------------------------------===//

TEST_F(TxnEngineTest, TxnOccCommitLockMarksVersionsAndAbortRestoresThem) {
  TxnParams Params;
  Params.HeapObjects = 8;
  TxnEngine Engine(sync(), TheHeap, Registry, ConflictPolicyKind::Validated,
                   Params);
  const TxnTable &Table = Engine.table();

  const std::vector<size_t> Writes = {1, 3};
  std::vector<size_t> Acquired;
  ASSERT_TRUE(occLockWriteSet(Table, main(), Writes, Acquired, /*Spins=*/4));
  ASSERT_EQ(Acquired.size(), 2u);
  for (size_t Idx : Writes) {
    EXPECT_TRUE(sync().holdsLock(Table.Objects[Idx], main()));
    EXPECT_EQ(Table.Versions[Idx].load() & 1, 1u)
        << "commit lock not observable in the version word";
  }

  // A validator that snapshotted object 1 before this window opened
  // must now fail, even though the committed version has not moved.
  const std::vector<size_t> Reads = {1};
  const std::vector<uint64_t> Snapshot = {0}; // Pre-window even version.
  EXPECT_FALSE(occValidateReadSet(Table, Reads, Snapshot))
      << "validation cannot see the in-flight commit window";

  occAbortWriteSet(Table, main(), Acquired);
  EXPECT_TRUE(Acquired.empty());
  for (size_t Idx : Writes) {
    EXPECT_FALSE(sync().holdsLock(Table.Objects[Idx], main()));
    EXPECT_EQ(Table.Versions[Idx].load(), 0u)
        << "abort must restore the pre-window version";
  }
  // With the window gone the old snapshot validates again, and no
  // write was published.
  EXPECT_TRUE(occValidateReadSet(Table, Reads, Snapshot));
  EXPECT_EQ(Engine.versionSum(), 0u);
}

TEST_F(TxnEngineTest, TxnOccCrossingCommitWindowsCannotBothCommit) {
  // The write-skew schedule, made deterministic: T1 reads X writes Y,
  // T2 reads Y writes X, both having snapshotted the initial versions
  // before either commit window opened.  Barrier A holds both inside
  // their windows before either validates; barrier B holds both
  // verdicts until both validations ran, so neither side's
  // publish/restore can rescue the other.  Serializability demands at
  // most one side commit; pre-fix (no lock marks) both validations
  // passed against the still-unchanged versions and both published.
  TxnParams Params;
  Params.HeapObjects = 8;
  TxnEngine Engine(sync(), TheHeap, Registry, ConflictPolicyKind::Validated,
                   Params);
  const TxnTable &Table = Engine.table();
  constexpr size_t X = 0, Y = 1;

  std::atomic<unsigned> PhaseA{0}, PhaseB{0};
  auto Await = [](std::atomic<unsigned> &Phase) {
    Phase.fetch_add(1, std::memory_order_acq_rel);
    while (Phase.load(std::memory_order_acquire) < 2)
      std::this_thread::yield();
  };

  bool Committed[2] = {false, false};
  auto RunSide = [&](size_t ReadIdx, size_t WriteIdx, bool &DidCommit) {
    ScopedThreadAttachment Attach(Registry, "occ-skew");
    const ThreadContext &Me = Attach.context();
    ASSERT_TRUE(Me.isValid());
    // The read phase ran before either window opened: both sides hold
    // the initial (even) version-0 snapshot of their read object.
    const std::vector<uint64_t> Snapshot = {0};
    const std::vector<size_t> Writes = {WriteIdx};
    std::vector<size_t> Acquired;
    // Disjoint write sets: both locks must succeed.
    ASSERT_TRUE(occLockWriteSet(Table, Me, Writes, Acquired, /*Spins=*/4));
    Await(PhaseA); // Both commit windows are now open.
    bool Ok = occValidateReadSet(Table, {ReadIdx}, Snapshot);
    Await(PhaseB); // Both validations ran against open windows.
    if (!Ok) {
      occAbortWriteSet(Table, Me, Acquired);
      return;
    }
    // Validated: publish (what applyWrite does) and release.
    uint64_t Next =
        ((Table.Versions[WriteIdx].load(std::memory_order_relaxed) >> 1) + 1)
        << 1;
    Table.Values[WriteIdx].store(Next, std::memory_order_release);
    Table.Versions[WriteIdx].store(Next, std::memory_order_release);
    sync().unlock(Table.Objects[WriteIdx], Me);
    DidCommit = true;
  };

  std::thread T1([&] { RunSide(X, Y, Committed[0]); });
  std::thread T2([&] { RunSide(Y, X, Committed[1]); });
  T1.join();
  T2.join();

  unsigned Commits = unsigned(Committed[0]) + unsigned(Committed[1]);
  EXPECT_LE(Commits, 1u)
      << "write skew: both crossing commit windows committed";
  // Whatever the outcome, the windows closed cleanly: versions even
  // and the version sum accounts exactly for the committed writes.
  EXPECT_EQ(Table.Versions[X].load() & 1, 0u);
  EXPECT_EQ(Table.Versions[Y].load() & 1, 0u);
  EXPECT_EQ(Engine.versionSum(), Commits);
}

//===----------------------------------------------------------------------===//
// Abort-path lock hygiene: every abort releases everything, audited
// through core/OwnershipAudit against the real MonitorTable, with the
// inflate-race and spurious-wake failpoints widening the windows when
// the build carries them.
//===----------------------------------------------------------------------===//

TEST_F(TxnEngineTest, TxnAbortPathsLeakNoLocksUnderFailpointStress) {
  if (failpoint::compiledIn()) {
    failpoint::arm(failpoint::Id::ThinLockInflateRace, failpoint::Mode::OneIn,
                   3);
    failpoint::arm(failpoint::Id::ParkSpurious, failpoint::Mode::OneIn, 3);
  }

  for (ConflictPolicyKind Kind :
       {ConflictPolicyKind::NoWait, ConflictPolicyKind::WaitDie,
        ConflictPolicyKind::Validated}) {
    TxnParams Params;
    Params.HeapObjects = 6; // Tiny universe => abort-heavy schedule.
    Params.ZipfTheta = 0.6;
    Params.Threads = 4;
    Params.TxnsPerThread = 800;
    Params.ReadSetSize = 2;
    Params.WriteSetSize = 2;
    Params.Tuning.WaitNanos = 200'000;
    Params.Tuning.MaxWaitRounds = 8;
    // Long enough holds that transactions overlap even on a single
    // timesliced CPU — otherwise the stress never aborts at all.
    Params.Tuning.HoldNanos = 20'000;
    Params.AuditEveryTxn = true;
    TxnEngine Engine(sync(), TheHeap, Registry, Kind, Params);

    // Own the worker threads so each worker's registry index can be
    // ownership-audited against the MonitorTable before it detaches.
    MonitorTable *Monitors = Handle->monitorTable();
    ASSERT_NE(Monitors, nullptr);
    std::vector<TxnStats> PerWorker(Params.Threads);
    std::vector<std::thread> Workers;
    for (unsigned W = 0; W < Params.Threads; ++W) {
      Workers.emplace_back([&, W] {
        ScopedThreadAttachment Attach(Registry, "hygiene-worker");
        const ThreadContext &Me = Attach.context();
        ASSERT_TRUE(Me.isValid());
        PerWorker[W] = Engine.runWorker(Me, W);
        // The heap-wide audit: this index owns no monitor anywhere.
        EXPECT_TRUE(objectsLockedBy(Me.index(), TheHeap, *Monitors).empty())
            << "worker still owns a lock after its last transaction";
      });
    }
    for (std::thread &T : Workers)
      T.join();

    TxnStats Stats;
    for (const TxnStats &S : PerWorker)
      Stats.merge(S);
    SCOPED_TRACE(conflictPolicyName(Kind));
    EXPECT_TRUE(Stats.identityHolds());
    EXPECT_GT(Stats.aborted(), 0u) << "stress produced no aborts to audit";
    EXPECT_EQ(Stats.LeakedLocks, 0u)
        << "a transaction returned while still holding a lock";
    EXPECT_EQ(Stats.ConsistencyViolations, 0u);
    EXPECT_EQ(Engine.versionSum(), Stats.WritesApplied);
  }

  if (failpoint::compiledIn())
    failpoint::disarmAll();
}

//===----------------------------------------------------------------------===//
// The registry-wide grid at test scale: every protocol x every policy
// through the scenario runner (what bench_txn does at full scale).
//===----------------------------------------------------------------------===//

TEST(TxnGridTest, TxnEveryProtocolRunsEveryPolicy) {
  for (const std::string &Protocol : registeredProtocolNames()) {
    for (ConflictPolicyKind Kind : allConflictPolicies()) {
      TxnScenarioConfig Config;
      Config.Protocol = Protocol;
      Config.Policy = Kind;
      Config.Params.HeapObjects = 64;
      Config.Params.Threads = 2;
      Config.Params.TxnsPerThread = 400;
      Config.Params.Tuning.WaitNanos = 500'000;
      Config.Params.AuditEveryTxn = true;
      TxnScenarioResult Result = runTxnScenario(Config);

      SCOPED_TRACE(Protocol + "/" + conflictPolicyName(Kind));
      EXPECT_TRUE(Result.Stats.identityHolds());
      EXPECT_GT(Result.Stats.Committed, 0u);
      EXPECT_EQ(Result.Stats.ConsistencyViolations, 0u);
      EXPECT_EQ(Result.Stats.LeakedLocks, 0u);
      EXPECT_TRUE(Result.IntegrityOk);
      EXPECT_FALSE(Result.ProtocolImpl.empty());
    }
  }
}

} // namespace

//===- tests/interpreter_test.cpp - microjvm interpreter tests ------------===//

#include "vm/Assembler.h"
#include "vm/Interpreter.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace thinlocks;
using namespace thinlocks::vm;

namespace {

class InterpreterTest : public ::testing::Test {
protected:
  VM Vm;
  ScopedThreadAttachment *Attachment = nullptr;
  Klass *K = nullptr;

  void SetUp() override {
    Attachment = new ScopedThreadAttachment(Vm.threads(), "main");
    K = &Vm.defineClass("Test", {FieldInfo{"x", ValueKind::Int, 0},
                                 FieldInfo{"next", ValueKind::Ref, 1}});
  }
  void TearDown() override { delete Attachment; }

  const ThreadContext &thread() { return Attachment->context(); }

  RunResult run(const Method &M, std::vector<Value> Args) {
    return Vm.call(M, Args, thread());
  }
};

} // namespace

TEST_F(InterpreterTest, ArithmeticAndReturn) {
  Assembler Asm;
  auto Code =
      Asm.iconst(20).iconst(22).iadd().iret().finish();
  Method &M = Vm.defineMethod(*K, "add", MethodTraits{}, 0, 0, Code);
  RunResult R = run(M, {});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Result.asInt(), 42);
}

TEST_F(InterpreterTest, AllArithmeticOps) {
  struct Case {
    Opcode Op;
    int32_t A, B, Expected;
  };
  const Case Cases[] = {
      {Opcode::Iadd, 3, 4, 7},    {Opcode::Isub, 10, 4, 6},
      {Opcode::Imul, 6, 7, 42},   {Opcode::Idiv, 42, 5, 8},
      {Opcode::Irem, 42, 5, 2},
  };
  for (const Case &C : Cases) {
    Assembler Asm;
    Asm.iconst(C.A).iconst(C.B);
    switch (C.Op) {
    case Opcode::Iadd:
      Asm.iadd();
      break;
    case Opcode::Isub:
      Asm.isub();
      break;
    case Opcode::Imul:
      Asm.imul();
      break;
    case Opcode::Idiv:
      Asm.idiv();
      break;
    case Opcode::Irem:
      Asm.irem();
      break;
    default:
      FAIL();
    }
    Method &M = Vm.defineMethod(*K, "arith", MethodTraits{}, 0, 0,
                                Asm.iret().finish());
    RunResult R = run(M, {});
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(R.Result.asInt(), C.Expected) << opcodeName(C.Op);
  }
}

TEST_F(InterpreterTest, DivisionByZeroTraps) {
  Assembler Asm;
  Method &M = Vm.defineMethod(*K, "div0", MethodTraits{}, 0, 0,
                              Asm.iconst(1).iconst(0).idiv().iret().finish());
  RunResult R = run(M, {});
  EXPECT_EQ(R.TrapKind, Trap::DivideByZero);
}

TEST_F(InterpreterTest, LoopComputesSum) {
  // sum = 0; for (i = 0; i < n; i++) sum += i; return sum;
  Assembler Asm;
  Asm.iconst(0).istore(2); // sum
  Asm.countedLoop(1, 0, [](Assembler &A) {
    A.iload(2).iload(1).iadd().istore(2);
  });
  Method &M = Vm.defineMethod(*K, "sum", MethodTraits{}, 1, 3,
                              Asm.iload(2).iret().finish());
  RunResult R = run(M, {Value::makeInt(10)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Result.asInt(), 45);
}

TEST_F(InterpreterTest, ObjectFieldsRoundTrip) {
  // obj = new Test; obj.x = 7; return obj.x + 1;
  Assembler Asm;
  Asm.newObject(static_cast<int32_t>(K->heapClass().Index)).astore(0);
  Asm.aload(0).iconst(7).putField(0);
  Asm.aload(0).getField(0).iconst(1).iadd().iret();
  Method &M = Vm.defineMethod(*K, "fields", MethodTraits{}, 0, 1,
                              Asm.finish());
  RunResult R = run(M, {});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Result.asInt(), 8);
}

TEST_F(InterpreterTest, RefFieldsHoldObjects) {
  // a = new; b = new; a.next = b; return (a.next == b via ifnull check).
  Assembler Asm;
  int32_t ClassIndex = static_cast<int32_t>(K->heapClass().Index);
  Asm.newObject(ClassIndex).astore(0);
  Asm.newObject(ClassIndex).astore(1);
  Asm.aload(0).aload(1).putField(1);
  auto NullCase = Asm.newLabel();
  Asm.aload(0).getField(1).ifNull(NullCase);
  Asm.iconst(1).iret();
  Asm.bind(NullCase);
  Asm.iconst(0).iret();
  Method &M = Vm.defineMethod(*K, "refs", MethodTraits{}, 0, 2,
                              Asm.finish());
  RunResult R = run(M, {});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Result.asInt(), 1);
}

TEST_F(InterpreterTest, GetFieldOnNullTraps) {
  Assembler Asm;
  Asm.aconstNull().getField(0).iret();
  Method &M = Vm.defineMethod(*K, "npe", MethodTraits{}, 0, 0,
                              Asm.finish());
  EXPECT_EQ(run(M, {}).TrapKind, Trap::NullPointer);
}

TEST_F(InterpreterTest, MonitorEnterExitBalancesViaBackend) {
  Object *Obj = Vm.newInstance(*K);
  Assembler Asm;
  Asm.synchronizedOn(0, [](Assembler &A) { A.nop(); });
  Asm.iconst(0).iret();
  Method &M = Vm.defineMethod(*K, "syncBlock", MethodTraits{}, 1, 1,
                              Asm.finish());
  RunResult R = run(M, {Value::makeRef(Obj)});
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(Vm.sync().holdsLock(Obj, thread()));
}

TEST_F(InterpreterTest, MonitorEnterOnNullTraps) {
  Assembler Asm;
  Asm.aconstNull().monitorEnter().ret();
  Method &M = Vm.defineMethod(*K, "nullEnter", MethodTraits{}, 0, 0,
                              Asm.finish());
  EXPECT_EQ(run(M, {}).TrapKind, Trap::NullPointer);
}

TEST_F(InterpreterTest, UnbalancedMonitorExitTraps) {
  Object *Obj = Vm.newInstance(*K);
  Assembler Asm;
  Asm.aload(0).monitorExit().ret();
  Method &M = Vm.defineMethod(*K, "badExit", MethodTraits{}, 1, 1,
                              Asm.finish());
  EXPECT_EQ(run(M, {Value::makeRef(Obj)}).TrapKind,
            Trap::IllegalMonitorState);
}

TEST_F(InterpreterTest, SynchronizedMethodLocksReceiver) {
  Object *Obj = Vm.newInstance(*K);
  // A synchronized method that observes its own lock via a native call
  // would be circular; instead check postcondition + nesting from a
  // wrapper: outer locks obj, calls sync method (nested), returns.
  MethodTraits Sync;
  Sync.IsSynchronized = true;
  Assembler Body;
  Body.iconst(99).iret();
  Method &Inner = Vm.defineMethod(*K, "inner", Sync, 1, 1, Body.finish());

  Assembler Outer;
  Outer.synchronizedOn(0, [&](Assembler &A) {
    A.aload(0).invoke(Inner.Id).istore(1);
  });
  Outer.iload(1).iret();
  Method &M = Vm.defineMethod(*K, "outer", MethodTraits{}, 1, 2,
                              Outer.finish());
  RunResult R = run(M, {Value::makeRef(Obj)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Result.asInt(), 99);
  EXPECT_FALSE(Vm.sync().holdsLock(Obj, thread()));
}

TEST_F(InterpreterTest, StaticSynchronizedLocksClassObject) {
  MethodTraits StaticSync;
  StaticSync.IsSynchronized = true;
  StaticSync.IsStatic = true;
  Assembler Asm;
  Asm.iconst(5).iret();
  Method &M = Vm.defineMethod(*K, "staticSync", StaticSync, 0, 0,
                              Asm.finish());
  RunResult R = run(M, {});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Result.asInt(), 5);
  EXPECT_FALSE(Vm.sync().holdsLock(K->classObject(), thread()));
}

TEST_F(InterpreterTest, SynchronizedMethodOnNullReceiverTraps) {
  MethodTraits Sync;
  Sync.IsSynchronized = true;
  Assembler Asm;
  Asm.iconst(0).iret();
  Method &M = Vm.defineMethod(*K, "syncNull", Sync, 1, 1, Asm.finish());
  EXPECT_EQ(run(M, {Value::null()}).TrapKind, Trap::NullPointer);
}

TEST_F(InterpreterTest, TrapInsideSynchronizedMethodReleasesMonitor) {
  Object *Obj = Vm.newInstance(*K);
  MethodTraits Sync;
  Sync.IsSynchronized = true;
  Assembler Asm;
  Asm.iconst(1).iconst(0).idiv().iret(); // Traps while holding the lock.
  Method &M = Vm.defineMethod(*K, "trapSync", Sync, 1, 1, Asm.finish());
  RunResult R = run(M, {Value::makeRef(Obj)});
  EXPECT_EQ(R.TrapKind, Trap::DivideByZero);
  // The implicit handler released the receiver's monitor.
  EXPECT_FALSE(Vm.sync().holdsLock(Obj, thread()));
  Vm.sync().lock(Obj, thread());
  Vm.sync().unlock(Obj, thread());
}

TEST_F(InterpreterTest, RecursionComputesFactorial) {
  // fact(n) = n < 2 ? 1 : n * fact(n - 1).  Self-calls need the method's
  // own id before definition; ids are sequential, so a probe method
  // reveals the next id.
  MethodTraits Plain;
  Method &Probe = Vm.defineMethod(*K, "probe", Plain, 0, 0,
                                  Assembler().ret().finish());
  uint32_t SelfId = Probe.Id + 1;

  Assembler Fact;
  auto BaseL = Fact.newLabel();
  Fact.iload(0).iconst(2).ifIcmpLt(BaseL);
  Fact.iload(0);
  Fact.iload(0).iconst(1).isub();
  Fact.invoke(SelfId);
  Fact.imul().iret();
  Fact.bind(BaseL);
  Fact.iconst(1).iret();
  Method &M = Vm.defineMethod(*K, "fact", Plain, 1, 1, Fact.finish());
  ASSERT_EQ(M.Id, SelfId);

  RunResult R = run(M, {Value::makeInt(10)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Result.asInt(), 3628800);
}

TEST_F(InterpreterTest, DeepRecursionOverflowsGracefully) {
  MethodTraits Plain;
  Method &Probe = Vm.defineMethod(*K, "probe2", Plain, 0, 0,
                                  Assembler().ret().finish());
  uint32_t SelfId = Probe.Id + 1;
  Assembler Asm;
  Asm.iload(0).iconst(1).iadd().istore(0);
  Asm.iload(0).invoke(SelfId).iret(); // Infinite self-recursion.
  Method &M = Vm.defineMethod(*K, "infinite", Plain, 1, 1, Asm.finish());
  ASSERT_EQ(M.Id, SelfId);
  RunResult R = run(M, {Value::makeInt(0)});
  EXPECT_EQ(R.TrapKind, Trap::StackOverflow);
}

TEST_F(InterpreterTest, UnknownMethodTraps) {
  Assembler Asm;
  Asm.invoke(999999).ret();
  Method &M = Vm.defineMethod(*K, "bad", MethodTraits{}, 0, 0,
                              Asm.finish());
  EXPECT_EQ(run(M, {}).TrapKind, Trap::UnknownMethod);
}

TEST_F(InterpreterTest, TypeConfusionTraps) {
  // iload of a ref local is a verification error at runtime.
  Assembler Asm;
  Asm.iload(0).iret();
  Method &M = Vm.defineMethod(*K, "confused", MethodTraits{}, 1, 1,
                              Asm.finish());
  EXPECT_EQ(run(M, {Value::null()}).TrapKind, Trap::BadBytecode);
}

TEST_F(InterpreterTest, FallingOffCodeEndTraps) {
  Assembler Asm;
  Asm.nop();
  Method &M = Vm.defineMethod(*K, "fall", MethodTraits{}, 0, 0,
                              Asm.finish());
  EXPECT_EQ(run(M, {}).TrapKind, Trap::BadBytecode);
}

TEST_F(InterpreterTest, StackOpsDupPopSwap) {
  Assembler Asm;
  Asm.iconst(1).iconst(2).swap().isub().iret(); // 2 - 1 = 1
  Method &M = Vm.defineMethod(*K, "swapTest", MethodTraits{}, 0, 0,
                              Asm.finish());
  RunResult R = run(M, {});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Result.asInt(), 1);

  Assembler Asm2;
  Asm2.iconst(21).dup().iadd().iret();
  Method &M2 = Vm.defineMethod(*K, "dupTest", MethodTraits{}, 0, 0,
                               Asm2.finish());
  EXPECT_EQ(run(M2, {}).Result.asInt(), 42);

  Assembler Asm3;
  Asm3.iconst(7).iconst(9).pop().iret();
  Method &M3 = Vm.defineMethod(*K, "popTest", MethodTraits{}, 0, 0,
                               Asm3.finish());
  EXPECT_EQ(run(M3, {}).Result.asInt(), 7);
}

TEST_F(InterpreterTest, InstructionCountingWorks) {
  // counted(limit): accum = 0; loop limit times { accum++ }; return it.
  Assembler Asm;
  Asm.iconst(0).istore(1);
  Asm.countedLoop(/*CounterLocal=*/2, /*LimitLocal=*/0,
                  [](Assembler &A) { A.iinc(1, 1); });
  Asm.iload(1).iret();
  Method &M = Vm.defineMethod(*K, "counted", MethodTraits{}, 1, 3,
                              Asm.finish());
  Interpreter Interp(Vm, thread());
  RunResult R = Interp.run(M, std::vector<Value>{Value::makeInt(5)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Result.asInt(), 5);
  // Exact counts are an implementation detail, but the total must scale
  // with the iteration count (>= ~6 instructions per iteration).
  EXPECT_GT(Interp.instructionsExecuted(), 30u);
}

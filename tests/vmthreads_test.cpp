//===- tests/vmthreads_test.cpp - Multi-threaded VM execution -------------===//
//
// End-to-end: interpreted bytecode racing on shared objects under each of
// the three protocols, exactly the configuration the paper benchmarks.
//
//===----------------------------------------------------------------------===//

#include "vm/Assembler.h"
#include "vm/VM.h"
#include "workload/MicroBench.h"

#include <gtest/gtest.h>

using namespace thinlocks;
using namespace thinlocks::vm;
using namespace thinlocks::workload;

namespace {

class VmThreadsTest : public ::testing::TestWithParam<ProtocolKind> {
protected:
  std::unique_ptr<VM> Vm;

  void SetUp() override {
    VM::Config Cfg;
    Cfg.Protocol = GetParam();
    Vm = std::make_unique<VM>(Cfg);
  }
};

} // namespace

TEST_P(VmThreadsTest, SynchronizedFieldIncrementsDoNotRace) {
  // Shared counter object; N VM threads each run
  //   loop iters: synchronized(obj) { obj.count = obj.count + 1 }
  Klass &K = Vm->defineClass("Shared",
                             {FieldInfo{"count", ValueKind::Int, 0}});
  Assembler Asm;
  Asm.countedLoop(2, 0, [](Assembler &A) {
    A.synchronizedOn(1, [](Assembler &B) {
      B.aload(1).aload(1).getField(0).iconst(1).iadd().putField(0);
    });
  });
  Asm.aload(1).getField(0).iret();
  Method &Body = Vm->defineMethod(K, "bump", MethodTraits{}, 2, 3,
                                  Asm.finish());

  Object *Shared = Vm->newInstance(K);
  constexpr int NumThreads = 4;
  constexpr int Iters = 2000;
  std::vector<VM::VMThread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.push_back(Vm->spawn(
        Body, {Value::makeInt(Iters), Value::makeRef(Shared)}));
  for (auto &T : Threads) {
    RunResult R = T.join();
    ASSERT_TRUE(R.ok()) << trapName(R.TrapKind);
  }
  EXPECT_EQ(
      static_cast<int32_t>(static_cast<uint32_t>(Shared->slot(0))),
      NumThreads * Iters);
}

TEST_P(VmThreadsTest, SynchronizedMethodsExcludeEachOther) {
  Klass &K = Vm->defineClass("Shared2",
                             {FieldInfo{"count", ValueKind::Int, 0}});
  MethodTraits Sync;
  Sync.IsSynchronized = true;
  // synchronized bump(this) { this.count++ ; return this.count }
  Assembler Inner;
  Inner.aload(0).aload(0).getField(0).iconst(1).iadd().putField(0);
  Inner.aload(0).getField(0).iret();
  Method &Bump = Vm->defineMethod(K, "bump", Sync, 1, 1, Inner.finish());

  // runner(iters, obj) { loop { obj.bump() } }
  Assembler Runner;
  Runner.countedLoop(2, 0, [&](Assembler &A) {
    A.aload(1).invoke(Bump.Id).pop();
  });
  Runner.iconst(0).iret();
  Method &Run = Vm->defineMethod(K, "runner", MethodTraits{}, 2, 3,
                                 Runner.finish());

  Object *Shared = Vm->newInstance(K);
  constexpr int NumThreads = 3;
  constexpr int Iters = 1500;
  std::vector<VM::VMThread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.push_back(
        Vm->spawn(Run, {Value::makeInt(Iters), Value::makeRef(Shared)}));
  for (auto &T : Threads)
    ASSERT_TRUE(T.join().ok());
  EXPECT_EQ(static_cast<int32_t>(static_cast<uint32_t>(Shared->slot(0))),
            NumThreads * Iters);
}

TEST_P(VmThreadsTest, MicroProgramsRunOnEveryProtocol) {
  MicroPrograms Programs = buildMicroPrograms(*Vm);
  ScopedThreadAttachment Main(Vm->threads(), "main");
  Object *Target = Vm->newInstance(*Programs.BenchKlass);
  runMicroProgram(*Vm, *Programs.NoSync, 500, Target, Main.context());
  runMicroProgram(*Vm, *Programs.Sync, 500, Target, Main.context());
  runMicroProgram(*Vm, *Programs.NestedSync, 500, Target, Main.context());
  runMicroProgram(*Vm, *Programs.MixedSync, 200, Target, Main.context());
  runMicroProgram(*Vm, *Programs.Call, 500, Target, Main.context());
  runMicroProgram(*Vm, *Programs.CallSync, 500, Target, Main.context());
  runMicroProgram(*Vm, *Programs.NestedCallSync, 500, Target,
                  Main.context());
  // After all that, the target must be fully unlocked.
  EXPECT_FALSE(Vm->sync().holdsLock(Target, Main.context()));
}

TEST_P(VmThreadsTest, ThreadsBenchmarkContendsCorrectly) {
  MicroPrograms Programs = buildMicroPrograms(*Vm);
  Object *Target = Vm->newInstance(*Programs.BenchKlass);
  runVmThreadsBenchmark(*Vm, Programs, /*NumThreads=*/4,
                        /*ItersPerThread=*/300, Target);
  ScopedThreadAttachment Main(Vm->threads(), "main");
  EXPECT_FALSE(Vm->sync().holdsLock(Target, Main.context()));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, VmThreadsTest,
                         ::testing::Values(ProtocolKind::ThinLock,
                                           ProtocolKind::MonitorCache,
                                           ProtocolKind::HotLocks,
                                           ProtocolKind::EagerMonitor),
                         [](const ::testing::TestParamInfo<ProtocolKind> &I) {
                           return protocolKindName(I.param);
                         });

//===----------------------------------------------------------------------===//
// Thin-lock specific VM integration
//===----------------------------------------------------------------------===//

TEST(VmThinLockIntegration, LockStatsFlowThroughTheInterpreter) {
  VM::Config Cfg;
  Cfg.Protocol = ProtocolKind::ThinLock;
  Cfg.CollectLockStats = true;
  VM Vm(Cfg);
  MicroPrograms Programs = buildMicroPrograms(Vm);
  ScopedThreadAttachment Main(Vm.threads(), "main");
  Object *Target = Vm.newInstance(*Programs.BenchKlass);

  runMicroProgram(Vm, *Programs.Sync, 100, Target, Main.context());
  LockStats *Stats = Vm.lockStats();
  ASSERT_NE(Stats, nullptr);
  EXPECT_EQ(Stats->totalAcquisitions(), 100u);
  EXPECT_EQ(Stats->depthBucket(0), 100u); // All first locks.

  runMicroProgram(Vm, *Programs.NestedSync, 100, Target, Main.context());
  // NestedSync: 1 outer + 100 inner (depth 2).
  EXPECT_EQ(Stats->totalAcquisitions(), 201u);
  EXPECT_EQ(Stats->depthBucket(1), 100u);
}

TEST(VmThinLockIntegration, VmThreadsContentionInflatesTarget) {
  VM::Config Cfg;
  Cfg.Protocol = ProtocolKind::ThinLock;
  Cfg.CollectLockStats = true;
  VM Vm(Cfg);
  MicroPrograms Programs = buildMicroPrograms(Vm);
  Object *Target = Vm.newInstance(*Programs.BenchKlass);

  // Deterministic contention: hold the target's monitor from outside the
  // VM while an interpreted thread reaches its first monitorenter, so
  // the interpreted thread must take the contention path and inflate.
  ScopedThreadAttachment Main(Vm.threads(), "holder");
  Vm.sync().lock(Target, Main.context());
  VM::VMThread Worker = Vm.spawn(
      *Programs.ThreadBody,
      {vm::Value::makeInt(200), vm::Value::makeRef(Target)});
  // The interpreted thread cannot finish while we hold the lock; give it
  // time to reach the spin loop, then release.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Vm.sync().unlock(Target, Main.context());
  ASSERT_TRUE(Worker.join().ok());

  EXPECT_GE(Vm.lockStats()->contentionInflations(), 1u);
  EXPECT_TRUE(lockword::isFat(Target->lockWord().load()));
}

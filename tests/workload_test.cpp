//===- tests/workload_test.cpp - Profiles, kernels, replay ----------------===//

#include "workload/MacroReplay.h"
#include "workload/MicroBench.h"
#include "workload/Profiles.h"

#include "baselines/HotLocks.h"
#include "baselines/MonitorCache.h"
#include "core/ThinLock.h"
#include "vm/NativeLibrary.h"

#include <gtest/gtest.h>

using namespace thinlocks;
using namespace thinlocks::workload;

//===----------------------------------------------------------------------===//
// Profiles: the Table 1 / Figure 3 data must satisfy the paper's stated
// aggregate properties.
//===----------------------------------------------------------------------===//

TEST(Profiles, Has18Benchmarks) {
  EXPECT_EQ(macroBenchmarkProfiles().size(), 18u);
}

TEST(Profiles, MedianSyncsPerObjectMatchesPaper) {
  // Paper §3.1: "the median number of synchronizations per synchronized
  // object is 22.7".
  EXPECT_NEAR(medianSyncsPerSyncObject(), 22.7, 0.15);
}

TEST(Profiles, MedianFirstLockFractionIs80Percent) {
  // Paper §3.2: "a median of 80% of all lock operations are on unlocked
  // objects".
  EXPECT_NEAR(medianFirstLockFraction(), 0.80, 0.005);
}

TEST(Profiles, MinimumFirstLockFractionIsAtLeast45Percent) {
  // Paper §3.2: "at least 45% of locks obtained by any of the benchmark
  // applications were for unlocked objects".
  for (const BenchmarkProfile &P : macroBenchmarkProfiles())
    EXPECT_GE(P.DepthMix[0], 0.45) << P.Name;
}

TEST(Profiles, DepthMixesAreDistributions) {
  for (const BenchmarkProfile &P : macroBenchmarkProfiles()) {
    double Sum = 0;
    for (double F : P.DepthMix) {
      EXPECT_GE(F, 0.0) << P.Name;
      Sum += F;
    }
    EXPECT_NEAR(Sum, 1.0, 1e-9) << P.Name;
    // Figure 3 is monotone: first >= second >= third >= fourth.
    EXPECT_GE(P.DepthMix[0], P.DepthMix[1]) << P.Name;
    EXPECT_GE(P.DepthMix[1], P.DepthMix[2]) << P.Name;
    EXPECT_GE(P.DepthMix[2], P.DepthMix[3]) << P.Name;
  }
}

TEST(Profiles, SyncObjectsAreMinorityOfObjects) {
  // Paper §3.1: synchronized objects are "generally less than a tenth of
  // the total number of objects created" — allow the documented
  // exceptions but require the ratio < 1 everywhere.
  int Under10Pct = 0;
  for (const BenchmarkProfile &P : macroBenchmarkProfiles()) {
    EXPECT_LT(P.SynchronizedObjects, P.ObjectsCreated) << P.Name;
    if (P.SynchronizedObjects * 10 <= P.ObjectsCreated)
      ++Under10Pct;
  }
  EXPECT_GE(Under10Pct, 9); // "generally".
}

TEST(Profiles, JaxAnchorsMatchPaperProse) {
  const BenchmarkProfile *Jax = findProfile("jax");
  ASSERT_NE(Jax, nullptr);
  // "Jax made almost 19 million calls to the get method of BitSet".
  EXPECT_GT(Jax->SyncOperations, 19'000'000u);
  EXPECT_NEAR(syncsPerSyncObject(*Jax), 4312.0, 1.0);
}

TEST(Profiles, JavalexAnchorsMatchPaperProse) {
  const BenchmarkProfile *Javalex = findProfile("javalex");
  ASSERT_NE(Javalex, nullptr);
  // "2.4 million synchronized method calls" (order of magnitude ~2M).
  EXPECT_GT(Javalex->SyncOperations, 1'500'000u);
  EXPECT_LT(Javalex->SyncOperations, 3'000'000u);
  EXPECT_GT(Javalex->LibraryFraction, 0.5); // Vector-dominated.
}

TEST(Profiles, FindProfileByName) {
  EXPECT_NE(findProfile("javac"), nullptr);
  EXPECT_EQ(findProfile("no-such-benchmark"), nullptr);
}

//===----------------------------------------------------------------------===//
// Depth sequence sampling
//===----------------------------------------------------------------------===//

TEST(MacroReplay, SampleSequenceDepthReproducesOperationMix) {
  const BenchmarkProfile *P = findProfile("trans");
  ASSERT_NE(P, nullptr);
  SplitMix64 Rng(7);
  uint64_t OpsAtDepth[4] = {0, 0, 0, 0};
  uint64_t TotalOps = 0;
  for (int I = 0; I < 200000; ++I) {
    uint32_t D = sampleSequenceDepth(*P, Rng.nextDouble());
    ASSERT_GE(D, 1u);
    ASSERT_LE(D, 4u);
    for (uint32_t K = 0; K < D; ++K)
      ++OpsAtDepth[K];
    TotalOps += D;
  }
  for (int B = 0; B < 4; ++B) {
    double Fraction =
        static_cast<double>(OpsAtDepth[B]) / static_cast<double>(TotalOps);
    EXPECT_NEAR(Fraction, P->DepthMix[B], 0.01) << "bucket " << B;
  }
}

TEST(MacroReplay, SampleObjectIndexIsSkewedTowardsZero) {
  SplitMix64 Rng(11);
  uint64_t LowHalf = 0;
  constexpr int Samples = 100000;
  for (int I = 0; I < Samples; ++I)
    if (sampleObjectIndex(1000, Rng) < 500)
      ++LowHalf;
  // u^2 skew: P(index < N/2) = sqrt(0.5) ~ 0.707.
  EXPECT_GT(LowHalf, Samples * 0.68);
  EXPECT_LT(LowHalf, Samples * 0.74);
}

TEST(MacroReplay, SampleObjectIndexStaysInRange) {
  SplitMix64 Rng(13);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(sampleObjectIndex(7, Rng), 7u);
}

TEST(MacroReplay, ReplayWorkIsDeterministic) {
  EXPECT_EQ(replayWork(42, 10), replayWork(42, 10));
  EXPECT_NE(replayWork(42, 10), replayWork(43, 10));
}

//===----------------------------------------------------------------------===//
// Native replay across protocols
//===----------------------------------------------------------------------===//

namespace {

ReplayConfig quickConfig() {
  ReplayConfig Cfg;
  Cfg.ScaleDivisor = 2048;
  Cfg.MinSyncOps = 1000;
  Cfg.MaxSyncOps = 20000;
  Cfg.WorkPerSync = 4;
  return Cfg;
}

} // namespace

TEST(MacroReplay, NativeReplayMatchesProfileShape) {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockManager Locks(Monitors);
  ScopedThreadAttachment Main(Registry, "main");

  const BenchmarkProfile *P = findProfile("javac");
  ASSERT_NE(P, nullptr);
  ReplayResult R =
      replayProfile(*P, Locks, TheHeap, Main.context(), quickConfig());

  EXPECT_GE(R.SyncOperations, 1000u);
  EXPECT_GT(R.ObjectsCreated, R.SynchronizedObjects);
  EXPECT_GT(R.ElapsedNanos, 0u);
  // Measured depth mix tracks the profile (coarsely; small sample).
  EXPECT_NEAR(R.depthFraction(0), P->DepthMix[0], 0.08);
}

TEST(MacroReplay, NativeReplayRunsOnAllProtocols) {
  const BenchmarkProfile *P = findProfile("crema");
  ASSERT_NE(P, nullptr);

  {
    Heap TheHeap;
    ThreadRegistry Registry;
    MonitorTable Monitors;
    ThinLockManager Locks(Monitors);
    ScopedThreadAttachment Main(Registry);
    ReplayResult R =
        replayProfile(*P, Locks, TheHeap, Main.context(), quickConfig());
    EXPECT_GE(R.SyncOperations, 1000u);
  }
  {
    Heap TheHeap;
    ThreadRegistry Registry;
    MonitorCache Cache(128);
    ScopedThreadAttachment Main(Registry);
    ReplayResult R =
        replayProfile(*P, Cache, TheHeap, Main.context(), quickConfig());
    EXPECT_GE(R.SyncOperations, 1000u);
  }
  {
    Heap TheHeap;
    ThreadRegistry Registry;
    HotLocks Hot(32, 4, 128);
    ScopedThreadAttachment Main(Registry);
    ReplayResult R =
        replayProfile(*P, Hot, TheHeap, Main.context(), quickConfig());
    EXPECT_GE(R.SyncOperations, 1000u);
  }
}

TEST(MacroReplay, ReplayIsDeterministicPerSeed) {
  const BenchmarkProfile *P = findProfile("trans");
  auto runOnce = [&] {
    Heap TheHeap;
    ThreadRegistry Registry;
    MonitorTable Monitors;
    ThinLockManager Locks(Monitors);
    ScopedThreadAttachment Main(Registry);
    return replayProfile(*P, Locks, TheHeap, Main.context(), quickConfig());
  };
  ReplayResult A = runOnce();
  ReplayResult B = runOnce();
  EXPECT_EQ(A.SyncOperations, B.SyncOperations);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(A.DepthCounts[I], B.DepthCounts[I]);
  EXPECT_EQ(A.ObjectsCreated, B.ObjectsCreated);
}

TEST(MacroReplay, ThinLockReplayLeavesEverythingUnlocked) {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockManager Locks(Monitors, &Stats);
  ScopedThreadAttachment Main(Registry);
  const BenchmarkProfile *P = findProfile("wingdis");
  replayProfile(*P, Locks, TheHeap, Main.context(), quickConfig());
  EXPECT_EQ(Stats.totalAcquisitions(), Stats.totalReleases());
  // Single-threaded replay: no contention, no inflation.
  EXPECT_EQ(Stats.inflations(), 0u);
  EXPECT_EQ(Monitors.liveMonitorCount(), 0u);
}

//===----------------------------------------------------------------------===//
// VM replay
//===----------------------------------------------------------------------===//

TEST(MacroReplay, VmReplayRunsAndCounts) {
  vm::VM Vm;
  vm::NativeLibrary Library(Vm);
  ScopedThreadAttachment Main(Vm.threads(), "main");
  const BenchmarkProfile *P = findProfile("javalex");
  ReplayConfig Cfg = quickConfig();
  Cfg.MaxSyncOps = 4000;
  ReplayResult R =
      replayProfileOnVm(Vm, Library, *P, Main.context(), Cfg);
  EXPECT_GE(R.SyncOperations, 1000u);
  EXPECT_GT(R.ElapsedNanos, 0u);
  EXPECT_GT(R.DepthCounts[0], 0u);
}

//===----------------------------------------------------------------------===//
// Native micro kernels
//===----------------------------------------------------------------------===//

TEST(MicroKernels, NativeKernelsReturnTheirCounts) {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockManager Locks(Monitors);
  ScopedThreadAttachment Main(Registry);
  const ClassInfo &Class = TheHeap.classes().registerClass("K", 0);
  Object *Obj = TheHeap.allocate(Class);

  EXPECT_EQ(runNativeNoSync(1000), 1000u);
  EXPECT_EQ(runNativeSync(Locks, Obj, Main.context(), 1000), 1000u);
  EXPECT_EQ(runNativeNestedSync(Locks, Obj, Main.context(), 1000), 1000u);
  EXPECT_EQ(runNativeMixedSync(Locks, Obj, Main.context(), 500), 500u);
  EXPECT_EQ(runNativeCall(1000), 1000u);
  EXPECT_EQ(runNativeCallSync(Locks, Obj, Main.context(), 1000), 1000u);
  EXPECT_EQ(runNativeNestedCallSync(Locks, Obj, Main.context(), 1000),
            1000u);
  EXPECT_FALSE(Locks.holdsLock(Obj, Main.context()));
}

TEST(MicroKernels, MultiSyncTouchesAllObjects) {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockManager Locks(Monitors, &Stats);
  ScopedThreadAttachment Main(Registry);
  const ClassInfo &Class = TheHeap.classes().registerClass("K", 0);
  std::vector<Object *> Objects;
  for (int I = 0; I < 10; ++I)
    Objects.push_back(TheHeap.allocate(Class));
  uint64_t Count =
      runNativeMultiSync(Locks, Objects, Main.context(), 100);
  EXPECT_EQ(Count, 1000u);
  EXPECT_EQ(Stats.totalAcquisitions(), 1000u);
  EXPECT_EQ(Stats.fastPathAcquisitions(), 1000u);
}

TEST(MicroKernels, ThreadsKernelKeepsTheInvariant) {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockManager Locks(Monitors);
  const ClassInfo &Class = TheHeap.classes().registerClass("K", 0);
  Object *Obj = TheHeap.allocate(Class);
  uint64_t Total =
      runNativeThreads(Locks, Obj, Registry, /*NumThreads=*/4,
                       /*ItersPerThread=*/1000);
  EXPECT_EQ(Total, 4000u);
  ScopedThreadAttachment Main(Registry);
  EXPECT_FALSE(Locks.holdsLock(Obj, Main.context()));
}

TEST(MicroKernels, KernelsWorkOnBaselines) {
  Heap TheHeap;
  ThreadRegistry Registry;
  ScopedThreadAttachment Main(Registry);
  const ClassInfo &Class = TheHeap.classes().registerClass("K", 0);
  Object *Obj = TheHeap.allocate(Class);

  MonitorCache Cache(64);
  EXPECT_EQ(runNativeSync(Cache, Obj, Main.context(), 500), 500u);
  EXPECT_EQ(runNativeNestedSync(Cache, Obj, Main.context(), 500), 500u);

  HotLocks Hot(32, 4, 64);
  Object *Obj2 = TheHeap.allocate(Class);
  EXPECT_EQ(runNativeSync(Hot, Obj2, Main.context(), 500), 500u);
  EXPECT_TRUE(Hot.isHot(Obj2)); // 500 cycles crossed the threshold.
}

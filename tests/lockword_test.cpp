//===- tests/lockword_test.cpp - Lock word encoding tests -----------------===//
//
// Unit and property tests for the 24-bit lock word of paper Figures 1-2,
// including equivalence proofs (by exhaustive-ish parameter sweep) of the
// paper's two fast-path bit tricks against the naive decoded checks.
//
//===----------------------------------------------------------------------===//

#include "core/LockWord.h"

#include <gtest/gtest.h>

#include <vector>

using namespace thinlocks;
using namespace thinlocks::lockword;

TEST(LockWord, UnlockedIsAllZeroLockField) {
  uint32_t Word = makeThin(0, 0, 0xAB);
  EXPECT_TRUE(isThin(Word));
  EXPECT_TRUE(isUnlocked(Word));
  EXPECT_EQ(headerBitsOf(Word), 0xABu);
  EXPECT_EQ(Word & LockFieldMask, 0u);
}

TEST(LockWord, ThinRoundTrip) {
  uint32_t Word = makeThin(1234, 56, 0x7F);
  EXPECT_TRUE(isThin(Word));
  EXPECT_FALSE(isFat(Word));
  EXPECT_FALSE(isUnlocked(Word));
  EXPECT_EQ(threadIndexOf(Word), 1234);
  EXPECT_EQ(countOf(Word), 56u);
  EXPECT_EQ(headerBitsOf(Word), 0x7Fu);
}

TEST(LockWord, FatRoundTrip) {
  uint32_t Word = makeFat(654321, 0x01);
  EXPECT_TRUE(isFat(Word));
  EXPECT_FALSE(isThin(Word));
  EXPECT_FALSE(isUnlocked(Word));
  EXPECT_EQ(monitorIndexOf(Word), 654321u);
  EXPECT_EQ(headerBitsOf(Word), 0x01u);
}

TEST(LockWord, ExtremesFit) {
  uint32_t Word = makeThin(MaxThreadIndex, MaxCount, HeaderBitsMask);
  EXPECT_EQ(threadIndexOf(Word), MaxThreadIndex);
  EXPECT_EQ(countOf(Word), MaxCount);
  EXPECT_EQ(headerBitsOf(Word), HeaderBitsMask);

  uint32_t Fat = makeFat(MaxMonitorIndex, HeaderBitsMask);
  EXPECT_EQ(monitorIndexOf(Fat), MaxMonitorIndex);
}

TEST(LockWord, CountUnitIncrementsCountOnly) {
  uint32_t Word = makeThin(77, 3, 0x5A);
  uint32_t Bumped = Word + CountUnit;
  EXPECT_EQ(threadIndexOf(Bumped), 77);
  EXPECT_EQ(countOf(Bumped), 4u);
  EXPECT_EQ(headerBitsOf(Bumped), 0x5Au);
}

TEST(LockWord, ComposeByOrOfShiftedIndex) {
  // §2.3.1: new value = old (header bits) OR (index << 16).
  uint32_t Header = 0x3C;
  uint32_t Shifted = static_cast<uint32_t>(421) << ThreadIndexShift;
  uint32_t Word = Header | Shifted;
  EXPECT_EQ(Word, makeThin(421, 0, 0x3C));
}

TEST(LockWord, FieldsDoNotOverlap) {
  EXPECT_EQ(ShapeBit & ThreadIndexMask, 0u);
  EXPECT_EQ(ShapeBit & CountMask, 0u);
  EXPECT_EQ(ShapeBit & HeaderBitsMask, 0u);
  EXPECT_EQ(ThreadIndexMask & CountMask, 0u);
  EXPECT_EQ(ThreadIndexMask & HeaderBitsMask, 0u);
  EXPECT_EQ(CountMask & HeaderBitsMask, 0u);
  EXPECT_EQ(ShapeBit | ThreadIndexMask | CountMask | HeaderBitsMask,
            0xFFFFFFFFu);
  EXPECT_EQ(MonitorIndexMask, ThreadIndexMask | CountMask);
}

//===----------------------------------------------------------------------===//
// Property sweeps: the XOR tricks match the naive decoded predicates.
//===----------------------------------------------------------------------===//

namespace {

struct SweepParam {
  uint16_t Owner;   // thread index stored in the word (0 = unlocked)
  uint32_t Count;   // count field
  uint32_t Header;  // shared header byte
  uint16_t Caller;  // thread performing the check
};

std::vector<SweepParam> sweepParams() {
  const uint16_t Indices[] = {0, 1, 2, 255, 256, 4097, 32766, 32767};
  const uint32_t Counts[] = {0, 1, 2, 127, 254, 255};
  const uint32_t Headers[] = {0x00, 0x01, 0x80, 0xFF};
  std::vector<SweepParam> Params;
  for (uint16_t Owner : Indices)
    for (uint32_t Count : Counts)
      for (uint32_t Header : Headers)
        for (uint16_t Caller : Indices) {
          if (Owner == 0 && Count != 0)
            continue; // Invariant: unlocked implies count 0.
          if (Caller == 0)
            continue; // Callers are always attached threads.
          Params.push_back(SweepParam{Owner, Count, Header, Caller});
        }
  return Params;
}

class LockWordSweep : public ::testing::TestWithParam<SweepParam> {};

} // namespace

TEST_P(LockWordSweep, CanNestInlineMatchesNaivePredicate) {
  const SweepParam &P = GetParam();
  uint32_t Word = makeThin(P.Owner, P.Count, P.Header);
  uint32_t Shifted = static_cast<uint32_t>(P.Caller) << ThreadIndexShift;
  bool Naive = P.Owner != 0 && P.Owner == P.Caller && P.Count < MaxCount;
  EXPECT_EQ(canNestInline(Word, Shifted), Naive)
      << "owner=" << P.Owner << " count=" << P.Count
      << " header=" << P.Header << " caller=" << P.Caller;
}

TEST_P(LockWordSweep, SingleHoldCheckMatchesNaivePredicate) {
  const SweepParam &P = GetParam();
  uint32_t Word = makeThin(P.Owner, P.Count, P.Header);
  uint32_t Shifted = static_cast<uint32_t>(P.Caller) << ThreadIndexShift;
  bool Naive = P.Owner != 0 && P.Owner == P.Caller && P.Count == 0;
  EXPECT_EQ(isSingleHoldByOwner(Word, Shifted), Naive);
}

TEST_P(LockWordSweep, OwnershipCheckMatchesNaivePredicate) {
  const SweepParam &P = GetParam();
  uint32_t Word = makeThin(P.Owner, P.Count, P.Header);
  uint32_t Shifted = static_cast<uint32_t>(P.Caller) << ThreadIndexShift;
  bool Naive = P.Owner != 0 && P.Owner == P.Caller;
  EXPECT_EQ(isThinOwnedBy(Word, Shifted), Naive);
}

TEST_P(LockWordSweep, FatWordsNeverPassThinChecks) {
  const SweepParam &P = GetParam();
  // Build a fat word whose monitor index bits mimic the thin encoding of
  // (owner, count) — the shape bit alone must exclude it.
  uint32_t ThinLike = makeThin(P.Owner, P.Count, P.Header);
  uint32_t Word = ThinLike | ShapeBit;
  uint32_t Shifted = static_cast<uint32_t>(P.Caller) << ThreadIndexShift;
  EXPECT_FALSE(canNestInline(Word, Shifted));
  EXPECT_FALSE(isSingleHoldByOwner(Word, Shifted));
  EXPECT_FALSE(isThinOwnedBy(Word, Shifted));
  EXPECT_FALSE(isUnlocked(Word));
}

TEST_P(LockWordSweep, HeaderBitsSurviveEveryTransition) {
  const SweepParam &P = GetParam();
  uint32_t Word = makeThin(P.Owner, P.Count, P.Header);
  EXPECT_EQ(headerBitsOf(Word), P.Header);
  EXPECT_EQ(headerBitsOf(Word + CountUnit), P.Header);
  EXPECT_EQ(headerBitsOf(Word & HeaderBitsMask), P.Header);
  if (P.Owner != 0) {
    uint32_t Fat = makeFat(1, headerBitsOf(Word));
    EXPECT_EQ(headerBitsOf(Fat), P.Header);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFieldCombinations, LockWordSweep,
                         ::testing::ValuesIn(sweepParams()));

//===----------------------------------------------------------------------===//
// Monitor index sweep
//===----------------------------------------------------------------------===//

class MonitorIndexSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MonitorIndexSweep, FatRoundTripAndHeaderPreservation) {
  uint32_t Index = GetParam();
  for (uint32_t Header : {0u, 0x55u, 0xFFu}) {
    uint32_t Word = makeFat(Index, Header);
    EXPECT_TRUE(isFat(Word));
    EXPECT_EQ(monitorIndexOf(Word), Index);
    EXPECT_EQ(headerBitsOf(Word), Header);
  }
}

INSTANTIATE_TEST_SUITE_P(Indices, MonitorIndexSweep,
                         ::testing::Values(1u, 2u, 1023u, 1024u, 65535u,
                                           65536u, (1u << 23) - 1));

//===- tests/threads_test.cpp - Thread registry tests ---------------------===//

#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace thinlocks;

TEST(ThreadRegistry, AttachAssignsNonZeroIndexAndShiftedForm) {
  ThreadRegistry Registry;
  ThreadContext Ctx = Registry.attach("main");
  ASSERT_TRUE(Ctx.isValid());
  EXPECT_NE(Ctx.index(), 0);
  EXPECT_EQ(Ctx.shiftedIndex(), static_cast<uint32_t>(Ctx.index()) << 16);
  Registry.detach(Ctx);
  EXPECT_FALSE(Ctx.isValid());
}

TEST(ThreadRegistry, IndicesAreUniqueWhileAttached) {
  ThreadRegistry Registry;
  std::vector<ThreadContext> Contexts;
  std::set<uint16_t> Seen;
  for (int I = 0; I < 100; ++I) {
    Contexts.push_back(Registry.attach());
    EXPECT_TRUE(Seen.insert(Contexts.back().index()).second);
  }
  EXPECT_EQ(Registry.liveThreadCount(), 100u);
  for (auto &Ctx : Contexts)
    Registry.detach(Ctx);
  EXPECT_EQ(Registry.liveThreadCount(), 0u);
}

TEST(ThreadRegistry, DetachedIndicesAreReused) {
  ThreadRegistry Registry;
  ThreadContext A = Registry.attach();
  uint16_t Index = A.index();
  Registry.detach(A);
  ThreadContext B = Registry.attach();
  EXPECT_EQ(B.index(), Index);
  Registry.detach(B);
}

TEST(ThreadRegistry, InfoReflectsAttachment) {
  ThreadRegistry Registry;
  ThreadContext Ctx = Registry.attach("worker-7");
  const ThreadInfo *Info = Registry.info(Ctx.index());
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->Name, "worker-7");
  EXPECT_EQ(Info->Index, Ctx.index());
  uint16_t Index = Ctx.index();
  Registry.detach(Ctx);
  EXPECT_EQ(Registry.info(Index), nullptr);
}

TEST(ThreadRegistry, InfoRejectsReservedAndOutOfRange) {
  ThreadRegistry Registry;
  EXPECT_EQ(Registry.info(0), nullptr);
  EXPECT_EQ(Registry.info(ThreadRegistry::MaxThreadIndex), nullptr);
}

TEST(ThreadRegistry, PeakCountTracksHighWater) {
  ThreadRegistry Registry;
  ThreadContext A = Registry.attach();
  ThreadContext B = Registry.attach();
  EXPECT_EQ(Registry.peakThreadCount(), 2u);
  Registry.detach(A);
  ThreadContext C = Registry.attach();
  EXPECT_EQ(Registry.peakThreadCount(), 2u);
  Registry.detach(B);
  Registry.detach(C);
}

TEST(ThreadRegistry, ScopedAttachmentPublishesCurrentContext) {
  ThreadRegistry Registry;
  EXPECT_FALSE(ThreadRegistry::currentContext().isValid());
  {
    ScopedThreadAttachment Attachment(Registry, "scoped");
    EXPECT_TRUE(Attachment.context().isValid());
    EXPECT_EQ(ThreadRegistry::currentContext().index(),
              Attachment.context().index());
  }
  EXPECT_FALSE(ThreadRegistry::currentContext().isValid());
  EXPECT_EQ(Registry.liveThreadCount(), 0u);
}

TEST(ThreadRegistry, ScopedAttachmentsNest) {
  ThreadRegistry Registry;
  ScopedThreadAttachment Outer(Registry, "outer");
  uint16_t OuterIndex = Outer.context().index();
  {
    ScopedThreadAttachment Inner(Registry, "inner");
    EXPECT_NE(Inner.context().index(), OuterIndex);
    EXPECT_EQ(ThreadRegistry::currentContext().index(),
              Inner.context().index());
  }
  EXPECT_EQ(ThreadRegistry::currentContext().index(), OuterIndex);
}

TEST(ThreadRegistry, ConcurrentAttachDetachKeepsIndicesUnique) {
  ThreadRegistry Registry;
  constexpr int NumThreads = 8;
  constexpr int Rounds = 200;
  std::atomic<bool> Failed{false};
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&Registry, &Failed] {
      for (int I = 0; I < Rounds; ++I) {
        ThreadContext Ctx = Registry.attach();
        if (!Ctx.isValid() || Ctx.index() == 0) {
          Failed.store(true);
          return;
        }
        const ThreadInfo *Info = Registry.info(Ctx.index());
        if (!Info || Info->Index != Ctx.index())
          Failed.store(true);
        Registry.detach(Ctx);
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  EXPECT_FALSE(Failed.load());
  EXPECT_EQ(Registry.liveThreadCount(), 0u);
}

TEST(ThreadRegistry, ManyAttachmentsStayBelowIndexLimit) {
  ThreadRegistry Registry;
  std::vector<ThreadContext> Contexts;
  for (int I = 0; I < 1000; ++I) {
    Contexts.push_back(Registry.attach());
    ASSERT_TRUE(Contexts.back().isValid());
    ASSERT_LE(Contexts.back().index(), ThreadRegistry::MaxThreadIndex);
  }
  for (auto &Ctx : Contexts)
    Registry.detach(Ctx);
}

//===- tests/waitnotify_test.cpp - Condition synchronization end-to-end ---===//
//
// Java-style guarded-suspension patterns built on the thin-lock protocol:
// bounded buffer, barrier, and ping-pong.  These are the workloads the
// fat-lock substrate exists for (§2.1), reached through thin-lock
// inflation.
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <deque>
#include <thread>
#include <vector>

using namespace thinlocks;

namespace {

class WaitNotifyTest : public ::testing::Test {
protected:
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  ThinLockManager Locks{Monitors};
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    Class = &TheHeap.classes().registerClass("W", 0);
  }

  Object *newObject() { return TheHeap.allocate(*Class); }
};

} // namespace

TEST_F(WaitNotifyTest, BoundedBufferProducerConsumer) {
  Object *Monitor = newObject();
  std::deque<int> Buffer; // Guarded by Monitor.
  constexpr size_t Capacity = 4;
  constexpr int Items = 2000;

  std::thread Producer([&] {
    ScopedThreadAttachment Attachment(Registry, "producer");
    const ThreadContext &T = Attachment.context();
    for (int I = 0; I < Items; ++I) {
      Locks.lock(Monitor, T);
      while (Buffer.size() == Capacity)
        ASSERT_EQ(Locks.wait(Monitor, T, -1), WaitStatus::Notified);
      Buffer.push_back(I);
      Locks.notifyAll(Monitor, T);
      Locks.unlock(Monitor, T);
    }
  });

  std::vector<int> Received;
  std::thread Consumer([&] {
    ScopedThreadAttachment Attachment(Registry, "consumer");
    const ThreadContext &T = Attachment.context();
    for (int I = 0; I < Items; ++I) {
      Locks.lock(Monitor, T);
      while (Buffer.empty())
        ASSERT_EQ(Locks.wait(Monitor, T, -1), WaitStatus::Notified);
      Received.push_back(Buffer.front());
      Buffer.pop_front();
      Locks.notifyAll(Monitor, T);
      Locks.unlock(Monitor, T);
    }
  });

  Producer.join();
  Consumer.join();
  ASSERT_EQ(Received.size(), static_cast<size_t>(Items));
  for (int I = 0; I < Items; ++I)
    EXPECT_EQ(Received[I], I); // FIFO through the buffer.
  EXPECT_TRUE(Locks.isInflated(Monitor)); // wait() inflated it.
}

TEST_F(WaitNotifyTest, PingPongAlternation) {
  Object *Monitor = newObject();
  int Turn = 0; // 0 = ping's turn, 1 = pong's. Guarded by Monitor.
  std::vector<int> Sequence;
  constexpr int Rounds = 500;

  auto Player = [&](int Me) {
    ScopedThreadAttachment Attachment(Registry);
    const ThreadContext &T = Attachment.context();
    for (int I = 0; I < Rounds; ++I) {
      Locks.lock(Monitor, T);
      while (Turn != Me)
        Locks.wait(Monitor, T, -1);
      Sequence.push_back(Me);
      Turn = 1 - Me;
      Locks.notifyAll(Monitor, T);
      Locks.unlock(Monitor, T);
    }
  };

  std::thread Ping(Player, 0);
  std::thread Pong(Player, 1);
  Ping.join();
  Pong.join();

  ASSERT_EQ(Sequence.size(), 2u * Rounds);
  for (size_t I = 0; I < Sequence.size(); ++I)
    EXPECT_EQ(Sequence[I], static_cast<int>(I % 2));
}

TEST_F(WaitNotifyTest, BarrierWithNotifyAll) {
  Object *Monitor = newObject();
  constexpr int Parties = 5;
  int Arrived = 0; // Guarded by Monitor.
  std::atomic<int> Released{0};

  std::vector<std::thread> Workers;
  for (int P = 0; P < Parties; ++P) {
    Workers.emplace_back([&] {
      ScopedThreadAttachment Attachment(Registry);
      const ThreadContext &T = Attachment.context();
      Locks.lock(Monitor, T);
      if (++Arrived == Parties) {
        Locks.notifyAll(Monitor, T);
      } else {
        while (Arrived < Parties)
          Locks.wait(Monitor, T, -1);
      }
      Locks.unlock(Monitor, T);
      Released.fetch_add(1);
    });
  }
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Released.load(), Parties);
}

TEST_F(WaitNotifyTest, TimedWaitWakesUpWithoutNotify) {
  Object *Monitor = newObject();
  ScopedThreadAttachment Attachment(Registry);
  const ThreadContext &T = Attachment.context();
  Locks.lock(Monitor, T);
  for (int I = 0; I < 3; ++I) {
    WaitStatus Status = Locks.wait(Monitor, T, /*TimeoutNanos=*/2'000'000);
    EXPECT_EQ(Status, WaitStatus::TimedOut);
    EXPECT_TRUE(Locks.holdsLock(Monitor, T));
  }
  Locks.unlock(Monitor, T);
}

TEST_F(WaitNotifyTest, NotifyBeforeAnyWaiterIsLost) {
  // Java semantics: notifications are not queued.
  Object *Monitor = newObject();
  ScopedThreadAttachment Attachment(Registry);
  const ThreadContext &T = Attachment.context();
  Locks.lock(Monitor, T);
  Locks.notify(Monitor, T); // Nobody waiting: lost.
  WaitStatus Status = Locks.wait(Monitor, T, /*TimeoutNanos=*/5'000'000);
  EXPECT_EQ(Status, WaitStatus::TimedOut);
  Locks.unlock(Monitor, T);
}

TEST_F(WaitNotifyTest, ManyProducersManyConsumers) {
  Object *Monitor = newObject();
  std::deque<int> Buffer;
  constexpr int ProducerCount = 3;
  constexpr int ConsumerCount = 3;
  constexpr int ItemsPerProducer = 400;
  constexpr size_t Capacity = 8;
  std::atomic<long long> ConsumedSum{0};

  std::vector<std::thread> Threads;
  for (int P = 0; P < ProducerCount; ++P) {
    Threads.emplace_back([&, P] {
      ScopedThreadAttachment Attachment(Registry);
      const ThreadContext &T = Attachment.context();
      for (int I = 0; I < ItemsPerProducer; ++I) {
        Locks.lock(Monitor, T);
        while (Buffer.size() == Capacity)
          Locks.wait(Monitor, T, -1);
        Buffer.push_back(P * ItemsPerProducer + I);
        Locks.notifyAll(Monitor, T);
        Locks.unlock(Monitor, T);
      }
    });
  }
  for (int C = 0; C < ConsumerCount; ++C) {
    Threads.emplace_back([&] {
      ScopedThreadAttachment Attachment(Registry);
      const ThreadContext &T = Attachment.context();
      for (int I = 0; I < ItemsPerProducer; ++I) {
        Locks.lock(Monitor, T);
        while (Buffer.empty())
          Locks.wait(Monitor, T, -1);
        ConsumedSum.fetch_add(Buffer.front());
        Buffer.pop_front();
        Locks.notifyAll(Monitor, T);
        Locks.unlock(Monitor, T);
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();

  long long Expected = 0;
  for (int P = 0; P < ProducerCount; ++P)
    for (int I = 0; I < ItemsPerProducer; ++I)
      Expected += P * ItemsPerProducer + I;
  EXPECT_EQ(ConsumedSum.load(), Expected);
  EXPECT_TRUE(Buffer.empty());
}

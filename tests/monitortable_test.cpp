//===- tests/monitortable_test.cpp - Monitor index table tests ------------===//

#include "fatlock/MonitorTable.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

using namespace thinlocks;

TEST(MonitorTable, IndexZeroIsNeverAllocated) {
  MonitorTable Table;
  EXPECT_EQ(Table.allocate(), 1u);
  EXPECT_EQ(Table.allocate(), 2u);
}

TEST(MonitorTable, GetReturnsDistinctMonitors) {
  MonitorTable Table;
  uint32_t A = Table.allocate();
  uint32_t B = Table.allocate();
  EXPECT_NE(Table.get(A), nullptr);
  EXPECT_NE(Table.get(B), nullptr);
  EXPECT_NE(Table.get(A), Table.get(B));
  EXPECT_EQ(Table.get(A), Table.get(A));
}

TEST(MonitorTable, LiveCountTracksAllocations) {
  MonitorTable Table;
  EXPECT_EQ(Table.liveMonitorCount(), 0u);
  for (int I = 0; I < 10; ++I)
    Table.allocate();
  EXPECT_EQ(Table.liveMonitorCount(), 10u);
}

TEST(MonitorTable, AllocationsSpanSegments) {
  MonitorTable Table;
  std::set<FatLock *> Monitors;
  // Cross at least two segment boundaries.
  uint32_t Count = MonitorTable::SegmentSize * 2 + 10;
  uint32_t LastIndex = 0;
  for (uint32_t I = 0; I < Count; ++I) {
    LastIndex = Table.allocate();
    ASSERT_NE(LastIndex, 0u);
    Monitors.insert(Table.get(LastIndex));
  }
  EXPECT_EQ(LastIndex, Count);
  EXPECT_EQ(Monitors.size(), Count);
}

TEST(MonitorTable, MonitorsAreUsableAcrossSegments) {
  MonitorTable Table;
  ThreadRegistry Registry;
  ScopedThreadAttachment Attachment(Registry);
  uint32_t Index = 0;
  for (uint32_t I = 0; I < MonitorTable::SegmentSize + 1; ++I)
    Index = Table.allocate();
  FatLock *Lock = Table.get(Index);
  Lock->lock(Attachment.context());
  EXPECT_TRUE(Lock->heldBy(Attachment.context()));
  Lock->unlock(Attachment.context());
}

TEST(MonitorTable, ConcurrentAllocationYieldsUniqueIndices) {
  MonitorTable Table;
  constexpr int NumThreads = 4;
  constexpr int PerThread = 1000;
  std::vector<std::vector<uint32_t>> Indices(NumThreads);
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T)
    Workers.emplace_back([&Table, &Indices, T] {
      for (int I = 0; I < PerThread; ++I)
        Indices[T].push_back(Table.allocate());
    });
  for (auto &W : Workers)
    W.join();
  std::set<uint32_t> All;
  for (auto &List : Indices)
    for (uint32_t Index : List) {
      EXPECT_NE(Index, 0u);
      EXPECT_TRUE(All.insert(Index).second);
    }
  EXPECT_EQ(All.size(), static_cast<size_t>(NumThreads) * PerThread);
  // Concurrent readers resolve every index.
  for (uint32_t Index : All)
    EXPECT_NE(Table.get(Index), nullptr);
}

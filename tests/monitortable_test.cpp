//===- tests/monitortable_test.cpp - Monitor index table tests ------------===//

#include "fatlock/MonitorTable.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

using namespace thinlocks;

TEST(MonitorTable, IndexZeroIsNeverAllocated) {
  MonitorTable Table;
  EXPECT_EQ(Table.allocate(), 1u);
  EXPECT_EQ(Table.allocate(), 2u);
}

TEST(MonitorTable, GetReturnsDistinctMonitors) {
  MonitorTable Table;
  uint32_t A = Table.allocate();
  uint32_t B = Table.allocate();
  EXPECT_NE(Table.get(A), nullptr);
  EXPECT_NE(Table.get(B), nullptr);
  EXPECT_NE(Table.get(A), Table.get(B));
  EXPECT_EQ(Table.get(A), Table.get(A));
}

TEST(MonitorTable, LiveCountTracksAllocations) {
  MonitorTable Table;
  EXPECT_EQ(Table.liveMonitorCount(), 0u);
  for (int I = 0; I < 10; ++I)
    Table.allocate();
  EXPECT_EQ(Table.liveMonitorCount(), 10u);
}

TEST(MonitorTable, AllocationsSpanSegments) {
  MonitorTable Table;
  std::set<FatLock *> Monitors;
  // Cross at least two segment boundaries.
  uint32_t Count = MonitorTable::SegmentSize * 2 + 10;
  uint32_t LastIndex = 0;
  for (uint32_t I = 0; I < Count; ++I) {
    LastIndex = Table.allocate();
    ASSERT_NE(LastIndex, 0u);
    Monitors.insert(Table.get(LastIndex));
  }
  EXPECT_EQ(LastIndex, Count);
  EXPECT_EQ(Monitors.size(), Count);
}

TEST(MonitorTable, MonitorsAreUsableAcrossSegments) {
  MonitorTable Table;
  ThreadRegistry Registry;
  ScopedThreadAttachment Attachment(Registry);
  uint32_t Index = 0;
  for (uint32_t I = 0; I < MonitorTable::SegmentSize + 1; ++I)
    Index = Table.allocate();
  FatLock *Lock = Table.get(Index);
  Lock->lock(Attachment.context());
  EXPECT_TRUE(Lock->heldBy(Attachment.context()));
  Lock->unlock(Attachment.context());
}

TEST(MonitorTable, ConcurrentAllocationYieldsUniqueIndices) {
  MonitorTable Table;
  constexpr int NumThreads = 4;
  constexpr int PerThread = 1000;
  std::vector<std::vector<uint32_t>> Indices(NumThreads);
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T)
    Workers.emplace_back([&Table, &Indices, T] {
      for (int I = 0; I < PerThread; ++I)
        Indices[T].push_back(Table.allocate());
    });
  for (auto &W : Workers)
    W.join();
  std::set<uint32_t> All;
  for (auto &List : Indices)
    for (uint32_t Index : List) {
      EXPECT_NE(Index, 0u);
      EXPECT_TRUE(All.insert(Index).second);
    }
  EXPECT_EQ(All.size(), static_cast<size_t>(NumThreads) * PerThread);
  // Concurrent readers resolve every index.
  for (uint32_t Index : All)
    EXPECT_NE(Table.get(Index), nullptr);
}

TEST(MonitorTable, ConcurrentStressKeepsLiveCountExact) {
  MonitorTable Table;
  ThreadRegistry Registry;
  constexpr int NumThreads = 8;
  constexpr int PerThread = 2000;
  std::vector<std::vector<uint32_t>> Indices(NumThreads);
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T)
    Workers.emplace_back([&Table, &Registry, &Indices, T] {
      // Odd workers attach (exclusive stripes, per-index shards); even
      // workers stay unattached (hashed fallback stripes) so both shard
      // selection paths race each other.
      std::unique_ptr<ScopedThreadAttachment> Attach;
      if (T % 2)
        Attach = std::make_unique<ScopedThreadAttachment>(Registry, "alloc");
      for (int I = 0; I < PerThread; ++I)
        Indices[T].push_back(Table.allocate());
    });
  for (auto &W : Workers)
    W.join();
  std::set<uint32_t> All;
  for (auto &List : Indices)
    for (uint32_t Index : List) {
      ASSERT_NE(Index, 0u);
      EXPECT_TRUE(All.insert(Index).second);
      EXPECT_NE(Table.get(Index), nullptr);
    }
  EXPECT_EQ(All.size(), static_cast<size_t>(NumThreads) * PerThread);
  EXPECT_EQ(Table.liveMonitorCount(),
            static_cast<uint32_t>(NumThreads) * PerThread);
  EXPECT_EQ(Table.exhaustionEvents(), 0u);
}

TEST(MonitorTable, ConcurrentExhaustionIsExactWithPartialBlocks) {
  // Capacity chosen so the central cursor hands out one full block (64)
  // and one partial block (35): exhaustion must drain both remainders —
  // indices reserved to a shard but not yet handed out are never lost —
  // and then count exactly one event per failed allocate().
  constexpr uint32_t Capacity = 100;
  MonitorTable Table(Capacity);
  constexpr int NumThreads = 4;
  constexpr int PerThread = 100; // 400 attempts for 99 usable indices.
  std::vector<std::vector<uint32_t>> Indices(NumThreads);
  std::atomic<uint64_t> Failures{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T)
    Workers.emplace_back([&Table, &Indices, &Failures, T] {
      for (int I = 0; I < PerThread; ++I) {
        uint32_t Index = Table.allocate();
        if (Index)
          Indices[T].push_back(Index);
        else
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto &W : Workers)
    W.join();
  std::set<uint32_t> All;
  for (auto &List : Indices)
    for (uint32_t Index : List)
      EXPECT_TRUE(All.insert(Index).second);
  // Every usable index was handed out exactly once before any failure
  // was reported.
  EXPECT_EQ(All.size(), static_cast<size_t>(Capacity) - 1);
  for (uint32_t I = 1; I < Capacity; ++I)
    EXPECT_EQ(All.count(I), 1u) << "index " << I << " leaked";
  EXPECT_EQ(Table.liveMonitorCount(), Capacity - 1);
  EXPECT_EQ(Table.exhaustionEvents(), Failures.load());
  EXPECT_EQ(Failures.load(),
            static_cast<uint64_t>(NumThreads) * PerThread - (Capacity - 1));
  // The emergency monitor is untouched by exhaustion accounting.
  EXPECT_NE(Table.emergencyMonitor(), nullptr);
  EXPECT_EQ(Table.emergencyIndex(), Capacity);
}

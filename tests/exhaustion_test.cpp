//===- tests/exhaustion_test.cpp - Resource-exhaustion & failure modes ----===//
//
// The robustness layers beyond the paper, exercised with *real* resource
// pressure (no failpoints needed, so these run in every build mode):
//
//  - nested-hold count overflow across the 255/256/257 boundary;
//  - MonitorTable exhaustion and the shared emergency-monitor degradation
//    (including its documented coarsening artifacts);
//  - ThreadRegistry index exhaustion as a typed error, and the
//    quarantine that keeps a recycled index from impersonating a dead
//    thread's abandoned locks;
//  - the deadlock detector: tryLockFor distinguishing TimedOut from a
//    double-confirmed Deadlock, and the lock() watchdog aborting with a
//    formatted cycle report;
//  - corrupted lock words terminating loudly in every build mode.
//
//===----------------------------------------------------------------------===//

#include "core/Deadlock.h"
#include "core/OwnershipAudit.h"
#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace thinlocks;

namespace {

class ExhaustionTest : public ::testing::Test {
protected:
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockManager Locks{Monitors, &Stats};
  ThreadContext Main;
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    Main = Registry.attach("main");
    Class = &TheHeap.classes().registerClass("T", 1);
  }
  void TearDown() override { Registry.detach(Main); }

  Object *newObject() { return TheHeap.allocate(*Class); }
};

/// Same stack with a monitor table small enough to exhaust for real.
class SmallTableTest : public ::testing::Test {
protected:
  static constexpr uint32_t Capacity = 4; // allocate() hands out 1..3.
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors{Capacity};
  LockStats Stats;
  ThinLockManager Locks{Monitors, &Stats};
  ThreadContext Main;
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    Main = Registry.attach("main");
    Class = &TheHeap.classes().registerClass("T", 1);
  }
  void TearDown() override { Registry.detach(Main); }

  Object *newObject() { return TheHeap.allocate(*Class); }

  /// Forces inflation of \p Obj via wait() (always inflates).
  void inflate(Object *Obj) {
    Locks.lock(Obj, Main);
    EXPECT_EQ(Locks.wait(Obj, Main, 1'000'000), WaitStatus::TimedOut);
    Locks.unlock(Obj, Main);
    EXPECT_TRUE(Locks.isInflated(Obj));
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Count overflow boundary (paper §2.3.3: 8-bit count = holds - 1).
//===----------------------------------------------------------------------===//

TEST_F(ExhaustionTest, CountOverflowBoundary255_256_257) {
  Object *Obj = newObject();

  // Holds 1..255: thin, count = holds - 1.
  for (uint32_t Hold = 1; Hold <= 255; ++Hold)
    Locks.lock(Obj, Main);
  uint32_t Word = Obj->lockWord().load();
  ASSERT_TRUE(lockword::isThin(Word));
  EXPECT_EQ(lockword::countOf(Word), 254u);
  EXPECT_EQ(Locks.lockDepth(Obj, Main), 255u);

  // Hold 256: the count field saturates exactly at its maximum.
  Locks.lock(Obj, Main);
  Word = Obj->lockWord().load();
  ASSERT_TRUE(lockword::isThin(Word));
  EXPECT_EQ(lockword::countOf(Word), lockword::MaxCount);
  EXPECT_EQ(Locks.lockDepth(Obj, Main), 256u);
  EXPECT_EQ(Stats.overflowInflations(), 0u);

  // Hold 257: no room in 8 bits — inflate, transferring all 257 holds.
  Locks.lock(Obj, Main);
  EXPECT_TRUE(Locks.isInflated(Obj));
  EXPECT_EQ(Locks.lockDepth(Obj, Main), 257u);
  EXPECT_EQ(Stats.overflowInflations(), 1u);

  // Recursive unlock all the way down, through the fat lock.
  for (uint32_t Hold = 257; Hold >= 1; --Hold) {
    EXPECT_EQ(Locks.lockDepth(Obj, Main), Hold);
    Locks.unlock(Obj, Main);
  }
  EXPECT_FALSE(Locks.holdsLock(Obj, Main));
  EXPECT_EQ(Locks.lockDepth(Obj, Main), 0u);
  // Inflation is permanent (paper discipline; deflation is off here).
  EXPECT_TRUE(Locks.isInflated(Obj));

  // The inflated monitor still supports re-entry after full release.
  Locks.lock(Obj, Main);
  EXPECT_EQ(Locks.lockDepth(Obj, Main), 1u);
  Locks.unlock(Obj, Main);
}

//===----------------------------------------------------------------------===//
// MonitorTable exhaustion and the emergency monitor.
//===----------------------------------------------------------------------===//

TEST(MonitorTableExhaustion, AllocateReturnsZeroWhenFull) {
  MonitorTable Table(8); // Usable indices 1..7; emergency pinned at 8.
  std::vector<uint32_t> Indices;
  for (uint32_t I = 1; I <= 7; ++I) {
    uint32_t Index = Table.allocate();
    ASSERT_NE(Index, 0u);
    Indices.push_back(Index);
    EXPECT_NE(Table.get(Index), nullptr);
  }
  std::sort(Indices.begin(), Indices.end());
  for (uint32_t I = 0; I < 7; ++I)
    EXPECT_EQ(Indices[I], I + 1);

  EXPECT_EQ(Table.allocate(), 0u);
  EXPECT_EQ(Table.allocate(), 0u);
  EXPECT_EQ(Table.exhaustionEvents(), 2u);
  EXPECT_EQ(Table.liveMonitorCount(), 7u);

  EXPECT_EQ(Table.emergencyIndex(), 8u);
  ASSERT_NE(Table.emergencyMonitor(), nullptr);
  EXPECT_TRUE(Table.emergencyMonitor()->isPinned());
  EXPECT_EQ(Table.get(Table.emergencyIndex()), Table.emergencyMonitor());
}

TEST_F(SmallTableTest, ExhaustionDegradesToSharedEmergencyMonitor) {
  // Six objects inflate against 3 allocatable monitors: the first three
  // get private fat locks, the rest all land on the emergency monitor.
  std::vector<Object *> Objects;
  for (int I = 0; I < 6; ++I) {
    Objects.push_back(newObject());
    inflate(Objects.back());
  }

  uint32_t EmergencyCount = 0;
  for (Object *Obj : Objects)
    if (lockword::monitorIndexOf(Obj->lockWord().load()) ==
        Monitors.emergencyIndex())
      ++EmergencyCount;
  EXPECT_EQ(EmergencyCount, 3u);
  EXPECT_EQ(Stats.emergencyInflations(), 3u);
  EXPECT_EQ(Monitors.exhaustionEvents(), 3u);
  EXPECT_EQ(Monitors.liveMonitorCount(), 3u);

  // Degraded-mode semantics on two emergency-monitored objects: mutual
  // exclusion and balanced nesting still hold, but the shared monitor
  // *coarsens* — holding one emergency object reports ownership of all
  // of them, and depths merge.  DESIGN.md documents this as the accepted
  // cost of the last-resort mode.
  Object *A = Objects[3];
  Object *B = Objects[4];
  ASSERT_EQ(lockword::monitorIndexOf(A->lockWord().load()),
            Monitors.emergencyIndex());
  ASSERT_EQ(lockword::monitorIndexOf(B->lockWord().load()),
            Monitors.emergencyIndex());

  Locks.lock(A, Main);
  EXPECT_TRUE(Locks.holdsLock(A, Main));
  EXPECT_TRUE(Locks.holdsLock(B, Main)); // Coarsening artifact.
  Locks.lock(B, Main);
  EXPECT_EQ(Locks.lockDepth(A, Main), 2u); // Merged hold count.
  Locks.unlock(B, Main);
  EXPECT_EQ(Locks.lockDepth(A, Main), 1u);
  Locks.unlock(A, Main);
  EXPECT_FALSE(Locks.holdsLock(A, Main));
  EXPECT_FALSE(Locks.holdsLock(B, Main));

  // The emergency monitor still excludes across threads.
  Locks.lock(A, Main);
  std::atomic<bool> Acquired{false};
  std::thread Other([&] {
    ScopedThreadAttachment Attachment(Registry, "other");
    Locks.lock(B, Attachment.context()); // Same shared monitor as A.
    Acquired.store(true);
    Locks.unlock(B, Attachment.context());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(Acquired.load()); // Blocked while we hold A.
  Locks.unlock(A, Main);
  Other.join();
  EXPECT_TRUE(Acquired.load());
}

//===----------------------------------------------------------------------===//
// ThreadRegistry exhaustion and index quarantine.
//===----------------------------------------------------------------------===//

TEST(ThreadRegistryExhaustion, AttachFailsTypedAtIndex32768) {
  ThreadRegistry Registry;
  std::vector<ThreadContext> Contexts;
  Contexts.reserve(ThreadRegistry::MaxThreadIndex);
  for (uint32_t I = 0; I < ThreadRegistry::MaxThreadIndex; ++I) {
    AttachError Error = AttachError::Exhausted;
    ThreadContext Ctx = Registry.attach(std::string(), &Error);
    ASSERT_TRUE(Ctx.isValid()) << "attach " << I << " failed early";
    ASSERT_EQ(Error, AttachError::None);
    Contexts.push_back(Ctx);
  }
  EXPECT_EQ(Registry.liveThreadCount(), ThreadRegistry::MaxThreadIndex);

  // Index 0 is reserved, so the 32768th simultaneous attach must fail —
  // with the typed reason, not just an invalid context.
  AttachError Error = AttachError::None;
  ThreadContext Overflow = Registry.attach("overflow", &Error);
  EXPECT_FALSE(Overflow.isValid());
  EXPECT_EQ(Error, AttachError::Exhausted);
  EXPECT_EQ(Registry.exhaustionEvents(), 1u);

  // Releasing any index makes attach work again.
  Registry.detach(Contexts.back());
  Contexts.pop_back();
  ThreadContext Recovered = Registry.attach("recovered", &Error);
  EXPECT_TRUE(Recovered.isValid());
  EXPECT_EQ(Error, AttachError::None);
  Registry.detach(Recovered);

  for (ThreadContext &Ctx : Contexts)
    Registry.detach(Ctx);
  EXPECT_EQ(Registry.liveThreadCount(), 0u);
}

TEST(IndexQuarantine, DetachQuarantinesIndexStillInLiveLockWord) {
  Heap TheHeap;
  MonitorTable Monitors;
  ThreadRegistry Registry;
  Registry.setIndexAuditor(makeLockWordAuditor(TheHeap, Monitors));
  ThinLockManager Locks{Monitors};
  const ClassInfo &Class = TheHeap.classes().registerClass("T", 1);

  // A thread locks an object and detaches without unlocking (thread
  // death with a held monitor).
  ThreadContext Evil = Registry.attach("evil");
  uint16_t EvilIndex = Evil.index();
  Object *Obj = TheHeap.allocate(Class);
  Locks.lock(Obj, Evil);
  Registry.detach(Evil);
  EXPECT_EQ(Registry.quarantinedIndexCount(), 1u);

  // The stale word still encodes EvilIndex, but a fresh attach must not
  // receive that index — so it cannot falsely own the abandoned lock.
  ThreadContext Fresh = Registry.attach("fresh");
  EXPECT_NE(Fresh.index(), EvilIndex);
  EXPECT_FALSE(Locks.holdsLock(Obj, Fresh));
  EXPECT_EQ(Locks.lockDepth(Obj, Fresh), 0u);
  Registry.detach(Fresh);
  EXPECT_EQ(Registry.quarantinedIndexCount(), 1u);
}

TEST(IndexQuarantine, WithoutAuditorRecycledIndexImpersonatesDeadOwner) {
  // The hazard the auditor exists to prevent, demonstrated: with plain
  // recycling, the next thread inherits the dead thread's index and the
  // stale thin word says it owns a lock it never took.
  Heap TheHeap;
  MonitorTable Monitors;
  ThreadRegistry Registry; // No auditor installed.
  ThinLockManager Locks{Monitors};
  const ClassInfo &Class = TheHeap.classes().registerClass("T", 1);

  ThreadContext Evil = Registry.attach("evil");
  uint16_t EvilIndex = Evil.index();
  Object *Obj = TheHeap.allocate(Class);
  Locks.lock(Obj, Evil);
  Registry.detach(Evil);
  EXPECT_EQ(Registry.quarantinedIndexCount(), 0u);

  ThreadContext Imposter = Registry.attach("imposter");
  ASSERT_EQ(Imposter.index(), EvilIndex); // LIFO recycling.
  EXPECT_TRUE(Locks.holdsLock(Obj, Imposter)); // The false ownership.
  // Clean up the stale word so teardown sees a consistent heap.
  Locks.unlock(Obj, Imposter);
  Registry.detach(Imposter);
}

TEST(OwnershipAudit, ObjectsLockedByFindsThinAndFatOwnership) {
  Heap TheHeap;
  MonitorTable Monitors;
  ThreadRegistry Registry;
  ThinLockManager Locks{Monitors};
  const ClassInfo &Class = TheHeap.classes().registerClass("T", 1);
  ThreadContext Main = Registry.attach("main");

  Object *Thin = TheHeap.allocate(Class);
  Object *Fat = TheHeap.allocate(Class);
  Object *Idle = TheHeap.allocate(Class);
  Locks.lock(Thin, Main);
  Locks.lock(Fat, Main);
  EXPECT_EQ(Locks.wait(Fat, Main, 1'000'000), WaitStatus::TimedOut);
  ASSERT_TRUE(Locks.isInflated(Fat));

  std::vector<const Object *> Owned =
      objectsLockedBy(Main.index(), TheHeap, Monitors);
  EXPECT_EQ(Owned.size(), 2u);
  EXPECT_NE(std::find(Owned.begin(), Owned.end(), Thin), Owned.end());
  EXPECT_NE(std::find(Owned.begin(), Owned.end(), Fat), Owned.end());
  EXPECT_EQ(std::find(Owned.begin(), Owned.end(), Idle), Owned.end());

  Locks.unlock(Fat, Main);
  Locks.unlock(Thin, Main);
  EXPECT_TRUE(objectsLockedBy(Main.index(), TheHeap, Monitors).empty());
  Registry.detach(Main);
}

//===----------------------------------------------------------------------===//
// Deadlock detection.
//===----------------------------------------------------------------------===//

TEST_F(ExhaustionTest, TryLockForTimesOutWithoutFalseDeadlock) {
  Object *Obj = newObject();
  std::atomic<bool> Locked{false};
  std::atomic<bool> Release{false};
  std::thread Holder([&] {
    ScopedThreadAttachment Attachment(Registry, "holder");
    Locks.lock(Obj, Attachment.context());
    Locked.store(true);
    while (!Release.load())
      std::this_thread::yield();
    Locks.unlock(Obj, Attachment.context());
  });
  while (!Locked.load())
    std::this_thread::yield();

  // The holder is running, not blocked: no cycle exists, so the bounded
  // acquire reports a plain timeout.
  DeadlockReport Report;
  EXPECT_EQ(Locks.tryLockFor(Obj, Main, 30'000'000, &Report),
            TimedLockStatus::TimedOut);
  EXPECT_FALSE(Report.hasCycle());
  EXPECT_GE(Stats.timedOutAcquisitions(), 1u);
  EXPECT_EQ(Stats.deadlocksDetected(), 0u);

  Release.store(true);
  Holder.join();
  // And with the holder gone, the same call acquires.
  EXPECT_EQ(Locks.tryLockFor(Obj, Main, 30'000'000),
            TimedLockStatus::Acquired);
  Locks.unlock(Obj, Main);
}

TEST_F(ExhaustionTest, TryLockForConfirmsTwoThreadCycle) {
  // Watchdog must not abort: main deliberately creates the cycle and
  // expects the *typed* Deadlock status back.
  ContentionOptions Options;
  Options.AbortOnDeadlock = false;
  Locks.setContentionOptions(Options);

  Object *A = newObject();
  Object *B = newObject();
  Locks.lock(A, Main);

  std::atomic<uint16_t> T2Index{0};
  std::thread T2([&] {
    ScopedThreadAttachment Attachment(Registry, "t2");
    Locks.lock(B, Attachment.context());
    T2Index.store(Attachment.context().index());
    Locks.lock(A, Attachment.context()); // Blocks until main unlocks A.
    Locks.unlock(A, Attachment.context());
    Locks.unlock(B, Attachment.context());
  });

  // Wait until T2's waits-for edge (blocked on A) is published, so the
  // cycle exists before we start the bounded acquire.
  while (T2Index.load() == 0 ||
         Registry.blockedOn(T2Index.load()) != A)
    std::this_thread::yield();

  DeadlockReport Report;
  EXPECT_EQ(Locks.tryLockFor(B, Main, 50'000'000, &Report),
            TimedLockStatus::Deadlock);
  ASSERT_TRUE(Report.hasCycle());
  ASSERT_EQ(Report.Cycle.size(), 2u);

  std::string Formatted = Report.format();
  EXPECT_NE(Formatted.find("deadlock"), std::string::npos);
  EXPECT_NE(Formatted.find("main"), std::string::npos);
  EXPECT_NE(Formatted.find("t2"), std::string::npos);
  // The cycle names both contested objects with their hold counts.
  bool SawA = false, SawB = false;
  for (const DeadlockEdge &Edge : Report.Cycle) {
    SawA = SawA || Edge.WaitsFor == A;
    SawB = SawB || Edge.WaitsFor == B;
    EXPECT_GE(Edge.OwnerHolds, 1u);
  }
  EXPECT_TRUE(SawA);
  EXPECT_TRUE(SawB);
  EXPECT_GE(Stats.deadlocksDetected(), 1u);

  // Break the cycle; everything drains and the system recovers.
  Locks.unlock(A, Main);
  T2.join();
  EXPECT_EQ(Locks.tryLockFor(B, Main, 1'000'000'000),
            TimedLockStatus::Acquired);
  Locks.unlock(B, Main);
}

TEST(DeadlockWatchdogDeathTest, BlockedLockAbortsWithCycleReport) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The default policy: a confirmed cycle in plain lock() is fatal and
  // the report names the cycle.  Aggressive spin tuning makes the
  // watchdog fire within milliseconds instead of seconds.
  EXPECT_DEATH(
      ([] {
        Heap TheHeap;
        ThreadRegistry Registry;
        MonitorTable Monitors;
        ContentionOptions Options;
        Options.Spin.YieldThresholdRound = 0;
        Options.Spin.ParkThresholdRound = 0;
        Options.Spin.MinParkNanos = 1'000;
        Options.Spin.MaxParkNanos = 100'000;
        Options.WatchdogParkPeriod = 8;
        Options.AbortOnDeadlock = true;
        ThinLockManager Locks{Monitors, nullptr, DeflationPolicy::Never,
                              Options};
        const ClassInfo &Class = TheHeap.classes().registerClass("T", 1);
        Object *A = TheHeap.allocate(Class);
        Object *B = TheHeap.allocate(Class);

        ThreadContext Main = Registry.attach("main");
        Locks.lock(A, Main);
        std::atomic<uint16_t> T2Index{0};
        std::thread T2([&] {
          ScopedThreadAttachment Attachment(Registry, "t2");
          Locks.lock(B, Attachment.context());
          T2Index.store(Attachment.context().index());
          Locks.lock(A, Attachment.context()); // Never returns: aborts.
        });
        while (T2Index.load() == 0 ||
               Registry.blockedOn(T2Index.load()) != A)
          std::this_thread::yield();
        Locks.lock(B, Main); // Watchdog confirms the cycle and aborts.
        T2.join();           // Unreachable.
      })(),
      "deadlock");
}

//===----------------------------------------------------------------------===//
// Corrupted lock words fail loudly in every build mode.
//===----------------------------------------------------------------------===//

TEST(CorruptionDeathTest, MonitorTableRejectsBadIndices) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MonitorTable Table(16);
  uint32_t Allocated = Table.allocate();
  ASSERT_EQ(Allocated, 1u);

  EXPECT_DEATH(Table.get(0), "monitor index");
  EXPECT_DEATH(Table.get(17), "monitor index");       // Beyond capacity.
  EXPECT_DEATH(Table.get(5), "never allocated");      // In-range hole.
}

TEST(CorruptionDeathTest, ResolveRejectsCorruptLockWords) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MonitorTable Table(16);
  ASSERT_EQ(Table.allocate(), 1u);

  // A thin word can never name a monitor.
  EXPECT_DEATH(Table.resolve(lockword::makeThin(3, 0, 0)),
               "corrupt lock word");
  // A fat word naming a never-allocated slot is corruption, not a crash
  // into garbage memory.
  EXPECT_DEATH(Table.resolve(lockword::makeFat(9, 0)), "never allocated");
}

//===----------------------------------------------------------------------===//
// VM-level surfacing.
//===----------------------------------------------------------------------===//

TEST(VMExhaustion, SpawnTrapsWhenRegistryIsFull) {
  vm::VM Vm;
  vm::Klass &K = Vm.defineClass("Main", {});
  vm::Method &Nop = Vm.defineNativeMethod(
      K, "nop", vm::MethodTraits{}, 0, false,
      [](vm::VM &, const ThreadContext &, std::span<vm::Value>,
         vm::Value &) -> vm::Trap { return vm::Trap::None; });

  // Hog every thread index, then ask the VM for one more thread.
  std::vector<ThreadContext> Hogs;
  Hogs.reserve(ThreadRegistry::MaxThreadIndex);
  for (uint32_t I = 0; I < ThreadRegistry::MaxThreadIndex; ++I) {
    ThreadContext Ctx = Vm.threads().attach(std::string());
    ASSERT_TRUE(Ctx.isValid());
    Hogs.push_back(Ctx);
  }

  vm::RunResult Failed = Vm.spawn(Nop, {}, "doomed").join();
  EXPECT_EQ(Failed.TrapKind, vm::Trap::ThreadExhausted);
  EXPECT_GE(Vm.threads().exhaustionEvents(), 1u);

  // Releasing capacity makes spawn work again.
  Vm.threads().detach(Hogs.back());
  Hogs.pop_back();
  vm::RunResult Ok = Vm.spawn(Nop, {}, "fine").join();
  EXPECT_TRUE(Ok.ok());

  for (ThreadContext &Ctx : Hogs)
    Vm.threads().detach(Ctx);
}

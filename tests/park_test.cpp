//===- tests/park_test.cpp - Waiting-substrate tests ----------------------===//
//
// Covers the two halves of the waiting substrate: Parker token semantics
// (sticky unpark, timed park, spurious-wake tolerance, wake-latency
// stamps) and ParkingLot queueing (bucket hashing and deliberate
// collisions, FIFO wake order, self-removal on timeout, concurrent
// park/unpark stress — the suite the tsan preset is pointed at), plus
// the `park.spurious` failpoint and FIFO fairness of the Parker-based
// FatLock wait set and entry queue.
//
//===----------------------------------------------------------------------===//

#include "park/Parker.h"
#include "park/ParkingLot.h"

#include "fatlock/FatLock.h"
#include "support/FailPoint.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace thinlocks;
using namespace std::chrono_literals;

namespace {

/// Spin-waits (with yields) until \p Cond holds, failing after ~5s.
template <typename Fn> void waitFor(Fn &&Cond) {
  auto Deadline = std::chrono::steady_clock::now() + 5s;
  while (!Cond()) {
    ASSERT_LT(std::chrono::steady_clock::now(), Deadline)
        << "condition not reached in time";
    std::this_thread::yield();
  }
}

/// Scans a static byte arena for \p N distinct addresses that all hash
/// to the same ParkingLot bucket.  With 64 buckets and an arena of a few
/// thousand slots the pigeonhole principle guarantees success.
std::vector<const void *> collidingKeys(size_t N) {
  static char Arena[64 * 65 * 8];
  std::vector<const void *> Keys;
  size_t Bucket = ParkingLot::bucketIndexOf(&Arena[0]);
  for (size_t I = 0; I < sizeof(Arena) && Keys.size() < N; I += 8)
    if (ParkingLot::bucketIndexOf(&Arena[I]) == Bucket)
      Keys.push_back(&Arena[I]);
  EXPECT_EQ(Keys.size(), N);
  return Keys;
}

} // namespace

//===----------------------------------------------------------------------===//
// Parker
//===----------------------------------------------------------------------===//

TEST(ParkerTest, PendingTokenConsumedWithoutBlocking) {
  Parker P;
  P.unpark();
  EXPECT_EQ(P.park(), Parker::WakeReason::Unparked);
  EXPECT_EQ(P.blockedParkCount(), 0u);
  // A consumed-without-blocking token records no wake latency.
  EXPECT_EQ(P.lastBlockedWakeNanos(), 0u);
}

TEST(ParkerTest, TokensDoNotAccumulate) {
  Parker P;
  P.unpark();
  P.unpark();
  EXPECT_EQ(P.park(), Parker::WakeReason::Unparked);
  EXPECT_EQ(P.parkUntil(std::chrono::steady_clock::now() + 5ms),
            Parker::WakeReason::TimedOut);
}

TEST(ParkerTest, ParkUntilTimesOutWithoutToken) {
  Parker P;
  auto Start = std::chrono::steady_clock::now();
  EXPECT_EQ(P.parkFor(2'000'000), Parker::WakeReason::TimedOut);
  EXPECT_GE(std::chrono::steady_clock::now() - Start, 1ms);
}

TEST(ParkerTest, UnparkWakesBlockedOwner) {
  Parker P;
  std::atomic<bool> Woken{false};
  std::thread Owner([&] {
    // Loop: spurious wakes are allowed, a token is required to exit.
    while (P.park() != Parker::WakeReason::Unparked) {
    }
    Woken.store(true);
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(Woken.load());
  P.unpark();
  Owner.join();
  EXPECT_TRUE(Woken.load());
  EXPECT_GE(P.blockedParkCount(), 1u);
}

TEST(ParkerTest, BlockedWakeRecordsLatency) {
  Parker P;
  std::atomic<uint64_t> Latency{~0ull};
  std::thread Owner([&] {
    while (P.park() != Parker::WakeReason::Unparked) {
    }
    Latency.store(P.lastBlockedWakeNanos());
  });
  std::this_thread::sleep_for(20ms);
  P.unpark();
  Owner.join();
  // The park blocked, so the unpark-to-resume delta must be a real,
  // sane measurement (well under the 5s test budget).
  EXPECT_GT(Latency.load(), 0u);
  EXPECT_LT(Latency.load(), 5'000'000'000ull);
}

TEST(ParkerTest, ResetDropsStaleToken) {
  Parker P;
  P.unpark();
  P.reset();
  EXPECT_EQ(P.parkUntil(std::chrono::steady_clock::now() + 2ms),
            Parker::WakeReason::TimedOut);
}

TEST(ParkerTest, AttachedThreadOwnsAParker) {
  ThreadRegistry Registry;
  ThreadContext Ctx = Registry.attach("parker-owner");
  ASSERT_TRUE(Ctx.isValid());
  ASSERT_NE(Ctx.parker(), nullptr);
  Ctx.parker()->unpark();
  EXPECT_EQ(Ctx.parker()->park(), Parker::WakeReason::Unparked);
  Registry.detach(Ctx);
}

TEST(ParkerTest, RecycledIndexStartsWithoutToken) {
  ThreadRegistry Registry;
  ThreadContext First = Registry.attach("first");
  Parker *Pk = First.parker();
  Pk->unpark(); // Leave a stale token behind.
  Registry.detach(First);
  ThreadContext Second = Registry.attach("second");
  // Index recycling must hand the new thread a clean Parker.
  ASSERT_EQ(Second.parker(), Pk);
  EXPECT_EQ(Pk->parkUntil(std::chrono::steady_clock::now() + 2ms),
            Parker::WakeReason::TimedOut);
  Registry.detach(Second);
}

//===----------------------------------------------------------------------===//
// ParkingLot
//===----------------------------------------------------------------------===//

TEST(ParkingLotTest, BucketIndexIsStableAndInRange) {
  int Local = 0;
  size_t Bucket = ParkingLot::bucketIndexOf(&Local);
  EXPECT_LT(Bucket, ParkingLot::NumBuckets);
  EXPECT_EQ(ParkingLot::bucketIndexOf(&Local), Bucket);
}

TEST(ParkingLotTest, FailedValidationNeverSleeps) {
  ParkingLot Lot;
  Parker P;
  int Key;
  auto Start = std::chrono::steady_clock::now();
  EXPECT_EQ(Lot.parkUntil(&Key, P, [] { return false; },
                          Start + 1s),
            ParkingLot::ParkResult::Invalid);
  EXPECT_LT(std::chrono::steady_clock::now() - Start, 500ms);
  EXPECT_EQ(Lot.queuedOn(&Key), 0u);
}

TEST(ParkingLotTest, TimedOutWaiterRemovesItself) {
  ParkingLot Lot;
  Parker P;
  int Key;
  EXPECT_EQ(Lot.parkUntil(&Key, P, [] { return true; },
                          std::chrono::steady_clock::now() + 5ms),
            ParkingLot::ParkResult::TimedOut);
  EXPECT_EQ(Lot.queuedOn(&Key), 0u);
  EXPECT_EQ(Lot.unparkOne(&Key), 0u);
}

TEST(ParkingLotTest, UnparkOneWakesInFifoOrder) {
  ParkingLot Lot;
  int Key;
  constexpr int NumWaiters = 4;
  std::atomic<int> NextSeq{0};
  std::atomic<int> WakeSeq[NumWaiters] = {};
  // Parkers outlive the threads (and every in-flight unpark): a Parker
  // local to the waiter lambda would violate the lifetime contract the
  // library satisfies via registry-owned ThreadInfo storage.
  Parker Parkers[NumWaiters];
  std::vector<std::thread> Waiters;
  for (int I = 0; I < NumWaiters; ++I) {
    Waiters.emplace_back([&, I] {
      EXPECT_EQ(Lot.park(&Key, Parkers[I], [] { return true; }),
                ParkingLot::ParkResult::Unparked);
      WakeSeq[I].store(1 + NextSeq.fetch_add(1));
    });
    // Admit waiters one at a time so the queue order is exactly 0..N-1.
    waitFor([&] { return Lot.queuedOn(&Key) == static_cast<size_t>(I + 1); });
  }
  for (int I = 0; I < NumWaiters; ++I) {
    EXPECT_EQ(Lot.unparkOne(&Key), 1u);
    waitFor([&] { return WakeSeq[I].load() != 0; });
    // The I-th enqueued waiter must be the (I+1)-th to wake.
    EXPECT_EQ(WakeSeq[I].load(), I + 1);
  }
  for (auto &T : Waiters)
    T.join();
  EXPECT_EQ(Lot.queuedOn(&Key), 0u);
}

TEST(ParkingLotTest, UnparkAllWakesEveryWaiterOnKey) {
  ParkingLot Lot;
  int Key;
  constexpr int NumWaiters = 3;
  std::atomic<int> Woken{0};
  Parker Parkers[NumWaiters]; // Must outlive in-flight unparks.
  std::vector<std::thread> Waiters;
  for (int I = 0; I < NumWaiters; ++I)
    Waiters.emplace_back([&, I] {
      EXPECT_EQ(Lot.park(&Key, Parkers[I], [] { return true; }),
                ParkingLot::ParkResult::Unparked);
      Woken.fetch_add(1);
    });
  waitFor([&] { return Lot.queuedOn(&Key) == NumWaiters; });
  EXPECT_EQ(Lot.unparkAll(&Key), static_cast<size_t>(NumWaiters));
  for (auto &T : Waiters)
    T.join();
  EXPECT_EQ(Woken.load(), NumWaiters);
}

TEST(ParkingLotTest, CollidingKeysShareABucketButNotWakes) {
  auto Keys = collidingKeys(2);
  ASSERT_EQ(ParkingLot::bucketIndexOf(Keys[0]),
            ParkingLot::bucketIndexOf(Keys[1]));
  ParkingLot Lot;
  std::atomic<bool> Woken{false};
  Parker P; // Must outlive the in-flight unpark.
  std::thread Waiter([&] {
    EXPECT_EQ(Lot.park(Keys[0], P, [] { return true; }),
              ParkingLot::ParkResult::Unparked);
    Woken.store(true);
  });
  waitFor([&] { return Lot.queuedOn(Keys[0]) == 1; });
  // Waking the *other* key in the same bucket must not touch our waiter.
  EXPECT_EQ(Lot.unparkOne(Keys[1]), 0u);
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(Woken.load());
  EXPECT_EQ(Lot.unparkOne(Keys[0]), 1u);
  Waiter.join();
  EXPECT_TRUE(Woken.load());
}

// The TSan-preset target: continuous park/unpark races on keys that all
// hash to one bucket, so enqueue, self-removal, dequeue-before-unpark,
// and stale-token absorption all interleave on one bucket mutex.
TEST(ParkingLotStressTest, ConcurrentParkUnparkOnCollidingKeys) {
  constexpr int NumWaiters = 4;
  constexpr int Rounds = 300;
  auto Keys = collidingKeys(NumWaiters);
  ParkingLot Lot;
  std::atomic<bool> Go[NumWaiters] = {};
  std::atomic<int> Done[NumWaiters] = {};
  Parker Parkers[NumWaiters]; // Must outlive in-flight unparks.
  std::vector<std::thread> Waiters;
  for (int I = 0; I < NumWaiters; ++I)
    Waiters.emplace_back([&, I] {
      Parker &P = Parkers[I];
      for (int R = 0; R < Rounds; ++R) {
        for (;;) {
          // The 50ms deadline is a liveness backstop only; every round
          // normally ends by signal (validation failure or unpark).
          Lot.parkUntil(Keys[I], P,
                        [&] { return !Go[I].load(std::memory_order_acquire); },
                        std::chrono::steady_clock::now() + 50ms);
          if (Go[I].exchange(false, std::memory_order_acq_rel))
            break;
        }
        Done[I].store(R + 1, std::memory_order_release);
      }
    });
  for (int R = 0; R < Rounds; ++R) {
    for (int I = 0; I < NumWaiters; ++I) {
      Go[I].store(true, std::memory_order_release);
      Lot.unparkOne(Keys[I]);
    }
    for (int I = 0; I < NumWaiters; ++I)
      waitFor([&] { return Done[I].load(std::memory_order_acquire) > R; });
  }
  for (auto &T : Waiters)
    T.join();
  for (int I = 0; I < NumWaiters; ++I)
    EXPECT_EQ(Lot.queuedOn(Keys[I]), 0u);
}

//===----------------------------------------------------------------------===//
// FatLock on the substrate: FIFO fairness
//===----------------------------------------------------------------------===//

namespace {

class SubstrateFatLockTest : public ::testing::Test {
protected:
  ThreadRegistry Registry;
  FatLock Lock;
  ThreadContext Main;

  void SetUp() override { Main = Registry.attach("main"); }
  void TearDown() override { Registry.detach(Main); }
};

} // namespace

TEST_F(SubstrateFatLockTest, WaitSetWakesInStrictFifoOrder) {
  constexpr int NumWaiters = 6;
  std::atomic<int> NextSeq{0};
  std::atomic<int> WakeSeq[NumWaiters] = {};
  std::vector<std::thread> Waiters;
  for (int I = 0; I < NumWaiters; ++I) {
    Waiters.emplace_back([&, I] {
      ScopedThreadAttachment Attachment(Registry, "waiter");
      Lock.lock(Attachment.context());
      Lock.wait(Attachment.context());
      WakeSeq[I].store(1 + NextSeq.fetch_add(1));
      Lock.unlock(Attachment.context());
    });
    // Admit into the wait set one at a time to pin the FIFO order.
    waitFor([&] { return Lock.waitSetSize() == static_cast<uint32_t>(I + 1); });
  }
  for (int I = 0; I < NumWaiters; ++I) {
    Lock.lock(Main);
    EXPECT_TRUE(Lock.notify(Main));
    Lock.unlock(Main);
    waitFor([&] { return WakeSeq[I].load() != 0; });
    EXPECT_EQ(WakeSeq[I].load(), I + 1) << "notify broke wait-set FIFO";
  }
  for (auto &T : Waiters)
    T.join();
}

TEST_F(SubstrateFatLockTest, EntryQueueGrantsInStrictFifoOrder) {
  constexpr int NumContenders = 5;
  std::atomic<int> NextSeq{0};
  std::atomic<int> GrantSeq[NumContenders] = {};
  Lock.lock(Main);
  std::vector<std::thread> Contenders;
  for (int I = 0; I < NumContenders; ++I) {
    Contenders.emplace_back([&, I] {
      ScopedThreadAttachment Attachment(Registry, "contender");
      Lock.lock(Attachment.context());
      GrantSeq[I].store(1 + NextSeq.fetch_add(1));
      Lock.unlock(Attachment.context());
    });
    // Serialize arrivals so entry order is exactly 0..N-1.
    waitFor([&] {
      return Lock.entryQueueLength() == static_cast<uint32_t>(I + 1);
    });
  }
  Lock.unlock(Main);
  for (auto &T : Contenders)
    T.join();
  for (int I = 0; I < NumContenders; ++I)
    EXPECT_EQ(GrantSeq[I].load(), I + 1) << "handoff broke entry FIFO";
}

TEST_F(SubstrateFatLockTest, TimedEntrantTimeoutHandsWakeToNewHead) {
  // A timed entrant that gives up while the monitor is free must pass
  // the releaser's handoff on to the next queued thread, not strand it.
  Lock.lock(Main);
  std::atomic<bool> SecondAcquired{false};
  std::thread First([&] {
    ScopedThreadAttachment Attachment(Registry, "first");
    EXPECT_EQ(Lock.lockIfLiveFor(Attachment.context(), 40'000'000),
              FatLock::TimedResult::TimedOut);
  });
  waitFor([&] { return Lock.entryQueueLength() == 1; });
  std::thread Second([&] {
    ScopedThreadAttachment Attachment(Registry, "second");
    Lock.lock(Attachment.context());
    SecondAcquired.store(true);
    Lock.unlock(Attachment.context());
  });
  waitFor([&] { return Lock.entryQueueLength() == 2; });
  // Keep holding while the first entrant times out behind us, then
  // release: the grant must reach the second entrant even though the
  // original queue head departed.
  First.join();
  Lock.unlock(Main);
  Second.join();
  EXPECT_TRUE(SecondAcquired.load());
  EXPECT_EQ(Lock.stats().Timeouts, 1u);
}

//===----------------------------------------------------------------------===//
// park.spurious failpoint
//===----------------------------------------------------------------------===//

namespace {

class ParkSpuriousTest : public ::testing::Test {
protected:
  void SetUp() override {
    if (!failpoint::compiledIn())
      GTEST_SKIP() << "failpoint sites not compiled in";
    failpoint::disarmAll();
  }
  void TearDown() override { failpoint::disarmAll(); }
};

} // namespace

TEST_F(ParkSpuriousTest, ArmedSiteForcesSpuriousReturn) {
  failpoint::arm(failpoint::Id::ParkSpurious, failpoint::Mode::Always);
  Parker P;
  // Every park returns Spurious before ever publishing the parked
  // state — even with a 1s deadline and no token.
  auto Start = std::chrono::steady_clock::now();
  EXPECT_EQ(P.parkUntil(Start + 1s), Parker::WakeReason::Spurious);
  EXPECT_LT(std::chrono::steady_clock::now() - Start, 500ms);
  EXPECT_EQ(P.blockedParkCount(), 0u);
  EXPECT_GE(failpoint::hitCount(failpoint::Id::ParkSpurious), 1u);
}

TEST_F(ParkSpuriousTest, PendingTokenBeatsInjection) {
  failpoint::arm(failpoint::Id::ParkSpurious, failpoint::Mode::Always);
  Parker P;
  P.unpark();
  // The pending-token fast path consumes the token before the site.
  EXPECT_EQ(P.park(), Parker::WakeReason::Unparked);
}

TEST_F(ParkSpuriousTest, WaitNotifySurvivesSpuriousInjection) {
  // Inject a spurious return on every third park: wait() must not
  // report Notified early, and notify() must still wake exactly once.
  failpoint::arm(failpoint::Id::ParkSpurious, failpoint::Mode::OneIn, 3);
  ThreadRegistry Registry;
  ThreadContext Main = Registry.attach("main");
  FatLock Lock;
  std::atomic<int> Notified{0};
  constexpr int Rounds = 50;
  std::thread Waiter([&] {
    ScopedThreadAttachment Attachment(Registry, "waiter");
    for (int R = 0; R < Rounds; ++R) {
      Lock.lock(Attachment.context());
      EXPECT_EQ(Lock.wait(Attachment.context()),
                FatLock::WaitResult::Notified);
      Notified.fetch_add(1);
      Lock.unlock(Attachment.context());
    }
  });
  for (int R = 0; R < Rounds; ++R) {
    waitFor([&] { return Lock.waitSetSize() == 1; });
    Lock.lock(Main);
    EXPECT_TRUE(Lock.notify(Main));
    Lock.unlock(Main);
    waitFor([&] { return Notified.load() == R + 1; });
  }
  Waiter.join();
  EXPECT_EQ(Notified.load(), Rounds);
  EXPECT_GE(failpoint::hitCount(failpoint::Id::ParkSpurious), 1u);
  Registry.detach(Main);
}

//===----------------------------------------------------------------------===//
// parkinglot.timeout-race: a consumed wake is re-issued (chain wake)
//===----------------------------------------------------------------------===//

namespace {

class ParkingLotTimeoutRaceTest : public ::testing::Test {
protected:
  void SetUp() override {
    if (!failpoint::compiledIn())
      GTEST_SKIP() << "failpoint sites not compiled in";
    failpoint::disarmAll();
  }
  void TearDown() override { failpoint::disarmAll(); }
};

} // namespace

// Regression: a waiter that timed out while an unparkOne had already
// captured (dequeued) it consumed that wake silently — the waiter the
// waker actually meant to run next slept forever.  The fix re-issues
// the consumed wake to the next queued waiter on the same key.  The
// failpoint holds the window between A's parkUntil returning and A
// re-taking its bucket mutex open for 20ms, so the capture lands inside
// it deterministically.  Without the fix, B is stranded and B.join()
// hangs until the suite timeout.
TEST_F(ParkingLotTimeoutRaceTest, TimedOutWaiterReissuesConsumedWake) {
  failpoint::arm(failpoint::Id::ParkingLotTimeoutRace,
                 failpoint::Mode::Always);
  ParkingLot Lot;
  int Key = 0;
  Parker PA, PB; // Must outlive in-flight unparks.
  const auto DeadlineA = std::chrono::steady_clock::now() + 100ms;
  std::atomic<int> ResultA{-1}, ResultB{-1};
  std::thread A([&] {
    ResultA = static_cast<int>(
        Lot.parkUntil(&Key, PA, [] { return true; }, DeadlineA));
  });
  waitFor([&] { return Lot.queuedOn(&Key) == 1; });
  std::thread B([&] {
    ResultB = static_cast<int>(Lot.park(&Key, PB, [] { return true; }));
  });
  waitFor([&] { return Lot.queuedOn(&Key) == 2; });
  // Aim the wake at the widened window: just after A's deadline, while
  // A is still on its way back to the bucket.  (If the unpark instead
  // lands while A is still in the kernel, A returns Unparked with its
  // deadline expired — the same re-issue branch runs; the test holds
  // under either interleaving.)
  std::this_thread::sleep_until(DeadlineA + 5ms);
  EXPECT_EQ(Lot.unparkOne(&Key), 1u);
  A.join();
  B.join(); // Hangs without the chain wake.
  EXPECT_EQ(ResultA.load(),
            static_cast<int>(ParkingLot::ParkResult::TimedOut));
  EXPECT_EQ(ResultB.load(),
            static_cast<int>(ParkingLot::ParkResult::Unparked));
  EXPECT_EQ(Lot.queuedOn(&Key), 0u);
  EXPECT_GE(failpoint::hitCount(failpoint::Id::ParkingLotTimeoutRace), 1u);
}

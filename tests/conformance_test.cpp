//===- tests/conformance_test.cpp - Cross-protocol conformance ------------===//
//
// One behavioural suite, instantiated for every protocol in the registry
// (ThinLock, the JDK111/IBM112/EagerMonitor baselines, Fissile).
// Whatever the implementation strategy, Java monitor semantics must
// hold: mutual exclusion, recursion, wait/notify, ownership errors.
//
//===----------------------------------------------------------------------===//

#include "baselines/EagerMonitor.h"
#include "baselines/HotLocks.h"
#include "baselines/MonitorCache.h"
#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "protocols/FissileLock.h"
#include "threads/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <type_traits>
#include <vector>

using namespace thinlocks;

namespace {

/// Factory trait: how to construct each protocol over shared substrates.
template <typename P> struct ProtocolMaker;

template <> struct ProtocolMaker<ThinLockManager> {
  MonitorTable Monitors;
  ThinLockManager Protocol{Monitors};
};

template <> struct ProtocolMaker<MonitorCache> {
  MonitorCache Protocol{/*PoolSize=*/64};
};

template <> struct ProtocolMaker<HotLocks> {
  HotLocks Protocol{/*NumHotLocks=*/32, /*PromotionThreshold=*/4,
                    /*PoolSize=*/64};
};

template <> struct ProtocolMaker<EagerMonitor> {
  EagerMonitor Protocol;
};

template <> struct ProtocolMaker<FissileLock> {
  FissileLock Protocol;
};

/// Negative concept check (the gap this seam closes): a protocol that
/// lacks the bounded-acquisition surface must be rejected at compile
/// time, not discovered as a template error inside a benchmark.
struct MissingTryLockProtocol {
  static const char *protocolName() { return "Broken"; }
  void lock(Object *, const ThreadContext &) {}
  void unlock(Object *, const ThreadContext &) {}
  bool unlockChecked(Object *, const ThreadContext &) { return false; }
  // No tryLock / tryLockFor.
  bool holdsLock(Object *, const ThreadContext &) const { return false; }
  uint32_t lockDepth(Object *, const ThreadContext &) const { return 0; }
  WaitStatus wait(Object *, const ThreadContext &, int64_t = -1) {
    return WaitStatus::NotOwner;
  }
  NotifyStatus notify(Object *, const ThreadContext &) {
    return NotifyStatus::NotOwner;
  }
  NotifyStatus notifyAll(Object *, const ThreadContext &) {
    return NotifyStatus::NotOwner;
  }
};
static_assert(!SyncProtocol<MissingTryLockProtocol>,
              "a protocol without tryLock/tryLockFor must not satisfy "
              "the SyncProtocol concept");

template <typename P> class ConformanceTest : public ::testing::Test {
protected:
  Heap TheHeap;
  ThreadRegistry Registry;
  ProtocolMaker<P> Maker;
  ThreadContext Main;
  const ClassInfo *Class = nullptr;

  void SetUp() override {
    Main = Registry.attach("main");
    Class = &TheHeap.classes().registerClass("C", 0);
  }
  void TearDown() override { Registry.detach(Main); }

  P &protocol() { return Maker.Protocol; }
  Object *newObject() { return TheHeap.allocate(*Class); }
};

using Protocols = ::testing::Types<ThinLockManager, MonitorCache, HotLocks,
                                   EagerMonitor, FissileLock>;
TYPED_TEST_SUITE(ConformanceTest, Protocols);

} // namespace

TYPED_TEST(ConformanceTest, ProtocolHasAName) {
  EXPECT_NE(TypeParam::protocolName(), nullptr);
  EXPECT_GT(std::string(TypeParam::protocolName()).size(), 0u);
}

TYPED_TEST(ConformanceTest, LockUnlockSingle) {
  Object *Obj = this->newObject();
  EXPECT_FALSE(this->protocol().holdsLock(Obj, this->Main));
  this->protocol().lock(Obj, this->Main);
  EXPECT_TRUE(this->protocol().holdsLock(Obj, this->Main));
  EXPECT_EQ(this->protocol().lockDepth(Obj, this->Main), 1u);
  this->protocol().unlock(Obj, this->Main);
  EXPECT_FALSE(this->protocol().holdsLock(Obj, this->Main));
  EXPECT_EQ(this->protocol().lockDepth(Obj, this->Main), 0u);
}

TYPED_TEST(ConformanceTest, RecursionToDepth300) {
  // Crosses the thin-lock 256-hold boundary; baselines must also cope.
  Object *Obj = this->newObject();
  for (uint32_t I = 1; I <= 300; ++I) {
    this->protocol().lock(Obj, this->Main);
    EXPECT_EQ(this->protocol().lockDepth(Obj, this->Main), I);
  }
  for (uint32_t I = 300; I >= 1; --I) {
    this->protocol().unlock(Obj, this->Main);
    EXPECT_EQ(this->protocol().lockDepth(Obj, this->Main), I - 1);
  }
}

TYPED_TEST(ConformanceTest, ContenderExcludedAtNestingBoundary) {
  // Pins the count-overflow boundary (256 holds stay thin; the 257th
  // inflates for ThinLock) as a pure semantics claim, so it must hold
  // for every protocol and under failpoint injection: however the
  // representation changes at the boundary, a contender stays excluded
  // until the owner has fully unwound all 257 holds.
  Object *Obj = this->newObject();
  for (uint32_t I = 1; I <= 257; ++I) {
    this->protocol().lock(Obj, this->Main);
    EXPECT_EQ(this->protocol().lockDepth(Obj, this->Main), I);
  }
  std::atomic<bool> Acquired{false};
  std::thread Contender([&] {
    ScopedThreadAttachment Attachment(this->Registry, "contender");
    this->protocol().lock(Obj, Attachment.context());
    Acquired.store(true, std::memory_order_release);
    this->protocol().unlock(Obj, Attachment.context());
  });
  for (uint32_t I = 257; I >= 1; --I) {
    // Exclusion makes this deterministic: Acquired can only flip once
    // every hold is gone, so a mis-counted unlock anywhere in the
    // unwind (the off-by-one shapes the boundary invites) trips it.
    EXPECT_FALSE(Acquired.load(std::memory_order_acquire));
    EXPECT_EQ(this->protocol().lockDepth(Obj, this->Main), I);
    this->protocol().unlock(Obj, this->Main);
    // Dwell just after crossing the inflation boundary and just before
    // the final release, where a premature handoff would surface.
    if (I == 257 || I == 256 || I == 2)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Contender.join();
  EXPECT_TRUE(Acquired.load(std::memory_order_acquire));
  EXPECT_FALSE(this->protocol().holdsLock(Obj, this->Main));
}

TYPED_TEST(ConformanceTest, TryLockUncontendedAndRecursive) {
  Object *Obj = this->newObject();
  EXPECT_TRUE(this->protocol().tryLock(Obj, this->Main));
  EXPECT_EQ(this->protocol().lockDepth(Obj, this->Main), 1u);
  EXPECT_TRUE(this->protocol().tryLock(Obj, this->Main));
  EXPECT_EQ(this->protocol().lockDepth(Obj, this->Main), 2u);
  this->protocol().unlock(Obj, this->Main);
  this->protocol().unlock(Obj, this->Main);
  EXPECT_FALSE(this->protocol().holdsLock(Obj, this->Main));
}

TYPED_TEST(ConformanceTest, TryLockForTimesOutThenAcquires) {
  Object *Obj = this->newObject();
  this->protocol().lock(Obj, this->Main);
  std::atomic<bool> Failed{false};
  std::thread Contender([&] {
    ScopedThreadAttachment Attachment(this->Registry, "trier");
    EXPECT_FALSE(this->protocol().tryLock(Obj, Attachment.context()));
    EXPECT_EQ(this->protocol().tryLockFor(Obj, Attachment.context(),
                                          /*TimeoutNanos=*/2'000'000),
              TimedLockStatus::TimedOut);
    Failed.store(true, std::memory_order_release);
    // Unbounded-enough retry: once the owner releases, a bounded
    // acquisition must succeed.
    TimedLockStatus Status = TimedLockStatus::TimedOut;
    while (Status != TimedLockStatus::Acquired)
      Status = this->protocol().tryLockFor(Obj, Attachment.context(),
                                           /*TimeoutNanos=*/5'000'000);
    EXPECT_TRUE(this->protocol().holdsLock(Obj, Attachment.context()));
    this->protocol().unlock(Obj, Attachment.context());
  });
  while (!Failed.load(std::memory_order_acquire))
    std::this_thread::yield();
  this->protocol().unlock(Obj, this->Main);
  Contender.join();
}

TYPED_TEST(ConformanceTest, NonThinProtocolsNeverReportDeadlock) {
  // The degradeToTimedOut contract (core/LockProtocol.h): a protocol
  // without a waits-for graph has no basis to claim Deadlock, so a
  // bounded acquire that fails must report TimedOut — even on a genuine
  // ABBA deadlock, the hardest schedule to stay honest about.  Only
  // ThinLock (the one protocol with a cycle detector) may upgrade the
  // verdict; generic consumers (the txn engine's wait-die policy) treat
  // Deadlock as a precise abort signal, so a mis-report here would turn
  // into spurious aborts downstream.
  Object *A = this->newObject();
  Object *B = this->newObject();
  this->protocol().lock(A, this->Main);

  // Phase 0: starting; 1: other holds B; 2: other's attempt returned;
  // 3: main's attempt returned too — both sides may release.
  std::atomic<int> Phase{0};
  std::atomic<TimedLockStatus> OtherStatus{TimedLockStatus::Acquired};
  std::thread Other([&] {
    ScopedThreadAttachment Attachment(this->Registry, "abba");
    this->protocol().lock(B, Attachment.context());
    Phase.store(1, std::memory_order_release);
    OtherStatus.store(this->protocol().tryLockFor(A, Attachment.context(),
                                                  /*TimeoutNanos=*/
                                                  150'000'000),
                      std::memory_order_release);
    Phase.store(2, std::memory_order_release);
    while (Phase.load(std::memory_order_acquire) != 3)
      std::this_thread::yield();
    this->protocol().unlock(B, Attachment.context());
  });

  while (Phase.load(std::memory_order_acquire) < 1)
    std::this_thread::yield();
  // Both holders keep holding until phase 3, so neither bounded attempt
  // can ever acquire — each must classify its failure.
  TimedLockStatus Mine =
      this->protocol().tryLockFor(B, this->Main, /*TimeoutNanos=*/
                                  150'000'000);
  while (Phase.load(std::memory_order_acquire) < 2)
    std::this_thread::yield();
  TimedLockStatus Theirs = OtherStatus.load(std::memory_order_acquire);

  for (TimedLockStatus Status : {Mine, Theirs}) {
    ASSERT_NE(Status, TimedLockStatus::Acquired);
    if constexpr (std::is_same_v<TypeParam, ThinLockManager>) {
      // The detector may confirm the cycle at either deadline (timing
      // decides which side sees it); TimedOut is also legal.
      EXPECT_TRUE(Status == TimedLockStatus::TimedOut ||
                  Status == TimedLockStatus::Deadlock);
    } else {
      EXPECT_EQ(Status, TimedLockStatus::TimedOut)
          << "a protocol without a waits-for graph reported Deadlock";
    }
  }

  Phase.store(3, std::memory_order_release);
  this->protocol().unlock(A, this->Main);
  Other.join();
}

TYPED_TEST(ConformanceTest, UnlockCheckedOnUnownedFails) {
  Object *Obj = this->newObject();
  EXPECT_FALSE(this->protocol().unlockChecked(Obj, this->Main));
  this->protocol().lock(Obj, this->Main);
  EXPECT_TRUE(this->protocol().unlockChecked(Obj, this->Main));
  EXPECT_FALSE(this->protocol().unlockChecked(Obj, this->Main));
}

TYPED_TEST(ConformanceTest, IndependentObjectsIndependentOwners) {
  Object *A = this->newObject();
  Object *B = this->newObject();
  this->protocol().lock(A, this->Main);
  std::thread Other([&] {
    ScopedThreadAttachment Attachment(this->Registry);
    this->protocol().lock(B, Attachment.context());
    EXPECT_TRUE(this->protocol().holdsLock(B, Attachment.context()));
    EXPECT_FALSE(this->protocol().holdsLock(A, Attachment.context()));
    this->protocol().unlock(B, Attachment.context());
  });
  Other.join();
  EXPECT_TRUE(this->protocol().holdsLock(A, this->Main));
  EXPECT_FALSE(this->protocol().holdsLock(B, this->Main));
  this->protocol().unlock(A, this->Main);
}

TYPED_TEST(ConformanceTest, MutualExclusionCounterInvariant) {
  Object *Obj = this->newObject();
  constexpr int NumThreads = 4;
  constexpr int PerThread = 3000;
  uint64_t Shared = 0; // Protected by Obj's monitor.
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&] {
      ScopedThreadAttachment Attachment(this->Registry);
      for (int I = 0; I < PerThread; ++I) {
        this->protocol().lock(Obj, Attachment.context());
        ++Shared;
        this->protocol().unlock(Obj, Attachment.context());
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Shared, static_cast<uint64_t>(NumThreads) * PerThread);
}

TYPED_TEST(ConformanceTest, ManyObjectsManyThreads) {
  constexpr int NumObjects = 64;
  constexpr int NumThreads = 4;
  constexpr int PerThread = 2000;
  std::vector<Object *> Objects;
  std::vector<uint64_t> Counters(NumObjects, 0);
  for (int I = 0; I < NumObjects; ++I)
    Objects.push_back(this->newObject());
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&, T] {
      ScopedThreadAttachment Attachment(this->Registry);
      uint64_t State = T * 1299709 + 12345;
      for (int I = 0; I < PerThread; ++I) {
        State = State * 6364136223846793005ull + 1442695040888963407ull;
        int Index = static_cast<int>((State >> 33) % NumObjects);
        this->protocol().lock(Objects[Index], Attachment.context());
        ++Counters[Index];
        this->protocol().unlock(Objects[Index], Attachment.context());
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  uint64_t Total = 0;
  for (uint64_t C : Counters)
    Total += C;
  EXPECT_EQ(Total, static_cast<uint64_t>(NumThreads) * PerThread);
}

TYPED_TEST(ConformanceTest, WaitNotifyHandshake) {
  Object *Obj = this->newObject();
  std::atomic<int> Phase{0};

  std::thread Waiter([&] {
    ScopedThreadAttachment Attachment(this->Registry, "waiter");
    this->protocol().lock(Obj, Attachment.context());
    Phase.store(1);
    WaitStatus Status = this->protocol().wait(Obj, Attachment.context(), -1);
    EXPECT_EQ(Status, WaitStatus::Notified);
    Phase.store(2);
    this->protocol().unlock(Obj, Attachment.context());
  });

  while (Phase.load() != 1)
    std::this_thread::yield();
  // Acquire, which guarantees the waiter is inside wait() (it holds the
  // monitor until wait releases it).
  this->protocol().lock(Obj, this->Main);
  EXPECT_EQ(Phase.load(), 1);
  EXPECT_EQ(this->protocol().notify(Obj, this->Main), NotifyStatus::Ok);
  this->protocol().unlock(Obj, this->Main);
  Waiter.join();
  EXPECT_EQ(Phase.load(), 2);
}

TYPED_TEST(ConformanceTest, TimedWaitTimesOutAndReacquires) {
  Object *Obj = this->newObject();
  this->protocol().lock(Obj, this->Main);
  WaitStatus Status =
      this->protocol().wait(Obj, this->Main, /*TimeoutNanos=*/5'000'000);
  EXPECT_EQ(Status, WaitStatus::TimedOut);
  EXPECT_TRUE(this->protocol().holdsLock(Obj, this->Main));
  this->protocol().unlock(Obj, this->Main);
}

TYPED_TEST(ConformanceTest, WaitNotifyRequireOwnership) {
  Object *Obj = this->newObject();
  EXPECT_EQ(this->protocol().wait(Obj, this->Main, 0),
            WaitStatus::NotOwner);
  EXPECT_EQ(this->protocol().notify(Obj, this->Main),
            NotifyStatus::NotOwner);
  EXPECT_EQ(this->protocol().notifyAll(Obj, this->Main),
            NotifyStatus::NotOwner);
}

TYPED_TEST(ConformanceTest, NotifyAllWakesAllWaiters) {
  Object *Obj = this->newObject();
  constexpr int NumWaiters = 3;
  std::atomic<int> Woken{0};
  std::atomic<int> Ready{0};
  std::vector<std::thread> Waiters;
  for (int T = 0; T < NumWaiters; ++T) {
    Waiters.emplace_back([&] {
      ScopedThreadAttachment Attachment(this->Registry);
      this->protocol().lock(Obj, Attachment.context());
      Ready.fetch_add(1);
      EXPECT_EQ(this->protocol().wait(Obj, Attachment.context(), -1),
                WaitStatus::Notified);
      Woken.fetch_add(1);
      this->protocol().unlock(Obj, Attachment.context());
    });
  }
  // Each waiter holds the monitor from lock() until wait() releases it,
  // so once Ready == 3 *and* we can acquire the monitor, all three are in
  // the wait set.
  while (Ready.load() != NumWaiters)
    std::this_thread::yield();
  this->protocol().lock(Obj, this->Main);
  EXPECT_EQ(this->protocol().notifyAll(Obj, this->Main), NotifyStatus::Ok);
  this->protocol().unlock(Obj, this->Main);
  for (auto &W : Waiters)
    W.join();
  EXPECT_EQ(Woken.load(), NumWaiters);
}

TYPED_TEST(ConformanceTest, DepthSurvivesWait) {
  Object *Obj = this->newObject();
  std::atomic<bool> Waiting{false};
  std::thread Waiter([&] {
    ScopedThreadAttachment Attachment(this->Registry);
    this->protocol().lock(Obj, Attachment.context());
    this->protocol().lock(Obj, Attachment.context());
    Waiting.store(true);
    EXPECT_EQ(this->protocol().wait(Obj, Attachment.context(), -1),
              WaitStatus::Notified);
    EXPECT_EQ(this->protocol().lockDepth(Obj, Attachment.context()), 2u);
    this->protocol().unlock(Obj, Attachment.context());
    this->protocol().unlock(Obj, Attachment.context());
  });
  while (!Waiting.load())
    std::this_thread::yield();
  // The waiter holds the monitor from lock() to wait(); acquiring it here
  // proves the waiter is in the wait set.
  this->protocol().lock(Obj, this->Main);
  this->protocol().notifyAll(Obj, this->Main);
  this->protocol().unlock(Obj, this->Main);
  Waiter.join();
}

#!/usr/bin/env bash
# Negative-compile check for the thread-safety annotations.
#
# Proves two things with clang's -Wthread-safety:
#   1. misuse.cpp FAILS to compile, with one diagnostic per seeded
#      violation class (guarded write, REQUIRES call without lock,
#      lock leaked at function exit, double acquisition).  If the
#      annotation macros ever degrade to no-ops under clang, or the CI
#      job stops passing -Wthread-safety, this catches it.
#   2. A genuinely annotated production TU (fatlock/FatLock.cpp)
#      compiles CLEANLY with -Wthread-safety -Werror — the annotations
#      are not just present but consistent.
#
# Skips (exit 77) when no clang++ is available: gcc does not implement
# the analysis.  CI runs this with clang installed; the local default
# toolchain may be gcc-only.
#
# Usage: check.sh <src-dir> [clang++]
set -u

SRC=${1:?usage: check.sh <src-dir> [clang++]}
CLANGXX=${2:-}

if [ -z "$CLANGXX" ]; then
  for cand in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
              clang++-16 clang++-15 clang++-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      CLANGXX=$cand
      break
    fi
  done
fi
if [ -z "$CLANGXX" ] || ! command -v "$CLANGXX" >/dev/null 2>&1; then
  echo "SKIP: no clang++ found (thread-safety analysis needs clang)"
  exit 77
fi

HERE=$(cd "$(dirname "$0")" && pwd)
FLAGS="-std=c++20 -fsyntax-only -I$SRC -Wthread-safety -Werror"

echo "== misuse.cpp must be rejected =="
OUT=$("$CLANGXX" $FLAGS "$HERE/misuse.cpp" 2>&1)
STATUS=$?
echo "$OUT"
if [ "$STATUS" -eq 0 ]; then
  echo "FAIL: clang accepted deliberately mis-locked code — the"
  echo "      annotations are not reaching the analysis"
  exit 1
fi

fail=0
expect() {
  if ! echo "$OUT" | grep -q "$1"; then
    echo "FAIL: missing expected diagnostic: $2"
    fail=1
  fi
}
# Diagnostic texts are stable across clang 10+.
expect "requires holding mutex 'Mu'" \
  "guarded-member write / REQUIRES call without the lock"
expect "still held at the end of function" \
  "mutex leaked at function exit (leakLock)"
expect "that is already held" \
  "double acquisition (doubleLock)"
COUNT=$(echo "$OUT" | grep -c "warning:\|error:.*thread-safety\|error:.*requires holding\|error:.*still held\|error:.*already held")
echo "(matched $COUNT thread-safety diagnostics)"

echo "== annotated production TU must be clean =="
if ! "$CLANGXX" $FLAGS "$SRC/fatlock/FatLock.cpp"; then
  echo "FAIL: -Wthread-safety -Werror rejects fatlock/FatLock.cpp"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "PASS: analysis rejects misuse and accepts the annotated sources"

//===- tests/tsa_negative/misuse.cpp - TSA must reject this TU ------------===//
///
/// \file
/// Deliberately mis-locked code.  This file is NEVER linked into
/// anything; tests/tsa_negative/check.sh feeds it to
/// `clang++ -fsyntax-only -Wthread-safety -Werror` and asserts the
/// compile FAILS with the expected diagnostics.  That proves the
/// annotation macros in support/ThreadSafety.h expand to real
/// attributes under clang (not silently to nothing) and that the
/// analysis is actually wired to catch each violation class the
/// annotated subsystems rely on.
///
/// Each violation sits in its own function so check.sh can match one
/// diagnostic per class by the names below.
///
//===----------------------------------------------------------------------===//

#include "support/Mutex.h"

namespace {

class Account {
public:
  // Violation 1: writing a guarded member without holding its mutex.
  void unguardedWrite() { Balance = 42; }

  // Violation 2: calling a TL_REQUIRES function without the lock.
  void callWithoutLock() { creditLocked(1); }

  // Violation 3: returning with the mutex still held.
  void leakLock() { Mu.lock(); }

  // Violation 4: acquiring a mutex the caller already holds.
  void doubleLock() {
    thinlocks::LockGuard G(Mu);
    Mu.lock();
    Mu.unlock();
  }

  // Correctly-locked control: must NOT produce a diagnostic (check.sh
  // asserts exactly the four violations above are reported).
  void deposit(long Amount) {
    thinlocks::LockGuard G(Mu);
    creditLocked(Amount);
  }

private:
  void creditLocked(long Amount) TL_REQUIRES(Mu) { Balance += Amount; }

  thinlocks::Mutex Mu;
  long Balance TL_GUARDED_BY(Mu) = 0;
};

} // namespace

int main() {
  Account A;
  A.deposit(1);
  return 0;
}

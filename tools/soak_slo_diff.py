#!/usr/bin/env python3
"""Compare a fresh BENCH_soak.json against the committed baseline.

Usage:
  tools/soak_slo_diff.py BASELINE CANDIDATE [--quantile-tolerance R]
                         [--throughput-tolerance R] [--shed-slack S]

The nightly soak job regenerates the soak trajectory and runs this diff
against the committed BENCH_soak.json; a regression fails the job.  The
checks, in order of severity:

  1. Typed error counters (monitor/registry exhaustion, emergency
     inflations) must be zero in the candidate — these are correctness
     escapes, not noise, so no tolerance applies.
  2. Latency quantiles (p50/p99/p999 of the acquire, session, and wake
     histograms) may not exceed baseline * quantile-tolerance.  An
     absolute floor of 1us on the *delta* filters scheduler jitter on
     nanosecond-scale values: a 40ns -> 90ns p50 is a 2.25x ratio but
     means nothing on a shared runner.
  3. Throughput (requests_per_s, sessions_per_s) may not fall below
     baseline * throughput-tolerance, and shed_rate may not rise more
     than --shed-slack above baseline.

Config fields that shape the workload (offered rate, workers, chaos,
adaptive) must match between the two documents — comparing an adaptive
run against a static baseline would "regress" by design.  duration_s is
deliberately NOT matched: the nightly runs longer than the committed
baseline, and every compared metric is either a quantile or already
normalized per second.
"""

import argparse
import json
import sys

QUANTILE_KEYS = ("p50_ns", "p99_ns", "p999_ns")
HISTOGRAMS = ("acquire", "session", "wake")
ERROR_COUNTERS = (
    "monitor_exhaustion_events",
    "registry_exhaustion_events",
    "emergency_inflations",
)
MATCHED_CONFIG = ("rate_per_s", "workers", "chaos", "adaptive")
JITTER_FLOOR_NS = 1_000


def load(path):
    with open(path) as f:
        doc = json.load(f)
    for key in ("config", "slo"):
        if key not in doc:
            sys.exit(f"error: {path} has no '{key}' section — not a "
                     "bench_soak trajectory?")
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--quantile-tolerance", type=float, default=1.5,
                    help="max allowed candidate/baseline quantile ratio "
                         "(default: %(default)s)")
    ap.add_argument("--throughput-tolerance", type=float, default=0.7,
                    help="min allowed candidate/baseline throughput ratio "
                         "(default: %(default)s)")
    ap.add_argument("--shed-slack", type=float, default=0.05,
                    help="max allowed shed_rate rise over baseline "
                         "(default: %(default)s)")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    for key in MATCHED_CONFIG:
        b, c = base["config"].get(key), cand["config"].get(key)
        if b != c:
            sys.exit(f"error: config mismatch on '{key}' (baseline {b!r}, "
                     f"candidate {c!r}); the runs are not comparable")

    regressions = []
    rows = []

    bslo, cslo = base["slo"], cand["slo"]

    for counter in ERROR_COUNTERS:
        value = cslo.get(counter, 0)
        rows.append((counter, bslo.get(counter, 0), value, "== 0"))
        if value != 0:
            regressions.append(f"{counter} = {value} (must be 0)")

    for hist in HISTOGRAMS:
        bh, ch = bslo.get(hist), cslo.get(hist)
        if bh is None or ch is None:
            regressions.append(f"histogram '{hist}' missing from "
                               f"{'baseline' if bh is None else 'candidate'}")
            continue
        for q in QUANTILE_KEYS:
            b, c = bh[q], ch[q]
            limit = f"<= {args.quantile_tolerance:g}x"
            rows.append((f"{hist}.{q}", b, c, limit))
            if c > b * args.quantile_tolerance and c - b > JITTER_FLOOR_NS:
                regressions.append(
                    f"{hist}.{q}: {b} -> {c} ns "
                    f"({c / b if b else float('inf'):.2f}x, limit "
                    f"{args.quantile_tolerance:g}x)")

    for rate in ("requests_per_s", "sessions_per_s"):
        b, c = bslo.get(rate, 0.0), cslo.get(rate, 0.0)
        rows.append((rate, round(b, 1), round(c, 1),
                     f">= {args.throughput_tolerance:g}x"))
        if c < b * args.throughput_tolerance:
            regressions.append(
                f"{rate}: {b:.1f} -> {c:.1f} "
                f"(limit {args.throughput_tolerance:g}x baseline)")

    b, c = bslo.get("shed_rate", 0.0), cslo.get("shed_rate", 0.0)
    rows.append(("shed_rate", round(b, 4), round(c, 4),
                 f"<= base + {args.shed_slack:g}"))
    if c > b + args.shed_slack:
        regressions.append(f"shed_rate: {b:.4f} -> {c:.4f} "
                           f"(slack {args.shed_slack:g})")

    width = max(len(r[0]) for r in rows)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'candidate':>12}  limit")
    for name, b, c, limit in rows:
        print(f"{name:<{width}}  {b:>12}  {c:>12}  {limit}")

    if "policy" in cand:
        pol = cand["policy"]
        print("\npolicy engine (informational): " + ", ".join(
            f"{k}={pol[k]}" for k in sorted(pol)))

    if regressions:
        print(f"\n{len(regressions)} SLO regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for r in regressions:
            print(f"  - {r}", file=sys.stderr)
        return 1
    print(f"\nno SLO regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Fast-path codegen guard for the thin-lock protocol.

The paper's entire performance argument rests on the lock/unlock fast
path compiling to a handful of straight-line instructions: a CAS to
acquire, a plain store to release, no out-of-line calls before the
protocol decides it needs the slow path.  This guard disassembles the
compiled out-of-line fast-path entry points
(ThinLockImpl<Policy>::lockOutOfLine / unlockOutOfLine, the FnCall
variant symbols explicitly instantiated in core/ThinLock.cpp) and
asserts, per symbol:

  1. NO `call` instruction in the fast-path region.  The region is the
     code from function entry to the first `ret` — the path a
     successful thin acquire/release executes.  A `call` there means
     the compiler stopped inlining something (stats hook, assertion,
     accidental std::function) and the fast path silently gained a
     frame + spill + branch.  Slow-path work lives past the first ret
     (or behind a tail jmp), where calls are expected and fine.
  2. The acquire symbols contain a CAS (`cmpxchg`) — the protocol's
     atomicity is a compare-and-swap, not a lock-prefixed RMW blob or,
     worse, a library call.
  3. The region's instruction count stays within the committed budget
     (tools/lint/fastpath_budget.txt).  Budgets carry headroom for
     compiler-version variation; they exist to catch step-function
     bloat (a regression that doubles the path), not single-instruction
     scheduling noise.

The same discipline covers the Fissile protocol's TS word
(FissileLock::fastAcquireOutOfLine / fastReleaseOutOfLine in
protocols/FissileLock.cpp): its fission argument is that only the queue
head competes on the TS word, so the word's own acquire must stay one
CAS and its release one store.

Usage: fastpath_guard.py [--object <file.o> ...] [--budget <file>]
                         [--update-budget] [--verbose]

--object is repeatable; symbols are collected across all given objects
(default: ThinLock.cpp.o and FissileLock.cpp.o from the default-preset
build tree).

Requires objdump (binutils) on PATH; no third-party Python deps.
Exit status: 0 clean, 1 violations, 2 usage/tooling error.
"""

import argparse
import os
import re
import subprocess
import sys

POLICIES = ("DynamicPolicy", "UniprocessorPolicy", "MultiprocessorPolicy",
            "CasUnlockPolicy")
OPS = ("lockOutOfLine", "unlockOutOfLine")
FISSILE_OPS = ("fastAcquireOutOfLine", "fastReleaseOutOfLine")

THIN_SYMBOL_RE = re.compile(
    r"^[0-9a-f]+ <(thinlocks::ThinLockImpl<thinlocks::(\w+)>::"
    r"(\w+)\(.*)>:$"
)
FISSILE_SYMBOL_RE = re.compile(
    r"^[0-9a-f]+ <thinlocks::FissileLock::(\w+)\(.*\)>:$"
)
INSN_RE = re.compile(r"^\s+[0-9a-f]+:\s+(\S+)(.*)$")

# Instructions that transfer control out of line.  `call` is the
# violation; plain jumps within the symbol are normal control flow and
# tail-jumps to the slow path are the *point* of the FnCall layout.
CALL_MNEMONICS = {"call", "callq"}
RET_MNEMONICS = {"ret", "retq"}
CAS_SUBSTR = "cmpxchg"
# Acquire symbols must CAS.  unlock for most policies is a plain store;
# only CasUnlockPolicy releases with a CAS (the UnlkC&S ablation).
# Fissile's TS acquire is likewise one CAS; its release is a plain store.
MUST_CAS = {f"lockOutOfLine:{p}" for p in POLICIES}
MUST_CAS.add("unlockOutOfLine:CasUnlockPolicy")
MUST_CAS.add("fastAcquireOutOfLine:Fissile")

EXPECTED_KEYS = sorted(
    [f"{op}:{p}" for op in OPS for p in POLICIES]
    + [f"{op}:Fissile" for op in FISSILE_OPS]
)


def default_objects(root):
    objdir = os.path.join(root, "build", "src", "CMakeFiles",
                          "thinlocks.dir")
    return [
        os.path.join(objdir, "core", "ThinLock.cpp.o"),
        os.path.join(objdir, "protocols", "FissileLock.cpp.o"),
    ]


def parse_disassembly(objfile):
    """Return {op:policy -> [mnemonic, ...]} with each list covering the
    symbol's fast-path region: entry up to and including the first ret."""
    try:
        out = subprocess.run(
            ["objdump", "-d", "--no-show-raw-insn", "-C", objfile],
            check=True, capture_output=True, text=True,
        ).stdout
    except FileNotFoundError:
        print("fastpath_guard: objdump not found on PATH", file=sys.stderr)
        sys.exit(2)
    except subprocess.CalledProcessError as e:
        print(f"fastpath_guard: objdump failed: {e.stderr.strip()}",
              file=sys.stderr)
        sys.exit(2)

    def guarded_key(line):
        sym = THIN_SYMBOL_RE.match(line)
        if sym:
            policy, op = sym.group(2), sym.group(3)
            if policy in POLICIES and op in OPS:
                return f"{op}:{policy}"
            return None
        sym = FISSILE_SYMBOL_RE.match(line)
        if sym and sym.group(1) in FISSILE_OPS:
            return f"{sym.group(1)}:Fissile"
        return None

    regions = {}
    current = None
    done = False
    for line in out.splitlines():
        if line.endswith(">:"):
            current = guarded_key(line)
            if current is not None:
                regions[current] = []
                done = False
            continue
        if current is None or done:
            continue
        insn = INSN_RE.match(line)
        if not insn:
            if not line.strip():
                current = None
            continue
        mnemonic = insn.group(1)
        # objdump writes the lock prefix as part of the mnemonic column
        # ("lock cmpxchg ..."): group(1) is "lock", the operand text
        # holds the real mnemonic.  Join them for matching.
        if mnemonic == "lock":
            mnemonic = "lock " + insn.group(2).strip().split()[0]
        if mnemonic.startswith("nop"):
            continue
        regions[current].append(mnemonic)
        if mnemonic in RET_MNEMONICS:
            done = True
    return regions


def load_budget(path):
    budgets = {}
    if not os.path.exists(path):
        return budgets
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2 or not parts[1].isdigit():
                print(f"{path}:{lineno}: malformed budget line "
                      "(want: <op>:<Policy> <max-instructions>)",
                      file=sys.stderr)
                sys.exit(2)
            budgets[parts[0]] = int(parts[1])
    return budgets


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--object", action="append", default=None,
                    help="object file to inspect; repeatable (default: "
                    "ThinLock.cpp.o and FissileLock.cpp.o from the "
                    "default-preset build tree)")
    ap.add_argument("--budget", default=None,
                    help="budget file (default: fastpath_budget.txt "
                    "next to this script)")
    ap.add_argument("--update-budget", action="store_true",
                    help="rewrite the budget file from the current "
                    "object (use when the fast path intentionally "
                    "changes; review the diff)")
    ap.add_argument("--headroom", type=float, default=1.5,
                    help="budget multiplier applied by --update-budget "
                    "(default 1.5: room for compiler variation)")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()

    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(here))
    objfiles = args.object or default_objects(root)
    budget_path = args.budget or os.path.join(here, "fastpath_budget.txt")

    regions = {}
    for objfile in objfiles:
        if not os.path.exists(objfile):
            print(f"fastpath_guard: object not found: {objfile}\n"
                  "  build first: cmake --build --preset default",
                  file=sys.stderr)
            return 2
        regions.update(parse_disassembly(objfile))

    missing = [key for key in EXPECTED_KEYS if key not in regions]
    if missing:
        print("fastpath_guard: expected symbols missing from "
              f"{', '.join(objfiles)}: {', '.join(missing)}",
              file=sys.stderr)
        return 1

    if args.update_budget:
        with open(budget_path, "w", encoding="utf-8") as f:
            f.write(
                "# Fast-path instruction budgets "
                "(tools/lint/fastpath_guard.py).\n"
                "# <op>:<Policy> <max instructions entry..first ret>\n"
                "# Regenerate with --update-budget after an intentional\n"
                "# fast-path change; the diff is the review artifact.\n"
            )
            for key in sorted(regions):
                limit = int(len(regions[key]) * args.headroom + 0.5)
                f.write(f"{key} {limit}\n")
        print(f"fastpath_guard: wrote {budget_path}")
        return 0

    budgets = load_budget(budget_path)
    status = 0
    for key in sorted(regions):
        insns = regions[key]
        count = len(insns)
        problems = []
        calls = [m for m in insns if m in CALL_MNEMONICS]
        if calls:
            problems.append(
                f"{len(calls)} call instruction(s) in the fast-path "
                "region — the fast path must not call out before "
                "reaching the slow-path branch"
            )
        if key in MUST_CAS and not any(CAS_SUBSTR in m for m in insns):
            problems.append(
                "no cmpxchg in the fast-path region — the thin "
                "acquire must be a CAS"
            )
        if key not in budgets:
            problems.append(
                f"no committed budget for this symbol (add '{key} N' "
                f"to {os.path.relpath(budget_path, root)})"
            )
        elif count > budgets[key]:
            problems.append(
                f"{count} instructions exceeds the committed budget "
                f"of {budgets[key]}"
            )
        if problems:
            status = 1
            print(f"FAIL {key} ({count} insns):")
            for p in problems:
                print(f"  - {p}")
            if args.verbose:
                print("    " + " ".join(insns))
        else:
            note = f"{count}/{budgets[key]} insns, no calls"
            if key in MUST_CAS:
                note += ", CAS present"
            print(f"  OK {key}: {note}")
            if args.verbose:
                print("    " + " ".join(insns))

    stale = set(budgets) - set(regions)
    for key in sorted(stale):
        status = 1
        print(f"FAIL stale budget entry (no such symbol): {key}")

    if status == 0:
        print(f"fastpath_guard: OK ({len(regions)} fast-path symbols "
              "within budget, call-free)")
    return status


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Atomics-discipline lint for the thinlocks sources.

Rule: every atomic operation in the linted subtrees (src/ and bench/ by
default) must name an explicit std::memory_order, and must not use
memory_order_seq_cst, unless the site is allowlisted with a one-line
justification.

Why: the thin-lock protocol's correctness argument is written in terms
of specific acquire/release edges (DESIGN.md section 11).  An implicit
order is seq_cst by default, which silently overpays on the fast path
(a full fence on ARM, a locked instruction where a plain store would do
for the release half on x86) and — worse — hides whether the author
*chose* an ordering or forgot to.  Forcing every site to name its order
turns each atomic into a reviewable claim.  seq_cst remains available,
but only behind an allowlist entry that says why the stronger order is
needed, so the strong sites stay enumerable.

What is checked:
  - method-form operations: .load/.store/.exchange/.fetch_*/
    .compare_exchange_{weak,strong}/.test_and_set/.clear on any object
    (we cannot see types, so *every* such call is checked; the repo has
    no non-atomic classes with these method names)
  - free-function fences: std::atomic_thread_fence / atomic_signal_fence
  - operator-form uses of declared atomics (Name++, Name += x,
    Name = x): these are implicitly seq_cst and invisible to the
    method-form scan, so the lint collects the names of everything
    declared std::atomic<...> in the file and flags compound
    assignments / increments on them.  Plain `Name = x` on a different
    (non-atomic) local that shadows a member would be a false positive;
    none exist today, and an allowlist entry is the escape hatch.

Allowlist: tools/lint/atomics_allowlist.txt.  Each entry line is

    <path-relative-to-repo> | <site key> | <justification>

where the site key is the operation with its argument list, whitespace
collapsed (shown verbatim in the lint error, so fixing a finding is
copy-paste).  Identical calls in one file share a key and one entry
covers them all.  Stale entries (matching no site) fail the lint so the
allowlist can never rot.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
No third-party dependencies; stdlib only.
"""

import argparse
import os
import re
import sys

METHOD_OPS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
    "test_and_set",
)

# C++20 atomic wait/notify_one/notify_all are deliberately NOT scanned:
# the repo does not use them (blocking goes through park/Parker), and
# the names collide with the monitor protocol's wait()/notify() methods.
NO_ORDER_OPS = set()

FENCE_FNS = ("atomic_thread_fence", "atomic_signal_fence")

METHOD_RE = re.compile(
    r"(?:\.|->)\s*(" + "|".join(METHOD_OPS) + r")\s*\("
)
FENCE_RE = re.compile(
    r"\b(?:std\s*::\s*)?(" + "|".join(FENCE_FNS) + r")\s*\("
)
ATOMIC_DECL_RE = re.compile(
    r"\bstd\s*::\s*atomic\s*<[^<>]*(?:<[^<>]*>[^<>]*)?>\s*&?\s*(\w+)"
)
# Operator forms that are sugar for seq_cst RMWs / stores on atomics.
OPERATOR_FORMS = (
    (re.compile(r"(\+\+|--)\s*{name}\b"), "pre-inc/dec"),
    (re.compile(r"\b{name}\s*(\+\+|--)"), "post-inc/dec"),
    (re.compile(r"\b{name}\s*(\+=|-=|\|=|&=|\^=)"), "compound assign"),
    (re.compile(r"\b{name}\s*=(?![=])"), "assignment"),
)


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving layout so
    offsets and line numbers still map to the original file."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append(
                "".join(ch if ch == "\n" else " " for ch in text[i:j])
            )
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                j += 1
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2
                       else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def balanced_args(text, open_paren):
    """Return (args, end) for the parenthesized argument list starting
    at text[open_paren] == '(', or (None, open_paren) if unbalanced."""
    depth = 0
    for j in range(open_paren, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : j], j
    return None, open_paren


def collapse(s):
    return re.sub(r"\s+", " ", s).strip()


class Finding:
    def __init__(self, path, line, key, message):
        self.path = path
        self.line = line
        self.key = key
        self.message = message


def scan_file(relpath, text):
    """Yield Finding objects for every suspicious atomic site."""
    clean = strip_comments_and_strings(text)

    def line_of(offset):
        return clean.count("\n", 0, offset) + 1

    # --- method-form and fence calls ---------------------------------
    for matcher, is_fence in ((METHOD_RE, False), (FENCE_RE, True)):
        for m in matcher.finditer(clean):
            op = m.group(1)
            args, _ = balanced_args(clean, m.end() - 1)
            if args is None:
                yield Finding(
                    relpath, line_of(m.start()), None,
                    f"unbalanced parentheses after {op}(",
                )
                continue
            key = f"{op}({collapse(args)})"
            line = line_of(m.start())
            has_order = "memory_order" in args
            if op in NO_ORDER_OPS:
                if has_order:
                    yield Finding(
                        relpath, line, key,
                        f"{op}() takes no memory_order argument",
                    )
                continue
            if not has_order:
                yield Finding(
                    relpath, line, key,
                    f"atomic {op}() without an explicit "
                    "std::memory_order (implicitly seq_cst)",
                )
            elif "memory_order_seq_cst" in args:
                yield Finding(
                    relpath, line, key,
                    f"atomic {op}() uses memory_order_seq_cst; "
                    "justify in the allowlist or weaken the order",
                )

    # --- operator-form uses of declared atomics ----------------------
    atomic_names = set(ATOMIC_DECL_RE.findall(clean))
    decl_spans = [m.span() for m in ATOMIC_DECL_RE.finditer(clean)]

    def in_decl(offset):
        # The declaration's own initializer ({0}, = nullptr) is the
        # declared default, not a runtime seq_cst store.
        return any(s <= offset < e + 40 for s, e in decl_spans)

    def is_declaration(offset):
        # `uint64_t Time = In.Time.load(...)` declares a plain local
        # that happens to share a name with an atomic member.  A name
        # directly preceded by another identifier (or `>`, `&`, `*`
        # closing a declarator) is a declaration, not an atomic use.
        before = clean[:offset].rstrip()
        return bool(before) and (before[-1].isalnum()
                                 or before[-1] in "_>&*")

    for name in atomic_names:
        for template, what in OPERATOR_FORMS:
            pat = re.compile(template.pattern.format(name=re.escape(name)))
            for m in pat.finditer(clean):
                name_at = m.start(0)
                if in_decl(name_at) or is_declaration(m.start()):
                    continue
                key = f"operator:{name} {what}"
                yield Finding(
                    relpath, line_of(m.start()), key,
                    f"operator-form {what} on atomic '{name}' "
                    "(implicitly seq_cst); use an explicit "
                    "fetch_/store with a memory_order",
                )


def load_allowlist(path):
    entries = {}
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = [p.strip() for p in line.split("|", 2)]
            if len(parts) != 3 or not all(parts):
                print(
                    f"{path}:{lineno}: malformed allowlist entry "
                    "(want: <path> | <site key> | <justification>)",
                    file=sys.stderr,
                )
                sys.exit(2)
            entries[(parts[0], parts[1])] = lineno
    return entries


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--root", default=None,
        help="repository root (default: two levels above this script)",
    )
    ap.add_argument(
        "--src", action="append", default=None,
        help="source subtree to lint, relative to --root; repeatable "
        "(default: src and bench)",
    )
    ap.add_argument(
        "--allowlist", default=None,
        help="allowlist file (default: atomics_allowlist.txt next to "
        "this script)",
    )
    args = ap.parse_args()

    here = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(os.path.dirname(here))
    allowlist_path = args.allowlist or os.path.join(
        here, "atomics_allowlist.txt"
    )
    allow = load_allowlist(allowlist_path)
    used = set()

    findings = []
    for src in args.src or ["src", "bench"]:
        src_root = os.path.join(root, src)
        if not os.path.isdir(src_root):
            print(f"error: no such source subtree: {src_root}",
                  file=sys.stderr)
            return 2
        for dirpath, _, filenames in os.walk(src_root):
            for fn in sorted(filenames):
                if not fn.endswith((".h", ".cpp", ".hpp", ".cc")):
                    continue
                full = os.path.join(dirpath, fn)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                with open(full, encoding="utf-8") as f:
                    text = f.read()
                for finding in scan_file(rel, text):
                    entry = (finding.path, finding.key)
                    if finding.key is not None and entry in allow:
                        used.add(entry)
                        continue
                    findings.append(finding)

    status = 0
    for f in sorted(findings, key=lambda f: (f.path, f.line)):
        print(f"{f.path}:{f.line}: {f.message}")
        if f.key is not None:
            print(f"    allowlist key: {f.path} | {f.key} | <why>")
        status = 1

    stale = set(allow) - used
    for path, key in sorted(stale):
        print(
            f"{allowlist_path}:{allow[(path, key)]}: stale allowlist "
            f"entry (no matching site): {path} | {key}"
        )
        status = 1

    if status == 0:
        print(
            f"atomics_lint: OK ({len(allow)} allowlisted site(s), "
            "all others explicit and weaker than seq_cst)"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())

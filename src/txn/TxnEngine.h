//===- txn/TxnEngine.h - Transactional scenario engine ---------*- C++ -*-===//
///
/// \file
/// The transactional scenario engine (DESIGN.md §15): workers run short
/// multi-object transactions — read/write sets drawn Zipfian from a
/// large per-run object universe — over any registered SyncProtocol,
/// with conflicts handled by one of the ConflictPolicy strategies.
/// This is the OLTP-shaped workload class the ROADMAP calls for: at
/// high skew the hot head of the Zipf distribution concentrates
/// conflicts onto a few monitors (inflation/morphing territory) while
/// the long tail keeps millions of objects on the thin fast path.
///
/// The engine owns the per-object side arrays (versions, mirrored
/// values, wait-die stamps) and the accounting; the protocol and heap
/// substrate are either borrowed (TxnEngine, so tests can inject a
/// ThinLock handle and audit its MonitorTable) or owned per run
/// (runTxnScenario, the bench entry point, which builds the protocol by
/// registry name exactly like the soak harness).
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_TXN_TXNENGINE_H
#define THINLOCKS_TXN_TXNENGINE_H

#include "heap/Heap.h"
#include "support/Histogram.h"
#include "threads/ThreadRegistry.h"
#include "txn/ConflictPolicy.h"

#include <cstdint>
#include <memory>
#include <string>

namespace thinlocks {
namespace txn {

/// Engine sizing.  Defaults are a small contended profile suitable for
/// tests; the bench scales HeapObjects into the millions.
struct TxnParams {
  size_t HeapObjects = 1024;
  double ZipfTheta = 0.8;
  unsigned Threads = 3;
  uint64_t TxnsPerThread = 2000;
  uint32_t ReadSetSize = 4;
  uint32_t WriteSetSize = 2;
  uint64_t Seed = 1;
  PolicyTuning Tuning;
  /// After every transaction, assert the worker holds none of the
  /// accessed monitors (the no-lost-locks contract); violations are
  /// counted, not fatal, so tests can report them.
  bool AuditEveryTxn = false;
};

/// Per-run (or per-worker, pre-merge) accounting.
struct TxnStats {
  uint64_t Started = 0;
  uint64_t Committed = 0;
  uint64_t AbortedBusy = 0;
  uint64_t AbortedDie = 0;
  uint64_t AbortedDeadlock = 0;
  uint64_t AbortedValidation = 0;
  uint64_t WritesApplied = 0;
  uint64_t ConsistencyViolations = 0;
  /// Locks still held after a transaction returned (AuditEveryTxn).
  uint64_t LeakedLocks = 0;
  /// Workers whose registry attachment failed: they ran zero
  /// transactions, so a non-zero count means the run's throughput is
  /// silently under-reported.  Benches and tests pin this at zero.
  uint64_t AttachFailures = 0;
  LatencyHistogram CommitLatency;
  LatencyHistogram AbortLatency;

  uint64_t aborted() const {
    return AbortedBusy + AbortedDie + AbortedDeadlock + AbortedValidation;
  }
  /// The accounting identity every run must satisfy.
  bool identityHolds() const { return Started == Committed + aborted(); }

  void record(TxnStatus Status, uint64_t Nanos);
  void merge(const TxnStats &Other);
};

/// Runs transactions over a borrowed substrate.  The registry, heap,
/// and backend must outlive the engine; the engine allocates its object
/// universe from \p TheHeap at construction.
class TxnEngine {
public:
  TxnEngine(SyncBackend &Sync, Heap &TheHeap, ThreadRegistry &Registry,
            ConflictPolicyKind Kind, const TxnParams &Params);
  ~TxnEngine();

  TxnEngine(const TxnEngine &) = delete;
  TxnEngine &operator=(const TxnEngine &) = delete;

  /// Spawns Params.Threads workers, runs every transaction, merges and
  /// \returns the combined stats.
  TxnStats run();

  /// Runs one worker's full transaction quota on the calling thread
  /// (\p Thread must be attached to the engine's registry).  Exposed so
  /// the hygiene tests can own the threads and audit each worker's
  /// index before detaching.
  TxnStats runWorker(const ThreadContext &Thread, unsigned WorkerId);

  /// Σ per-object commit counts (each committed write bumps its
  /// object's version by one commit).  Equals the merged
  /// Stats.WritesApplied on every correct run.
  uint64_t versionSum() const;

  const TxnTable &table() const { return Table; }
  ConflictPolicy &policy() { return *Policy; }

private:
  TxnParams Params;
  std::vector<Object *> Objects;
  std::unique_ptr<std::atomic<uint64_t>[]> Versions;
  std::unique_ptr<std::atomic<uint64_t>[]> Values;
  std::unique_ptr<std::atomic<uint64_t>[]> OwnerStamps;
  TxnTable Table;
  ThreadRegistry &Registry;
  load::ZipfSampler Popularity;
  std::unique_ptr<ConflictPolicy> Policy;
  /// Wait-die timestamp authority: unique, monotone per attempt.
  std::atomic<uint64_t> Clock{0};
};

/// Bench-facing wrapper: one cell of the protocol x policy grid.
struct TxnScenarioConfig {
  /// Registry name ("ThinLock", "JDK111", ...); unknown names are a
  /// fatal configuration error, exactly like the soak harness.
  std::string Protocol = "ThinLock";
  ConflictPolicyKind Policy = ConflictPolicyKind::NoWait;
  TxnParams Params;
};

struct TxnScenarioResult {
  TxnStats Stats;
  uint64_t ElapsedNanos = 0;
  /// The protocol's own protocolName() (artifact attribution).
  std::string ProtocolImpl;
  /// versionSum() == WritesApplied held at the end of the run.
  bool IntegrityOk = false;

  double commitsPerSecond() const {
    return ElapsedNanos == 0 ? 0.0
                             : static_cast<double>(Stats.Committed) * 1e9 /
                                   static_cast<double>(ElapsedNanos);
  }
};

/// Builds the named protocol plus a private registry/heap, runs one
/// engine to completion, and \returns the result.
TxnScenarioResult runTxnScenario(const TxnScenarioConfig &Config);

} // namespace txn
} // namespace thinlocks

#endif // THINLOCKS_TXN_TXNENGINE_H

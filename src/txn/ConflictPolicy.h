//===- txn/ConflictPolicy.h - Transaction conflict strategies --*- C++ -*-===//
///
/// \file
/// Conflict handling for the transactional scenario engine (DESIGN.md
/// §15).  A transaction is a short multi-object critical section: a
/// read set and a write set drawn from a shared object universe, every
/// access mediated by the object's monitor (any registered
/// SyncProtocol, via the type-erased SyncBackend).  Three strategies
/// from the OLTP concurrency-control literature sit behind one
/// interface:
///
///  - NoWait: pessimistic 2PL where every acquire is a tryLock; any
///    conflict aborts immediately.  Deadlock-free by construction and
///    the cheapest abort path, at the cost of aborting on transient
///    conflicts.
///
///  - WaitDie: pessimistic 2PL with timestamp ordering.  An older
///    transaction (smaller timestamp) may *wait* for a younger holder
///    (bounded tryLockFor rungs); a younger transaction conflicting
///    with an older holder *dies* immediately.  Waits-for edges
///    therefore only point older -> younger, so the schedule is
///    deadlock-free when holder timestamps are visible.  The stamp is
///    published *after* the monitor is acquired, so a conflicting
///    reader can catch a transient unstamped window and wait in the
///    forbidden direction; on thin locks the PR-1 cycle detector
///    double-confirms any resulting cycle and tryLockFor returns
///    TimedLockStatus::Deadlock — a precise abort signal rather than a
///    guessed timeout.  Protocols without a waits-for graph degrade to
///    TimedOut and the bounded rungs guarantee progress.
///
///  - Validated: OCC in the Silo style.  Reads run without locks
///    against per-object version words (LSB = write-in-progress,
///    committed versions even); commit locks only the write set (sorted,
///    tryLock — the "short lock-only commit window") and *marks each
///    locked version odd* so the in-flight commit is observable, then
///    re-validates that every read version is unchanged and unlocked
///    (the Silo lock-bit check), then publishes.  Without the mark, two
///    transactions with crossing read/write sets could each lock, each
///    validate against still-unchanged versions, and both publish — a
///    write-skew cycle committed as "serializable".
///
/// Every object's Value mirrors its Version at publish time, committed
/// under the same monitor/version protocol — so `Value == Version`
/// (and Version even) is a serializability spot-check every strategy
/// can assert on its read path.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_TXN_CONFLICTPOLICY_H
#define THINLOCKS_TXN_CONFLICTPOLICY_H

#include "core/SyncBackend.h"
#include "load/Zipf.h"
#include "support/SplitMix64.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace thinlocks {
namespace txn {

enum class ConflictPolicyKind : uint8_t { NoWait, WaitDie, Validated };

/// \returns the canonical artifact label ("NoWait", "WaitDie",
/// "Validated").
const char *conflictPolicyName(ConflictPolicyKind Kind);

/// Parses a canonical label; \returns false if \p Name is unknown.
bool parseConflictPolicy(std::string_view Name, ConflictPolicyKind &Out);

/// Every policy, in label order (grid builders iterate this).
const std::vector<ConflictPolicyKind> &allConflictPolicies();

/// Outcome of one transaction attempt.  Aborts are split by cause so
/// the bench can attribute them; an aborted attempt is never retried by
/// the engine (each attempt is one "started" transaction, so
/// `started == committed + aborted` holds per run).
enum class TxnStatus : uint8_t {
  Committed,
  AbortedBusy,       ///< Lock conflict (NoWait) or wait budget spent.
  AbortedDie,        ///< Wait-die: younger lost to an older holder.
  AbortedDeadlock,   ///< The protocol double-confirmed a waits-for
                     ///< cycle (TimedLockStatus::Deadlock; thin locks).
  AbortedValidation, ///< OCC: a read version moved before commit.
};

const char *txnStatusName(TxnStatus Status);
inline bool isAbort(TxnStatus Status) { return Status != TxnStatus::Committed; }

/// The shared substrate every transaction runs over.  Owned by the
/// engine; policies hold a const view.  Versions/Values follow the
/// seqlock-style protocol described in the file header; OwnerTs is the
/// wait-die side channel (holder's timestamp, 0 = unstamped/free).
struct TxnTable {
  SyncBackend *Sync = nullptr;
  Object *const *Objects = nullptr;
  std::atomic<uint64_t> *Versions = nullptr;
  std::atomic<uint64_t> *Values = nullptr;
  std::atomic<uint64_t> *OwnerTs = nullptr;
  size_t Size = 0;
};

/// Policy knobs; defaults suit both tests and the bench grid.
struct PolicyTuning {
  /// One wait-die wait rung: a bounded tryLockFor this long.  Long
  /// enough for the thin-lock detector to confirm a cycle at the
  /// deadline, short enough that timeout-degrading protocols retry
  /// promptly.
  int64_t WaitNanos = 2'000'000;
  /// Wait rungs before an older waiter gives up (AbortedBusy): the
  /// progress bound for protocols that can only report TimedOut.
  uint32_t MaxWaitRounds = 64;
  /// OCC: retries for an unstable (locked or moving) read.
  uint32_t MaxReadRetries = 64;
  /// OCC: tryLock attempts per write-set lock in the commit window.
  uint32_t CommitLockSpins = 8;
  /// Yield-spin this long while every lock is held (the transaction's
  /// "work").  Zero for throughput runs; tests raise it so conflicting
  /// schedules actually interleave even on a single timesliced CPU.
  uint64_t HoldNanos = 0;
};

/// One transaction's access sets: distinct indices into TxnTable,
/// reads and writes disjoint.  Buffers are reused across draws.
struct TxnAccess {
  std::vector<size_t> Reads;
  std::vector<size_t> Writes;
};

/// Per-worker scratch + counters; reused across transactions so the
/// per-attempt cost is allocation-free at steady state.
struct TxnScratch {
  std::vector<size_t> Acquired;         ///< 2PL: locks held, in order.
  std::vector<size_t> SortedWrites;     ///< OCC commit-window order.
  std::vector<uint64_t> ReadVersions;   ///< OCC: version per read.
  /// Serializability spot-check failures (Value != Version observed by
  /// a committed read).  Zero on every correct run.
  uint64_t ConsistencyViolations = 0;
  /// Writes actually published; Σ over workers must equal the summed
  /// version counters (TxnEngine::versionSum).
  uint64_t WritesApplied = 0;
};

/// Wait-die conflict verdict for one observed holder stamp.
enum class WaitDieDecision : uint8_t {
  Retry, ///< Holder not stamped yet (transient); try again.
  Wait,  ///< We are older: wait (bounded) for the holder.
  Die,   ///< We are younger: abort now.
};

/// The pure wait-die ordering rule: \p MyTs against the holder's
/// published stamp (\p HolderTs, 0 = unstamped).  Ties die — timestamps
/// are unique in a run, so a tie only arises from a stale read and
/// dying is the conservative (deadlock-free) choice.
inline WaitDieDecision waitDieDecide(uint64_t MyTs, uint64_t HolderTs) {
  if (HolderTs == 0)
    return WaitDieDecision::Retry;
  return MyTs < HolderTs ? WaitDieDecision::Wait : WaitDieDecision::Die;
}

/// Draws one transaction's access sets: up to \p WriteTarget writes and
/// \p ReadTarget reads, all indices distinct, drawn from \p Popularity
/// (writes first, so a tiny universe sheds reads before writes — a
/// 1-object universe degenerates to a single blind write).  Zipfian
/// draws that collide are redrawn; a bounded fallback scan guarantees
/// termination on tiny universes.
void drawTxnAccess(const load::ZipfSampler &Popularity, SplitMix64 &Rng,
                   uint32_t ReadTarget, uint32_t WriteTarget,
                   TxnAccess &Access);

//===----------------------------------------------------------------------===//
// OCC commit-window primitives (Silo-style).  Free functions so the
// serializability regression tests can drive the window's two sides
// against each other deterministically; ValidatedPolicy is the
// production caller.
//===----------------------------------------------------------------------===//

/// Locks every index in \p SortedWrites (ascending order, bounded
/// tryLock spins of \p Spins attempts each) and, under each monitor,
/// sets the object's version lock mark (the odd LSB) so the in-flight
/// commit is observable to concurrent validators and seqlock readers.
/// Acquired indices are appended to \p Acquired.  On any lock failure
/// the locks taken so far are unmarked and released and the function
/// \returns false.
bool occLockWriteSet(const TxnTable &Table, const ThreadContext &Thread,
                     const std::vector<size_t> &SortedWrites,
                     std::vector<size_t> &Acquired, uint32_t Spins);

/// Abort side of the commit window: clears each acquired object's
/// version lock mark (restoring the pre-window even version) and
/// releases the monitors, newest first.  \p Acquired is left empty.
void occAbortWriteSet(const TxnTable &Table, const ThreadContext &Thread,
                      std::vector<size_t> &Acquired);

/// Validates the read set against the snapshot \p ReadVersions: every
/// version must still be exactly its (even) snapshot value.  A moved
/// version is a conflicting committed write; an odd version is a
/// concurrent transaction's commit lock — the Silo lock-bit check that
/// turns a crossing-write-set schedule (T1 reads X writes Y, T2 reads Y
/// writes X) into at least one abort instead of a silently committed
/// write-skew cycle.  Issues a seq_cst fence before the loads so this
/// thread's own lock marks and these validation loads form a
/// store-buffering pair with a concurrent committer's: at least one
/// side must observe the other's marks.
bool occValidateReadSet(const TxnTable &Table, const std::vector<size_t> &Reads,
                        const std::vector<uint64_t> &ReadVersions);

/// One conflict strategy.  Implementations are stateless between calls
/// (all per-attempt state lives in \p Scratch), so a single instance is
/// shared by every worker.
class ConflictPolicy {
public:
  virtual ~ConflictPolicy();

  virtual ConflictPolicyKind kind() const = 0;
  const char *name() const { return conflictPolicyName(kind()); }

  /// Runs one transaction attempt as \p Thread with timestamp \p Ts
  /// (unique per attempt, engine-issued).  On any return — commit or
  /// abort — every monitor acquired during the attempt has been
  /// released (the no-lost-locks contract the hygiene tests pin).
  virtual TxnStatus execute(const ThreadContext &Thread, uint64_t Ts,
                            const TxnAccess &Access, TxnScratch &Scratch) = 0;
};

std::unique_ptr<ConflictPolicy> makeConflictPolicy(ConflictPolicyKind Kind,
                                                   const TxnTable &Table,
                                                   const PolicyTuning &Tuning);

} // namespace txn
} // namespace thinlocks

#endif // THINLOCKS_TXN_CONFLICTPOLICY_H

//===- txn/TxnEngine.cpp - Transactional scenario engine ------------------===//

#include "txn/TxnEngine.h"

#include "core/ProtocolRegistry.h"
#include "support/Fatal.h"
#include "support/Timer.h"

#include <thread>

namespace thinlocks {
namespace txn {

void TxnStats::record(TxnStatus Status, uint64_t Nanos) {
  ++Started;
  switch (Status) {
  case TxnStatus::Committed:
    ++Committed;
    CommitLatency.record(Nanos);
    return;
  case TxnStatus::AbortedBusy:
    ++AbortedBusy;
    break;
  case TxnStatus::AbortedDie:
    ++AbortedDie;
    break;
  case TxnStatus::AbortedDeadlock:
    ++AbortedDeadlock;
    break;
  case TxnStatus::AbortedValidation:
    ++AbortedValidation;
    break;
  }
  AbortLatency.record(Nanos);
}

void TxnStats::merge(const TxnStats &Other) {
  Started += Other.Started;
  Committed += Other.Committed;
  AbortedBusy += Other.AbortedBusy;
  AbortedDie += Other.AbortedDie;
  AbortedDeadlock += Other.AbortedDeadlock;
  AbortedValidation += Other.AbortedValidation;
  WritesApplied += Other.WritesApplied;
  ConsistencyViolations += Other.ConsistencyViolations;
  LeakedLocks += Other.LeakedLocks;
  AttachFailures += Other.AttachFailures;
  CommitLatency.merge(Other.CommitLatency);
  AbortLatency.merge(Other.AbortLatency);
}

TxnEngine::TxnEngine(SyncBackend &Sync, Heap &TheHeap,
                     ThreadRegistry &Registry, ConflictPolicyKind Kind,
                     const TxnParams &Params)
    : Params(Params), Registry(Registry),
      Popularity(Params.HeapObjects == 0 ? 1 : Params.HeapObjects,
                 Params.ZipfTheta) {
  const size_t Universe = Popularity.universe();
  const ClassInfo &Class =
      TheHeap.classes().registerClass("TxnObj", /*SlotCount=*/1);
  Objects.reserve(Universe);
  for (size_t I = 0; I < Universe; ++I)
    Objects.push_back(TheHeap.allocate(Class));
  // Value-initialized: every version/value/stamp starts at 0 ("version
  // 0, unstamped"), satisfying Value == Version from the first read.
  Versions = std::make_unique<std::atomic<uint64_t>[]>(Universe);
  Values = std::make_unique<std::atomic<uint64_t>[]>(Universe);
  OwnerStamps = std::make_unique<std::atomic<uint64_t>[]>(Universe);

  Table.Sync = &Sync;
  Table.Objects = Objects.data();
  Table.Versions = Versions.get();
  Table.Values = Values.get();
  Table.OwnerTs = OwnerStamps.get();
  Table.Size = Universe;
  Policy = makeConflictPolicy(Kind, Table, Params.Tuning);
}

TxnEngine::~TxnEngine() = default;

TxnStats TxnEngine::runWorker(const ThreadContext &Thread, unsigned WorkerId) {
  TxnStats Stats;
  TxnAccess Access;
  TxnScratch Scratch;
  SplitMix64 Rng(Params.Seed + 0x9e3779b97f4a7c15ull * (WorkerId + 1));
  for (uint64_t T = 0; T < Params.TxnsPerThread; ++T) {
    drawTxnAccess(Popularity, Rng, Params.ReadSetSize, Params.WriteSetSize,
                  Access);
    // Timestamps start at 1 so 0 stays the "unstamped" sentinel.
    uint64_t Ts = Clock.fetch_add(1, std::memory_order_relaxed) + 1;
    StopWatch Watch;
    TxnStatus Status = Policy->execute(Thread, Ts, Access, Scratch);
    Stats.record(Status, Watch.elapsedNanos());
    if (Params.AuditEveryTxn) {
      for (const std::vector<size_t> *Set : {&Access.Writes, &Access.Reads})
        for (size_t Idx : *Set)
          if (Table.Sync->holdsLock(Table.Objects[Idx], Thread))
            ++Stats.LeakedLocks;
    }
  }
  Stats.WritesApplied = Scratch.WritesApplied;
  Stats.ConsistencyViolations = Scratch.ConsistencyViolations;
  return Stats;
}

TxnStats TxnEngine::run() {
  std::vector<TxnStats> PerWorker(Params.Threads);
  std::vector<std::thread> Workers;
  Workers.reserve(Params.Threads);
  for (unsigned W = 0; W < Params.Threads; ++W) {
    Workers.emplace_back([this, &PerWorker, W] {
      ScopedThreadAttachment Attach(Registry, "txn-worker");
      if (!Attach.context().isValid()) {
        // Ran nothing: record the failure so a partially-attached run
        // is visible instead of silently under-reporting throughput.
        PerWorker[W].AttachFailures = 1;
        return;
      }
      PerWorker[W] = runWorker(Attach.context(), W);
    });
  }
  for (std::thread &Worker : Workers)
    Worker.join();
  TxnStats Merged;
  for (const TxnStats &Stats : PerWorker)
    Merged.merge(Stats);
  return Merged;
}

uint64_t TxnEngine::versionSum() const {
  uint64_t Sum = 0;
  for (size_t I = 0; I < Table.Size; ++I)
    Sum += Versions[I].load(std::memory_order_acquire) >> 1;
  return Sum;
}

TxnScenarioResult runTxnScenario(const TxnScenarioConfig &Config) {
  std::unique_ptr<ProtocolHandle> Handle =
      createProtocol(Config.Protocol, ProtocolConfig());
  if (!Handle)
    fatalError("txn: unknown protocol '%s' (see core/ProtocolRegistry.h "
               "for the registered names)",
               Config.Protocol.c_str());

  ThreadRegistry Registry(1024);
  Heap TheHeap;
  TxnEngine Engine(Handle->sync(), TheHeap, Registry, Config.Policy,
                   Config.Params);

  TxnScenarioResult Result;
  StopWatch Watch;
  Result.Stats = Engine.run();
  Result.ElapsedNanos = Watch.elapsedNanos();
  Result.ProtocolImpl = Handle->sync().name();
  Result.IntegrityOk = Engine.versionSum() == Result.Stats.WritesApplied;
  return Result;
}

} // namespace txn
} // namespace thinlocks

//===- txn/ConflictPolicy.cpp - NoWait / WaitDie / Validated --------------===//

#include "txn/ConflictPolicy.h"

#include "support/Timer.h"

#include <algorithm>
#include <thread>

namespace thinlocks {
namespace txn {

ConflictPolicy::~ConflictPolicy() = default;

const char *conflictPolicyName(ConflictPolicyKind Kind) {
  switch (Kind) {
  case ConflictPolicyKind::NoWait:
    return "NoWait";
  case ConflictPolicyKind::WaitDie:
    return "WaitDie";
  case ConflictPolicyKind::Validated:
    return "Validated";
  }
  return "?";
}

bool parseConflictPolicy(std::string_view Name, ConflictPolicyKind &Out) {
  for (ConflictPolicyKind Kind : allConflictPolicies()) {
    if (Name == conflictPolicyName(Kind)) {
      Out = Kind;
      return true;
    }
  }
  return false;
}

const std::vector<ConflictPolicyKind> &allConflictPolicies() {
  static const std::vector<ConflictPolicyKind> All = {
      ConflictPolicyKind::NoWait, ConflictPolicyKind::WaitDie,
      ConflictPolicyKind::Validated};
  return All;
}

const char *txnStatusName(TxnStatus Status) {
  switch (Status) {
  case TxnStatus::Committed:
    return "committed";
  case TxnStatus::AbortedBusy:
    return "busy";
  case TxnStatus::AbortedDie:
    return "die";
  case TxnStatus::AbortedDeadlock:
    return "deadlock";
  case TxnStatus::AbortedValidation:
    return "validation";
  }
  return "?";
}

void drawTxnAccess(const load::ZipfSampler &Popularity, SplitMix64 &Rng,
                   uint32_t ReadTarget, uint32_t WriteTarget,
                   TxnAccess &Access) {
  Access.Reads.clear();
  Access.Writes.clear();
  const size_t Universe = Popularity.universe();
  // Writes first: a universe smaller than the combined targets sheds
  // reads before writes, so update pressure survives the degenerate
  // corners (N == 1 becomes one blind write).
  size_t Total = std::min<size_t>(Universe, size_t(ReadTarget) + WriteTarget);
  size_t Writes = std::min<size_t>(WriteTarget, Total);

  auto taken = [&Access](size_t Idx) {
    return std::find(Access.Writes.begin(), Access.Writes.end(), Idx) !=
               Access.Writes.end() ||
           std::find(Access.Reads.begin(), Access.Reads.end(), Idx) !=
               Access.Reads.end();
  };
  auto drawDistinct = [&]() -> size_t {
    for (unsigned Attempt = 0; Attempt < 64; ++Attempt) {
      size_t Idx = Popularity.sample(Rng);
      if (!taken(Idx))
        return Idx;
    }
    // Tiny, skewed universes can make rejection sampling slow; Total <=
    // Universe guarantees a free index exists, so scan for it.
    size_t Start = Rng.nextBounded(Universe);
    for (size_t I = 0; I < Universe; ++I) {
      size_t Idx = (Start + I) % Universe;
      if (!taken(Idx))
        return Idx;
    }
    return 0; // Unreachable: Total <= Universe.
  };

  for (size_t I = 0; I < Writes; ++I)
    Access.Writes.push_back(drawDistinct());
  for (size_t I = Writes; I < Total; ++I)
    Access.Reads.push_back(drawDistinct());
}

bool occLockWriteSet(const TxnTable &Table, const ThreadContext &Thread,
                     const std::vector<size_t> &SortedWrites,
                     std::vector<size_t> &Acquired, uint32_t Spins) {
  for (size_t Idx : SortedWrites) {
    bool Locked = false;
    for (uint32_t Spin = 0; Spin < Spins; ++Spin) {
      if (Table.Sync->tryLock(Table.Objects[Idx], Thread)) {
        Locked = true;
        break;
      }
    }
    if (!Locked) {
      occAbortWriteSet(Table, Thread, Acquired);
      return false;
    }
    Acquired.push_back(Idx);
    // Make the commit lock observable (the Silo lock bit): a concurrent
    // validator that read this object must see the odd mark and abort,
    // and lock-free seqlock readers retry past it.  We hold the
    // monitor, so no concurrent writer races this word.
    uint64_t Version = Table.Versions[Idx].load(std::memory_order_relaxed);
    Table.Versions[Idx].store(Version | 1, std::memory_order_release);
  }
  return true;
}

void occAbortWriteSet(const TxnTable &Table, const ThreadContext &Thread,
                      std::vector<size_t> &Acquired) {
  for (size_t I = Acquired.size(); I-- > 0;) {
    size_t Idx = Acquired[I];
    // Restore the pre-window even version before the monitor is
    // released; nothing was published, so readers see the old snapshot.
    uint64_t Version = Table.Versions[Idx].load(std::memory_order_relaxed);
    Table.Versions[Idx].store(Version & ~uint64_t(1),
                              std::memory_order_release);
    Table.Sync->unlock(Table.Objects[Idx], Thread);
  }
  Acquired.clear();
}

bool occValidateReadSet(const TxnTable &Table, const std::vector<size_t> &Reads,
                        const std::vector<uint64_t> &ReadVersions) {
  // Store-buffering pair with a concurrent committer: our lock marks
  // are sequenced before this fence, its validation loads after its
  // own fence — seq_cst fences totally order, so two crossing commit
  // windows cannot both read the other's pre-mark versions.  Without
  // this, write skew (both validate, both publish) would be possible
  // even with the marks in place.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (size_t I = 0; I < Reads.size(); ++I) {
    uint64_t Now = Table.Versions[Reads[I]].load(std::memory_order_acquire);
    // Snapshots are always even, so `Now != snapshot` catches both a
    // moved version (conflicting commit) and an odd one (a concurrent
    // transaction's commit lock).
    if (Now != ReadVersions[I])
      return false;
  }
  return true;
}

namespace {

/// Publishes one committed write to \p Idx.  Caller holds the object's
/// monitor (2PL) or its OCC commit lock — either way no concurrent
/// writer exists, so plain loads suffice on our own word.  The odd
/// intermediate marks write-in-progress for lock-free OCC readers (a
/// no-op when the OCC commit window already marked it); release
/// ordering makes the final even version carry the value.
void applyWrite(const TxnTable &Table, size_t Idx, TxnScratch &Scratch) {
  uint64_t Version = Table.Versions[Idx].load(std::memory_order_relaxed);
  uint64_t Next = ((Version >> 1) + 1) << 1;
  Table.Versions[Idx].store(Version | 1, std::memory_order_release);
  Table.Values[Idx].store(Next, std::memory_order_release);
  Table.Versions[Idx].store(Next, std::memory_order_release);
  ++Scratch.WritesApplied;
}

/// The serializability spot-check on a monitor-held read: the version
/// must be quiescent (even) and the value must mirror it.  Any torn or
/// lost update shows up here.
void checkHeldRead(const TxnTable &Table, size_t Idx, TxnScratch &Scratch) {
  uint64_t Version = Table.Versions[Idx].load(std::memory_order_acquire);
  uint64_t Value = Table.Values[Idx].load(std::memory_order_acquire);
  if ((Version & 1) != 0 || Value != Version)
    ++Scratch.ConsistencyViolations;
}

/// The transaction's in-critical-section "work": a yield-spin so
/// conflicting schedules interleave even on one timesliced CPU.
void holdFor(uint64_t Nanos) {
  if (Nanos == 0)
    return;
  uint64_t Start = monotonicNanos();
  while (monotonicNanos() - Start < Nanos)
    std::this_thread::yield();
}

/// Shared 2PL body once every access is locked: check reads, publish
/// writes, release everything in reverse acquisition order.  \p StampTs
/// non-zero means wait-die stamps must be cleared before each unlock.
TxnStatus commitTwoPhase(const TxnTable &Table, const ThreadContext &Thread,
                         const TxnAccess &Access, TxnScratch &Scratch,
                         uint64_t StampTs, uint64_t HoldNanos) {
  holdFor(HoldNanos);
  for (size_t Idx : Access.Reads)
    checkHeldRead(Table, Idx, Scratch);
  for (size_t Idx : Access.Writes)
    applyWrite(Table, Idx, Scratch);
  for (size_t I = Scratch.Acquired.size(); I-- > 0;) {
    size_t Idx = Scratch.Acquired[I];
    if (StampTs != 0)
      Table.OwnerTs[Idx].store(0, std::memory_order_release);
    Table.Sync->unlock(Table.Objects[Idx], Thread);
  }
  Scratch.Acquired.clear();
  return TxnStatus::Committed;
}

/// Abort path shared by the 2PL policies: release whatever was
/// acquired, newest first, clearing wait-die stamps when present.
TxnStatus abortTwoPhase(const TxnTable &Table, const ThreadContext &Thread,
                        TxnScratch &Scratch, uint64_t StampTs,
                        TxnStatus Status) {
  for (size_t I = Scratch.Acquired.size(); I-- > 0;) {
    size_t Idx = Scratch.Acquired[I];
    if (StampTs != 0)
      Table.OwnerTs[Idx].store(0, std::memory_order_release);
    Table.Sync->unlock(Table.Objects[Idx], Thread);
  }
  Scratch.Acquired.clear();
  return Status;
}

class NoWaitPolicy final : public ConflictPolicy {
  TxnTable Table;
  PolicyTuning Tuning;

public:
  NoWaitPolicy(const TxnTable &Table, const PolicyTuning &Tuning)
      : Table(Table), Tuning(Tuning) {}

  ConflictPolicyKind kind() const override {
    return ConflictPolicyKind::NoWait;
  }

  TxnStatus execute(const ThreadContext &Thread, uint64_t,
                    const TxnAccess &Access, TxnScratch &Scratch) override {
    Scratch.Acquired.clear();
    // Draw order, writes first — deliberately unsorted so conflicting
    // transactions collide in both directions; NoWait never blocks, so
    // acquisition order cannot deadlock.
    for (const std::vector<size_t> *Set : {&Access.Writes, &Access.Reads}) {
      for (size_t Idx : *Set) {
        if (!Table.Sync->tryLock(Table.Objects[Idx], Thread))
          return abortTwoPhase(Table, Thread, Scratch, /*StampTs=*/0,
                               TxnStatus::AbortedBusy);
        Scratch.Acquired.push_back(Idx);
      }
    }
    return commitTwoPhase(Table, Thread, Access, Scratch, /*StampTs=*/0,
                          Tuning.HoldNanos);
  }
};

class WaitDiePolicy final : public ConflictPolicy {
  TxnTable Table;
  PolicyTuning Tuning;

public:
  WaitDiePolicy(const TxnTable &Table, const PolicyTuning &Tuning)
      : Table(Table), Tuning(Tuning) {}

  ConflictPolicyKind kind() const override {
    return ConflictPolicyKind::WaitDie;
  }

  /// Acquires \p Idx's monitor under the wait-die rule, stamping
  /// OwnerTs on success.
  TxnStatus acquire(const ThreadContext &Thread, uint64_t Ts, size_t Idx) {
    uint32_t Rounds = 0;
    for (;;) {
      if (Table.Sync->tryLock(Table.Objects[Idx], Thread)) {
        Table.OwnerTs[Idx].store(Ts, std::memory_order_release);
        return TxnStatus::Committed; // "acquired" sentinel for callers.
      }
      uint64_t Holder = Table.OwnerTs[Idx].load(std::memory_order_acquire);
      if (waitDieDecide(Ts, Holder) == WaitDieDecision::Die)
        return TxnStatus::AbortedDie;
      // Older than the holder — or the holder is mid-stamp (Retry):
      // wait one bounded rung either way.  The Retry case can point a
      // waits-for edge younger -> older; on thin locks the cycle
      // detector turns any resulting cycle into a precise
      // TimedLockStatus::Deadlock, and elsewhere the rung budget below
      // bounds the damage to AbortedBusy.
      switch (Table.Sync->tryLockFor(Table.Objects[Idx], Thread,
                                     Tuning.WaitNanos)) {
      case TimedLockStatus::Acquired:
        Table.OwnerTs[Idx].store(Ts, std::memory_order_release);
        return TxnStatus::Committed;
      case TimedLockStatus::Deadlock:
        return TxnStatus::AbortedDeadlock;
      case TimedLockStatus::TimedOut:
        if (++Rounds >= Tuning.MaxWaitRounds)
          return TxnStatus::AbortedBusy;
        break;
      }
    }
  }

  TxnStatus execute(const ThreadContext &Thread, uint64_t Ts,
                    const TxnAccess &Access, TxnScratch &Scratch) override {
    Scratch.Acquired.clear();
    for (const std::vector<size_t> *Set : {&Access.Writes, &Access.Reads}) {
      for (size_t Idx : *Set) {
        TxnStatus Status = acquire(Thread, Ts, Idx);
        if (Status != TxnStatus::Committed)
          return abortTwoPhase(Table, Thread, Scratch, Ts, Status);
        Scratch.Acquired.push_back(Idx);
      }
    }
    return commitTwoPhase(Table, Thread, Access, Scratch, Ts,
                          Tuning.HoldNanos);
  }
};

class ValidatedPolicy final : public ConflictPolicy {
  TxnTable Table;
  PolicyTuning Tuning;

public:
  ValidatedPolicy(const TxnTable &Table, const PolicyTuning &Tuning)
      : Table(Table), Tuning(Tuning) {}

  ConflictPolicyKind kind() const override {
    return ConflictPolicyKind::Validated;
  }

  TxnStatus execute(const ThreadContext &Thread, uint64_t,
                    const TxnAccess &Access, TxnScratch &Scratch) override {
    Scratch.Acquired.clear();
    Scratch.ReadVersions.clear();

    // Read phase: lock-free seqlock reads.  A stable snapshot is an
    // even version observed unchanged around the value load; the
    // acquire on the value load is what makes the second version read
    // conclusive (a newer writer's odd mark is visible by then).
    for (size_t Idx : Access.Reads) {
      bool Stable = false;
      for (uint32_t Attempt = 0; Attempt < Tuning.MaxReadRetries; ++Attempt) {
        uint64_t Before = Table.Versions[Idx].load(std::memory_order_acquire);
        if ((Before & 1) != 0)
          continue;
        uint64_t Value = Table.Values[Idx].load(std::memory_order_acquire);
        uint64_t After = Table.Versions[Idx].load(std::memory_order_acquire);
        if (Before != After)
          continue;
        if (Value != Before)
          ++Scratch.ConsistencyViolations;
        Scratch.ReadVersions.push_back(Before);
        Stable = true;
        break;
      }
      if (!Stable)
        return TxnStatus::AbortedValidation;
    }

    // Commit window: lock the write set only, in ascending index order
    // so concurrent committers cannot deadlock, each lock a short
    // bounded tryLock spin, each locked version marked odd so the
    // window is observable to concurrent validators.
    Scratch.SortedWrites.assign(Access.Writes.begin(), Access.Writes.end());
    std::sort(Scratch.SortedWrites.begin(), Scratch.SortedWrites.end());
    if (!occLockWriteSet(Table, Thread, Scratch.SortedWrites,
                         Scratch.Acquired, Tuning.CommitLockSpins))
      return TxnStatus::AbortedBusy;

    holdFor(Tuning.HoldNanos);

    // Validation: every read version must still be the snapshot we
    // used (reads and writes are disjoint, so none of these is our own
    // commit lock; an odd or moved version means a conflicting commit
    // — in flight or published).
    if (!occValidateReadSet(Table, Access.Reads, Scratch.ReadVersions)) {
      occAbortWriteSet(Table, Thread, Scratch.Acquired);
      return TxnStatus::AbortedValidation;
    }

    for (size_t Idx : Scratch.SortedWrites)
      applyWrite(Table, Idx, Scratch);
    for (size_t I = Scratch.Acquired.size(); I-- > 0;)
      Table.Sync->unlock(Table.Objects[Scratch.Acquired[I]], Thread);
    Scratch.Acquired.clear();
    return TxnStatus::Committed;
  }
};

} // namespace

std::unique_ptr<ConflictPolicy> makeConflictPolicy(ConflictPolicyKind Kind,
                                                   const TxnTable &Table,
                                                   const PolicyTuning &Tuning) {
  switch (Kind) {
  case ConflictPolicyKind::NoWait:
    return std::make_unique<NoWaitPolicy>(Table, Tuning);
  case ConflictPolicyKind::WaitDie:
    return std::make_unique<WaitDiePolicy>(Table, Tuning);
  case ConflictPolicyKind::Validated:
    return std::make_unique<ValidatedPolicy>(Table, Tuning);
  }
  return nullptr;
}

} // namespace txn
} // namespace thinlocks

//===- threads/ThreadContext.h - Per-thread execution env ------*- C++ -*-===//
///
/// \file
/// The per-thread "execution environment" of the paper (§2.3.1).  The
/// locking fast path needs the current thread's 15-bit index *pre-shifted*
/// 16 bits left so that composing a thin lock word is a single OR and the
/// owner check is a single XOR; the paper stores this pre-shifted value in
/// the execution environment structure, and so do we.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_THREADS_THREADCONTEXT_H
#define THINLOCKS_THREADS_THREADCONTEXT_H

#include <cstdint>

namespace thinlocks {

class Parker;
class ThreadRegistry;

namespace obs {
class EventRing;
} // namespace obs

/// Identity of an attached thread, as seen by the locking subsystems.
///
/// A ThreadContext is produced by ThreadRegistry::attach() and must be
/// returned via ThreadRegistry::detach() (or created through
/// ScopedThreadAttachment, which does both).  It is cheap to copy but all
/// copies share the one registry slot; detach once.
class ThreadContext {
  friend class ThreadRegistry;

  ThreadRegistry *Registry = nullptr;
  Parker *Pk = nullptr;
  obs::EventRing *Ring = nullptr;
  uint16_t Index = 0;
  uint32_t Shifted = 0;

public:
  /// Creates an invalid (unattached) context; index() is 0, which is the
  /// "unlocked" encoding and never a real thread.
  ThreadContext() = default;

  /// \returns true if this context denotes an attached thread.
  bool isValid() const { return Index != 0; }

  /// \returns the 15-bit thread index (1..32767); 0 means invalid.
  uint16_t index() const { return Index; }

  /// \returns the thread index shifted left 16 bits, ready to OR into a
  /// lock word.
  uint32_t shiftedIndex() const { return Shifted; }

  /// \returns the registry this context is attached to; only meaningful
  /// when isValid().
  ThreadRegistry &registry() const { return *Registry; }

  /// \returns this thread's Parker — the one blocking primitive every
  /// contended path sleeps on (see park/Parker.h).  Owned by the
  /// registry's ThreadInfo; non-null whenever isValid().
  Parker *parker() const { return Pk; }

  /// \returns this thread's lock-event ring (see obs/EventRing.h), also
  /// owned by the registry's ThreadInfo; non-null whenever isValid().
  obs::EventRing *eventRing() const { return Ring; }
};

} // namespace thinlocks

#endif // THINLOCKS_THREADS_THREADCONTEXT_H

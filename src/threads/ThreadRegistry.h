//===- threads/ThreadRegistry.h - 15-bit thread index table ----*- C++ -*-===//
///
/// \file
/// The table that maps 15-bit thread indices to thread information (paper
/// §2.3: "If the thread identifier is non-zero, it is an index into a
/// table we maintain which maps thread indices to thread pointers").
/// Index 0 is reserved: a thin lock word with thread index 0 is unlocked.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_THREADS_THREADREGISTRY_H
#define THINLOCKS_THREADS_THREADREGISTRY_H

#include "threads/ThreadContext.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace thinlocks {

/// Bookkeeping for one attached thread.
struct ThreadInfo {
  uint16_t Index = 0;
  std::string Name;
  std::thread::id NativeId;
};

/// Allocates and recycles 15-bit thread indices and owns the index->info
/// table.  Lookups by index are lock-free; attach/detach take a mutex.
class ThreadRegistry {
public:
  /// Largest usable index (index 0 is the reserved "unlocked" encoding).
  static constexpr uint16_t MaxThreadIndex = (1u << 15) - 1;

  ThreadRegistry();
  ~ThreadRegistry();

  ThreadRegistry(const ThreadRegistry &) = delete;
  ThreadRegistry &operator=(const ThreadRegistry &) = delete;

  /// Registers the calling thread and assigns it an index.  \returns an
  /// invalid context (isValid() == false) if all 32767 indices are in use.
  ThreadContext attach(std::string Name = std::string());

  /// Releases \p Ctx's index for reuse and invalidates \p Ctx.  The caller
  /// must not hold any lock owned under this identity.
  void detach(ThreadContext &Ctx);

  /// \returns the info for an attached index, or nullptr if \p Index is
  /// not currently attached.  Safe to call concurrently with attach and
  /// detach of *other* indices.
  const ThreadInfo *info(uint16_t Index) const;

  /// \returns the number of currently attached threads.
  uint32_t liveThreadCount() const {
    return LiveCount.load(std::memory_order_relaxed);
  }

  /// \returns the high-water mark of simultaneously attached threads.
  uint32_t peakThreadCount() const {
    return PeakCount.load(std::memory_order_relaxed);
  }

  /// \returns the context the calling thread most recently attached with
  /// through this registry (thread-local), or an invalid context.
  static ThreadContext currentContext();

private:
  mutable std::mutex Mutex;
  // Slot I holds the info for index I while attached, nullptr otherwise.
  std::vector<std::atomic<ThreadInfo *>> Slots;
  std::vector<std::unique_ptr<ThreadInfo>> Storage;
  std::vector<uint16_t> FreeIndices;
  uint16_t NextFreshIndex = 1;
  std::atomic<uint32_t> LiveCount{0};
  std::atomic<uint32_t> PeakCount{0};
};

/// RAII attachment: attaches on construction, detaches on destruction, and
/// publishes the context as ThreadRegistry::currentContext() for the
/// duration.
class ScopedThreadAttachment {
  ThreadContext Ctx;
  ThreadContext SavedCurrent;

public:
  explicit ScopedThreadAttachment(ThreadRegistry &Registry,
                                  std::string Name = std::string());
  ~ScopedThreadAttachment();

  ScopedThreadAttachment(const ScopedThreadAttachment &) = delete;
  ScopedThreadAttachment &operator=(const ScopedThreadAttachment &) = delete;

  ThreadContext &context() { return Ctx; }
  const ThreadContext &context() const { return Ctx; }
};

} // namespace thinlocks

#endif // THINLOCKS_THREADS_THREADREGISTRY_H

//===- threads/ThreadRegistry.h - 15-bit thread index table ----*- C++ -*-===//
///
/// \file
/// The table that maps 15-bit thread indices to thread information (paper
/// §2.3: "If the thread identifier is non-zero, it is an index into a
/// table we maintain which maps thread indices to thread pointers").
/// Index 0 is reserved: a thin lock word with thread index 0 is unlocked.
///
/// Robustness layers beyond the paper:
///  - attach() reports exhaustion of the 32767-index space as a typed
///    AttachError the VM surfaces as a trap, instead of only an invalid
///    context the caller may forget to test;
///  - each ThreadInfo publishes which object its thread is currently
///    blocked on, forming the waits-for edges of the deadlock detector's
///    owner graph (core/Deadlock.h);
///  - detach() can *quarantine* an index instead of recycling it when an
///    installed auditor reports the index is still encoded in a live
///    lock word — preventing a fresh thread from inheriting a stale
///    index and falsely "owning" somebody's abandoned lock.  Quarantined
///    indices are re-audited (and reclaimed) when the free space runs
///    dry.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_THREADS_THREADREGISTRY_H
#define THINLOCKS_THREADS_THREADREGISTRY_H

#include "obs/EventRing.h"
#include "park/Parker.h"
#include "support/Mutex.h"
#include "threads/ThreadContext.h"

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace thinlocks {

class Object;

/// Bookkeeping for one attached thread.
struct ThreadInfo {
  uint16_t Index = 0;
  std::string Name;
  std::thread::id NativeId;
  /// The object this thread is currently blocked acquiring (null when
  /// running).  Published by the contention slow paths; consumed by the
  /// deadlock detector's owner-graph walk.
  std::atomic<const Object *> BlockedOn{nullptr};
  /// The thread's one blocking primitive, shared by every contended
  /// path (fat-lock entry/wait queues, ParkingLot).  Lives as long as
  /// the registry, so a straggling unpark() from an abandoned handoff
  /// can never target freed memory even after the thread detaches.
  Parker Park;
  /// The thread's lock-event ring (obs/EventRing.h).  Registry-lifetime
  /// like the Parker, so a collector can drain events from threads that
  /// already detached, and recycled on attach the same way: a fresh
  /// thread on a recycled index keeps appending to the same storage
  /// (events self-identify via their embedded thread index).
  obs::EventRing Events;
};

/// Why attach() failed to produce a valid context.
enum class AttachError : uint8_t {
  None,      ///< Attached successfully.
  Exhausted, ///< All 32767 indices are live or quarantined.
};

/// Allocates and recycles 15-bit thread indices and owns the index->info
/// table.  Lookups by index are lock-free; attach/detach take a mutex.
class ThreadRegistry {
public:
  /// Largest usable index (index 0 is the reserved "unlocked" encoding).
  static constexpr uint16_t MaxThreadIndex = (1u << 15) - 1;

  /// Callback asked whether \p Index is still encoded in any live lock
  /// word (thin owner field or fat-lock owner).  \returns true to keep
  /// the index quarantined.  See core/OwnershipAudit.h for the standard
  /// heap-scanning implementation.
  using IndexAuditor = std::function<bool(uint16_t Index)>;

  /// \param Capacity largest thread index this registry hands out
  /// (default: the full 15-bit space).  Shrinking it lets exhaustion and
  /// admission-control tests hit the wall without attaching 32767
  /// threads, and lets a deployment reserve headroom below the encoding
  /// limit.  Clamped to [1, MaxThreadIndex].
  explicit ThreadRegistry(uint16_t Capacity = MaxThreadIndex);
  ~ThreadRegistry();

  ThreadRegistry(const ThreadRegistry &) = delete;
  ThreadRegistry &operator=(const ThreadRegistry &) = delete;

  /// Registers the calling thread and assigns it an index.  \returns an
  /// invalid context (isValid() == false) if all capacity() indices are
  /// in use; when \p Error is non-null it receives the typed reason.
  ThreadContext attach(std::string Name = std::string(),
                       AttachError *Error = nullptr) TL_EXCLUDES(Mu);

  /// Releases \p Ctx's index and invalidates \p Ctx.  The caller must
  /// not hold any lock owned under this identity; when an index auditor
  /// is installed, an index that still appears in a live lock word is
  /// quarantined instead of recycled, so a later attach() cannot
  /// impersonate the stale owner.  Detaching an invalid, foreign, or
  /// already-detached context terminates with a diagnostic in every
  /// build mode.
  void detach(ThreadContext &Ctx) TL_EXCLUDES(Mu);

  /// \returns the info for an attached index, or nullptr if \p Index is
  /// not currently attached.  Safe to call concurrently with attach and
  /// detach of *other* indices.
  const ThreadInfo *info(uint16_t Index) const;

  /// Publishes / clears the object \p Ctx's thread is blocked acquiring
  /// (waits-for edge for deadlock detection).  Lock-free.
  void setBlockedOn(const ThreadContext &Ctx, const Object *Obj);

  /// \returns the object thread \p Index is currently blocked on, or
  /// nullptr (racy snapshot; pair with re-validation).
  const Object *blockedOn(uint16_t Index) const;

  /// Installs the auditor consulted by detach() and by quarantine
  /// rescans.  Pass nullptr to restore unconditional recycling.
  void setIndexAuditor(IndexAuditor Auditor) TL_EXCLUDES(Mu);

  /// Visits the lock-event ring of every thread index ever attached —
  /// including currently-detached indices, whose rings may still hold
  /// undrained events.  Runs under the registry mutex (attach/detach
  /// block for the duration), so keep \p Fn short; the event collector
  /// uses this as its drain loop.
  void forEachEventRing(const std::function<void(obs::EventRing &)> &Fn)
      TL_EXCLUDES(Mu);

  /// \returns the number of currently attached threads.
  uint32_t liveThreadCount() const {
    return LiveCount.load(std::memory_order_relaxed);
  }

  /// \returns the configured index capacity (largest attachable index).
  uint16_t capacity() const { return Cap; }

  /// \returns live + quarantined indices as a fraction of capacity —
  /// the occupancy signal admission control watches.  Racy snapshot.
  double occupancy() const TL_EXCLUDES(Mu);

  /// \returns the high-water mark of simultaneously attached threads.
  uint32_t peakThreadCount() const {
    return PeakCount.load(std::memory_order_relaxed);
  }

  /// \returns how many detached indices are parked in quarantine because
  /// a live lock word still encodes them.
  uint32_t quarantinedIndexCount() const TL_EXCLUDES(Mu);

  /// \returns how many attach() calls failed for index exhaustion.
  uint64_t exhaustionEvents() const {
    return ExhaustionEvents.load(std::memory_order_relaxed);
  }

  /// \returns the context the calling thread most recently attached with
  /// through this registry (thread-local), or an invalid context.
  static ThreadContext currentContext();

private:
  /// Re-audits quarantined indices, moving released ones to the free
  /// list.
  void rescanQuarantine() TL_REQUIRES(Mu);

  mutable Mutex Mu;
  // Slot I holds the info for index I while attached, nullptr otherwise.
  // Atomic (not guarded): lookups by index are lock-free.
  std::vector<std::atomic<ThreadInfo *>> Slots;
  std::vector<std::unique_ptr<ThreadInfo>> Storage TL_GUARDED_BY(Mu);
  std::vector<uint16_t> FreeIndices TL_GUARDED_BY(Mu);
  std::vector<uint16_t> Quarantined TL_GUARDED_BY(Mu);
  IndexAuditor Auditor TL_GUARDED_BY(Mu);
  uint16_t Cap = MaxThreadIndex;
  uint16_t NextFreshIndex TL_GUARDED_BY(Mu) = 1;
  std::atomic<uint32_t> LiveCount{0};
  std::atomic<uint32_t> PeakCount{0};
  std::atomic<uint64_t> ExhaustionEvents{0};
};

/// RAII attachment: attaches on construction, detaches on destruction, and
/// publishes the context as ThreadRegistry::currentContext() for the
/// duration.
class ScopedThreadAttachment {
  ThreadContext Ctx;
  ThreadContext SavedCurrent;

public:
  explicit ScopedThreadAttachment(ThreadRegistry &Registry,
                                  std::string Name = std::string());
  ~ScopedThreadAttachment();

  ScopedThreadAttachment(const ScopedThreadAttachment &) = delete;
  ScopedThreadAttachment &operator=(const ScopedThreadAttachment &) = delete;

  ThreadContext &context() { return Ctx; }
  const ThreadContext &context() const { return Ctx; }
};

} // namespace thinlocks

#endif // THINLOCKS_THREADS_THREADREGISTRY_H

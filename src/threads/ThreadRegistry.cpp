//===- threads/ThreadRegistry.cpp - 15-bit thread index table -------------===//

#include "threads/ThreadRegistry.h"

#include <cassert>

using namespace thinlocks;

namespace {
thread_local ThreadContext CurrentThreadContext;
} // namespace

ThreadRegistry::ThreadRegistry()
    : Slots(static_cast<size_t>(MaxThreadIndex) + 1) {
  for (auto &Slot : Slots)
    Slot.store(nullptr, std::memory_order_relaxed);
  Storage.resize(Slots.size());
}

ThreadRegistry::~ThreadRegistry() {
  assert(LiveCount.load(std::memory_order_relaxed) == 0 &&
         "threads still attached at registry destruction");
}

ThreadContext ThreadRegistry::attach(std::string Name) {
  std::lock_guard<std::mutex> Guard(Mutex);
  uint16_t Index = 0;
  if (!FreeIndices.empty()) {
    Index = FreeIndices.back();
    FreeIndices.pop_back();
  } else if (NextFreshIndex <= MaxThreadIndex) {
    Index = NextFreshIndex++;
  } else {
    return ThreadContext(); // Exhausted: 32767 live threads.
  }

  if (!Storage[Index])
    Storage[Index] = std::make_unique<ThreadInfo>();
  ThreadInfo *Info = Storage[Index].get();
  Info->Index = Index;
  Info->Name = std::move(Name);
  Info->NativeId = std::this_thread::get_id();
  Slots[Index].store(Info, std::memory_order_release);

  uint32_t Live = LiveCount.fetch_add(1, std::memory_order_relaxed) + 1;
  uint32_t Peak = PeakCount.load(std::memory_order_relaxed);
  while (Live > Peak &&
         !PeakCount.compare_exchange_weak(Peak, Live,
                                          std::memory_order_relaxed)) {
  }

  ThreadContext Ctx;
  Ctx.Registry = this;
  Ctx.Index = Index;
  Ctx.Shifted = static_cast<uint32_t>(Index) << 16;
  return Ctx;
}

void ThreadRegistry::detach(ThreadContext &Ctx) {
  assert(Ctx.isValid() && "detaching an invalid context");
  assert(Ctx.Registry == this && "context belongs to another registry");
  std::lock_guard<std::mutex> Guard(Mutex);
  assert(Slots[Ctx.Index].load(std::memory_order_relaxed) != nullptr &&
         "double detach");
  Slots[Ctx.Index].store(nullptr, std::memory_order_release);
  FreeIndices.push_back(Ctx.Index);
  LiveCount.fetch_sub(1, std::memory_order_relaxed);
  Ctx = ThreadContext();
}

const ThreadInfo *ThreadRegistry::info(uint16_t Index) const {
  if (Index == 0 || Index > MaxThreadIndex)
    return nullptr;
  return Slots[Index].load(std::memory_order_acquire);
}

ThreadContext ThreadRegistry::currentContext() {
  return CurrentThreadContext;
}

ScopedThreadAttachment::ScopedThreadAttachment(ThreadRegistry &Registry,
                                               std::string Name) {
  Ctx = Registry.attach(std::move(Name));
  SavedCurrent = CurrentThreadContext;
  CurrentThreadContext = Ctx;
}

ScopedThreadAttachment::~ScopedThreadAttachment() {
  CurrentThreadContext = SavedCurrent;
  if (Ctx.isValid())
    Ctx.registry().detach(Ctx);
}

//===- threads/ThreadRegistry.cpp - 15-bit thread index table -------------===//

#include "threads/ThreadRegistry.h"

#include "support/FailPoint.h"
#include "support/Fatal.h"
#include "support/ThreadStripe.h"

#include <cassert>

using namespace thinlocks;

namespace {
thread_local ThreadContext CurrentThreadContext;
} // namespace

ThreadRegistry::ThreadRegistry(uint16_t Capacity)
    : Slots(static_cast<size_t>(
                Capacity == 0
                    ? 1
                    : (Capacity > MaxThreadIndex ? MaxThreadIndex
                                                 : Capacity)) +
            1),
      Cap(Capacity == 0 ? 1
                        : (Capacity > MaxThreadIndex ? MaxThreadIndex
                                                     : Capacity)) {
  for (auto &Slot : Slots)
    Slot.store(nullptr, std::memory_order_relaxed);
  Storage.resize(Slots.size());
}

ThreadRegistry::~ThreadRegistry() {
  assert(LiveCount.load(std::memory_order_relaxed) == 0 &&
         "threads still attached at registry destruction");
}

void ThreadRegistry::rescanQuarantine() {
  if (Quarantined.empty())
    return;
  std::vector<uint16_t> StillHeld;
  StillHeld.reserve(Quarantined.size());
  for (uint16_t Index : Quarantined) {
    if (Auditor && Auditor(Index))
      StillHeld.push_back(Index);
    else
      FreeIndices.push_back(Index);
  }
  Quarantined.swap(StillHeld);
}

ThreadContext ThreadRegistry::attach(std::string Name, AttachError *Error) {
  if (Error)
    *Error = AttachError::None;
  if (TL_FAILPOINT(ThreadRegistryExhausted)) {
    ExhaustionEvents.fetch_add(1, std::memory_order_relaxed);
    if (Error)
      *Error = AttachError::Exhausted;
    return ThreadContext();
  }
  LockGuard Guard(Mu);
  uint16_t Index = 0;
  if (!FreeIndices.empty()) {
    Index = FreeIndices.back();
    FreeIndices.pop_back();
  } else if (NextFreshIndex <= Cap) {
    Index = NextFreshIndex++;
  } else {
    // Fresh space is gone: give quarantined indices a second look — the
    // stale lock words pinning them may have been released since.
    rescanQuarantine();
    if (!FreeIndices.empty()) {
      Index = FreeIndices.back();
      FreeIndices.pop_back();
    } else {
      ExhaustionEvents.fetch_add(1, std::memory_order_relaxed);
      if (Error)
        *Error = AttachError::Exhausted;
      return ThreadContext(); // Exhausted: Cap live/quarantined indices.
    }
  }

  if (!Storage[Index])
    Storage[Index] = std::make_unique<ThreadInfo>();
  ThreadInfo *Info = Storage[Index].get();
  Info->Index = Index;
  Info->Name = std::move(Name);
  Info->NativeId = std::this_thread::get_id();
  Info->BlockedOn.store(nullptr, std::memory_order_relaxed);
  // Drop any token a stale unpark left behind after the previous owner
  // of this index detached; a new thread must not wake early for it.
  Info->Park.reset();
  Slots[Index].store(Info, std::memory_order_release);

  uint32_t Live = LiveCount.fetch_add(1, std::memory_order_relaxed) + 1;
  uint32_t Peak = PeakCount.load(std::memory_order_relaxed);
  while (Live > Peak &&
         !PeakCount.compare_exchange_weak(Peak, Live,
                                          std::memory_order_relaxed)) {
  }

  // Publish the striped-counter identity for this thread.  attach()
  // runs on the thread being attached (NativeId above is the caller's),
  // and successive owners of a recycled index are ordered by Mu, so
  // an exclusive stripe really has one live writer.
  setCurrentThreadStripe(Index);

  ThreadContext Ctx;
  Ctx.Registry = this;
  Ctx.Pk = &Info->Park;
  Ctx.Ring = &Info->Events;
  Ctx.Index = Index;
  Ctx.Shifted = static_cast<uint32_t>(Index) << 16;
  return Ctx;
}

void ThreadRegistry::forEachEventRing(
    const std::function<void(obs::EventRing &)> &Fn) {
  LockGuard Guard(Mu);
  // Storage persists across detach (like the Parkers), so this covers
  // events recorded by threads that are already gone.
  for (uint16_t Index = 1; Index < NextFreshIndex; ++Index)
    if (Storage[Index])
      Fn(Storage[Index]->Events);
}

void ThreadRegistry::detach(ThreadContext &Ctx) {
  // These are API-contract violations that corrupt the index space if
  // allowed through, so they stay fatal when asserts are compiled out.
  if (!Ctx.isValid())
    fatalError("ThreadRegistry::detach: invalid (already detached?) "
               "context");
  if (Ctx.Registry != this)
    fatalError("ThreadRegistry::detach: context for thread index %u "
               "belongs to another registry",
               Ctx.Index);
  LockGuard Guard(Mu);
  ThreadInfo *Info = Slots[Ctx.Index].load(std::memory_order_relaxed);
  if (Info == nullptr)
    fatalError("ThreadRegistry::detach: double detach of thread index %u",
               Ctx.Index);
  bool SelfDetach = Info->NativeId == std::this_thread::get_id();
  Info->BlockedOn.store(nullptr, std::memory_order_relaxed);
  Slots[Ctx.Index].store(nullptr, std::memory_order_release);
  if (Auditor && Auditor(Ctx.Index)) {
    // The index is still encoded in some live lock word (the detaching
    // thread abandoned a held lock).  Recycling it now would let the
    // next attach() impersonate that owner, so park it instead.
    Quarantined.push_back(Ctx.Index);
  } else {
    FreeIndices.push_back(Ctx.Index);
  }
  LiveCount.fetch_sub(1, std::memory_order_relaxed);
  Ctx = ThreadContext();

  if (SelfDetach) {
    // Drop the detached index's stripe before the index can be recycled.
    // ScopedThreadAttachment restores CurrentThreadContext *before*
    // detaching, so for nested attachments this re-publishes the outer
    // context's stripe; otherwise it reverts to the hashed fallback.
    ThreadContext Outer = CurrentThreadContext;
    setCurrentThreadStripe(Outer.isValid() ? Outer.Index : 0);
  }
}

const ThreadInfo *ThreadRegistry::info(uint16_t Index) const {
  if (Index == 0 || Index > Cap)
    return nullptr;
  return Slots[Index].load(std::memory_order_acquire);
}

double ThreadRegistry::occupancy() const {
  uint32_t Live = LiveCount.load(std::memory_order_relaxed);
  uint32_t Parked;
  {
    LockGuard Guard(Mu);
    Parked = static_cast<uint32_t>(Quarantined.size());
  }
  return static_cast<double>(Live + Parked) / static_cast<double>(Cap);
}

void ThreadRegistry::setBlockedOn(const ThreadContext &Ctx,
                                  const Object *Obj) {
  assert(Ctx.isValid() && Ctx.Registry == this &&
         "publishing a waits-for edge for a foreign context");
  ThreadInfo *Info = Slots[Ctx.Index].load(std::memory_order_acquire);
  if (Info)
    Info->BlockedOn.store(Obj, std::memory_order_release);
}

const Object *ThreadRegistry::blockedOn(uint16_t Index) const {
  const ThreadInfo *Info = info(Index);
  return Info ? Info->BlockedOn.load(std::memory_order_acquire) : nullptr;
}

void ThreadRegistry::setIndexAuditor(IndexAuditor NewAuditor) {
  LockGuard Guard(Mu);
  Auditor = std::move(NewAuditor);
}

uint32_t ThreadRegistry::quarantinedIndexCount() const {
  LockGuard Guard(Mu);
  return static_cast<uint32_t>(Quarantined.size());
}

ThreadContext ThreadRegistry::currentContext() {
  return CurrentThreadContext;
}

ScopedThreadAttachment::ScopedThreadAttachment(ThreadRegistry &Registry,
                                               std::string Name) {
  Ctx = Registry.attach(std::move(Name));
  SavedCurrent = CurrentThreadContext;
  CurrentThreadContext = Ctx;
}

ScopedThreadAttachment::~ScopedThreadAttachment() {
  CurrentThreadContext = SavedCurrent;
  if (Ctx.isValid())
    Ctx.registry().detach(Ctx);
}

//===- support/StatsCounter.h - Relaxed atomic counters --------*- C++ -*-===//
///
/// \file
/// Monotonic event counters safe to bump from any thread.  Counters use
/// relaxed atomics: they never synchronize anything, they only count, so
/// they must not perturb the memory-ordering behaviour under measurement.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_STATSCOUNTER_H
#define THINLOCKS_SUPPORT_STATSCOUNTER_H

#include <atomic>
#include <cstdint>

namespace thinlocks {

/// A monotonically increasing event counter.
class StatsCounter {
  std::atomic<uint64_t> Count{0};

public:
  StatsCounter() = default;
  StatsCounter(const StatsCounter &Other)
      : Count(Other.Count.load(std::memory_order_relaxed)) {}
  StatsCounter &operator=(const StatsCounter &Other) {
    Count.store(Other.Count.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  void increment(uint64_t Delta = 1) {
    Count.fetch_add(Delta, std::memory_order_relaxed);
  }

  uint64_t value() const { return Count.load(std::memory_order_relaxed); }

  void reset() { Count.store(0, std::memory_order_relaxed); }
};

} // namespace thinlocks

#endif // THINLOCKS_SUPPORT_STATSCOUNTER_H

//===- support/StatsCounter.h - Striped relaxed event counters -*- C++ -*-===//
///
/// \file
/// Monotonic event counters safe to bump from any thread.  Counters are
/// *striped*: each increment lands in a cache-line-padded slot selected
/// by the caller's ThreadStripe (exclusive per-thread-index slots for
/// attached threads, a small hashed shared region otherwise — see
/// support/ThreadStripe.h), and reads sum the stripes.  Two consequences:
///
///  - concurrent increments from different threads touch different cache
///    lines, so instrumented contention sweeps measure the protocol, not
///    counter-line ping-pong;
///  - an exclusive stripe has a single live writer, so its update is a
///    plain relaxed load/add/store (no locked RMW).  On x86 a locked add
///    is a full fence that serializes the surrounding lock fast path; a
///    plain store overlaps with it.  Shared stripes use fetch-add and
///    remain exact under any collision.
///
/// Counters never synchronize anything — all accesses are relaxed — so
/// they must not perturb the memory-ordering behaviour under measurement.
/// value() is exact once writers are quiescent and a monotonic
/// approximation mid-run; reset() must only race with readers, not
/// writers (an in-flight exclusive-stripe add can overwrite the zeroing,
/// exactly as a racing relaxed store always could).
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_STATSCOUNTER_H
#define THINLOCKS_SUPPORT_STATSCOUNTER_H

#include "support/Compiler.h"
#include "support/ThreadStripe.h"

#include <array>
#include <atomic>
#include <cstdint>

namespace thinlocks {

/// A monotonically increasing, striped event counter.
class StatsCounter {
public:
  static constexpr uint32_t NumStripes = ThreadStripe::NumSlots;

private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> Count{0};
  };
  std::array<Stripe, NumStripes> Stripes;

public:
  StatsCounter() = default;
  StatsCounter(const StatsCounter &Other) {
    for (uint32_t I = 0; I < NumStripes; ++I)
      Stripes[I].Count.store(
          Other.Stripes[I].Count.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
  }
  StatsCounter &operator=(const StatsCounter &Other) {
    for (uint32_t I = 0; I < NumStripes; ++I)
      Stripes[I].Count.store(
          Other.Stripes[I].Count.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    return *this;
  }

  TL_ALWAYS_INLINE void increment(uint64_t Delta = 1) {
    // One TLS load and a sign test keep the common (attached, exclusive)
    // path to a plain indexed load/add/store.
    uint32_t Packed = detail::CurrentThreadStripe.Packed;
    if (TL_LIKELY(static_cast<int32_t>(Packed) >= 0)) {
      std::atomic<uint64_t> &Count = Stripes[Packed].Count;
      Count.store(Count.load(std::memory_order_relaxed) + Delta,
                  std::memory_order_relaxed);
      return;
    }
    incrementShared(Packed, Delta);
  }

  uint64_t value() const {
    uint64_t Sum = 0;
    for (const Stripe &S : Stripes)
      Sum += S.Count.load(std::memory_order_relaxed);
    return Sum;
  }

  void reset() {
    for (Stripe &S : Stripes)
      S.Count.store(0, std::memory_order_relaxed);
  }

private:
  /// Cold half of increment(): shared (hashed) stripes, and first-use
  /// resolution for threads that never attached.
  void incrementShared(uint32_t Packed, uint64_t Delta) {
    if (TL_UNLIKELY(Packed == ThreadStripe::Uninitialized))
      Packed = (detail::CurrentThreadStripe = detail::fallbackThreadStripe())
                   .Packed;
    Stripes[Packed & ~ThreadStripe::SharedBit].Count.fetch_add(
        Delta, std::memory_order_relaxed);
  }
};

} // namespace thinlocks

#endif // THINLOCKS_SUPPORT_STATSCOUNTER_H

//===- support/Histogram.h - Fixed-bucket + latency histograms -*- C++ -*-===//
///
/// \file
/// Two histogram shapes:
///
///  - Histogram<N>: a fixed number of exact buckets plus an overflow
///    bucket.  The lock-nesting characterization (paper Figure 3) buckets
///    acquisitions as First / Second / Third / Fourth-or-deeper, which is
///    exactly a 3-bucket histogram with overflow.
///
///  - LatencyHistogram: a log-linear (HDR-style) value histogram for the
///    SLO quantiles the sustained-load harness reports (p50/p99/p999
///    acquire latency, time-to-wake).  Log-linear bucketing keeps the
///    relative quantile error bounded (~6% with 16 sub-buckets per power
///    of two) across nine decades of nanoseconds in a few KB of counters,
///    so each worker thread records into its own private histogram and
///    the harness merge()s them at snapshot time — no shared cache line
///    is written on the measurement path.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_HISTOGRAM_H
#define THINLOCKS_SUPPORT_HISTOGRAM_H

#include "support/MathExtras.h"

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace thinlocks {

/// Counts values 0..NumBuckets-1 exactly; larger values land in the
/// overflow bucket.
template <size_t NumBuckets> class Histogram {
  std::array<uint64_t, NumBuckets + 1> Counts{};

public:
  static constexpr size_t OverflowBucket = NumBuckets;

  void record(uint64_t Value) {
    if (Value < NumBuckets)
      ++Counts[Value];
    else
      ++Counts[OverflowBucket];
  }

  /// \returns the count in bucket \p Index (use OverflowBucket for the
  /// overflow bin).
  uint64_t count(size_t Index) const {
    assert(Index <= NumBuckets && "bucket out of range");
    return Counts[Index];
  }

  uint64_t total() const {
    uint64_t Sum = 0;
    for (uint64_t C : Counts)
      Sum += C;
    return Sum;
  }

  /// \returns bucket \p Index as a fraction of all recorded values, or 0
  /// if the histogram is empty.
  double fraction(size_t Index) const {
    uint64_t Sum = total();
    if (Sum == 0)
      return 0.0;
    return static_cast<double>(count(Index)) / static_cast<double>(Sum);
  }

  void merge(const Histogram &Other) {
    for (size_t I = 0; I <= NumBuckets; ++I)
      Counts[I] += Other.Counts[I];
  }

  void reset() { Counts.fill(0); }
};

/// Log-linear value histogram with quantile queries (see file header).
/// Values are unsigned (nanoseconds in every current use).  Values up to
/// MaxTrackable land in a bucket whose width is at most 1/16th of the
/// value; larger values saturate into a dedicated final bucket.  The
/// exact min and max ever recorded are kept separately, and quantiles
/// are clamped to [min, max], so the edge cases are crisp:
///
///  - empty histogram: quantile() is 0, min()/max()/mean() are 0;
///  - single sample: every quantile returns exactly that sample;
///  - saturating bucket: a quantile landing in it reports the true
///    recorded max, never the (meaningless) bucket lower bound.
///
/// Not internally synchronized: record into per-thread instances and
/// combine with merge().
class LatencyHistogram {
public:
  /// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per power of
  /// two, i.e. at most 6.25% relative bucket width.
  static constexpr unsigned SubBucketBits = 4;
  static constexpr unsigned SubBuckets = 1u << SubBucketBits;
  /// Largest exactly-bucketed value: 2^38 ns is ~4.6 minutes, far past
  /// any latency an SLO report distinguishes.  Everything above
  /// saturates.
  static constexpr unsigned MaxTrackableLog2 = 38;
  static constexpr uint64_t MaxTrackable =
      (1ull << MaxTrackableLog2) - 1;
  /// Buckets: values 0..SubBuckets-1 exact, then one 16-sub-bucket block
  /// per power of two up to MaxTrackableLog2, then the saturation
  /// bucket.
  static constexpr size_t NumBuckets =
      (MaxTrackableLog2 - SubBucketBits + 1) * SubBuckets;
  static constexpr size_t SaturationBucket = NumBuckets;

  void record(uint64_t Value) {
    ++Counts[bucketOf(Value)];
    ++Total;
    Sum = saturatingAdd(Sum, Value);
    if (Total == 1) {
      Minimum = Value;
      Maximum = Value;
    } else {
      if (Value < Minimum)
        Minimum = Value;
      if (Value > Maximum)
        Maximum = Value;
    }
  }

  uint64_t count() const { return Total; }
  bool empty() const { return Total == 0; }
  uint64_t min() const { return Total == 0 ? 0 : Minimum; }
  uint64_t max() const { return Total == 0 ? 0 : Maximum; }
  uint64_t mean() const { return Total == 0 ? 0 : Sum / Total; }
  /// \returns how many recorded values exceeded MaxTrackable.
  uint64_t saturatedCount() const { return Counts[SaturationBucket]; }

  /// \returns an estimate of the \p Q quantile (0 <= Q <= 1) of the
  /// recorded values: the highest value equivalent to the bucket holding
  /// the rank-⌈Q·count⌉ sample, clamped to [min, max].  0 when empty.
  uint64_t quantile(double Q) const {
    if (Total == 0)
      return 0;
    if (Q <= 0.0)
      return Minimum;
    if (Q >= 1.0)
      return Maximum;
    // ceil(Q * Total) without floating-point edge surprises at Q
    // slightly below 1: clamp into [1, Total].
    uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Total));
    if (static_cast<double>(Rank) < Q * static_cast<double>(Total))
      ++Rank;
    if (Rank == 0)
      Rank = 1;
    if (Rank > Total)
      Rank = Total;
    uint64_t Seen = 0;
    for (size_t I = 0; I <= SaturationBucket; ++I) {
      Seen += Counts[I];
      if (Seen >= Rank) {
        if (I == SaturationBucket)
          return Maximum; // Bucket bounds are meaningless past the cap.
        uint64_t High = bucketHigh(I);
        if (High > Maximum)
          High = Maximum;
        if (High < Minimum)
          High = Minimum;
        return High;
      }
    }
    return Maximum; // Unreachable: Seen reaches Total >= Rank.
  }

  /// Accumulates \p Other into this histogram (per-thread SLO histograms
  /// combine at snapshot time).
  void merge(const LatencyHistogram &Other) {
    if (Other.Total == 0)
      return;
    for (size_t I = 0; I <= SaturationBucket; ++I)
      Counts[I] += Other.Counts[I];
    Sum = saturatingAdd(Sum, Other.Sum);
    if (Total == 0 || Other.Minimum < Minimum)
      Minimum = Other.Minimum;
    if (Total == 0 || Other.Maximum > Maximum)
      Maximum = Other.Maximum;
    Total += Other.Total;
  }

  void reset() { *this = LatencyHistogram(); }

  /// \returns the bucket index for \p Value (exposed for tests).
  static constexpr size_t bucketOf(uint64_t Value) {
    if (Value < SubBuckets)
      return static_cast<size_t>(Value);
    if (Value > MaxTrackable)
      return SaturationBucket;
    unsigned Exp = log2Floor(Value);
    unsigned Block = Exp - SubBucketBits + 1;
    uint64_t Sub = (Value >> (Exp - SubBucketBits)) - SubBuckets;
    return static_cast<size_t>(Block) * SubBuckets +
           static_cast<size_t>(Sub);
  }

  /// \returns the smallest value mapping to bucket \p Index.
  static constexpr uint64_t bucketLow(size_t Index) {
    assert(Index < NumBuckets && "no bounds for the saturation bucket");
    if (Index < SubBuckets)
      return Index;
    uint64_t Block = Index >> SubBucketBits;
    uint64_t Sub = Index & (SubBuckets - 1);
    return (SubBuckets + Sub) << (Block - 1);
  }

  /// \returns the largest value mapping to bucket \p Index.
  static constexpr uint64_t bucketHigh(size_t Index) {
    assert(Index < NumBuckets && "no bounds for the saturation bucket");
    if (Index < SubBuckets)
      return Index;
    uint64_t Block = Index >> SubBucketBits;
    return bucketLow(Index) + (1ull << (Block - 1)) - 1;
  }

private:
  std::array<uint64_t, NumBuckets + 1> Counts{};
  uint64_t Total = 0;
  uint64_t Sum = 0;
  uint64_t Minimum = 0;
  uint64_t Maximum = 0;
};

} // namespace thinlocks

#endif // THINLOCKS_SUPPORT_HISTOGRAM_H

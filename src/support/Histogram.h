//===- support/Histogram.h - Fixed-bucket histogram ------------*- C++ -*-===//
///
/// \file
/// Small histogram with a fixed number of buckets plus an overflow bucket.
/// The lock-nesting characterization (paper Figure 3) buckets acquisitions
/// as First / Second / Third / Fourth-or-deeper, which is exactly a
/// 3-bucket histogram with overflow.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_HISTOGRAM_H
#define THINLOCKS_SUPPORT_HISTOGRAM_H

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace thinlocks {

/// Counts values 0..NumBuckets-1 exactly; larger values land in the
/// overflow bucket.
template <size_t NumBuckets> class Histogram {
  std::array<uint64_t, NumBuckets + 1> Counts{};

public:
  static constexpr size_t OverflowBucket = NumBuckets;

  void record(uint64_t Value) {
    if (Value < NumBuckets)
      ++Counts[Value];
    else
      ++Counts[OverflowBucket];
  }

  /// \returns the count in bucket \p Index (use OverflowBucket for the
  /// overflow bin).
  uint64_t count(size_t Index) const {
    assert(Index <= NumBuckets && "bucket out of range");
    return Counts[Index];
  }

  uint64_t total() const {
    uint64_t Sum = 0;
    for (uint64_t C : Counts)
      Sum += C;
    return Sum;
  }

  /// \returns bucket \p Index as a fraction of all recorded values, or 0
  /// if the histogram is empty.
  double fraction(size_t Index) const {
    uint64_t Sum = total();
    if (Sum == 0)
      return 0.0;
    return static_cast<double>(count(Index)) / static_cast<double>(Sum);
  }

  void merge(const Histogram &Other) {
    for (size_t I = 0; I <= NumBuckets; ++I)
      Counts[I] += Other.Counts[I];
  }

  void reset() { Counts.fill(0); }
};

} // namespace thinlocks

#endif // THINLOCKS_SUPPORT_HISTOGRAM_H

//===- support/FailPoint.cpp - Compile-time-gated fault injection ---------===//

#include "support/FailPoint.h"

#include "support/Fatal.h"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace thinlocks;
using namespace thinlocks::failpoint;

namespace {

/// Control block for one failpoint.  Mode/Arg are written under no lock:
/// arming is test-harness activity and each field is individually atomic;
/// a site racing with arm() sees either the old or the new configuration,
/// both of which are valid.
struct State {
  std::atomic<uint8_t> ModeValue{static_cast<uint8_t>(Mode::Off)};
  std::atomic<uint64_t> Arg{0};
  std::atomic<uint64_t> Evals{0};
  std::atomic<uint64_t> Hits{0};
};

std::array<State, NumIds> States;

constexpr const char *Names[NumIds] = {
    "thinlock.initial-cas",      "spinwait.preempt",
    "thinlock.inflate-race",     "monitortable.exhausted",
    "threadregistry.exhausted",  "park.spurious",
    "parkinglot.timeout-race",
};

State &stateOf(Id I) { return States[static_cast<unsigned>(I)]; }

bool findByName(const std::string &Name, Id &Out) {
  for (unsigned I = 0; I < NumIds; ++I)
    if (Name == Names[I]) {
      Out = static_cast<Id>(I);
      return true;
    }
  return false;
}

/// Applies one "name=mode[:arg]" clause.
bool armOne(const std::string &Clause, std::string *Error) {
  size_t Eq = Clause.find('=');
  if (Eq == std::string::npos) {
    if (Error)
      *Error = "missing '=' in \"" + Clause + "\"";
    return false;
  }
  Id Point;
  if (!findByName(Clause.substr(0, Eq), Point)) {
    if (Error)
      *Error = "unknown failpoint \"" + Clause.substr(0, Eq) + "\"";
    return false;
  }
  std::string ModeSpec = Clause.substr(Eq + 1);
  size_t Colon = ModeSpec.find(':');
  std::string ModeName = ModeSpec.substr(0, Colon);
  uint64_t ModeArg = 0;
  if (Colon != std::string::npos) {
    char *End = nullptr;
    ModeArg = std::strtoull(ModeSpec.c_str() + Colon + 1, &End, 10);
    if (End == nullptr || *End != '\0') {
      if (Error)
        *Error = "bad argument in \"" + Clause + "\"";
      return false;
    }
  }
  if (ModeName == "always") {
    arm(Point, Mode::Always);
  } else if (ModeName == "times") {
    arm(Point, Mode::Times, ModeArg);
  } else if (ModeName == "oneIn") {
    arm(Point, Mode::OneIn, ModeArg);
  } else if (ModeName == "off") {
    disarm(Point);
  } else {
    if (Error)
      *Error = "unknown mode \"" + ModeName + "\"";
    return false;
  }
  return true;
}

/// Parses THINLOCKS_FAILPOINTS exactly once, before main() runs, so a
/// ctest invocation can arm sites without the program's cooperation.
struct EnvironmentArmer {
  EnvironmentArmer() { armFromEnvironment(); }
} ArmFromEnvAtStartup;

} // namespace

std::atomic<uint32_t> thinlocks::failpoint::ArmedMask{0};

const char *thinlocks::failpoint::name(Id I) {
  return Names[static_cast<unsigned>(I)];
}

void thinlocks::failpoint::arm(Id I, Mode M, uint64_t Arg) {
  if (M == Mode::Off || ((M == Mode::Times || M == Mode::OneIn) && Arg == 0)) {
    disarm(I);
    return;
  }
  State &S = stateOf(I);
  S.Arg.store(Arg, std::memory_order_relaxed);
  S.Evals.store(0, std::memory_order_relaxed);
  S.Hits.store(0, std::memory_order_relaxed);
  S.ModeValue.store(static_cast<uint8_t>(M), std::memory_order_relaxed);
  ArmedMask.fetch_or(1u << static_cast<unsigned>(I),
                     std::memory_order_release);
}

void thinlocks::failpoint::disarm(Id I) {
  ArmedMask.fetch_and(~(1u << static_cast<unsigned>(I)),
                      std::memory_order_release);
  stateOf(I).ModeValue.store(static_cast<uint8_t>(Mode::Off),
                             std::memory_order_relaxed);
}

void thinlocks::failpoint::disarmAll() {
  for (unsigned I = 0; I < NumIds; ++I) {
    disarm(static_cast<Id>(I));
    State &S = States[I];
    S.Evals.store(0, std::memory_order_relaxed);
    S.Hits.store(0, std::memory_order_relaxed);
  }
}

uint64_t thinlocks::failpoint::hitCount(Id I) {
  return stateOf(I).Hits.load(std::memory_order_relaxed);
}

uint64_t thinlocks::failpoint::evalCount(Id I) {
  return stateOf(I).Evals.load(std::memory_order_relaxed);
}

bool thinlocks::failpoint::evaluate(Id I) {
  State &S = stateOf(I);
  Mode M = static_cast<Mode>(S.ModeValue.load(std::memory_order_relaxed));
  if (M == Mode::Off)
    return false;
  uint64_t Eval = S.Evals.fetch_add(1, std::memory_order_relaxed) + 1;
  bool Fire = false;
  switch (M) {
  case Mode::Off:
    break;
  case Mode::Always:
    Fire = true;
    break;
  case Mode::Times:
    Fire = Eval <= S.Arg.load(std::memory_order_relaxed);
    break;
  case Mode::OneIn:
    Fire = Eval % S.Arg.load(std::memory_order_relaxed) == 0;
    break;
  }
  if (Fire)
    S.Hits.fetch_add(1, std::memory_order_relaxed);
  return Fire;
}

bool thinlocks::failpoint::armFromSpec(const std::string &Spec,
                                       std::string *Error) {
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    size_t End = Comma == std::string::npos ? Spec.size() : Comma;
    if (End > Pos && !armOne(Spec.substr(Pos, End - Pos), Error))
      return false;
    Pos = End + 1;
  }
  return true;
}

size_t thinlocks::failpoint::armFromSpecCollect(
    const std::string &Spec, std::vector<std::string> *Errors) {
  size_t Applied = 0;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    size_t End = Comma == std::string::npos ? Spec.size() : Comma;
    if (End > Pos) {
      std::string Error;
      if (armOne(Spec.substr(Pos, End - Pos), &Error))
        ++Applied;
      else if (Errors)
        Errors->push_back(std::move(Error));
    }
    Pos = End + 1;
  }
  return Applied;
}

void thinlocks::failpoint::armFromEnvironment() {
  const char *Spec = std::getenv("THINLOCKS_FAILPOINTS");
  if (!Spec || *Spec == '\0')
    return;
  std::vector<std::string> Errors;
  armFromSpecCollect(Spec, &Errors);
  if (Errors.empty())
    return;
  // A malformed clause means some intended injection is NOT armed; an
  // "armed" test rerun would pass without testing anything.  Report every
  // problem (and the vocabulary) once, then die.
  std::fprintf(stderr, "thinlocks: malformed THINLOCKS_FAILPOINTS=\"%s\"\n",
               Spec);
  for (const std::string &Error : Errors)
    std::fprintf(stderr, "thinlocks:   %s\n", Error.c_str());
  std::fprintf(stderr,
               "thinlocks: valid failpoints (modes: always, times:N, "
               "oneIn:N, off):\n");
  for (unsigned I = 0; I < NumIds; ++I)
    std::fprintf(stderr, "thinlocks:   %s\n", Names[I]);
  fatalError("refusing to run with a malformed THINLOCKS_FAILPOINTS "
             "spec (%zu bad clause(s))",
             Errors.size());
}

//===- support/Compiler.h - Portable compiler annotations ------*- C++ -*-===//
///
/// \file
/// Small set of compiler-portability macros used throughout the library.
/// Fast-path locking code is extremely sensitive to inlining decisions, so
/// the thin-lock fast paths are annotated explicitly (the paper's §3.5
/// "Inline" vs "FnCall" experiment is built directly on these attributes).
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_COMPILER_H
#define THINLOCKS_SUPPORT_COMPILER_H

#if defined(__GNUC__) || defined(__clang__)
#define TL_ALWAYS_INLINE inline __attribute__((always_inline))
#define TL_NOINLINE __attribute__((noinline))
#define TL_LIKELY(X) __builtin_expect(!!(X), 1)
#define TL_UNLIKELY(X) __builtin_expect(!!(X), 0)
#else
#define TL_ALWAYS_INLINE inline
#define TL_NOINLINE
#define TL_LIKELY(X) (X)
#define TL_UNLIKELY(X) (X)
#endif

namespace thinlocks {

/// Marks a point in the program that is known to be unreachable.  In debug
/// builds this aborts loudly; in release builds it is an optimizer hint.
[[noreturn]] inline void tlUnreachable(const char *Msg) {
#ifndef NDEBUG
  __builtin_trap();
  (void)Msg;
#else
  (void)Msg;
  __builtin_unreachable();
#endif
}

} // namespace thinlocks

#endif // THINLOCKS_SUPPORT_COMPILER_H

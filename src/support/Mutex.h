//===- support/Mutex.h - Capability-annotated mutex wrappers ---*- C++ -*-===//
///
/// \file
/// Thin wrappers over std::mutex / std::lock_guard / std::unique_lock
/// that carry the Clang Thread Safety Analysis capability annotations
/// (support/ThreadSafety.h).  All internally-locked subsystems use these
/// instead of the std types so that -Wthread-safety can check their
/// locking discipline; the wrappers are zero-cost (every method is a
/// single forwarded call, and the annotations vanish at runtime).
///
/// Usage mirrors the std types:
///
///   class Table {
///     mutable Mutex Mu;
///     int Count TL_GUARDED_BY(Mu);
///     void refill() TL_REQUIRES(Mu);      // caller holds Mu
///   public:
///     void add() TL_EXCLUDES(Mu) {        // takes Mu itself
///       LockGuard G(Mu);
///       ++Count;
///     }
///   };
///
/// UniqueLock supports the unlock-park-relock pattern the blocking slow
/// paths use (FatLock::acquireSlow, ParkingLot::parkImpl): TSA tracks the
/// lock state through manual unlock()/lock() calls on the scoped object.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_MUTEX_H
#define THINLOCKS_SUPPORT_MUTEX_H

#include "support/ThreadSafety.h"

#include <cassert>
#include <mutex>

namespace thinlocks {

/// A std::mutex declared as a TSA capability.
class TL_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() TL_ACQUIRE() { Mu.lock(); }
  void unlock() TL_RELEASE() { Mu.unlock(); }
  bool try_lock() TL_TRY_ACQUIRE(true) { return Mu.try_lock(); }

private:
  std::mutex Mu;
};

/// std::lock_guard shape: acquires in the constructor, releases in the
/// destructor, no early unlock.
class TL_SCOPED_CAPABILITY LockGuard {
public:
  explicit LockGuard(Mutex &M) TL_ACQUIRE(M) : Mu(M) { Mu.lock(); }
  ~LockGuard() TL_RELEASE() { Mu.unlock(); }

  LockGuard(const LockGuard &) = delete;
  LockGuard &operator=(const LockGuard &) = delete;

private:
  Mutex &Mu;
};

/// std::unique_lock shape: acquires in the constructor, supports manual
/// unlock()/lock() cycles (the park-outside-the-mutex pattern), and
/// releases in the destructor if still held.
class TL_SCOPED_CAPABILITY UniqueLock {
public:
  explicit UniqueLock(Mutex &M) TL_ACQUIRE(M) : Mu(M), Held(true) {
    Mu.lock();
  }
  ~UniqueLock() TL_RELEASE() {
    if (Held)
      Mu.unlock();
  }

  UniqueLock(const UniqueLock &) = delete;
  UniqueLock &operator=(const UniqueLock &) = delete;

  /// Releases the mutex before a blocking call (park) so wakers are not
  /// convoyed behind it.
  void unlock() TL_RELEASE() {
    assert(Held && "unlock of a lock not held");
    Held = false;
    Mu.unlock();
  }

  /// Re-acquires after a blocking call.
  void lock() TL_ACQUIRE() {
    assert(!Held && "recursive lock of a held UniqueLock");
    Mu.lock();
    Held = true;
  }

  bool owns_lock() const { return Held; }

private:
  Mutex &Mu;
  bool Held;
};

} // namespace thinlocks

#endif // THINLOCKS_SUPPORT_MUTEX_H

//===- support/Fatal.cpp - Always-on fatal error reporting ----------------===//

#include "support/Fatal.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace thinlocks;

void thinlocks::fatalError(const char *Fmt, ...) {
  // A fixed buffer keeps the failure path allocation-free; diagnostics
  // longer than this are truncated, not dropped.
  char Message[1024];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Message, sizeof(Message), Fmt, Args);
  va_end(Args);
  std::fprintf(stderr, "thinlocks fatal error: %s\n", Message);
  std::fflush(stderr);
  std::abort();
}

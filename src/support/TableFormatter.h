//===- support/TableFormatter.h - Aligned text tables ----------*- C++ -*-===//
///
/// \file
/// Produces column-aligned plain-text tables.  The benchmark harnesses use
/// this to print rows in the same layout as the paper's Tables 1-2 and the
/// series behind Figures 3-6.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_TABLEFORMATTER_H
#define THINLOCKS_SUPPORT_TABLEFORMATTER_H

#include <cstdint>
#include <string>
#include <vector>

namespace thinlocks {

/// Accumulates rows of string cells and renders them with every column
/// padded to its widest cell.
class TableFormatter {
public:
  enum class Align { Left, Right };

  /// Creates a table with the given column headers.
  explicit TableFormatter(std::vector<std::string> Headers);

  /// Sets the alignment of column \p Index (default: Right, except column
  /// 0 which defaults to Left).
  void setAlignment(size_t Index, Align A);

  /// Appends one row; the row must have exactly as many cells as there are
  /// headers.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator row.
  void addSeparator();

  /// Renders the whole table, including the header and a separator under
  /// it, as a single string ending in a newline.
  std::string render() const;

  /// Formats a double with \p Decimals digits after the point.
  static std::string formatDouble(double Value, int Decimals = 2);

  /// Formats an integer with thousands separators ("12,975,639").
  static std::string formatWithCommas(uint64_t Value);

private:
  std::vector<std::string> Headers;
  std::vector<Align> Alignments;
  // A row with no cells encodes a separator.
  std::vector<std::vector<std::string>> Rows;
};

} // namespace thinlocks

#endif // THINLOCKS_SUPPORT_TABLEFORMATTER_H

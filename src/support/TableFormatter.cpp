//===- support/TableFormatter.cpp - Aligned text tables -------------------===//

#include "support/TableFormatter.h"

#include <cassert>
#include <cstdio>

using namespace thinlocks;

TableFormatter::TableFormatter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {
  Alignments.assign(this->Headers.size(), Align::Right);
  if (!Alignments.empty())
    Alignments[0] = Align::Left;
}

void TableFormatter::setAlignment(size_t Index, Align A) {
  assert(Index < Alignments.size() && "column out of range");
  Alignments[Index] = A;
}

void TableFormatter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row width mismatch");
  Rows.push_back(std::move(Cells));
}

void TableFormatter::addSeparator() { Rows.emplace_back(); }

std::string TableFormatter::render() const {
  std::vector<size_t> Widths(Headers.size(), 0);
  for (size_t I = 0; I < Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto renderCell = [&](const std::string &Cell, size_t Col) {
    std::string Out;
    size_t Pad = Widths[Col] - Cell.size();
    if (Alignments[Col] == Align::Right)
      Out.append(Pad, ' ');
    Out += Cell;
    if (Alignments[Col] == Align::Left)
      Out.append(Pad, ' ');
    return Out;
  };

  auto renderSeparator = [&]() {
    std::string Line;
    for (size_t I = 0; I < Widths.size(); ++I) {
      if (I != 0)
        Line += "-+-";
      Line.append(Widths[I], '-');
    }
    Line += '\n';
    return Line;
  };

  std::string Out;
  for (size_t I = 0; I < Headers.size(); ++I) {
    if (I != 0)
      Out += " | ";
    Out += renderCell(Headers[I], I);
  }
  Out += '\n';
  Out += renderSeparator();
  for (const auto &Row : Rows) {
    if (Row.empty()) {
      Out += renderSeparator();
      continue;
    }
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I != 0)
        Out += " | ";
      Out += renderCell(Row[I], I);
    }
    Out += '\n';
  }
  return Out;
}

std::string TableFormatter::formatDouble(double Value, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

std::string TableFormatter::formatWithCommas(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Out;
  size_t Count = 0;
  for (size_t I = Digits.size(); I-- > 0;) {
    Out.insert(Out.begin(), Digits[I]);
    if (++Count % 3 == 0 && I != 0)
      Out.insert(Out.begin(), ',');
  }
  return Out;
}

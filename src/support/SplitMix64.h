//===- support/SplitMix64.h - Deterministic PRNG ---------------*- C++ -*-===//
///
/// \file
/// SplitMix64 pseudo-random generator (Steele, Lea & Flood, OOPSLA 2014
/// update function).  Used by the synthetic workloads so that every
/// benchmark and test run is exactly reproducible from its seed.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_SPLITMIX64_H
#define THINLOCKS_SUPPORT_SPLITMIX64_H

#include <cassert>
#include <cstdint>

namespace thinlocks {

/// A tiny, fast, deterministic 64-bit PRNG.
class SplitMix64 {
  uint64_t State;

public:
  explicit SplitMix64(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// \returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// \returns a uniform value in [0, Bound).  \p Bound must be nonzero.
  uint64_t nextBounded(uint64_t Bound) {
    assert(Bound != 0 && "bound must be nonzero");
    // Multiply-shift reduction (Lemire); bias is negligible for our use.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// \returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// \returns true with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }
};

} // namespace thinlocks

#endif // THINLOCKS_SUPPORT_SPLITMIX64_H

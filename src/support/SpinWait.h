//===- support/SpinWait.h - Bounded exponential backoff --------*- C++ -*-===//
///
/// \file
/// Spin-wait policy used while a contending thread waits for a thin lock's
/// owner to release it (paper §2.3.4).  The paper notes that "standard
/// back-off techniques [Anderson 1990] for reducing the cost of
/// spin-locking can be applied"; this class implements truncated
/// exponential backoff.  Because the evaluation host (like the paper's
/// RS/6000 43T) is a uniprocessor, the policy escalates quickly from CPU
/// pause instructions to scheduler yields: spinning without yielding on a
/// single CPU would deadlock against the lock owner.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_SPINWAIT_H
#define THINLOCKS_SUPPORT_SPINWAIT_H

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace thinlocks {

/// Executes one CPU-level pause; a hint to SMT siblings and the memory
/// system that this is a spin loop.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // Fallback: a compiler barrier so the loop is not collapsed.
  asm volatile("" ::: "memory");
#endif
}

/// Truncated exponential backoff.  Call spinOnce() each time the guarded
/// condition is observed false.
class SpinWait {
  unsigned Round = 0;
  uint64_t Spins = 0;
  uint64_t Yields = 0;

public:
  /// Number of doubling rounds of pure pause-spinning before every further
  /// round also yields the processor.
  static constexpr unsigned YieldThresholdRound = 4;
  /// Cap on the per-round pause count (truncation of the exponential).
  static constexpr unsigned MaxPausesPerRound = 64;

  /// Performs one backoff step.
  void spinOnce() {
    unsigned Pauses = 1u << (Round < 6 ? Round : 6);
    if (Pauses > MaxPausesPerRound)
      Pauses = MaxPausesPerRound;
    for (unsigned I = 0; I < Pauses; ++I)
      cpuRelax();
    Spins += Pauses;
    if (Round >= YieldThresholdRound) {
      std::this_thread::yield();
      ++Yields;
    }
    ++Round;
  }

  /// Resets the policy after a successful acquisition.
  void reset() { Round = 0; }

  /// \returns the total pause iterations executed (for tests/stats).
  uint64_t totalSpins() const { return Spins; }

  /// \returns the total scheduler yields executed (for tests/stats).
  uint64_t totalYields() const { return Yields; }
};

} // namespace thinlocks

#endif // THINLOCKS_SUPPORT_SPINWAIT_H

//===- support/SpinWait.h - Bounded escalation-ladder backoff --*- C++ -*-===//
///
/// \file
/// Spin-wait policy used while a contending thread waits for a thin lock's
/// owner to release it (paper §2.3.4).  The paper notes that "standard
/// back-off techniques [Anderson 1990] for reducing the cost of
/// spin-locking can be applied"; this class implements a three-rung
/// escalation ladder:
///
///   pause  — truncated exponential batches of CPU pause instructions;
///   yield  — every round past YieldThresholdRound also yields the CPU
///            (the evaluation host, like the paper's RS/6000 43T, is a
///            uniprocessor: spinning without yielding would livelock
///            against the lock owner);
///   park   — every round past ParkThresholdRound sleeps for an
///            exponentially growing, capped interval, so a thread stuck
///            behind a descheduled (or deadlocked) owner stops burning
///            CPU and the caller gets cheap, bounded-frequency points at
///            which to run watchdog checks (see ThinLockImpl's deadlock
///            detection).
///
/// The rung boundaries and park interval are configurable via SpinPolicy;
/// the defaults preserve the pause/yield behaviour the benchmarks were
/// tuned on and add parking only after ~a dozen failed rounds.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_SPINWAIT_H
#define THINLOCKS_SUPPORT_SPINWAIT_H

#include "support/FailPoint.h"

#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace thinlocks {

/// Executes one CPU-level pause; a hint to SMT siblings and the memory
/// system that this is a spin loop.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // Fallback: a compiler barrier so the loop is not collapsed.
  asm volatile("" ::: "memory");
#endif
}

/// Tunable rung boundaries for the SpinWait escalation ladder.
struct SpinPolicy {
  /// Number of doubling rounds of pure pause-spinning before every
  /// further round also yields the processor.
  unsigned YieldThresholdRound = 4;
  /// Rounds before every further round also parks (sleeps).  Must be
  /// >= YieldThresholdRound.
  unsigned ParkThresholdRound = 12;
  /// Cap on the per-round pause count (truncation of the exponential).
  unsigned MaxPausesPerRound = 64;
  /// First park interval; doubles per parking round up to MaxParkNanos.
  uint64_t MinParkNanos = 50 * 1000;        // 50us
  uint64_t MaxParkNanos = 2 * 1000 * 1000;  // 2ms
};

/// The one default ladder every thin-lock contention path escalates on
/// (lockSlow, tryLock's fat-Retired retry, tryLockFor).  Tuning the
/// ladder means editing this policy, not hunting per-call-site copies.
inline constexpr SpinPolicy DefaultSpinPolicy{};

/// Deeper ladder for objects the adaptive policy engine has classified
/// fast-release (small mean blocked time per contended acquire): more
/// pause-heavy rounds and a later park rung, because the owner is about
/// to release and a park round trip would cost more than the extra spin.
inline constexpr SpinPolicy DeepSpinPolicy{/*YieldThresholdRound=*/6,
                                           /*ParkThresholdRound=*/16,
                                           /*MaxPausesPerRound=*/128};

/// Shallow ladder for convoy-prone objects (large mean blocked time):
/// yield almost immediately and reach the park rung within a few rounds
/// — spinning burns CPU the descheduled owner needs to release at all.
inline constexpr SpinPolicy ParkEarlySpinPolicy{/*YieldThresholdRound=*/1,
                                                /*ParkThresholdRound=*/3,
                                                /*MaxPausesPerRound=*/16};

/// Truncated exponential backoff with yield and park escalation.  Call
/// spinOnce() each time the guarded condition is observed false.
class SpinWait {
  SpinPolicy Policy;
  unsigned Round = 0;
  uint64_t Spins = 0;
  uint64_t Yields = 0;
  uint64_t Parks = 0;

public:
  /// Historical aliases kept for tests and callers tuned to defaults.
  static constexpr unsigned YieldThresholdRound = 4;
  static constexpr unsigned MaxPausesPerRound = 64;

  SpinWait() = default;
  explicit SpinWait(const SpinPolicy &Policy) : Policy(Policy) {}

  /// Runs the pause/yield portion of one backoff round and advances the
  /// ladder.  \returns 0 while on the pause/yield rungs, or the length
  /// (nanoseconds) of this round's park once the ladder has escalated to
  /// its park rung — the *caller* owns the sleep, so a blind
  /// `sleep_for` and a wakeable deadline-park in the ParkingLot (see
  /// ThinLockImpl::lockSlow) share one ladder.
  uint64_t nextRound() {
    if (TL_FAILPOINT(SpinWaitPreempt)) {
      // Injected preemption: model the scheduler seizing the CPU in the
      // middle of a backoff round (the adverse schedule that motivates
      // the ladder's park rung).
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ++Yields;
    }
    unsigned Pauses = 1u << (Round < 6 ? Round : 6);
    if (Pauses > Policy.MaxPausesPerRound)
      Pauses = Policy.MaxPausesPerRound;
    for (unsigned I = 0; I < Pauses; ++I)
      cpuRelax();
    Spins += Pauses;
    uint64_t ParkNanos = 0;
    if (Round >= Policy.ParkThresholdRound) {
      ParkNanos = Policy.MinParkNanos;
      unsigned Doublings = Round - Policy.ParkThresholdRound;
      // Saturate instead of shifting past 63 bits.
      for (unsigned I = 0; I < Doublings && ParkNanos < Policy.MaxParkNanos;
           ++I)
        ParkNanos *= 2;
      if (ParkNanos > Policy.MaxParkNanos)
        ParkNanos = Policy.MaxParkNanos;
      ++Parks;
    } else if (Round >= Policy.YieldThresholdRound) {
      std::this_thread::yield();
      ++Yields;
    }
    ++Round;
    return ParkNanos;
  }

  /// Performs one backoff step, sleeping out the park rung in place.
  void spinOnce() {
    if (uint64_t ParkNanos = nextRound())
      std::this_thread::sleep_for(std::chrono::nanoseconds(ParkNanos));
  }

  /// Resets the policy after a successful acquisition.
  void reset() { Round = 0; }

  /// \returns true once the ladder has escalated to its park rung — the
  /// natural cadence for callers to run deadlock / watchdog checks.
  bool isParking() const { return Round > Policy.ParkThresholdRound; }

  /// \returns the total pause iterations executed (for tests/stats).
  uint64_t totalSpins() const { return Spins; }

  /// \returns the total scheduler yields executed (for tests/stats).
  uint64_t totalYields() const { return Yields; }

  /// \returns the total timed sleeps executed (for tests/stats).
  uint64_t totalParks() const { return Parks; }
};

} // namespace thinlocks

#endif // THINLOCKS_SUPPORT_SPINWAIT_H

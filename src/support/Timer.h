//===- support/Timer.h - Monotonic timing helpers --------------*- C++ -*-===//
///
/// \file
/// Thin wrappers over the steady clock.  The paper reports elapsed time of
/// the median of 10 runs; MedianTimer implements that discipline for the
/// hand-rolled harness parts that do not go through google-benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_TIMER_H
#define THINLOCKS_SUPPORT_TIMER_H

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

namespace thinlocks {

/// \returns nanoseconds from an arbitrary, monotonically increasing origin.
inline uint64_t monotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Measures one interval from construction to stop().
class StopWatch {
  uint64_t StartNanos;

public:
  StopWatch() : StartNanos(monotonicNanos()) {}

  /// \returns nanoseconds elapsed since construction or the last restart().
  uint64_t elapsedNanos() const { return monotonicNanos() - StartNanos; }

  void restart() { StartNanos = monotonicNanos(); }
};

/// Runs a callable \p Samples times and reports the median elapsed time,
/// mirroring the paper's "median of 10 sample runs" methodology.
template <typename Fn>
uint64_t medianElapsedNanos(unsigned Samples, Fn &&Body) {
  std::vector<uint64_t> Times;
  Times.reserve(Samples);
  for (unsigned I = 0; I < Samples; ++I) {
    StopWatch Watch;
    Body();
    Times.push_back(Watch.elapsedNanos());
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

} // namespace thinlocks

#endif // THINLOCKS_SUPPORT_TIMER_H

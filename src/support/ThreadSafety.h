//===- support/ThreadSafety.h - Clang Thread Safety Analysis ---*- C++ -*-===//
///
/// \file
/// Capability annotations for Clang's Thread Safety Analysis (TSA),
/// following the attribute vocabulary of -Wthread-safety:
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
///
/// The locking discipline of every internally-synchronized subsystem
/// (MonitorTable, ParkingLot, ThreadRegistry, FatLock, LockStats,
/// LockEventCollector) is written down with these macros so that a clang
/// build with -Wthread-safety -Werror=thread-safety proves, at compile
/// time, that every GUARDED_BY field is only touched under its mutex and
/// every REQUIRES helper is only called with the lock held.  CI runs that
/// build as a blocking job; see DESIGN.md §11.
///
/// On compilers without the attributes (gcc, MSVC) every macro expands to
/// nothing, so annotated code compiles identically everywhere.  The
/// annotations are *documentation that cannot rot*: they carry zero
/// runtime cost in every build.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_THREADSAFETY_H
#define THINLOCKS_SUPPORT_THREADSAFETY_H

#if defined(__clang__) && (!defined(SWIG))
#define TL_THREAD_ANNOTATION(X) __attribute__((X))
#else
#define TL_THREAD_ANNOTATION(X) // no-op
#endif

/// Marks a class as a capability (a lock).  The string names the
/// capability kind in diagnostics ("mutex").
#define TL_CAPABILITY(X) TL_THREAD_ANNOTATION(capability(X))

/// Marks a class whose constructor acquires and destructor releases a
/// capability (lock_guard / unique_lock shapes).
#define TL_SCOPED_CAPABILITY TL_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the named capability.
#define TL_GUARDED_BY(X) TL_THREAD_ANNOTATION(guarded_by(X))

/// Pointer member whose *pointee* is protected by the named capability
/// (the pointer itself may be read freely).
#define TL_PT_GUARDED_BY(X) TL_THREAD_ANNOTATION(pt_guarded_by(X))

/// Function acquires the capability (or the listed ones) and holds it on
/// return; callers must not already hold it.
#define TL_ACQUIRE(...) TL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define TL_RELEASE(...) TL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability only when returning the given value.
#define TL_TRY_ACQUIRE(...)                                                   \
  TL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Callers must hold the listed capabilities; the function neither
/// acquires nor (net) releases them.
#define TL_REQUIRES(...) TL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Callers must NOT hold the listed capabilities (deadlock prevention:
/// the function acquires them itself).
#define TL_EXCLUDES(...) TL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability (accessor).
#define TL_RETURN_CAPABILITY(X) TL_THREAD_ANNOTATION(lock_returned(X))

/// Escape hatch for protocols TSA cannot express (e.g. handing a lock
/// between threads).  Every use must carry a comment saying why.
#define TL_NO_THREAD_SAFETY_ANALYSIS                                          \
  TL_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // THINLOCKS_SUPPORT_THREADSAFETY_H

//===- support/ThreadStripe.h - Per-thread stripe identity -----*- C++ -*-===//
///
/// \file
/// The stripe identity behind the striped instrumentation counters
/// (StatsCounter) and the sharded monitor allocator (MonitorTable).  The
/// goal is that a thread on an instrumented hot path touches cache lines
/// no other thread writes, so instrumentation and allocation scale with
/// thread count instead of serializing on shared lines.
///
/// A stripe is either:
///  - **exclusive**: threads whose 15-bit registry index is small enough
///    get a slot derived directly from the index.  Registry indices are
///    unique among live threads, so the slot has a single live writer and
///    counter updates may use plain (non-RMW) load/add/store — the key to
///    keeping the stats-enabled lock fast path within a few percent of
///    the uninstrumented one (locked RMWs serialize the pipeline; plain
///    stores overlap with the protocol's CAS).
///  - **shared**: threads with larger indices, and threads that never
///    attached to a ThreadRegistry, hash into a small shared region and
///    must use atomic fetch-add.  Correct for any thread count, merely
///    slower.
///
/// The identity is one packed TLS word so the instrumented fast path
/// spends a single load and a sign test on it: bit 31 clear = exclusive
/// slot index; bit 31 set = shared slot; all-ones = uninitialized (the
/// value constant-initialization gives a fresh thread, resolved to a
/// hashed shared slot on first use).
///
/// ThreadRegistry::attach() publishes the stripe for the calling thread;
/// detach() (from the owning thread) reverts it.  The single-writer
/// guarantee for exclusive slots assumes (a) a thread detaches itself —
/// true for ScopedThreadAttachment and every in-repo user — and (b) the
/// threads touching one counter instance come from one registry, which
/// holds because each lock domain (VM, Env, bench fixture) owns exactly
/// one registry.  Successive owners of a recycled index are ordered by
/// the registry mutex, so plain stores cannot be lost across recycling.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_THREADSTRIPE_H
#define THINLOCKS_SUPPORT_THREADSTRIPE_H

#include "support/Compiler.h"

#include <cstdint>
#include <functional>
#include <thread>

namespace thinlocks {

/// A thread's stripe: which padded slot it owns (or shares) in every
/// striped structure, and whether it is the slot's only live writer.
struct ThreadStripe {
  /// Slots with a single live writer (thread indices 1..NumExclusive).
  static constexpr uint32_t NumExclusive = 32;
  /// Hash-shared overflow slots (large indices, unattached threads).
  static constexpr uint32_t NumShared = 4;
  static constexpr uint32_t NumSlots = NumExclusive + NumShared;

  /// Set in Packed when the slot is shared (fetch-add required).
  static constexpr uint32_t SharedBit = 0x80000000u;
  /// Packed value of a thread that has not resolved its stripe yet.
  /// Has SharedBit set, so a not-yet-resolved thread never takes the
  /// plain-store path.
  static constexpr uint32_t Uninitialized = ~0u;

  uint32_t Packed = Uninitialized;

  bool initialized() const { return Packed != Uninitialized; }
  bool exclusive() const { return (Packed & SharedBit) == 0; }
  /// The slot in [0, NumSlots); only meaningful once initialized().
  uint32_t slot() const { return Packed & ~SharedBit; }
};

namespace detail {
inline thread_local ThreadStripe CurrentThreadStripe;

/// Stripe for a thread that never attached: hash the native id into the
/// shared region (finalizer borrowed from splitmix64 for avalanche).
inline ThreadStripe fallbackThreadStripe() {
  uint64_t X = static_cast<uint64_t>(
      std::hash<std::thread::id>()(std::this_thread::get_id()));
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  ThreadStripe Stripe;
  Stripe.Packed = ThreadStripe::SharedBit |
                  (ThreadStripe::NumExclusive +
                   static_cast<uint32_t>(X % ThreadStripe::NumShared));
  return Stripe;
}
} // namespace detail

/// \returns the calling thread's stripe, computing the hashed fallback
/// on first use for threads that never attached to a registry.
inline const ThreadStripe &currentThreadStripe() {
  ThreadStripe &Stripe = detail::CurrentThreadStripe;
  if (TL_UNLIKELY(!Stripe.initialized()))
    Stripe = detail::fallbackThreadStripe();
  return Stripe;
}

/// Publishes the calling thread's stripe from its registry index
/// (ThreadRegistry::attach), or reverts to the hashed fallback when
/// \p ThreadIndex is 0 (detach).
inline void setCurrentThreadStripe(uint16_t ThreadIndex) {
  ThreadStripe &Stripe = detail::CurrentThreadStripe;
  if (ThreadIndex == 0) {
    Stripe.Packed = ThreadStripe::Uninitialized; // Rehashed on next use.
    return;
  }
  if (ThreadIndex <= ThreadStripe::NumExclusive) {
    Stripe.Packed = ThreadIndex - 1;
  } else {
    // Large indices spread over the shared region; must use fetch-add
    // (several live threads can map to one shared slot).
    Stripe.Packed =
        ThreadStripe::SharedBit |
        (ThreadStripe::NumExclusive +
         (static_cast<uint32_t>(ThreadIndex) * 0x9e3779b9u >> 16) %
             ThreadStripe::NumShared);
  }
}

} // namespace thinlocks

#endif // THINLOCKS_SUPPORT_THREADSTRIPE_H

//===- support/FailPoint.h - Compile-time-gated fault injection *- C++ -*-===//
///
/// \file
/// Named failure-injection points threaded through the locking hot spots
/// (lost initial CAS, forced preemption mid-spin, widened inflation race
/// windows, monitor-table and thread-registry exhaustion).  The facility
/// has two layers:
///
///  - The *sites* are guarded by the TL_FAILPOINT(Name) macro.  When the
///    library is built without THINLOCKS_FAILPOINTS (the default), the
///    macro is the constant `false` and every site is dead code — the
///    paper's 17-instruction fast path is bit-for-bit unchanged, which
///    bench_fastpath guards.  When built with -DTHINLOCKS_FAILPOINTS=ON
///    a disarmed site costs one relaxed load of a global bitmask.
///
///  - The *registry* (arm/disarm/hit counters/spec parsing) is always
///    compiled, so tests of the control plane run in every build mode;
///    only the sites themselves are conditional.
///
/// Arming: programmatic (failpoint::arm) or via the environment variable
/// THINLOCKS_FAILPOINTS, e.g.
///
///   THINLOCKS_FAILPOINTS="thinlock.initial-cas=oneIn:4,spinwait.preempt=always"
///
/// parsed once at static-initialization time.  Modes: `always`, `times:N`
/// (fire the first N evaluations), `oneIn:N` (fire every Nth evaluation).
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_FAILPOINT_H
#define THINLOCKS_SUPPORT_FAILPOINT_H

#include "support/Compiler.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace thinlocks {
namespace failpoint {

/// Every injection site in the library.  Keep in sync with the name table
/// in FailPoint.cpp.
enum class Id : uint8_t {
  ThinLockInitialCas,       ///< "thinlock.initial-cas": lose the fast-path CAS.
  SpinWaitPreempt,          ///< "spinwait.preempt": preempt mid-backoff.
  ThinLockInflateRace,      ///< "thinlock.inflate-race": widen publish window.
  MonitorTableExhausted,    ///< "monitortable.exhausted": allocate() fails.
  ThreadRegistryExhausted,  ///< "threadregistry.exhausted": attach() fails.
  ParkSpurious,             ///< "park.spurious": Parker::park returns early.
  ParkingLotTimeoutRace,    ///< "parkinglot.timeout-race": widen the window
                            ///< between a timed park returning and the waiter
                            ///< re-acquiring its bucket, so an unparkOne can
                            ///< capture the timed-out waiter first.
  NumIds,
};

constexpr unsigned NumIds = static_cast<unsigned>(Id::NumIds);

/// How an armed failpoint decides to fire.
enum class Mode : uint8_t {
  Off,    ///< Never fires.
  Always, ///< Fires on every evaluation.
  Times,  ///< Fires on the first `Arg` evaluations, then goes quiet.
  OneIn,  ///< Fires on every `Arg`-th evaluation (the Arg-th, 2*Arg-th...).
};

/// \returns the stable external name of \p I (used in env specs and
/// diagnostics).
const char *name(Id I);

/// Arms \p I.  \p Arg is the count for Times / the period for OneIn
/// (ignored for Always; a zero Arg disarms).
void arm(Id I, Mode M, uint64_t Arg = 0);

/// Disarms \p I; its hit counter is preserved until re-armed.
void disarm(Id I);

/// Disarms every failpoint and clears all counters (test isolation).
void disarmAll();

/// \returns how many times \p I actually fired since it was last armed.
uint64_t hitCount(Id I);

/// \returns how many times \p I was evaluated (armed, at the site) since
/// last armed.
uint64_t evalCount(Id I);

/// Parses and applies a comma-separated spec, e.g.
/// "thinlock.initial-cas=always,monitortable.exhausted=times:3".
/// \returns false (and sets \p Error) on a malformed spec; valid entries
/// before the error are still applied.
bool armFromSpec(const std::string &Spec, std::string *Error = nullptr);

/// Like armFromSpec, but parses the *whole* spec, applying every valid
/// clause and collecting one message per malformed clause into
/// \p Errors (when non-null).  \returns the number of clauses applied.
/// This is the environment-variable parser: reporting every typo at
/// once beats fixing them one rerun at a time.
size_t armFromSpecCollect(const std::string &Spec,
                          std::vector<std::string> *Errors);

/// Applies the THINLOCKS_FAILPOINTS environment variable, if set.
/// Called automatically during static initialization.  A malformed
/// clause is *fatal*: every error is reported to stderr together with
/// the full list of valid failpoint names, then the process aborts.  A
/// typo'd spec silently arming nothing would make an "armed" test rerun
/// (e.g. the injection-armed conformance pass) vacuously green — fail
/// it loudly at startup instead.
void armFromEnvironment();

/// Evaluates \p I's mode and counters as if at an injection site.
/// \returns true if the failpoint fires.  This is the registry half of
/// TL_FAILPOINT; sites reach it only through the compile-time gate below.
bool evaluate(Id I);

/// Bitmask with bit i set while Id(i) is armed; lets a compiled-in but
/// disarmed site cost a single relaxed load.
extern std::atomic<uint32_t> ArmedMask;

/// \returns true if the library was built with injection sites compiled
/// in (-DTHINLOCKS_FAILPOINTS=ON).  Tests that need a site to actually
/// fire skip themselves when this is false.
constexpr bool compiledIn() {
#if defined(TL_FAILPOINTS_ENABLED) && TL_FAILPOINTS_ENABLED
  return true;
#else
  return false;
#endif
}

#if defined(TL_FAILPOINTS_ENABLED) && TL_FAILPOINTS_ENABLED
inline bool active(Id I) {
  uint32_t Mask = ArmedMask.load(std::memory_order_relaxed);
  if (TL_LIKELY((Mask & (1u << static_cast<unsigned>(I))) == 0))
    return false;
  return evaluate(I);
}
#else
constexpr bool active(Id) { return false; }
#endif

} // namespace failpoint
} // namespace thinlocks

/// Site guard: `if (TL_FAILPOINT(ThinLockInitialCas)) { ...inject... }`.
/// Constant-folds to `if (false)` when failpoints are compiled out.
#define TL_FAILPOINT(NAME)                                                    \
  TL_UNLIKELY(::thinlocks::failpoint::active(::thinlocks::failpoint::Id::NAME))

#endif // THINLOCKS_SUPPORT_FAILPOINT_H

//===- support/Fatal.h - Always-on fatal error reporting -------*- C++ -*-===//
///
/// \file
/// Loud, unconditional failure for invariant violations that must not be
/// compiled out.  `assert` disappears under NDEBUG, which turned several
/// corruption checks (bad monitor indices, double thread detach, corrupt
/// lock words) into undefined behavior in release builds; fatalError()
/// prints a formatted diagnostic to stderr and aborts in *all* build
/// modes.  It is for broken invariants only — recoverable conditions
/// (resource exhaustion, timeouts) use typed results instead.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_FATAL_H
#define THINLOCKS_SUPPORT_FATAL_H

namespace thinlocks {

/// Prints "thinlocks fatal error: <message>" to stderr and aborts.
/// printf-style; never returns and never allocates on the failure path.
[[noreturn]] void fatalError(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace thinlocks

#endif // THINLOCKS_SUPPORT_FATAL_H

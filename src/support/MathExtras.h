//===- support/MathExtras.h - Bit and integer helpers ----------*- C++ -*-===//
///
/// \file
/// Integer helpers used by the lock-word encoding, the chunked tables, and
/// the workload generators.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_SUPPORT_MATHEXTRAS_H
#define THINLOCKS_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstdint>

namespace thinlocks {

/// \returns true if \p Value is a power of two (zero is not).
constexpr bool isPowerOf2(uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// \returns the smallest power of two that is >= \p Value (minimum 1).
constexpr uint64_t nextPowerOf2(uint64_t Value) {
  if (Value <= 1)
    return 1;
  uint64_t Result = 1;
  while (Result < Value)
    Result <<= 1;
  return Result;
}

/// \returns \p Value rounded up to the next multiple of \p Align.
/// \p Align must be a power of two.
constexpr uint64_t alignTo(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

/// \returns floor(log2(Value)); \p Value must be nonzero.
constexpr unsigned log2Floor(uint64_t Value) {
  unsigned Result = 0;
  while (Value >>= 1)
    ++Result;
  return Result;
}

/// Extracts the bit field [Lo, Lo+Width) of \p Word.
constexpr uint32_t extractBits(uint32_t Word, unsigned Lo, unsigned Width) {
  assert(Lo + Width <= 32 && "bit field out of range");
  if (Width == 32)
    return Word >> Lo;
  return (Word >> Lo) & ((1u << Width) - 1);
}

/// Saturating addition for statistics counters.
constexpr uint64_t saturatingAdd(uint64_t A, uint64_t B) {
  uint64_t Result = A + B;
  return Result < A ? UINT64_MAX : Result;
}

} // namespace thinlocks

#endif // THINLOCKS_SUPPORT_MATHEXTRAS_H

//===- core/Deadlock.cpp - Owner-graph deadlock detection -----------------===//

#include "core/Deadlock.h"

#include "core/LockWord.h"
#include "fatlock/FatLock.h"
#include "fatlock/MonitorTable.h"
#include "heap/Object.h"
#include "threads/ThreadRegistry.h"

#include <cinttypes>
#include <cstdio>

using namespace thinlocks;

namespace {

/// Snapshot of who owns \p Obj's monitor right now.
struct OwnerSnapshot {
  uint16_t Index = 0;
  uint32_t Holds = 0;
};

OwnerSnapshot ownerOf(const Object &Obj, const MonitorTable &Monitors) {
  uint32_t Word = Obj.lockWord().load(std::memory_order_acquire);
  if (lockword::isFat(Word)) {
    const FatLock *Fat = Monitors.resolve(Word);
    return {Fat->ownerIndex(), Fat->holdCount()};
  }
  if (lockword::isUnlocked(Word))
    return {};
  return {lockword::threadIndexOf(Word), lockword::countOf(Word) + 1};
}

/// One un-confirmed walk.  Follows blocked-on/owner edges from
/// (\p SelfIndex, \p Wanted) until an edge target repeats — a cycle —
/// or the chain ends at a running thread or an unlocked object.
DeadlockReport walkOnce(uint16_t SelfIndex, const Object *Wanted,
                        const ThreadRegistry &Registry,
                        const MonitorTable &Monitors) {
  DeadlockReport Report;
  std::vector<DeadlockEdge> Chain;
  uint16_t Current = SelfIndex;
  const Object *Blocked = Wanted;
  // The chain can visit each thread index at most once before repeating,
  // so the walk is bounded even if edges mutate underneath us.
  for (uint32_t Step = 0;
       Step <= ThreadRegistry::MaxThreadIndex && Blocked != nullptr; ++Step) {
    OwnerSnapshot Owner = ownerOf(*Blocked, Monitors);
    if (Owner.Index == 0 || Owner.Index == Current)
      return Report; // Unlocked, or self-edge artifact of a stale read.

    DeadlockEdge Edge;
    Edge.ThreadIndex = Current;
    if (const ThreadInfo *Info = Registry.info(Current))
      Edge.ThreadName = Info->Name;
    Edge.WaitsFor = Blocked;
    Edge.OwnerIndex = Owner.Index;
    Edge.OwnerHolds = Owner.Holds;
    Chain.push_back(std::move(Edge));

    // Cycle: the owner is a thread already on the chain.  Report the
    // loop portion (the prefix before it is merely blocked *behind* the
    // cycle — still deadlocked, but not part of the loop).
    for (size_t I = 0; I < Chain.size(); ++I) {
      if (Chain[I].ThreadIndex == Owner.Index) {
        Report.Cycle.assign(Chain.begin() + static_cast<ptrdiff_t>(I),
                            Chain.end());
        return Report;
      }
    }

    Current = Owner.Index;
    Blocked = Registry.blockedOn(Current);
  }
  return Report; // Chain ended: somebody in it is runnable.
}

bool sameCycle(const DeadlockReport &A, const DeadlockReport &B) {
  if (A.Cycle.size() != B.Cycle.size())
    return false;
  for (size_t I = 0; I < A.Cycle.size(); ++I) {
    if (A.Cycle[I].ThreadIndex != B.Cycle[I].ThreadIndex ||
        A.Cycle[I].WaitsFor != B.Cycle[I].WaitsFor ||
        A.Cycle[I].OwnerIndex != B.Cycle[I].OwnerIndex)
      return false;
  }
  return true;
}

} // namespace

DeadlockReport thinlocks::detectDeadlock(uint16_t SelfIndex,
                                         const Object *Wanted,
                                         const ThreadRegistry &Registry,
                                         const MonitorTable &Monitors) {
  DeadlockReport First = walkOnce(SelfIndex, Wanted, Registry, Monitors);
  if (!First.hasCycle())
    return First;
  // Double-confirm: a transient snapshot (an edge observed mid-handoff)
  // will not reproduce identically on an immediate re-walk, because the
  // handoff that created it has completed.
  DeadlockReport Second = walkOnce(SelfIndex, Wanted, Registry, Monitors);
  if (!sameCycle(First, Second))
    return DeadlockReport();
  return First;
}

std::string DeadlockReport::format() const {
  if (Cycle.empty())
    return "no deadlock detected";
  char Line[256];
  std::snprintf(Line, sizeof(Line), "deadlock: %zu thread(s) in cycle\n",
                Cycle.size());
  std::string Out = Line;
  for (const DeadlockEdge &Edge : Cycle) {
    std::snprintf(Line, sizeof(Line),
                  "  thread %u (\"%s\") waits for object %p, held by "
                  "thread %u with %u hold(s)\n",
                  Edge.ThreadIndex,
                  Edge.ThreadName.empty() ? "?" : Edge.ThreadName.c_str(),
                  static_cast<const void *>(Edge.WaitsFor), Edge.OwnerIndex,
                  Edge.OwnerHolds);
    Out += Line;
  }
  return Out;
}

//===- core/ThinLock.cpp - Explicit policy instantiations -----------------===//

#include "core/ThinLock.h"

namespace thinlocks {

template class ThinLockImpl<DynamicPolicy>;
template class ThinLockImpl<UniprocessorPolicy>;
template class ThinLockImpl<MultiprocessorPolicy>;
template class ThinLockImpl<CasUnlockPolicy>;

} // namespace thinlocks

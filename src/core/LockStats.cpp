//===- core/LockStats.cpp - Lock operation characterization ---------------===//

#include "core/LockStats.h"

#include <cstdio>

using namespace thinlocks;

double LockStats::depthFraction(unsigned Bucket) const {
  uint64_t All = Total.value();
  if (All == 0)
    return 0.0;
  return static_cast<double>(DepthBuckets[Bucket].value()) /
         static_cast<double>(All);
}

void LockStats::reset() {
  Total.reset();
  Releases.reset();
  FastPath.reset();
  FatPath.reset();
  SpinIterations.reset();
  ContentionInflations.reset();
  OverflowInflations.reset();
  WaitInflations.reset();
  Deflations.reset();
  EmergencyInflations.reset();
  TimedOutAcquisitions.reset();
  DeadlocksDetected.reset();
  for (auto &Bucket : DepthBuckets)
    Bucket.reset();
}

std::string LockStats::summary() const {
  char Buffer[512];
  std::snprintf(
      Buffer, sizeof(Buffer),
      "locks=%llu unlocks=%llu fast=%llu fat=%llu spins=%llu\n"
      "inflations: contention=%llu overflow=%llu wait=%llu "
      "emergency=%llu deflations=%llu\n"
      "degraded: timeouts=%llu deadlocks=%llu\n"
      "depth: first=%.1f%% second=%.1f%% third=%.1f%% fourth+=%.1f%%\n",
      static_cast<unsigned long long>(totalAcquisitions()),
      static_cast<unsigned long long>(totalReleases()),
      static_cast<unsigned long long>(fastPathAcquisitions()),
      static_cast<unsigned long long>(fatPathAcquisitions()),
      static_cast<unsigned long long>(spinIterations()),
      static_cast<unsigned long long>(contentionInflations()),
      static_cast<unsigned long long>(overflowInflations()),
      static_cast<unsigned long long>(waitInflations()),
      static_cast<unsigned long long>(emergencyInflations()),
      static_cast<unsigned long long>(deflations()),
      static_cast<unsigned long long>(timedOutAcquisitions()),
      static_cast<unsigned long long>(deadlocksDetected()),
      depthFraction(0) * 100.0, depthFraction(1) * 100.0,
      depthFraction(2) * 100.0, depthFraction(3) * 100.0);
  return Buffer;
}

//===- core/LockStats.cpp - Lock operation characterization ---------------===//

#include "core/LockStats.h"

#include <cstdio>

using namespace thinlocks;

namespace {

/// Saturating subtraction: a raw counter read concurrently with
/// recording can lag the baseline captured a moment later, so clamp at
/// zero instead of wrapping to ~2^64.
uint64_t minus(uint64_t Raw, uint64_t Base) {
  return Raw >= Base ? Raw - Base : 0;
}

} // namespace

LockStats::Snapshot LockStats::rawSnapshot() const {
  Snapshot S;
  S.FastPath = FastPathAcquires.value();
  // Fast-path acquires are depth-1 by construction; fold them into
  // bucket 0 so the buckets (and their sum) cover every acquisition.
  S.DepthBuckets[0] = S.FastPath;
  for (unsigned Bucket = 0; Bucket < NumDepthBuckets; ++Bucket) {
    S.DepthBuckets[Bucket] += DepthBuckets[Bucket].value();
    S.Acquisitions += S.DepthBuckets[Bucket];
  }
  S.Releases = Releases.value();
  S.FatPath = FatPath.value();
  S.SpinIterations = SpinIterations.value();
  S.ContentionInflations = ContentionInflations.value();
  S.OverflowInflations = OverflowInflations.value();
  S.WaitInflations = WaitInflations.value();
  S.Deflations = Deflations.value();
  S.EmergencyInflations = EmergencyInflations.value();
  S.TimedOutAcquisitions = TimedOutAcquisitions.value();
  S.DeadlocksDetected = DeadlocksDetected.value();
  for (unsigned Bucket = 0; Bucket < NumWakeBuckets; ++Bucket) {
    S.WakeBuckets[Bucket] = WakeBuckets[Bucket].value();
    S.Wakes += S.WakeBuckets[Bucket];
  }
  S.WakeNanosTotal = WakeNanosTotal.value();
  S.WakeNanosMax = WakeNanosMax.load(std::memory_order_relaxed);
  return S;
}

LockStats::Snapshot LockStats::snapshot() const {
  Snapshot S = rawSnapshot();
  LockGuard Guard(BaselineMutex);
  S.Acquisitions = minus(S.Acquisitions, Baseline.Acquisitions);
  S.Releases = minus(S.Releases, Baseline.Releases);
  S.FastPath = minus(S.FastPath, Baseline.FastPath);
  S.FatPath = minus(S.FatPath, Baseline.FatPath);
  S.SpinIterations = minus(S.SpinIterations, Baseline.SpinIterations);
  S.ContentionInflations =
      minus(S.ContentionInflations, Baseline.ContentionInflations);
  S.OverflowInflations =
      minus(S.OverflowInflations, Baseline.OverflowInflations);
  S.WaitInflations = minus(S.WaitInflations, Baseline.WaitInflations);
  S.Deflations = minus(S.Deflations, Baseline.Deflations);
  S.EmergencyInflations =
      minus(S.EmergencyInflations, Baseline.EmergencyInflations);
  S.TimedOutAcquisitions =
      minus(S.TimedOutAcquisitions, Baseline.TimedOutAcquisitions);
  S.DeadlocksDetected =
      minus(S.DeadlocksDetected, Baseline.DeadlocksDetected);
  for (unsigned Bucket = 0; Bucket < NumDepthBuckets; ++Bucket)
    S.DepthBuckets[Bucket] =
        minus(S.DepthBuckets[Bucket], Baseline.DepthBuckets[Bucket]);
  for (unsigned Bucket = 0; Bucket < NumWakeBuckets; ++Bucket)
    S.WakeBuckets[Bucket] =
        minus(S.WakeBuckets[Bucket], Baseline.WakeBuckets[Bucket]);
  S.Wakes = minus(S.Wakes, Baseline.Wakes);
  S.WakeNanosTotal = minus(S.WakeNanosTotal, Baseline.WakeNanosTotal);
  // WakeNanosMax is a high-water mark, not a sum; it was re-zeroed at
  // reset() time so the raw value already reflects this epoch.
  return S;
}

double LockStats::Snapshot::depthFraction(unsigned Bucket) const {
  if (Acquisitions == 0)
    return 0.0;
  return static_cast<double>(DepthBuckets[Bucket]) /
         static_cast<double>(Acquisitions);
}

double LockStats::depthFraction(unsigned Bucket) const {
  return snapshot().depthFraction(Bucket);
}

void LockStats::reset() {
  // Epoch reset: never zero the live stripes (concurrent snapshots
  // would mix pre- and post-wipe stripe values); just move the
  // baseline forward.  See the header comment on reset().
  Snapshot Raw = rawSnapshot();
  LockGuard Guard(BaselineMutex);
  Baseline = Raw;
  WakeNanosMax.store(0, std::memory_order_relaxed);
}

std::string LockStats::summary() const {
  Snapshot S = snapshot();
  char Buffer[512];
  std::snprintf(
      Buffer, sizeof(Buffer),
      "locks=%llu unlocks=%llu fast=%llu fat=%llu spins=%llu\n"
      "inflations: contention=%llu overflow=%llu wait=%llu "
      "emergency=%llu deflations=%llu\n"
      "degraded: timeouts=%llu deadlocks=%llu\n"
      "depth: first=%.1f%% second=%.1f%% third=%.1f%% fourth+=%.1f%%\n"
      "wake: count=%llu avg=%.1fus max=%.1fus\n",
      static_cast<unsigned long long>(S.Acquisitions),
      static_cast<unsigned long long>(S.Releases),
      static_cast<unsigned long long>(S.FastPath),
      static_cast<unsigned long long>(S.FatPath),
      static_cast<unsigned long long>(S.SpinIterations),
      static_cast<unsigned long long>(S.ContentionInflations),
      static_cast<unsigned long long>(S.OverflowInflations),
      static_cast<unsigned long long>(S.WaitInflations),
      static_cast<unsigned long long>(S.EmergencyInflations),
      static_cast<unsigned long long>(S.Deflations),
      static_cast<unsigned long long>(S.TimedOutAcquisitions),
      static_cast<unsigned long long>(S.DeadlocksDetected),
      S.depthFraction(0) * 100.0, S.depthFraction(1) * 100.0,
      S.depthFraction(2) * 100.0, S.depthFraction(3) * 100.0,
      static_cast<unsigned long long>(S.Wakes),
      static_cast<double>(S.avgWakeNanos()) / 1000.0,
      static_cast<double>(S.WakeNanosMax) / 1000.0);
  return Buffer;
}

//===- core/OwnershipAudit.h - Who owns which lock words -------*- C++ -*-===//
///
/// \file
/// Heap-wide ownership queries over the thin/fat lock encoding.  The
/// primary consumer is thread-index recycling safety: a 15-bit thread
/// index encoded in a live thin-lock word *is* ownership, so an index
/// must not be recycled to a new thread while any lock word still
/// encodes it — the new thread's XOR fast path would satisfy
/// `canNestInline` against the stale word and silently "own" a lock it
/// never acquired.  ThreadRegistry quarantines such indices; the auditor
/// built here tells it which ones those are by scanning the heap.
///
/// The scan is O(heap) and runs only on detach / quarantine rescan —
/// cold paths by design.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_CORE_OWNERSHIPAUDIT_H
#define THINLOCKS_CORE_OWNERSHIPAUDIT_H

#include "threads/ThreadRegistry.h"

#include <cstdint>
#include <vector>

namespace thinlocks {

class Heap;
class MonitorTable;
class Object;

/// \returns every object whose monitor (thin word or resolved fat lock)
/// is currently owned by thread index \p ThreadIndex.  Racy snapshot:
/// concurrent lock activity may be missed; use at points where the index
/// is not running (detach, post-mortem).
std::vector<const Object *> objectsLockedBy(uint16_t ThreadIndex,
                                            const Heap &H,
                                            const MonitorTable &Monitors);

/// Builds the standard ThreadRegistry index auditor: "is \p Index still
/// encoded as an owner anywhere in \p H?"  The heap and table must
/// outlive the registry the auditor is installed into.
ThreadRegistry::IndexAuditor makeLockWordAuditor(const Heap &H,
                                                 const MonitorTable &Monitors);

} // namespace thinlocks

#endif // THINLOCKS_CORE_OWNERSHIPAUDIT_H

//===- core/OwnershipAudit.cpp - Who owns which lock words ----------------===//

#include "core/OwnershipAudit.h"

#include "core/LockWord.h"
#include "fatlock/MonitorTable.h"
#include "heap/Heap.h"
#include "heap/Object.h"

using namespace thinlocks;

namespace {

/// \returns the owning thread index encoded in \p Obj's monitor, or 0.
uint16_t ownerIndexOf(const Object &Obj, const MonitorTable &Monitors) {
  uint32_t Word = Obj.lockWord().load(std::memory_order_acquire);
  if (lockword::isFat(Word))
    return Monitors.resolve(Word)->ownerIndex();
  if (lockword::isUnlocked(Word))
    return 0;
  return lockword::threadIndexOf(Word);
}

} // namespace

std::vector<const Object *>
thinlocks::objectsLockedBy(uint16_t ThreadIndex, const Heap &H,
                           const MonitorTable &Monitors) {
  std::vector<const Object *> Owned;
  if (ThreadIndex == 0)
    return Owned;
  H.forEachObject([&](const Object &Obj) {
    if (ownerIndexOf(Obj, Monitors) == ThreadIndex)
      Owned.push_back(&Obj);
  });
  return Owned;
}

ThreadRegistry::IndexAuditor
thinlocks::makeLockWordAuditor(const Heap &H, const MonitorTable &Monitors) {
  return [&H, &Monitors](uint16_t Index) {
    bool Found = false;
    H.forEachObject([&](const Object &Obj) {
      Found = Found || ownerIndexOf(Obj, Monitors) == Index;
    });
    return Found;
  };
}

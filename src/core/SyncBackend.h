//===- core/SyncBackend.h - Type-erased protocol adapter -------*- C++ -*-===//
///
/// \file
/// A virtual-dispatch adapter over any SyncProtocol.  The bytecode
/// interpreter and the trace-replay harness need to switch protocols at
/// runtime (ThinLock vs JDK111 vs IBM112); benchmarks that measure the
/// bare fast path use the concrete protocol types directly instead, so
/// the virtual call here never pollutes a fast-path measurement.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_CORE_SYNCBACKEND_H
#define THINLOCKS_CORE_SYNCBACKEND_H

#include "core/LockProtocol.h"
#include "heap/Object.h"
#include "threads/ThreadContext.h"

#include <cstdint>
#include <memory>
#include <string>

namespace thinlocks {

/// Runtime-polymorphic view of a synchronization protocol.
class SyncBackend {
public:
  virtual ~SyncBackend();

  virtual const char *name() const = 0;
  virtual void lock(Object *Obj, const ThreadContext &Thread) = 0;
  virtual void unlock(Object *Obj, const ThreadContext &Thread) = 0;
  virtual bool unlockChecked(Object *Obj, const ThreadContext &Thread) = 0;
  virtual bool tryLock(Object *Obj, const ThreadContext &Thread) = 0;
  virtual TimedLockStatus tryLockFor(Object *Obj, const ThreadContext &Thread,
                                     int64_t TimeoutNanos) = 0;
  virtual bool holdsLock(Object *Obj,
                         const ThreadContext &Thread) const = 0;
  virtual uint32_t lockDepth(Object *Obj,
                             const ThreadContext &Thread) const = 0;
  virtual WaitStatus wait(Object *Obj, const ThreadContext &Thread,
                          int64_t TimeoutNanos) = 0;
  virtual NotifyStatus notify(Object *Obj, const ThreadContext &Thread) = 0;
  virtual NotifyStatus notifyAll(Object *Obj,
                                 const ThreadContext &Thread) = 0;

  /// Optional capability: a per-protocol stats snapshot as a JSON object
  /// literal, or "" when the protocol exposes none.  The adapter detects
  /// a `std::string statsJson() const` member on the concrete protocol.
  virtual std::string statsJson() const { return {}; }

  /// Optional capability: ask the protocol to eagerly bind \p Obj to its
  /// heavyweight representation (thin-lock inflation).  \p Thread must
  /// own the monitor (like Object.wait) — hinting an unowned monitor is
  /// a caller bug.  Returns false when the protocol has no such notion;
  /// callers fall back to a portable contention recipe (e.g. a short
  /// timed wait).  The adapter detects an
  /// `inflate(Object *, const ThreadContext &)` member.
  virtual bool inflateHint(Object *Obj, const ThreadContext &Thread) {
    (void)Obj;
    (void)Thread;
    return false;
  }
};

/// Adapts a concrete protocol (held by reference; not owned).
template <SyncProtocol P> class SyncBackendAdapter final : public SyncBackend {
  P &Impl;

public:
  explicit SyncBackendAdapter(P &Impl) : Impl(Impl) {}

  const char *name() const override { return P::protocolName(); }
  void lock(Object *Obj, const ThreadContext &Thread) override {
    Impl.lock(Obj, Thread);
  }
  void unlock(Object *Obj, const ThreadContext &Thread) override {
    Impl.unlock(Obj, Thread);
  }
  bool unlockChecked(Object *Obj, const ThreadContext &Thread) override {
    return Impl.unlockChecked(Obj, Thread);
  }
  bool tryLock(Object *Obj, const ThreadContext &Thread) override {
    return Impl.tryLock(Obj, Thread);
  }
  TimedLockStatus tryLockFor(Object *Obj, const ThreadContext &Thread,
                             int64_t TimeoutNanos) override {
    return Impl.tryLockFor(Obj, Thread, TimeoutNanos);
  }
  bool holdsLock(Object *Obj, const ThreadContext &Thread) const override {
    return Impl.holdsLock(Obj, Thread);
  }
  uint32_t lockDepth(Object *Obj,
                     const ThreadContext &Thread) const override {
    return Impl.lockDepth(Obj, Thread);
  }
  WaitStatus wait(Object *Obj, const ThreadContext &Thread,
                  int64_t TimeoutNanos) override {
    return Impl.wait(Obj, Thread, TimeoutNanos);
  }
  NotifyStatus notify(Object *Obj, const ThreadContext &Thread) override {
    return Impl.notify(Obj, Thread);
  }
  NotifyStatus notifyAll(Object *Obj, const ThreadContext &Thread) override {
    return Impl.notifyAll(Obj, Thread);
  }
  std::string statsJson() const override {
    if constexpr (requires { Impl.statsJson(); })
      return Impl.statsJson();
    else
      return {};
  }
  bool inflateHint(Object *Obj, const ThreadContext &Thread) override {
    if constexpr (requires { Impl.inflate(Obj, Thread); }) {
      Impl.inflate(Obj, Thread);
      return true;
    } else {
      (void)Obj;
      (void)Thread;
      return false;
    }
  }
};

/// Convenience factory deducing the protocol type.
template <SyncProtocol P>
std::unique_ptr<SyncBackend> makeSyncBackend(P &Impl) {
  return std::make_unique<SyncBackendAdapter<P>>(Impl);
}

} // namespace thinlocks

#endif // THINLOCKS_CORE_SYNCBACKEND_H

//===- core/SyncBackend.h - Type-erased protocol adapter -------*- C++ -*-===//
///
/// \file
/// A virtual-dispatch adapter over any SyncProtocol.  The bytecode
/// interpreter and the trace-replay harness need to switch protocols at
/// runtime (ThinLock vs JDK111 vs IBM112); benchmarks that measure the
/// bare fast path use the concrete protocol types directly instead, so
/// the virtual call here never pollutes a fast-path measurement.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_CORE_SYNCBACKEND_H
#define THINLOCKS_CORE_SYNCBACKEND_H

#include "core/LockProtocol.h"
#include "heap/Object.h"
#include "threads/ThreadContext.h"

#include <cstdint>
#include <memory>

namespace thinlocks {

/// Runtime-polymorphic view of a synchronization protocol.
class SyncBackend {
public:
  virtual ~SyncBackend();

  virtual const char *name() const = 0;
  virtual void lock(Object *Obj, const ThreadContext &Thread) = 0;
  virtual void unlock(Object *Obj, const ThreadContext &Thread) = 0;
  virtual bool unlockChecked(Object *Obj, const ThreadContext &Thread) = 0;
  virtual bool holdsLock(Object *Obj,
                         const ThreadContext &Thread) const = 0;
  virtual uint32_t lockDepth(Object *Obj,
                             const ThreadContext &Thread) const = 0;
  virtual WaitStatus wait(Object *Obj, const ThreadContext &Thread,
                          int64_t TimeoutNanos) = 0;
  virtual NotifyStatus notify(Object *Obj, const ThreadContext &Thread) = 0;
  virtual NotifyStatus notifyAll(Object *Obj,
                                 const ThreadContext &Thread) = 0;
};

/// Adapts a concrete protocol (held by reference; not owned).
template <SyncProtocol P> class SyncBackendAdapter final : public SyncBackend {
  P &Impl;

public:
  explicit SyncBackendAdapter(P &Impl) : Impl(Impl) {}

  const char *name() const override { return P::protocolName(); }
  void lock(Object *Obj, const ThreadContext &Thread) override {
    Impl.lock(Obj, Thread);
  }
  void unlock(Object *Obj, const ThreadContext &Thread) override {
    Impl.unlock(Obj, Thread);
  }
  bool unlockChecked(Object *Obj, const ThreadContext &Thread) override {
    return Impl.unlockChecked(Obj, Thread);
  }
  bool holdsLock(Object *Obj, const ThreadContext &Thread) const override {
    return Impl.holdsLock(Obj, Thread);
  }
  uint32_t lockDepth(Object *Obj,
                     const ThreadContext &Thread) const override {
    return Impl.lockDepth(Obj, Thread);
  }
  WaitStatus wait(Object *Obj, const ThreadContext &Thread,
                  int64_t TimeoutNanos) override {
    return Impl.wait(Obj, Thread, TimeoutNanos);
  }
  NotifyStatus notify(Object *Obj, const ThreadContext &Thread) override {
    return Impl.notify(Obj, Thread);
  }
  NotifyStatus notifyAll(Object *Obj, const ThreadContext &Thread) override {
    return Impl.notifyAll(Obj, Thread);
  }
};

/// Convenience factory deducing the protocol type.
template <SyncProtocol P>
std::unique_ptr<SyncBackend> makeSyncBackend(P &Impl) {
  return std::make_unique<SyncBackendAdapter<P>>(Impl);
}

} // namespace thinlocks

#endif // THINLOCKS_CORE_SYNCBACKEND_H

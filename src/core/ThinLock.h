//===- core/ThinLock.h - The thin lock protocol ----------------*- C++ -*-===//
///
/// \file
/// The paper's contribution: monitors implemented in 24 bits of the
/// object header, layered as "a veneer over the existing heavy-weight
/// locking facilities" (the FatLock/MonitorTable substrate).
///
/// Protocol summary (paper §2.3):
///  - lock: one compare-and-swap of (header bits) -> (my shifted index |
///    header bits).  Success means the object was unlocked; the count
///    field (holds-1) is already correct at zero.
///  - nested lock: the XOR check recognizes "thin, mine, count < 255";
///    the count is incremented with a plain store — no atomic needed,
///    because only the owner ever writes an owned thin lock word.
///  - unlock: compare against "mine, count 0" and plain-store the header
///    bits back; nested unlock decrements with a plain store.
///  - contention: the acquirer spin-waits (with backoff and yields) for
///    the word to become unlocked, CASes it to itself, and *inflates*:
///    allocates a fat lock, transfers its hold, and publishes
///    (shape bit | monitor index).  Inflation is permanent.
///  - count overflow (257th hold) and wait() also inflate.
///
/// ThinLockImpl is templated over a fence/unlock policy (core/Variants.h)
/// so the paper's §3.5 tradeoff variants share one implementation.
/// ThinLockManager (= ThinLockImpl<DynamicPolicy>) is the configuration
/// the paper shipped and the one examples and the VM use.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_CORE_THINLOCK_H
#define THINLOCKS_CORE_THINLOCK_H

#include "core/LockProtocol.h"
#include "core/LockStats.h"
#include "core/LockWord.h"
#include "core/Variants.h"
#include "fatlock/MonitorTable.h"
#include "heap/Object.h"
#include "support/Compiler.h"
#include "support/SpinWait.h"
#include "threads/ThreadContext.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <thread>

namespace thinlocks {

/// Whether inflated locks may be deflated back to thin.
///
/// The paper keeps inflation permanent: "This discipline prevents
/// thrashing between the thin and fat states.  It also considerably
/// simplifies the implementation."  WhenQuiescent implements the
/// follow-up direction (deflation at quiescence, cf. Onodera &
/// Kawachiya's Tasuki locks): when the last hold of a fat lock is
/// released with an empty entry queue and wait set, the monitor is
/// *retired* and the object's word returns to thin-unlocked.  Threads
/// holding a stale fat word bounce off the retired monitor and re-read
/// the word.  The bench_deflation ablation measures both sides of the
/// paper's tradeoff: recovery of thin-lock speed after one contention
/// burst vs. inflate/deflate thrashing under repeated contention.
enum class DeflationPolicy : uint8_t { Never, WhenQuiescent };

/// Thin-lock protocol over a MonitorTable, parameterized by a fence /
/// unlock policy.
template <typename Policy> class ThinLockImpl {
public:
  /// \param Monitors fat-lock table used once objects inflate.
  /// \param Stats optional instrumentation sink; null disables recording.
  /// \param Deflation whether fat locks retire at quiescence (the paper's
  /// discipline is Never).
  explicit ThinLockImpl(MonitorTable &Monitors, LockStats *Stats = nullptr,
                        DeflationPolicy Deflation = DeflationPolicy::Never)
      : Monitors(Monitors), Stats(Stats), Deflation(Deflation) {}

  ThinLockImpl(const ThinLockImpl &) = delete;
  ThinLockImpl &operator=(const ThinLockImpl &) = delete;

  static const char *protocolName() { return Policy::Name; }

  /// Acquires \p Obj's monitor for \p Thread (recursively if already
  /// held).  The paper's 17-instruction fast path is the inline portion.
  TL_ALWAYS_INLINE void lock(Object *Obj, const ThreadContext &Thread) {
    assert(Thread.isValid() && "locking with an unattached thread");
    std::atomic<uint32_t> &Word = Obj->lockWord();
    // Old value per §2.3.1: load the lock word and mask to the header
    // bits — i.e. guess "unlocked".
    uint32_t Old =
        Word.load(std::memory_order_relaxed) & lockword::HeaderBitsMask;
    uint32_t Desired = Old | Thread.shiftedIndex();
    if (TL_LIKELY(Word.compare_exchange_strong(Old, Desired,
                                               std::memory_order_acquire,
                                               std::memory_order_relaxed))) {
      Policy::afterAcquireFence();
      if (TL_UNLIKELY(Stats != nullptr)) {
        Stats->recordFastPath();
        Stats->recordAcquire(1);
      }
      return;
    }
    // The failed CAS loaded the current word into Old.  §2.3.3: check
    // the next most likely case — nested locking by the owner — inline,
    // and bump the count with a plain store (owner-only discipline; no
    // fence needed, we are already inside the critical section).
    if (TL_LIKELY(lockword::canNestInline(Old, Thread.shiftedIndex()))) {
      Word.store(Old + lockword::CountUnit, std::memory_order_relaxed);
      if (TL_UNLIKELY(Stats != nullptr))
        Stats->recordAcquire(lockword::countOf(Old) + 2);
      return;
    }
    lockSlow(Obj, Thread);
  }

  /// Releases one hold of \p Obj's monitor.  Asserts ownership; the VM
  /// uses unlockChecked() instead to surface IllegalMonitorState.
  TL_ALWAYS_INLINE void unlock(Object *Obj, const ThreadContext &Thread) {
    std::atomic<uint32_t> &Word = Obj->lockWord();
    uint32_t Value = Word.load(std::memory_order_relaxed);
    uint32_t Shifted = Thread.shiftedIndex();
    if (TL_LIKELY(lockword::isSingleHoldByOwner(Value, Shifted))) {
      // §2.3.2: owner-only discipline makes a plain store sufficient.
      Policy::beforeReleaseFence();
      storeRelease(Word, Value, Value & lockword::HeaderBitsMask);
      if (TL_UNLIKELY(Stats != nullptr))
        Stats->recordRelease();
      return;
    }
    // Nested unlock (§2.3.3): thin, ours, count > 0 — decrement with a
    // plain store.  The monitor stays held, so no release fence either.
    if (TL_LIKELY(lockword::isThinOwnedBy(Value, Shifted))) {
      Word.store(Value - lockword::CountUnit, std::memory_order_relaxed);
      if (TL_UNLIKELY(Stats != nullptr))
        Stats->recordRelease();
      return;
    }
    unlockSlow(Obj, Thread);
  }

  /// Non-asserting unlock. \returns false if \p Thread does not own the
  /// monitor (leaving it untouched).
  bool unlockChecked(Object *Obj, const ThreadContext &Thread) {
    std::atomic<uint32_t> &Word = Obj->lockWord();
    uint32_t Value = Word.load(std::memory_order_relaxed);
    uint32_t Shifted = Thread.shiftedIndex();
    if (lockword::isFat(Value)) {
      FatLock *Fat = Monitors.get(lockword::monitorIndexOf(Value));
      if (Deflation == DeflationPolicy::Never) {
        bool Ok = Fat->unlockChecked(Thread);
        if (Ok && Stats)
          Stats->recordRelease();
        return Ok;
      }
      switch (Fat->unlockAndTryRetire(Thread)) {
      case FatLock::ReleaseResult::NotOwner:
        return false;
      case FatLock::ReleaseResult::Released:
        if (Stats)
          Stats->recordRelease();
        return true;
      case FatLock::ReleaseResult::RetiredNow:
        // Deflate: we were the only user; re-publish the thin word.
        // Only the (final) owner performs this store, preserving the
        // owner-only write discipline.  The retired monitor's table
        // slot is intentionally never reused: threads may still hold
        // the stale index and must resolve it to the *retired* monitor
        // to learn they should retry.
        Word.store(lockword::headerBitsOf(Value),
                   std::memory_order_release);
        if (Stats) {
          Stats->recordRelease();
          Stats->recordDeflation();
        }
        return true;
      }
      return false; // Unreachable; switch is exhaustive.
    }
    if (!lockword::isThinOwnedBy(Value, Shifted))
      return false;
    Policy::beforeReleaseFence();
    if (lockword::countOf(Value) == 0)
      storeRelease(Word, Value, Value & lockword::HeaderBitsMask);
    else
      storeRelease(Word, Value, Value - lockword::CountUnit);
    if (Stats)
      Stats->recordRelease();
    return true;
  }

  /// Attempts to acquire without blocking (recursion always succeeds up
  /// to the thin count limit; a contended thin lock fails without
  /// inflating).
  bool tryLock(Object *Obj, const ThreadContext &Thread) {
    std::atomic<uint32_t> &Word = Obj->lockWord();
    uint32_t Shifted = Thread.shiftedIndex();
  Retry:
    uint32_t Value = Word.load(std::memory_order_relaxed);
    if (lockword::isFat(Value)) {
      FatLock *Fat = Monitors.get(lockword::monitorIndexOf(Value));
      switch (Fat->tryLockStatus(Thread)) {
      case FatLock::TryResult::Acquired:
        if (Stats) {
          Stats->recordFatPath();
          Stats->recordAcquire(Fat->holdCount());
        }
        return true;
      case FatLock::TryResult::Busy:
        return false;
      case FatLock::TryResult::Retired:
        // Deflated under us; the word is changing. Yield so the
        // deflater can publish, then re-read.
        std::this_thread::yield();
        goto Retry;
      }
    }
    if (lockword::isUnlocked(Value)) {
      uint32_t Old = Value & lockword::HeaderBitsMask;
      if (Word.compare_exchange_strong(Old, Old | Shifted,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        Policy::afterAcquireFence();
        if (Stats) {
          Stats->recordFastPath();
          Stats->recordAcquire(1);
        }
        return true;
      }
      return false;
    }
    if (lockword::canNestInline(Value, Shifted)) {
      Word.store(Value + lockword::CountUnit, std::memory_order_relaxed);
      if (Stats)
        Stats->recordAcquire(lockword::countOf(Value) + 2);
      return true;
    }
    return false;
  }

  /// \returns true if \p Thread owns \p Obj's monitor.
  bool holdsLock(Object *Obj, const ThreadContext &Thread) const {
    uint32_t Value = Obj->lockWord().load(std::memory_order_relaxed);
    if (lockword::isFat(Value))
      return Monitors.get(lockword::monitorIndexOf(Value))->heldBy(Thread);
    return lockword::isThinOwnedBy(Value, Thread.shiftedIndex());
  }

  /// \returns \p Thread's hold count on \p Obj (0 if not the owner).
  uint32_t lockDepth(Object *Obj, const ThreadContext &Thread) const {
    uint32_t Value = Obj->lockWord().load(std::memory_order_relaxed);
    if (lockword::isFat(Value)) {
      FatLock *Fat = Monitors.get(lockword::monitorIndexOf(Value));
      return Fat->heldBy(Thread) ? Fat->holdCount() : 0;
    }
    if (!lockword::isThinOwnedBy(Value, Thread.shiftedIndex()))
      return 0;
    return lockword::countOf(Value) + 1;
  }

  /// Java Object.wait(): always inflates a thin lock first, because only
  /// fat locks have wait queues (paper §2.3: thin locks are for objects
  /// that "do not have wait, notify, or notifyAll operations performed
  /// upon them").
  WaitStatus wait(Object *Obj, const ThreadContext &Thread,
                  int64_t TimeoutNanos = -1) {
    std::atomic<uint32_t> &Word = Obj->lockWord();
    uint32_t Value = Word.load(std::memory_order_relaxed);
    FatLock *Fat = nullptr;
    if (lockword::isFat(Value)) {
      Fat = Monitors.get(lockword::monitorIndexOf(Value));
      if (!Fat->heldBy(Thread))
        return WaitStatus::NotOwner;
    } else {
      if (!lockword::isThinOwnedBy(Value, Thread.shiftedIndex()))
        return WaitStatus::NotOwner;
      Fat = inflateOwned(Obj, Thread, Value, lockword::countOf(Value) + 1);
      if (Stats)
        Stats->recordWaitInflation();
    }
    return Fat->wait(Thread, TimeoutNanos) == FatLock::WaitResult::Notified
               ? WaitStatus::Notified
               : WaitStatus::TimedOut;
  }

  /// Java Object.notify().  On a thin lock held by the caller this is a
  /// no-op: a thin lock cannot have waiters (wait() inflates).
  NotifyStatus notify(Object *Obj, const ThreadContext &Thread) {
    return notifyImpl(Obj, Thread, /*All=*/false);
  }

  /// Java Object.notifyAll().
  NotifyStatus notifyAll(Object *Obj, const ThreadContext &Thread) {
    return notifyImpl(Obj, Thread, /*All=*/true);
  }

  /// \returns true once \p Obj's lock has been inflated (it never
  /// deflates — paper: "Once an object's lock is inflated, it remains
  /// inflated for the lifetime of the object").
  bool isInflated(const Object *Obj) const {
    return lockword::isFat(Obj->lockWord().load(std::memory_order_relaxed));
  }

  /// \returns the fat lock behind \p Obj, or nullptr while still thin.
  FatLock *monitorOf(const Object *Obj) const {
    uint32_t Value = Obj->lockWord().load(std::memory_order_acquire);
    if (!lockword::isFat(Value))
      return nullptr;
    return Monitors.get(lockword::monitorIndexOf(Value));
  }

  /// Out-of-line entry points for the paper's "FnCall" variant (§3.5):
  /// same algorithm, but the fast path pays a call.
  TL_NOINLINE void lockOutOfLine(Object *Obj, const ThreadContext &Thread) {
    lock(Obj, Thread);
  }
  TL_NOINLINE void unlockOutOfLine(Object *Obj,
                                   const ThreadContext &Thread) {
    unlock(Obj, Thread);
  }

  LockStats *stats() const { return Stats; }
  void setStats(LockStats *NewStats) { Stats = NewStats; }
  MonitorTable &monitorTable() { return Monitors; }

private:
  /// Release a thin word the policy's way: plain store (the paper's
  /// discipline) or compare-and-swap (the UnlkC&S ablation).
  TL_ALWAYS_INLINE void storeRelease(std::atomic<uint32_t> &Word,
                                     uint32_t Expected, uint32_t Desired) {
    if constexpr (Policy::UseCasUnlock) {
      [[maybe_unused]] bool Ok = Word.compare_exchange_strong(
          Expected, Desired, std::memory_order_release,
          std::memory_order_relaxed);
      assert(Ok && "owner-only discipline violated: unlock CAS failed");
    } else {
      Word.store(Desired, std::memory_order_release);
    }
  }

  TL_NOINLINE void lockSlow(Object *Obj, const ThreadContext &Thread) {
    std::atomic<uint32_t> &Word = Obj->lockWord();
    uint32_t Shifted = Thread.shiftedIndex();
    SpinWait Spinner;
    for (;;) {
      uint32_t Value = Word.load(std::memory_order_acquire);

      if (lockword::isFat(Value)) {
        FatLock *Fat = Monitors.get(lockword::monitorIndexOf(Value));
        if (TL_UNLIKELY(!Fat->lockIfLive(Thread))) {
          // Monitor retired by deflation; back off briefly (the
          // deflater has yet to store the fresh thin word), re-read.
          Spinner.spinOnce();
          continue;
        }
        Policy::afterAcquireFence();
        if (Stats) {
          Stats->recordFatPath();
          Stats->recordAcquire(Fat->holdCount());
          Stats->recordSpinIterations(Spinner.totalSpins());
        }
        return;
      }

      if (lockword::isThinOwnedBy(Value, Shifted)) {
        uint32_t Count = lockword::countOf(Value);
        if (Count < lockword::MaxCount) {
          // §2.3.3: nested lock — owner-only plain store of word + 256.
          Word.store(Value + lockword::CountUnit, std::memory_order_relaxed);
          if (Stats)
            Stats->recordAcquire(Count + 2);
          return;
        }
        // 257th hold: inflate, transferring the 256 existing holds plus
        // this acquisition.
        FatLock *Fat = inflateOwned(Obj, Thread, Value, Count + 2);
        (void)Fat;
        if (Stats) {
          Stats->recordOverflowInflation();
          Stats->recordAcquire(Count + 2);
        }
        return;
      }

      if (lockword::isUnlocked(Value)) {
        uint32_t Old = Value & lockword::HeaderBitsMask;
        if (Word.compare_exchange_weak(Old, Old | Shifted,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
          Policy::afterAcquireFence();
          // §2.3.4: we reached here because another thread held the
          // lock; by the locality-of-contention principle, inflate now
          // so future contention uses the fat lock's queues.
          inflateOwned(Obj, Thread, Old | Shifted, 1);
          if (Stats) {
            Stats->recordContentionInflation();
            Stats->recordAcquire(1);
            Stats->recordSpinIterations(Spinner.totalSpins());
          }
          return;
        }
        continue; // Lost a race; reevaluate the fresh value.
      }

      // Thin and owned by another thread: spin with backoff (§2.3.4).
      Spinner.spinOnce();
    }
  }

  TL_NOINLINE void unlockSlow(Object *Obj, const ThreadContext &Thread) {
    [[maybe_unused]] bool Ok = unlockChecked(Obj, Thread);
    assert(Ok && "unlock of a monitor the thread does not own");
  }

  /// Inflates a thin lock the calling thread owns: allocates a fat lock,
  /// transfers \p Holds holds, and publishes the fat lock word.  Only the
  /// owner may call this (it writes the lock word with a plain store).
  FatLock *inflateOwned(Object *Obj, const ThreadContext &Thread,
                        uint32_t CurrentWord, uint32_t Holds) {
    assert(lockword::isThinOwnedBy(CurrentWord, Thread.shiftedIndex()) &&
           "inflating a lock the thread does not own");
    uint32_t Index = Monitors.allocate();
    assert(Index != 0 && "monitor index space exhausted");
    FatLock *Fat = Monitors.get(Index);
    Fat->lockWithCount(Thread, Holds);
    uint32_t HeaderBits = lockword::headerBitsOf(CurrentWord);
    Obj->lockWord().store(lockword::makeFat(Index, HeaderBits),
                          std::memory_order_release);
    return Fat;
  }

  NotifyStatus notifyImpl(Object *Obj, const ThreadContext &Thread,
                          bool All) {
    uint32_t Value = Obj->lockWord().load(std::memory_order_relaxed);
    if (lockword::isFat(Value)) {
      FatLock *Fat = Monitors.get(lockword::monitorIndexOf(Value));
      if (!Fat->heldBy(Thread))
        return NotifyStatus::NotOwner;
      if (All)
        Fat->notifyAll(Thread);
      else
        Fat->notify(Thread);
      return NotifyStatus::Ok;
    }
    // Thin lock: if we own it there can be no waiters, so notify is a
    // legal no-op; otherwise it is an IllegalMonitorState.
    return lockword::isThinOwnedBy(Value, Thread.shiftedIndex())
               ? NotifyStatus::Ok
               : NotifyStatus::NotOwner;
  }

  MonitorTable &Monitors;
  LockStats *Stats;
  DeflationPolicy Deflation;
};

/// The shipping configuration (paper §3.5.1): per-operation dynamic
/// machine-type check.
using ThinLockManager = ThinLockImpl<DynamicPolicy>;
/// §3.5 ablation configurations.
using ThinLockUP = ThinLockImpl<UniprocessorPolicy>;
using ThinLockMP = ThinLockImpl<MultiprocessorPolicy>;
using ThinLockCasUnlock = ThinLockImpl<CasUnlockPolicy>;

static_assert(SyncProtocol<ThinLockManager>,
              "ThinLockManager must satisfy the protocol concept");

extern template class ThinLockImpl<DynamicPolicy>;
extern template class ThinLockImpl<UniprocessorPolicy>;
extern template class ThinLockImpl<MultiprocessorPolicy>;
extern template class ThinLockImpl<CasUnlockPolicy>;

} // namespace thinlocks

#endif // THINLOCKS_CORE_THINLOCK_H

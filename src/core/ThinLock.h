//===- core/ThinLock.h - The thin lock protocol ----------------*- C++ -*-===//
///
/// \file
/// The paper's contribution: monitors implemented in 24 bits of the
/// object header, layered as "a veneer over the existing heavy-weight
/// locking facilities" (the FatLock/MonitorTable substrate).
///
/// Protocol summary (paper §2.3):
///  - lock: one compare-and-swap of (header bits) -> (my shifted index |
///    header bits).  Success means the object was unlocked; the count
///    field (holds-1) is already correct at zero.
///  - nested lock: the XOR check recognizes "thin, mine, count < 255";
///    the count is incremented with a plain store — no atomic needed,
///    because only the owner ever writes an owned thin lock word.
///  - unlock: compare against "mine, count 0" and plain-store the header
///    bits back; nested unlock decrements with a plain store.
///  - contention: the acquirer spin-waits (with backoff and yields) for
///    the word to become unlocked, CASes it to itself, and *inflates*:
///    allocates a fat lock, transfers its hold, and publishes
///    (shape bit | monitor index).  Inflation is permanent.
///  - count overflow (257th hold) and wait() also inflate.
///
/// Robustness layers beyond the paper:
///  - MonitorTable exhaustion degrades to the shared emergency monitor
///    instead of asserting (see inflateOwned);
///  - contention publishes waits-for edges and runs a deadlock watchdog
///    (core/Deadlock.h) that reports the cycle before aborting;
///  - tryLockFor() bounds an acquisition and distinguishes TimedOut from
///    a confirmed Deadlock;
///  - failpoint sites (support/FailPoint.h) let tests force the rare
///    interleavings; they compile to nothing in normal builds.
///
/// ThinLockImpl is templated over a fence/unlock policy (core/Variants.h)
/// so the paper's §3.5 tradeoff variants share one implementation.
/// ThinLockManager (= ThinLockImpl<DynamicPolicy>) is the configuration
/// the paper shipped and the one examples and the VM use.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_CORE_THINLOCK_H
#define THINLOCKS_CORE_THINLOCK_H

#include "core/Deadlock.h"
#include "core/LockProtocol.h"
#include "core/LockStats.h"
#include "core/LockWord.h"
#include "core/Variants.h"
#include "fatlock/MonitorTable.h"
#include "heap/Object.h"
#include "obs/EventRing.h"
#include "park/ParkingLot.h"
#include "policy/PolicyStore.h"
#include "support/Compiler.h"
#include "support/FailPoint.h"
#include "support/Fatal.h"
#include "support/SpinWait.h"
#include "threads/ThreadContext.h"
#include "threads/ThreadRegistry.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <thread>

#if defined(THINLOCKS_FASTPATH_GUARD_PROBE)
/// Negative-test seam for tools/lint/fastpath_guard.py: an opaque
/// external call compiled into the lock/unlock fast path so the guard
/// demonstrably fails on an object built with this macro (see
/// tests/fastpath_guard_test.sh).  Never defined in real builds.
extern "C" void thinlocksGuardProbeExternalCall();
#define TL_FASTPATH_GUARD_PROBE() thinlocksGuardProbeExternalCall()
#else
#define TL_FASTPATH_GUARD_PROBE() ((void)0)
#endif

namespace thinlocks {

/// Whether inflated locks may be deflated back to thin.
///
/// The paper keeps inflation permanent: "This discipline prevents
/// thrashing between the thin and fat states.  It also considerably
/// simplifies the implementation."  WhenQuiescent implements the
/// follow-up direction (deflation at quiescence, cf. Onodera &
/// Kawachiya's Tasuki locks): when the last hold of a fat lock is
/// released with an empty entry queue and wait set, the monitor is
/// *retired* and the object's word returns to thin-unlocked.  Threads
/// holding a stale fat word bounce off the retired monitor and re-read
/// the word.  The bench_deflation ablation measures both sides of the
/// paper's tradeoff: recovery of thin-lock speed after one contention
/// burst vs. inflate/deflate thrashing under repeated contention.
enum class DeflationPolicy : uint8_t { Never, WhenQuiescent };

/// Tuning for the contention escalation ladder (pause -> yield -> park;
/// see SpinPolicy) and the deadlock watchdog layered on top of it.
struct ContentionOptions {
  /// The spin/yield/park ladder used while contending on a thin word.
  /// Every slow path (lockSlow, tryLock's fat-Retired retry, tryLockFor)
  /// escalates on this one policy.
  SpinPolicy Spin = DefaultSpinPolicy;
  /// Run owner-graph cycle walks from blocked lock() calls.  (tryLockFor
  /// always checks at its deadline regardless of this flag.)
  bool DeadlockWatchdog = true;
  /// On a confirmed cycle in lock(): terminate with the formatted report
  /// (true), or record it in LockStats and keep waiting (false — for
  /// systems that prefer a hung thread to a dead process).
  bool AbortOnDeadlock = true;
  /// Thin-word contention: parked rounds between cycle walks.  At the
  /// default 2ms park cap, 512 parks is roughly one second blocked.
  uint64_t WatchdogParkPeriod = 512;
  /// Fat-lock contention: the bounded wait slice, after which the
  /// watchdog walks the graph and re-queues.  Nanoseconds.
  int64_t WatchdogNanos = 1'000'000'000;
};

/// Thin-lock protocol over a MonitorTable, parameterized by a fence /
/// unlock policy.
template <typename Policy> class ThinLockImpl {
public:
  /// \param Monitors fat-lock table used once objects inflate.
  /// \param Stats optional instrumentation sink; null disables recording.
  /// \param Deflation whether fat locks retire at quiescence (the paper's
  /// discipline is Never).
  /// \param Options contention-ladder and deadlock-watchdog tuning.
  explicit ThinLockImpl(MonitorTable &Monitors, LockStats *Stats = nullptr,
                        DeflationPolicy Deflation = DeflationPolicy::Never,
                        ContentionOptions Options = ContentionOptions())
      : Monitors(Monitors), Stats(Stats), Deflation(Deflation),
        Options(Options) {}

  ThinLockImpl(const ThinLockImpl &) = delete;
  ThinLockImpl &operator=(const ThinLockImpl &) = delete;

  static const char *protocolName() { return Policy::Name; }

  /// Wires the adaptive policy engine's decision store into the SLOW
  /// paths (lockSlow / tryLockFor spin-class selection, eager inflation,
  /// the KeepFat deflation veto).  The fast paths never consult it —
  /// the invariant tools/lint/fastpath_guard.py proves.  Null (the
  /// default) restores purely static behavior.  \p Store must outlive
  /// this manager's last use.
  void setPolicyStore(const policy::PolicyStore *Store) { Policies = Store; }

  /// Acquires \p Obj's monitor for \p Thread (recursively if already
  /// held).  The paper's 17-instruction fast path is the inline portion.
  TL_ALWAYS_INLINE void lock(Object *Obj, const ThreadContext &Thread) {
    assert(Thread.isValid() && "locking with an unattached thread");
    TL_FASTPATH_GUARD_PROBE();
    std::atomic<uint32_t> &Word = Obj->lockWord();
    // Old value per §2.3.1: load the lock word and mask to the header
    // bits — i.e. guess "unlocked".
    uint32_t Old =
        Word.load(std::memory_order_relaxed) & lockword::HeaderBitsMask;
    uint32_t Desired = Old | Thread.shiftedIndex();
    bool Acquired;
    if (TL_FAILPOINT(ThinLockInitialCas)) {
      // Injected CAS failure: behave exactly like losing the race — the
      // hardware CAS would have reloaded the current word into Old.
      Old = Word.load(std::memory_order_relaxed);
      Acquired = false;
    } else {
      Acquired = Word.compare_exchange_strong(Old, Desired,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed);
    }
    if (TL_LIKELY(Acquired)) {
      Policy::afterAcquireFence();
      if (TL_UNLIKELY(Stats != nullptr))
        Stats->recordFastPathAcquire();
      return;
    }
    // The failed CAS loaded the current word into Old.  §2.3.3: check
    // the next most likely case — nested locking by the owner — inline,
    // and bump the count with a plain store (owner-only discipline; no
    // fence needed, we are already inside the critical section).
    if (TL_LIKELY(lockword::canNestInline(Old, Thread.shiftedIndex()))) {
      Word.store(Old + lockword::CountUnit, std::memory_order_relaxed);
      if (TL_UNLIKELY(Stats != nullptr))
        Stats->recordAcquire(lockword::countOf(Old) + 2);
      return;
    }
    lockSlow(Obj, Thread);
  }

  /// Releases one hold of \p Obj's monitor.  Asserts ownership; the VM
  /// uses unlockChecked() instead to surface IllegalMonitorState.
  TL_ALWAYS_INLINE void unlock(Object *Obj, const ThreadContext &Thread) {
    TL_FASTPATH_GUARD_PROBE();
    std::atomic<uint32_t> &Word = Obj->lockWord();
    uint32_t Value = Word.load(std::memory_order_relaxed);
    uint32_t Shifted = Thread.shiftedIndex();
    if (TL_LIKELY(lockword::isSingleHoldByOwner(Value, Shifted))) {
      // §2.3.2: owner-only discipline makes a plain store sufficient.
      Policy::beforeReleaseFence();
      storeRelease(Word, Value, Value & lockword::HeaderBitsMask);
      if (TL_UNLIKELY(Stats != nullptr))
        Stats->recordRelease();
      return;
    }
    // Nested unlock (§2.3.3): thin, ours, count > 0 — decrement with a
    // plain store.  The monitor stays held, so no release fence either.
    if (TL_LIKELY(lockword::isThinOwnedBy(Value, Shifted))) {
      Word.store(Value - lockword::CountUnit, std::memory_order_relaxed);
      if (TL_UNLIKELY(Stats != nullptr))
        Stats->recordRelease();
      return;
    }
    unlockSlow(Obj, Thread);
  }

  /// Non-asserting unlock. \returns false if \p Thread does not own the
  /// monitor (leaving it untouched).
  bool unlockChecked(Object *Obj, const ThreadContext &Thread) {
    std::atomic<uint32_t> &Word = Obj->lockWord();
    uint32_t Value = Word.load(std::memory_order_relaxed);
    uint32_t Shifted = Thread.shiftedIndex();
    if (lockword::isFat(Value)) {
      FatLock *Fat = Monitors.resolve(Value);
      // KeepFat is the policy engine's veto on quiescent deflation: the
      // profiler saw this object thrash thin<->fat, so retiring its
      // monitor would only buy the next contention burst an inflation.
      if (Deflation == DeflationPolicy::Never ||
          TL_UNLIKELY(policyFor(Obj).KeepFat)) {
        bool Ok = Fat->unlockChecked(Thread);
        if (Ok && Stats)
          Stats->recordRelease();
        return Ok;
      }
      switch (Fat->unlockAndTryRetire(Thread)) {
      case FatLock::ReleaseResult::NotOwner:
        return false;
      case FatLock::ReleaseResult::Released:
        if (Stats)
          Stats->recordRelease();
        return true;
      case FatLock::ReleaseResult::RetiredNow:
        // Deflate: we were the only user; re-publish the thin word.
        // Only the (final) owner performs this store, preserving the
        // owner-only write discipline.  The retired monitor's table
        // slot is intentionally never reused: threads may still hold
        // the stale index and must resolve it to the *retired* monitor
        // to learn they should retry.
        Word.store(lockword::headerBitsOf(Value),
                   std::memory_order_release);
        // Publish-and-wake: threads that saw the stale fat word are
        // lot-parked on the object waiting for this store.
        ParkingLot::global().unparkAll(Obj);
        Monitors.noteRetirement();
        if (obs::tracingEnabled())
          recordEvent(Obj, Thread, obs::EventKind::Deflate);
        if (Stats) {
          Stats->recordRelease();
          Stats->recordDeflation();
        }
        return true;
      }
      return false; // Unreachable; switch is exhaustive.
    }
    if (!lockword::isThinOwnedBy(Value, Shifted))
      return false;
    Policy::beforeReleaseFence();
    if (lockword::countOf(Value) == 0)
      storeRelease(Word, Value, Value & lockword::HeaderBitsMask);
    else
      storeRelease(Word, Value, Value - lockword::CountUnit);
    if (Stats)
      Stats->recordRelease();
    return true;
  }

  /// Attempts to acquire without blocking (recursion always succeeds —
  /// the count-saturated 257th hold inflates, like lock()'s; a
  /// *contended* thin lock fails without inflating).
  bool tryLock(Object *Obj, const ThreadContext &Thread) {
    std::atomic<uint32_t> &Word = Obj->lockWord();
    uint32_t Shifted = Thread.shiftedIndex();
    SpinWait Spinner(Options.Spin);
    for (;;) {
      uint32_t Value = Word.load(std::memory_order_relaxed);
      if (lockword::isFat(Value)) {
        FatLock *Fat = Monitors.resolve(Value);
        switch (Fat->tryLockStatus(Thread)) {
        case FatLock::TryResult::Acquired:
          if (Stats) {
            Stats->recordFatPath();
            Stats->recordAcquire(Fat->holdCount());
          }
          return true;
        case FatLock::TryResult::Busy:
          return false;
        case FatLock::TryResult::Retired:
          // Deflated under us; the word is changing.  Back off on the
          // escalation ladder (pause -> yield -> park) until the
          // deflater publishes the restored header: a bare yield loop
          // burns CPU against a descheduled deflater and never parks.
          backoffOnWord(Obj, Thread, Spinner, Value);
          continue;
        }
      }
      if (lockword::isUnlocked(Value)) {
        uint32_t Old = Value & lockword::HeaderBitsMask;
        if (Word.compare_exchange_strong(Old, Old | Shifted,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          Policy::afterAcquireFence();
          if (Stats)
            Stats->recordFastPathAcquire();
          return true;
        }
        return false;
      }
      if (lockword::canNestInline(Value, Shifted)) {
        Word.store(Value + lockword::CountUnit, std::memory_order_relaxed);
        if (Stats)
          Stats->recordAcquire(lockword::countOf(Value) + 2);
        return true;
      }
      if (lockword::isThinOwnedBy(Value, Shifted)) {
        // Ours with the count field saturated at 255 (256 holds): the
        // 257th recursive acquisition must succeed by inflating, exactly
        // as lock() does — recursion can never fail a tryLock.  (The
        // paper's count-overflow inflation cause, §2.3.)
        uint32_t Count = lockword::countOf(Value);
        inflateOwned(Obj, Thread, Value, Count + 2,
                     obs::InflateCause::Overflow);
        if (Stats) {
          Stats->recordOverflowInflation();
          Stats->recordAcquire(Count + 2);
        }
        return true;
      }
      return false;
    }
  }

  /// Bounded acquisition: like lock(), but gives up after
  /// \p TimeoutNanos.  At the deadline the owner graph is walked; a
  /// double-confirmed cycle yields TimedLockStatus::Deadlock (and fills
  /// \p Report when non-null) instead of a bare timeout, letting callers
  /// break cycles deliberately rather than guessing.  A non-positive
  /// timeout degenerates to tryLock() plus the deadlock check.
  TimedLockStatus tryLockFor(Object *Obj, const ThreadContext &Thread,
                             int64_t TimeoutNanos,
                             DeadlockReport *Report = nullptr) {
    assert(Thread.isValid() && "locking with an unattached thread");
    // Uncontended / recursive cases never need the deadline machinery.
    if (tryLock(Obj, Thread)) {
      maybeEagerInflate(Obj, Thread);
      return TimedLockStatus::Acquired;
    }

    const auto Deadline = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(TimeoutNanos);
    std::atomic<uint32_t> &Word = Obj->lockWord();
    uint32_t Shifted = Thread.shiftedIndex();
    const policy::LockPolicy Pol = policyFor(Obj);
    SpinWait Spinner(policy::spinPolicyFor(Pol.Spin, Options.Spin));
    BlockedOnScope Blocked(Thread, Obj);
    bool SawContention = false;
    const bool Tracing = obs::tracingEnabled();
    const uint64_t TraceT0 = Tracing ? obs::monotonicNanos() : 0;
    const uint64_t TraceParks =
        Tracing && Thread.parker() ? Thread.parker()->blockedParkCount() : 0;
    for (;;) {
      uint32_t Value = Word.load(std::memory_order_acquire);

      if (lockword::isFat(Value)) {
        FatLock *Fat = Monitors.resolve(Value);
        int64_t Remaining = std::chrono::duration_cast<
                                std::chrono::nanoseconds>(
                                Deadline - std::chrono::steady_clock::now())
                                .count();
        if (Remaining <= 0)
          return deadlineExpired(Obj, Thread, Report);
        switch (Fat->lockIfLiveFor(Thread, Remaining)) {
        case FatLock::TimedResult::Acquired:
          Policy::afterAcquireFence();
          if (TL_UNLIKELY(Tracing))
            recordContendedAcquire(Obj, Thread, TraceT0, TraceParks,
                                   Fat->entryQueueLength());
          if (Stats) {
            Stats->recordFatPath();
            Stats->recordAcquire(Fat->holdCount());
            Stats->recordSpinIterations(Spinner.totalSpins());
          }
          return TimedLockStatus::Acquired;
        case FatLock::TimedResult::Retired:
          backoffOnWord(Obj, Thread, Spinner, Value, Deadline);
          continue;
        case FatLock::TimedResult::TimedOut:
          return deadlineExpired(Obj, Thread, Report);
        }
      }

      if (lockword::isThinOwnedBy(Value, Shifted)) {
        uint32_t Count = lockword::countOf(Value);
        if (Count < lockword::MaxCount) {
          Word.store(Value + lockword::CountUnit,
                     std::memory_order_relaxed);
          if (Stats)
            Stats->recordAcquire(Count + 2);
          return TimedLockStatus::Acquired;
        }
        inflateOwned(Obj, Thread, Value, Count + 2,
                     obs::InflateCause::Overflow);
        if (Stats) {
          Stats->recordOverflowInflation();
          Stats->recordAcquire(Count + 2);
        }
        return TimedLockStatus::Acquired;
      }

      if (lockword::isUnlocked(Value)) {
        uint32_t Old = Value & lockword::HeaderBitsMask;
        if (Word.compare_exchange_weak(Old, Old | Shifted,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
          Policy::afterAcquireFence();
          // §2.3.4 locality of contention, as in lockSlow(): only
          // inflate when the bounded wait actually met a contender — or
          // when the policy engine already knows this object re-inflates
          // (EagerInflate skips the remainder of the thin dance).
          if (SawContention || Pol.EagerInflate) {
            inflateOwned(Obj, Thread, Old | Shifted, 1,
                         obs::InflateCause::Contention);
            if (TL_UNLIKELY(Tracing))
              recordContendedAcquire(Obj, Thread, TraceT0, TraceParks, 0);
            if (Stats)
              Stats->recordContentionInflation();
          }
          if (Stats) {
            Stats->recordAcquire(1);
            Stats->recordSpinIterations(Spinner.totalSpins());
          }
          return TimedLockStatus::Acquired;
        }
        continue; // Lost a race; reevaluate the fresh value.
      }

      SawContention = true;
      if (std::chrono::steady_clock::now() >= Deadline)
        return deadlineExpired(Obj, Thread, Report);
      backoffOnWord(Obj, Thread, Spinner, Value, Deadline);
    }
  }

  /// \returns true if \p Thread owns \p Obj's monitor.
  bool holdsLock(Object *Obj, const ThreadContext &Thread) const {
    uint32_t Value = Obj->lockWord().load(std::memory_order_relaxed);
    if (lockword::isFat(Value))
      return Monitors.resolve(Value)->heldBy(Thread);
    return lockword::isThinOwnedBy(Value, Thread.shiftedIndex());
  }

  /// \returns \p Thread's hold count on \p Obj (0 if not the owner).
  uint32_t lockDepth(Object *Obj, const ThreadContext &Thread) const {
    uint32_t Value = Obj->lockWord().load(std::memory_order_relaxed);
    if (lockword::isFat(Value)) {
      FatLock *Fat = Monitors.resolve(Value);
      return Fat->heldBy(Thread) ? Fat->holdCount() : 0;
    }
    if (!lockword::isThinOwnedBy(Value, Thread.shiftedIndex()))
      return 0;
    return lockword::countOf(Value) + 1;
  }

  /// Java Object.wait(): always inflates a thin lock first, because only
  /// fat locks have wait queues (paper §2.3: thin locks are for objects
  /// that "do not have wait, notify, or notifyAll operations performed
  /// upon them").
  WaitStatus wait(Object *Obj, const ThreadContext &Thread,
                  int64_t TimeoutNanos = -1) {
    std::atomic<uint32_t> &Word = Obj->lockWord();
    uint32_t Value = Word.load(std::memory_order_relaxed);
    FatLock *Fat = nullptr;
    if (lockword::isFat(Value)) {
      Fat = Monitors.resolve(Value);
      if (!Fat->heldBy(Thread))
        return WaitStatus::NotOwner;
    } else {
      if (!lockword::isThinOwnedBy(Value, Thread.shiftedIndex()))
        return WaitStatus::NotOwner;
      Fat = inflateOwned(Obj, Thread, Value, lockword::countOf(Value) + 1,
                         obs::InflateCause::Wait);
      if (Stats)
        Stats->recordWaitInflation();
    }
    const bool Tracing = obs::tracingEnabled();
    const uint64_t TraceT0 = Tracing ? obs::monotonicNanos() : 0;
    bool Notified =
        Fat->wait(Thread, TimeoutNanos) == FatLock::WaitResult::Notified;
    if (TL_UNLIKELY(Tracing)) {
      uint64_t Now = obs::monotonicNanos();
      recordEvent(Obj, Thread, obs::EventKind::Wait,
                  Now >= TraceT0 ? Now - TraceT0 : 0, Notified ? 1 : 0);
    }
    return Notified ? WaitStatus::Notified : WaitStatus::TimedOut;
  }

  /// Java Object.notify().  On a thin lock held by the caller this is a
  /// no-op: a thin lock cannot have waiters (wait() inflates).
  NotifyStatus notify(Object *Obj, const ThreadContext &Thread) {
    return notifyImpl(Obj, Thread, /*All=*/false);
  }

  /// Java Object.notifyAll().
  NotifyStatus notifyAll(Object *Obj, const ThreadContext &Thread) {
    return notifyImpl(Obj, Thread, /*All=*/true);
  }

  /// \returns true once \p Obj's lock has been inflated (it never
  /// deflates — paper: "Once an object's lock is inflated, it remains
  /// inflated for the lifetime of the object").
  bool isInflated(const Object *Obj) const {
    return lockword::isFat(Obj->lockWord().load(std::memory_order_relaxed));
  }

  /// \returns the fat lock behind \p Obj, or nullptr while still thin.
  FatLock *monitorOf(const Object *Obj) const {
    uint32_t Value = Obj->lockWord().load(std::memory_order_acquire);
    if (!lockword::isFat(Value))
      return nullptr;
    return Monitors.resolve(Value);
  }

  /// Pre-inflation hint: forces \p Obj onto its fat-lock representation
  /// now, transferring the caller's current holds.  The caller must own
  /// the monitor (asserted).  Idempotent once fat.  Use for objects known
  /// to be contended soon — the inflation then happens off the contention
  /// path — and for driving the inflation machinery directly
  /// (bench_inflation_storm).  Not one of the paper's three inflation
  /// causes, so it is deliberately not recorded in LockStats.
  FatLock *inflate(Object *Obj, const ThreadContext &Thread) {
    uint32_t Value = Obj->lockWord().load(std::memory_order_relaxed);
    if (lockword::isFat(Value))
      return Monitors.resolve(Value);
    assert(lockword::isThinOwnedBy(Value, Thread.shiftedIndex()) &&
           "inflate hint on a monitor the thread does not own");
    return inflateOwned(Obj, Thread, Value, lockword::countOf(Value) + 1,
                        obs::InflateCause::Hint);
  }

  /// Out-of-line entry points for the paper's "FnCall" variant (§3.5):
  /// same algorithm, but the fast path pays a call.
  TL_NOINLINE void lockOutOfLine(Object *Obj, const ThreadContext &Thread) {
    lock(Obj, Thread);
  }
  TL_NOINLINE void unlockOutOfLine(Object *Obj,
                                   const ThreadContext &Thread) {
    unlock(Obj, Thread);
  }

  LockStats *stats() const { return Stats; }
  void setStats(LockStats *NewStats) { Stats = NewStats; }
  MonitorTable &monitorTable() { return Monitors; }
  const ContentionOptions &contentionOptions() const { return Options; }
  void setContentionOptions(const ContentionOptions &NewOptions) {
    Options = NewOptions;
  }

private:
  /// Appends one lock event to \p Thread's ring.  Callers gate on
  /// obs::tracingEnabled() so the disabled path costs one load+branch;
  /// slow paths only — the fast path has no event sites at all.
  static void recordEvent(const Object *Obj, const ThreadContext &Thread,
                          obs::EventKind Kind, uint64_t Arg = 0,
                          uint16_t Extra = 0) {
    obs::EventRing *Ring = Thread.eventRing();
    if (!Ring)
      return;
    Ring->record(obs::monotonicNanos(),
                 reinterpret_cast<uint64_t>(Obj),
                 obs::LockEvent::packMeta(Kind, Thread.index(),
                                          Obj->classIndex(), Extra),
                 Arg);
  }

  /// Records the end of a contended slow-path episode that began at
  /// \p StartNanos: the contended acquisition itself and, when the
  /// thread's Parker actually blocked during the episode, the directed
  /// wake that resumed it (with its unpark-to-resume latency).
  static void recordContendedAcquire(const Object *Obj,
                                     const ThreadContext &Thread,
                                     uint64_t StartNanos,
                                     uint64_t BlockedParksBefore,
                                     uint32_t QueueDepth) {
    uint64_t Now = obs::monotonicNanos();
    uint16_t Depth =
        QueueDepth > UINT16_MAX ? UINT16_MAX : static_cast<uint16_t>(
                                                   QueueDepth);
    recordEvent(Obj, Thread, obs::EventKind::ContendedAcquire,
                Now >= StartNanos ? Now - StartNanos : 0, Depth);
    const Parker *Pk = Thread.parker();
    if (Pk && Pk->blockedParkCount() > BlockedParksBefore &&
        Pk->lastBlockedWakeNanos() > 0)
      recordEvent(Obj, Thread, obs::EventKind::Wake,
                  Pk->lastBlockedWakeNanos());
  }

  /// Publishes "this thread is blocked acquiring Obj" for the lifetime of
  /// a contention episode — the waits-for edge the deadlock detector
  /// reads.  Slow paths only; the fast path never touches the registry.
  class BlockedOnScope {
    const ThreadContext &Thread;

  public:
    BlockedOnScope(const ThreadContext &Thread, const Object *Obj)
        : Thread(Thread) {
      Thread.registry().setBlockedOn(Thread, Obj);
    }
    ~BlockedOnScope() {
      Thread.registry().setBlockedOn(Thread, nullptr);
    }
    BlockedOnScope(const BlockedOnScope &) = delete;
    BlockedOnScope &operator=(const BlockedOnScope &) = delete;
  };

  /// Release a thin word the policy's way: plain store (the paper's
  /// discipline) or compare-and-swap (the UnlkC&S ablation).
  TL_ALWAYS_INLINE void storeRelease(std::atomic<uint32_t> &Word,
                                     uint32_t Expected, uint32_t Desired) {
    if constexpr (Policy::UseCasUnlock) {
      [[maybe_unused]] bool Ok = Word.compare_exchange_strong(
          Expected, Desired, std::memory_order_release,
          std::memory_order_relaxed);
      assert(Ok && "owner-only discipline violated: unlock CAS failed");
    } else {
      Word.store(Desired, std::memory_order_release);
    }
  }

  /// One escalation-ladder step while waiting for \p Obj's lock word to
  /// move off \p ObservedWord.  The pause/yield rungs run in place; the
  /// park rung sleeps in the ParkingLot keyed by the object, so whoever
  /// changes the word (an inflating acquirer publishing the fat word, a
  /// deflater restoring the thin header) can publish-and-wake instead of
  /// the waiter blindly sleeping out its quantum.  The "still worth
  /// sleeping" check runs under the bucket lock: if the word already
  /// changed we never sleep.  \p Clamp bounds the park for callers with
  /// their own deadline.
  void backoffOnWord(Object *Obj, const ThreadContext &Thread,
                     SpinWait &Spinner, uint32_t ObservedWord,
                     std::chrono::steady_clock::time_point Clamp =
                         std::chrono::steady_clock::time_point::max()) {
    uint64_t ParkNanos = Spinner.nextRound();
    if (ParkNanos == 0)
      return;
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::nanoseconds(ParkNanos);
    if (Deadline > Clamp)
      Deadline = Clamp;
    std::atomic<uint32_t> &Word = Obj->lockWord();
    const bool Tracing = obs::tracingEnabled();
    const uint64_t TraceT0 = Tracing ? obs::monotonicNanos() : 0;
    ParkingLot::ParkResult Result = ParkingLot::global().parkUntil(
        Obj, *Thread.parker(),
        [&] {
          return Word.load(std::memory_order_relaxed) == ObservedWord;
        },
        Deadline);
    if (TL_UNLIKELY(Tracing)) {
      uint64_t Now = obs::monotonicNanos();
      recordEvent(Obj, Thread, obs::EventKind::Park,
                  Now >= TraceT0 ? Now - TraceT0 : 0,
                  static_cast<uint16_t>(Result));
      const Parker *Pk = Thread.parker();
      if (Result == ParkingLot::ParkResult::Unparked &&
          Pk->lastBlockedWakeNanos() > 0)
        recordEvent(Obj, Thread, obs::EventKind::Wake,
                    Pk->lastBlockedWakeNanos());
    }
  }

  /// One watchdog tick from a blocked lock(): walk the owner graph; on a
  /// double-confirmed cycle either terminate with the report (the
  /// default — a deadlocked thread never recovers on its own) or record
  /// it and let the caller keep waiting.
  void watchdogCheck(Object *Obj, const ThreadContext &Thread) {
    DeadlockReport Report =
        detectDeadlock(Thread.index(), Obj, Thread.registry(), Monitors);
    if (!Report.hasCycle())
      return;
    if (obs::tracingEnabled())
      recordEvent(Obj, Thread, obs::EventKind::Deadlock, 0,
                  static_cast<uint16_t>(Report.Cycle.size()));
    if (Stats)
      Stats->recordDeadlock();
    if (Options.AbortOnDeadlock)
      fatalError("thread %u cannot make progress\n%s", Thread.index(),
                 Report.format().c_str());
  }

  /// tryLockFor()'s deadline path: classify the failure as Deadlock
  /// (double-confirmed cycle) or plain TimedOut.
  TimedLockStatus deadlineExpired(Object *Obj, const ThreadContext &Thread,
                                  DeadlockReport *Report) {
    DeadlockReport Detected =
        detectDeadlock(Thread.index(), Obj, Thread.registry(), Monitors);
    if (Detected.hasCycle()) {
      if (obs::tracingEnabled())
        recordEvent(Obj, Thread, obs::EventKind::Deadlock, 0,
                    static_cast<uint16_t>(Detected.Cycle.size()));
      if (Stats)
        Stats->recordDeadlock();
      if (Report)
        *Report = std::move(Detected);
      return TimedLockStatus::Deadlock;
    }
    if (Stats)
      Stats->recordTimedOut();
    return TimedLockStatus::TimedOut;
  }

  TL_NOINLINE void lockSlow(Object *Obj, const ThreadContext &Thread) {
    std::atomic<uint32_t> &Word = Obj->lockWord();
    uint32_t Shifted = Thread.shiftedIndex();
    // Adaptive spin class: contenders on an object the policy engine has
    // classified escalate on its ladder instead of the static one.
    const policy::LockPolicy Pol = policyFor(Obj);
    SpinWait Spinner(policy::spinPolicyFor(Pol.Spin, Options.Spin));
    BlockedOnScope Blocked(Thread, Obj);
    uint64_t ParksAtLastCheck = 0;
    const bool Tracing = obs::tracingEnabled();
    const uint64_t TraceT0 = Tracing ? obs::monotonicNanos() : 0;
    const uint64_t TraceParks =
        Tracing && Thread.parker() ? Thread.parker()->blockedParkCount() : 0;
    for (;;) {
      uint32_t Value = Word.load(std::memory_order_acquire);

      if (lockword::isFat(Value)) {
        FatLock *Fat = Monitors.resolve(Value);
        if (Options.DeadlockWatchdog) {
          // Bounded slices instead of an open-ended block, so the
          // watchdog keeps running while queued on the fat lock.
          FatLock::TimedResult Result =
              Fat->lockIfLiveFor(Thread, Options.WatchdogNanos);
          if (Result == FatLock::TimedResult::Retired) {
            backoffOnWord(Obj, Thread, Spinner, Value);
            continue;
          }
          if (Result == FatLock::TimedResult::TimedOut) {
            watchdogCheck(Obj, Thread);
            continue;
          }
        } else if (TL_UNLIKELY(!Fat->lockIfLive(Thread))) {
          // Monitor retired by deflation; back off briefly (the
          // deflater has yet to store the fresh thin word), re-read.
          backoffOnWord(Obj, Thread, Spinner, Value);
          continue;
        }
        Policy::afterAcquireFence();
        if (TL_UNLIKELY(Tracing))
          recordContendedAcquire(Obj, Thread, TraceT0, TraceParks,
                                 Fat->entryQueueLength());
        if (Stats) {
          Stats->recordFatPath();
          Stats->recordAcquire(Fat->holdCount());
          Stats->recordSpinIterations(Spinner.totalSpins());
        }
        return;
      }

      if (lockword::isThinOwnedBy(Value, Shifted)) {
        uint32_t Count = lockword::countOf(Value);
        if (Count < lockword::MaxCount) {
          // §2.3.3: nested lock — owner-only plain store of word + 256.
          Word.store(Value + lockword::CountUnit, std::memory_order_relaxed);
          if (Stats)
            Stats->recordAcquire(Count + 2);
          return;
        }
        // 257th hold: inflate, transferring the 256 existing holds plus
        // this acquisition.
        FatLock *Fat = inflateOwned(Obj, Thread, Value, Count + 2,
                                    obs::InflateCause::Overflow);
        (void)Fat;
        if (Stats) {
          Stats->recordOverflowInflation();
          Stats->recordAcquire(Count + 2);
        }
        return;
      }

      if (lockword::isUnlocked(Value)) {
        uint32_t Old = Value & lockword::HeaderBitsMask;
        if (Word.compare_exchange_weak(Old, Old | Shifted,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
          Policy::afterAcquireFence();
          // §2.3.4: we reached here because another thread held the
          // lock; by the locality-of-contention principle, inflate now
          // so future contention uses the fat lock's queues.
          inflateOwned(Obj, Thread, Old | Shifted, 1,
                       obs::InflateCause::Contention);
          if (TL_UNLIKELY(Tracing))
            recordContendedAcquire(Obj, Thread, TraceT0, TraceParks, 0);
          if (Stats) {
            Stats->recordContentionInflation();
            Stats->recordAcquire(1);
            Stats->recordSpinIterations(Spinner.totalSpins());
          }
          return;
        }
        continue; // Lost a race; reevaluate the fresh value.
      }

      // Thin and owned by another thread: spin with backoff (§2.3.4).
      // The ladder's park rung waits in the ParkingLot, so the moment
      // the contended-for owner inflates and publishes the fat word we
      // are woken to queue on the monitor instead of finishing a blind
      // sleep.
      backoffOnWord(Obj, Thread, Spinner, Value);
      if (TL_UNLIKELY(Options.DeadlockWatchdog && Spinner.isParking() &&
                      Spinner.totalParks() - ParksAtLastCheck >=
                          Options.WatchdogParkPeriod)) {
        ParksAtLastCheck = Spinner.totalParks();
        watchdogCheck(Obj, Thread);
      }
    }
  }

  TL_NOINLINE void unlockSlow(Object *Obj, const ThreadContext &Thread) {
    [[maybe_unused]] bool Ok = unlockChecked(Obj, Thread);
    assert(Ok && "unlock of a monitor the thread does not own");
  }

  /// Inflates a thin lock the calling thread owns: allocates a fat lock,
  /// transfers \p Holds holds, and publishes the fat lock word.  Only the
  /// owner may call this (it writes the lock word with a plain store).
  ///
  /// When the MonitorTable is exhausted, degrades to the table's shared
  /// *emergency monitor*: mutual exclusion coarsens (every object in
  /// emergency mode shares one monitor; same-thread holds merge) but
  /// remains correct, and the event is counted in both the table's
  /// exhaustion counter and LockStats.  See DESIGN.md "Failure modes".
  FatLock *inflateOwned(Object *Obj, const ThreadContext &Thread,
                        uint32_t CurrentWord, uint32_t Holds,
                        obs::InflateCause Cause) {
    assert(lockword::isThinOwnedBy(CurrentWord, Thread.shiftedIndex()) &&
           "inflating a lock the thread does not own");
    uint32_t Index = Monitors.allocate();
    FatLock *Fat;
    if (TL_UNLIKELY(Index == 0)) {
      Index = Monitors.emergencyIndex();
      Fat = Monitors.emergencyMonitor();
      Fat->lockMergingCount(Thread, Holds);
      if (Stats)
        Stats->recordEmergencyInflation();
      Cause = obs::InflateCause::Emergency;
    } else {
      Fat = Monitors.get(Index);
      Fat->lockWithCount(Thread, Holds);
    }
    if (obs::tracingEnabled())
      recordEvent(Obj, Thread, obs::EventKind::Inflate,
                  static_cast<uint64_t>(Cause));
    // Route the monitor's wake-handoff latency samples into our stats.
    Fat->setStatsSink(Stats);
    if (TL_FAILPOINT(ThinLockInflateRace)) {
      // Widen the inflation window: the fat lock is held but the word is
      // still thin, so contenders keep spinning on the thin word and
      // must re-read after we publish.  Exercises the §2.3.4 hand-off.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    uint32_t HeaderBits = lockword::headerBitsOf(CurrentWord);
    Obj->lockWord().store(lockword::makeFat(Index, HeaderBits),
                          std::memory_order_release);
    // Publish-and-wake (§2.3.4 hand-off): contenders lot-parked on the
    // thin word learn of the fat lock now, not at their next deadline.
    ParkingLot::global().unparkAll(Obj);
    return Fat;
  }

  /// The adaptive decision for \p Obj, or all-defaults when no store is
  /// wired (the common case — one predictable branch).  Slow paths only.
  policy::LockPolicy policyFor(const Object *Obj) const {
    if (TL_LIKELY(Policies == nullptr))
      return policy::LockPolicy();
    return Policies->forObject(reinterpret_cast<uint64_t>(Obj),
                               Obj->classIndex());
  }

  /// EagerInflate's deterministic trigger: after a successful slow-path
  /// acquisition that left the word thin, a decided object goes fat
  /// immediately — the engine has seen it re-inflate enough times that
  /// the thin contention dance is pure overhead.
  void maybeEagerInflate(Object *Obj, const ThreadContext &Thread) {
    if (TL_LIKELY(Policies == nullptr))
      return;
    uint32_t Value = Obj->lockWord().load(std::memory_order_relaxed);
    if (!lockword::isThinOwnedBy(Value, Thread.shiftedIndex()))
      return; // Already fat (or emergency-shared): nothing to do.
    if (!policyFor(Obj).EagerInflate)
      return;
    inflateOwned(Obj, Thread, Value, lockword::countOf(Value) + 1,
                 obs::InflateCause::Hint);
  }

  NotifyStatus notifyImpl(Object *Obj, const ThreadContext &Thread,
                          bool All) {
    uint32_t Value = Obj->lockWord().load(std::memory_order_relaxed);
    if (lockword::isFat(Value)) {
      FatLock *Fat = Monitors.resolve(Value);
      if (!Fat->heldBy(Thread))
        return NotifyStatus::NotOwner;
      uint32_t Morphed;
      if (All)
        Morphed = Fat->notifyAll(Thread);
      else
        Morphed = Fat->notify(Thread) ? 1 : 0;
      if (obs::tracingEnabled())
        recordEvent(Obj, Thread,
                    All ? obs::EventKind::NotifyAll : obs::EventKind::Notify,
                    0, static_cast<uint16_t>(Morphed));
      return NotifyStatus::Ok;
    }
    // Thin lock: if we own it there can be no waiters, so notify is a
    // legal no-op; otherwise it is an IllegalMonitorState.
    return lockword::isThinOwnedBy(Value, Thread.shiftedIndex())
               ? NotifyStatus::Ok
               : NotifyStatus::NotOwner;
  }

  MonitorTable &Monitors;
  LockStats *Stats;
  DeflationPolicy Deflation;
  ContentionOptions Options;
  /// Adaptive decisions consulted by the slow paths; null = static
  /// behavior.  See setPolicyStore().
  const policy::PolicyStore *Policies = nullptr;
};

/// The shipping configuration (paper §3.5.1): per-operation dynamic
/// machine-type check.
using ThinLockManager = ThinLockImpl<DynamicPolicy>;
/// §3.5 ablation configurations.
using ThinLockUP = ThinLockImpl<UniprocessorPolicy>;
using ThinLockMP = ThinLockImpl<MultiprocessorPolicy>;
using ThinLockCasUnlock = ThinLockImpl<CasUnlockPolicy>;

static_assert(SyncProtocol<ThinLockManager>,
              "ThinLockManager must satisfy the protocol concept");

extern template class ThinLockImpl<DynamicPolicy>;
extern template class ThinLockImpl<UniprocessorPolicy>;
extern template class ThinLockImpl<MultiprocessorPolicy>;
extern template class ThinLockImpl<CasUnlockPolicy>;

} // namespace thinlocks

#endif // THINLOCKS_CORE_THINLOCK_H

//===- core/LockStats.h - Lock operation characterization ------*- C++ -*-===//
///
/// \file
/// Instrumentation counters behind the paper's locking characterization:
/// Table 1's synchronization counts and Figure 3's nesting-depth
/// breakdown (First / Second / Third / Fourth-or-deeper lock operations),
/// plus inflation causes.  Collection is optional: protocols take a
/// nullable LockStats* and skip all recording when it is null, so
/// measurement runs pay nothing.
///
/// Counters are striped (see support/StatsCounter.h), so recording from
/// many threads does not serialize on shared cache lines.  Every
/// acquisition lands in exactly one depth bucket, so the total
/// acquisition count is derived as the bucket sum rather than kept as a
/// thirteenth counter — the acquire hot path bumps one counter, not two.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_CORE_LOCKSTATS_H
#define THINLOCKS_CORE_LOCKSTATS_H

#include "support/MathExtras.h"
#include "support/Mutex.h"
#include "support/StatsCounter.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace thinlocks {

/// Shared, thread-safe lock-event counters.
class LockStats {
public:
  /// Figure 3 buckets: index 0 = first lock (object was unlocked),
  /// 1 = second (nested once), 2 = third, 3 = fourth or deeper.
  static constexpr unsigned NumDepthBuckets = 4;

  /// Time-to-wake histogram buckets (power-of-two microseconds): bucket
  /// 0 is < 1µs, bucket B (1..8) is [2^(B-1), 2^B) µs, and the last
  /// bucket collects everything ≥ 256µs.
  static constexpr unsigned NumWakeBuckets = 10;

  /// \returns the histogram bucket for a wake latency of \p Nanos.
  static constexpr unsigned wakeBucketOf(uint64_t Nanos) {
    uint64_t Micros = Nanos / 1000;
    if (Micros == 0)
      return 0;
    unsigned Bucket = log2Floor(Micros) + 1;
    return Bucket >= NumWakeBuckets ? NumWakeBuckets - 1 : Bucket;
  }

  /// A coherent point-in-time copy of every counter.  Each field is read
  /// once from the live (striped) counters, so derived views — summary
  /// lines, depth fractions, ratios — agree with each other even while
  /// other threads keep recording.
  struct Snapshot {
    uint64_t Acquisitions = 0;
    uint64_t Releases = 0;
    uint64_t FastPath = 0;
    uint64_t FatPath = 0;
    uint64_t SpinIterations = 0;
    uint64_t ContentionInflations = 0;
    uint64_t OverflowInflations = 0;
    uint64_t WaitInflations = 0;
    uint64_t Deflations = 0;
    uint64_t EmergencyInflations = 0;
    uint64_t TimedOutAcquisitions = 0;
    uint64_t DeadlocksDetected = 0;
    std::array<uint64_t, NumDepthBuckets> DepthBuckets{};
    /// Wake-handoff latency distribution (see NumWakeBuckets).
    std::array<uint64_t, NumWakeBuckets> WakeBuckets{};
    uint64_t Wakes = 0;
    uint64_t WakeNanosTotal = 0;
    uint64_t WakeNanosMax = 0;

    /// \returns the mean unpark-to-resume latency in nanoseconds (0 when
    /// no wakes were recorded).
    uint64_t avgWakeNanos() const {
      return Wakes == 0 ? 0 : WakeNanosTotal / Wakes;
    }

    uint64_t inflations() const {
      return ContentionInflations + OverflowInflations + WaitInflations;
    }

    /// \returns bucket \p Bucket as a fraction of all acquisitions (0
    /// when nothing has been recorded).
    double depthFraction(unsigned Bucket) const;
  };

  /// Records one acquisition at nesting depth \p Depth (1-based).
  void recordAcquire(uint32_t Depth) {
    unsigned Bucket = Depth >= NumDepthBuckets ? NumDepthBuckets - 1
                                               : Depth - 1;
    DepthBuckets[Bucket].increment();
  }

  /// Records a depth-1 acquisition taken via the thin CAS fast path.
  /// One counter bump on the hottest path in the system:
  /// fastPathAcquisitions() *and* depth bucket 0 are both derived from
  /// it (slow-path depth-1 acquires land in DepthBuckets[0] via
  /// recordAcquire, and the views sum the two).
  void recordFastPathAcquire() { FastPathAcquires.increment(); }

  void recordRelease() { Releases.increment(); }
  void recordFatPath() { FatPath.increment(); }
  void recordSpinIterations(uint64_t N) { SpinIterations.increment(N); }
  void recordContentionInflation() { ContentionInflations.increment(); }
  void recordOverflowInflation() { OverflowInflations.increment(); }
  void recordWaitInflation() { WaitInflations.increment(); }
  void recordDeflation() { Deflations.increment(); }
  /// Inflation landed on the shared emergency monitor because the
  /// MonitorTable was exhausted (degraded but correct mode).
  void recordEmergencyInflation() { EmergencyInflations.increment(); }
  /// A tryLockFor() deadline expired without acquiring.
  void recordTimedOut() { TimedOutAcquisitions.increment(); }
  /// The owner-graph walker confirmed a waits-for cycle.
  void recordDeadlock() { DeadlocksDetected.increment(); }

  /// Records one wake handoff that took \p Nanos from unpark to resume
  /// (measured by the woken thread's Parker; fed in by FatLock).
  void recordWakeLatency(uint64_t Nanos) {
    WakeBuckets[wakeBucketOf(Nanos)].increment();
    WakeNanosTotal.increment(Nanos);
    uint64_t Max = WakeNanosMax.load(std::memory_order_relaxed);
    while (Nanos > Max &&
           !WakeNanosMax.compare_exchange_weak(Max, Nanos,
                                               std::memory_order_relaxed)) {
    }
  }

  /// Reads every counter once into a coherent copy, relative to the
  /// last reset() epoch.
  Snapshot snapshot() const TL_EXCLUDES(BaselineMutex);

  uint64_t totalAcquisitions() const { return snapshot().Acquisitions; }
  uint64_t totalReleases() const { return snapshot().Releases; }
  uint64_t fastPathAcquisitions() const { return snapshot().FastPath; }
  uint64_t fatPathAcquisitions() const { return snapshot().FatPath; }
  uint64_t spinIterations() const { return snapshot().SpinIterations; }
  uint64_t contentionInflations() const {
    return snapshot().ContentionInflations;
  }
  uint64_t overflowInflations() const {
    return snapshot().OverflowInflations;
  }
  uint64_t waitInflations() const { return snapshot().WaitInflations; }
  uint64_t inflations() const { return snapshot().inflations(); }
  uint64_t deflations() const { return snapshot().Deflations; }
  uint64_t emergencyInflations() const {
    return snapshot().EmergencyInflations;
  }
  uint64_t timedOutAcquisitions() const {
    return snapshot().TimedOutAcquisitions;
  }
  uint64_t deadlocksDetected() const {
    return snapshot().DeadlocksDetected;
  }

  /// \returns how many wake handoffs have been recorded.
  uint64_t wakeCount() const { return snapshot().Wakes; }
  /// \returns the wake count in histogram bucket \p Bucket (0..9).
  uint64_t wakeBucket(unsigned Bucket) const {
    return snapshot().WakeBuckets[Bucket];
  }

  /// \returns the acquisition count in Figure 3 bucket \p Bucket (0..3).
  uint64_t depthBucket(unsigned Bucket) const {
    return snapshot().DepthBuckets[Bucket];
  }

  /// \returns bucket \p Bucket as a fraction of all acquisitions (0 when
  /// nothing has been recorded).
  double depthFraction(unsigned Bucket) const;

  /// Starts a new counting epoch: subsequent snapshots and accessors
  /// report only events recorded after this call.  *Epoch-based*: the
  /// live striped counters are never zeroed (zeroing 36 stripes while
  /// writers bump and readers sum them tears — a snapshot overlapping
  /// the stripe-by-stripe wipe mixes pre- and post-reset stripe values
  /// and can even make paired counters go "negative", e.g. more
  /// acquires than releases by millions).  Instead reset() captures a
  /// baseline snapshot under a mutex and snapshot() subtracts it, so a
  /// reset racing concurrent recording and snapshotting yields only the
  /// usual in-flight slack, never torn totals.
  void reset() TL_EXCLUDES(BaselineMutex);

  /// Renders a human-readable multi-line summary.
  std::string summary() const;

private:
  /// One pass over the live counters, ignoring the epoch baseline.
  Snapshot rawSnapshot() const;

  StatsCounter Releases;
  StatsCounter FastPathAcquires;
  StatsCounter FatPath;
  StatsCounter SpinIterations;
  StatsCounter ContentionInflations;
  StatsCounter OverflowInflations;
  StatsCounter WaitInflations;
  StatsCounter Deflations;
  StatsCounter EmergencyInflations;
  StatsCounter TimedOutAcquisitions;
  StatsCounter DeadlocksDetected;
  std::array<StatsCounter, NumDepthBuckets> DepthBuckets;
  std::array<StatsCounter, NumWakeBuckets> WakeBuckets;
  StatsCounter WakeNanosTotal;
  std::atomic<uint64_t> WakeNanosMax{0};
  /// The raw-counter values at the last reset(); subtracted from every
  /// raw snapshot.  Guarded by BaselineMutex (reset/snapshot only — the
  /// recording hot paths never touch it).
  mutable Mutex BaselineMutex;
  Snapshot Baseline TL_GUARDED_BY(BaselineMutex);
};

} // namespace thinlocks

#endif // THINLOCKS_CORE_LOCKSTATS_H

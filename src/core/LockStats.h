//===- core/LockStats.h - Lock operation characterization ------*- C++ -*-===//
///
/// \file
/// Instrumentation counters behind the paper's locking characterization:
/// Table 1's synchronization counts and Figure 3's nesting-depth
/// breakdown (First / Second / Third / Fourth-or-deeper lock operations),
/// plus inflation causes.  Collection is optional: protocols take a
/// nullable LockStats* and skip all recording when it is null, so
/// measurement runs pay nothing.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_CORE_LOCKSTATS_H
#define THINLOCKS_CORE_LOCKSTATS_H

#include "support/StatsCounter.h"

#include <array>
#include <cstdint>
#include <string>

namespace thinlocks {

/// Shared, thread-safe lock-event counters.
class LockStats {
public:
  /// Figure 3 buckets: index 0 = first lock (object was unlocked),
  /// 1 = second (nested once), 2 = third, 3 = fourth or deeper.
  static constexpr unsigned NumDepthBuckets = 4;

  /// Records one acquisition at nesting depth \p Depth (1-based).
  void recordAcquire(uint32_t Depth) {
    Total.increment();
    unsigned Bucket = Depth >= NumDepthBuckets ? NumDepthBuckets - 1
                                               : Depth - 1;
    DepthBuckets[Bucket].increment();
  }

  void recordRelease() { Releases.increment(); }
  void recordFastPath() { FastPath.increment(); }
  void recordFatPath() { FatPath.increment(); }
  void recordSpinIterations(uint64_t N) { SpinIterations.increment(N); }
  void recordContentionInflation() { ContentionInflations.increment(); }
  void recordOverflowInflation() { OverflowInflations.increment(); }
  void recordWaitInflation() { WaitInflations.increment(); }
  void recordDeflation() { Deflations.increment(); }
  /// Inflation landed on the shared emergency monitor because the
  /// MonitorTable was exhausted (degraded but correct mode).
  void recordEmergencyInflation() { EmergencyInflations.increment(); }
  /// A tryLockFor() deadline expired without acquiring.
  void recordTimedOut() { TimedOutAcquisitions.increment(); }
  /// The owner-graph walker confirmed a waits-for cycle.
  void recordDeadlock() { DeadlocksDetected.increment(); }

  uint64_t totalAcquisitions() const { return Total.value(); }
  uint64_t totalReleases() const { return Releases.value(); }
  uint64_t fastPathAcquisitions() const { return FastPath.value(); }
  uint64_t fatPathAcquisitions() const { return FatPath.value(); }
  uint64_t spinIterations() const { return SpinIterations.value(); }
  uint64_t contentionInflations() const {
    return ContentionInflations.value();
  }
  uint64_t overflowInflations() const { return OverflowInflations.value(); }
  uint64_t waitInflations() const { return WaitInflations.value(); }
  uint64_t inflations() const {
    return contentionInflations() + overflowInflations() + waitInflations();
  }
  uint64_t deflations() const { return Deflations.value(); }
  uint64_t emergencyInflations() const { return EmergencyInflations.value(); }
  uint64_t timedOutAcquisitions() const {
    return TimedOutAcquisitions.value();
  }
  uint64_t deadlocksDetected() const { return DeadlocksDetected.value(); }

  /// \returns the acquisition count in Figure 3 bucket \p Bucket (0..3).
  uint64_t depthBucket(unsigned Bucket) const {
    return DepthBuckets[Bucket].value();
  }

  /// \returns bucket \p Bucket as a fraction of all acquisitions (0 when
  /// nothing has been recorded).
  double depthFraction(unsigned Bucket) const;

  void reset();

  /// Renders a human-readable multi-line summary.
  std::string summary() const;

private:
  StatsCounter Total;
  StatsCounter Releases;
  StatsCounter FastPath;
  StatsCounter FatPath;
  StatsCounter SpinIterations;
  StatsCounter ContentionInflations;
  StatsCounter OverflowInflations;
  StatsCounter WaitInflations;
  StatsCounter Deflations;
  StatsCounter EmergencyInflations;
  StatsCounter TimedOutAcquisitions;
  StatsCounter DeadlocksDetected;
  std::array<StatsCounter, NumDepthBuckets> DepthBuckets;
};

} // namespace thinlocks

#endif // THINLOCKS_CORE_LOCKSTATS_H

//===- core/LockWord.h - 24-bit thin/fat lock word encoding ----*- C++ -*-===//
///
/// \file
/// The bit-level encoding of paper Figures 1(b) and 2(a).  A lock word is
/// one 32-bit header word whose high 24 bits are the lock field and whose
/// low 8 bits are unrelated header data that locking must preserve:
///
///   bit  31     : monitor shape bit (0 = thin, 1 = fat/inflated)
///   bits 30..16 : thin: 15-bit owner thread index (0 = unlocked)
///   bits 15..8  : thin: nested lock count MINUS ONE (8 bits)
///   bits 30..8  : fat: 23-bit monitor index
///   bits  7..0  : other header data (constant; here, a hash byte)
///
/// The encoding is engineered so the hot checks are single ALU operations:
///  - compose "locked once by me" = (header bits) | (index << 16), where
///    the shifted index is precomputed in the ThreadContext;
///  - "thin, owned by me, count < 255" = ((word XOR shiftedIndex) <
///    (255 << 8)), the paper's exclusive-or trick (§2.3.3);
///  - "thin, owned by me, count == 0" = ((word XOR shiftedIndex) <= 0xFF),
///    the unlock fast-path equality check (§2.3.2) folded with the header
///    byte mask.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_CORE_LOCKWORD_H
#define THINLOCKS_CORE_LOCKWORD_H

#include <cassert>
#include <cstdint>

namespace thinlocks {
namespace lockword {

/// Monitor shape bit: clear for thin, set for fat (paper §2.3).
constexpr uint32_t ShapeBit = 1u << 31;

/// Thin lock thread-index field.
constexpr unsigned ThreadIndexShift = 16;
constexpr unsigned ThreadIndexBits = 15;
constexpr uint32_t MaxThreadIndex = (1u << ThreadIndexBits) - 1;
constexpr uint32_t ThreadIndexMask = MaxThreadIndex << ThreadIndexShift;

/// Thin lock nested-count field (stores count-1; 0 with index 0 means
/// unlocked).
constexpr unsigned CountShift = 8;
constexpr unsigned CountBits = 8;
constexpr uint32_t MaxCount = (1u << CountBits) - 1;
constexpr uint32_t CountMask = MaxCount << CountShift;
/// Adding CountUnit to a lock word increments the nested count (§2.3.3:
/// "the count field is incremented by adding 256 to the lock word").
constexpr uint32_t CountUnit = 1u << CountShift;

/// Fat lock monitor-index field (23 bits: everything but the shape bit
/// and the header byte).
constexpr unsigned MonitorIndexShift = 8;
constexpr unsigned MonitorIndexBits = 23;
constexpr uint32_t MaxMonitorIndex = (1u << MonitorIndexBits) - 1;
constexpr uint32_t MonitorIndexMask = MaxMonitorIndex << MonitorIndexShift;

/// The 8 low bits of other header data that share the word.
constexpr uint32_t HeaderBitsMask = 0xFFu;
/// The 24 bits the locking code owns.
constexpr uint32_t LockFieldMask = ~HeaderBitsMask;

/// The nested-lock fast-path limit: the XOR check below admits counts
/// 0..254, so counts can reach 255 (256 holds) and the 257th acquisition
/// inflates — the paper's "excessive nesting depth (in our implementation,
/// we define excessive as 257)".
constexpr uint32_t NestedCheckLimit = MaxCount << CountShift;

/// \returns true if \p Word encodes a thin (possibly unlocked) lock.
constexpr bool isThin(uint32_t Word) { return (Word & ShapeBit) == 0; }

/// \returns true if \p Word encodes an inflated (fat) lock.
constexpr bool isFat(uint32_t Word) { return (Word & ShapeBit) != 0; }

/// \returns true if \p Word is thin and unlocked (thread index 0).
constexpr bool isUnlocked(uint32_t Word) {
  return (Word & (ShapeBit | ThreadIndexMask)) == 0;
}

/// \returns the thin owner's thread index (0 = unlocked). Thin words only.
constexpr uint16_t threadIndexOf(uint32_t Word) {
  assert(isThin(Word) && "thread index of a fat lock word");
  return static_cast<uint16_t>((Word & ThreadIndexMask) >> ThreadIndexShift);
}

/// \returns the thin nested count field = number of holds MINUS ONE.
/// Thin locked words only.
constexpr uint32_t countOf(uint32_t Word) {
  assert(isThin(Word) && "count of a fat lock word");
  return (Word & CountMask) >> CountShift;
}

/// \returns the monitor index of an inflated word.
constexpr uint32_t monitorIndexOf(uint32_t Word) {
  assert(isFat(Word) && "monitor index of a thin lock word");
  return (Word & MonitorIndexMask) >> MonitorIndexShift;
}

/// \returns the preserved non-lock header bits of \p Word.
constexpr uint32_t headerBitsOf(uint32_t Word) {
  return Word & HeaderBitsMask;
}

/// Composes a thin lock word.
constexpr uint32_t makeThin(uint16_t ThreadIndex, uint32_t Count,
                            uint32_t HeaderBits) {
  assert(ThreadIndex <= MaxThreadIndex && "thread index overflows 15 bits");
  assert(Count <= MaxCount && "count overflows 8 bits");
  assert((HeaderBits & ~HeaderBitsMask) == 0 && "header bits overflow");
  assert((ThreadIndex != 0 || Count == 0) &&
         "unlocked word must have a zero count");
  return (static_cast<uint32_t>(ThreadIndex) << ThreadIndexShift) |
         (Count << CountShift) | HeaderBits;
}

/// Composes an inflated lock word.
constexpr uint32_t makeFat(uint32_t MonitorIndex, uint32_t HeaderBits) {
  assert(MonitorIndex != 0 && MonitorIndex <= MaxMonitorIndex &&
         "monitor index out of range");
  assert((HeaderBits & ~HeaderBitsMask) == 0 && "header bits overflow");
  return ShapeBit | (MonitorIndex << MonitorIndexShift) | HeaderBits;
}

/// The paper's §2.3.3 XOR trick: true iff \p Word is thin, owned by the
/// thread whose pre-shifted index is \p ShiftedIndex, and its count can
/// still be incremented without overflowing.
constexpr bool canNestInline(uint32_t Word, uint32_t ShiftedIndex) {
  return (Word ^ ShiftedIndex) < NestedCheckLimit;
}

/// The §2.3.2 unlock fast-path check: true iff \p Word is thin, owned by
/// \p ShiftedIndex's thread, with count 0 (exactly one hold).
constexpr bool isSingleHoldByOwner(uint32_t Word, uint32_t ShiftedIndex) {
  return (Word ^ ShiftedIndex) <= HeaderBitsMask;
}

/// \returns true if \p Word is thin and owned by \p ShiftedIndex's thread
/// (any count).
constexpr bool isThinOwnedBy(uint32_t Word, uint32_t ShiftedIndex) {
  return ((Word ^ ShiftedIndex) & (ShapeBit | ThreadIndexMask)) == 0 &&
         ShiftedIndex != 0;
}

} // namespace lockword
} // namespace thinlocks

#endif // THINLOCKS_CORE_LOCKWORD_H

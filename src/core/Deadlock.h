//===- core/Deadlock.h - Owner-graph deadlock detection --------*- C++ -*-===//
///
/// \file
/// A waits-for cycle walker over the thin/fat lock encoding.  Nodes are
/// thread indices; an edge T -> U exists when T is blocked acquiring an
/// object whose monitor is owned by U.  The two halves of every edge are
/// already published for free:
///
///  - "T is blocked on object O": ThreadInfo::BlockedOn, set by the
///    contention slow paths (ThinLockImpl::lockSlow / tryLockFor);
///  - "O is owned by U": the lock word itself (thin owner field) or the
///    resolved FatLock's owner index.
///
/// The walk is a racy snapshot, so a detected cycle is *double-confirmed*
/// (walked twice; must be bit-identical) before being reported.  When the
/// detector runs on behalf of a thread that is itself blocked, a cycle
/// through that thread cannot be a false positive even single-shot: the
/// caller holds the object that closes the cycle for the entire walk, so
/// every edge re-verified at report time is still live.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_CORE_DEADLOCK_H
#define THINLOCKS_CORE_DEADLOCK_H

#include <cstdint>
#include <string>
#include <vector>

namespace thinlocks {

class MonitorTable;
class Object;
class ThreadRegistry;

/// One waits-for edge in a detected cycle.
struct DeadlockEdge {
  /// The blocked thread.
  uint16_t ThreadIndex = 0;
  /// Its registry name ("" if unnamed).
  std::string ThreadName;
  /// The object it is blocked acquiring.
  const Object *WaitsFor = nullptr;
  /// The thread that owns \c WaitsFor (the edge target).
  uint16_t OwnerIndex = 0;
  /// The owner's hold count on \c WaitsFor at snapshot time.
  uint32_t OwnerHolds = 0;
};

/// Result of a cycle walk.
struct DeadlockReport {
  /// The edges of the cycle, in waits-for order (the last edge's owner is
  /// the first edge's thread).  Empty when no cycle was found.
  std::vector<DeadlockEdge> Cycle;

  bool hasCycle() const { return !Cycle.empty(); }

  /// Renders the cycle for humans: one line per edge with thread names,
  /// object addresses, and hold counts.
  std::string format() const;
};

/// Walks the waits-for graph starting from thread \p SelfIndex blocked on
/// \p Wanted.  \returns the cycle containing (or blocking) \p SelfIndex,
/// double-confirmed, or an empty report.  Lock-free with respect to the
/// lock words; takes no monitor-table or registry mutex.
DeadlockReport detectDeadlock(uint16_t SelfIndex, const Object *Wanted,
                              const ThreadRegistry &Registry,
                              const MonitorTable &Monitors);

} // namespace thinlocks

#endif // THINLOCKS_CORE_DEADLOCK_H

//===- core/ProtocolRegistry.cpp - Name -> protocol factory ---------------===//

#include "core/ProtocolRegistry.h"

#include <cstdlib>

using namespace thinlocks;

// Out-of-line destructor anchors the vtable in this translation unit.
ProtocolHandle::~ProtocolHandle() = default;

std::unique_ptr<ProtocolHandle>
thinlocks::createProtocol(std::string_view Name,
                          const ProtocolConfig &Config) {
#define THINLOCKS_PROTOCOL_CASE(Type, RegistryName)                            \
  if (Name == RegistryName)                                                    \
    return std::make_unique<TypedProtocolHandle<Type>>(RegistryName, Config);
  THINLOCKS_FOR_EACH_PROTOCOL(THINLOCKS_PROTOCOL_CASE)
#undef THINLOCKS_PROTOCOL_CASE
  return nullptr;
}

const std::vector<std::string> &thinlocks::registeredProtocolNames() {
  static const std::vector<std::string> Names = {
#define THINLOCKS_PROTOCOL_CASE(Type, RegistryName) RegistryName,
      THINLOCKS_FOR_EACH_PROTOCOL(THINLOCKS_PROTOCOL_CASE)
#undef THINLOCKS_PROTOCOL_CASE
  };
  return Names;
}

bool thinlocks::isRegisteredProtocol(std::string_view Name) {
  for (const std::string &Registered : registeredProtocolNames())
    if (Name == Registered)
      return true;
  return false;
}

std::string thinlocks::resolveProtocolName(std::string_view CliName) {
  if (!CliName.empty())
    return std::string(CliName);
  if (const char *Env = std::getenv(ProtocolEnvVar); Env && *Env)
    return Env;
  return DefaultProtocolName;
}

//===- core/Variants.h - Fence & unlock policy variants --------*- C++ -*-===//
///
/// \file
/// The implementation variants of paper §3.5 ("Tradeoffs") expressed as
/// compile-time policies for ThinLockImpl:
///
///  - UniprocessorPolicy — no fences, like running on a PowerPC/POWER
///    uniprocessor where isync/sync are unnecessary.
///  - MultiprocessorPolicy — "MP Sync": an acquire fence after locking
///    (the 604's isync, essentially free on x86 too) and a full barrier
///    before the unlocking store (the 604's sync; modeled as a seq_cst
///    fence, an mfence on x86, which carries a comparable relative cost).
///  - DynamicPolicy — the paper's shipping configuration: "dynamically
///    testing the architecture type on every lock and unlock operation"
///    (§3.5.1).  A global flag is loaded and branched on per operation.
///  - CasUnlockPolicy — "UnlkC&S": unlocking uses compare-and-swap
///    instead of a plain store, demonstrating the cost the owner-only
///    write discipline avoids (§3.5, Figure 6).
///
/// Portability note: every policy keeps at least acquire-on-lock /
/// release-on-unlock *compiler* semantics so that all variants are correct
/// C++ on any host; the measurable difference between UP and MP is the
/// hardware fence, exactly as on the paper's PowerPC.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_CORE_VARIANTS_H
#define THINLOCKS_CORE_VARIANTS_H

#include <atomic>

namespace thinlocks {

/// Global machine-type flag consulted by DynamicPolicy, mirroring the
/// paper's per-operation CPU-type test.  Defaults to multiprocessor
/// (safe).  Benchmarks flip it to measure the branch's cost.
inline std::atomic<bool> MachineIsMultiprocessor{true};

/// No-fence uniprocessor configuration.
struct UniprocessorPolicy {
  static constexpr bool UseCasUnlock = false;
  static constexpr const char *Name = "UP";
  static void afterAcquireFence() {}
  static void beforeReleaseFence() {}
};

/// Unconditional-fence multiprocessor configuration ("MP Sync").
struct MultiprocessorPolicy {
  static constexpr bool UseCasUnlock = false;
  static constexpr const char *Name = "MP";
  static void afterAcquireFence() {
    std::atomic_thread_fence(std::memory_order_acquire); // ~isync
  }
  static void beforeReleaseFence() {
    std::atomic_thread_fence(std::memory_order_seq_cst); // ~sync
  }
};

/// Per-operation dynamic CPU-type test (the paper's final "ThinLock").
struct DynamicPolicy {
  static constexpr bool UseCasUnlock = false;
  static constexpr const char *Name = "Dynamic";
  static void afterAcquireFence() {
    if (MachineIsMultiprocessor.load(std::memory_order_relaxed))
      std::atomic_thread_fence(std::memory_order_acquire);
  }
  static void beforeReleaseFence() {
    if (MachineIsMultiprocessor.load(std::memory_order_relaxed))
      std::atomic_thread_fence(std::memory_order_seq_cst);
  }
};

/// Unlock-with-compare-and-swap ablation ("UnlkC&S").
struct CasUnlockPolicy {
  static constexpr bool UseCasUnlock = true;
  static constexpr const char *Name = "UnlkC&S";
  static void afterAcquireFence() {}
  static void beforeReleaseFence() {}
};

} // namespace thinlocks

#endif // THINLOCKS_CORE_VARIANTS_H

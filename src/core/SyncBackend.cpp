//===- core/SyncBackend.cpp - Type-erased protocol adapter ----------------===//

#include "core/SyncBackend.h"

using namespace thinlocks;

// Out-of-line destructor anchors the vtable in this translation unit.
SyncBackend::~SyncBackend() = default;

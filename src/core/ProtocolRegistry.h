//===- core/ProtocolRegistry.h - Name -> protocol factory ------*- C++ -*-===//
///
/// \file
/// Runtime selection of a synchronization protocol by name.  Two faces:
///
///  - createProtocol(Name): a factory returning a ProtocolHandle that
///    owns the protocol instance *and* its substrate (the thin-lock
///    manager needs a MonitorTable; the side-table protocols are
///    self-contained) behind the type-erased SyncBackend.  This is what
///    the soak harness and bench_soak use, keyed by --protocol or the
///    THINLOCKS_PROTOCOL environment variable.
///
///  - withProtocol(Name, Config, Callback): compile-time dispatch — the
///    callback is instantiated once per registered protocol type and
///    invoked with the *concrete* protocol reference, so templated
///    workloads (workload/MicroBench.h, workload/MacroReplay.h) run with
///    zero virtual-dispatch noise.  bench_matrix builds its grid this
///    way.
///
/// The protocol list lives in one X-macro; adding a protocol means one
/// new line here plus a ProtocolMaker specialization if it needs a
/// substrate (see DESIGN.md §14).  Registry names are canonical artifact
/// labels: the thin-lock manager registers as "ThinLock" even though its
/// concept-level protocolName() reports the active fast-path policy
/// ("Dynamic").
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_CORE_PROTOCOLREGISTRY_H
#define THINLOCKS_CORE_PROTOCOLREGISTRY_H

#include "baselines/EagerMonitor.h"
#include "baselines/HotLocks.h"
#include "baselines/MonitorCache.h"
#include "core/SyncBackend.h"
#include "core/ThinLock.h"
#include "fatlock/MonitorTable.h"
#include "protocols/FissileLock.h"

#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

/// X-macro over every registered protocol: X(ConcreteType, "Name").
#define THINLOCKS_FOR_EACH_PROTOCOL(X)                                         \
  X(ThinLockManager, "ThinLock")                                               \
  X(MonitorCache, "JDK111")                                                    \
  X(HotLocks, "IBM112")                                                        \
  X(EagerMonitor, "EagerMonitor")                                              \
  X(FissileLock, "Fissile")

namespace thinlocks {

/// Environment variable consulted when no explicit name is given.
inline constexpr const char *ProtocolEnvVar = "THINLOCKS_PROTOCOL";

/// The default protocol (the paper's contribution).
inline constexpr const char *DefaultProtocolName = "ThinLock";

/// Substrate knobs a factory-built protocol may honor.  Protocols
/// without the corresponding notion ignore a knob (only ThinLock has a
/// MonitorTable, deflation, or a LockStats sink).
struct ProtocolConfig {
  /// MonitorTable capacity; 0 = the table's full default capacity.
  uint32_t MonitorCapacity = 0;
  /// Retire fat locks at quiescence (Tasuki deflation).
  bool DeflateWhenQuiescent = false;
  /// Optional instrumentation sink; must outlive the handle.
  LockStats *Stats = nullptr;
};

/// Owns one protocol instance plus whatever substrate it needs, and
/// exposes it type-erased.  The capability accessors return null for
/// protocols without that substrate; callers gate on them instead of on
/// the protocol name.
class ProtocolHandle {
public:
  virtual ~ProtocolHandle();

  /// The canonical registry name ("ThinLock", "JDK111", ...).
  virtual const char *name() const = 0;
  virtual SyncBackend &sync() = 0;
  /// Non-null only for protocols backed by the shared MonitorTable
  /// (pressure signals for admission control).
  virtual MonitorTable *monitorTable() { return nullptr; }
  /// Non-null only for the thin-lock manager (adaptive-policy wiring).
  virtual ThinLockManager *thinLocks() { return nullptr; }

  /// Per-protocol stats snapshot as a JSON object literal ("" if none).
  std::string statsJson() { return sync().statsJson(); }
};

/// Builds one protocol type plus its substrate.  The primary template
/// covers self-contained protocols; ThinLockManager specializes to own
/// its MonitorTable.
template <typename P> struct ProtocolMaker {
  P Protocol;
  explicit ProtocolMaker(const ProtocolConfig &) {}
};

template <> struct ProtocolMaker<ThinLockManager> {
  MonitorTable Monitors;
  ThinLockManager Protocol;
  explicit ProtocolMaker(const ProtocolConfig &Config)
      : Monitors(Config.MonitorCapacity ? Config.MonitorCapacity
                                        : MonitorTable::MaxMonitorIndex),
        Protocol(Monitors, Config.Stats,
                 Config.DeflateWhenQuiescent ? DeflationPolicy::WhenQuiescent
                                             : DeflationPolicy::Never) {}
};

/// The concrete handle: maker + adapter, one instantiation per protocol.
template <typename P> class TypedProtocolHandle final : public ProtocolHandle {
  const char *RegistryName;
  ProtocolMaker<P> Maker;
  SyncBackendAdapter<P> Backend;

public:
  TypedProtocolHandle(const char *RegistryName, const ProtocolConfig &Config)
      : RegistryName(RegistryName), Maker(Config), Backend(Maker.Protocol) {}

  const char *name() const override { return RegistryName; }
  SyncBackend &sync() override { return Backend; }
  MonitorTable *monitorTable() override {
    if constexpr (std::is_same_v<P, ThinLockManager>)
      return &Maker.Monitors;
    else
      return nullptr;
  }
  ThinLockManager *thinLocks() override {
    if constexpr (std::is_same_v<P, ThinLockManager>)
      return &Maker.Protocol;
    else
      return nullptr;
  }

  P &protocol() { return Maker.Protocol; }
};

/// \returns a handle for the named protocol, or nullptr if \p Name is
/// not registered.
std::unique_ptr<ProtocolHandle> createProtocol(std::string_view Name,
                                               const ProtocolConfig &Config =
                                                   ProtocolConfig());

/// \returns every registered protocol name, in registry order.
const std::vector<std::string> &registeredProtocolNames();

/// \returns true if \p Name is a registered protocol name.
bool isRegisteredProtocol(std::string_view Name);

/// Resolves the protocol to use: an explicit (non-empty) \p CliName
/// wins, then $THINLOCKS_PROTOCOL, then DefaultProtocolName.  The result
/// is *not* validated; callers check isRegisteredProtocol and report the
/// registered list on a miss.
std::string resolveProtocolName(std::string_view CliName = {});

/// Compile-time dispatch: invokes \p Callback(ConcreteProtocol &,
/// ProtocolHandle &) with the concrete type for \p Name.  \returns false
/// (without invoking) if \p Name is not registered.
template <typename Fn>
bool withProtocol(std::string_view Name, const ProtocolConfig &Config,
                  Fn &&Callback) {
#define THINLOCKS_PROTOCOL_CASE(Type, RegistryName)                            \
  if (Name == RegistryName) {                                                  \
    TypedProtocolHandle<Type> Handle(RegistryName, Config);                    \
    Callback(Handle.protocol(), static_cast<ProtocolHandle &>(Handle));        \
    return true;                                                               \
  }
  THINLOCKS_FOR_EACH_PROTOCOL(THINLOCKS_PROTOCOL_CASE)
#undef THINLOCKS_PROTOCOL_CASE
  return false;
}

} // namespace thinlocks

#endif // THINLOCKS_CORE_PROTOCOLREGISTRY_H

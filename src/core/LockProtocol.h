//===- core/LockProtocol.h - Common protocol interface ---------*- C++ -*-===//
///
/// \file
/// The interface shared by every synchronization protocol in this library:
/// the thin-lock implementation (the paper's contribution) and the two
/// baselines it is measured against (the JDK 1.1.1 monitor cache and the
/// IBM 1.1.2 hot locks).  Benchmarks are templated over this concept so
/// the fast paths are compared without virtual-dispatch noise; the VM uses
/// the type-erased SyncBackend adapter instead.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_CORE_LOCKPROTOCOL_H
#define THINLOCKS_CORE_LOCKPROTOCOL_H

#include "heap/Object.h"
#include "threads/ThreadContext.h"

#include <concepts>
#include <cstdint>

namespace thinlocks {

/// Result of a wait operation on an object monitor.
enum class WaitStatus {
  Notified, ///< Woken by notify/notifyAll.
  TimedOut, ///< The timeout elapsed first.
  NotOwner, ///< Caller did not own the monitor (IllegalMonitorState).
};

/// Result of a notify/notifyAll operation.
enum class NotifyStatus {
  Ok,       ///< Operation performed (possibly waking nobody).
  NotOwner, ///< Caller did not own the monitor (IllegalMonitorState).
};

/// Compile-time interface every synchronization protocol satisfies.
template <typename P>
concept SyncProtocol = requires(P Protocol, Object *Obj,
                                const ThreadContext &Thread,
                                int64_t TimeoutNanos) {
  { Protocol.lock(Obj, Thread) } -> std::same_as<void>;
  { Protocol.unlock(Obj, Thread) } -> std::same_as<void>;
  { Protocol.unlockChecked(Obj, Thread) } -> std::same_as<bool>;
  { Protocol.holdsLock(Obj, Thread) } -> std::same_as<bool>;
  { Protocol.lockDepth(Obj, Thread) } -> std::same_as<uint32_t>;
  { Protocol.wait(Obj, Thread, TimeoutNanos) } -> std::same_as<WaitStatus>;
  { Protocol.notify(Obj, Thread) } -> std::same_as<NotifyStatus>;
  { Protocol.notifyAll(Obj, Thread) } -> std::same_as<NotifyStatus>;
  { P::protocolName() } -> std::convertible_to<const char *>;
};

} // namespace thinlocks

#endif // THINLOCKS_CORE_LOCKPROTOCOL_H

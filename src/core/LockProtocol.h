//===- core/LockProtocol.h - Common protocol interface ---------*- C++ -*-===//
///
/// \file
/// The interface shared by every synchronization protocol in this library:
/// the thin-lock implementation (the paper's contribution) and the two
/// baselines it is measured against (the JDK 1.1.1 monitor cache and the
/// IBM 1.1.2 hot locks).  Benchmarks are templated over this concept so
/// the fast paths are compared without virtual-dispatch noise; the VM uses
/// the type-erased SyncBackend adapter instead.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_CORE_LOCKPROTOCOL_H
#define THINLOCKS_CORE_LOCKPROTOCOL_H

#include "heap/Object.h"
#include "threads/ThreadContext.h"

#include <concepts>
#include <cstdint>

namespace thinlocks {

/// Result of a wait operation on an object monitor.
enum class WaitStatus {
  Notified, ///< Woken by notify/notifyAll.
  TimedOut, ///< The timeout elapsed first.
  NotOwner, ///< Caller did not own the monitor (IllegalMonitorState).
};

/// Result of a notify/notifyAll operation.
enum class NotifyStatus {
  Ok,       ///< Operation performed (possibly waking nobody).
  NotOwner, ///< Caller did not own the monitor (IllegalMonitorState).
};

/// Outcome of a bounded acquisition attempt (tryLockFor).
enum class TimedLockStatus : uint8_t {
  Acquired, ///< The monitor is now held by the caller.
  TimedOut, ///< Deadline expired; no cycle was confirmed.
  Deadlock, ///< Deadline expired *and* a waits-for cycle through the
            ///< caller was double-confirmed.  Only protocols with a
            ///< waits-for graph (ThinLock) ever report this; the
            ///< baselines and Fissile always degrade to TimedOut.
};

/// The explicit degrade point for protocols *without* a waits-for
/// graph: a bounded acquire either succeeded or timed out — such a
/// protocol has no basis to claim Deadlock, and mis-reporting it would
/// turn generic consumers' precise-abort paths (the txn engine's
/// wait-die policy, the harness tryLockFor plumbing) into spurious
/// aborts.  Every non-thin protocol funnels its tryLockFor result
/// through here; the conformance suite pins the contract
/// (NonThinProtocolsNeverReportDeadlock).
constexpr TimedLockStatus degradeToTimedOut(bool Acquired) {
  return Acquired ? TimedLockStatus::Acquired : TimedLockStatus::TimedOut;
}

/// Compile-time interface every synchronization protocol satisfies.
/// tryLock/tryLockFor are part of the contract: the soak harness's
/// admission ladder and the deadlock-aware slow paths need bounded
/// acquisition from *any* protocol, so a protocol that omits them is
/// rejected at compile time (see the negative check in
/// tests/conformance_test.cpp).
template <typename P>
concept SyncProtocol = requires(P Protocol, Object *Obj,
                                const ThreadContext &Thread,
                                int64_t TimeoutNanos) {
  { Protocol.lock(Obj, Thread) } -> std::same_as<void>;
  { Protocol.unlock(Obj, Thread) } -> std::same_as<void>;
  { Protocol.unlockChecked(Obj, Thread) } -> std::same_as<bool>;
  { Protocol.tryLock(Obj, Thread) } -> std::same_as<bool>;
  {
    Protocol.tryLockFor(Obj, Thread, TimeoutNanos)
  } -> std::same_as<TimedLockStatus>;
  { Protocol.holdsLock(Obj, Thread) } -> std::same_as<bool>;
  { Protocol.lockDepth(Obj, Thread) } -> std::same_as<uint32_t>;
  { Protocol.wait(Obj, Thread, TimeoutNanos) } -> std::same_as<WaitStatus>;
  { Protocol.notify(Obj, Thread) } -> std::same_as<NotifyStatus>;
  { Protocol.notifyAll(Obj, Thread) } -> std::same_as<NotifyStatus>;
  { P::protocolName() } -> std::convertible_to<const char *>;
};

} // namespace thinlocks

#endif // THINLOCKS_CORE_LOCKPROTOCOL_H

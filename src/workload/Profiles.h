//===- workload/Profiles.h - Macro-benchmark profiles ----------*- C++ -*-===//
///
/// \file
/// The paper's 18 macro-benchmarks (Table 1) as locking *profiles*: how
/// many objects the program creates, how many are ever synchronized, how
/// many synchronization operations it performs, and the nesting-depth
/// mix of those operations (Figure 3).
///
/// Substitution note (see DESIGN.md): the original Java programs (javac,
/// javalex, jax, ...) are not available, so the macro experiments replay
/// these profiles synthetically.  The paper itself validates this
/// methodology in §3.4 by predicting javalex's and jax's measured macro
/// speedups to within 2% from their synchronization counts multiplied by
/// the micro-benchmark per-operation costs — i.e. the profile *is* the
/// performance-relevant content of the benchmark.
///
/// Values are taken from Table 1 and Figure 3 of the paper text where
/// legible; the source text is an imperfect OCR, so a few cells are
/// reconstructed from the paper's stated medians (22.7 syncs per
/// synchronized object; 80% of lock operations at depth 1; no locking
/// deeper than 4) and are marked in Profiles.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_WORKLOAD_PROFILES_H
#define THINLOCKS_WORKLOAD_PROFILES_H

#include <cstdint>
#include <vector>

namespace thinlocks {
namespace workload {

/// Locking profile of one macro-benchmark (one Table 1 row + one
/// Figure 3 bar).
struct BenchmarkProfile {
  const char *Name;
  const char *Description;
  /// Application / library bytecode sizes in bytes (Table 1 "Size").
  uint32_t AppBytecodeBytes;
  uint32_t LibBytecodeBytes;
  /// Total objects created (Table 1 "Objects").
  uint64_t ObjectsCreated;
  /// Objects that were ever synchronized (Table 1 "Sync'd Objects").
  uint64_t SynchronizedObjects;
  /// Total synchronization operations (Table 1 "Syncs").
  uint64_t SyncOperations;
  /// Figure 3: fraction of lock operations at depth 1 / 2 / 3 / 4+.
  /// Sums to 1.0.
  double DepthMix[4];
  /// Fraction of sync operations issued through thread-safe library
  /// classes (Vector/Hashtable/BitSet) rather than bare synchronized
  /// blocks, used by the VM-based replay flavour.
  double LibraryFraction;
};

/// \returns all 18 macro-benchmark profiles in Table 1 order.
const std::vector<BenchmarkProfile> &macroBenchmarkProfiles();

/// \returns the profile named \p Name, or nullptr.
const BenchmarkProfile *findProfile(const char *Name);

/// \returns Table 1's "Syncs/S.Obj" column for \p Profile.
double syncsPerSyncObject(const BenchmarkProfile &Profile);

/// \returns the median over all profiles of syncsPerSyncObject — the
/// paper reports 22.7.
double medianSyncsPerSyncObject();

/// \returns the median over all profiles of DepthMix[0] — the paper
/// reports that a median of 80% of lock operations are on unlocked
/// objects, with a minimum of 45%.
double medianFirstLockFraction();

} // namespace workload
} // namespace thinlocks

#endif // THINLOCKS_WORKLOAD_PROFILES_H

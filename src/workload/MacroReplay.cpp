//===- workload/MacroReplay.cpp - Profile-driven macro replay -------------===//

#include "workload/MacroReplay.h"

#include "support/Compiler.h"
#include "vm/NativeLibrary.h"
#include "vm/VM.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace thinlocks;
using namespace thinlocks::workload;

ReplayConfig workload::scaledConfigFor(const BenchmarkProfile &Profile,
                                       uint64_t TargetSyncOps,
                                       uint32_t WorkPerSync) {
  assert(TargetSyncOps > 0 && "target must be positive");
  ReplayConfig Cfg;
  Cfg.ScaleDivisor = Profile.SyncOperations > TargetSyncOps
                         ? Profile.SyncOperations / TargetSyncOps
                         : 1;
  Cfg.MinSyncOps = 1;
  Cfg.MaxSyncOps = 0;
  Cfg.WorkPerSync = WorkPerSync;
  return Cfg;
}

uint32_t workload::sampleSequenceDepth(const BenchmarkProfile &Profile,
                                       double U) {
  // Figure 3 gives per-*operation* depth fractions f1..f4.  A nesting
  // sequence of depth d contributes one operation at every depth <= d,
  // so the sequence-depth distribution q satisfies q_d = f_d - f_{d+1}
  // (f is non-increasing), with q_4 = f_4.
  double Q[4];
  for (unsigned D = 0; D < 4; ++D) {
    double Next = D == 3 ? 0.0 : Profile.DepthMix[D + 1];
    Q[D] = Profile.DepthMix[D] - Next;
    if (Q[D] < 0.0)
      Q[D] = 0.0;
  }
  double Total = Q[0] + Q[1] + Q[2] + Q[3];
  if (Total <= 0.0)
    return 1;
  double Scaled = U * Total;
  for (unsigned D = 0; D < 4; ++D) {
    if (Scaled < Q[D])
      return D + 1;
    Scaled -= Q[D];
  }
  return 4;
}

size_t workload::sampleObjectIndex(size_t Count, SplitMix64 &Rng) {
  assert(Count > 0 && "sampling from an empty population");
  // Squaring the uniform variate skews towards low indices: index 0's
  // neighbourhood is synchronized far more often than the tail, giving
  // the heavy re-synchronization Table 1 reports (median 22.7 syncs per
  // synchronized object) without per-profile fitting.
  double U = Rng.nextDouble();
  size_t Index = static_cast<size_t>(U * U * static_cast<double>(Count));
  return Index >= Count ? Count - 1 : Index;
}

TL_NOINLINE uint32_t workload::replayWork(uint32_t Seed, uint32_t Units) {
  // Knuth multiplicative hash keeps distinct seeds distinct; |1 keeps the
  // xorshift state nonzero.
  uint32_t X = Seed * 2654435761u | 1u;
  for (uint32_t I = 0; I < Units; ++I) {
    X ^= X << 13;
    X ^= X >> 17;
    X ^= X << 5;
  }
  return X;
}

ReplayResult workload::replayProfileOnVm(vm::VM &Vm,
                                         vm::NativeLibrary &Library,
                                         const BenchmarkProfile &Profile,
                                         const ThreadContext &Thread,
                                         const ReplayConfig &Cfg) {
  using vm::RunResult;
  using vm::Value;

  ReplayResult Result;
  SplitMix64 Rng(Cfg.Seed ^ Profile.SyncOperations ^ 0x5ca1ab1eu);

  uint64_t SyncOps = Profile.SyncOperations / Cfg.ScaleDivisor;
  if (SyncOps < Cfg.MinSyncOps)
    SyncOps = Cfg.MinSyncOps;
  if (Cfg.MaxSyncOps != 0 && SyncOps > Cfg.MaxSyncOps)
    SyncOps = Cfg.MaxSyncOps;

  uint64_t SyncObjects = Profile.SynchronizedObjects / Cfg.ScaleDivisor;
  if (SyncObjects == 0)
    SyncObjects = 1;
  // Keep VM replays bounded; they carry interpreter overhead per op.
  if (SyncObjects > 4096)
    SyncObjects = 4096;

  vm::Klass &PlainKlass = *Vm.findClass("java/lang/Class");

  auto checkedCall = [&](const vm::Method &M,
                         std::initializer_list<Value> Args) {
    std::vector<Value> ArgVec(Args);
    RunResult R = Vm.call(M, ArgVec, Thread);
    if (!R.ok()) {
      std::fprintf(stderr, "VM replay: %s trapped with %s\n",
                   M.Name.c_str(), vm::trapName(R.TrapKind));
      std::abort();
    }
    return R.Result;
  };

  StopWatch Watch;

  // Population: a mix of Vectors, Hashtables and BitSets (the paper's
  // motivating thread-safe classes), pre-populated so reads succeed.
  std::vector<Object *> Population;
  Population.reserve(SyncObjects);
  for (uint64_t I = 0; I < SyncObjects; ++I) {
    Object *Obj = nullptr;
    switch (I % 3) {
    case 0:
      Obj = Vm.newInstance(Library.vectorClass());
      for (int32_t E = 0; E < 4; ++E)
        checkedCall(Library.vectorAddElement(),
                    {Value::makeRef(Obj), Value::makeInt(E * 7)});
      break;
    case 1:
      Obj = Vm.newInstance(Library.hashtableClass());
      for (int32_t K = 0; K < 4; ++K)
        checkedCall(Library.hashtablePut(),
                    {Value::makeRef(Obj), Value::makeInt(K),
                     Value::makeInt(K * 3)});
      break;
    case 2:
      Obj = Vm.newInstance(Library.bitSetClass());
      checkedCall(Library.bitSetSet(),
                  {Value::makeRef(Obj), Value::makeInt(5)});
      break;
    }
    Population.push_back(Obj);
  }
  Result.SynchronizedObjects = SyncObjects;
  Result.ObjectsCreated = SyncObjects;

  uint64_t PlainObjects = Profile.ObjectsCreated / Cfg.ScaleDivisor;
  PlainObjects = PlainObjects > SyncObjects ? PlainObjects - SyncObjects : 0;
  double PlainPerOp = SyncOps == 0 ? 0.0
                                   : static_cast<double>(PlainObjects) /
                                         static_cast<double>(SyncOps);
  double PlainDebt = 0.0;
  uint32_t WorkAccumulator = static_cast<uint32_t>(Cfg.Seed);

  uint64_t OpsDone = 0;
  while (OpsDone < SyncOps) {
    size_t Index = sampleObjectIndex(Population.size(), Rng);
    Object *Obj = Population[Index];
    uint64_t Consumed = 0;

    if (Rng.nextBool(Profile.LibraryFraction)) {
      // One synchronized library call (depth 1).
      switch (Index % 3) {
      case 0:
        checkedCall(Library.vectorElementAt(),
                    {Value::makeRef(Obj),
                     Value::makeInt(static_cast<int32_t>(Rng.nextBounded(4)))});
        break;
      case 1:
        checkedCall(Library.hashtableGet(),
                    {Value::makeRef(Obj),
                     Value::makeInt(static_cast<int32_t>(Rng.nextBounded(4)))});
        break;
      case 2:
        checkedCall(
            Library.bitSetGet(),
            {Value::makeRef(Obj),
             Value::makeInt(static_cast<int32_t>(Rng.nextBounded(64)))});
        break;
      }
      ++Result.DepthCounts[0];
      Consumed = 1;
      WorkAccumulator = replayWork(WorkAccumulator, Cfg.WorkPerSync);
    } else {
      uint32_t Depth = sampleSequenceDepth(Profile, Rng.nextDouble());
      if (Depth > SyncOps - OpsDone)
        Depth = static_cast<uint32_t>(SyncOps - OpsDone);
      if (Depth == 0)
        Depth = 1;
      for (uint32_t D = 0; D < Depth; ++D) {
        Vm.sync().lock(Obj, Thread);
        ++Result.DepthCounts[D >= 3 ? 3 : D];
        WorkAccumulator = replayWork(WorkAccumulator, Cfg.WorkPerSync);
      }
      for (uint32_t D = 0; D < Depth; ++D)
        Vm.sync().unlock(Obj, Thread);
      Consumed = Depth;
    }
    OpsDone += Consumed;

    PlainDebt += PlainPerOp * static_cast<double>(Consumed);
    while (PlainDebt >= 1.0) {
      Vm.newInstance(PlainKlass);
      ++Result.ObjectsCreated;
      PlainDebt -= 1.0;
    }
  }

  Result.SyncOperations = OpsDone;
  Result.ElapsedNanos = Watch.elapsedNanos();
  (void)WorkAccumulator;
  return Result;
}

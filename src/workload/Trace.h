//===- workload/Trace.h - Lock-operation trace record & replay -*- C++ -*-===//
///
/// \file
/// The measurement methodology of paper §3.1-3.2 as a reusable
/// component: the authors instrumented their JVM to record every
/// synchronization operation, then characterized the traces (Table 1,
/// Figure 3).  This module provides:
///
///  - TracingBackend: a SyncBackend decorator that appends every monitor
///    operation to a LockTrace while forwarding to the real protocol;
///  - LockTrace: the recorded stream, with save/load in a line-oriented
///    text format and the Table-1/Figure-3 characterization queries;
///  - replayTrace(): re-executes a recorded single-threaded trace
///    against any protocol (the mechanism by which one program's locking
///    behaviour can be measured under many implementations).
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_WORKLOAD_TRACE_H
#define THINLOCKS_WORKLOAD_TRACE_H

#include "core/LockProtocol.h"
#include "core/SyncBackend.h"
#include "heap/Heap.h"
#include "support/Timer.h"
#include "threads/ThreadContext.h"

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace thinlocks {
namespace workload {

/// One recorded monitor operation.
struct TraceEvent {
  enum class Kind : uint8_t { Lock, Unlock, Wait, Notify, NotifyAll };
  Kind Op = Kind::Lock;
  /// Dense object id assigned at first appearance.
  uint32_t ObjectId = 0;
  /// Recording thread's registry index.
  uint16_t ThreadIndex = 0;
};

/// \returns the single-character mnemonic used in the text format.
char traceEventCode(TraceEvent::Kind Kind);

/// A recorded sequence of monitor operations over a set of objects.
class LockTrace {
public:
  void append(TraceEvent Event) { Events.push_back(Event); }

  const std::vector<TraceEvent> &events() const { return Events; }
  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }

  /// \returns the number of distinct objects appearing in the trace
  /// (ids are dense, so this is max id + 1).
  uint32_t objectCount() const;

  /// \returns the number of distinct threads appearing in the trace.
  uint32_t threadCount() const;

  /// Table 1 style: total lock operations.
  uint64_t lockOperationCount() const;

  /// Table 1 style: locks per locked object (0 if nothing was locked).
  double locksPerObject() const;

  /// Figure 3 style: fraction of lock operations at depth 1/2/3/4+,
  /// computed by simulating per-thread hold depths over the trace.
  /// Meaningful for well-nested traces (which TracingBackend produces).
  void depthMix(double Out[4]) const;

  /// Serializes as one event per line: "<code> <objectId> <threadIndex>".
  void save(std::ostream &Out) const;

  /// Parses the save() format.  \returns false on malformed input
  /// (leaving the trace in a valid but unspecified state).
  bool load(std::istream &In);

  bool operator==(const LockTrace &Other) const {
    if (Events.size() != Other.Events.size())
      return false;
    for (size_t I = 0; I < Events.size(); ++I)
      if (Events[I].Op != Other.Events[I].Op ||
          Events[I].ObjectId != Other.Events[I].ObjectId ||
          Events[I].ThreadIndex != Other.Events[I].ThreadIndex)
        return false;
    return true;
  }

private:
  std::vector<TraceEvent> Events;
};

/// SyncBackend decorator recording every operation into a LockTrace
/// while forwarding to an underlying backend.  Object identity is
/// interned to dense ids in first-use order.  Thread-safe (appends are
/// serialized by an internal mutex; use one recorder per measurement).
class TracingBackend final : public SyncBackend {
public:
  TracingBackend(SyncBackend &Underlying, LockTrace &Trace)
      : Underlying(Underlying), Trace(Trace) {}

  const char *name() const override { return Underlying.name(); }
  void lock(Object *Obj, const ThreadContext &Thread) override;
  void unlock(Object *Obj, const ThreadContext &Thread) override;
  bool unlockChecked(Object *Obj, const ThreadContext &Thread) override;
  /// A successful try/timed acquire records as a Lock (the trace format
  /// has no failure events, and only successes affect nesting); a
  /// failed one leaves no trace.
  bool tryLock(Object *Obj, const ThreadContext &Thread) override;
  TimedLockStatus tryLockFor(Object *Obj, const ThreadContext &Thread,
                             int64_t TimeoutNanos) override;
  bool holdsLock(Object *Obj,
                 const ThreadContext &Thread) const override {
    return Underlying.holdsLock(Obj, Thread);
  }
  uint32_t lockDepth(Object *Obj,
                     const ThreadContext &Thread) const override {
    return Underlying.lockDepth(Obj, Thread);
  }
  WaitStatus wait(Object *Obj, const ThreadContext &Thread,
                  int64_t TimeoutNanos) override;
  NotifyStatus notify(Object *Obj, const ThreadContext &Thread) override;
  NotifyStatus notifyAll(Object *Obj,
                         const ThreadContext &Thread) override;
  std::string statsJson() const override { return Underlying.statsJson(); }
  bool inflateHint(Object *Obj, const ThreadContext &Thread) override {
    return Underlying.inflateHint(Obj, Thread);
  }

  /// \returns the dense id assigned to \p Obj (interning it if new).
  uint32_t internObject(const Object *Obj);

private:
  void record(TraceEvent::Kind Kind, const Object *Obj,
              const ThreadContext &Thread);

  SyncBackend &Underlying;
  LockTrace &Trace;
  std::mutex Mutex;
  std::unordered_map<const Object *, uint32_t> ObjectIds;
};

/// Result of replaying a trace.
struct TraceReplayResult {
  uint64_t EventsReplayed = 0;
  uint64_t ElapsedNanos = 0;
  /// Events skipped because they were illegal at replay time (e.g. an
  /// unlock recorded NotOwner); zero for well-formed traces.
  uint64_t SkippedEvents = 0;
};

/// Replays a single-threaded trace (all events from one recording
/// thread) against \p Protocol: allocates objectCount() fresh objects
/// and re-issues every operation in order.  wait events are replayed as
/// zero-ish timeout waits (no partner exists to notify).
template <SyncProtocol P>
TraceReplayResult replayTrace(const LockTrace &Trace, P &Protocol,
                              Heap &TheHeap, const ThreadContext &Thread) {
  TraceReplayResult Result;
  const ClassInfo &Class =
      TheHeap.classes().registerClass("TraceObj", 0);
  std::vector<Object *> Objects;
  Objects.reserve(Trace.objectCount());
  for (uint32_t I = 0; I < Trace.objectCount(); ++I)
    Objects.push_back(TheHeap.allocate(Class));

  StopWatch Watch;
  for (const TraceEvent &Event : Trace.events()) {
    Object *Obj = Objects[Event.ObjectId];
    switch (Event.Op) {
    case TraceEvent::Kind::Lock:
      Protocol.lock(Obj, Thread);
      break;
    case TraceEvent::Kind::Unlock:
      if (!Protocol.unlockChecked(Obj, Thread))
        ++Result.SkippedEvents;
      break;
    case TraceEvent::Kind::Wait:
      if (Protocol.wait(Obj, Thread, /*TimeoutNanos=*/1000) ==
          WaitStatus::NotOwner)
        ++Result.SkippedEvents;
      break;
    case TraceEvent::Kind::Notify:
      if (Protocol.notify(Obj, Thread) == NotifyStatus::NotOwner)
        ++Result.SkippedEvents;
      break;
    case TraceEvent::Kind::NotifyAll:
      if (Protocol.notifyAll(Obj, Thread) == NotifyStatus::NotOwner)
        ++Result.SkippedEvents;
      break;
    }
    ++Result.EventsReplayed;
  }
  Result.ElapsedNanos = Watch.elapsedNanos();
  return Result;
}

} // namespace workload
} // namespace thinlocks

#endif // THINLOCKS_WORKLOAD_TRACE_H

//===- workload/MicroBench.h - Table 2 micro-benchmarks --------*- C++ -*-===//
///
/// \file
/// The paper's Table 2 micro-benchmarks in two flavours:
///
/// 1. *Bytecode* programs (buildMicroPrograms) that run on the microjvm,
///    matching the paper's interpreted-JDK setting: "Each benchmark runs
///    a tight loop ... inside the loop an integer variable is
///    incremented."  NoSync / Sync / NestedSync / MixedSync and the
///    Call / CallSync / NestedCallSync family are all here.
///
/// 2. *Native* kernels (templates over any SyncProtocol) that call the
///    locking fast paths directly with no interpretation overhead.  The
///    MultiSync-n working-set sweep and the Threads-n contention sweep
///    use these so the protocol cost dominates the measurement; they are
///    also what bench_fastpath uses to measure the bare per-operation
///    cost the paper quotes in instructions.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_WORKLOAD_MICROBENCH_H
#define THINLOCKS_WORKLOAD_MICROBENCH_H

#include "core/LockProtocol.h"
#include "heap/Heap.h"
#include "support/Compiler.h"
#include "threads/ThreadRegistry.h"
#include "vm/VM.h"

#include <cstdint>
#include <thread>
#include <vector>

namespace thinlocks {
namespace workload {

//===----------------------------------------------------------------------===//
// Bytecode flavour
//===----------------------------------------------------------------------===//

/// Handles to the assembled Table 2 programs on one VM.
struct MicroPrograms {
  /// Shared benchmark class; `counter` int field, `target` ref field.
  vm::Klass *BenchKlass = nullptr;

  /// NoSync(iters): tight loop, integer increment.  Reference benchmark.
  const vm::Method *NoSync = nullptr;
  /// Sync(iters, obj): loop around synchronized(obj){ counter++ }.
  const vm::Method *Sync = nullptr;
  /// NestedSync(iters, obj): obj locked outside the loop, then the same
  /// loop as Sync, so every iteration is a nested (depth 2) lock.
  const vm::Method *NestedSync = nullptr;
  /// MixedSync(iters, obj): three nested locks per iteration (Figure 6).
  const vm::Method *MixedSync = nullptr;
  /// Call(iters, obj): loop calling an empty non-synchronized method.
  const vm::Method *Call = nullptr;
  /// CallSync(iters, obj): loop calling a synchronized method.
  const vm::Method *CallSync = nullptr;
  /// NestedCallSync(iters, obj): obj locked outside the loop, then the
  /// CallSync loop.
  const vm::Method *NestedCallSync = nullptr;
  /// ThreadBody(iters, obj): the per-thread loop of the Threads-n
  /// benchmark (same body as Sync).
  const vm::Method *ThreadBody = nullptr;
};

/// Assembles all Table 2 programs into \p Vm.  Call once per VM, before
/// spawning VM threads.
MicroPrograms buildMicroPrograms(vm::VM &Vm);

/// Runs program \p M with (iters, obj) arguments on the calling thread.
/// Aborts on a trap (micro-benchmarks are trap-free by construction).
void runMicroProgram(vm::VM &Vm, const vm::Method &M, int32_t Iterations,
                     Object *Target, const ThreadContext &Thread);

/// Runs the Threads-n benchmark: \p NumThreads VM threads each execute
/// ThreadBody(itersPerThread, obj) against the *same* object.
void runVmThreadsBenchmark(vm::VM &Vm, const MicroPrograms &Programs,
                           uint32_t NumThreads, int32_t ItersPerThread,
                           Object *Target);

//===----------------------------------------------------------------------===//
// Native flavour
//===----------------------------------------------------------------------===//

/// Opaque data sink preventing dead-code elimination of kernel loops.
uint64_t consumeValue(uint64_t Value);

/// NoSync reference: \p Iterations integer increments.
uint64_t runNativeNoSync(uint64_t Iterations);

/// Sync: lock/increment/unlock an initially unlocked object.
template <SyncProtocol P>
uint64_t runNativeSync(P &Protocol, Object *Obj,
                       const ThreadContext &Thread, uint64_t Iterations) {
  uint64_t Counter = 0;
  for (uint64_t I = 0; I < Iterations; ++I) {
    Protocol.lock(Obj, Thread);
    ++Counter;
    Protocol.unlock(Obj, Thread);
  }
  return consumeValue(Counter);
}

/// NestedSync: the object is locked once outside the loop.
template <SyncProtocol P>
uint64_t runNativeNestedSync(P &Protocol, Object *Obj,
                             const ThreadContext &Thread,
                             uint64_t Iterations) {
  uint64_t Counter = 0;
  Protocol.lock(Obj, Thread);
  for (uint64_t I = 0; I < Iterations; ++I) {
    Protocol.lock(Obj, Thread);
    ++Counter;
    Protocol.unlock(Obj, Thread);
  }
  Protocol.unlock(Obj, Thread);
  return consumeValue(Counter);
}

/// MixedSync: three nested lock/unlock pairs per iteration (Figure 6).
template <SyncProtocol P>
uint64_t runNativeMixedSync(P &Protocol, Object *Obj,
                            const ThreadContext &Thread,
                            uint64_t Iterations) {
  uint64_t Counter = 0;
  for (uint64_t I = 0; I < Iterations; ++I) {
    Protocol.lock(Obj, Thread);
    Protocol.lock(Obj, Thread);
    Protocol.lock(Obj, Thread);
    ++Counter;
    Protocol.unlock(Obj, Thread);
    Protocol.unlock(Obj, Thread);
    Protocol.unlock(Obj, Thread);
  }
  return consumeValue(Counter);
}

/// MultiSync n: every iteration synchronizes each of \p Objects once —
/// a locking working set of size n (Figure 4's IBM112/JDK111 cliffs).
template <SyncProtocol P>
uint64_t runNativeMultiSync(P &Protocol, const std::vector<Object *> &Objects,
                            const ThreadContext &Thread,
                            uint64_t Iterations) {
  uint64_t Counter = 0;
  for (uint64_t I = 0; I < Iterations; ++I) {
    for (Object *Obj : Objects) {
      Protocol.lock(Obj, Thread);
      ++Counter;
      Protocol.unlock(Obj, Thread);
    }
  }
  return consumeValue(Counter);
}

/// Threads n: \p NumThreads OS threads each lock/unlock the same object
/// \p ItersPerThread times (initial locking under contention).
template <SyncProtocol P>
uint64_t runNativeThreads(P &Protocol, Object *Obj, ThreadRegistry &Registry,
                          uint32_t NumThreads, uint64_t ItersPerThread) {
  std::vector<std::thread> Workers;
  Workers.reserve(NumThreads);
  for (uint32_t T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&Protocol, Obj, &Registry, ItersPerThread] {
      ScopedThreadAttachment Attachment(Registry);
      uint64_t Local = 0;
      for (uint64_t I = 0; I < ItersPerThread; ++I) {
        Protocol.lock(Obj, Attachment.context());
        ++Local;
        Protocol.unlock(Obj, Attachment.context());
      }
      consumeValue(Local);
    });
  }
  for (std::thread &Worker : Workers)
    Worker.join();
  return static_cast<uint64_t>(NumThreads) * ItersPerThread;
}

/// Call / CallSync / NestedCallSync use out-of-line callees to model the
/// method-invocation overhead the paper notes reduces CallSync speedups.
uint64_t callPlain(uint64_t Counter);

template <SyncProtocol P>
TL_NOINLINE uint64_t callSynchronized(P &Protocol, Object *Obj,
                                      const ThreadContext &Thread,
                                      uint64_t Counter) {
  Protocol.lock(Obj, Thread);
  ++Counter;
  Protocol.unlock(Obj, Thread);
  return Counter;
}

uint64_t runNativeCall(uint64_t Iterations);

template <SyncProtocol P>
uint64_t runNativeCallSync(P &Protocol, Object *Obj,
                           const ThreadContext &Thread,
                           uint64_t Iterations) {
  uint64_t Counter = 0;
  for (uint64_t I = 0; I < Iterations; ++I)
    Counter = callSynchronized(Protocol, Obj, Thread, Counter);
  return consumeValue(Counter);
}

template <SyncProtocol P>
uint64_t runNativeNestedCallSync(P &Protocol, Object *Obj,
                                 const ThreadContext &Thread,
                                 uint64_t Iterations) {
  Protocol.lock(Obj, Thread);
  uint64_t Counter = 0;
  for (uint64_t I = 0; I < Iterations; ++I)
    Counter = callSynchronized(Protocol, Obj, Thread, Counter);
  Protocol.unlock(Obj, Thread);
  return consumeValue(Counter);
}

} // namespace workload
} // namespace thinlocks

#endif // THINLOCKS_WORKLOAD_MICROBENCH_H

//===- workload/MacroReplay.h - Profile-driven macro replay ----*- C++ -*-===//
///
/// \file
/// Replays a macro-benchmark locking profile (workload/Profiles.h)
/// against any synchronization protocol and times it — the engine behind
/// the Table 1 / Figure 3 characterization and the Figure 5 speedup
/// comparison.
///
/// A replay performs the profile's object allocations and its
/// synchronization operations with the profile's nesting-depth mix and a
/// skewed object-popularity distribution (re-synchronization on the same
/// objects is common: the median benchmark synchronizes each synchronized
/// object 22.7 times).  Between synchronizations it executes a calibrated
/// amount of plain computation so that, as in the real programs, locking
/// is a large-but-not-total fraction of run time.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_WORKLOAD_MACROREPLAY_H
#define THINLOCKS_WORKLOAD_MACROREPLAY_H

#include "core/LockProtocol.h"
#include "heap/Heap.h"
#include "support/SplitMix64.h"
#include "support/Timer.h"
#include "threads/ThreadContext.h"
#include "threads/ThreadRegistry.h"
#include "workload/Profiles.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace thinlocks {
namespace vm {
class VM;
class NativeLibrary;
} // namespace vm

namespace workload {

/// Replay tuning knobs.
struct ReplayConfig {
  /// Every profile count is divided by this (the paper's programs run
  /// minutes; replays run milliseconds).
  uint64_t ScaleDivisor = 64;
  /// Units of plain computation between synchronizations, calibrating
  /// the sync-time fraction.  0 makes the replay sync-bound.
  uint32_t WorkPerSync = 24;
  uint64_t Seed = 42;
  /// Floor on replayed sync operations after scaling.
  uint64_t MinSyncOps = 2000;
  /// Cap on replayed sync operations (0 = none).
  uint64_t MaxSyncOps = 0;
};

/// What a replay actually did (compare against the profile).
struct ReplayResult {
  uint64_t ObjectsCreated = 0;
  uint64_t SynchronizedObjects = 0;
  uint64_t SyncOperations = 0;
  /// Lock operations by depth 1 / 2 / 3 / 4+ (the Figure 3 buckets).
  uint64_t DepthCounts[4] = {0, 0, 0, 0};
  uint64_t ElapsedNanos = 0;

  double depthFraction(unsigned Bucket) const {
    uint64_t Total =
        DepthCounts[0] + DepthCounts[1] + DepthCounts[2] + DepthCounts[3];
    if (Total == 0)
      return 0.0;
    return static_cast<double>(DepthCounts[Bucket]) /
           static_cast<double>(Total);
  }
};

/// Builds a per-profile configuration that replays roughly
/// \p TargetSyncOps operations while preserving the profile's *natural*
/// ratios (syncs per synchronized object, allocations per sync): the
/// divisor adapts to the profile size instead of flooring the op count.
/// Profiles smaller than the target replay at full scale.
ReplayConfig scaledConfigFor(const BenchmarkProfile &Profile,
                             uint64_t TargetSyncOps, uint32_t WorkPerSync);

/// Samples the depth of one synchronization *sequence* such that the
/// per-operation depth fractions match \p Profile's Figure 3 mix.
/// \p U is uniform in [0,1).
uint32_t sampleSequenceDepth(const BenchmarkProfile &Profile, double U);

/// Skewed index in [0, Count): popular objects are synchronized far more
/// often than unpopular ones.
size_t sampleObjectIndex(size_t Count, SplitMix64 &Rng);

/// \p Units rounds of cheap integer mixing (out of line, unelidable).
uint32_t replayWork(uint32_t Seed, uint32_t Units);

/// Replays \p Profile on \p Protocol.  Single-threaded (the paper's
/// macro-benchmarks are all single-threaded programs — measuring exactly
/// that "performance tax" is the point of the experiment).
template <SyncProtocol P>
ReplayResult replayProfile(const BenchmarkProfile &Profile, P &Protocol,
                           Heap &TheHeap, const ThreadContext &Thread,
                           const ReplayConfig &Cfg = ReplayConfig()) {
  ReplayResult Result;
  SplitMix64 Rng(Cfg.Seed ^ Profile.SyncOperations);

  uint64_t SyncOps = Profile.SyncOperations / Cfg.ScaleDivisor;
  if (SyncOps < Cfg.MinSyncOps)
    SyncOps = Cfg.MinSyncOps;
  if (Cfg.MaxSyncOps != 0 && SyncOps > Cfg.MaxSyncOps)
    SyncOps = Cfg.MaxSyncOps;

  uint64_t SyncObjects = Profile.SynchronizedObjects / Cfg.ScaleDivisor;
  if (SyncObjects == 0)
    SyncObjects = 1;
  // Objects synchronized are "generally less than a tenth" of all
  // objects; allocate the plain remainder too, spread across the run.
  uint64_t PlainObjects = Profile.ObjectsCreated / Cfg.ScaleDivisor;
  PlainObjects = PlainObjects > SyncObjects ? PlainObjects - SyncObjects : 0;

  const ClassInfo &Class =
      TheHeap.classes().registerClass(Profile.Name, /*SlotCount=*/2);

  StopWatch Watch;

  std::vector<Object *> Population;
  Population.reserve(SyncObjects);
  for (uint64_t I = 0; I < SyncObjects; ++I)
    Population.push_back(TheHeap.allocate(Class));
  Result.SynchronizedObjects = SyncObjects;
  Result.ObjectsCreated = SyncObjects;

  double PlainPerOp =
      SyncOps == 0 ? 0.0
                   : static_cast<double>(PlainObjects) /
                         static_cast<double>(SyncOps);
  double PlainDebt = 0.0;
  uint32_t WorkAccumulator = static_cast<uint32_t>(Cfg.Seed);

  uint64_t OpsDone = 0;
  while (OpsDone < SyncOps) {
    Object *Obj = Population[sampleObjectIndex(Population.size(), Rng)];
    uint32_t Depth = sampleSequenceDepth(Profile, Rng.nextDouble());
    if (Depth > SyncOps - OpsDone)
      Depth = static_cast<uint32_t>(SyncOps - OpsDone);
    if (Depth == 0)
      Depth = 1;

    for (uint32_t D = 0; D < Depth; ++D) {
      Protocol.lock(Obj, Thread);
      unsigned Bucket = D >= 3 ? 3 : D;
      ++Result.DepthCounts[Bucket];
      WorkAccumulator = replayWork(WorkAccumulator, Cfg.WorkPerSync);
    }
    for (uint32_t D = 0; D < Depth; ++D)
      Protocol.unlock(Obj, Thread);
    OpsDone += Depth;

    PlainDebt += PlainPerOp * Depth;
    while (PlainDebt >= 1.0) {
      TheHeap.allocate(Class);
      ++Result.ObjectsCreated;
      PlainDebt -= 1.0;
    }
  }
  Result.SyncOperations = OpsDone;
  Result.ElapsedNanos = Watch.elapsedNanos();
  (void)WorkAccumulator;
  return Result;
}

/// Tuning for replayProfileContended().
struct ContendedReplayConfig {
  ReplayConfig Replay;
  /// Extra threads hammering the shared hot object.
  unsigned Contenders = 3;
  /// Large enough that, even on a single-CPU machine where contention
  /// only arises when the scheduler preempts a holder mid-critical-
  /// section, each thread spans several scheduling quanta.
  uint64_t HammerOpsPerThread = 40000;
  /// replayWork() units while holding the hot lock — long enough that
  /// contenders actually collide and park.
  uint32_t WorkPerHold = 64;
};

/// What replayProfileContended() did beyond the plain replay.
struct ContendedReplayResult {
  ReplayResult Replay;
  /// The deliberately contended object (class "HotShared").  Tracing
  /// and profiling experiments use it as ground truth: a hot-lock
  /// report over the run must rank it first.
  Object *HotObject = nullptr;
  uint64_t HammerOps = 0;
};

/// Contended variant for the observability experiments (DESIGN.md §10):
/// the main thread replays \p Profile exactly as replayProfile() does
/// while Cfg.Contenders extra registry-attached threads hammer one
/// shared object of class "HotShared".  The replay population keeps the
/// profile's single-threaded character; the hot object supplies a known
/// answer for contention profilers to find.
template <SyncProtocol P>
ContendedReplayResult
replayProfileContended(const BenchmarkProfile &Profile, P &Protocol,
                       Heap &TheHeap, ThreadRegistry &Registry,
                       const ThreadContext &MainThread,
                       const ContendedReplayConfig &Cfg =
                           ContendedReplayConfig()) {
  ContendedReplayResult Out;
  const ClassInfo &HotClass =
      TheHeap.classes().registerClass("HotShared", /*SlotCount=*/1);
  Object *Hot = TheHeap.allocate(HotClass);
  Out.HotObject = Hot;

  std::atomic<uint64_t> Ops{0};
  // Start gate: without it the hammer loops are short enough that each
  // thread can finish before the next one is even spawned — serialized
  // "contenders" that never collide.
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;
  Threads.reserve(Cfg.Contenders);
  for (unsigned T = 0; T < Cfg.Contenders; ++T) {
    Threads.emplace_back([&Protocol, &Registry, &Ops, &Go, &Cfg, Hot, T] {
      ScopedThreadAttachment Attach(Registry, "hammer");
      const ThreadContext &Me = Attach.context();
      if (!Me.isValid())
        return;
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      uint32_t Acc = T + 1;
      for (uint64_t I = 0; I < Cfg.HammerOpsPerThread; ++I) {
        Protocol.lock(Hot, Me);
        Acc = replayWork(Acc, Cfg.WorkPerHold);
        Protocol.unlock(Hot, Me);
      }
      Ops.fetch_add(Cfg.HammerOpsPerThread, std::memory_order_relaxed);
    });
  }
  Go.store(true, std::memory_order_release);
  Out.Replay =
      replayProfile(Profile, Protocol, TheHeap, MainThread, Cfg.Replay);
  for (std::thread &T : Threads)
    T.join();
  Out.HammerOps = Ops.load(std::memory_order_relaxed);
  return Out;
}

/// VM-flavoured replay: the same profile, but the synchronization happens
/// through interpreted calls to the thread-safe library classes (Vector /
/// Hashtable / BitSet) on \p Vm, per the profile's LibraryFraction, with
/// bare lock/unlock sequences for the rest.  Slower and closer to the
/// paper's environment; used by the lock_census example and integration
/// tests.
ReplayResult replayProfileOnVm(vm::VM &Vm, vm::NativeLibrary &Library,
                               const BenchmarkProfile &Profile,
                               const ThreadContext &Thread,
                               const ReplayConfig &Cfg = ReplayConfig());

} // namespace workload
} // namespace thinlocks

#endif // THINLOCKS_WORKLOAD_MACROREPLAY_H

//===- workload/Profiles.cpp - Macro-benchmark profiles -------------------===//
//
// Data source: Table 1 and Figure 3 of the paper.  The available text of
// the paper is an OCR with damaged table layout, so:
//  - every (SynchronizedObjects, SyncOperations, Syncs/S.Obj) triple below
//    is a legible, self-consistent row of Table 1 (ratio = syncs/objects
//    holds to OCR precision);
//  - the row->program assignment follows the table's program order and the
//    paper's prose anchors (jax performs ~19M synchronizations through
//    BitSet.get; javalex ~2M synchronized calls dominated by
//    Vector.elementAt; javac ships entirely as library bytecode);
//  - cells marked "(reconstructed)" were illegible and are estimates
//    consistent with the paper's aggregate statements: objects
//    synchronized are "generally less than a tenth of the total number of
//    objects created", the median Syncs/S.Obj is 22.7, the median
//    first-lock fraction is 80% with a minimum of 45%, and no benchmark
//    locks deeper than four.
//
//===----------------------------------------------------------------------===//

#include "workload/Profiles.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace thinlocks;
using namespace thinlocks::workload;

namespace {

// Shorthand: {first, second, third, fourth} fractions for Figure 3.
constexpr BenchmarkProfile makeProfile(const char *Name, const char *Desc,
                                       uint32_t App, uint32_t Lib,
                                       uint64_t Objects, uint64_t SyncObjs,
                                       uint64_t Syncs, double First,
                                       double Second, double Third,
                                       double Fourth, double LibFrac) {
  return BenchmarkProfile{Name,  Desc,  App,
                          Lib,   Objects, SyncObjs,
                          Syncs, {First, Second, Third, Fourth},
                          LibFrac};
}

const std::vector<BenchmarkProfile> &profiles() {
  static const std::vector<BenchmarkProfile> Profiles = {
      makeProfile("trans", "High Performance Java Compiler (IBM)", 124751,
                  159747, 486215, 49313, 873911, 0.62, 0.30, 0.06, 0.02,
                  0.40),
      makeProfile("javac", "Java source to bytecode compiler (Sun)",
                  /*App (javac ships in the sun hierarchy, counted as
                     library)=*/0,
                  298436, 345687, 24735, 856666, 0.80, 0.16, 0.03, 0.01,
                  0.45),
      makeProfile("jacorb", "Java Object Request Broker 0.5 (Freie U.)",
                  12182, 159747, 4258177, 150175, 12975639, 0.84, 0.13,
                  0.02, 0.01, 0.50),
      makeProfile("javaparser", "Java grammar parser (Sun)", 59431, 159747,
                  /*Objects (reconstructed)=*/512000, 39138, 888390, 0.78,
                  0.18, 0.03, 0.01, 0.40),
      makeProfile("jobe", "Java Obfuscator 1.0 (E. Jokioinen)", 52961,
                  159747, /*Objects (reconstructed)=*/118000, 31, 621,
                  0.92, 0.07, 0.01, 0.00, 0.30),
      makeProfile("toba", "Java to C translator (U. Arizona)", 23743,
                  166472, /*Objects (reconstructed)=*/930000, 70796,
                  1611558, 0.73, 0.22, 0.04, 0.01, 0.40),
      makeProfile("javalex", "Lexical analyzer generator for Java (E. Berk)",
                  25058, 159747, 43392, 10333, 1975481, 0.88, 0.10, 0.02,
                  0.00, 0.70),
      makeProfile("jax", "Java scanner generator (K.B. Sriram)", 19182,
                  160963, 24615, 4629, 19960283, 0.45, 0.45, 0.08, 0.02,
                  0.90),
      makeProfile("javacup", "Java Constructor of Parsers (S. Hudson)",
                  30569, 160963, 221093, 23676, 330100, 0.80, 0.17, 0.02,
                  0.01, 0.40),
      makeProfile("NetRexx", "NetRexx to Java translator 1.0 (IBM)", 136535,
                  298436, 2258960, 139253, 1918352, 0.76, 0.19, 0.04, 0.01,
                  0.45),
      makeProfile("Espresso", "Java source to bytecode compiler (M. Odersky)",
                  10105, 159758, /*Objects (reconstructed)=*/152000, 12243,
                  90573, 0.85, 0.12, 0.02, 0.01, 0.35),
      makeProfile("HashJava", "Java obfuscator (K.B. Sriram)", 16821, 160827,
                  247723, 7281, 212148, 0.70, 0.25, 0.04, 0.01, 0.40),
      makeProfile("crema", "Java obfuscator (H.P. van Vliet)", 26008, 161071,
                  84532, 10228, 275155, 0.82, 0.15, 0.02, 0.01, 0.35),
      makeProfile("jaNet", "Java Neural Network ToolKit (W. Gander)", 8825,
                  160827, 1083688, 234, 23369, 0.95, 0.04, 0.01, 0.00,
                  0.25),
      makeProfile("javadoc", "Java document generator (Sun)", 24154, 161229,
                  625039, 119179, 1651763, 0.80, 0.17, 0.02, 0.01, 0.45),
      makeProfile("javap", "Java disassembler (Sun)", 139800, 161096,
                  334824, 448, 12030, 0.90, 0.08, 0.01, 0.01, 0.30),
      makeProfile("mocha", "Java decompiler (H.P. van Vliet)",
                  /*App (reconstructed)=*/35285, 160827, 879254, 107510,
                  2175567, 0.65, 0.28, 0.05, 0.02, 0.45),
      makeProfile("wingdis", "Java decompiler, demo version (WingSoft)",
                  79260, 162650, 2577899, 633145, 3647296, 0.58, 0.34,
                  0.06, 0.02, 0.50),
  };
  return Profiles;
}

double medianOf(std::vector<double> Values) {
  assert(!Values.empty() && "median of nothing");
  std::sort(Values.begin(), Values.end());
  size_t N = Values.size();
  if (N % 2 == 1)
    return Values[N / 2];
  return (Values[N / 2 - 1] + Values[N / 2]) / 2.0;
}

} // namespace

const std::vector<BenchmarkProfile> &workload::macroBenchmarkProfiles() {
  return profiles();
}

const BenchmarkProfile *workload::findProfile(const char *Name) {
  for (const BenchmarkProfile &Profile : profiles())
    if (std::strcmp(Profile.Name, Name) == 0)
      return &Profile;
  return nullptr;
}

double workload::syncsPerSyncObject(const BenchmarkProfile &Profile) {
  assert(Profile.SynchronizedObjects > 0 && "profile with no sync objects");
  return static_cast<double>(Profile.SyncOperations) /
         static_cast<double>(Profile.SynchronizedObjects);
}

double workload::medianSyncsPerSyncObject() {
  std::vector<double> Ratios;
  for (const BenchmarkProfile &Profile : profiles())
    Ratios.push_back(syncsPerSyncObject(Profile));
  return medianOf(std::move(Ratios));
}

double workload::medianFirstLockFraction() {
  std::vector<double> Firsts;
  for (const BenchmarkProfile &Profile : profiles())
    Firsts.push_back(Profile.DepthMix[0]);
  return medianOf(std::move(Firsts));
}

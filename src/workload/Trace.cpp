//===- workload/Trace.cpp - Lock-operation trace record & replay ----------===//

#include "workload/Trace.h"

#include <cassert>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

using namespace thinlocks;
using namespace thinlocks::workload;

char workload::traceEventCode(TraceEvent::Kind Kind) {
  switch (Kind) {
  case TraceEvent::Kind::Lock:
    return 'L';
  case TraceEvent::Kind::Unlock:
    return 'U';
  case TraceEvent::Kind::Wait:
    return 'W';
  case TraceEvent::Kind::Notify:
    return 'N';
  case TraceEvent::Kind::NotifyAll:
    return 'A';
  }
  return '?';
}

namespace {
bool kindFromCode(char Code, TraceEvent::Kind &Out) {
  switch (Code) {
  case 'L':
    Out = TraceEvent::Kind::Lock;
    return true;
  case 'U':
    Out = TraceEvent::Kind::Unlock;
    return true;
  case 'W':
    Out = TraceEvent::Kind::Wait;
    return true;
  case 'N':
    Out = TraceEvent::Kind::Notify;
    return true;
  case 'A':
    Out = TraceEvent::Kind::NotifyAll;
    return true;
  default:
    return false;
  }
}
} // namespace

uint32_t LockTrace::objectCount() const {
  uint32_t Max = 0;
  bool Any = false;
  for (const TraceEvent &Event : Events) {
    Any = true;
    if (Event.ObjectId > Max)
      Max = Event.ObjectId;
  }
  return Any ? Max + 1 : 0;
}

uint32_t LockTrace::threadCount() const {
  std::set<uint16_t> Threads;
  for (const TraceEvent &Event : Events)
    Threads.insert(Event.ThreadIndex);
  return static_cast<uint32_t>(Threads.size());
}

uint64_t LockTrace::lockOperationCount() const {
  uint64_t Count = 0;
  for (const TraceEvent &Event : Events)
    if (Event.Op == TraceEvent::Kind::Lock)
      ++Count;
  return Count;
}

double LockTrace::locksPerObject() const {
  uint32_t Objects = objectCount();
  if (Objects == 0)
    return 0.0;
  return static_cast<double>(lockOperationCount()) /
         static_cast<double>(Objects);
}

void LockTrace::depthMix(double Out[4]) const {
  uint64_t Buckets[4] = {0, 0, 0, 0};
  uint64_t Total = 0;
  // (thread, object) -> current hold depth.
  std::map<std::pair<uint16_t, uint32_t>, uint32_t> Depths;
  for (const TraceEvent &Event : Events) {
    auto Key = std::make_pair(Event.ThreadIndex, Event.ObjectId);
    if (Event.Op == TraceEvent::Kind::Lock) {
      uint32_t Depth = ++Depths[Key];
      ++Buckets[Depth >= 4 ? 3 : Depth - 1];
      ++Total;
    } else if (Event.Op == TraceEvent::Kind::Unlock) {
      auto It = Depths.find(Key);
      if (It != Depths.end() && It->second > 0 && --It->second == 0)
        Depths.erase(It);
    }
  }
  for (int I = 0; I < 4; ++I)
    Out[I] = Total == 0
                 ? 0.0
                 : static_cast<double>(Buckets[I]) /
                       static_cast<double>(Total);
}

void LockTrace::save(std::ostream &Out) const {
  for (const TraceEvent &Event : Events)
    Out << traceEventCode(Event.Op) << ' ' << Event.ObjectId << ' '
        << Event.ThreadIndex << '\n';
}

bool LockTrace::load(std::istream &In) {
  Events.clear();
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::istringstream Parser(Line);
    char Code = 0;
    uint32_t ObjectId = 0;
    uint32_t ThreadIndex = 0;
    if (!(Parser >> Code >> ObjectId >> ThreadIndex))
      return false;
    TraceEvent Event;
    if (!kindFromCode(Code, Event.Op))
      return false;
    if (ThreadIndex > UINT16_MAX)
      return false;
    Event.ObjectId = ObjectId;
    Event.ThreadIndex = static_cast<uint16_t>(ThreadIndex);
    Events.push_back(Event);
  }
  return true;
}

uint32_t TracingBackend::internObject(const Object *Obj) {
  std::lock_guard<std::mutex> Guard(Mutex);
  auto It = ObjectIds.find(Obj);
  if (It != ObjectIds.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(ObjectIds.size());
  ObjectIds.emplace(Obj, Id);
  return Id;
}

void TracingBackend::record(TraceEvent::Kind Kind, const Object *Obj,
                            const ThreadContext &Thread) {
  uint32_t Id = internObject(Obj);
  std::lock_guard<std::mutex> Guard(Mutex);
  Trace.append(TraceEvent{Kind, Id, Thread.index()});
}

void TracingBackend::lock(Object *Obj, const ThreadContext &Thread) {
  Underlying.lock(Obj, Thread);
  record(TraceEvent::Kind::Lock, Obj, Thread);
}

void TracingBackend::unlock(Object *Obj, const ThreadContext &Thread) {
  Underlying.unlock(Obj, Thread);
  record(TraceEvent::Kind::Unlock, Obj, Thread);
}

bool TracingBackend::unlockChecked(Object *Obj,
                                   const ThreadContext &Thread) {
  bool Ok = Underlying.unlockChecked(Obj, Thread);
  if (Ok)
    record(TraceEvent::Kind::Unlock, Obj, Thread);
  return Ok;
}

bool TracingBackend::tryLock(Object *Obj, const ThreadContext &Thread) {
  bool Ok = Underlying.tryLock(Obj, Thread);
  if (Ok)
    record(TraceEvent::Kind::Lock, Obj, Thread);
  return Ok;
}

TimedLockStatus TracingBackend::tryLockFor(Object *Obj,
                                           const ThreadContext &Thread,
                                           int64_t TimeoutNanos) {
  TimedLockStatus Status = Underlying.tryLockFor(Obj, Thread, TimeoutNanos);
  if (Status == TimedLockStatus::Acquired)
    record(TraceEvent::Kind::Lock, Obj, Thread);
  return Status;
}

WaitStatus TracingBackend::wait(Object *Obj, const ThreadContext &Thread,
                                int64_t TimeoutNanos) {
  WaitStatus Status = Underlying.wait(Obj, Thread, TimeoutNanos);
  if (Status != WaitStatus::NotOwner)
    record(TraceEvent::Kind::Wait, Obj, Thread);
  return Status;
}

NotifyStatus TracingBackend::notify(Object *Obj,
                                    const ThreadContext &Thread) {
  NotifyStatus Status = Underlying.notify(Obj, Thread);
  if (Status == NotifyStatus::Ok)
    record(TraceEvent::Kind::Notify, Obj, Thread);
  return Status;
}

NotifyStatus TracingBackend::notifyAll(Object *Obj,
                                       const ThreadContext &Thread) {
  NotifyStatus Status = Underlying.notifyAll(Obj, Thread);
  if (Status == NotifyStatus::Ok)
    record(TraceEvent::Kind::NotifyAll, Obj, Thread);
  return Status;
}

//===- workload/MicroBench.cpp - Table 2 micro-benchmarks -----------------===//

#include "workload/MicroBench.h"

#include "vm/Assembler.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace thinlocks;
using namespace thinlocks::workload;
using namespace thinlocks::vm;

namespace {

// Locals layout shared by all (iters, obj) programs:
//   0: iters (int arg)   1: obj (ref arg)   2: loop counter
//   3: accumulated integer variable
constexpr int32_t LocIters = 0;
constexpr int32_t LocObj = 1;
constexpr int32_t LocCounter = 2;
constexpr int32_t LocAccum = 3;

std::vector<Instruction> assembleNoSync() {
  Assembler Asm;
  Asm.iconst(0).istore(LocAccum);
  Asm.countedLoop(LocCounter, LocIters,
                  [](Assembler &A) { A.iinc(LocAccum, 1); });
  return Asm.iload(LocAccum).iret().finish();
}

std::vector<Instruction> assembleSync() {
  Assembler Asm;
  Asm.iconst(0).istore(LocAccum);
  Asm.countedLoop(LocCounter, LocIters, [](Assembler &A) {
    A.synchronizedOn(LocObj,
                     [](Assembler &B) { B.iinc(LocAccum, 1); });
  });
  return Asm.iload(LocAccum).iret().finish();
}

std::vector<Instruction> assembleNestedSync() {
  Assembler Asm;
  Asm.iconst(0).istore(LocAccum);
  Asm.synchronizedOn(LocObj, [](Assembler &Outer) {
    Outer.countedLoop(LocCounter, LocIters, [](Assembler &A) {
      A.synchronizedOn(LocObj,
                       [](Assembler &B) { B.iinc(LocAccum, 1); });
    });
  });
  return Asm.iload(LocAccum).iret().finish();
}

std::vector<Instruction> assembleMixedSync() {
  Assembler Asm;
  Asm.iconst(0).istore(LocAccum);
  Asm.countedLoop(LocCounter, LocIters, [](Assembler &A) {
    A.synchronizedOn(LocObj, [](Assembler &B) {
      B.synchronizedOn(LocObj, [](Assembler &C) {
        C.synchronizedOn(LocObj,
                         [](Assembler &D) { D.iinc(LocAccum, 1); });
      });
    });
  });
  return Asm.iload(LocAccum).iret().finish();
}

// Callee body for Call/CallSync: int bump(this, x) { return x + 1; }.
// Locals: 0 = this, 1 = x.
std::vector<Instruction> assembleBump() {
  Assembler Asm;
  return Asm.iload(1).iconst(1).iadd().iret().finish();
}

// Caller loop: accum = bump(obj, accum) each iteration.
std::vector<Instruction> assembleCallLoop(uint32_t CalleeId) {
  Assembler Asm;
  Asm.iconst(0).istore(LocAccum);
  Asm.countedLoop(LocCounter, LocIters, [CalleeId](Assembler &A) {
    A.aload(LocObj).iload(LocAccum).invoke(CalleeId).istore(LocAccum);
  });
  return Asm.iload(LocAccum).iret().finish();
}

// NestedCallSync: obj is locked around the whole CallSync loop.
std::vector<Instruction> assembleNestedCallLoop(uint32_t CalleeId) {
  Assembler Asm;
  Asm.iconst(0).istore(LocAccum);
  Asm.synchronizedOn(LocObj, [CalleeId](Assembler &Outer) {
    Outer.countedLoop(LocCounter, LocIters, [CalleeId](Assembler &A) {
      A.aload(LocObj).iload(LocAccum).invoke(CalleeId).istore(LocAccum);
    });
  });
  return Asm.iload(LocAccum).iret().finish();
}

} // namespace

MicroPrograms workload::buildMicroPrograms(VM &Vm) {
  MicroPrograms Programs;
  Programs.BenchKlass = &Vm.defineClass(
      "bench/Target", {FieldInfo{"counter", ValueKind::Int, 0},
                       FieldInfo{"target", ValueKind::Ref, 0}});

  MethodTraits Plain;
  MethodTraits Sync;
  Sync.IsSynchronized = true;

  Klass &K = *Programs.BenchKlass;
  // All loop programs take (iters:int, obj:ref) and use 4 locals.
  Programs.NoSync = &Vm.defineMethod(K, "noSync", Plain, 2, 4,
                                     assembleNoSync());
  Programs.Sync = &Vm.defineMethod(K, "sync", Plain, 2, 4, assembleSync());
  Programs.NestedSync =
      &Vm.defineMethod(K, "nestedSync", Plain, 2, 4, assembleNestedSync());
  Programs.MixedSync =
      &Vm.defineMethod(K, "mixedSync", Plain, 2, 4, assembleMixedSync());

  const Method &BumpPlain =
      Vm.defineMethod(K, "bump", Plain, 2, 2, assembleBump());
  const Method &BumpSync =
      Vm.defineMethod(K, "bumpSync", Sync, 2, 2, assembleBump());

  Programs.Call = &Vm.defineMethod(K, "call", Plain, 2, 4,
                                   assembleCallLoop(BumpPlain.Id));
  Programs.CallSync = &Vm.defineMethod(K, "callSync", Plain, 2, 4,
                                       assembleCallLoop(BumpSync.Id));
  Programs.NestedCallSync = &Vm.defineMethod(
      K, "nestedCallSync", Plain, 2, 4, assembleNestedCallLoop(BumpSync.Id));

  // Threads-n body: identical to Sync; separate method so per-thread
  // frames never share bytecode-level state.
  Programs.ThreadBody =
      &Vm.defineMethod(K, "threadBody", Plain, 2, 4, assembleSync());
  return Programs;
}

void workload::runMicroProgram(VM &Vm, const Method &M, int32_t Iterations,
                               Object *Target,
                               const ThreadContext &Thread) {
  Value Args[2] = {Value::makeInt(Iterations), Value::makeRef(Target)};
  RunResult Result = Vm.call(M, Args, Thread);
  if (!Result.ok()) {
    std::fprintf(stderr, "micro program '%s' trapped: %s\n",
                 M.Name.c_str(), trapName(Result.TrapKind));
    std::abort();
  }
  assert(Result.Result.isInt() &&
         Result.Result.asInt() >= Iterations &&
         "benchmark loop lost increments");
}

void workload::runVmThreadsBenchmark(VM &Vm, const MicroPrograms &Programs,
                                     uint32_t NumThreads,
                                     int32_t ItersPerThread,
                                     Object *Target) {
  std::vector<VM::VMThread> Threads;
  Threads.reserve(NumThreads);
  for (uint32_t T = 0; T < NumThreads; ++T)
    Threads.push_back(Vm.spawn(*Programs.ThreadBody,
                               {Value::makeInt(ItersPerThread),
                                Value::makeRef(Target)}));
  for (VM::VMThread &Thread : Threads) {
    RunResult Result = Thread.join();
    if (!Result.ok()) {
      std::fprintf(stderr, "threads benchmark trapped: %s\n",
                   trapName(Result.TrapKind));
      std::abort();
    }
  }
}

namespace {
std::atomic<uint64_t> Sink{0};
} // namespace

uint64_t workload::consumeValue(uint64_t Value) {
  Sink.store(Value, std::memory_order_relaxed);
  return Value;
}

uint64_t workload::runNativeNoSync(uint64_t Iterations) {
  uint64_t Counter = 0;
  for (uint64_t I = 0; I < Iterations; ++I) {
    ++Counter;
    // Defeat loop-collapse: the compiler must not turn the reference
    // loop into a single add.
    asm volatile("" : "+r"(Counter));
  }
  return consumeValue(Counter);
}

TL_NOINLINE uint64_t workload::callPlain(uint64_t Counter) {
  return Counter + 1;
}

uint64_t workload::runNativeCall(uint64_t Iterations) {
  uint64_t Counter = 0;
  for (uint64_t I = 0; I < Iterations; ++I)
    Counter = callPlain(Counter);
  return consumeValue(Counter);
}

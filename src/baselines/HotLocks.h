//===- baselines/HotLocks.h - IBM JDK 1.1.2 hot locks model ----*- C++ -*-===//
///
/// \file
/// Model of the IBM 1.1.2 JDK baseline ("IBM112", paper §3): a monitor
/// cache augmented with a small number (32) of pre-allocated "hot locks".
/// "The system begins by using the default fat locks, slightly modified
/// to record locking frequency.  When a fat lock is detected to be hot, a
/// pointer to the hot lock is placed in the header of the object...  the
/// displaced header information is moved into the hot lock structure.
/// One bit in the header word indicates whether the word is a hot lock
/// pointer or regular header data."
///
/// Our header words are 32 bits, so instead of a raw pointer we install a
/// tagged hot-lock *id* — mechanically identical (one bit distinguishes,
/// one indirection resolves) and faithful in cost.
///
/// The strength: once hot, an object's monitor operations skip the global
/// cache lock and hash lookup entirely.  The Achilles heel (§3.3): only
/// NumHotLocks objects can ever be hot, so workloads with larger locking
/// working sets fall back to the thrash-prone cache — the IBM112 cliff at
/// n > 32 in Figure 4 and its macro-benchmark slowdowns in Figure 5.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_BASELINES_HOTLOCKS_H
#define THINLOCKS_BASELINES_HOTLOCKS_H

#include "core/LockProtocol.h"
#include "fatlock/FatLock.h"
#include "heap/Object.h"
#include "support/StatsCounter.h"
#include "threads/ThreadContext.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace thinlocks {

/// Event counters for the hot-lock baseline.
struct HotLocksStats {
  uint64_t HotPathOps = 0;
  uint64_t CachePathOps = 0;
  uint64_t Promotions = 0;
  uint64_t Sweeps = 0;
  uint64_t SweepScannedEntries = 0;
};

/// Monitor cache + bounded hot-lock table baseline.
class HotLocks {
public:
  /// \param NumHotLocks hot-lock table size (the paper's system used 32).
  /// \param PromotionThreshold uses of one mapping after which the object
  /// is promoted to a hot lock (when a slot is free and the monitor is
  /// momentarily idle).
  /// \param PoolSize fallback monitor-cache pool size.
  explicit HotLocks(size_t NumHotLocks = 32, uint64_t PromotionThreshold = 4,
                    size_t PoolSize = 128);
  ~HotLocks();

  HotLocks(const HotLocks &) = delete;
  HotLocks &operator=(const HotLocks &) = delete;

  static const char *protocolName() { return "IBM112"; }

  void lock(Object *Obj, const ThreadContext &Thread);
  void unlock(Object *Obj, const ThreadContext &Thread);
  bool unlockChecked(Object *Obj, const ThreadContext &Thread);
  bool tryLock(Object *Obj, const ThreadContext &Thread);
  TimedLockStatus tryLockFor(Object *Obj, const ThreadContext &Thread,
                             int64_t TimeoutNanos);
  bool holdsLock(Object *Obj, const ThreadContext &Thread) const;
  uint32_t lockDepth(Object *Obj, const ThreadContext &Thread) const;
  WaitStatus wait(Object *Obj, const ThreadContext &Thread,
                  int64_t TimeoutNanos = -1);
  NotifyStatus notify(Object *Obj, const ThreadContext &Thread);
  NotifyStatus notifyAll(Object *Obj, const ThreadContext &Thread);

  /// \returns true if \p Obj has been promoted to a hot lock.
  bool isHot(const Object *Obj) const;

  /// \returns the number of hot-lock slots still unassigned.
  size_t freeHotSlots() const;

  /// \returns the header word displaced when \p Obj went hot; only
  /// meaningful when isHot(Obj).
  uint32_t displacedHeader(const Object *Obj) const;

  HotLocksStats stats() const;

  /// \returns the hot/cache path counters rendered as a JSON object
  /// literal (the SyncBackend statsJson capability).
  std::string statsJson() const;

private:
  /// Bit 31 of the header word: set = the word holds a hot-lock id.
  static constexpr uint32_t HotFlagBit = 1u << 31;
  static constexpr uint32_t HotIdShift = 8;
  static constexpr uint32_t HeaderByteMask = 0xFFu;

  struct HotSlot {
    FatLock Lock;
    const Object *Key = nullptr;
    uint32_t DisplacedHeader = 0;
  };

  struct CacheEntry {
    FatLock Lock;
    const Object *Key = nullptr;
    uint32_t Pins = 0;
    uint64_t UseCount = 0;
  };

  static bool isHotWord(uint32_t Word) { return (Word & HotFlagBit) != 0; }
  static uint32_t hotIdOf(uint32_t Word) {
    return ((Word & ~HotFlagBit) >> HotIdShift) - 1;
  }
  static uint32_t makeHotWord(uint32_t Id, uint32_t OriginalWord) {
    return HotFlagBit | ((Id + 1) << HotIdShift) |
           (OriginalWord & HeaderByteMask);
  }

  /// Resolves \p Obj to either a hot slot (no cache lock needed) or a
  /// pinned cache entry; exactly one of the outputs is non-null.  May
  /// promote the object as a side effect when \p AllowPromotion.
  void resolve(Object *Obj, bool CreateIfMissing, bool AllowPromotion,
               HotSlot *&Hot, CacheEntry *&Entry);
  void unpin(CacheEntry *Entry);
  size_t sweepLocked();
  static bool isIdle(const CacheEntry &Entry);

  mutable std::mutex CacheMutex;
  std::vector<std::unique_ptr<HotSlot>> HotTable;
  size_t NextHotSlot = 0;
  uint64_t PromotionThreshold;
  std::unordered_map<const Object *, CacheEntry *> Map;
  std::vector<std::unique_ptr<CacheEntry>> Pool;
  std::vector<CacheEntry *> FreeList;
  // Guarded by CacheMutex.
  HotLocksStats Counters;
  // Bumped outside the mutex on the hot path; hence atomic.
  StatsCounter HotPathOps;
  StatsCounter CachePathOps;
};

static_assert(SyncProtocol<HotLocks>,
              "HotLocks must satisfy the protocol concept");

} // namespace thinlocks

#endif // THINLOCKS_BASELINES_HOTLOCKS_H

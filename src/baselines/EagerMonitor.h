//===- baselines/EagerMonitor.h - Monitor-per-object strawman --*- C++ -*-===//
///
/// \file
/// The design the paper's introduction rules out: "One way to speed up
/// synchronization is to dedicate a portion of each object as a lock.
/// Unfortunately ... adding one or more synchronization words to each
/// object is an unacceptable space-time tradeoff" (§1).
///
/// This baseline gives every synchronized object its own permanent
/// heavy-weight monitor on first use, held in a sharded side table (the
/// object layout itself cannot grow — that is the constraint).  It is
/// reasonably fast (no global cache lock, no reclamation sweeps) but its
/// space grows with the number of objects ever synchronized, never
/// shrinking — the axis the space-accounting benchmark (bench_space)
/// compares against thin locks, which need a monitor only after
/// inflation.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_BASELINES_EAGERMONITOR_H
#define THINLOCKS_BASELINES_EAGERMONITOR_H

#include "core/LockProtocol.h"
#include "fatlock/FatLock.h"
#include "heap/Object.h"
#include "threads/ThreadContext.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace thinlocks {

/// Monitor-per-object baseline with a sharded object->monitor side table.
class EagerMonitor {
public:
  static constexpr size_t NumShards = 16;

  EagerMonitor();

  EagerMonitor(const EagerMonitor &) = delete;
  EagerMonitor &operator=(const EagerMonitor &) = delete;

  static const char *protocolName() { return "EagerMonitor"; }

  void lock(Object *Obj, const ThreadContext &Thread);
  void unlock(Object *Obj, const ThreadContext &Thread);
  bool unlockChecked(Object *Obj, const ThreadContext &Thread);
  bool tryLock(Object *Obj, const ThreadContext &Thread);
  TimedLockStatus tryLockFor(Object *Obj, const ThreadContext &Thread,
                             int64_t TimeoutNanos);
  bool holdsLock(Object *Obj, const ThreadContext &Thread) const;
  uint32_t lockDepth(Object *Obj, const ThreadContext &Thread) const;
  WaitStatus wait(Object *Obj, const ThreadContext &Thread,
                  int64_t TimeoutNanos = -1);
  NotifyStatus notify(Object *Obj, const ThreadContext &Thread);
  NotifyStatus notifyAll(Object *Obj, const ThreadContext &Thread);

  /// \returns how many monitors exist (== objects ever synchronized).
  uint64_t monitorCount() const;

  /// \returns a lower bound on the side-table bytes consumed, for the
  /// space comparison in bench_space.
  uint64_t approximateMonitorBytes() const;

private:
  struct Shard {
    mutable std::mutex Mutex;
    std::unordered_map<const Object *, std::unique_ptr<FatLock>> Map;
  };

  Shard &shardFor(const Object *Obj) const;
  /// Finds (creating if asked) the object's monitor.
  FatLock *resolve(const Object *Obj, bool CreateIfMissing);

  mutable std::vector<Shard> Shards;
};

static_assert(SyncProtocol<EagerMonitor>,
              "EagerMonitor must satisfy the protocol concept");

} // namespace thinlocks

#endif // THINLOCKS_BASELINES_EAGERMONITOR_H

//===- baselines/HotLocks.cpp - IBM JDK 1.1.2 hot locks model -------------===//

#include "baselines/HotLocks.h"

#include <cassert>
#include <cstdio>

using namespace thinlocks;

HotLocks::HotLocks(size_t NumHotLocks, uint64_t PromotionThreshold,
                   size_t PoolSize)
    : PromotionThreshold(PromotionThreshold) {
  assert(NumHotLocks > 0 && "need at least one hot lock");
  assert(PoolSize > 0 && "monitor pool must not be empty");
  HotTable.reserve(NumHotLocks);
  for (size_t I = 0; I < NumHotLocks; ++I)
    HotTable.push_back(std::make_unique<HotSlot>());
  Pool.reserve(PoolSize);
  FreeList.reserve(PoolSize);
  for (size_t I = 0; I < PoolSize; ++I) {
    Pool.push_back(std::make_unique<CacheEntry>());
    FreeList.push_back(Pool.back().get());
  }
}

HotLocks::~HotLocks() = default;

bool HotLocks::isIdle(const CacheEntry &Entry) {
  return Entry.Pins == 0 && Entry.Lock.ownerIndex() == 0 &&
         Entry.Lock.entryQueueLength() == 0 && Entry.Lock.waitSetSize() == 0;
}

size_t HotLocks::sweepLocked() {
  ++Counters.Sweeps;
  size_t Reclaimed = 0;
  for (auto It = Map.begin(); It != Map.end();) {
    ++Counters.SweepScannedEntries;
    CacheEntry *Entry = It->second;
    if (isIdle(*Entry)) {
      Entry->Key = nullptr;
      Entry->UseCount = 0;
      FreeList.push_back(Entry);
      It = Map.erase(It);
      ++Reclaimed;
    } else {
      ++It;
    }
  }
  return Reclaimed;
}

void HotLocks::resolve(Object *Obj, bool CreateIfMissing,
                       bool AllowPromotion, HotSlot *&Hot,
                       CacheEntry *&Entry) {
  Hot = nullptr;
  Entry = nullptr;

  // Fast check without the cache lock: a hot word never reverts.
  uint32_t Word = Obj->lockWord().load(std::memory_order_acquire);
  if (isHotWord(Word)) {
    Hot = HotTable[hotIdOf(Word)].get();
    return;
  }

  std::lock_guard<std::mutex> Guard(CacheMutex);
  // Re-check under the lock: a promotion may have raced ahead of us
  // (promotions happen only under CacheMutex).
  Word = Obj->lockWord().load(std::memory_order_acquire);
  if (isHotWord(Word)) {
    Hot = HotTable[hotIdOf(Word)].get();
    return;
  }

  auto It = Map.find(Obj);
  CacheEntry *Found = nullptr;
  if (It != Map.end()) {
    Found = It->second;
    ++Found->UseCount;
  } else {
    if (!CreateIfMissing)
      return;
    if (FreeList.empty()) {
      sweepLocked();
      if (FreeList.empty()) {
        Pool.push_back(std::make_unique<CacheEntry>());
        FreeList.push_back(Pool.back().get());
      }
    }
    Found = FreeList.back();
    FreeList.pop_back();
    Found->Key = Obj;
    Found->UseCount = 1;
    Map.emplace(Obj, Found);
  }

  // Promotion: frequency threshold crossed, a hot slot is free, and the
  // monitor is momentarily idle so no state needs transferring.
  if (AllowPromotion && Found->UseCount >= PromotionThreshold &&
      NextHotSlot < HotTable.size() && isIdle(*Found)) {
    uint32_t Id = static_cast<uint32_t>(NextHotSlot++);
    HotSlot *Slot = HotTable[Id].get();
    Slot->Key = Obj;
    Slot->DisplacedHeader = Word;
    Obj->lockWord().store(makeHotWord(Id, Word), std::memory_order_release);
    // The idle cache entry is recycled immediately.
    Found->Key = nullptr;
    Found->UseCount = 0;
    FreeList.push_back(Found);
    Map.erase(Obj);
    ++Counters.Promotions;
    Hot = Slot;
    return;
  }

  ++Found->Pins;
  Entry = Found;
}

void HotLocks::unpin(CacheEntry *Entry) {
  std::lock_guard<std::mutex> Guard(CacheMutex);
  assert(Entry->Pins > 0 && "unpin without pin");
  --Entry->Pins;
}

void HotLocks::lock(Object *Obj, const ThreadContext &Thread) {
  HotSlot *Hot = nullptr;
  CacheEntry *Entry = nullptr;
  resolve(Obj, /*CreateIfMissing=*/true, /*AllowPromotion=*/true, Hot,
          Entry);
  if (Hot) {
    HotPathOps.increment();
    Hot->Lock.lock(Thread);
    return;
  }
  CachePathOps.increment();
  Entry->Lock.lock(Thread);
  unpin(Entry);
}

void HotLocks::unlock(Object *Obj, const ThreadContext &Thread) {
  [[maybe_unused]] bool Ok = unlockChecked(Obj, Thread);
  assert(Ok && "unlock of a monitor the thread does not own");
}

bool HotLocks::unlockChecked(Object *Obj, const ThreadContext &Thread) {
  HotSlot *Hot = nullptr;
  CacheEntry *Entry = nullptr;
  resolve(Obj, /*CreateIfMissing=*/false, /*AllowPromotion=*/false, Hot,
          Entry);
  if (Hot) {
    HotPathOps.increment();
    return Hot->Lock.unlockChecked(Thread);
  }
  if (!Entry)
    return false;
  CachePathOps.increment();
  bool Ok = Entry->Lock.unlockChecked(Thread);
  unpin(Entry);
  return Ok;
}

bool HotLocks::tryLock(Object *Obj, const ThreadContext &Thread) {
  HotSlot *Hot = nullptr;
  CacheEntry *Entry = nullptr;
  resolve(Obj, /*CreateIfMissing=*/true, /*AllowPromotion=*/true, Hot,
          Entry);
  if (Hot) {
    HotPathOps.increment();
    return Hot->Lock.tryLock(Thread);
  }
  CachePathOps.increment();
  bool Ok = Entry->Lock.tryLock(Thread);
  unpin(Entry);
  return Ok;
}

TimedLockStatus HotLocks::tryLockFor(Object *Obj, const ThreadContext &Thread,
                                     int64_t TimeoutNanos) {
  HotSlot *Hot = nullptr;
  CacheEntry *Entry = nullptr;
  resolve(Obj, /*CreateIfMissing=*/true, /*AllowPromotion=*/true, Hot,
          Entry);
  FatLock *Lock = Hot ? &Hot->Lock : &Entry->Lock;
  if (Hot)
    HotPathOps.increment();
  else
    CachePathOps.increment();
  FatLock::TimedResult Result = Lock->lockIfLiveFor(Thread, TimeoutNanos);
  if (Entry)
    unpin(Entry);
  // Hot slots and pinned cache entries are never retired mid-operation,
  // and this baseline has no waits-for graph, so any failure degrades to
  // TimedOut (see degradeToTimedOut in core/LockProtocol.h).
  return degradeToTimedOut(Result == FatLock::TimedResult::Acquired);
}

bool HotLocks::holdsLock(Object *Obj, const ThreadContext &Thread) const {
  uint32_t Word = Obj->lockWord().load(std::memory_order_acquire);
  if (isHotWord(Word))
    return HotTable[hotIdOf(Word)]->Lock.heldBy(Thread);
  std::lock_guard<std::mutex> Guard(CacheMutex);
  auto It = Map.find(Obj);
  if (It == Map.end())
    return false;
  return It->second->Lock.heldBy(Thread);
}

uint32_t HotLocks::lockDepth(Object *Obj, const ThreadContext &Thread) const {
  uint32_t Word = Obj->lockWord().load(std::memory_order_acquire);
  if (isHotWord(Word)) {
    FatLock &Lock = HotTable[hotIdOf(Word)]->Lock;
    return Lock.heldBy(Thread) ? Lock.holdCount() : 0;
  }
  std::lock_guard<std::mutex> Guard(CacheMutex);
  auto It = Map.find(Obj);
  if (It == Map.end())
    return 0;
  return It->second->Lock.heldBy(Thread) ? It->second->Lock.holdCount() : 0;
}

WaitStatus HotLocks::wait(Object *Obj, const ThreadContext &Thread,
                          int64_t TimeoutNanos) {
  HotSlot *Hot = nullptr;
  CacheEntry *Entry = nullptr;
  resolve(Obj, /*CreateIfMissing=*/false, /*AllowPromotion=*/false, Hot,
          Entry);
  FatLock *Lock = nullptr;
  if (Hot) {
    Lock = &Hot->Lock;
  } else if (Entry) {
    Lock = &Entry->Lock;
  } else {
    return WaitStatus::NotOwner;
  }
  if (!Lock->heldBy(Thread)) {
    if (Entry)
      unpin(Entry);
    return WaitStatus::NotOwner;
  }
  FatLock::WaitResult Result = Lock->wait(Thread, TimeoutNanos);
  if (Entry)
    unpin(Entry);
  return Result == FatLock::WaitResult::Notified ? WaitStatus::Notified
                                                 : WaitStatus::TimedOut;
}

NotifyStatus HotLocks::notify(Object *Obj, const ThreadContext &Thread) {
  HotSlot *Hot = nullptr;
  CacheEntry *Entry = nullptr;
  resolve(Obj, /*CreateIfMissing=*/false, /*AllowPromotion=*/false, Hot,
          Entry);
  FatLock *Lock = Hot ? &Hot->Lock : (Entry ? &Entry->Lock : nullptr);
  if (!Lock)
    return NotifyStatus::NotOwner;
  if (!Lock->heldBy(Thread)) {
    if (Entry)
      unpin(Entry);
    return NotifyStatus::NotOwner;
  }
  Lock->notify(Thread);
  if (Entry)
    unpin(Entry);
  return NotifyStatus::Ok;
}

NotifyStatus HotLocks::notifyAll(Object *Obj, const ThreadContext &Thread) {
  HotSlot *Hot = nullptr;
  CacheEntry *Entry = nullptr;
  resolve(Obj, /*CreateIfMissing=*/false, /*AllowPromotion=*/false, Hot,
          Entry);
  FatLock *Lock = Hot ? &Hot->Lock : (Entry ? &Entry->Lock : nullptr);
  if (!Lock)
    return NotifyStatus::NotOwner;
  if (!Lock->heldBy(Thread)) {
    if (Entry)
      unpin(Entry);
    return NotifyStatus::NotOwner;
  }
  Lock->notifyAll(Thread);
  if (Entry)
    unpin(Entry);
  return NotifyStatus::Ok;
}

bool HotLocks::isHot(const Object *Obj) const {
  return isHotWord(Obj->lockWord().load(std::memory_order_acquire));
}

size_t HotLocks::freeHotSlots() const {
  std::lock_guard<std::mutex> Guard(CacheMutex);
  return HotTable.size() - NextHotSlot;
}

uint32_t HotLocks::displacedHeader(const Object *Obj) const {
  uint32_t Word = Obj->lockWord().load(std::memory_order_acquire);
  assert(isHotWord(Word) && "object is not hot");
  return HotTable[hotIdOf(Word)]->DisplacedHeader;
}

HotLocksStats HotLocks::stats() const {
  std::lock_guard<std::mutex> Guard(CacheMutex);
  HotLocksStats Snapshot = Counters;
  Snapshot.HotPathOps = HotPathOps.value();
  Snapshot.CachePathOps = CachePathOps.value();
  return Snapshot;
}

std::string HotLocks::statsJson() const {
  HotLocksStats S = stats();
  char Buffer[256];
  std::snprintf(Buffer, sizeof(Buffer),
                "{\"hot_path_ops\": %llu, \"cache_path_ops\": %llu, "
                "\"promotions\": %llu, \"sweeps\": %llu, "
                "\"sweep_scanned\": %llu}",
                (unsigned long long)S.HotPathOps,
                (unsigned long long)S.CachePathOps,
                (unsigned long long)S.Promotions,
                (unsigned long long)S.Sweeps,
                (unsigned long long)S.SweepScannedEntries);
  return Buffer;
}

//===- baselines/MonitorCache.cpp - JDK 1.1.1 monitor cache model ---------===//

#include "baselines/MonitorCache.h"

#include <cassert>
#include <cstdio>

using namespace thinlocks;

MonitorCache::MonitorCache(size_t PoolSize) {
  assert(PoolSize > 0 && "monitor pool must not be empty");
  Pool.reserve(PoolSize);
  FreeList.reserve(PoolSize);
  for (size_t I = 0; I < PoolSize; ++I) {
    Pool.push_back(std::make_unique<CachedMonitor>());
    FreeList.push_back(Pool.back().get());
  }
}

MonitorCache::~MonitorCache() = default;

bool MonitorCache::isIdle(const CachedMonitor &Monitor) {
  return Monitor.Pins == 0 && Monitor.Lock.ownerIndex() == 0 &&
         Monitor.Lock.entryQueueLength() == 0 &&
         Monitor.Lock.waitSetSize() == 0;
}

size_t MonitorCache::sweepLocked() {
  ++Counters.Sweeps;
  size_t Reclaimed = 0;
  for (auto It = Map.begin(); It != Map.end();) {
    ++Counters.SweepScannedEntries;
    CachedMonitor *Monitor = It->second;
    if (isIdle(*Monitor)) {
      Monitor->Key = nullptr;
      Monitor->UseCount = 0;
      FreeList.push_back(Monitor);
      It = Map.erase(It);
      ++Reclaimed;
    } else {
      ++It;
    }
  }
  return Reclaimed;
}

MonitorCache::CachedMonitor *
MonitorCache::resolveAndPin(const Object *Obj, bool CreateIfMissing) {
  std::lock_guard<std::mutex> Guard(CacheMutex);
  ++Counters.Lookups;
  auto It = Map.find(Obj);
  if (It != Map.end()) {
    ++Counters.Hits;
    CachedMonitor *Monitor = It->second;
    ++Monitor->Pins;
    ++Monitor->UseCount;
    return Monitor;
  }
  if (!CreateIfMissing)
    return nullptr;

  ++Counters.Misses;
  if (FreeList.empty()) {
    // The free list thrashes here when the locked working set exceeds
    // the pool: every miss pays a whole-cache sweep.
    sweepLocked();
    if (FreeList.empty()) {
      // Every pooled monitor is in active use; grow.
      Pool.push_back(std::make_unique<CachedMonitor>());
      FreeList.push_back(Pool.back().get());
      ++Counters.PoolGrowths;
    }
  }
  CachedMonitor *Monitor = FreeList.back();
  FreeList.pop_back();
  Monitor->Key = Obj;
  Monitor->Pins = 1;
  Monitor->UseCount = 1;
  Map.emplace(Obj, Monitor);
  return Monitor;
}

void MonitorCache::unpin(CachedMonitor *Monitor) {
  std::lock_guard<std::mutex> Guard(CacheMutex);
  assert(Monitor->Pins > 0 && "unpin without pin");
  --Monitor->Pins;
}

void MonitorCache::lock(Object *Obj, const ThreadContext &Thread) {
  CachedMonitor *Monitor = resolveAndPin(Obj, /*CreateIfMissing=*/true);
  Monitor->Lock.lock(Thread);
  unpin(Monitor);
}

void MonitorCache::unlock(Object *Obj, const ThreadContext &Thread) {
  [[maybe_unused]] bool Ok = unlockChecked(Obj, Thread);
  assert(Ok && "unlock of a monitor the thread does not own");
}

bool MonitorCache::unlockChecked(Object *Obj, const ThreadContext &Thread) {
  CachedMonitor *Monitor = resolveAndPin(Obj, /*CreateIfMissing=*/false);
  if (!Monitor)
    return false;
  bool Ok = Monitor->Lock.unlockChecked(Thread);
  unpin(Monitor);
  return Ok;
}

bool MonitorCache::tryLock(Object *Obj, const ThreadContext &Thread) {
  CachedMonitor *Monitor = resolveAndPin(Obj, /*CreateIfMissing=*/true);
  bool Ok = Monitor->Lock.tryLock(Thread);
  unpin(Monitor);
  return Ok;
}

TimedLockStatus MonitorCache::tryLockFor(Object *Obj,
                                         const ThreadContext &Thread,
                                         int64_t TimeoutNanos) {
  CachedMonitor *Monitor = resolveAndPin(Obj, /*CreateIfMissing=*/true);
  FatLock::TimedResult Result = Monitor->Lock.lockIfLiveFor(Thread,
                                                            TimeoutNanos);
  unpin(Monitor);
  // A pinned cache monitor is never retired out from under us, so Retired
  // is unreachable; no waits-for graph here, so any failure degrades to
  // TimedOut (see degradeToTimedOut in core/LockProtocol.h).
  return degradeToTimedOut(Result == FatLock::TimedResult::Acquired);
}

bool MonitorCache::holdsLock(Object *Obj, const ThreadContext &Thread) const {
  std::lock_guard<std::mutex> Guard(CacheMutex);
  auto It = Map.find(Obj);
  if (It == Map.end())
    return false;
  return It->second->Lock.heldBy(Thread);
}

uint32_t MonitorCache::lockDepth(Object *Obj,
                                 const ThreadContext &Thread) const {
  std::lock_guard<std::mutex> Guard(CacheMutex);
  auto It = Map.find(Obj);
  if (It == Map.end())
    return 0;
  return It->second->Lock.heldBy(Thread) ? It->second->Lock.holdCount() : 0;
}

WaitStatus MonitorCache::wait(Object *Obj, const ThreadContext &Thread,
                              int64_t TimeoutNanos) {
  CachedMonitor *Monitor = resolveAndPin(Obj, /*CreateIfMissing=*/false);
  if (!Monitor)
    return WaitStatus::NotOwner;
  if (!Monitor->Lock.heldBy(Thread)) {
    unpin(Monitor);
    return WaitStatus::NotOwner;
  }
  FatLock::WaitResult Result = Monitor->Lock.wait(Thread, TimeoutNanos);
  unpin(Monitor);
  return Result == FatLock::WaitResult::Notified ? WaitStatus::Notified
                                                 : WaitStatus::TimedOut;
}

NotifyStatus MonitorCache::notify(Object *Obj, const ThreadContext &Thread) {
  CachedMonitor *Monitor = resolveAndPin(Obj, /*CreateIfMissing=*/false);
  if (!Monitor)
    return NotifyStatus::NotOwner;
  if (!Monitor->Lock.heldBy(Thread)) {
    unpin(Monitor);
    return NotifyStatus::NotOwner;
  }
  Monitor->Lock.notify(Thread);
  unpin(Monitor);
  return NotifyStatus::Ok;
}

NotifyStatus MonitorCache::notifyAll(Object *Obj,
                                     const ThreadContext &Thread) {
  CachedMonitor *Monitor = resolveAndPin(Obj, /*CreateIfMissing=*/false);
  if (!Monitor)
    return NotifyStatus::NotOwner;
  if (!Monitor->Lock.heldBy(Thread)) {
    unpin(Monitor);
    return NotifyStatus::NotOwner;
  }
  Monitor->Lock.notifyAll(Thread);
  unpin(Monitor);
  return NotifyStatus::Ok;
}

MonitorCacheStats MonitorCache::stats() const {
  std::lock_guard<std::mutex> Guard(CacheMutex);
  return Counters;
}

size_t MonitorCache::mappedMonitorCount() const {
  std::lock_guard<std::mutex> Guard(CacheMutex);
  return Map.size();
}

std::string MonitorCache::statsJson() const {
  MonitorCacheStats S = stats();
  char Buffer[256];
  std::snprintf(Buffer, sizeof(Buffer),
                "{\"lookups\": %llu, \"hits\": %llu, \"misses\": %llu, "
                "\"sweeps\": %llu, \"sweep_scanned\": %llu, "
                "\"pool_growths\": %llu}",
                (unsigned long long)S.Lookups, (unsigned long long)S.Hits,
                (unsigned long long)S.Misses, (unsigned long long)S.Sweeps,
                (unsigned long long)S.SweepScannedEntries,
                (unsigned long long)S.PoolGrowths);
  return Buffer;
}

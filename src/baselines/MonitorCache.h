//===- baselines/MonitorCache.h - JDK 1.1.1 monitor cache model -*- C++ -*-===//
///
/// \file
/// Model of the Sun JDK 1.1.1 synchronization baseline ("JDK111" in the
/// paper's measurements).  "Monitors are kept outside of the objects to
/// avoid the space cost, and are looked up in a monitor cache.
/// Unfortunately this is not only inefficient, it does not scale because
/// the monitor cache itself must be locked during lookups" (paper §1).
///
/// Every monitor operation therefore:
///   1. acquires the single global cache mutex,
///   2. hashes the object address to find (or create) its monitor,
///   3. releases the cache mutex and operates on the heavy monitor.
///
/// Monitors come from a bounded pool.  When the pool's free list is empty
/// a *sweep* scans the whole cache reclaiming monitors of unlocked
/// objects.  When the working set of locked objects exceeds the pool, the
/// free list thrashes: nearly every operation misses and pays a sweep —
/// the behaviour behind JDK111's MultiSync degradation in Figure 4 ("the
/// monitor cache thrashes its free list when the working set of monitors
/// exceeds the size of the monitor cache", §3.3).
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_BASELINES_MONITORCACHE_H
#define THINLOCKS_BASELINES_MONITORCACHE_H

#include "core/LockProtocol.h"
#include "fatlock/FatLock.h"
#include "heap/Object.h"
#include "threads/ThreadContext.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace thinlocks {

/// Event counters for cache behaviour (all monotonically increasing).
struct MonitorCacheStats {
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Sweeps = 0;
  uint64_t SweepScannedEntries = 0;
  uint64_t PoolGrowths = 0;
};

/// External-monitor baseline with a globally locked object->monitor map
/// and a bounded monitor pool.
class MonitorCache {
public:
  /// \param PoolSize number of pre-allocated monitors before reclamation
  /// sweeps begin (the "size of the monitor cache").
  explicit MonitorCache(size_t PoolSize = 128);
  ~MonitorCache();

  MonitorCache(const MonitorCache &) = delete;
  MonitorCache &operator=(const MonitorCache &) = delete;

  static const char *protocolName() { return "JDK111"; }

  void lock(Object *Obj, const ThreadContext &Thread);
  void unlock(Object *Obj, const ThreadContext &Thread);
  bool unlockChecked(Object *Obj, const ThreadContext &Thread);
  bool tryLock(Object *Obj, const ThreadContext &Thread);
  TimedLockStatus tryLockFor(Object *Obj, const ThreadContext &Thread,
                             int64_t TimeoutNanos);
  bool holdsLock(Object *Obj, const ThreadContext &Thread) const;
  uint32_t lockDepth(Object *Obj, const ThreadContext &Thread) const;
  WaitStatus wait(Object *Obj, const ThreadContext &Thread,
                  int64_t TimeoutNanos = -1);
  NotifyStatus notify(Object *Obj, const ThreadContext &Thread);
  NotifyStatus notifyAll(Object *Obj, const ThreadContext &Thread);

  /// \returns a snapshot of the cache behaviour counters.
  MonitorCacheStats stats() const;

  /// \returns the cache counters rendered as a JSON object literal (the
  /// SyncBackend statsJson capability).
  std::string statsJson() const;

  /// \returns the number of object->monitor mappings currently live.
  size_t mappedMonitorCount() const;

private:
  struct CachedMonitor {
    FatLock Lock;
    const Object *Key = nullptr;
    /// Threads that resolved this monitor and have not finished their
    /// monitor operation yet; a sweep must not reclaim a pinned monitor.
    uint32_t Pins = 0;
    /// Times this mapping has been used since it was (re)installed.
    uint64_t UseCount = 0;
  };

  /// Resolves the monitor for \p Obj, creating the mapping on a miss,
  /// and pins it.  \returns nullptr only when \p CreateIfMissing is false
  /// and no mapping exists.
  CachedMonitor *resolveAndPin(const Object *Obj, bool CreateIfMissing);
  void unpin(CachedMonitor *Monitor);

  /// Sweeps the map reclaiming idle monitors onto the free list.  The
  /// cache mutex must be held.  \returns how many were reclaimed.
  size_t sweepLocked();

  static bool isIdle(const CachedMonitor &Monitor);

  mutable std::mutex CacheMutex;
  std::unordered_map<const Object *, CachedMonitor *> Map;
  std::vector<std::unique_ptr<CachedMonitor>> Pool;
  std::vector<CachedMonitor *> FreeList;
  MonitorCacheStats Counters;
};

static_assert(SyncProtocol<MonitorCache>,
              "MonitorCache must satisfy the protocol concept");

} // namespace thinlocks

#endif // THINLOCKS_BASELINES_MONITORCACHE_H

//===- baselines/EagerMonitor.cpp - Monitor-per-object strawman -----------===//

#include "baselines/EagerMonitor.h"

#include <cassert>

using namespace thinlocks;

EagerMonitor::EagerMonitor() : Shards(NumShards) {}

EagerMonitor::Shard &EagerMonitor::shardFor(const Object *Obj) const {
  // Mix the address; objects are 16-byte aligned, so drop the low bits.
  uintptr_t Address = reinterpret_cast<uintptr_t>(Obj);
  return Shards[(Address >> 4) * 0x9e3779b97f4a7c15ull >> 60];
}

FatLock *EagerMonitor::resolve(const Object *Obj, bool CreateIfMissing) {
  Shard &S = shardFor(Obj);
  std::lock_guard<std::mutex> Guard(S.Mutex);
  auto It = S.Map.find(Obj);
  if (It != S.Map.end())
    return It->second.get();
  if (!CreateIfMissing)
    return nullptr;
  auto Monitor = std::make_unique<FatLock>();
  FatLock *Raw = Monitor.get();
  S.Map.emplace(Obj, std::move(Monitor));
  return Raw;
}

void EagerMonitor::lock(Object *Obj, const ThreadContext &Thread) {
  resolve(Obj, /*CreateIfMissing=*/true)->lock(Thread);
}

void EagerMonitor::unlock(Object *Obj, const ThreadContext &Thread) {
  [[maybe_unused]] bool Ok = unlockChecked(Obj, Thread);
  assert(Ok && "unlock of a monitor the thread does not own");
}

bool EagerMonitor::unlockChecked(Object *Obj, const ThreadContext &Thread) {
  FatLock *Monitor = resolve(Obj, /*CreateIfMissing=*/false);
  return Monitor && Monitor->unlockChecked(Thread);
}

bool EagerMonitor::tryLock(Object *Obj, const ThreadContext &Thread) {
  return resolve(Obj, /*CreateIfMissing=*/true)->tryLock(Thread);
}

TimedLockStatus EagerMonitor::tryLockFor(Object *Obj,
                                         const ThreadContext &Thread,
                                         int64_t TimeoutNanos) {
  FatLock::TimedResult Result =
      resolve(Obj, /*CreateIfMissing=*/true)->lockIfLiveFor(Thread,
                                                            TimeoutNanos);
  // Eager monitors are permanent (never retired) and this baseline has no
  // waits-for graph, so any failure degrades to TimedOut (see
  // degradeToTimedOut in core/LockProtocol.h).
  return degradeToTimedOut(Result == FatLock::TimedResult::Acquired);
}

bool EagerMonitor::holdsLock(Object *Obj,
                             const ThreadContext &Thread) const {
  FatLock *Monitor =
      const_cast<EagerMonitor *>(this)->resolve(Obj,
                                                /*CreateIfMissing=*/false);
  return Monitor && Monitor->heldBy(Thread);
}

uint32_t EagerMonitor::lockDepth(Object *Obj,
                                 const ThreadContext &Thread) const {
  FatLock *Monitor =
      const_cast<EagerMonitor *>(this)->resolve(Obj,
                                                /*CreateIfMissing=*/false);
  if (!Monitor || !Monitor->heldBy(Thread))
    return 0;
  return Monitor->holdCount();
}

WaitStatus EagerMonitor::wait(Object *Obj, const ThreadContext &Thread,
                              int64_t TimeoutNanos) {
  FatLock *Monitor = resolve(Obj, /*CreateIfMissing=*/false);
  if (!Monitor || !Monitor->heldBy(Thread))
    return WaitStatus::NotOwner;
  return Monitor->wait(Thread, TimeoutNanos) ==
                 FatLock::WaitResult::Notified
             ? WaitStatus::Notified
             : WaitStatus::TimedOut;
}

NotifyStatus EagerMonitor::notify(Object *Obj, const ThreadContext &Thread) {
  FatLock *Monitor = resolve(Obj, /*CreateIfMissing=*/false);
  if (!Monitor || !Monitor->heldBy(Thread))
    return NotifyStatus::NotOwner;
  Monitor->notify(Thread);
  return NotifyStatus::Ok;
}

NotifyStatus EagerMonitor::notifyAll(Object *Obj,
                                     const ThreadContext &Thread) {
  FatLock *Monitor = resolve(Obj, /*CreateIfMissing=*/false);
  if (!Monitor || !Monitor->heldBy(Thread))
    return NotifyStatus::NotOwner;
  Monitor->notifyAll(Thread);
  return NotifyStatus::Ok;
}

uint64_t EagerMonitor::monitorCount() const {
  uint64_t Count = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Guard(S.Mutex);
    Count += S.Map.size();
  }
  return Count;
}

uint64_t EagerMonitor::approximateMonitorBytes() const {
  // FatLock itself plus one hash-map node (pointer pair + bucket link).
  return monitorCount() *
         (sizeof(FatLock) + sizeof(void *) * 2 + sizeof(const Object *));
}

//===- park/Parker.h - Per-thread blocking primitive -----------*- C++ -*-===//
///
/// \file
/// The per-thread half of the unified waiting substrate.  Every attached
/// thread owns exactly one Parker (wired through ThreadRegistry attach,
/// reachable as ThreadContext::parker()); every blocking path in the
/// library — fat-lock entry queues, wait sets, thin-word contention
/// parking in the ParkingLot — blocks by parking the calling thread's own
/// Parker and is woken by a *directed* unpark of that Parker.  This
/// replaces the previous per-lock condition variables (FatLock's entry
/// condvar plus one condvar per wait node) with one kernel wait object
/// per thread and gives every waker a handle to wake exactly the thread
/// it means to — no notify_all herds.
///
/// Semantics are the classic one-token parker (HotSpot's os::PlatformEvent,
/// java.util.concurrent's LockSupport, Rust's std Parker):
///
///  - unpark() deposits a token (tokens do not accumulate) and wakes the
///    owner if it is blocked;
///  - park() consumes a pending token and returns immediately, or blocks
///    until a token arrives;
///  - parkUntil() additionally gives up at a deadline.
///
/// park() may return *spuriously* (a stale token from an abandoned
/// handoff, an interrupted futex wait, or the `park.spurious` failpoint).
/// Every call site must therefore re-check its guarded condition in a
/// loop — which they need for correct monitor semantics anyway.  The
/// failpoint makes that discipline testable: arming `park.spurious`
/// injects spurious returns at the one place every blocking path funnels
/// through.
///
/// On Linux the parker blocks on a futex over its state word; elsewhere
/// (and under ThreadSanitizer, which does not model raw futex syscalls)
/// it falls back to an internal mutex + condition variable.  Either way
/// the cross-thread happens-before edge is carried by the acquire/release
/// operations on State, not by the sleeping mechanism.
///
/// Wake-latency instrumentation: unpark() stamps a monotonic timestamp
/// before depositing the token; a park() that actually blocked computes
/// the unpark-to-wake delta on return.  The lock layers feed these deltas
/// into LockStats' time-to-wake histogram.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_PARK_PARKER_H
#define THINLOCKS_PARK_PARKER_H

#include "support/Compiler.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#if defined(__SANITIZE_THREAD__)
#define THINLOCKS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define THINLOCKS_TSAN 1
#endif
#endif

#if defined(__linux__) && !defined(THINLOCKS_TSAN) &&                         \
    !defined(THINLOCKS_PARKER_NO_FUTEX)
#define THINLOCKS_PARKER_FUTEX 1
#endif

namespace thinlocks {

/// One-token, one-owner blocking primitive.  Exactly one thread (the
/// owner) may call the park methods; any thread may call unpark().  The
/// Parker must outlive every in-flight unpark() targeting it — satisfied
/// by embedding it in ThreadInfo, whose storage lives for the registry's
/// lifetime.
class Parker {
public:
  /// Why a park call returned.
  enum class WakeReason : uint8_t {
    Unparked, ///< A token was consumed (deposited before or during the park).
    TimedOut, ///< parkUntil()'s deadline passed with no token.
    Spurious, ///< Woke with neither token nor deadline; re-check and re-park.
  };

  Parker() = default;
  Parker(const Parker &) = delete;
  Parker &operator=(const Parker &) = delete;

  /// Blocks until a token is available (or a spurious wake).  Consumes
  /// the token.  Never returns TimedOut.
  WakeReason park();

  /// Like park(), but gives up at \p Deadline.
  WakeReason parkUntil(std::chrono::steady_clock::time_point Deadline);

  /// Convenience: parkUntil(now + Nanos).
  WakeReason parkFor(int64_t Nanos);

  /// Deposits the token and wakes the owner if it is parked.  Tokens do
  /// not accumulate: unparking an already-unparked Parker is a no-op
  /// beyond refreshing the wake timestamp.  Safe from any thread.
  void unpark();

  /// Drops any stale token (and wake bookkeeping).  Called by
  /// ThreadRegistry::attach() so a recycled thread index does not inherit
  /// the previous owner's pending wake.  Owner-thread only.
  void reset();

  /// \returns the unpark-to-return latency, in nanoseconds, of the most
  /// recent park call that consumed a token *after actually blocking*
  /// (0 if the most recent token was consumed without blocking).
  /// Owner-thread only.
  uint64_t lastBlockedWakeNanos() const { return LastBlockedWakeNanos; }

  /// \returns how many park calls blocked (reached the kernel) over this
  /// Parker's lifetime.  Owner-thread reads are exact.
  uint64_t blockedParkCount() const { return BlockedParks; }

private:
  enum : uint32_t { Empty = 0, Token = 1, Parked = 2 };

  WakeReason parkImpl(bool HasDeadline,
                      std::chrono::steady_clock::time_point Deadline);
  /// Consumes the token found in \p Observed state; records wake latency
  /// when \p Blocked.
  WakeReason consumeToken(bool Blocked);

  /// Futex wait / condvar wait over State == Parked.
  void blockWait(bool HasDeadline,
                 std::chrono::steady_clock::time_point Deadline);

  std::atomic<uint32_t> State{Empty};
  /// Stamped by unpark() before the token is published (release on State
  /// orders it); read by the owner after consuming the token (acquire).
  std::atomic<uint64_t> UnparkStampNanos{0};
  /// Owner-thread-only bookkeeping.
  uint64_t LastBlockedWakeNanos = 0;
  uint64_t BlockedParks = 0;
#if !defined(THINLOCKS_PARKER_FUTEX)
  std::mutex Mutex;
  std::condition_variable Cv;
#endif
};

} // namespace thinlocks

#endif // THINLOCKS_PARK_PARKER_H

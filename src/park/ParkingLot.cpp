//===- park/ParkingLot.cpp - Address-keyed queues of parked threads -------===//

#include "park/ParkingLot.h"

#include "support/FailPoint.h"

#include <thread>
#include <vector>

using namespace thinlocks;

ParkingLot &ParkingLot::global() {
  static ParkingLot Lot;
  return Lot;
}

size_t ParkingLot::bucketIndexOf(const void *Key) {
  // Fibonacci hash over the address with the low alignment bits dropped;
  // object headers are at least 8-byte aligned so the low bits carry no
  // entropy.
  uintptr_t Addr = reinterpret_cast<uintptr_t>(Key) >> 3;
  return (Addr * UINT64_C(0x9E3779B97F4A7C15) >> 58) % NumBuckets;
}

void ParkingLot::unlink(Bucket &B, WaitNode *Node) {
  WaitNode *Prev = nullptr;
  for (WaitNode *Cur = B.Head; Cur; Prev = Cur, Cur = Cur->Next) {
    if (Cur != Node)
      continue;
    (Prev ? Prev->Next : B.Head) = Cur->Next;
    if (B.Tail == Cur)
      B.Tail = Prev;
    Cur->Next = nullptr;
    Cur->Queued = false;
    return;
  }
  tlUnreachable("unlink: node not in bucket");
}

ParkingLot::ParkResult
ParkingLot::parkImpl(const void *Key, Parker &Pk, bool (*Validate)(void *),
                     void *Ctx, bool HasDeadline,
                     std::chrono::steady_clock::time_point Deadline) {
  Bucket &B = bucketFor(Key);
  WaitNode Node;
  Node.Pk = &Pk;
  Node.Key = Key;
  {
    LockGuard G(B.Mu);
    if (!Validate(Ctx))
      return ParkResult::Invalid;
    Node.Queued = true;
    (B.Tail ? B.Tail->Next : B.Head) = &Node;
    B.Tail = &Node;
  }
  for (;;) {
    Parker::WakeReason R = HasDeadline ? Pk.parkUntil(Deadline) : Pk.park();
    if (TL_FAILPOINT(ParkingLotTimeoutRace)) {
      // Hold open the window between waking and re-taking the bucket
      // mutex so a concurrent unparkOne can capture this node first.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    UniqueLock G(B.Mu);
    if (!Node.Queued) {
      // A waker dequeued us.
      if (HasDeadline && (R == Parker::WakeReason::TimedOut ||
                          std::chrono::steady_clock::now() >= Deadline)) {
        // ...but we were on our way out: the deadline had already
        // expired when the waker captured this node, so its one wake
        // landed on a waiter that is abandoning the queue.  Silently
        // keeping it would strand whoever the waker meant to run next,
        // so re-issue the wake to the new FIFO head for this key.  The
        // next node must be *unlinked* here, not merely unparked — an
        // unparked-but-still-queued waiter with no deadline would
        // classify the token as spurious and re-sleep forever.
        Parker *Next = nullptr;
        for (WaitNode *Cur = B.Head; Cur; Cur = Cur->Next) {
          if (Cur->Key != Key)
            continue;
          Next = Cur->Pk;
          unlink(B, Cur);
          break;
        }
        G.unlock();
        if (Next)
          Next->unpark();
        return ParkResult::TimedOut;
      }
      // If we got here on a spurious wake the waker's token may still
      // be in flight; it will surface as one harmless spurious wake at
      // this thread's next park site.
      return ParkResult::Unparked;
    }
    if (HasDeadline && (R == Parker::WakeReason::TimedOut ||
                        std::chrono::steady_clock::now() >= Deadline)) {
      unlink(B, &Node);
      return ParkResult::TimedOut;
    }
    // Still queued with time to spare: the wake was spurious or the
    // token was stale (an old handoff for a park we already finished).
    // Loop and sleep again.
  }
}

size_t ParkingLot::unparkOne(const void *Key) {
  Bucket &B = bucketFor(Key);
  Parker *Target = nullptr;
  {
    LockGuard G(B.Mu);
    for (WaitNode *Cur = B.Head; Cur; Cur = Cur->Next) {
      if (Cur->Key != Key)
        continue;
      Target = Cur->Pk;
      unlink(B, Cur);
      break;
    }
  }
  // Unpark after dropping the bucket mutex: the wakee's first action is
  // to take that mutex, and waking it while we still hold it would
  // convoy every wake behind the bucket.
  if (!Target)
    return 0;
  Target->unpark();
  return 1;
}

size_t ParkingLot::unparkAll(const void *Key) {
  Bucket &B = bucketFor(Key);
  // Capture targets under the mutex; once a node is unlinked its stack
  // frame can disappear as soon as its owner re-checks, so only the
  // registry-lifetime Parker pointers survive the unlock.
  std::vector<Parker *> Targets;
  {
    LockGuard G(B.Mu);
    WaitNode *Cur = B.Head;
    while (Cur) {
      WaitNode *Next = Cur->Next;
      if (Cur->Key == Key) {
        Targets.push_back(Cur->Pk);
        unlink(B, Cur);
      }
      Cur = Next;
    }
  }
  for (Parker *Target : Targets)
    Target->unpark();
  return Targets.size();
}

size_t ParkingLot::queuedOn(const void *Key) {
  Bucket &B = bucketFor(Key);
  LockGuard G(B.Mu);
  size_t N = 0;
  for (WaitNode *Cur = B.Head; Cur; Cur = Cur->Next)
    N += Cur->Key == Key;
  return N;
}

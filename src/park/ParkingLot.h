//===- park/ParkingLot.h - Address-keyed queues of parked threads *- C++ -*===//
///
/// \file
/// The shared half of the waiting substrate: a small hashed table of
/// cache-line-padded buckets, each holding an intrusive FIFO of threads
/// parked on some address.  This is the WebKit-ParkingLot / futex shape:
/// the synchronized object stays one word (here: the thin lock word in
/// the object header, exactly as the paper requires) and all queueing
/// state lives off to the side, keyed by the object's address.
///
/// ThinLock's contended slow paths use it to wait for a thin word to
/// change hands: a contender validates "still worth sleeping" under the
/// bucket lock, enqueues its own Parker, and deadline-parks; the
/// inflating releaser publishes the fat word and then unparkAll()s the
/// address, so waiters learn of inflation immediately instead of
/// sleeping out a blind back-off quantum.  (FatLock does *not* route
/// through the lot: once a monitor exists it keeps its own per-monitor
/// FIFO of Parkers, which preserves strict entry order without hashing.)
///
/// Protocol invariants:
///  - A node is enqueued and dequeued only under its bucket mutex, and a
///    waiter returns only after observing (under that mutex) that it has
///    been dequeued or after dequeuing itself on timeout.
///  - Wakers capture the Parker pointer under the bucket mutex but call
///    unpark() after releasing it, so a wake never convoys behind the
///    bucket.  The woken thread may therefore observe "dequeued" via a
///    spurious wake before the token lands; the token then surfaces as
///    one spurious wake at that thread's next park site, which every
///    caller tolerates by re-checking its condition.
///  - The validation callback runs under the bucket mutex and must not
///    block or touch the lot.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_PARK_PARKINGLOT_H
#define THINLOCKS_PARK_PARKINGLOT_H

#include "park/Parker.h"
#include "support/Mutex.h"

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace thinlocks {

class ParkingLot {
public:
  /// Buckets in the hash table.  Collisions are correctness-neutral (keys
  /// are rechecked under the bucket mutex) and 64 padded buckets keep the
  /// probability of two hot objects sharing a mutex low.
  static constexpr size_t NumBuckets = 64;

  /// Outcome of a park call.
  enum class ParkResult : uint8_t {
    Invalid,  ///< Validation failed under the bucket lock; never slept.
    Unparked, ///< Dequeued by unparkOne/unparkAll.
    TimedOut, ///< Deadline passed.  Usually the waiter dequeued itself;
              ///< if a waker had concurrently captured it, the consumed
              ///< wake was re-issued to the next queued waiter (so an
              ///< unparkOne is never silently lost on a timed-out
              ///< waiter).
  };

  ParkingLot() = default;
  ParkingLot(const ParkingLot &) = delete;
  ParkingLot &operator=(const ParkingLot &) = delete;

  /// The process-wide lot used by the lock layers.
  static ParkingLot &global();

  /// Parks \p Pk (the calling thread's own Parker) on \p Key until a
  /// waker dequeues it or \p Deadline passes.  \p Validate is invoked
  /// under the bucket mutex before enqueueing; returning false aborts
  /// with ParkResult::Invalid and the thread never sleeps.  Spurious
  /// Parker wakes and stale tokens are absorbed internally: the call
  /// returns only on a real dequeue or timeout.
  template <typename ValidateFn>
  ParkResult parkUntil(const void *Key, Parker &Pk, ValidateFn &&Validate,
                       std::chrono::steady_clock::time_point Deadline) {
    auto Thunk = [](void *Ctx) -> bool {
      return (*static_cast<ValidateFn *>(Ctx))();
    };
    return parkImpl(Key, Pk, Thunk, &Validate, /*HasDeadline=*/true, Deadline);
  }

  /// parkUntil() without a deadline: returns only when dequeued.
  template <typename ValidateFn>
  ParkResult park(const void *Key, Parker &Pk, ValidateFn &&Validate) {
    auto Thunk = [](void *Ctx) -> bool {
      return (*static_cast<ValidateFn *>(Ctx))();
    };
    return parkImpl(Key, Pk, Thunk, &Validate, /*HasDeadline=*/false,
                    std::chrono::steady_clock::time_point());
  }

  /// Dequeues and unparks the FIFO-first thread parked on \p Key.
  /// \returns the number of threads woken (0 or 1).
  size_t unparkOne(const void *Key);

  /// Dequeues and unparks every thread parked on \p Key — the
  /// publish-and-wake broadcast a releaser issues after installing a fat
  /// lock word.  \returns the number of threads woken.
  size_t unparkAll(const void *Key);

  /// \returns how many threads are currently parked on \p Key (test and
  /// diagnostics aid; instantaneously stale by the time it returns).
  size_t queuedOn(const void *Key);

  /// \returns the bucket index \p Key hashes to (exposed so tests can
  /// construct deliberate collisions).
  static size_t bucketIndexOf(const void *Key);

private:
  /// One parked thread, stack-allocated inside parkImpl and linked into
  /// its bucket's FIFO.  All fields are guarded by the bucket mutex
  /// (stack nodes cannot carry a per-instance TL_GUARDED_BY; the
  /// REQUIRES annotation on unlink and the LockGuard scopes in
  /// ParkingLot.cpp enforce it).
  struct WaitNode {
    Parker *Pk;
    const void *Key;
    WaitNode *Next = nullptr;
    bool Queued = false;
  };

  struct alignas(64) Bucket {
    Mutex Mu;
    WaitNode *Head TL_GUARDED_BY(Mu) = nullptr;
    WaitNode *Tail TL_GUARDED_BY(Mu) = nullptr;
  };

  ParkResult parkImpl(const void *Key, Parker &Pk, bool (*Validate)(void *),
                      void *Ctx, bool HasDeadline,
                      std::chrono::steady_clock::time_point Deadline);

  Bucket &bucketFor(const void *Key) { return Buckets[bucketIndexOf(Key)]; }
  /// Unlinks \p Node from \p B (\p Node must be queued).
  static void unlink(Bucket &B, WaitNode *Node) TL_REQUIRES(B.Mu);

  Bucket Buckets[NumBuckets];
};

} // namespace thinlocks

#endif // THINLOCKS_PARK_PARKINGLOT_H

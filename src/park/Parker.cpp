//===- park/Parker.cpp - Per-thread blocking primitive --------------------===//

#include "park/Parker.h"

#include "support/FailPoint.h"

#if defined(THINLOCKS_PARKER_FUTEX)
#include <climits>
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

namespace thinlocks {

namespace {

uint64_t monotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

Parker::WakeReason Parker::park() {
  return parkImpl(/*HasDeadline=*/false, std::chrono::steady_clock::time_point());
}

Parker::WakeReason
Parker::parkUntil(std::chrono::steady_clock::time_point Deadline) {
  return parkImpl(/*HasDeadline=*/true, Deadline);
}

Parker::WakeReason Parker::parkFor(int64_t Nanos) {
  return parkUntil(std::chrono::steady_clock::now() +
                   std::chrono::nanoseconds(Nanos));
}

Parker::WakeReason Parker::consumeToken(bool Blocked) {
  // Acquire pairs with the release in unpark(), making the waker's stamp
  // (and everything before its unpark) visible here.
  uint32_t Prev = State.exchange(Empty, std::memory_order_acquire);
  (void)Prev;
  if (Blocked) {
    uint64_t Stamp = UnparkStampNanos.load(std::memory_order_relaxed);
    uint64_t Now = monotonicNanos();
    LastBlockedWakeNanos = (Stamp != 0 && Now > Stamp) ? Now - Stamp : 0;
  } else {
    LastBlockedWakeNanos = 0;
  }
  return WakeReason::Unparked;
}

Parker::WakeReason
Parker::parkImpl(bool HasDeadline,
                 std::chrono::steady_clock::time_point Deadline) {
  // Fast path: a token is already pending; consume it without blocking.
  if (State.load(std::memory_order_relaxed) == Token)
    return consumeToken(/*Blocked=*/false);

  if (TL_FAILPOINT(ParkSpurious))
    return WakeReason::Spurious;

  // Publish the parked state.  If an unpark raced in between the load
  // above and this exchange, we see its token here and return at once.
  uint32_t Prev = State.exchange(Parked, std::memory_order_acquire);
  if (Prev == Token)
    return consumeToken(/*Blocked=*/false);

  BlockedParks++;
  blockWait(HasDeadline, Deadline);

  // Whatever woke us (token, timeout, or kernel-level spurious wake),
  // retire the Parked state.  Seeing Token means a real unpark landed.
  Prev = State.exchange(Empty, std::memory_order_acquire);
  if (Prev == Token) {
    uint64_t Stamp = UnparkStampNanos.load(std::memory_order_relaxed);
    uint64_t Now = monotonicNanos();
    LastBlockedWakeNanos = (Stamp != 0 && Now > Stamp) ? Now - Stamp : 0;
    return WakeReason::Unparked;
  }
  LastBlockedWakeNanos = 0;
  if (HasDeadline && std::chrono::steady_clock::now() >= Deadline)
    return WakeReason::TimedOut;
  return WakeReason::Spurious;
}

void Parker::unpark() {
  // Stamp first; the release exchange below orders it before the token
  // becomes visible to the consuming park().
  UnparkStampNanos.store(monotonicNanos(), std::memory_order_relaxed);
  uint32_t Prev = State.exchange(Token, std::memory_order_release);
  if (Prev != Parked)
    return; // Owner was not blocked; it will consume the token on entry.
#if defined(THINLOCKS_PARKER_FUTEX)
  syscall(SYS_futex, reinterpret_cast<uint32_t *>(&State), FUTEX_WAKE_PRIVATE,
          1, nullptr, nullptr, 0);
#else
  // Take and drop the mutex so the owner cannot miss the wake between its
  // own State check and the Cv wait.
  { std::lock_guard<std::mutex> G(Mutex); }
  Cv.notify_one();
#endif
}

void Parker::reset() {
  State.store(Empty, std::memory_order_relaxed);
  UnparkStampNanos.store(0, std::memory_order_relaxed);
  LastBlockedWakeNanos = 0;
}

void Parker::blockWait(bool HasDeadline,
                       std::chrono::steady_clock::time_point Deadline) {
#if defined(THINLOCKS_PARKER_FUTEX)
  // One futex wait; parkImpl rechecks the state and classifies the wake.
  // EINTR/EAGAIN/ETIMEDOUT all just fall through to that recheck.
  if (!HasDeadline) {
    syscall(SYS_futex, reinterpret_cast<uint32_t *>(&State),
            FUTEX_WAIT_PRIVATE, Parked, nullptr, nullptr, 0);
    return;
  }
  auto Now = std::chrono::steady_clock::now();
  if (Now >= Deadline)
    return;
  auto Left = std::chrono::duration_cast<std::chrono::nanoseconds>(Deadline - Now);
  struct timespec Ts;
  Ts.tv_sec = static_cast<time_t>(Left.count() / 1000000000);
  Ts.tv_nsec = static_cast<long>(Left.count() % 1000000000);
  syscall(SYS_futex, reinterpret_cast<uint32_t *>(&State), FUTEX_WAIT_PRIVATE,
          Parked, &Ts, nullptr, 0);
#else
  std::unique_lock<std::mutex> G(Mutex);
  auto StillParked = [this] {
    return State.load(std::memory_order_relaxed) == Parked;
  };
  if (!HasDeadline) {
    // Bounded wait even without a deadline: a missed notify (impossible
    // given the mutex hand-shake in unpark(), but cheap insurance) turns
    // into a spurious wake instead of a hang.
    Cv.wait_for(G, std::chrono::milliseconds(100), [&] { return !StillParked(); });
  } else {
    Cv.wait_until(G, Deadline, [&] { return !StillParked(); });
  }
#endif
}

} // namespace thinlocks

//===- obs/SloSnapshot.h - Service-level-objective snapshot ----*- C++ -*-===//
///
/// \file
/// The reporting end of the sustained-load soak harness (DESIGN.md §12):
/// a point-in-time summary of how the locking substrate served an
/// open-loop session workload — acquire-latency and whole-session
/// quantiles (p50/p99/p999 out of support/Histogram.h's
/// LatencyHistogram), time-to-wake quantiles folded from drained Wake
/// events, throughput, and the admission-control ledger (shed/deferred/
/// degraded counts, typed-error totals, degradation-level residency).
///
/// Everything renders to a single JSON object (toJson) so
/// bench/run_benches.sh can stage it as BENCH_soak.json next to the
/// google-benchmark trajectories, and to a Chrome trace of the *worst*
/// sessions (worstSessionsTraceJson): the slowest tail as "session"
/// spans overlaid on the lock events recorded inside their windows —
/// "why was p999 slow" becomes one chrome://tracing load.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_OBS_SLOSNAPSHOT_H
#define THINLOCKS_OBS_SLOSNAPSHOT_H

#include "obs/LockEvents.h"
#include "support/Histogram.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace thinlocks {

class ClassRegistry;

namespace obs {

/// The latency quantiles the SLO tracks, in nanoseconds.
struct SloQuantiles {
  uint64_t Count = 0;
  uint64_t P50 = 0;
  uint64_t P99 = 0;
  uint64_t P999 = 0;
  uint64_t Max = 0;
  uint64_t Mean = 0;

  /// Reads the tracked quantiles out of \p Hist.
  static SloQuantiles of(const LatencyHistogram &Hist);

  /// \returns true when the quantiles are mutually consistent
  /// (p50 <= p99 <= p999 <= max) — the self-check every soak run
  /// asserts before publishing numbers.
  bool monotone() const { return P50 <= P99 && P99 <= P999 && P999 <= Max; }
};

/// One completed (or shed) session's identity and window, retained so
/// the worst tail can be rendered as trace spans.
struct SessionSpanInfo {
  uint64_t SessionId = 0;
  uint32_t WorkerTid = 0;     ///< Worker thread index (trace lane).
  uint64_t ArrivalNanos = 0;  ///< Open-loop arrival stamp.
  uint64_t StartNanos = 0;    ///< Dequeue / execution start.
  uint64_t EndNanos = 0;
  uint64_t MaxAcquireNanos = 0;
  bool Heavy = false;
  bool Degraded = false;
};

/// A coherent end-of-run SLO summary.
struct SloSnapshot {
  /// Registry name of the protocol that served the run ("ThinLock",
  /// "Fissile", ...); every published artifact carries the label so
  /// cross-protocol soaks stay attributable.
  std::string Protocol = "ThinLock";
  double DurationSeconds = 0;

  SloQuantiles Acquire; ///< Per-acquisition latency (lock() wall time).
  SloQuantiles Session; ///< Arrival-to-completion (includes queueing).
  SloQuantiles Wake;    ///< Unpark-to-resume, from drained Wake events.

  /// Offered load accounting.  Offered == Completed + Shed always holds
  /// at the end of a run (deferred sessions either ran or were shed at
  /// shutdown); bench_soak fails if it does not.
  uint64_t SessionsOffered = 0;
  uint64_t SessionsCompleted = 0;
  uint64_t SessionsShed = 0;
  uint64_t SessionsDeferred = 0;  ///< Deferred at least once (may complete).
  uint64_t SessionsDegraded = 0;  ///< Ran with inflation-heavy ops elided.
  uint64_t RequestsCompleted = 0;

  double SessionsPerSecond = 0;
  double RequestsPerSecond = 0;
  /// Shed sessions as a fraction of offered sessions.
  double ShedRate = 0;

  /// Typed-error totals over the run (the admission signals).
  uint64_t MonitorExhaustionEvents = 0;
  uint64_t RegistryExhaustionEvents = 0;
  uint64_t EmergencyInflations = 0;

  /// Degradation-ladder residency: controller ticks spent at each level
  /// (Normal, Shed, DeferInflation, EmergencyOnly) plus transition count.
  std::array<uint64_t, 4> TicksAtLevel{};
  uint64_t LevelTransitions = 0;
  /// The level when the run ended (0 == Normal; recovery proof).
  unsigned FinalLevel = 0;

  /// Renders the snapshot as one pretty-printed JSON object.
  std::string toJson() const;
};

/// Renders the \p Worst sessions as Chrome "session" spans overlaid on
/// the subset of \p Events that falls inside any worst-session window
/// (so the artifact stays small no matter how long the run was).  Spans
/// start at the session's *arrival*, making queueing delay visible.
/// A non-empty \p Protocol is stamped onto every session span as a
/// "protocol" arg so traces from cross-protocol soaks stay attributable.
std::string worstSessionsTraceJson(const std::vector<LockEvent> &Events,
                                   const std::vector<SessionSpanInfo> &Worst,
                                   const ClassRegistry *Classes,
                                   const std::string &Protocol = {});

} // namespace obs
} // namespace thinlocks

#endif // THINLOCKS_OBS_SLOSNAPSHOT_H

//===- obs/SloSnapshot.cpp - Service-level-objective snapshot -------------===//

#include "obs/SloSnapshot.h"

#include "obs/ChromeTrace.h"

#include <algorithm>
#include <cstdio>

using namespace thinlocks;
using namespace thinlocks::obs;

SloQuantiles SloQuantiles::of(const LatencyHistogram &Hist) {
  SloQuantiles Q;
  Q.Count = Hist.count();
  Q.P50 = Hist.quantile(0.50);
  Q.P99 = Hist.quantile(0.99);
  Q.P999 = Hist.quantile(0.999);
  Q.Max = Hist.max();
  Q.Mean = Hist.mean();
  return Q;
}

namespace {

void appendKv(std::string &Out, const char *Key, uint64_t Value,
              bool Comma = true) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "    \"%s\": %llu%s\n", Key,
                static_cast<unsigned long long>(Value), Comma ? "," : "");
  Out += Buf;
}

void appendKv(std::string &Out, const char *Key, double Value,
              bool Comma = true) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "    \"%s\": %.4f%s\n", Key, Value,
                Comma ? "," : "");
  Out += Buf;
}

/// String values come from the protocol registry (identifier-shaped), so
/// no escaping is needed.
void appendKv(std::string &Out, const char *Key, const std::string &Value,
              bool Comma = true) {
  Out += "    \"";
  Out += Key;
  Out += "\": \"";
  Out += Value;
  Out += Comma ? "\",\n" : "\"\n";
}

void appendQuantiles(std::string &Out, const char *Key,
                     const SloQuantiles &Q) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "    \"%s\": {\"count\": %llu, \"p50_ns\": %llu, "
                "\"p99_ns\": %llu, \"p999_ns\": %llu, \"max_ns\": %llu, "
                "\"mean_ns\": %llu},\n",
                Key, static_cast<unsigned long long>(Q.Count),
                static_cast<unsigned long long>(Q.P50),
                static_cast<unsigned long long>(Q.P99),
                static_cast<unsigned long long>(Q.P999),
                static_cast<unsigned long long>(Q.Max),
                static_cast<unsigned long long>(Q.Mean));
  Out += Buf;
}

/// Mirrors ChromeTrace's view: duration events are stamped at their end
/// and carry the duration in Arg.
uint64_t eventStartNanos(const LockEvent &E) {
  switch (E.Kind) {
  case EventKind::ContendedAcquire:
  case EventKind::Park:
  case EventKind::Wait:
  case EventKind::Wake:
    return E.Arg <= E.TimeNanos ? E.TimeNanos - E.Arg : 0;
  default:
    return E.TimeNanos;
  }
}

} // namespace

std::string SloSnapshot::toJson() const {
  std::string Out = "{\n";
  appendKv(Out, "protocol", Protocol);
  appendKv(Out, "duration_s", DurationSeconds);
  appendQuantiles(Out, "acquire", Acquire);
  appendQuantiles(Out, "session", Session);
  appendQuantiles(Out, "wake", Wake);
  appendKv(Out, "sessions_offered", SessionsOffered);
  appendKv(Out, "sessions_completed", SessionsCompleted);
  appendKv(Out, "sessions_shed", SessionsShed);
  appendKv(Out, "sessions_deferred", SessionsDeferred);
  appendKv(Out, "sessions_degraded", SessionsDegraded);
  appendKv(Out, "requests_completed", RequestsCompleted);
  appendKv(Out, "sessions_per_s", SessionsPerSecond);
  appendKv(Out, "requests_per_s", RequestsPerSecond);
  appendKv(Out, "shed_rate", ShedRate);
  appendKv(Out, "monitor_exhaustion_events", MonitorExhaustionEvents);
  appendKv(Out, "registry_exhaustion_events", RegistryExhaustionEvents);
  appendKv(Out, "emergency_inflations", EmergencyInflations);
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "    \"ticks_at_level\": [%llu, %llu, %llu, %llu],\n",
                static_cast<unsigned long long>(TicksAtLevel[0]),
                static_cast<unsigned long long>(TicksAtLevel[1]),
                static_cast<unsigned long long>(TicksAtLevel[2]),
                static_cast<unsigned long long>(TicksAtLevel[3]));
  Out += Buf;
  appendKv(Out, "level_transitions", LevelTransitions);
  appendKv(Out, "final_level", static_cast<uint64_t>(FinalLevel),
           /*Comma=*/false);
  Out += "}\n";
  return Out;
}

std::string obs::worstSessionsTraceJson(
    const std::vector<LockEvent> &Events,
    const std::vector<SessionSpanInfo> &Worst, const ClassRegistry *Classes,
    const std::string &Protocol) {
  std::vector<TraceSpan> Spans;
  Spans.reserve(Worst.size());
  for (const SessionSpanInfo &S : Worst) {
    TraceSpan Span;
    Span.Name = "session#" + std::to_string(S.SessionId);
    Span.Tid = S.WorkerTid;
    Span.StartNanos = S.ArrivalNanos;
    Span.EndNanos = std::max(S.EndNanos, S.ArrivalNanos);
    if (!Protocol.empty())
      Span.Args.emplace_back("protocol", Protocol);
    Span.Args.emplace_back("kind", S.Heavy ? "heavy" : "light");
    if (S.Degraded)
      Span.Args.emplace_back("degraded", "true");
    uint64_t QueueWait =
        S.StartNanos >= S.ArrivalNanos ? S.StartNanos - S.ArrivalNanos : 0;
    Span.Args.emplace_back("queue_wait_us", std::to_string(QueueWait / 1000));
    Span.Args.emplace_back("max_acquire_us",
                           std::to_string(S.MaxAcquireNanos / 1000));
    Spans.push_back(std::move(Span));
  }

  // Keep only lock events that overlap some worst-session window: the
  // artifact stays proportional to the tail, not to the run length.
  std::vector<LockEvent> Kept;
  for (const LockEvent &E : Events) {
    uint64_t Start = eventStartNanos(E);
    uint64_t End = E.TimeNanos;
    for (const SessionSpanInfo &S : Worst) {
      if (End >= S.ArrivalNanos && Start <= std::max(S.EndNanos,
                                                     S.ArrivalNanos)) {
        Kept.push_back(E);
        break;
      }
    }
  }
  return toChromeTraceJson(Kept, Spans, Classes);
}

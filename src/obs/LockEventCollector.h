//===- obs/LockEventCollector.h - Ring drain + hot-lock profiler *- C++ -*-===//
///
/// \file
/// The sampling half of the observability layer: a collector that drains
/// every thread's EventRing through the registry and folds the events
/// into (a) a bounded retained timeline for the exporters and (b) a
/// per-object aggregate — the hot-lock profile.  The paper's locking
/// characterization says synchronization concentrates on a handful of
/// hot objects; topLocks() is the table that shows which ones, ranked by
/// cumulative blocked time (the cost that actually hurts), with acquire
/// and inflation counts, and the deepest entry queue seen.
///
/// drain() may be called from a sampling thread on any cadence, or once
/// at the end of a run; it serializes itself, so the single-collector
/// contract of EventRing::drain holds no matter how many threads poke
/// the collector.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_OBS_LOCKEVENTCOLLECTOR_H
#define THINLOCKS_OBS_LOCKEVENTCOLLECTOR_H

#include "obs/LockEvents.h"
#include "support/Mutex.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace thinlocks {

class ClassRegistry;
class ThreadRegistry;

namespace obs {

/// Aggregated profile of one synchronized object.
struct HotLockEntry {
  uint64_t ObjectAddr = 0;
  uint32_t ClassIndex = 0;
  uint64_t ContendedAcquires = 0;
  uint64_t Inflations = 0;
  uint64_t Deflations = 0;
  uint64_t Parks = 0;
  uint64_t Waits = 0;
  uint64_t Notifies = 0;
  /// Cumulative nanoseconds threads spent blocked acquiring this object
  /// (the ContendedAcquire durations).
  uint64_t BlockedNanos = 0;
  /// Deepest fat-lock entry queue observed at any acquisition.
  uint64_t MaxQueueDepth = 0;
};

/// Per-class rollup of the hot-lock profile: what every instance of one
/// class cost, plus how many distinct profiled objects contributed.
/// Events are attributed by the class index they were recorded with, so
/// when an address is recycled into a new class the old class keeps the
/// history it actually caused and the new class starts clean (the
/// distinct-object count bumps again for the new incarnation).
struct HotClassEntry {
  uint32_t ClassIndex = 0;
  /// Distinct profiled objects seen for this class (recycled addresses
  /// count once per incarnation).
  uint64_t Objects = 0;
  uint64_t ContendedAcquires = 0;
  uint64_t Inflations = 0;
  uint64_t Deflations = 0;
  uint64_t Parks = 0;
  uint64_t Waits = 0;
  uint64_t Notifies = 0;
  uint64_t BlockedNanos = 0;
  uint64_t MaxQueueDepth = 0;
};

class LockEventCollector {
public:
  /// \param Registry whose threads' rings to drain.
  /// \param MaxRetainedEvents cap on the timeline kept for exporters;
  /// events beyond it still feed the aggregate but are not retained
  /// (and are counted by droppedEvents()).
  explicit LockEventCollector(ThreadRegistry &Registry,
                              size_t MaxRetainedEvents = 1u << 20);

  LockEventCollector(const LockEventCollector &) = delete;
  LockEventCollector &operator=(const LockEventCollector &) = delete;

  /// Drains every ring once.  Safe from any thread; concurrent calls
  /// serialize.  \returns the number of events consumed this pass.
  size_t drain() TL_EXCLUDES(Mu);

  /// \returns a copy of the retained timeline (drain() first for
  /// freshness), ordered by thread and then by record order.
  std::vector<LockEvent> events() const TL_EXCLUDES(Mu);

  /// \returns the total number of events folded into the aggregate.
  uint64_t totalEvents() const TL_EXCLUDES(Mu);

  /// \returns events lost to ring overruns plus retention-cap overflow.
  uint64_t droppedEvents() const TL_EXCLUDES(Mu);

  /// \returns the top \p N objects by cumulative blocked time (ties
  /// broken by contended-acquire count, then by inflations).
  std::vector<HotLockEntry> topLocks(size_t N) const TL_EXCLUDES(Mu);

  /// \returns the top \p N classes by cumulative blocked time (ties
  /// broken by contended-acquire count, then inflations, then by class
  /// index ascending).  Fed by the same folds as topLocks().
  std::vector<HotClassEntry> topClasses(size_t N) const TL_EXCLUDES(Mu);

  /// Renders topLocks(N) as an aligned text table.  When \p Classes is
  /// non-null, class indices resolve to names.
  std::string formatTopLocks(size_t N,
                             const ClassRegistry *Classes = nullptr) const
      TL_EXCLUDES(Mu);

  /// Drops the retained timeline and the aggregate (rings keep their
  /// cursors: only not-yet-drained events survive a reset).
  void reset() TL_EXCLUDES(Mu);

private:
  void fold(const LockEvent &E) TL_REQUIRES(Mu);

  ThreadRegistry &Registry;
  const size_t MaxRetainedEvents;
  mutable Mutex Mu;
  std::vector<LockEvent> Retained TL_GUARDED_BY(Mu);
  std::unordered_map<uint64_t, HotLockEntry> Profile TL_GUARDED_BY(Mu);
  std::unordered_map<uint32_t, HotClassEntry> ClassProfile TL_GUARDED_BY(Mu);
  uint64_t FoldedEvents TL_GUARDED_BY(Mu) = 0;
  uint64_t RetentionDrops TL_GUARDED_BY(Mu) = 0;
  uint64_t RingDrops TL_GUARDED_BY(Mu) = 0;
};

} // namespace obs
} // namespace thinlocks

#endif // THINLOCKS_OBS_LOCKEVENTCOLLECTOR_H

//===- obs/LockEvents.h - Typed lock-event taxonomy ------------*- C++ -*-===//
///
/// \file
/// The event vocabulary of the observability layer (DESIGN.md §10): every
/// interesting transition a lock can make — a contended acquisition, an
/// inflation with its cause, a deflation, a park/wake round trip, a
/// wait/notify, a confirmed deadlock — as a fixed-width record cheap
/// enough to write from the contention slow paths.
///
/// Recording is gated on one process-global mode flag: when tracing is
/// off (the default) every record call is a single relaxed load and a
/// predicted-not-taken branch, and the thin fast path contains no obs
/// code at all — the paper's 17-instruction sequence is byte-for-byte
/// unchanged, which bench_fastpath guards.  When tracing is on, a record
/// is four relaxed stores and one release bump into the calling thread's
/// own ring (obs/EventRing.h); no shared cache line is ever written.
///
/// Events are packed into four 64-bit words:
///   W0: timestamp (monotonic nanoseconds)
///   W1: object address
///   W2: kind(8) | thread index(16) | class index(24) | extra(16)
///   W3: argument (duration in nanoseconds, inflate cause, ...)
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_OBS_LOCKEVENTS_H
#define THINLOCKS_OBS_LOCKEVENTS_H

#include "support/Compiler.h"

#include <atomic>
#include <chrono>
#include <cstdint>

namespace thinlocks {
namespace obs {

/// What happened.  Keep in sync with eventKindName() in ChromeTrace.cpp.
enum class EventKind : uint8_t {
  None = 0,
  /// A slow-path acquisition that met contention.  Arg = nanoseconds
  /// from slow-path entry to acquisition; Extra = entry-queue length
  /// observed at acquisition (0 while still thin).
  ContendedAcquire,
  /// Thin word replaced by a fat lock.  Arg = InflateCause.
  Inflate,
  /// Fat lock retired at quiescence; word returned to thin-unlocked.
  Deflate,
  /// One ParkingLot park on the thin word.  Arg = parked nanoseconds;
  /// Extra = ParkResult (0 invalid / 1 unparked / 2 timed out).
  Park,
  /// A directed wake was consumed after blocking.  Arg = unpark-to-
  /// resume nanoseconds (the Parker's wake-latency sample).
  Wake,
  /// One Object.wait() round trip.  Arg = waited nanoseconds;
  /// Extra = 1 if notified, 0 if timed out.
  Wait,
  /// Object.notify().  Extra = 1 if a waiter was morphed.
  Notify,
  /// Object.notifyAll().  Extra = number of waiters morphed.
  NotifyAll,
  /// The owner-graph walker double-confirmed a waits-for cycle through
  /// the recording thread.  Extra = cycle length (threads).
  Deadlock,
  /// The adaptive policy engine published or expired a decision.
  /// Arg = packed LockPolicy; Extra bit 0 = published (0 = erased),
  /// bit 1 = class-level decision (ObjectAddr is 0 for those).
  PolicyDecision,
};

/// Why a lock inflated (the Arg of EventKind::Inflate).  The first three
/// are the paper's §2.3 causes; Emergency is the MonitorTable-exhaustion
/// degradation; Hint is the explicit pre-inflation API.
enum class InflateCause : uint8_t {
  Contention = 0,
  Overflow = 1,
  Wait = 2,
  Emergency = 3,
  Hint = 4,
};

/// \returns the stable display name of \p Cause.
const char *inflateCauseName(InflateCause Cause);

/// \returns the stable display name of \p Kind.
const char *eventKindName(EventKind Kind);

/// One decoded event (the unpacked form of a ring slot).
struct LockEvent {
  uint64_t TimeNanos = 0;   ///< Monotonic stamp at the *end* of the event.
  uint64_t ObjectAddr = 0;  ///< Address of the synchronized object.
  uint64_t Arg = 0;         ///< Kind-specific (usually a duration in ns).
  uint32_t ClassIndex = 0;  ///< The object's class-registry index.
  uint16_t ThreadIndex = 0; ///< Recording thread's 15-bit index.
  uint16_t Extra = 0;       ///< Kind-specific small payload.
  EventKind Kind = EventKind::None;

  /// Packs the identity fields into the W2 meta word.
  static uint64_t packMeta(EventKind Kind, uint16_t ThreadIndex,
                           uint32_t ClassIndex, uint16_t Extra) {
    return (static_cast<uint64_t>(Kind) << 56) |
           (static_cast<uint64_t>(ThreadIndex) << 40) |
           (static_cast<uint64_t>(ClassIndex & 0xFFFFFFu) << 16) |
           static_cast<uint64_t>(Extra);
  }

  /// Rebuilds an event from its four packed words.
  static LockEvent unpack(uint64_t Time, uint64_t Addr, uint64_t Meta,
                          uint64_t Arg) {
    LockEvent E;
    E.TimeNanos = Time;
    E.ObjectAddr = Addr;
    E.Arg = Arg;
    E.Kind = static_cast<EventKind>(Meta >> 56);
    E.ThreadIndex = static_cast<uint16_t>(Meta >> 40);
    E.ClassIndex = static_cast<uint32_t>((Meta >> 16) & 0xFFFFFFu);
    E.Extra = static_cast<uint16_t>(Meta);
    return E;
  }
};

/// The process-global tracing mode flag.  Off by default; flipped by
/// setTracing().  Sites read it with one relaxed load.
extern std::atomic<uint32_t> TracingMode;

/// \returns true while lock-event tracing is enabled.  This is the only
/// cost an event site pays when tracing is off.
TL_ALWAYS_INLINE bool tracingEnabled() {
  return TL_UNLIKELY(TracingMode.load(std::memory_order_relaxed) != 0);
}

/// Enables or disables lock-event tracing process-wide.  Toggling is
/// safe at any time; events racing the flip are either recorded or not,
/// both of which are valid traces.
void setTracing(bool Enabled);

/// \returns a monotonic nanosecond timestamp (steady_clock based — the
/// same clock every deadline in the library uses).
inline uint64_t monotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace obs
} // namespace thinlocks

#endif // THINLOCKS_OBS_LOCKEVENTS_H

//===- obs/LockEventCollector.cpp - Ring drain + hot-lock profiler --------===//

#include "obs/LockEventCollector.h"

#include "heap/ClassInfo.h"
#include "obs/EventRing.h"
#include "support/TableFormatter.h"
#include "threads/ThreadRegistry.h"

#include <algorithm>
#include <cstdio>

using namespace thinlocks;
using namespace thinlocks::obs;

LockEventCollector::LockEventCollector(ThreadRegistry &Registry,
                                       size_t MaxRetainedEvents)
    : Registry(Registry), MaxRetainedEvents(MaxRetainedEvents) {}

size_t LockEventCollector::drain() {
  LockGuard G(Mu);
  size_t Consumed = 0;
  uint64_t RingDropTotal = 0;
  // Buffer the events and fold after the walk: the thread-safety
  // analysis cannot see through the std::function boundary of
  // forEachEventRing that Mu is held, and fold() requires it.
  std::vector<LockEvent> Batch;
  Registry.forEachEventRing([&](EventRing &Ring) {
    Consumed += Ring.drain([&](const LockEvent &E) { Batch.push_back(E); });
    // This collector is the rings' only drainer, so the cumulative
    // per-ring drop counts sum to the process-wide total.
    RingDropTotal += Ring.droppedEvents();
  });
  for (const LockEvent &E : Batch)
    fold(E);
  RingDrops = RingDropTotal;
  return Consumed;
}

void LockEventCollector::fold(const LockEvent &E) {
  ++FoldedEvents;
  if (Retained.size() < MaxRetainedEvents)
    Retained.push_back(E);
  else
    ++RetentionDrops;

  // Policy decisions annotate the timeline but carry no per-object cost,
  // and class-level ones use ObjectAddr 0 — folding them would mint a
  // phantom profile row at address zero for the engine to chase.
  if (E.Kind == EventKind::PolicyDecision || E.ObjectAddr == 0)
    return;

  HotLockEntry &Entry = Profile[E.ObjectAddr];
  HotClassEntry &Rollup = ClassProfile[E.ClassIndex];
  Rollup.ClassIndex = E.ClassIndex;
  // Count distinct objects per class: a fresh profile entry is one, and
  // so is an existing address re-recorded under a new class (the
  // allocator recycled it — the new incarnation is a new object, and
  // the old class keeps the history the old incarnation caused).
  if (Entry.ObjectAddr == 0 || Entry.ClassIndex != E.ClassIndex)
    ++Rollup.Objects;
  Entry.ObjectAddr = E.ObjectAddr;
  Entry.ClassIndex = E.ClassIndex;
  switch (E.Kind) {
  case EventKind::ContendedAcquire:
    ++Entry.ContendedAcquires;
    Entry.BlockedNanos += E.Arg;
    Entry.MaxQueueDepth = std::max<uint64_t>(Entry.MaxQueueDepth, E.Extra);
    ++Rollup.ContendedAcquires;
    Rollup.BlockedNanos += E.Arg;
    Rollup.MaxQueueDepth = std::max<uint64_t>(Rollup.MaxQueueDepth, E.Extra);
    break;
  case EventKind::Inflate:
    ++Entry.Inflations;
    ++Rollup.Inflations;
    break;
  case EventKind::Deflate:
    ++Entry.Deflations;
    ++Rollup.Deflations;
    break;
  case EventKind::Park:
    ++Entry.Parks;
    Entry.BlockedNanos += E.Arg;
    ++Rollup.Parks;
    Rollup.BlockedNanos += E.Arg;
    break;
  case EventKind::Wait:
    ++Entry.Waits;
    ++Rollup.Waits;
    break;
  case EventKind::Notify:
  case EventKind::NotifyAll:
    ++Entry.Notifies;
    ++Rollup.Notifies;
    break;
  case EventKind::Wake:
  case EventKind::Deadlock:
  case EventKind::PolicyDecision:
  case EventKind::None:
    break;
  }
}

std::vector<LockEvent> LockEventCollector::events() const {
  LockGuard G(Mu);
  return Retained;
}

uint64_t LockEventCollector::totalEvents() const {
  LockGuard G(Mu);
  return FoldedEvents;
}

uint64_t LockEventCollector::droppedEvents() const {
  LockGuard G(Mu);
  return RingDrops + RetentionDrops;
}

std::vector<HotLockEntry> LockEventCollector::topLocks(size_t N) const {
  LockGuard G(Mu);
  std::vector<HotLockEntry> All;
  All.reserve(Profile.size());
  for (const auto &KV : Profile)
    All.push_back(KV.second);
  std::sort(All.begin(), All.end(),
            [](const HotLockEntry &A, const HotLockEntry &B) {
              if (A.BlockedNanos != B.BlockedNanos)
                return A.BlockedNanos > B.BlockedNanos;
              if (A.ContendedAcquires != B.ContendedAcquires)
                return A.ContendedAcquires > B.ContendedAcquires;
              if (A.Inflations != B.Inflations)
                return A.Inflations > B.Inflations;
              return A.ObjectAddr < B.ObjectAddr;
            });
  if (All.size() > N)
    All.resize(N);
  return All;
}

std::vector<HotClassEntry> LockEventCollector::topClasses(size_t N) const {
  LockGuard G(Mu);
  std::vector<HotClassEntry> All;
  All.reserve(ClassProfile.size());
  for (const auto &KV : ClassProfile)
    All.push_back(KV.second);
  std::sort(All.begin(), All.end(),
            [](const HotClassEntry &A, const HotClassEntry &B) {
              if (A.BlockedNanos != B.BlockedNanos)
                return A.BlockedNanos > B.BlockedNanos;
              if (A.ContendedAcquires != B.ContendedAcquires)
                return A.ContendedAcquires > B.ContendedAcquires;
              if (A.Inflations != B.Inflations)
                return A.Inflations > B.Inflations;
              return A.ClassIndex < B.ClassIndex;
            });
  if (All.size() > N)
    All.resize(N);
  return All;
}

std::string
LockEventCollector::formatTopLocks(size_t N,
                                   const ClassRegistry *Classes) const {
  std::vector<HotLockEntry> Top = topLocks(N);
  TableFormatter Table({"object", "class", "contended", "inflations",
                        "parks", "waits", "blocked_us", "max_queue"});
  for (const HotLockEntry &E : Top) {
    char Addr[32];
    std::snprintf(Addr, sizeof(Addr), "0x%llx",
                  static_cast<unsigned long long>(E.ObjectAddr));
    std::string ClassName;
    if (Classes)
      ClassName = Classes->classAt(E.ClassIndex).Name;
    else
      ClassName = "#" + std::to_string(E.ClassIndex);
    Table.addRow({Addr, ClassName,
                  TableFormatter::formatWithCommas(E.ContendedAcquires),
                  TableFormatter::formatWithCommas(E.Inflations),
                  TableFormatter::formatWithCommas(E.Parks),
                  TableFormatter::formatWithCommas(E.Waits),
                  TableFormatter::formatWithCommas(E.BlockedNanos / 1000),
                  TableFormatter::formatWithCommas(E.MaxQueueDepth)});
  }
  return Table.render();
}

void LockEventCollector::reset() {
  LockGuard G(Mu);
  Retained.clear();
  Profile.clear();
  ClassProfile.clear();
  FoldedEvents = 0;
  RetentionDrops = 0;
}

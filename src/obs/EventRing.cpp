//===- obs/EventRing.cpp - Per-thread lock-event ring buffer --------------===//

#include "obs/EventRing.h"

#include <cassert>

using namespace thinlocks;
using namespace thinlocks::obs;

std::atomic<uint32_t> thinlocks::obs::TracingMode{0};

void thinlocks::obs::setTracing(bool Enabled) {
  TracingMode.store(Enabled ? 1 : 0, std::memory_order_relaxed);
}

const char *thinlocks::obs::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::None:
    return "none";
  case EventKind::ContendedAcquire:
    return "contended-acquire";
  case EventKind::Inflate:
    return "inflate";
  case EventKind::Deflate:
    return "deflate";
  case EventKind::Park:
    return "park";
  case EventKind::Wake:
    return "wake";
  case EventKind::Wait:
    return "wait";
  case EventKind::Notify:
    return "notify";
  case EventKind::NotifyAll:
    return "notify-all";
  case EventKind::Deadlock:
    return "deadlock";
  case EventKind::PolicyDecision:
    return "policy-decision";
  }
  return "unknown";
}

const char *thinlocks::obs::inflateCauseName(InflateCause Cause) {
  switch (Cause) {
  case InflateCause::Contention:
    return "contention";
  case InflateCause::Overflow:
    return "overflow";
  case InflateCause::Wait:
    return "wait";
  case InflateCause::Emergency:
    return "emergency";
  case InflateCause::Hint:
    return "hint";
  }
  return "unknown";
}

EventRing::EventRing(size_t Capacity) : Cap(Capacity), Mask(Capacity - 1) {
  assert(Capacity != 0 && (Capacity & (Capacity - 1)) == 0 &&
         "ring capacity must be a power of two");
}

EventRing::~EventRing() { delete[] Slots.load(std::memory_order_relaxed); }

EventRing::Slot *EventRing::allocateSlots() {
  Slot *Fresh = new Slot[Cap];
  Slots.store(Fresh, std::memory_order_release);
  return Fresh;
}

void EventRing::record(uint64_t Time, uint64_t Addr, uint64_t Meta,
                       uint64_t Arg) {
  Slot *S = Slots.load(std::memory_order_relaxed);
  if (TL_UNLIKELY(S == nullptr))
    S = allocateSlots();
  uint64_t H = Head.load(std::memory_order_relaxed);
  Slot &Out = S[H & Mask];
  Out.Time.store(Time, std::memory_order_relaxed);
  Out.Addr.store(Addr, std::memory_order_relaxed);
  Out.Meta.store(Meta, std::memory_order_relaxed);
  Out.Arg.store(Arg, std::memory_order_relaxed);
  // The release bump publishes the slot words to an acquiring drain.
  Head.store(H + 1, std::memory_order_release);
}

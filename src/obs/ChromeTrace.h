//===- obs/ChromeTrace.h - trace_event JSON exporter -----------*- C++ -*-===//
///
/// \file
/// Exports a drained lock-event timeline in the Chrome `trace_event`
/// JSON format (the `{"traceEvents":[...]}` object form), loadable in
/// chrome://tracing / Perfetto.  Each thread index becomes one timeline
/// lane (`tid`); blocking events — contended acquires, lot parks,
/// Object.wait() — render as complete ("X") duration events spanning
/// block-to-resume, and the point events — inflate, deflate, notify,
/// wake, deadlock — as instants ("i"), all with the object address and
/// class in `args` so lanes can be correlated by lock.
///
/// A minimal validating parser rides along: validateChromeTraceJson()
/// checks both JSON well-formedness and the trace_event schema (the
/// fields chrome://tracing actually requires), so tests and CI can
/// assert an emitted artifact will load without needing a browser or a
/// Python dependency.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_OBS_CHROMETRACE_H
#define THINLOCKS_OBS_CHROMETRACE_H

#include "obs/LockEvents.h"

#include <string>
#include <vector>

namespace thinlocks {

class ClassRegistry;

namespace obs {

/// Renders \p Events as a Chrome trace_event JSON document.  Timestamps
/// are rebased to the earliest event start so the viewer opens at t=0.
/// When \p Classes is non-null, class names are included in event args.
std::string toChromeTraceJson(const std::vector<LockEvent> &Events,
                              const ClassRegistry *Classes = nullptr);

/// Validates that \p Json is well-formed JSON *and* matches the
/// trace_event object-format schema: a top-level object whose
/// "traceEvents" member is an array of objects, each carrying a string
/// "name", a one-character string "ph", numeric "ts"/"pid"/"tid", and —
/// for complete ("X") events — a non-negative numeric "dur".
/// \returns true on success; on failure fills \p Error (when non-null)
/// with a description of the first problem.
bool validateChromeTraceJson(const std::string &Json,
                             std::string *Error = nullptr);

} // namespace obs
} // namespace thinlocks

#endif // THINLOCKS_OBS_CHROMETRACE_H

//===- obs/ChromeTrace.h - trace_event JSON exporter -----------*- C++ -*-===//
///
/// \file
/// Exports a drained lock-event timeline in the Chrome `trace_event`
/// JSON format (the `{"traceEvents":[...]}` object form), loadable in
/// chrome://tracing / Perfetto.  Each thread index becomes one timeline
/// lane (`tid`); blocking events — contended acquires, lot parks,
/// Object.wait() — render as complete ("X") duration events spanning
/// block-to-resume, and the point events — inflate, deflate, notify,
/// wake, deadlock — as instants ("i"), all with the object address and
/// class in `args` so lanes can be correlated by lock.
///
/// A minimal validating parser rides along: validateChromeTraceJson()
/// checks both JSON well-formedness and the trace_event schema (the
/// fields chrome://tracing actually requires), so tests and CI can
/// assert an emitted artifact will load without needing a browser or a
/// Python dependency.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_OBS_CHROMETRACE_H
#define THINLOCKS_OBS_CHROMETRACE_H

#include "obs/LockEvents.h"

#include <string>
#include <utility>
#include <vector>

namespace thinlocks {

class ClassRegistry;

namespace obs {

/// A caller-defined duration lane entry rendered alongside the lock
/// events — the soak harness uses these to overlay its worst sessions on
/// the lock timeline so "why was this session slow" is one trace load.
/// Rendered as a complete ("X") event in category "session".
struct TraceSpan {
  std::string Name;       ///< Display name ("session#1234").
  uint32_t Tid = 0;       ///< Timeline lane (worker's thread index).
  uint64_t StartNanos = 0;
  uint64_t EndNanos = 0;  ///< Must be >= StartNanos.
  /// Extra key/value pairs for the span's args.  Values are emitted as
  /// JSON strings (escaped).
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Renders \p Events as a Chrome trace_event JSON document.  Timestamps
/// are rebased to the earliest event start so the viewer opens at t=0.
/// When \p Classes is non-null, class names are included in event args.
std::string toChromeTraceJson(const std::vector<LockEvent> &Events,
                              const ClassRegistry *Classes = nullptr);

/// Like the two-argument overload, but additionally renders \p Spans as
/// "X" duration events (category "session") on the same rebased
/// timeline.  The rebase origin is the minimum over event starts *and*
/// span starts, so spans and the lock events they contain line up.
std::string toChromeTraceJson(const std::vector<LockEvent> &Events,
                              const std::vector<TraceSpan> &Spans,
                              const ClassRegistry *Classes);

/// Validates that \p Json is well-formed JSON *and* matches the
/// trace_event object-format schema: a top-level object whose
/// "traceEvents" member is an array of objects, each carrying a string
/// "name", a one-character string "ph", numeric "ts"/"pid"/"tid", and —
/// for complete ("X") events — a non-negative numeric "dur".
/// \returns true on success; on failure fills \p Error (when non-null)
/// with a description of the first problem.
bool validateChromeTraceJson(const std::string &Json,
                             std::string *Error = nullptr);

} // namespace obs
} // namespace thinlocks

#endif // THINLOCKS_OBS_CHROMETRACE_H

//===- obs/EventRing.h - Per-thread lock-event ring buffer -----*- C++ -*-===//
///
/// \file
/// A fixed-size single-writer ring of packed lock events.  Exactly one
/// ring exists per thread index, embedded in the registry's ThreadInfo
/// next to the thread's Parker and recycled the same way: the storage
/// outlives the thread, so a collector can drain events from threads
/// that have already detached, and a fresh thread attaching on a
/// recycled index simply keeps appending to the same ring (every event
/// carries its own thread index, so attribution stays exact).
///
/// Concurrency contract:
///  - record() is owner-thread-only: the attached thread whose index the
///    ring currently serves.  It is wait-free — four relaxed stores and
///    one release bump; an overrun silently overwrites the oldest slot.
///  - drain() may run on any *single* collector thread at a time (the
///    LockEventCollector serializes itself).  It reads slots between its
///    private cursor and the released head, then re-checks the head: any
///    slot the writer may have lapped during the read is discarded and
///    counted as dropped rather than surfaced torn.
///
/// Storage is allocated lazily on the first record, so the registry's
/// preallocated ThreadInfo pool does not pay ~128 KiB per slot while
/// tracing has never been on.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_OBS_EVENTRING_H
#define THINLOCKS_OBS_EVENTRING_H

#include "obs/LockEvents.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace thinlocks {
namespace obs {

class EventRing {
public:
  /// Slots per ring (power of two).  At 32 bytes per slot a full ring is
  /// 128 KiB — roomy enough that a millisecond-scale drain cadence keeps
  /// up with contention-bound event rates.
  static constexpr size_t DefaultCapacity = 4096;

  /// \param Capacity must be a power of two (tests shrink it to force
  /// wraparound quickly).
  explicit EventRing(size_t Capacity = DefaultCapacity);
  ~EventRing();

  EventRing(const EventRing &) = delete;
  EventRing &operator=(const EventRing &) = delete;

  /// Appends one packed event.  Owner-thread only; never blocks.
  void record(uint64_t Time, uint64_t Addr, uint64_t Meta, uint64_t Arg);

  /// Convenience: pack and append.
  void record(const LockEvent &E) {
    record(E.TimeNanos, E.ObjectAddr,
           LockEvent::packMeta(E.Kind, E.ThreadIndex, E.ClassIndex, E.Extra),
           E.Arg);
  }

  /// Drains every event recorded since the previous drain into \p Sink
  /// (called as Sink(const LockEvent &)).  Single-collector only.
  /// \returns the number of events delivered.
  template <typename SinkFn> size_t drain(SinkFn &&Sink) {
    Slot *S = Slots.load(std::memory_order_acquire);
    if (!S)
      return 0;
    uint64_t H = Head.load(std::memory_order_acquire);
    uint64_t From = ReadCursor;
    // Already lapped before we started: everything older than one full
    // ring is gone.
    if (H - From > Cap) {
      DroppedCount += (H - Cap) - From;
      From = H - Cap;
    }
    size_t Delivered = 0;
    for (uint64_t Seq = From; Seq != H; ++Seq) {
      const Slot &In = S[Seq & Mask];
      uint64_t Time = In.Time.load(std::memory_order_relaxed);
      uint64_t Addr = In.Addr.load(std::memory_order_relaxed);
      uint64_t Meta = In.Meta.load(std::memory_order_relaxed);
      uint64_t Arg = In.Arg.load(std::memory_order_relaxed);
      // Re-check after the reads: if the writer has lapped this slot in
      // the meantime the words may be torn — discard, don't surface.
      uint64_t Fresh = Head.load(std::memory_order_acquire);
      if (Fresh - Seq > Cap) {
        ++DroppedCount;
        continue;
      }
      Sink(LockEvent::unpack(Time, Addr, Meta, Arg));
      ++Delivered;
    }
    ReadCursor = H;
    return Delivered;
  }

  /// \returns how many events the collector could not deliver because
  /// the writer lapped them (cumulative; collector-thread only).
  uint64_t droppedEvents() const { return DroppedCount; }

  /// \returns how many events have ever been recorded (racy snapshot).
  uint64_t recordedEvents() const {
    return Head.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return Cap; }

private:
  /// One packed event; four individually-atomic words so the collector's
  /// racy reads of a lapped slot are data-race-free (and then discarded).
  struct Slot {
    std::atomic<uint64_t> Time{0};
    std::atomic<uint64_t> Addr{0};
    std::atomic<uint64_t> Meta{0};
    std::atomic<uint64_t> Arg{0};
  };

  Slot *allocateSlots();

  const size_t Cap;
  const uint64_t Mask;
  /// Lazily allocated by the first record(); release-published so a
  /// draining collector acquires fully-constructed slots.
  std::atomic<Slot *> Slots{nullptr};
  /// Next sequence number to write; release-bumped after the slot words.
  std::atomic<uint64_t> Head{0};
  /// Collector-private resume point (guarded by the collector's own
  /// serialization, not by this class).
  uint64_t ReadCursor = 0;
  uint64_t DroppedCount = 0;
};

} // namespace obs
} // namespace thinlocks

#endif // THINLOCKS_OBS_EVENTRING_H

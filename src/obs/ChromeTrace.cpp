//===- obs/ChromeTrace.cpp - trace_event JSON exporter --------------------===//

#include "obs/ChromeTrace.h"

#include "heap/ClassInfo.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <memory>

using namespace thinlocks;
using namespace thinlocks::obs;

namespace {

/// Escapes \p In for a JSON string literal.
std::string jsonEscape(const std::string &In) {
  std::string Out;
  Out.reserve(In.size() + 2);
  for (char C : In) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Microseconds with sub-microsecond precision, as trace_event wants.
std::string microsOf(uint64_t Nanos) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03llu",
                static_cast<unsigned long long>(Nanos / 1000),
                static_cast<unsigned long long>(Nanos % 1000));
  return Buf;
}

/// \returns the start timestamp of \p E: duration events start Arg
/// nanoseconds before their (end-stamped) record time.
uint64_t startNanosOf(const LockEvent &E) {
  switch (E.Kind) {
  case EventKind::ContendedAcquire:
  case EventKind::Park:
  case EventKind::Wait:
  case EventKind::Wake:
    return E.Arg <= E.TimeNanos ? E.TimeNanos - E.Arg : 0;
  default:
    return E.TimeNanos;
  }
}

bool isDurationKind(EventKind Kind) {
  switch (Kind) {
  case EventKind::ContendedAcquire:
  case EventKind::Park:
  case EventKind::Wait:
  case EventKind::Wake:
    return true;
  default:
    return false;
  }
}

} // namespace

std::string obs::toChromeTraceJson(const std::vector<LockEvent> &Events,
                                   const ClassRegistry *Classes) {
  return toChromeTraceJson(Events, std::vector<TraceSpan>(), Classes);
}

std::string obs::toChromeTraceJson(const std::vector<LockEvent> &Events,
                                   const std::vector<TraceSpan> &Spans,
                                   const ClassRegistry *Classes) {
  // Rebase to the earliest start so the viewer timeline begins at 0.
  uint64_t Base = UINT64_MAX;
  for (const LockEvent &E : Events)
    Base = std::min(Base, startNanosOf(E));
  for (const TraceSpan &S : Spans)
    Base = std::min(Base, S.StartNanos);
  if (Base == UINT64_MAX)
    Base = 0;

  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  for (const LockEvent &E : Events) {
    if (E.Kind == EventKind::None)
      continue;
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"name\":\"";
    Out += eventKindName(E.Kind);
    Out += "\",\"cat\":\"lock\",\"ph\":\"";
    Out += isDurationKind(E.Kind) ? "X" : "i";
    Out += "\",\"ts\":";
    Out += microsOf(startNanosOf(E) - Base);
    if (isDurationKind(E.Kind)) {
      Out += ",\"dur\":";
      Out += microsOf(E.Arg);
    } else {
      Out += ",\"s\":\"t\"";
    }
    Out += ",\"pid\":1,\"tid\":";
    Out += std::to_string(E.ThreadIndex);
    char Addr[32];
    std::snprintf(Addr, sizeof(Addr), "0x%llx",
                  static_cast<unsigned long long>(E.ObjectAddr));
    Out += ",\"args\":{\"obj\":\"";
    Out += Addr;
    Out += "\",\"class\":";
    if (Classes) {
      Out += "\"";
      Out += jsonEscape(Classes->classAt(E.ClassIndex).Name);
      Out += "\"";
    } else {
      Out += std::to_string(E.ClassIndex);
    }
    if (E.Kind == EventKind::Inflate) {
      Out += ",\"cause\":\"";
      Out += inflateCauseName(static_cast<InflateCause>(E.Arg));
      Out += "\"";
    }
    if (E.Kind == EventKind::ContendedAcquire) {
      Out += ",\"queue\":";
      Out += std::to_string(E.Extra);
    }
    Out += "}}";
  }
  for (const TraceSpan &S : Spans) {
    if (!First)
      Out += ",";
    First = false;
    uint64_t End = std::max(S.EndNanos, S.StartNanos);
    Out += "{\"name\":\"";
    Out += jsonEscape(S.Name);
    Out += "\",\"cat\":\"session\",\"ph\":\"X\",\"ts\":";
    Out += microsOf(S.StartNanos - Base);
    Out += ",\"dur\":";
    Out += microsOf(End - S.StartNanos);
    Out += ",\"pid\":1,\"tid\":";
    Out += std::to_string(S.Tid);
    Out += ",\"args\":{";
    bool FirstArg = true;
    for (const auto &Arg : S.Args) {
      if (!FirstArg)
        Out += ",";
      FirstArg = false;
      Out += "\"";
      Out += jsonEscape(Arg.first);
      Out += "\":\"";
      Out += jsonEscape(Arg.second);
      Out += "\"";
    }
    Out += "}}";
  }
  Out += "]}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Minimal validating JSON parser (no dependencies).
//===----------------------------------------------------------------------===//

namespace {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type Kind = Type::Null;
  double Number = 0;
  std::string Str;
  std::shared_ptr<JsonArray> Array;
  std::shared_ptr<JsonObject> Object;

  bool isString() const { return Kind == Type::String; }
  bool isNumber() const { return Kind == Type::Number; }
};

/// Recursive-descent parser over the whole input; fails on trailing
/// garbage.  Depth-limited so a hostile input cannot smash the stack.
class JsonParser {
public:
  JsonParser(const std::string &In, std::string *Error)
      : In(In), Error(Error) {}

  bool parse(JsonValue &Out) {
    if (!parseValue(Out, 0))
      return false;
    skipSpace();
    if (Pos != In.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  bool fail(const std::string &Message) {
    if (Error && Error->empty())
      *Error = Message + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < In.size() &&
           (In[Pos] == ' ' || In[Pos] == '\t' || In[Pos] == '\n' ||
            In[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos >= In.size() || In[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipSpace();
    if (Pos >= In.size())
      return fail("unexpected end of input");
    char C = In[Pos];
    if (C == '{')
      return parseObject(Out, Depth);
    if (C == '[')
      return parseArray(Out, Depth);
    if (C == '"') {
      Out.Kind = JsonValue::Type::String;
      return parseString(Out.Str);
    }
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber(Out);
    if (In.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      Out.Kind = JsonValue::Type::Bool;
      Out.Number = 1;
      return true;
    }
    if (In.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      Out.Kind = JsonValue::Type::Bool;
      return true;
    }
    if (In.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      Out.Kind = JsonValue::Type::Null;
      return true;
    }
    return fail("unexpected character");
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return fail("expected '\"'");
    while (Pos < In.size()) {
      char C = In[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= In.size())
        return fail("unterminated escape");
      char E = In[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > In.size())
          return fail("truncated \\u escape");
        for (unsigned I = 0; I < 4; ++I)
          if (!std::isxdigit(static_cast<unsigned char>(In[Pos + I])))
            return fail("bad \\u escape");
        // Validation only: the decoded code point is not needed.
        Out += '?';
        Pos += 4;
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < In.size() && In[Pos] == '-')
      ++Pos;
    while (Pos < In.size() &&
           (std::isdigit(static_cast<unsigned char>(In[Pos])) ||
            In[Pos] == '.' || In[Pos] == 'e' || In[Pos] == 'E' ||
            In[Pos] == '+' || In[Pos] == '-'))
      ++Pos;
    char *End = nullptr;
    std::string Text = In.substr(Start, Pos - Start);
    double Value = std::strtod(Text.c_str(), &End);
    if (End == Text.c_str() || *End != '\0')
      return fail("malformed number");
    Out.Kind = JsonValue::Type::Number;
    Out.Number = Value;
    return true;
  }

  bool parseArray(JsonValue &Out, unsigned Depth) {
    consume('[');
    Out.Kind = JsonValue::Type::Array;
    Out.Array = std::make_shared<JsonArray>();
    skipSpace();
    if (consume(']'))
      return true;
    for (;;) {
      JsonValue Element;
      if (!parseValue(Element, Depth + 1))
        return false;
      Out.Array->push_back(std::move(Element));
      if (consume(']'))
        return true;
      if (!consume(','))
        return fail("expected ',' or ']' in array");
    }
  }

  bool parseObject(JsonValue &Out, unsigned Depth) {
    consume('{');
    Out.Kind = JsonValue::Type::Object;
    Out.Object = std::make_shared<JsonObject>();
    skipSpace();
    if (consume('}'))
      return true;
    for (;;) {
      skipSpace();
      std::string Key;
      if (!parseString(Key))
        return false;
      if (!consume(':'))
        return fail("expected ':' in object");
      JsonValue Value;
      if (!parseValue(Value, Depth + 1))
        return false;
      (*Out.Object)[Key] = std::move(Value);
      if (consume('}'))
        return true;
      if (!consume(','))
        return fail("expected ',' or '}' in object");
    }
  }

  const std::string &In;
  std::string *Error;
  size_t Pos = 0;
};

bool schemaFail(std::string *Error, const std::string &Message) {
  if (Error && Error->empty())
    *Error = Message;
  return false;
}

} // namespace

bool obs::validateChromeTraceJson(const std::string &Json,
                                  std::string *Error) {
  if (Error)
    Error->clear();
  JsonValue Root;
  JsonParser Parser(Json, Error);
  if (!Parser.parse(Root))
    return false;
  if (Root.Kind != JsonValue::Type::Object)
    return schemaFail(Error, "top level is not an object");
  auto Events = Root.Object->find("traceEvents");
  if (Events == Root.Object->end())
    return schemaFail(Error, "missing \"traceEvents\"");
  if (Events->second.Kind != JsonValue::Type::Array)
    return schemaFail(Error, "\"traceEvents\" is not an array");
  size_t Index = 0;
  for (const JsonValue &E : *Events->second.Array) {
    std::string Where = "traceEvents[" + std::to_string(Index++) + "]";
    if (E.Kind != JsonValue::Type::Object)
      return schemaFail(Error, Where + " is not an object");
    const JsonObject &Obj = *E.Object;
    auto Need = [&](const char *Key) -> const JsonValue * {
      auto It = Obj.find(Key);
      return It == Obj.end() ? nullptr : &It->second;
    };
    const JsonValue *Name = Need("name");
    if (!Name || !Name->isString())
      return schemaFail(Error, Where + " lacks a string \"name\"");
    const JsonValue *Ph = Need("ph");
    if (!Ph || !Ph->isString() || Ph->Str.size() != 1)
      return schemaFail(Error,
                        Where + " lacks a one-character string \"ph\"");
    for (const char *Key : {"ts", "pid", "tid"}) {
      const JsonValue *V = Need(Key);
      if (!V || !V->isNumber())
        return schemaFail(Error, Where + " lacks a numeric \"" +
                                     std::string(Key) + "\"");
    }
    if (Ph->Str == "X") {
      const JsonValue *Dur = Need("dur");
      if (!Dur || !Dur->isNumber() || Dur->Number < 0)
        return schemaFail(Error,
                          Where + " (\"X\") lacks a non-negative \"dur\"");
    }
  }
  return true;
}

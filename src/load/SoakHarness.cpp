//===- load/SoakHarness.cpp - Open-loop sustained-load harness ------------===//

#include "load/SoakHarness.h"

#include "core/ProtocolRegistry.h"
#include "heap/Heap.h"
#include "obs/LockEventCollector.h"
#include "support/FailPoint.h"
#include "support/Fatal.h"
#include "support/Timer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <thread>

using namespace thinlocks;
using namespace thinlocks::load;

std::vector<ChaosPhase> load::buildChaosSchedule(uint64_t Seed) {
  // A fixed phase template with seeded window jitter: the same seed
  // always yields the same schedule (the reproducibility contract), a
  // different seed shifts which failure overlaps which.  Every phase
  // ends by 80% of the run so the tail proves recovery.
  SplitMix64 Rng(Seed);
  auto Jittered = [&Rng](double Base) {
    double Value = Base + (Rng.nextDouble() - 0.5) * 0.06;
    return std::min(0.80, std::max(0.05, Value));
  };
  auto Phase = [&](double Start, double End, failpoint::Id Point,
                   failpoint::Mode Mode, uint64_t Arg) {
    ChaosPhase P;
    P.StartFraction = Jittered(Start);
    P.EndFraction = std::max(Jittered(End), P.StartFraction + 0.02);
    P.PointId = static_cast<unsigned>(Point);
    P.Mode = static_cast<unsigned>(Mode);
    P.Arg = Arg;
    return P;
  };
  return {
      Phase(0.10, 0.28, failpoint::Id::ThreadRegistryExhausted,
            failpoint::Mode::Always, 0),
      Phase(0.30, 0.50, failpoint::Id::MonitorTableExhausted,
            failpoint::Mode::Always, 0),
      Phase(0.20, 0.45, failpoint::Id::ThinLockInflateRace,
            failpoint::Mode::OneIn, 6),
      Phase(0.35, 0.55, failpoint::Id::ParkSpurious,
            failpoint::Mode::OneIn, 4),
      Phase(0.40, 0.60, failpoint::Id::ParkingLotTimeoutRace,
            failpoint::Mode::OneIn, 4),
  };
}

namespace {

/// One admitted-or-deferred arrival.
struct Arrival {
  uint64_t Id = 0;
  uint64_t ArrivalNanos = 0; ///< Open-loop (scheduled) arrival stamp.
  bool Heavy = false;
  bool Degraded = false;
};

/// Results a worker accumulates privately; merged after join.
struct WorkerState {
  LatencyHistogram Acquire;
  LatencyHistogram Session;
  std::vector<obs::SessionSpanInfo> Sessions;
  uint64_t Requests = 0;
  uint64_t Completed = 0;
  uint64_t DegradedRuns = 0;
  uint64_t AttachFallbacks = 0;
};

/// Builds the configured protocol (and its substrate) or dies loudly: a
/// typo'd protocol name is a configuration error, not a degraded run.
std::unique_ptr<ProtocolHandle> makeProtocol(const SoakConfig &Config,
                                             LockStats &Stats) {
  ProtocolConfig PC;
  PC.MonitorCapacity = Config.MonitorCapacity;
  PC.DeflateWhenQuiescent = Config.DeflateWhenQuiescent;
  PC.Stats = &Stats;
  std::unique_ptr<ProtocolHandle> Handle =
      createProtocol(Config.Protocol, PC);
  if (!Handle)
    fatalError("soak: unknown protocol '%s' (see core/ProtocolRegistry.h "
               "for the registered names)",
               Config.Protocol.c_str());
  return Handle;
}

class SoakRun {
public:
  explicit SoakRun(const SoakConfig &Config)
      : Config(Config),
        Registry(Config.RegistryCapacity != 0
                     ? Config.RegistryCapacity
                     : ThreadRegistry::MaxThreadIndex),
        Protocol(makeProtocol(Config, Stats)),
        Monitors(Protocol->monitorTable()), Thin(Protocol->thinLocks()),
        Workload(Protocol->sync(), TheHeap, Registry, Config.HotObjects,
                 Config.ZipfTheta, Config.Session),
        Collector(Registry), Controller(Config.Limits) {
    if (Config.Chaos && failpoint::compiledIn())
      Chaos = buildChaosSchedule(Config.ChaosSeed);
    ChaosArmed.assign(Chaos.size(), false);
    ChaosDone.assign(Chaos.size(), false);
    if (Config.AdaptivePolicy) {
      if (!Thin || !Monitors)
        fatalError("soak: AdaptivePolicy steers thin-lock header "
                   "policies; protocol '%s' has none",
                   Protocol->name());
      Engine = std::make_unique<policy::AdaptivePolicyEngine>(
          Collector, *Monitors, Config.Policy);
      Thin->setPolicyStore(&Engine->policyStore());
    }
  }

  SoakResult run();

private:
  void arrivalLoop();
  void workerLoop(unsigned Index);
  void tickerLoop();
  /// Routes one decided arrival.  Caller holds Mu.
  void dispatchLocked(const Arrival &A, AdmissionDecision Decision)
      TL_REQUIRES(Mu);
  void retryDeferredLocked() TL_REQUIRES(Mu);
  /// Arms/disarms chaos phases for run fraction \p Frac (ticker only).
  void updateChaos(double Frac);
  SoakResult finish(uint64_t RunNanos);

  const SoakConfig Config;
  ThreadRegistry Registry;
  LockStats Stats;
  /// Owns the protocol under load plus its substrate (type-erased).
  std::unique_ptr<ProtocolHandle> Protocol;
  /// Capability views into *Protocol; null when the protocol lacks the
  /// substrate (only ThinLock has a MonitorTable / policy store).
  MonitorTable *Monitors = nullptr;
  ThinLockManager *Thin = nullptr;
  Heap TheHeap;
  SessionWorkload Workload;
  obs::LockEventCollector Collector;
  AdmissionController Controller;
  /// Present only when Config.AdaptivePolicy; ticked by the ticker.
  std::unique_ptr<policy::AdaptivePolicyEngine> Engine;

  uint64_t T0 = 0;
  uint64_t DurationNanos = 0;
  /// Absolute time after which every chaos phase has ended (== T0 when
  /// chaos is off, so every admit counts as post-chaos).
  uint64_t ChaosOverNanos = 0;

  std::vector<ChaosPhase> Chaos;      // Ticker-only after construction.
  std::vector<bool> ChaosArmed;       // Ticker-only.
  std::vector<bool> ChaosDone;        // Ticker-only.
  uint64_t ChaosPhasesRun = 0;        // Ticker-only until join.

  mutable Mutex Mu;
  std::condition_variable_any QueueCv;
  std::deque<Arrival> Queue TL_GUARDED_BY(Mu);
  std::vector<Arrival> Deferred TL_GUARDED_BY(Mu);
  bool ArrivalsDone TL_GUARDED_BY(Mu) = false;
  bool Draining TL_GUARDED_BY(Mu) = false;
  uint64_t Offered TL_GUARDED_BY(Mu) = 0;
  uint64_t ShedCount TL_GUARDED_BY(Mu) = 0;
  uint64_t DeferredOnce TL_GUARDED_BY(Mu) = 0;
  uint64_t QueueOverflow TL_GUARDED_BY(Mu) = 0;
  uint64_t ShutdownShed TL_GUARDED_BY(Mu) = 0;
  uint64_t AdmitsAfterChaos TL_GUARDED_BY(Mu) = 0;
  std::vector<std::pair<uint64_t, DegradationLevel>>
      Timeline TL_GUARDED_BY(Mu);

  mutable Mutex TickMu;
  std::condition_variable_any TickCv;
  bool StopTicker TL_GUARDED_BY(TickMu) = false;

  std::vector<WorkerState> Workers; // Worker I owns slot I until join.
};

void SoakRun::dispatchLocked(const Arrival &A, AdmissionDecision Decision) {
  uint64_t Now = monotonicNanos();
  switch (Decision) {
  case AdmissionDecision::Admit:
  case AdmissionDecision::AdmitDegraded: {
    if (Queue.size() >= Config.QueueLimit) {
      // Backpressure of last resort: admission control lagged the
      // arrival process; shed rather than queue without bound.
      ++QueueOverflow;
      ++ShedCount;
      return;
    }
    Arrival Queued = A;
    Queued.Degraded = Decision == AdmissionDecision::AdmitDegraded;
    Queue.push_back(Queued);
    if (Now >= ChaosOverNanos)
      ++AdmitsAfterChaos;
    QueueCv.notify_one();
    return;
  }
  case AdmissionDecision::Defer:
    Deferred.push_back(A);
    return;
  case AdmissionDecision::Shed:
    ++ShedCount;
    return;
  }
}

void SoakRun::retryDeferredLocked() {
  if (Deferred.empty())
    return;
  std::vector<Arrival> Retry;
  Retry.swap(Deferred);
  for (const Arrival &A : Retry)
    dispatchLocked(A, Controller.admit(/*InflationHeavy=*/A.Heavy));
}

void SoakRun::arrivalLoop() {
  SplitMix64 Rng(Config.Seed);
  const double GapScale = 1e9 / Config.ArrivalsPerSecond;
  double ClockNanos = 0;
  uint64_t NextId = 1;
  for (;;) {
    // Open loop: exponential inter-arrival gaps on the *scheduled*
    // clock.  The schedule never waits for the system — a late harness
    // just fires the backlog immediately, which is exactly the overload
    // an open-loop generator must not hide.
    ClockNanos += -std::log(1.0 - Rng.nextDouble()) * GapScale;
    if (ClockNanos >= static_cast<double>(DurationNanos))
      break;
    uint64_t When = T0 + static_cast<uint64_t>(ClockNanos);
    uint64_t Now = monotonicNanos();
    if (When > Now)
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(When - Now));

    Arrival A;
    A.Id = NextId++;
    A.ArrivalNanos = When;
    A.Heavy = Rng.nextBool(Config.HeavyFraction);
    AdmissionDecision Decision = Controller.admit(A.Heavy);
    LockGuard Guard(Mu);
    ++Offered;
    if (Decision == AdmissionDecision::Defer)
      ++DeferredOnce;
    dispatchLocked(A, Decision);
  }
}

void SoakRun::workerLoop(unsigned Index) {
  ScopedThreadAttachment Attach(Registry,
                                "soak-worker-" + std::to_string(Index));
  WorkerState &W = Workers[Index];
  SplitMix64 Rng(Config.Seed ^ (0x9e3779b97f4a7c15ull * (Index + 1)));
  for (;;) {
    Arrival A;
    {
      UniqueLock Guard(Mu);
      while (Queue.empty() && !Draining)
        QueueCv.wait(Guard);
      if (Queue.empty())
        return; // Draining and nothing left.
      A = Queue.front();
      Queue.pop_front();
    }
    uint64_t Start = monotonicNanos();
    SessionOutcome Outcome = Workload.run(Attach.context(), Rng, A.Heavy,
                                          A.Degraded, W.Acquire);
    uint64_t End = monotonicNanos();
    W.Session.record(End >= A.ArrivalNanos ? End - A.ArrivalNanos : 0);
    obs::SessionSpanInfo Span;
    Span.SessionId = A.Id;
    Span.WorkerTid = Attach.context().index();
    Span.ArrivalNanos = A.ArrivalNanos;
    Span.StartNanos = Start;
    Span.EndNanos = End;
    Span.MaxAcquireNanos = Outcome.MaxAcquireNanos;
    Span.Heavy = A.Heavy;
    Span.Degraded = A.Degraded;
    W.Sessions.push_back(Span);
    W.Requests += Outcome.Requests;
    ++W.Completed;
    if (A.Degraded)
      ++W.DegradedRuns;
    if (Outcome.AttachFallback)
      ++W.AttachFallbacks;
  }
}

void SoakRun::updateChaos(double Frac) {
  for (size_t I = 0; I < Chaos.size(); ++I) {
    const ChaosPhase &P = Chaos[I];
    if (!ChaosArmed[I] && !ChaosDone[I] && Frac >= P.StartFraction &&
        Frac < P.EndFraction) {
      failpoint::arm(static_cast<failpoint::Id>(P.PointId),
                     static_cast<failpoint::Mode>(P.Mode), P.Arg);
      ChaosArmed[I] = true;
      ++ChaosPhasesRun;
    } else if (ChaosArmed[I] && Frac >= P.EndFraction) {
      failpoint::disarm(static_cast<failpoint::Id>(P.PointId));
      ChaosArmed[I] = false;
      ChaosDone[I] = true;
    }
  }
}

void SoakRun::tickerLoop() {
  // The adaptive engine records its decisions into the ticker's event
  // ring so they land in the same timeline as the contention they
  // answer; attach only when the engine exists, so non-adaptive runs
  // keep their registry occupancy (some chaos configs size it tightly).
  std::unique_ptr<ScopedThreadAttachment> Attach;
  if (Engine)
    Attach = std::make_unique<ScopedThreadAttachment>(Registry,
                                                      "soak-ticker");
  for (;;) {
    {
      UniqueLock Guard(TickMu);
      if (!StopTicker)
        TickCv.wait_for(Guard,
                        std::chrono::nanoseconds(Config.TickNanos));
      if (StopTicker)
        break;
    }
    uint64_t Now = monotonicNanos();
    bool Done;
    {
      LockGuard Guard(Mu);
      Done = ArrivalsDone;
    }
    double Frac =
        Done ? 1.0
             : std::min(1.0, static_cast<double>(Now - T0) /
                                 static_cast<double>(DurationNanos));
    updateChaos(Frac);

    PressureSignals Signals;
    // Monitor-table pressure is a thin-lock notion; protocols without
    // the substrate report permanent calm on those axes.
    Signals.MonitorOccupancy = Monitors ? Monitors->occupancy() : 0;
    Signals.RegistryOccupancy = Registry.occupancy();
    Signals.MonitorExhaustionEvents =
        Monitors ? Monitors->exhaustionEvents() : 0;
    Signals.RegistryExhaustionEvents = Registry.exhaustionEvents();
    Signals.EmergencyInflations = Stats.snapshot().EmergencyInflations;
    DegradationLevel Before = Controller.level();
    DegradationLevel After = Controller.tick(Signals);
    {
      LockGuard Guard(Mu);
      if (After != Before)
        Timeline.emplace_back(Now, After);
      // Retry deferred sessions once the ladder has backed off the
      // defer rung.
      if (static_cast<uint8_t>(After) <
          static_cast<uint8_t>(DegradationLevel::DeferInflation))
        retryDeferredLocked();
    }
    // Sampling drain: rings keep only their newest events once they
    // wrap, so the profile must be collected while the load runs.
    // (Engine->tick drains internally; keep the drain unconditional so
    // non-adaptive runs still sample.)
    if (Engine)
      Engine->tick(Attach && Attach->context().isValid()
                       ? &Attach->context()
                       : nullptr);
    else
      Collector.drain();
  }
}

SoakResult SoakRun::run() {
  DurationNanos =
      static_cast<uint64_t>(Config.DurationSeconds * 1e9);
  T0 = monotonicNanos();
  double MaxEndFraction = 0;
  for (const ChaosPhase &P : Chaos)
    MaxEndFraction = std::max(MaxEndFraction, P.EndFraction);
  ChaosOverNanos =
      T0 + static_cast<uint64_t>(MaxEndFraction *
                                 static_cast<double>(DurationNanos));

  obs::setTracing(true);
  Workers.resize(Config.Workers == 0 ? 1 : Config.Workers);
  std::vector<std::thread> WorkerThreads;
  WorkerThreads.reserve(Workers.size());
  for (unsigned I = 0; I < Workers.size(); ++I)
    WorkerThreads.emplace_back([this, I] { workerLoop(I); });
  std::thread Ticker([this] { tickerLoop(); });

  arrivalLoop();
  {
    LockGuard Guard(Mu);
    ArrivalsDone = true;
  }

  // Grace window: keep ticking (quiet signals now) so the ladder can
  // walk back to Normal and deferred sessions get their retry, then
  // shed whatever never got in.
  uint64_t GraceTicks =
      static_cast<uint64_t>(Config.Limits.RecoveryDwellTicks) *
          NumDegradationLevels +
      25;
  for (uint64_t I = 0; I < GraceTicks; ++I) {
    bool Settled;
    {
      LockGuard Guard(Mu);
      Settled = Deferred.empty() &&
                Controller.level() == DegradationLevel::Normal;
    }
    if (Settled)
      break;
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(Config.TickNanos));
  }
  {
    LockGuard Guard(Mu);
    ShutdownShed = Deferred.size();
    ShedCount += ShutdownShed;
    Deferred.clear();
    Draining = true;
  }
  QueueCv.notify_all();
  for (std::thread &T : WorkerThreads)
    T.join();
  {
    LockGuard Guard(TickMu);
    StopTicker = true;
  }
  TickCv.notify_all();
  Ticker.join();
  // A phase still armed (ultra-short runs) must not outlive the run.
  for (size_t I = 0; I < Chaos.size(); ++I)
    if (ChaosArmed[I])
      failpoint::disarm(static_cast<failpoint::Id>(Chaos[I].PointId));
  obs::setTracing(false);
  Collector.drain();
  return finish(monotonicNanos() - T0);
}

SoakResult SoakRun::finish(uint64_t RunNanos) {
  SoakResult Result;
  LatencyHistogram Acquire, Session, Wake;
  std::vector<obs::SessionSpanInfo> AllSessions;
  uint64_t Requests = 0, Completed = 0, DegradedRuns = 0,
           AttachFallbacks = 0;
  for (const WorkerState &W : Workers) {
    Acquire.merge(W.Acquire);
    Session.merge(W.Session);
    AllSessions.insert(AllSessions.end(), W.Sessions.begin(),
                       W.Sessions.end());
    Requests += W.Requests;
    Completed += W.Completed;
    DegradedRuns += W.DegradedRuns;
    AttachFallbacks += W.AttachFallbacks;
  }
  std::vector<obs::LockEvent> Events = Collector.events();
  for (const obs::LockEvent &E : Events)
    if (E.Kind == obs::EventKind::Wake)
      Wake.record(E.Arg);

  obs::SloSnapshot &Slo = Result.Slo;
  Slo.Protocol = Protocol->name();
  Slo.DurationSeconds = static_cast<double>(RunNanos) / 1e9;
  Slo.Acquire = obs::SloQuantiles::of(Acquire);
  Slo.Session = obs::SloQuantiles::of(Session);
  Slo.Wake = obs::SloQuantiles::of(Wake);
  {
    LockGuard Guard(Mu);
    Slo.SessionsOffered = Offered;
    Slo.SessionsShed = ShedCount;
    Slo.SessionsDeferred = DeferredOnce;
    Result.QueueOverflowShed = QueueOverflow;
    Result.ShutdownShed = ShutdownShed;
    Result.AdmitsAfterChaos = AdmitsAfterChaos;
    Result.LevelTimeline = Timeline;
  }
  Slo.SessionsCompleted = Completed;
  Slo.SessionsDegraded = DegradedRuns;
  Slo.RequestsCompleted = Requests;
  if (Slo.DurationSeconds > 0) {
    Slo.SessionsPerSecond =
        static_cast<double>(Completed) / Slo.DurationSeconds;
    Slo.RequestsPerSecond =
        static_cast<double>(Requests) / Slo.DurationSeconds;
  }
  if (Slo.SessionsOffered > 0)
    Slo.ShedRate = static_cast<double>(Slo.SessionsShed) /
                   static_cast<double>(Slo.SessionsOffered);
  Slo.MonitorExhaustionEvents = Monitors ? Monitors->exhaustionEvents() : 0;
  Slo.RegistryExhaustionEvents = Registry.exhaustionEvents();
  Slo.EmergencyInflations = Stats.snapshot().EmergencyInflations;
  AdmissionController::Counters Ledger = Controller.counters();
  Slo.TicksAtLevel = Ledger.TicksAtLevel;
  Slo.LevelTransitions = Ledger.Escalations + Ledger.DeEscalations;
  Slo.FinalLevel = static_cast<unsigned>(Controller.level());

  Result.Admission = Ledger;
  Result.AttachFallbacks = AttachFallbacks;
  Result.EventsDropped = Collector.droppedEvents();
  Result.ChaosPhasesRun = ChaosPhasesRun;
  if (Engine)
    Result.Policy = Engine->counters();
  Result.MonitorRetirements = Monitors ? Monitors->retirementEvents() : 0;
  Result.ProtocolStatsJson = Protocol->statsJson();

  // Worst tail: slowest arrival-to-completion sessions, exported as
  // trace spans over the lock events inside their windows.
  std::sort(AllSessions.begin(), AllSessions.end(),
            [](const obs::SessionSpanInfo &A, const obs::SessionSpanInfo &B) {
              return A.EndNanos - A.ArrivalNanos >
                     B.EndNanos - B.ArrivalNanos;
            });
  size_t WorstCount = static_cast<size_t>(
      std::ceil(static_cast<double>(AllSessions.size()) *
                Config.WorstFraction));
  WorstCount = std::min(AllSessions.size(),
                        std::max<size_t>(WorstCount, 1));
  if (!AllSessions.empty()) {
    Result.WorstSessions.assign(AllSessions.begin(),
                                AllSessions.begin() + WorstCount);
    Result.WorstTraceJson = obs::worstSessionsTraceJson(
        Events, Result.WorstSessions, &TheHeap.classes(), Protocol->name());
  }
  return Result;
}

} // namespace

SoakResult load::runSoak(const SoakConfig &Config) {
  SoakRun Run(Config);
  return Run.run();
}

//===- load/SessionWorkload.h - Session-scoped soak workload ---*- C++ -*-===//
///
/// \file
/// The unit of work the soak harness admits: a *session* — a short burst
/// of lock-protected requests against a Zipfian-skewed set of shared hot
/// objects, optionally preceded by the "expensive tenant" behaviors that
/// consume the substrate's finite resources (an ephemeral ThreadRegistry
/// attach, wait-timeout and hint inflations that each allocate a
/// monitor).  Two session shapes:
///
///  - *light*: thin-lock-dominated — lock/think/unlock on hot objects
///    with occasional recursive nesting.  Never allocates a monitor.
///  - *heavy* (inflation-heavy): additionally attaches an ephemeral
///    registry context (so `threadregistry.exhausted` surfaces
///    AttachError::Exhausted as a live admission signal), allocates
///    private objects, and inflates them via Object.wait timeouts and
///    explicit hints (so `monitortable.exhausted` surfaces allocate()
///    failures and emergency inflations).
///
/// A heavy session *admitted degraded* (AdmissionDecision::AdmitDegraded)
/// runs its light shape instead: same request count, no operation that
/// can allocate a monitor — the EmergencyOnly rung's contract.
///
/// Acquire latencies are recorded inline (StopWatch around each lock())
/// into the caller's per-worker LatencyHistogram; nothing here is
/// shared, so the recording cost is a few nanoseconds and no cache-line
/// traffic.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_LOAD_SESSIONWORKLOAD_H
#define THINLOCKS_LOAD_SESSIONWORKLOAD_H

#include "core/SyncBackend.h"
#include "threads/ThreadRegistry.h"
#include "load/Zipf.h"
#include "support/Histogram.h"
#include "support/SplitMix64.h"

#include <cstdint>
#include <vector>

namespace thinlocks {

class Heap;
class ClassInfo;

namespace load {

/// Per-session workload shape.
struct SessionParams {
  uint32_t LightRequests = 24;
  uint32_t HeavyRequests = 10;
  /// Private objects a heavy session allocates and inflates.
  uint32_t HeavyPrivateObjects = 3;
  /// Busy-think inside each critical section (the served "request").
  uint64_t ThinkNanos = 1500;
  /// Heavy sessions' Object.wait timeout (each wait inflates).
  int64_t WaitTimeoutNanos = 2000;
  /// One request in this many nests recursively on its hot object.
  uint32_t NestOneIn = 4;
  /// Heavy sessions park on the shared rendezvous object for up to this
  /// long; light sessions notifyAll it (one in NotifyOneIn requests), so
  /// sustained load produces genuine directed wakes — the unpark-to-
  /// resume latency behind the SLO's time-to-wake quantiles.  Waits that
  /// draw no notify in time bound the stall at this timeout.
  int64_t RendezvousTimeoutNanos = 1'000'000;
  uint32_t NotifyOneIn = 6;
};

/// What one session did.
struct SessionOutcome {
  uint32_t Requests = 0;
  uint64_t MaxAcquireNanos = 0;
  /// Heavy only: the ephemeral attach hit AttachError::Exhausted and the
  /// session fell back to the worker's identity (degraded but served).
  bool AttachFallback = false;
  /// Monitors this session asked the table for (wait + hint inflations).
  uint32_t MonitorsRequested = 0;
};

/// Executes sessions against one lock protocol + heap + registry.  The
/// protocol is consumed through the type-erased SyncBackend seam, so the
/// soak runs identically over ThinLock, the baselines, or Fissile; the
/// only protocol-specific notion (explicit inflation hints in heavy
/// sessions) degrades portably via SyncBackend::inflateHint.  The shared
/// hot-object set is allocated at construction; run() is called
/// concurrently from attached worker threads.
class SessionWorkload {
public:
  SessionWorkload(SyncBackend &Sync, Heap &TheHeap,
                  ThreadRegistry &Registry, size_t HotObjects,
                  double ZipfTheta, SessionParams Params = SessionParams());

  SessionWorkload(const SessionWorkload &) = delete;
  SessionWorkload &operator=(const SessionWorkload &) = delete;

  /// Runs one session on the calling thread.  \p Worker must be a valid
  /// context attached to the workload's registry.  \p Degraded elides
  /// every monitor-allocating operation (heavy sessions become light).
  /// Acquire latencies are recorded into \p AcquireHist.
  SessionOutcome run(const ThreadContext &Worker, SplitMix64 &Rng,
                     bool Heavy, bool Degraded,
                     LatencyHistogram &AcquireHist);

  size_t hotObjectCount() const { return Hot.size(); }
  const ZipfSampler &zipf() const { return Popularity; }

private:
  /// One timed lock/think/unlock request on a Zipf-chosen hot object.
  void lightRequest(const ThreadContext &Ctx, SplitMix64 &Rng,
                    SessionOutcome &Out, LatencyHistogram &AcquireHist);

  SyncBackend &Sync;
  Heap &TheHeap;
  ThreadRegistry &Registry;
  ZipfSampler Popularity;
  SessionParams Params;
  const ClassInfo *HotClass = nullptr;
  const ClassInfo *PrivateClass = nullptr;
  std::vector<Object *> Hot;
  /// Shared wait/notify rendezvous (see SessionParams::RendezvousTimeoutNanos).
  Object *Rendezvous = nullptr;
};

} // namespace load
} // namespace thinlocks

#endif // THINLOCKS_LOAD_SESSIONWORKLOAD_H

//===- load/AdmissionController.h - Overload admission control -*- C++ -*-===//
///
/// \file
/// Admission control for sustained-load operation (DESIGN.md §12): a
/// controller that watches the locking substrate's finite resources —
/// MonitorTable and ThreadRegistry occupancy plus the typed exhaustion
/// signals PR 1 introduced (AttachError::Exhausted, allocate()==0,
/// emergency inflations) — and walks a degradation ladder instead of
/// letting the process fall off a cliff:
///
///   Normal -> Shed -> DeferInflation -> EmergencyOnly
///
/// Escalation is *immediate* (a single typed-error delta in a tick is
/// proof of exhaustion right now); recovery is *hysteretic* (one step
/// per tick, and only after RecoveryDwellTicks consecutively quiet
/// ticks), so the ladder cannot flap around the high-water mark.
///
/// A deliberate asymmetry in the signals: MonitorTable occupancy is
/// monotone — indices are never reused, even after deflation — so
/// "occupancy dropped below low water" can never happen for monitors.
/// Recovery is therefore keyed on the *rates* quieting (no fresh typed
/// errors, registry occupancy back under low water), never on monitor
/// occupancy receding.
///
/// The controller is decoupled from the subsystems through the
/// PressureSignals snapshot struct, so unit tests drive the ladder with
/// synthetic pressure and the soak harness fills it from the real
/// tables.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_LOAD_ADMISSIONCONTROLLER_H
#define THINLOCKS_LOAD_ADMISSIONCONTROLLER_H

#include "support/Mutex.h"

#include <array>
#include <cstdint>

namespace thinlocks {
namespace load {

/// The degradation ladder, mildest to harshest.
enum class DegradationLevel : uint8_t {
  Normal = 0,       ///< Admit everything.
  Shed = 1,         ///< Reject a fraction of arrivals outright.
  DeferInflation = 2, ///< Additionally park inflation-heavy sessions
                      ///< for retry once pressure lifts.
  EmergencyOnly = 3,  ///< Monitor space is gone (emergency monitor in
                      ///< use): only degraded sessions — no operation
                      ///< that can allocate a monitor — are admitted.
};

constexpr unsigned NumDegradationLevels = 4;

/// \returns the stable display name of \p Level.
const char *degradationLevelName(DegradationLevel Level);

/// What to do with one arriving session.
enum class AdmissionDecision : uint8_t {
  Admit,         ///< Run normally.
  AdmitDegraded, ///< Run with inflation-heavy operations elided.
  Defer,         ///< Queue for retry when the ladder de-escalates.
  Shed,          ///< Reject; the caller counts it against the SLO.
};

/// Tuning knobs.  Defaults fit the 1-CPU CI soak profile.
struct AdmissionLimits {
  /// Occupancy (fraction of capacity) at or above which a tick escalates
  /// even without a typed error — the early-warning rung.
  double HighWater = 0.85;
  /// Registry occupancy must be back under this before recovery counts a
  /// tick as quiet.  (Monitor occupancy is monotone and deliberately
  /// excluded; see the file comment.)
  double LowWater = 0.70;
  /// Consecutive quiet ticks required per one-step de-escalation.
  uint32_t RecoveryDwellTicks = 5;
  /// At Shed and above, every ShedOneIn-th arrival is rejected.
  uint32_t ShedOneIn = 3;
};

/// Point-in-time pressure snapshot.  Event counters are *cumulative*
/// (monotone); the controller differentiates them across ticks.
struct PressureSignals {
  double MonitorOccupancy = 0;
  double RegistryOccupancy = 0;
  uint64_t MonitorExhaustionEvents = 0;
  uint64_t RegistryExhaustionEvents = 0;
  uint64_t EmergencyInflations = 0;
};

/// Thread-safe ladder state + per-decision counters.
class AdmissionController {
public:
  explicit AdmissionController(AdmissionLimits Limits = AdmissionLimits());

  AdmissionController(const AdmissionController &) = delete;
  AdmissionController &operator=(const AdmissionController &) = delete;

  /// Feeds one pressure sample and updates the ladder.  Called on the
  /// harness's tick cadence (not per arrival).  \returns the level in
  /// force after the tick.
  DegradationLevel tick(const PressureSignals &Now) TL_EXCLUDES(Mu);

  /// Decides one arriving session.  \p InflationHeavy marks sessions
  /// whose workload allocates monitors (wait/notify, inflation hints,
  /// ephemeral thread attaches) — the ones the upper rungs defer or
  /// refuse first.
  AdmissionDecision admit(bool InflationHeavy) TL_EXCLUDES(Mu);

  DegradationLevel level() const TL_EXCLUDES(Mu);

  /// Monotone ledger of everything the controller did.
  struct Counters {
    uint64_t Admitted = 0;
    uint64_t AdmittedDegraded = 0;
    uint64_t Deferred = 0;
    uint64_t Shed = 0;
    uint64_t Escalations = 0;
    uint64_t DeEscalations = 0;
    uint64_t Ticks = 0;
    std::array<uint64_t, NumDegradationLevels> TicksAtLevel{};
  };
  Counters counters() const TL_EXCLUDES(Mu);

private:
  void moveTo(DegradationLevel Target) TL_REQUIRES(Mu);

  const AdmissionLimits Limits;
  mutable Mutex Mu;
  DegradationLevel Level TL_GUARDED_BY(Mu) = DegradationLevel::Normal;
  uint32_t QuietTicks TL_GUARDED_BY(Mu) = 0;
  uint64_t ArrivalSerial TL_GUARDED_BY(Mu) = 0;
  PressureSignals Last TL_GUARDED_BY(Mu);
  bool HaveLast TL_GUARDED_BY(Mu) = false;
  Counters Ledger TL_GUARDED_BY(Mu);
};

} // namespace load
} // namespace thinlocks

#endif // THINLOCKS_LOAD_ADMISSIONCONTROLLER_H

//===- load/Zipf.h - Zipfian popularity sampler ----------------*- C++ -*-===//
///
/// \file
/// A seeded Zipf(theta) sampler over a fixed universe of N items, used by
/// the soak harness to pick which shared objects a session touches.  The
/// paper's locking characterization (§3.1) found synchronization
/// concentrating on a handful of hot objects; a Zipfian popularity curve
/// reproduces that concentration deliberately, so the soak load exercises
/// a few inflated hot monitors plus a long thin-locked tail instead of a
/// uniform spray that would keep everything thin.
///
/// Implementation: the normalized CDF (item i has weight 1/(i+1)^theta)
/// is precomputed once; sampling is one PRNG draw plus a binary search —
/// deterministic for a given (N, theta, seed) triple, which the soak
/// harness's reproducible-schedule contract requires.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_LOAD_ZIPF_H
#define THINLOCKS_LOAD_ZIPF_H

#include "support/SplitMix64.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace thinlocks {
namespace load {

/// Samples ranks in [0, N) with Zipfian skew.  Rank 0 is the hottest.
class ZipfSampler {
public:
  /// \param N universe size (must be >= 1).
  /// \param Theta skew exponent: 0 is uniform; ~0.8-1.0 matches the
  /// hot-object concentration measured in real lock traces.
  ZipfSampler(size_t N, double Theta) {
    assert(N >= 1 && "empty universe");
    Cdf.reserve(N);
    double Sum = 0;
    for (size_t I = 0; I < N; ++I) {
      Sum += 1.0 / std::pow(static_cast<double>(I + 1), Theta);
      Cdf.push_back(Sum);
    }
    for (double &Value : Cdf)
      Value /= Sum;
    Cdf.back() = 1.0; // Exact, despite rounding.
  }

  size_t universe() const { return Cdf.size(); }

  /// \returns the next rank drawn from \p Rng.
  size_t sample(SplitMix64 &Rng) const {
    double U = Rng.nextDouble();
    auto It = std::lower_bound(Cdf.begin(), Cdf.end(), U);
    return It == Cdf.end() ? Cdf.size() - 1
                           : static_cast<size_t>(It - Cdf.begin());
  }

private:
  std::vector<double> Cdf;
};

} // namespace load
} // namespace thinlocks

#endif // THINLOCKS_LOAD_ZIPF_H

//===- load/SoakHarness.h - Open-loop sustained-load harness ---*- C++ -*-===//
///
/// \file
/// The sustained-load soak harness (DESIGN.md §12): an *open-loop*
/// session simulator over the thin-lock substrate.  Sessions arrive on a
/// Poisson process at a configured rate, irrespective of whether the
/// system is keeping up — the sizing knob is arrival rate, not thread
/// count, because a closed loop (N threads in lockstep) self-throttles
/// under overload and hides exactly the queueing collapse an SLO exists
/// to measure (coordinated omission).  A small worker pool serves the
/// arrival queue; the gap between arrival and completion *is* the
/// session latency, queueing included.
///
/// Load-shedding: an AdmissionController ticks on a fixed cadence,
/// sampling MonitorTable/ThreadRegistry occupancy and the typed
/// exhaustion counters, and every arrival is admitted / degraded /
/// deferred / shed per the current degradation-ladder rung.  Deferred
/// (inflation-heavy) sessions are retried when the ladder de-escalates
/// and shed at shutdown if pressure never lifted, so the accounting
/// identity `offered == completed + shed` holds at the end of every run.
///
/// Chaos mode layers the repo's existing failpoints under the sustained
/// load on a seeded, reproducible schedule of arm/disarm phases
/// (registry exhaustion, monitor-table exhaustion, spurious park wakeups,
/// widened inflation-race and timeout-race windows).  The phases end
/// before the run does, so a chaos run also proves *recovery*: the
/// ladder must walk back to Normal and late arrivals must be admitted.
///
/// Every run records per-worker acquire/session LatencyHistograms and
/// drains the obs event rings; the result is an SloSnapshot plus a
/// Chrome trace of the worst sessions.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_LOAD_SOAKHARNESS_H
#define THINLOCKS_LOAD_SOAKHARNESS_H

#include "load/AdmissionController.h"
#include "load/SessionWorkload.h"
#include "obs/SloSnapshot.h"
#include "policy/AdaptivePolicyEngine.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace thinlocks {
namespace load {

/// One seeded chaos phase: \p Point armed with \p Mode/\p Arg over
/// [StartFraction, EndFraction) of the run.
struct ChaosPhase {
  double StartFraction = 0;
  double EndFraction = 0;
  unsigned PointId = 0; ///< failpoint::Id as unsigned.
  unsigned Mode = 0;    ///< failpoint::Mode as unsigned.
  uint64_t Arg = 0;
};

/// Harness configuration.  Defaults are the 1-CPU CI smoke profile;
/// real soaks raise DurationSeconds and ArrivalsPerSecond.
struct SoakConfig {
  /// Registry name of the protocol under load ("ThinLock", "JDK111",
  /// "IBM112", "EagerMonitor", "Fissile"; see core/ProtocolRegistry.h).
  /// Unknown names are a fatal configuration error.
  std::string Protocol = "ThinLock";
  double ArrivalsPerSecond = 300;
  double DurationSeconds = 3;
  unsigned Workers = 3;
  uint64_t Seed = 1;
  /// Fraction of arrivals that are inflation-heavy sessions.
  double HeavyFraction = 0.25;
  size_t HotObjects = 64;
  double ZipfTheta = 0.8;
  /// 0 = library default capacity.  Chaos runs shrink these so genuine
  /// exhaustion is reachable without 8M allocations.
  uint32_t MonitorCapacity = 0;
  uint16_t RegistryCapacity = 0;
  /// Bounded arrival queue; overflow sheds (the backpressure of last
  /// resort when even admission control lags the arrival process).
  size_t QueueLimit = 512;
  uint64_t TickNanos = 10'000'000; // 10ms controller cadence.
  AdmissionLimits Limits;
  SessionParams Session;
  /// Retire monitors at quiescence so long soaks also exercise the
  /// deflation / stale-fat-word machinery.
  bool DeflateWhenQuiescent = true;
  /// Arm the seeded failpoint schedule (requires a failpoints build).
  bool Chaos = false;
  uint64_t ChaosSeed = 7;
  /// Worst-tail fraction exported as Chrome "session" spans.
  double WorstFraction = 0.01;
  /// Close the profiler->policy loop: run an AdaptivePolicyEngine off
  /// the controller's tick cadence and wire its decision store into the
  /// lock slow paths.  Thin-lock only: the engine steers header-word
  /// policies, so enabling it with any other Protocol is a fatal
  /// configuration error (callers pre-validate; see bench_soak).
  bool AdaptivePolicy = false;
  /// Engine tuning when AdaptivePolicy is on.  The harness owns its
  /// heap and every session object outlives the run, so enabling
  /// Policy.SpeculativeDeflation here is safe.
  policy::PolicyConfig Policy;
};

/// Everything a run produced.
struct SoakResult {
  obs::SloSnapshot Slo;
  AdmissionController::Counters Admission;
  /// (nanos, new level) at every ladder transition, in order.
  std::vector<std::pair<uint64_t, DegradationLevel>> LevelTimeline;
  std::vector<obs::SessionSpanInfo> WorstSessions;
  /// Chrome trace of the worst sessions over their lock events.
  std::string WorstTraceJson;
  /// Arrivals shed because the bounded queue was full.
  uint64_t QueueOverflowShed = 0;
  /// Deferred sessions shed at shutdown (pressure never lifted).
  uint64_t ShutdownShed = 0;
  /// Sessions admitted after the last chaos phase ended (recovery
  /// proof; == SessionsOffered admissions when Chaos is off).
  uint64_t AdmitsAfterChaos = 0;
  /// Heavy sessions that fell back to the worker identity on a typed
  /// AttachError.
  uint64_t AttachFallbacks = 0;
  uint64_t EventsDropped = 0;
  /// Chaos phases actually armed (0 when Chaos off or not compiled in).
  uint64_t ChaosPhasesRun = 0;
  /// Adaptive engine ledger (all zeros when AdaptivePolicy is off).
  policy::PolicyCounters Policy;
  /// Monitors retired by deflation over the run (owner-path quiescent
  /// retirement plus the engine's speculative scan).  Zero for
  /// protocols without a MonitorTable.
  uint64_t MonitorRetirements = 0;
  /// The protocol's own stats snapshot as a JSON object literal ("" for
  /// protocols without the statsJson capability).
  std::string ProtocolStatsJson;
};

/// \returns the deterministic chaos schedule for \p Seed (exposed for
/// tests; the same seed always yields the same phases).
std::vector<ChaosPhase> buildChaosSchedule(uint64_t Seed);

/// Runs one soak to completion and \returns its result.  Owns every
/// subsystem it drives (registry, monitor table, heap, lock manager,
/// collector); the caller provides only configuration.
SoakResult runSoak(const SoakConfig &Config);

} // namespace load
} // namespace thinlocks

#endif // THINLOCKS_LOAD_SOAKHARNESS_H

//===- load/SessionWorkload.cpp - Session-scoped soak workload ------------===//

#include "load/SessionWorkload.h"

#include "heap/Heap.h"
#include "support/Timer.h"

#include <algorithm>

using namespace thinlocks;
using namespace thinlocks::load;

namespace {

/// Busy-think standing in for request service time.  Spinning (not
/// sleeping) keeps sub-10µs think times honest on a 1-CPU host, where a
/// sleep's wakeup quantum would dwarf the think itself.
void thinkFor(uint64_t Nanos) {
  if (Nanos == 0)
    return;
  uint64_t Deadline = monotonicNanos() + Nanos;
  while (monotonicNanos() < Deadline) {
  }
}

} // namespace

SessionWorkload::SessionWorkload(SyncBackend &Sync, Heap &TheHeap,
                                 ThreadRegistry &Registry, size_t HotObjects,
                                 double ZipfTheta, SessionParams Params)
    : Sync(Sync), TheHeap(TheHeap), Registry(Registry),
      Popularity(std::max<size_t>(HotObjects, 1), ZipfTheta),
      Params(Params) {
  HotClass = &TheHeap.classes().registerClass("SoakHot", 2);
  PrivateClass = &TheHeap.classes().registerClass("SoakPrivate", 1);
  Hot.reserve(Popularity.universe());
  for (size_t I = 0; I < Popularity.universe(); ++I)
    Hot.push_back(TheHeap.allocate(*HotClass));
  Rendezvous = TheHeap.allocate(*HotClass);
}

void SessionWorkload::lightRequest(const ThreadContext &Ctx,
                                   SplitMix64 &Rng, SessionOutcome &Out,
                                   LatencyHistogram &AcquireHist) {
  Object *Obj = Hot[Popularity.sample(Rng)];
  bool Nest =
      Params.NestOneIn != 0 && Rng.nextBounded(Params.NestOneIn) == 0;
  StopWatch Watch;
  Sync.lock(Obj, Ctx);
  uint64_t AcquireNanos = Watch.elapsedNanos();
  AcquireHist.record(AcquireNanos);
  Out.MaxAcquireNanos = std::max(Out.MaxAcquireNanos, AcquireNanos);
  if (Nest) {
    // Exercise the paper's §2.3.3 inline-nesting path under load.
    Sync.lock(Obj, Ctx);
    thinkFor(Params.ThinkNanos / 2);
    Sync.unlock(Obj, Ctx);
    thinkFor(Params.ThinkNanos / 2);
  } else {
    thinkFor(Params.ThinkNanos);
  }
  Sync.unlock(Obj, Ctx);
  if (Params.NotifyOneIn != 0 &&
      Rng.nextBounded(Params.NotifyOneIn) == 0) {
    // Release any heavy sessions parked at the rendezvous: the directed
    // unpark behind the time-to-wake quantiles.
    Sync.lock(Rendezvous, Ctx);
    Sync.notifyAll(Rendezvous, Ctx);
    Sync.unlock(Rendezvous, Ctx);
  }
  ++Out.Requests;
}

SessionOutcome SessionWorkload::run(const ThreadContext &Worker,
                                    SplitMix64 &Rng, bool Heavy,
                                    bool Degraded,
                                    LatencyHistogram &AcquireHist) {
  SessionOutcome Out;
  if (!Heavy || Degraded) {
    // Light shape — including heavy sessions admitted degraded: same
    // request volume, zero monitor allocations (the EmergencyOnly
    // contract).
    uint32_t N = Heavy ? Params.HeavyRequests : Params.LightRequests;
    for (uint32_t I = 0; I < N; ++I)
      lightRequest(Worker, Rng, Out, AcquireHist);
    return Out;
  }

  // Heavy shape.  First consume a registry slot the way a real tenant
  // thread would: an ephemeral attach.  Under the
  // `threadregistry.exhausted` failpoint (or a genuinely full registry)
  // this yields the typed AttachError and the session degrades to the
  // worker's identity instead of failing — the error feeds admission
  // control through the registry's exhaustion counter.
  AttachError Error = AttachError::None;
  ThreadContext Ephemeral = Registry.attach("soak-session", &Error);
  const ThreadContext &Ctx = Ephemeral.isValid() ? Ephemeral : Worker;
  Out.AttachFallback = !Ephemeral.isValid();

  // Inflation-heavy phase: private objects driven onto their fat-lock
  // representation, each costing one MonitorTable::allocate().  A
  // wait-timeout inflates per the paper (only fat locks have wait
  // queues); the hint inflations model pre-inflated shared structures.
  for (uint32_t I = 0; I < Params.HeavyPrivateObjects; ++I) {
    Object *Priv = TheHeap.allocate(*PrivateClass);
    StopWatch Watch;
    Sync.lock(Priv, Ctx);
    uint64_t AcquireNanos = Watch.elapsedNanos();
    AcquireHist.record(AcquireNanos);
    Out.MaxAcquireNanos = std::max(Out.MaxAcquireNanos, AcquireNanos);
    if (I == 0 || !Sync.inflateHint(Priv, Ctx)) {
      // Either the deliberate wait-timeout inflation, or the portable
      // fallback for protocols without an inflation notion: a short
      // timed wait exercises the same wait-queue machinery.
      Sync.wait(Priv, Ctx, Params.WaitTimeoutNanos);
    }
    ++Out.MonitorsRequested;
    Sync.unlock(Priv, Ctx);
    ++Out.Requests;
  }

  // Park at the shared rendezvous until a light session notifies (or the
  // bounded timeout).  A notified wake is a real blocked-park unpark, so
  // this is what populates the Wake histogram under load.
  if (Params.RendezvousTimeoutNanos > 0) {
    Sync.lock(Rendezvous, Ctx);
    Sync.wait(Rendezvous, Ctx, Params.RendezvousTimeoutNanos);
    Sync.unlock(Rendezvous, Ctx);
  }

  // Then serve its requests against the shared hot set like any tenant.
  for (uint32_t I = 0; I < Params.HeavyRequests; ++I)
    lightRequest(Ctx, Rng, Out, AcquireHist);

  if (Ephemeral.isValid())
    Registry.detach(Ephemeral);
  return Out;
}
